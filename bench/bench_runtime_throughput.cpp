/**
 * @file
 * Batch proving service throughput: proofs/sec vs worker count and
 * batch size.
 *
 * Each configuration proves a batch of small-circuit jobs (a few
 * distinct shapes, repeated, so the key cache behaves as in serving)
 * and reports wall-clock throughput, speedup over the 1-worker run,
 * mean latency and cache hit rate. The worker pool splits a fixed
 * kernel-thread budget (two-level parallelism), so worker counts
 * compete for the same hardware rather than oversubscribing it —
 * scaling therefore tracks physical cores; on a single-core host the
 * sweep degenerates to ~1x by construction.
 */
#include <random>
#include <thread>

#include "report.hpp"
#include "runtime/service.hpp"
#include "sim/replay.hpp"

namespace {

using namespace zkspeed;
using namespace zkspeed::runtime;

/** Encoded batch: `batch` jobs cycling over `distinct` circuit shapes. */
std::vector<std::vector<uint8_t>>
make_batch(size_t batch, size_t distinct, size_t mu)
{
    std::vector<JobRequest> shapes;
    for (size_t c = 0; c < distinct; ++c) {
        std::mt19937_64 rng(9000 + c);
        auto [index, wit] = hyperplonk::random_circuit(mu, rng);
        JobRequest req;
        req.circuit = std::move(index);
        req.witness = std::move(wit);
        shapes.push_back(std::move(req));
    }
    std::vector<std::vector<uint8_t>> frames;
    for (size_t i = 0; i < batch; ++i) {
        JobRequest &req = shapes[i % distinct];
        req.request_id = i + 1;
        frames.push_back(wire::encode_request(req));
    }
    return frames;
}

struct RunResult {
    double wall_ms = 0;
    double proofs_per_s = 0;
    double mean_latency_ms = 0;
    double cache_hit_rate = 0;
    std::vector<TraceEntry> trace;
};

RunResult
run_batch(const std::vector<std::vector<uint8_t>> &frames, size_t workers,
          size_t total_parallelism)
{
    ServiceConfig cfg;
    cfg.num_workers = workers;
    cfg.total_parallelism = total_parallelism;
    cfg.queue_capacity = frames.size();
    auto t0 = std::chrono::steady_clock::now();
    RunResult res;
    {
        ProofService service(cfg);
        std::vector<std::future<JobResponse>> futures;
        for (const auto &frame : frames) {
            futures.push_back(service.submit(frame));
        }
        for (auto &f : futures) {
            auto resp = f.get();
            if (!resp.ok()) {
                std::fprintf(stderr, "job failed: %s\n", resp.error.c_str());
                std::exit(1);
            }
        }
        res.wall_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        res.mean_latency_ms = service.metrics().mean_latency_ms();
        res.cache_hit_rate = service.cache_stats().hit_rate();
        res.trace = service.trace();
    }
    res.proofs_per_s = 1000.0 * double(frames.size()) / res.wall_ms;
    return res;
}

}  // namespace

int
main()
{
    size_t cores = std::max(1u, std::thread::hardware_concurrency());
    bench::title("Batch proving service throughput");
    std::printf("host: %zu hardware thread(s); kernel budget fixed at "
                "%zu across all runs\n", cores, cores);

    // --- Sweep 1: worker count at a fixed batch --------------------------
    const size_t kBatch = 8, kDistinct = 2, kMu = 5;
    auto frames = make_batch(kBatch, kDistinct, kMu);

    bench::Table t({{"Workers", 9}, {"Batch", 7}, {"Wall (ms)", 11},
                    {"Proofs/s", 10}, {"Speedup", 9}, {"Latency (ms)", 14},
                    {"Cache hit", 10}});
    double base_pps = 0;
    RunResult last;
    for (size_t workers : {size_t(1), size_t(2), size_t(4)}) {
        auto res = run_batch(frames, workers, cores);
        if (workers == 1) base_pps = res.proofs_per_s;
        t.row({bench::fmt_int(workers), bench::fmt_int(kBatch),
               bench::fmt(res.wall_ms, 1), bench::fmt(res.proofs_per_s, 1),
               bench::fmt(res.proofs_per_s / base_pps, 2) + "x",
               bench::fmt(res.mean_latency_ms, 1),
               bench::fmt(100.0 * res.cache_hit_rate, 0) + "%"});
        last = std::move(res);
    }

    // --- Sweep 2: batch size at 4 workers --------------------------------
    bench::title("Batch size scaling (4 workers)");
    bench::Table t2({{"Batch", 7}, {"Wall (ms)", 11}, {"Proofs/s", 10},
                     {"Latency (ms)", 14}, {"Cache hit", 10}});
    for (size_t batch : {size_t(4), size_t(8), size_t(16)}) {
        auto res = run_batch(make_batch(batch, kDistinct, kMu), 4, cores);
        t2.row({bench::fmt_int(batch), bench::fmt(res.wall_ms, 1),
                bench::fmt(res.proofs_per_s, 1),
                bench::fmt(res.mean_latency_ms, 1),
                bench::fmt(100.0 * res.cache_hit_rate, 0) + "%"});
    }

    // --- Replay the 4-worker trace on the paper's accelerator ------------
    bench::title("Same stream on zkSpeed (sim replay)");
    auto report =
        sim::replay_trace(last.trace, sim::DesignConfig::paper_default());
    bench::Table t3({{"Prover", 22}, {"Busy (ms)", 12}, {"Proofs/s", 12}});
    t3.row({"software (4 workers)", bench::fmt(report.sw_total_ms, 1),
            bench::fmt(report.sw_jobs_per_s, 1)});
    t3.row({"zkSpeed (366 mm^2)", bench::fmt(report.chip_total_ms, 3),
            bench::fmt(report.chip_jobs_per_s, 1)});
    std::printf("accelerator speedup on this stream: %.0fx\n",
                report.speedup);
    return 0;
}
