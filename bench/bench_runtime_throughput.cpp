/**
 * @file
 * Batch proving service throughput: proofs/sec vs worker count and
 * batch size, plus the telemetry overhead gate.
 *
 * Each configuration proves a batch of small-circuit jobs (a few
 * distinct shapes, repeated, so the key cache behaves as in serving)
 * and reports wall-clock throughput, speedup over the 1-worker run,
 * latency percentiles straight from the obs registry histograms and
 * cache hit rate. The worker pool splits a fixed kernel-thread budget
 * (two-level parallelism), so worker counts compete for the same
 * hardware rather than oversubscribing it — scaling therefore tracks
 * physical cores; on a single-core host the sweep degenerates to ~1x
 * by construction.
 *
 * The final section measures instrumentation cost: the same fixed
 * batch is proven with telemetry on (`obs::set_enabled(true)`) and off,
 * interleaved over `--reps` repetitions, and the min-of-reps walls are
 * compared. Exit status is non-zero when the observed overhead exceeds
 * the 5% budget DESIGN.md §10 commits to — CI runs this as a gate.
 *
 * Usage: bench_runtime_throughput [--quick] [--reps N] [--json PATH]
 * `--json` writes the machine-readable BENCH_runtime.json summary.
 */
#include <algorithm>
#include <cstring>
#include <random>
#include <thread>

#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "report.hpp"
#include "runtime/service.hpp"
#include "sim/replay.hpp"

namespace {

using namespace zkspeed;
using namespace zkspeed::runtime;

/** Encoded batch: `batch` jobs cycling over `distinct` circuit shapes. */
std::vector<std::vector<uint8_t>>
make_batch(size_t batch, size_t distinct, size_t mu)
{
    std::vector<JobRequest> shapes;
    for (size_t c = 0; c < distinct; ++c) {
        std::mt19937_64 rng(9000 + c);
        auto [index, wit] = hyperplonk::random_circuit(mu, rng);
        JobRequest req;
        req.circuit = std::move(index);
        req.witness = std::move(wit);
        shapes.push_back(std::move(req));
    }
    std::vector<std::vector<uint8_t>> frames;
    for (size_t i = 0; i < batch; ++i) {
        JobRequest &req = shapes[i % distinct];
        req.request_id = i + 1;
        frames.push_back(wire::encode_request(req));
    }
    return frames;
}

struct RunResult {
    double wall_ms = 0;
    double proofs_per_s = 0;
    double mean_latency_ms = 0;
    double p50_ms = 0, p95_ms = 0, p99_ms = 0;
    double cache_hit_rate = 0;
    std::vector<TraceEntry> trace;
};

RunResult
run_batch(const std::vector<std::vector<uint8_t>> &frames, size_t workers,
          size_t total_parallelism)
{
    ServiceConfig cfg;
    cfg.num_workers = workers;
    cfg.total_parallelism = total_parallelism;
    cfg.queue_capacity = frames.size();
    auto t0 = std::chrono::steady_clock::now();
    RunResult res;
    {
        ProofService service(cfg);
        std::vector<std::future<JobResponse>> futures;
        for (const auto &frame : frames) {
            futures.push_back(service.submit(frame));
        }
        for (auto &f : futures) {
            auto resp = f.get();
            if (!resp.ok()) {
                std::fprintf(stderr, "job failed: %s\n", resp.error.c_str());
                std::exit(1);
            }
        }
        res.wall_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        res.mean_latency_ms = service.metrics().mean_latency_ms();
        res.cache_hit_rate = service.cache_stats().hit_rate();
        res.trace = service.trace();
        // Latency percentiles come from this instance's registry
        // histogram (±4.4% bucket error; zeros when telemetry is off).
        auto snap = obs::MetricsRegistry::global().snapshot();
        const auto *lat = snap.find(
            "zkspeed_job_latency_ms",
            {{"class", "prove"},
             {"service", service.instance_label()},
             {"status", "ok"}});
        if (lat != nullptr && lat->hist.count > 0) {
            res.p50_ms = lat->hist.quantile(0.50);
            res.p95_ms = lat->hist.quantile(0.95);
            res.p99_ms = lat->hist.quantile(0.99);
        }
    }
    res.proofs_per_s = 1000.0 * double(frames.size()) / res.wall_ms;
    return res;
}

}  // namespace

int
main(int argc, char **argv)
{
    size_t reps = 5;
    bool quick = false;
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = size_t(std::max(1, std::atoi(argv[++i])));
        } else if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    size_t cores = std::max(1u, std::thread::hardware_concurrency());
    bench::title("Batch proving service throughput");
    std::printf("host: %zu hardware thread(s); kernel budget fixed at "
                "%zu across all runs\n", cores, cores);

    // --- Sweep 1: worker count at a fixed batch --------------------------
    const size_t kBatch = quick ? 6 : 8, kDistinct = 2, kMu = 5;
    auto frames = make_batch(kBatch, kDistinct, kMu);

    bench::Table t({{"Workers", 9}, {"Batch", 7}, {"Wall (ms)", 11},
                    {"Proofs/s", 10}, {"Speedup", 9}, {"p50 (ms)", 10},
                    {"p99 (ms)", 10}, {"Cache hit", 10}});
    double base_pps = 0;
    RunResult last;
    for (size_t workers : {size_t(1), size_t(2), size_t(4)}) {
        auto res = run_batch(frames, workers, cores);
        if (workers == 1) base_pps = res.proofs_per_s;
        t.row({bench::fmt_int(workers), bench::fmt_int(kBatch),
               bench::fmt(res.wall_ms, 1), bench::fmt(res.proofs_per_s, 1),
               bench::fmt(res.proofs_per_s / base_pps, 2) + "x",
               bench::fmt(res.p50_ms, 1), bench::fmt(res.p99_ms, 1),
               bench::fmt(100.0 * res.cache_hit_rate, 0) + "%"});
        last = std::move(res);
    }

    // --- Sweep 2: batch size at 4 workers --------------------------------
    if (!quick) {
        bench::title("Batch size scaling (4 workers)");
        bench::Table t2({{"Batch", 7}, {"Wall (ms)", 11}, {"Proofs/s", 10},
                         {"p50 (ms)", 10}, {"p99 (ms)", 10},
                         {"Cache hit", 10}});
        for (size_t batch : {size_t(4), size_t(8), size_t(16)}) {
            auto res = run_batch(make_batch(batch, kDistinct, kMu), 4, cores);
            t2.row({bench::fmt_int(batch), bench::fmt(res.wall_ms, 1),
                    bench::fmt(res.proofs_per_s, 1),
                    bench::fmt(res.p50_ms, 1), bench::fmt(res.p99_ms, 1),
                    bench::fmt(100.0 * res.cache_hit_rate, 0) + "%"});
        }
    }

    // --- Replay the last trace on the paper's accelerator ----------------
    bench::title("Same stream on zkSpeed (sim replay)");
    auto report =
        sim::replay_trace(last.trace, sim::DesignConfig::paper_default());
    bench::Table t3({{"Prover", 22}, {"Busy (ms)", 12}, {"Proofs/s", 12}});
    t3.row({"software", bench::fmt(report.sw_total_ms, 1),
            bench::fmt(report.sw_jobs_per_s, 1)});
    t3.row({"zkSpeed (366 mm^2)", bench::fmt(report.chip_total_ms, 3),
            bench::fmt(report.chip_jobs_per_s, 1)});
    std::printf("accelerator speedup on this stream: %.0fx\n",
                report.speedup);

    // --- Telemetry overhead gate -----------------------------------------
    // Interleave on/off repetitions (drift hits both modes equally) and
    // compare min-of-reps walls: min damps scheduler noise, which at
    // these run lengths routinely exceeds the effect being measured.
    bench::title("Telemetry overhead (instrumentation on vs off)");
    const size_t kGateWorkers = std::min<size_t>(2, cores);
    const double kBudgetPct = 5.0;
    // The budget must hold with the live scrape plane up, not just the
    // record paths: keep an ephemeral HTTP server running for the whole
    // gate (idle acceptor + handler pool, like a production sidecar).
    auto http = obs::HttpServer::start();
    if (http != nullptr) {
        std::printf("telemetry HTTP server on 127.0.0.1:%u for the "
                    "gate\n",
                    unsigned(http->port()));
    }
    run_batch(frames, kGateWorkers, cores);  // warm-up (ff tables, ...)
    double min_on = 0, min_off = 0;
    RunResult best_on;
    for (size_t r = 0; r < reps; ++r) {
        obs::set_enabled(false);
        auto off = run_batch(frames, kGateWorkers, cores);
        obs::set_enabled(true);
        auto on = run_batch(frames, kGateWorkers, cores);
        if (r == 0 || off.wall_ms < min_off) min_off = off.wall_ms;
        if (r == 0 || on.wall_ms < min_on) {
            min_on = on.wall_ms;
            best_on = std::move(on);
        }
    }
    double overhead_pct = 100.0 * (min_on - min_off) / min_off;
    bool within_budget = overhead_pct < kBudgetPct;
    std::printf("%zu jobs x %zu reps, %zu workers: "
                "on %.1f ms, off %.1f ms -> overhead %+.2f%% "
                "(budget <%.0f%%) %s\n",
                kBatch, reps, kGateWorkers, min_on, min_off, overhead_pct,
                kBudgetPct, within_budget ? "OK" : "FAILED");
    std::printf("instrumented latency (registry, +/-4.4%% bucket error): "
                "p50 %.1f ms, p95 %.1f ms, p99 %.1f ms\n",
                best_on.p50_ms, best_on.p95_ms, best_on.p99_ms);

    if (json_path != nullptr) {
        using obs::jsonv::Value;
        Value metrics = Value::object();
        metrics.set("batch", Value::of(uint64_t(kBatch)));
        metrics.set("mu", Value::of(uint64_t(kMu)));
        metrics.set("workers", Value::of(uint64_t(kGateWorkers)));
        metrics.set("reps", Value::of(uint64_t(reps)));
        Value inst = Value::object();
        inst.set("wall_ms_min", Value::of(min_on));
        inst.set("proofs_per_s",
                 Value::of(1000.0 * double(kBatch) / min_on));
        inst.set("p50_ms", Value::of(best_on.p50_ms));
        inst.set("p95_ms", Value::of(best_on.p95_ms));
        inst.set("p99_ms", Value::of(best_on.p99_ms));
        inst.set("mean_latency_ms", Value::of(best_on.mean_latency_ms));
        metrics.set("instrumented", std::move(inst));
        Value uninst = Value::object();
        uninst.set("wall_ms_min", Value::of(min_off));
        uninst.set("proofs_per_s",
                   Value::of(1000.0 * double(kBatch) / min_off));
        metrics.set("uninstrumented", std::move(uninst));
        metrics.set("percentile_max_relative_error",
                    Value::of(obs::HistogramBuckets::kMaxRelativeError));
        metrics.set("overhead_pct", Value::of(overhead_pct));
        metrics.set("overhead_budget_pct", Value::of(kBudgetPct));
        metrics.set("within_overhead_budget", Value::of(within_budget));
        metrics.set("http_port",
                    Value::of(uint64_t(http != nullptr ? http->port()
                                                       : 0)));
        char detail[128];
        std::snprintf(detail, sizeof(detail),
                      "overhead %+.2f%% (budget <%.0f%%)", overhead_pct,
                      kBudgetPct);
        if (!bench::write_unified_report(
                json_path, "runtime_throughput", std::move(metrics),
                {{"telemetry_overhead_under_budget", within_budget,
                  detail}})) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 2;
        }
        std::printf("wrote %s\n", json_path);
    }

    if (!within_budget) {
        std::fprintf(stderr,
                     "FAILED: telemetry overhead %.2f%% exceeds the "
                     "%.0f%% budget\n",
                     overhead_pct, kBudgetPct);
        return 1;
    }
    return 0;
}
