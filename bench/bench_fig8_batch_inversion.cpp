/**
 * @file
 * Figure 8 reproduction: FracMLE batched-inversion design sweep.
 * Left axis: latency imbalance between the partial-product chain and
 * the (tree + BEEA) inversion path. Right axis: standalone unit area.
 * Both curves must bottom out at batch size b = 64.
 */
#include "report.hpp"
#include "sim/fracmle_unit.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::sim;

    bench::title("Figure 8: FracMLE batch-size sweep");
    bench::Table t({{"log2(b)", 9},
                    {"b", 6},
                    {"PP latency", 12},
                    {"Inv latency", 13},
                    {"Imbalance (cyc)", 17},
                    {"Inverse units", 15},
                    {"Area (mm^2)", 12}});
    int best_b = 0;
    double best_area = 1e300;
    for (int lb = 1; lb <= 8; ++lb) {
        int b = 1 << lb;
        double area = FracMleUnit::standalone_area(b);
        if (area < best_area) {
            best_area = area;
            best_b = b;
        }
        t.row({bench::fmt_int(lb), bench::fmt_int(b),
               bench::fmt_int(FracMleUnit::partial_product_latency(b)),
               bench::fmt_int(FracMleUnit::inversion_path_latency(b)),
               bench::fmt_int(FracMleUnit::latency_imbalance(b)),
               bench::fmt_int(FracMleUnit::inverse_units_needed(b)),
               bench::fmt(area)});
    }
    std::printf("\nOptimal batch size by area: %d (paper selects 64)\n",
                best_b);
    std::printf("Inverse units at b=2: %d vs b=64: %d "
                "(paper: 256 vs 12)\n",
                FracMleUnit::inverse_units_needed(2),
                FracMleUnit::inverse_units_needed(64));

    // Section 4.4.1's constant-time argument: the data-dependent BEEA
    // would only be ~1% faster on random inputs.
    double avg_dd = 0;
    for (int i = 1; i <= 255; ++i) {
        avg_dd += double(255 - i) / std::pow(2.0, i);
    }
    avg_dd = 2 * avg_dd - 1;  // the paper's expected-latency formula
    std::printf("\nConstant-time BEEA: 509 cycles; data-dependent "
                "average: ~%.0f cycles (%.1f%% better; paper: ~1%%)\n",
                avg_dd, 100.0 * (509.0 - avg_dd) / 509.0);
    return 0;
}
