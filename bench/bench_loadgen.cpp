/**
 * @file
 * Closed-loop capacity bench: replays a seeded open-loop traffic mix
 * against one ProofService and reports windowed latency percentiles,
 * SLO verdicts and the knee-of-curve capacity estimate.
 *
 * Two modes:
 *   --mode smoke  constant offered load well under capacity; every
 *                 window must meet the plan's SLOs. Exit status is the
 *                 SLO verdict (CI runs this as a gate).
 *   --mode ramp   monotone offered-QPS sweep from --qps0 to --qps1; the
 *                 report pinpoints the capacity knee (last window whose
 *                 verdicts all pass). Breaching above the knee is the
 *                 point, so ramp mode exits 0 unless --enforce is given.
 *
 * The plan is assembled as loadgen plan text and run through
 * `loadgen::parse_plan`, so this bench exercises the same strict
 * rule-map validation path as user-authored plans (DESIGN.md §11).
 *
 * Usage: bench_loadgen [--quick] [--mode smoke|ramp] [--qps X]
 *                      [--qps0 X] [--qps1 Y] [--windows N]
 *                      [--window-ms M] [--seed S] [--enforce]
 *                      [--json PATH] [--report PATH]
 * `--json` writes BENCH_loadgen.json; `--report` writes the full
 * per-window SLO_report.json.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "report.hpp"
#include "scenarios/harness.hpp"

namespace {

using namespace zkspeed;

std::string
fmt_num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool enforce = false;
    bool enforce_set = false;
    std::string mode = "smoke";
    double qps = -1, qps0 = -1, qps1 = -1, window_ms = -1;
    long windows = -1, seed = -1;
    const char *json_path = nullptr;
    const char *report_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--mode") && i + 1 < argc) {
            mode = argv[++i];
        } else if (!std::strcmp(argv[i], "--qps") && i + 1 < argc) {
            qps = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--qps0") && i + 1 < argc) {
            qps0 = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--qps1") && i + 1 < argc) {
            qps1 = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--windows") && i + 1 < argc) {
            windows = std::atol(argv[++i]);
        } else if (!std::strcmp(argv[i], "--window-ms") && i + 1 < argc) {
            window_ms = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
            seed = std::atol(argv[++i]);
        } else if (!std::strcmp(argv[i], "--enforce")) {
            enforce = true;
            enforce_set = true;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--report") && i + 1 < argc) {
            report_path = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }
    if (mode != "smoke" && mode != "ramp") {
        std::fprintf(stderr, "--mode wants smoke or ramp, got %s\n",
                     mode.c_str());
        return 2;
    }
    const bool smoke = mode == "smoke";
    if (!enforce_set) enforce = smoke;

    // Defaults: the smoke plan offers a few QPS of small honest proofs
    // against a generous p99 bound (a gate, not a measurement); the
    // ramp plan sweeps far past one worker's capacity so the knee and
    // the breach above it are both visible.
    if (qps < 0) qps = 3;
    if (qps0 < 0) qps0 = 2;
    if (qps1 < 0) qps1 = quick ? 32 : 48;
    if (windows < 0) windows = smoke ? (quick ? 4 : 6) : (quick ? 6 : 10);
    if (window_ms < 0) window_ms = quick ? 400 : 500;
    if (seed < 0) seed = 42;

    std::string plan_text;
    plan_text +=
        "mix family=rescue-chain weight=3 log_size=4 seed=11\n"
        "mix family=range-bank weight=1 log_size=4 seed=23\n";
    if (smoke) {
        plan_text += "profile kind=constant qps=" + fmt_num(qps) + "\n";
    } else {
        plan_text += "profile kind=ramp qps0=" + fmt_num(qps0) +
                     " qps1=" + fmt_num(qps1) + "\n";
    }
    plan_text += "run windows=" + std::to_string(windows) +
                 " window_ms=" + fmt_num(window_ms) +
                 " warmup_windows=1 seed=" + std::to_string(seed) +
                 " verify_fraction=0.25\n";
    plan_text += "slo name=latency-p99 kind=quantile "
                 "series=zkspeed_job_latency_ms labels=status:ok q=0.99 "
                 "threshold_ms=";
    plan_text += smoke ? "1500" : "250";
    plan_text += "\n";
    plan_text += "slo name=shed-ratio kind=error_ratio "
                 "total=zkspeed_loadgen_offered_total "
                 "errors=zkspeed_loadgen_shed_total threshold=";
    plan_text += smoke ? "0.05" : "0.01";
    plan_text += "\n";

    scenarios::CapacityConfig cfg;
    cfg.stream = stdout;
    try {
        cfg.plan = loadgen::parse_plan(plan_text);
    } catch (const loadgen::PlanError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    bench::title(smoke ? "Capacity smoke (constant offered load)"
                       : "Capacity ramp (offered-QPS sweep)");
    std::printf("%s", plan_text.c_str());
    std::printf("---\n");

    loadgen::Report rep;
    try {
        rep = scenarios::run_capacity(cfg);
    } catch (const loadgen::PlanError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    bench::title("Windowed percentiles and SLO verdicts");
    bench::Table t({{"Window", 8}, {"Target", 8}, {"Offered", 9},
                    {"Achieved", 10}, {"p50 (ms)", 10}, {"p99 (ms)", 10},
                    {"Shed", 6}, {"SLO", 8}});
    for (const auto &w : rep.windows) {
        t.row({bench::fmt_int(w.index), bench::fmt(w.qps_target, 1),
               bench::fmt(w.qps_offered, 1), bench::fmt(w.qps_achieved, 1),
               bench::fmt(w.p50_ms, 2), bench::fmt(w.p99_ms, 2),
               bench::fmt_int(w.shed), w.slo_ok ? "ok" : "BREACH"});
    }
    std::printf("offered %.1f qps, achieved %.1f qps over %zu windows "
                "(%llu shed, %llu errors)\n",
                rep.offered_qps, rep.achieved_qps, rep.windows.size(),
                (unsigned long long)rep.shed_total,
                (unsigned long long)rep.errors_total);
    if (rep.knee_found) {
        std::printf("capacity knee: window %zu, %.1f qps offered / %.1f "
                    "qps achieved (last window meeting every SLO)\n",
                    rep.knee_window, rep.knee_qps_offered,
                    rep.knee_qps_achieved);
    } else {
        std::printf("capacity knee: not found (no post-warmup window met "
                    "every SLO)\n");
    }
    std::printf("run SLO verdict: %s\n", rep.slo_ok ? "ok" : "BREACH");

    if (report_path != nullptr) {
        FILE *f = std::fopen(report_path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", report_path);
            return 2;
        }
        std::string json = rep.render_json();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", report_path);
    }
    if (json_path != nullptr) {
        using obs::jsonv::Value;
        Value metrics = Value::object();
        metrics.set("mode", Value::of(mode));
        metrics.set("seed", Value::of(int64_t(seed)));
        metrics.set("windows", Value::of(uint64_t(rep.windows.size())));
        metrics.set("window_ms", Value::of(window_ms));
        metrics.set("offered_total", Value::of(uint64_t(rep.offered_total)));
        metrics.set("completed_total",
                    Value::of(uint64_t(rep.completed_total)));
        metrics.set("errors_total", Value::of(uint64_t(rep.errors_total)));
        metrics.set("shed_total", Value::of(uint64_t(rep.shed_total)));
        metrics.set("offered_qps", Value::of(rep.offered_qps));
        metrics.set("achieved_qps", Value::of(rep.achieved_qps));
        Value knee = Value::object();
        knee.set("found", Value::of(rep.knee_found));
        knee.set("window", Value::of(uint64_t(rep.knee_window)));
        knee.set("qps_offered", Value::of(rep.knee_qps_offered));
        knee.set("qps_achieved", Value::of(rep.knee_qps_achieved));
        metrics.set("knee", std::move(knee));
        metrics.set("slo_ok", Value::of(rep.slo_ok));
        std::vector<bench::Gate> gates;
        if (enforce) {
            gates.push_back({"slo_ok", rep.slo_ok,
                             "every post-warmup window met its SLO"});
        }
        if (!bench::write_unified_report(json_path, "loadgen",
                                         std::move(metrics), gates)) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 2;
        }
        std::printf("wrote %s\n", json_path);
    }

    if (enforce && !rep.slo_ok) {
        std::fprintf(stderr, "FAILED: SLO breach under %s load\n",
                     mode.c_str());
        return 1;
    }
    return 0;
}
