/**
 * @file
 * Table 4 reproduction: cross-accelerator comparison at 2^24
 * constraints/gates. NoCap and SZKP+ are closed-source comparators;
 * their columns are quoted from the paper (marked "[quoted]"). The
 * zkSpeed column is regenerated from our models, and the protocol-level
 * rows (proof size, verifier cost) from our own HyperPlonk
 * implementation's structure.
 */
#include "report.hpp"
#include "sim/chip.hpp"
#include "sim/cpu_model.hpp"
#include "sim/tech.hpp"

namespace {

/** Wire size of our HyperPlonk proof at 2^mu gates (see
 * hyperplonk::Proof::size_bytes; counted analytically here). */
double
proof_kb(size_t mu)
{
    const double g1 = 97.0, fr = 32.0;
    double sumchecks = double(mu) * (5 + 6 + 3) * fr;  // zero/perm/open
    double evals = 22 * fr;
    double comms = 5 * g1;  // 3 witness + phi + pi
    double opening = fr + double(mu) * g1;
    return (sumchecks + evals + comms + opening) / 1024.0;
}

/** Modular multiplier instances in the highlighted design. */
int
modmul_count(const zkspeed::sim::DesignConfig &cfg)
{
    using namespace zkspeed::sim;
    int msm = cfg.msm_cores * cfg.msm_pes_per_core * kPaddModmuls;
    int sc = cfg.sumcheck_pes * kSumcheckPeModmuls;
    int upd = cfg.mle_update_pes * cfg.mle_update_modmuls;
    int mtu = MtuUnit(cfg).leaf_pes();
    int frac = cfg.inversion_batch - 1 + 2;
    return msm + sc + upd + mtu + frac + kMleCombineModmuls +
           kConstructNdModmuls;
}

}  // namespace

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::sim;

    DesignConfig cfg = DesignConfig::paper_default();
    cfg.sram_target_mu = 23;
    Chip chip(cfg);
    Workload wl = Workload::mock(24);
    auto rep = chip.run(wl);
    AreaBreakdown a = chip.area();

    bench::title("Table 4: accelerator comparison at 2^24 gates");
    bench::Table t({{"Metric", 22}, {"NoCap [quoted]", 17},
                    {"SZKP+ [quoted]", 17}, {"zkSpeed (ours)", 18},
                    {"zkSpeed [paper]", 17}});
    t.row({"Protocol", "Spartan+Orion", "Groth16", "HyperPlonk",
           "HyperPlonk"});
    t.row({"Main kernels", "NTT & SumCheck", "NTT & MSM",
           "SumCheck & MSM", "SumCheck & MSM"});
    t.row({"Encoding", "R1CS", "R1CS", "Plonk", "Plonk"});
    t.row({"Proof size", "8.1 MB", "0.18 KB",
           bench::fmt(proof_kb(24), 2) + " KB", "5.09 KB"});
    t.row({"Setup", "none", "circuit-specific", "universal",
           "universal"});
    t.row({"Bit-width", "64", "255/381", "255/381", "255/381"});
    t.row({"CPU prover (s)", "94.2", "51.18",
           bench::fmt(CpuModel::total_ms(24) / 1000.0, 1), "145.5"});
    t.row({"HW prover (ms)", "151.3", "28.43",
           bench::fmt(rep.runtime_ms, 2), "171.61"});
    t.row({"Chip area (mm^2)", "38.73", "353.2",
           bench::fmt(a.total(), 1), "366.46"});
    t.row({"# modmuls", "2432", "1720",
           bench::fmt_int(uint64_t(modmul_count(cfg))), "1206"});
    t.row({"Power (W)", "62", ">220",
           bench::fmt(rep.total_power, 1), "170.88"});
    std::printf("\nNotes: our proof size counts every sumcheck round "
                "message explicitly; the paper's 5.09 KB reflects the "
                "Espresso implementation's tighter batching. Verifier "
                "cost: our pairing-mode verifier is dominated by mu+1 "
                "pairings plus O(mu) field work (paper: 26 ms).\n");
    return 0;
}
