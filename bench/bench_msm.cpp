/**
 * @file
 * Signed-digit affine-batch Pippenger vs. the pre-PR 8 kernel.
 *
 * Runs the same random MSM through curve::msm (GLV-split signed
 * digits, affine bucket accumulation behind batched inversions) and
 * curve::msm_reference (unsigned digits, Jacobian buckets — the seed
 * kernel kept verbatim), checks the results agree with each other and
 * with msm_naive on a prefix, checks serial and threaded runs return
 * identical points with identical modmul counts, and reports wall time
 * and Fq-mul counts for both kernels.
 *
 * Usage: bench_msm [--points N] [--window W] [--reps R] [--quick]
 *                  [--json PATH]
 * Exit status is non-zero unless the new kernel is >= 2x faster than
 * the reference (the PR's acceptance gate) and every cross-check holds.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "curve/msm.hpp"
#include "ff/counters.hpp"
#include "ff/parallel.hpp"
#include "report.hpp"

using namespace zkspeed;
using curve::G1;
using curve::G1Affine;
using ff::Fr;

namespace {

using Clock = std::chrono::steady_clock;

double
ms_since(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** n pseudo-random-looking bases: the orbit i * G materialized with
 * incremental adds + one batch normalization (per-point scalar muls
 * would dominate the bench's start-up time). */
std::vector<G1Affine>
make_points(size_t n)
{
    std::vector<G1> jac(n);
    const G1Affine gen = curve::g1_generator().to_affine();
    G1 acc = G1::from_affine(gen);
    for (size_t i = 0; i < n; ++i) {
        jac[i] = acc;
        acc = acc.add_mixed(gen);
    }
    return curve::batch_to_affine<curve::G1Params>(
        std::span<const G1>(jac));
}

struct Side {
    const char *label = "";
    double best_ms = 0;
    uint64_t fq_muls = 0;

    template <typename F>
    void
    rep(size_t r, F &&kernel)
    {
        ff::ModmulScope scope;
        auto t0 = Clock::now();
        kernel();
        double ms = ms_since(t0);
        if (r == 0 || ms < best_ms) best_ms = ms;
        fq_muls = scope.fq_delta();
    }
};

}  // namespace

int
main(int argc, char **argv)
{
    size_t n = size_t(1) << 16;
    unsigned window = 0;
    size_t reps = 1;
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--points") && i + 1 < argc) {
            n = size_t(std::atoll(argv[++i]));
        } else if (!std::strcmp(argv[i], "--window") && i + 1 < argc) {
            window = unsigned(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = size_t(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--quick")) {
            // CI smoke size: large enough that the bucket-aggregation
            // fraction (where signed digits pay off) is representative,
            // small enough to stay under a second per rep.
            n = size_t(1) << 15;
            reps = 2;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        }
    }
    if (n == 0 || reps == 0) {
        std::fprintf(stderr, "--points and --reps must be positive\n");
        return 2;
    }

    bench::title("MSM: signed-digit affine-batch Pippenger vs. seed "
                 "kernel, n = " + std::to_string(n));

    std::printf("generating %zu base points...\n", n);
    auto points = make_points(n);
    std::mt19937_64 rng(0x5eed1);
    std::vector<Fr> scalars(n);
    for (auto &s : scalars) s = Fr::random(rng);

    // Reps are interleaved (ref, new, ref, new, ...) so a machine-state
    // shift mid-bench (noisy neighbors, frequency steps) hits both
    // kernels instead of skewing the ratio.
    G1 got_new, got_ref;
    Side side_new{"signed-affine"};
    Side side_ref{"seed-jacobian"};
    for (size_t r = 0; r < reps; ++r) {
        side_ref.rep(r, [&] {
            got_ref = curve::msm_reference(points, scalars, window);
        });
        side_new.rep(r, [&] {
            got_new = curve::msm(points, scalars, window);
        });
    }

    // Cross-checks: the two kernels agree; both agree with the naive
    // reference on a prefix; serial == threaded bit-for-bit with exact
    // counter migration (the ff::parallel_for contract).
    bool match_ref = got_new == got_ref;
    size_t prefix = std::min<size_t>(n, 64);
    G1 naive = curve::msm_naive(
        std::span<const G1Affine>(points).first(prefix),
        std::span<const Fr>(scalars).first(prefix));
    G1 prefix_new = curve::msm(
        std::span<const G1Affine>(points).first(prefix),
        std::span<const Fr>(scalars).first(prefix));
    bool match_naive = prefix_new == naive;

    G1 serial, threaded;
    uint64_t serial_muls = 0, threaded_muls = 0;
    {
        ff::ParallelismGuard guard(1);
        ff::ModmulScope scope;
        serial = curve::msm(points, scalars, window);
        serial_muls = scope.total_delta();
    }
    {
        ff::ParallelismGuard guard(8);
        ff::ModmulScope scope;
        threaded = curve::msm(points, scalars, window);
        threaded_muls = scope.total_delta();
    }
    bool match_parallel =
        serial.to_affine() == threaded.to_affine() &&
        serial_muls == threaded_muls;

    bench::Table table(
        {{"kernel", 16}, {"best ms", 12}, {"Fq muls", 14}, {"muls/pt", 10}});
    for (const Side *s : {&side_ref, &side_new}) {
        table.row({s->label, bench::fmt(s->best_ms),
                   bench::fmt_int(s->fq_muls),
                   bench::fmt(double(s->fq_muls) / double(n), 1)});
    }

    double speedup =
        side_new.best_ms > 0 ? side_ref.best_ms / side_new.best_ms : 0;
    double mul_ratio = side_new.fq_muls > 0
                           ? double(side_ref.fq_muls) / double(side_new.fq_muls)
                           : 0;
    std::printf("\nspeedup: %.2fx wall time, %.2fx Fq muls "
                "(ref agrees: %s, naive prefix agrees: %s, "
                "serial == threaded: %s)\n",
                speedup, mul_ratio, match_ref ? "yes" : "NO",
                match_naive ? "yes" : "NO", match_parallel ? "yes" : "NO");

    bool ok = match_ref && match_naive && match_parallel && speedup >= 2.0;

    if (json_path != nullptr) {
        using obs::jsonv::Value;
        auto side_json = [](const Side &s) {
            Value o = Value::object();
            o.set("best_ms", Value::of(s.best_ms));
            o.set("fq_muls", Value::of(uint64_t(s.fq_muls)));
            return o;
        };
        Value metrics = Value::object();
        metrics.set("points", Value::of(uint64_t(n)));
        metrics.set("reps", Value::of(uint64_t(reps)));
        metrics.set("reference", side_json(side_ref));
        metrics.set("signed_affine", side_json(side_new));
        metrics.set("speedup", Value::of(speedup));
        metrics.set("fq_mul_ratio", Value::of(mul_ratio));
        metrics.set("matches_reference", Value::of(match_ref));
        metrics.set("matches_naive_prefix", Value::of(match_naive));
        metrics.set("serial_matches_threaded", Value::of(match_parallel));
        metrics.set("meets_2x_target", Value::of(speedup >= 2.0));
        if (!bench::write_unified_report(
                json_path, "msm", std::move(metrics),
                {{"matches_reference", match_ref,
                  "signed-affine MSM agrees with the reference"},
                 {"matches_naive_prefix", match_naive,
                  "prefix agrees with the naive MSM"},
                 {"serial_matches_threaded", match_parallel,
                  "threaded result and modmul count match serial"},
                 {"meets_2x_target", speedup >= 2.0,
                  "overhauled MSM at least 2x the reference"}})) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 2;
        }
        std::printf("wrote %s\n", json_path);
    }

    if (!ok) {
        std::fprintf(stderr,
                     "FAILED: msm overhaul below target (speedup=%.2fx, "
                     "ref=%d, naive=%d, parallel=%d)\n",
                     speedup, match_ref, match_naive, match_parallel);
        return 1;
    }
    return 0;
}
