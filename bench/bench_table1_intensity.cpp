/**
 * @file
 * Table 1 reproduction: modular-multiplication counts, data movement
 * and arithmetic intensity (modmul/byte) of the HyperPlonk kernels,
 * measured by running our instrumented software prover.
 *
 * The prover runs at a benchmark-friendly size (default 2^12, override
 * with ZKSPEED_BENCH_MU); modmul counts and bytes scale linearly in the
 * gate count for every kernel except the MSMs (whose per-point cost
 * grows slowly with the Pippenger window), so arithmetic intensity —
 * the column that drives the paper's architectural conclusions — is
 * directly comparable with the paper's 2^20 measurements. Expected
 * shape: MSM kernels at ~8 modmul/byte on top, SumCheck-family kernels
 * two orders of magnitude lower, MLE updates at the bottom.
 */
#include <algorithm>
#include <cstdlib>
#include <random>

#include "hyperplonk/profile.hpp"
#include "hyperplonk/prover.hpp"
#include "report.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::hyperplonk;

    size_t mu = 12;
    if (const char *env = std::getenv("ZKSPEED_BENCH_MU")) {
        mu = std::strtoul(env, nullptr, 10);
    }
    std::mt19937_64 rng(2024);
    auto [index, wit] = random_circuit(mu, rng);
    auto srs = std::make_shared<pcs::Srs>(pcs::Srs::generate(mu, rng));
    auto [pk, vk] = keygen(std::move(index), srs);

    Profiler::instance().reset();
    Proof proof = prove(pk, wit);
    bool ok = verify(vk, wit.public_inputs(pk.index), proof);

    bench::title("Table 1: kernel characterisation at 2^" +
                 std::to_string(mu) + " gates (measured)");
    bench::Table t({{"Kernel", 22}, {"Modmuls (M)", 13},
                    {"Input (MB)", 12}, {"Output (MB)", 13},
                    {"Modmul/byte", 13}, {"Time (ms)", 11}});
    // Sort by arithmetic intensity, as the paper does.
    auto kernels = Profiler::instance().kernels();
    std::vector<std::pair<std::string, KernelProfile>> rows(
        kernels.begin(), kernels.end());
    std::sort(rows.begin(), rows.end(), [](auto &a, auto &b) {
        return a.second.arithmetic_intensity() >
               b.second.arithmetic_intensity();
    });
    for (const auto &[name, k] : rows) {
        t.row({name, bench::fmt(double(k.modmuls) / 1e6, 3),
               bench::fmt(double(k.bytes_in) / 1e6, 2),
               bench::fmt(double(k.bytes_out) / 1e6, 2),
               bench::fmt(k.arithmetic_intensity(), 3),
               bench::fmt(k.seconds * 1e3, 1)});
    }
    std::printf("\nPaper reference at 2^20 (modmul/byte): Poly Open "
                "MSMs 8.70, Wire Identity MSMs 8.59, Witness MSMs "
                "7.83, Batch Evaluations 0.28, ZeroCheck Rounds 0.22, "
                "Fraction MLE 0.16, PermCheck Rounds 0.13, Linear "
                "Combine 0.07, OpenCheck Rounds 0.04, Construct N&D "
                "0.04, Product MLE 0.03, All MLE Updates 0.01\n");
    std::printf("\nProof verified: %s; proof size %zu bytes\n",
                ok ? "yes" : "NO (BUG)", proof.size_bytes());
    return ok ? 0 : 1;
}
