/**
 * @file
 * Figure 9 reproduction: area/runtime Pareto frontiers at 2^20 gates
 * for seven off-chip bandwidths, plus the global frontier and the
 * highlighted points A-D.
 *
 * Expected shape: HBM3-scale bandwidths (1-4 TB/s) dominate the
 * high-performance (left) end; above ~300 mm^2 the globally optimal
 * designs run >2x faster than any 512 GB/s design; low-bandwidth
 * frontiers remain viable at relaxed runtime targets.
 */
#include "report.hpp"
#include "sim/cpu_model.hpp"
#include "sim/dse.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::sim;

    Workload wl = Workload::mock(20);
    bench::title("Figure 9: Pareto frontiers, 2^20 gates");
    std::printf("Sweeping the full Table-2 design space "
                "(%zu configs per bandwidth x 7 bandwidths)...\n",
                Dse::grid_for_bandwidth(64).size());
    auto sweep = Dse::sweep(wl, /*sram_target_mu=*/20);

    for (const auto &[bw, front] : sweep.per_bw) {
        std::printf("\n-- %g GB/s frontier (%zu points, showing knees)\n",
                    bw, front.size());
        bench::Table t({{"Runtime (ms)", 14},
                        {"Area (mm^2)", 13},
                        {"Config", 70}});
        // Print a decimated view: every k-th point.
        size_t stride = std::max<size_t>(1, front.size() / 8);
        for (size_t i = 0; i < front.size(); i += stride) {
            t.row({bench::fmt(front[i].runtime_ms, 3),
                   bench::fmt(front[i].area_mm2, 1),
                   front[i].config.describe()});
        }
    }

    std::printf("\n-- Global Pareto frontier (designs under 50 ms)\n");
    bench::Table g({{"Runtime (ms)", 14},
                    {"Area (mm^2)", 13},
                    {"BW (GB/s)", 11},
                    {"Config", 64}});
    for (const auto &p : sweep.global) {
        if (p.runtime_ms > 50) continue;
        g.row({bench::fmt(p.runtime_ms, 3), bench::fmt(p.area_mm2, 1),
               bench::fmt(p.config.bandwidth_gbps, 0),
               p.config.describe()});
    }

    // Highlighted points A-D: fastest design per bandwidth tier.
    bench::title("Pareto points A-D (fastest per bandwidth)");
    const char *names[] = {"A", "B", "C", "D"};
    double tiers[] = {512, 1024, 2048, 4096};
    for (int i = 0; i < 4; ++i) {
        for (const auto &[bw, front] : sweep.per_bw) {
            if (bw != tiers[i] || front.empty()) continue;
            const auto &p = front.front();
            std::printf("%s: %7.3f ms, %7.1f mm^2  @ %g GB/s  (%s)\n",
                        names[i], p.runtime_ms, p.area_mm2, bw,
                        p.config.describe().c_str());
        }
    }

    // Headline claims.
    double best512 = 1e300, best_global_300 = 1e300;
    for (const auto &[bw, front] : sweep.per_bw) {
        if (bw == 512) {
            for (const auto &p : front) {
                best512 = std::min(best512, p.runtime_ms);
            }
        }
    }
    for (const auto &p : sweep.global) {
        if (p.area_mm2 >= 300) {
            best_global_300 = std::min(best_global_300, p.runtime_ms);
        }
    }
    std::printf("\nBeyond 300 mm^2: global-optimal vs best 512 GB/s "
                "design: %.2fx (paper: >2x)\n",
                best512 / best_global_300);
    std::printf("Speedup of best >=300mm^2 design over CPU at 2^20: "
                "%.0fx (paper: >700x)\n",
                CpuModel::total_ms(20) / best_global_300);
    return 0;
}
