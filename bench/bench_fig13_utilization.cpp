/**
 * @file
 * Figure 13 reproduction: per-unit utilisation and compute-area share
 * of the highlighted design (Table 5) proving 2^20 gates.
 *
 * Expected shape: the MSM unit is both the largest (~65% of compute
 * area) and the busiest; small units (SHA3, N&D, FracMLE) are rarely
 * busy but cost almost nothing.
 */
#include "report.hpp"
#include "sim/chip.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::sim;

    Chip chip(DesignConfig::paper_default());
    auto rep = chip.run(Workload::mock(20));
    AreaBreakdown a = chip.area();
    double compute = a.compute_total();

    bench::title("Figure 13: unit utilisation and area share (2^20)");
    bench::Table t({{"Unit", 18}, {"Utilization", 13},
                    {"Area (mm^2)", 13}, {"Compute-area share", 20}});
    const std::tuple<const char *, double, double> rows[] = {
        {"MSM", rep.utilization.at("MSM"), a.msm},
        {"Sumcheck", rep.utilization.at("Sumcheck"), a.sumcheck},
        {"MLE Update", rep.utilization.at("MLE Update"), a.mle_update},
        {"Multifunction", rep.utilization.at("Multifunction"), a.mtu},
        {"Construct N&D", rep.utilization.at("Construct N&D"),
         a.construct_nd},
        {"FracMLE", rep.utilization.at("FracMLE"), a.fracmle},
        {"MLE Combine", rep.utilization.at("MLE Combine"),
         a.mle_combine},
        {"SHA3", rep.utilization.at("SHA3"), 0.005888},
    };
    for (const auto &[name, util, area] : rows) {
        t.row({name, bench::fmt(100 * util, 1) + "%",
               bench::fmt(area, 2),
               bench::fmt(100 * area / compute, 2) + "% AU"});
    }
    std::printf("\nPaper area-utilisation reference: MSM 64.6%%, "
                "Sumcheck 15.3%%, MLE Combine 5.9%%, MTU 7.5%%.\n");
    return 0;
}
