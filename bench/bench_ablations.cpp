/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *  - SumCheck-PE modmul resource sharing (Section 4.1.4)
 *  - MLE Combine multiplier sharing (Section 4.5)
 *  - MSM scalar-bank elimination (Section 4.2.1)
 *  - on-chip MLE compression (Section 4.6)
 *  - MTU multifunction reuse (Section 4.3.3)
 *  - grouped vs serial bucket aggregation (Section 4.2.2)
 *  - cycle-level bucket-conflict simulation vs the analytic model
 */
#include "report.hpp"
#include "sim/chip.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::sim;

    DesignConfig cfg = DesignConfig::paper_default();

    bench::title("Ablation: published area/bandwidth savings");
    bench::Table t({{"Optimization", 38}, {"Without", 12},
                    {"With", 12}, {"Saving", 10}, {"Paper", 10}});
    {
        double wo = kSumcheckPeModmulsUnshared * kModmulAreaFr;
        double wi = kSumcheckPeModmuls * kModmulAreaFr;
        t.row({"SumCheck PE modmul sharing (mm^2/PE)", bench::fmt(wo),
               bench::fmt(wi), bench::fmt(100 * (1 - wi / wo), 1) + "%",
               "48.9%"});
    }
    {
        double wo = MleCombineUnit::area_without_sharing();
        double wi = MleCombineUnit::area();
        t.row({"MLE Combine mult sharing (mm^2)", bench::fmt(wo),
               bench::fmt(wi), bench::fmt(100 * (1 - wi / wo), 1) + "%",
               "41%"});
    }
    {
        // 4 SRAM banks (dedicated scalar bank) vs 3 (Z bank reuse).
        double wo = 3.66, wi = 3.0;
        t.row({"MSM scalar-bank elimination (banks)", bench::fmt(wo, 2),
               bench::fmt(wi, 2),
               bench::fmt(100 * (1 - wi / wo), 1) + "%", "18%"});
    }
    {
        MemorySystem mem(cfg);
        double wo = mem.global_sram_mb_uncompressed();
        double wi = mem.global_sram_mb();
        t.row({"MLE compression (MB on-chip)", bench::fmt(wo, 0),
               bench::fmt(wi, 0), bench::fmt(wo / wi, 1) + "x",
               "10-11x"});
    }
    {
        MtuUnit mtu(cfg);
        double wo = mtu.area_without_reuse();
        double wi = mtu.area();
        t.row({"MTU multifunction reuse (mm^2)", bench::fmt(wo),
               bench::fmt(wi), bench::fmt(100 * (1 - wi / wo), 1) + "%",
               "41.6%"});
    }

    bench::title("Ablation: Poly-Open bandwidth with resident MLEs");
    {
        // Section 4.6: only phi and pi are fetched from HBM during the
        // Polynomial Opening linear combinations; the other 11 tables
        // are resident, cutting this step's input traffic by 84%.
        double all13 = 13.0, offchip = 2.0;
        std::printf("Off-chip tables: %.0f of 13 -> input-bandwidth "
                    "saving %.0f%% (paper: 84%%)\n", offchip,
                    100.0 * (1 - offchip / all13));
    }

    bench::title("Ablation: aggregation scheme at the chip level");
    {
        Workload wl = Workload::mock(20);
        // Swap the aggregation scheme inside the MSM model by re-running
        // the dense-cycles model with each scheme for the wiring MSMs.
        MsmUnit msm(cfg);
        uint64_t ours = msm.dense_cycles(1 << 20, 16,
                                         Aggregation::zkspeed_grouped);
        uint64_t szkp = msm.dense_cycles(1 << 20, 16,
                                         Aggregation::szkp_serial);
        std::printf("Dense 2^20 MSM: grouped %.3f ms vs serial %.3f ms "
                    "(%.1f%% faster)\n", double(ours) / 1e6,
                    double(szkp) / 1e6,
                    100.0 * (1 - double(ours) / double(szkp)));
        uint64_t small_ours =
            msm.dense_cycles(32, 16, Aggregation::zkspeed_grouped);
        uint64_t small_szkp =
            msm.dense_cycles(32, 16, Aggregation::szkp_serial);
        std::printf("32-point MSM: grouped %llu vs serial %llu cycles "
                    "(%.1fx)\n", (unsigned long long)small_ours,
                    (unsigned long long)small_szkp,
                    double(small_szkp) / double(small_ours));
        (void)wl;
    }

    bench::title("Validation: cycle-level bucket sim vs analytic model");
    {
        MsmUnit msm(cfg);
        bench::Table v({{"Points", 10}, {"Simulated", 12},
                        {"Analytic n/PEs", 16}, {"Ratio", 8}});
        for (uint64_t n : {uint64_t(1) << 14, uint64_t(1) << 16,
                           uint64_t(1) << 18}) {
            uint64_t sim = msm.simulate_bucket_phase(n, 16, 99);
            double ana = double(n) / 16.0;
            v.row({bench::fmt_int(n), bench::fmt_int(sim),
                   bench::fmt(ana, 0),
                   bench::fmt(double(sim) / ana, 3)});
        }
    }
    return 0;
}
