/**
 * @file
 * The paper's motivating asymptotic claim (Sections 1 and 9): replacing
 * NTT-based encodings, O(n log n), with SumCheck, O(n), changes the
 * prover's scaling. We measure both kernels of our own library over a
 * size sweep and report modmul counts and wall time per element.
 *
 * Expected shape: NTT modmuls/element grow ~ log n; SumCheck
 * modmuls/element stay flat.
 */
#include <chrono>
#include <random>

#include "ff/ntt.hpp"
#include "hyperplonk/sumcheck.hpp"
#include "report.hpp"

namespace {

using zkspeed::ff::Fr;
using namespace zkspeed;

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

}  // namespace

int
main()
{
    std::mt19937_64 rng(9);
    bench::title("Asymptotic motivation: NTT O(n log n) vs SumCheck O(n)");
    bench::Table t({{"log2(n)", 9}, {"NTT muls/elem", 15},
                    {"SC muls/elem", 14}, {"NTT ns/elem", 13},
                    {"SC ns/elem", 12}, {"NTT/SC muls", 13}});
    for (size_t mu : {10u, 12u, 14u, 16u}) {
        const size_t n = size_t(1) << mu;
        // NTT forward pass.
        ff::NttDomain d(mu);
        std::vector<Fr> a(n);
        for (auto &x : a) x = Fr::random(rng);
        ff::ModmulScope ntt_scope;
        auto t0 = std::chrono::steady_clock::now();
        d.forward(a);
        double ntt_secs = seconds_since(t0);
        double ntt_muls = double(ntt_scope.fr_delta());

        // One full SumCheck (all rounds) over a degree-2 product —
        // the HyperPlonk replacement for polynomial identity checks.
        mle::VirtualPolynomial vp(mu);
        auto m1 = std::make_shared<mle::Mle>(mle::Mle::random(mu, rng));
        auto m2 = std::make_shared<mle::Mle>(mle::Mle::random(mu, rng));
        vp.add_product(Fr::one(), {m1, m2});
        hash::Transcript tr("bench");
        ff::ModmulScope sc_scope;
        t0 = std::chrono::steady_clock::now();
        auto res = hyperplonk::sumcheck_prove(vp, tr);
        double sc_secs = seconds_since(t0);
        double sc_muls = double(sc_scope.fr_delta());
        (void)res;

        t.row({bench::fmt_int(mu), bench::fmt(ntt_muls / n, 2),
               bench::fmt(sc_muls / n, 2),
               bench::fmt(ntt_secs * 1e9 / n, 1),
               bench::fmt(sc_secs * 1e9 / n, 1),
               bench::fmt(ntt_muls / sc_muls, 2)});
    }
    std::printf("\nExpected: the NTT muls/element column grows with "
                "log2(n); the SumCheck column is flat, so the final "
                "ratio widens — the paper's O(n log n) -> O(n) "
                "argument.\n");
    return 0;
}
