/**
 * @file
 * Table 3 reproduction: end-to-end runtimes on the five real-world
 * workloads for the fixed highlighted design (Table 5 configuration,
 * 2 TB/s), against the CPU baseline.
 *
 * Expected shape: speedups in the 700-900x range, rising with problem
 * size, geomean ~800x.
 *
 * A second table drives the scenario workload library (src/scenarios/)
 * through the same design: every honest registry family is built, its
 * real witness scalar population measured, and the resulting calibrated
 * workload run on the chip model — so new scenario families
 * automatically show up in the paper-style reporting.
 */
#include "report.hpp"
#include "scenarios/registry.hpp"
#include "sim/chip.hpp"
#include "sim/cpu_model.hpp"

namespace {

/** Measure the witness scalar population across the three wire MLEs. */
zkspeed::sim::Workload
workload_from_instance(const zkspeed::scenarios::Instance &inst)
{
    size_t zeros = 0, ones = 0, total = 0;
    for (const auto &w : inst.witness.w) {
        for (size_t i = 0; i < w.size(); ++i) {
            if (w[i].is_zero()) ++zeros;
            else if (w[i].is_one()) ++ones;
            ++total;
        }
    }
    auto wl = zkspeed::sim::Workload::from_stats(
        inst.spec.name, inst.circuit.num_vars, zeros, ones, total);
    // Lookup circuits carry an extra protocol step; price it.
    wl.table_rows = inst.circuit.table_rows;
    wl.lookup_gates = inst.circuit.num_lookup_gates();
    return wl;
}

}  // namespace

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::sim;

    // Paper-reported values for side-by-side comparison.
    const double paper_cpu[] = {1429, 8619, 18637, 37469, 74052};
    const double paper_zk[] = {1.984, 11.405, 22.082, 43.451, 86.181};

    Chip chip(DesignConfig::paper_default());
    bench::title("Table 3: zkSpeed on real-world workloads");
    bench::Table t({{"Workload", 30}, {"Size", 7},
                    {"CPU ms (model)", 16}, {"CPU ms (paper)", 16},
                    {"zkSpeed ms", 12}, {"zkSpeed (paper)", 17},
                    {"Speedup", 10}});
    std::vector<double> speedups;
    auto wls = Workload::paper_workloads();
    for (size_t i = 0; i < wls.size(); ++i) {
        const auto &wl = wls[i];
        double cpu = CpuModel::total_ms(wl.mu);
        auto rep = chip.run(wl);
        double sp = cpu / rep.runtime_ms;
        speedups.push_back(sp);
        t.row({wl.name, "2^" + std::to_string(wl.mu),
               bench::fmt(cpu, 0), bench::fmt(paper_cpu[i], 0),
               bench::fmt(rep.runtime_ms, 3), bench::fmt(paper_zk[i], 3),
               bench::fmt(sp, 0) + "x"});
    }
    std::printf("\nGeomean speedup: %.0fx (paper: 801x)\n",
                bench::geomean(speedups));
    std::printf("Design: %s\n",
                DesignConfig::paper_default().describe().c_str());
    AreaBreakdown a = chip.area();
    std::printf("Total area: %.1f mm^2 (paper: 366.46 mm^2)\n",
                a.total());

    // ------------------------------------------------------------------
    // Scenario registry on the same design: measured witness sparsity
    // per family, calibrated Sparse-MSM profile on the chip.
    // ------------------------------------------------------------------
    bench::title("Scenario library on the highlighted design");
    bench::Table st({{"Scenario", 24}, {"Size", 7}, {"zeros", 8},
                     {"ones", 8}, {"CPU ms (model)", 16},
                     {"zkSpeed ms", 12}, {"Speedup", 10}});
    const auto &reg = scenarios::Registry::global();
    for (const auto &spec : reg.default_suite(/*seed=*/1,
                                              /*log_size=*/8)) {
        const auto *family = reg.find(spec.name);
        if (family->adversarial()) continue;  // no honest witness stats
        auto inst = reg.build(spec);
        Workload wl = workload_from_instance(inst);
        double cpu = CpuModel::total_ms(wl.mu);
        auto rep = chip.run(wl);
        st.row({wl.name, "2^" + std::to_string(wl.mu),
                bench::fmt(100.0 * wl.zeros_fraction, 1) + "%",
                bench::fmt(100.0 * wl.ones_fraction, 1) + "%",
                bench::fmt(cpu, 2), bench::fmt(rep.runtime_ms, 3),
                bench::fmt(cpu / rep.runtime_ms, 0) + "x"});
    }
    return 0;
}
