/**
 * @file
 * Table 3 reproduction: end-to-end runtimes on the five real-world
 * workloads for the fixed highlighted design (Table 5 configuration,
 * 2 TB/s), against the CPU baseline.
 *
 * Expected shape: speedups in the 700-900x range, rising with problem
 * size, geomean ~800x.
 */
#include "report.hpp"
#include "sim/chip.hpp"
#include "sim/cpu_model.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::sim;

    // Paper-reported values for side-by-side comparison.
    const double paper_cpu[] = {1429, 8619, 18637, 37469, 74052};
    const double paper_zk[] = {1.984, 11.405, 22.082, 43.451, 86.181};

    Chip chip(DesignConfig::paper_default());
    bench::title("Table 3: zkSpeed on real-world workloads");
    bench::Table t({{"Workload", 30}, {"Size", 7},
                    {"CPU ms (model)", 16}, {"CPU ms (paper)", 16},
                    {"zkSpeed ms", 12}, {"zkSpeed (paper)", 17},
                    {"Speedup", 10}});
    std::vector<double> speedups;
    auto wls = Workload::paper_workloads();
    for (size_t i = 0; i < wls.size(); ++i) {
        const auto &wl = wls[i];
        double cpu = CpuModel::total_ms(wl.mu);
        auto rep = chip.run(wl);
        double sp = cpu / rep.runtime_ms;
        speedups.push_back(sp);
        t.row({wl.name, "2^" + std::to_string(wl.mu),
               bench::fmt(cpu, 0), bench::fmt(paper_cpu[i], 0),
               bench::fmt(rep.runtime_ms, 3), bench::fmt(paper_zk[i], 3),
               bench::fmt(sp, 0) + "x"});
    }
    std::printf("\nGeomean speedup: %.0fx (paper: 801x)\n",
                bench::geomean(speedups));
    std::printf("Design: %s\n",
                DesignConfig::paper_default().describe().c_str());
    AreaBreakdown a = chip.area();
    std::printf("Total area: %.1f mm^2 (paper: 366.46 mm^2)\n",
                a.total());
    return 0;
}
