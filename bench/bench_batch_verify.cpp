/**
 * @file
 * Amortized batch verification vs. independent verification.
 *
 * Proves a pool of statements once, then times two ways of checking N
 * proofs:
 *   single — N independent hyperplonk::verify calls in pairing mode
 *            (each pays its own MSMs + multi-pairing + final exp);
 *   batch  — N verify_deferred algebraic passes + one BatchVerifier
 *            flush (one folded RLC MSM + one multi-pairing).
 *
 * Also demonstrates the bisection fallback: a batch with one corrupted
 * proof must isolate exactly that proof while still accepting the rest.
 *
 * Usage: bench_batch_verify [--n N] [--mu M] [--quick] [--json PATH]
 * --quick shrinks to a CI-smoke size; --json writes the measurements
 * as a single JSON object (the perf-trajectory artifact).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>

#include "hyperplonk/prover.hpp"
#include "report.hpp"
#include "verify/batch_verifier.hpp"

using namespace zkspeed;
using ff::Fr;

namespace {

using Clock = std::chrono::steady_clock;

double
ms_since(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

struct Statement {
    hyperplonk::VerifyingKey vk;
    std::vector<Fr> publics;
    hyperplonk::Proof proof;
};

}  // namespace

int
main(int argc, char **argv)
{
    size_t n = 64;
    size_t mu = 5;
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--n") && i + 1 < argc) {
            n = size_t(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--mu") && i + 1 < argc) {
            mu = size_t(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--quick")) {
            n = 8;
            mu = 3;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        }
    }
    if (n == 0 || mu == 0) {
        std::fprintf(stderr, "--n and --mu must be positive\n");
        return 2;
    }

    bench::title("Batch verification: N=" + std::to_string(n) +
                 " proofs, 2^" + std::to_string(mu) + " gates");

    // One SRS + a small pool of distinct statements, cycled to N proofs
    // (verification cost does not depend on witness values, so cycling
    // keeps the prove phase short without flattering the batch side).
    std::mt19937_64 srs_rng(0x5eed);
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(mu, srs_rng, /*keep_trapdoor=*/false));
    const size_t pool = std::min<size_t>(n, 8);
    std::vector<Statement> statements;
    statements.reserve(pool);
    auto prove_start = Clock::now();
    for (size_t i = 0; i < pool; ++i) {
        std::mt19937_64 rng(1000 + i);
        auto [index, witness] = hyperplonk::random_circuit(mu, rng);
        auto [pk, vk] = hyperplonk::keygen(index, srs);
        Statement st;
        st.publics = witness.public_inputs(index);
        st.proof = hyperplonk::prove(pk, witness);
        st.vk = vk;
        statements.push_back(std::move(st));
    }
    std::printf("proved %zu distinct statements in %.1f ms\n", pool,
                ms_since(prove_start));

    auto stmt = [&](size_t i) -> const Statement & {
        return statements[i % pool];
    };

    // --- single: N independent pairing-mode verifications. ---
    auto single_start = Clock::now();
    size_t single_ok = 0;
    for (size_t i = 0; i < n; ++i) {
        const Statement &s = stmt(i);
        if (hyperplonk::verify(s.vk, s.publics, s.proof,
                               hyperplonk::PcsCheckMode::pairing)) {
            ++single_ok;
        }
    }
    double single_ms = ms_since(single_start);

    // --- batch: N algebraic passes + one folded flush. ---
    auto batch_start = Clock::now();
    verifier::BatchVerifier bv;
    for (size_t i = 0; i < n; ++i) {
        const Statement &s = stmt(i);
        verifier::PairingAccumulator acc;
        if (!hyperplonk::verify_deferred(s.vk, s.publics, s.proof, acc)) {
            std::fprintf(stderr, "algebraic check unexpectedly failed\n");
            return 1;
        }
        bv.add(std::move(acc));
    }
    auto result = bv.flush();
    double batch_ms = ms_since(batch_start);

    // Assertion note: the single path pairs through the *fused*
    // unprepared Miller loop (no G2Prepared coefficient vectors are
    // materialised for one-shot pairings), while the batch path
    // prepares each distinct G2 point once and reuses the coefficients
    // across bisection probes. Both must reach identical verdicts —
    // the exit status enforces it (and test_pairing asserts the two
    // loops produce bit-identical Fq12 values).
    bool all_ok = single_ok == n && result.all_ok();
    double speedup = batch_ms > 0 ? single_ms / batch_ms : 0;

    bench::Table table({{"path", 28}, {"total ms", 12}, {"ms/proof", 12},
                        {"proofs/s", 12}});
    table.row({"single verify x N", bench::fmt(single_ms),
               bench::fmt(single_ms / double(n)),
               bench::fmt(1000.0 * double(n) / single_ms, 1)});
    table.row({"batch (fold + 1 pairing)", bench::fmt(batch_ms),
               bench::fmt(batch_ms / double(n)),
               bench::fmt(1000.0 * double(n) / batch_ms, 1)});
    std::printf("\nspeedup: %.2fx   (folded MSM: %zu points, "
                "multi-pairing: %zu pairs, %zu check(s))\n",
                speedup, result.stats.msm_points,
                result.stats.num_pairings, result.stats.pairing_checks);

    // --- bisection: one corrupted proof must be isolated. ---
    verifier::BatchVerifier bv_bad;
    const size_t bad_index = n / 2;
    for (size_t i = 0; i < n; ++i) {
        const Statement &s = stmt(i);
        auto proof = s.proof;
        if (i == bad_index) {
            auto &q = proof.gprime_proof.quotients[0];
            q = (curve::G1::from_affine(q) + curve::g1_generator())
                    .to_affine();
        }
        verifier::PairingAccumulator acc;
        if (!hyperplonk::verify_deferred(s.vk, s.publics, proof, acc)) {
            std::fprintf(stderr, "algebraic check unexpectedly failed\n");
            return 1;
        }
        bv_bad.add(std::move(acc));
    }
    auto bisect_start = Clock::now();
    auto bad_result = bv_bad.flush();
    double bisect_ms = ms_since(bisect_start);
    bool isolated = !bad_result.verdicts[bad_index];
    for (size_t i = 0; i < n && isolated; ++i) {
        if (i != bad_index && !bad_result.verdicts[i]) isolated = false;
    }
    std::printf("bisection: corrupted proof %zu %s in %zu probe(s), "
                "%.2f ms (honest proofs still accepted)\n",
                bad_index, isolated ? "isolated" : "NOT ISOLATED",
                bad_result.stats.bisection_steps, bisect_ms);

    if (json_path != nullptr) {
        using obs::jsonv::Value;
        Value metrics = Value::object();
        metrics.set("n", Value::of(uint64_t(n)));
        metrics.set("mu", Value::of(uint64_t(mu)));
        metrics.set("single_total_ms", Value::of(single_ms));
        metrics.set("batch_total_ms", Value::of(batch_ms));
        metrics.set("speedup", Value::of(speedup));
        metrics.set("single_proofs_per_s",
                    Value::of(1000.0 * double(n) / single_ms));
        metrics.set("batch_proofs_per_s",
                    Value::of(1000.0 * double(n) / batch_ms));
        metrics.set("folded_msm_points",
                    Value::of(uint64_t(result.stats.msm_points)));
        metrics.set("multi_pairing_pairs",
                    Value::of(uint64_t(result.stats.num_pairings)));
        metrics.set("bisection_probes",
                    Value::of(uint64_t(bad_result.stats.bisection_steps)));
        metrics.set("bisection_ms", Value::of(bisect_ms));
        metrics.set("corrupted_isolated", Value::of(isolated));
        metrics.set("all_valid_accepted", Value::of(all_ok));
        if (!bench::write_unified_report(
                json_path, "batch_verify", std::move(metrics),
                {{"all_valid_accepted", all_ok,
                  "every honest proof accepted by the folded check"},
                 {"corrupted_isolated", isolated,
                  "bisection isolated the corrupted proof"}})) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 2;
        }
        std::printf("wrote %s\n", json_path);
    }

    if (!all_ok || !isolated) {
        std::fprintf(stderr, "FAILED: verification disagreement\n");
        return 1;
    }
    return 0;
}
