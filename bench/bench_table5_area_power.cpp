/**
 * @file
 * Table 5 reproduction: area and average-power breakdown of the
 * highlighted zkSpeed design (1 MSM unit with 16 PEs / W=9 / 2K
 * points per PE, 2 SumCheck PEs, 11x4 MLE Update, 1 FracMLE, 2 TB/s).
 */
#include "report.hpp"
#include "sim/chip.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::sim;

    Chip chip(DesignConfig::paper_default());
    AreaBreakdown a = chip.area();
    auto rep = chip.run(Workload::mock(20));

    bench::title("Table 5: area and power of the highlighted design");
    bench::Table t({{"Module", 22}, {"Area mm^2", 11},
                    {"Paper mm^2", 12}, {"Power W", 9},
                    {"Paper W", 9}});
    auto power = [&](const char *k) {
        auto it = rep.power.find(k);
        return it == rep.power.end() ? 0.0 : it->second;
    };
    t.row({"MSM (16 PEs)", bench::fmt(a.msm), "105.64",
           bench::fmt(power("MSM")), "76.19"});
    t.row({"SumCheck (2 PEs)", bench::fmt(a.sumcheck), "24.96",
           bench::fmt(power("SumCheck")), "5.38"});
    t.row({"Construct N&D", bench::fmt(a.construct_nd), "1.35",
           bench::fmt(power("Construct N&D")), "0.19"});
    t.row({"FracMLE", bench::fmt(a.fracmle), "1.92",
           bench::fmt(power("FracMLE")), "0.25"});
    t.row({"MLE Combine", bench::fmt(a.mle_combine), "9.56",
           bench::fmt(power("MLE Combine")), "0.34"});
    t.row({"MLE Update", bench::fmt(a.mle_update), "5.84",
           bench::fmt(power("MLE Update")), "1.13"});
    t.row({"Multifunction Tree", bench::fmt(a.mtu), "12.28",
           bench::fmt(power("Multifunction Tree")), "4.16"});
    t.row({"Other", bench::fmt(a.other), "1.98",
           bench::fmt(power("Other")), "0.04"});
    t.row({"Total Compute", bench::fmt(a.compute_total()), "163.53",
           "", ""});
    t.row({"SRAM", bench::fmt(a.sram), "143.73",
           bench::fmt(power("SRAM")), "19.60"});
    t.row({"HBM3 (2 PHYs)", bench::fmt(a.hbm_phy), "59.20",
           bench::fmt(power("HBM PHY")), "63.60"});
    t.row({"Total Memory", bench::fmt(a.memory_total()), "202.93", "",
           ""});
    t.row({"Total", bench::fmt(a.total()), "366.46",
           bench::fmt(rep.total_power), "170.88"});

    double density = rep.total_power / a.total();
    std::printf("\nPower density: %.2f W/mm^2 (paper: 0.46, within the "
                "CPU's envelope)\n", density);
    return 0;
}
