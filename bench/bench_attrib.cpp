/**
 * @file
 * Perf-regression ledger + drift gate (DESIGN.md §13).
 *
 * Two jobs, one binary:
 *
 *  1. Baseline ledger: bench/baselines.json pins, per scenario, the
 *     *exact* deterministic counters of the proving pipeline — gate
 *     counts, prove modmuls (Fr/Fq, measured with parallelism pinned to
 *     1 so the counts are machine-independent) and proof bytes. Any
 *     divergence is a silent perf/correctness regression and fails the
 *     build naming the scenario and field.
 *
 *  2. Drift gate: runs the same roster through the conformance Harness
 *     and checks the kernel-level attribution report (obs/attrib):
 *     every prover kernel must join a modeled cycle count, no kernel
 *     may be unmapped, and each kernel's share-of-runtime drift ratio
 *     must stay inside the ledger's per-kernel bounds.
 *
 * It also merges every sibling BENCH_*.json artifact (the unified
 * "zkspeed-bench-v1" envelopes the other benches emit) into one
 * BENCH_summary.json and fails if any merged gate failed.
 *
 * Usage:
 *   bench_attrib [--quick] [--baselines PATH] [--json PATH]
 *                [--summary PATH] [--attrib PATH]
 *   bench_attrib --write-baselines PATH   # regenerate the ledger
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/attrib.hpp"
#include "obs/jsonv.hpp"
#include "report.hpp"
#include "runtime/service.hpp"
#include "scenarios/harness.hpp"
#include "scenarios/registry.hpp"

using namespace zkspeed;
using obs::jsonv::Value;

namespace {

/** The pinned roster: honest, deterministic families covering the
 * plain, sparse, lookup and Merkle paths. Order is the ledger order. */
struct RosterEntry {
    const char *family;
    size_t log_size;
    uint64_t seed;
};

const std::vector<RosterEntry> &
roster()
{
    static const std::vector<RosterEntry> r = {
        {"rescue-chain", 5, 101},
        {"sparse-arithmetic", 5, 102},
        {"merkle-membership", 5, 103},
        {"range-via-lookup", 5, 104},
    };
    return r;
}

/** Exact per-scenario counters (every field deterministic). */
struct Counters {
    std::string name;
    uint64_t log_size = 0;
    uint64_t seed = 0;
    uint64_t num_gates = 0;
    uint64_t active_gates = 0;
    uint64_t lookup_gates = 0;
    uint64_t modmul_fr = 0;
    uint64_t modmul_fq = 0;
    uint64_t proof_bytes = 0;
};

scenarios::Spec
make_spec(const RosterEntry &e)
{
    scenarios::Spec spec;
    spec.name = e.family;
    spec.log_size = e.log_size;
    spec.seed = e.seed;
    return spec;
}

/**
 * Measure the roster's exact counters: prove each scenario through a
 * single-worker service with ff parallelism pinned to 1, so the modmul
 * counts are independent of the host's core count.
 */
std::vector<Counters>
measure_counters()
{
    runtime::ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.total_parallelism = 1;
    cfg.record_trace = false;
    runtime::ProofService service(cfg);
    std::vector<Counters> out;
    for (const RosterEntry &e : roster()) {
        auto inst = scenarios::Registry::global().build(make_spec(e));
        runtime::JobRequest req;
        req.request_id = e.seed;
        req.circuit = inst.circuit;
        req.witness = inst.witness;
        auto resp = service.submit(req).get();
        Counters c;
        c.name = e.family;
        c.log_size = e.log_size;
        c.seed = e.seed;
        c.num_gates = inst.circuit.num_gates();
        c.active_gates = bench::active_gates(inst.circuit);
        c.lookup_gates = inst.circuit.num_lookup_gates();
        c.modmul_fr = resp.metrics.modmul_fr;
        c.modmul_fq = resp.metrics.modmul_fq;
        c.proof_bytes = resp.ok() ? resp.proof.size() : 0;
        out.push_back(std::move(c));
    }
    service.shutdown();
    return out;
}

/** Run the roster through the conformance harness and return the
 * attribution report (spans joined against the chip-model replay). */
obs::attrib::Report
measure_attrib(std::string *attrib_json)
{
    scenarios::Harness harness;
    for (const RosterEntry &e : roster()) {
        auto inst = scenarios::Registry::global().build(make_spec(e));
        auto res = harness.run(inst);
        if (!res.conformant) {
            std::fprintf(stderr, "bench_attrib: scenario %s is not "
                         "conformant: %s\n", e.family, res.detail.c_str());
        }
    }
    auto suite = harness.finish();
    if (attrib_json != nullptr) *attrib_json = suite.attrib_json;
    return suite.attrib;
}

Value
counters_json(const Counters &c)
{
    Value o = Value::object();
    o.set("name", Value::of(c.name));
    o.set("log_size", Value::of(c.log_size));
    o.set("seed", Value::of(c.seed));
    o.set("num_gates", Value::of(c.num_gates));
    o.set("active_gates", Value::of(c.active_gates));
    o.set("lookup_gates", Value::of(c.lookup_gates));
    o.set("modmul_fr", Value::of(c.modmul_fr));
    o.set("modmul_fq", Value::of(c.modmul_fq));
    o.set("proof_bytes", Value::of(c.proof_bytes));
    return o;
}

std::string
render_baselines(const std::vector<Counters> &counters,
                 const obs::attrib::Report &attrib)
{
    Value doc = Value::object();
    doc.set("schema", Value::of("zkspeed-baselines-v1"));
    Value scen = Value::array();
    for (const Counters &c : counters) scen.push(counters_json(c));
    doc.set("scenarios", std::move(scen));
    Value drift = Value::object();
    // Default bounds are deliberately generous: drift compares *shares*
    // of runtime (machine speed cancels), but relative kernel speeds
    // still vary across hosts and run-to-run at these sizes.
    Value dflt = Value::array();
    dflt.push(Value::of(1.0 / 64.0));
    dflt.push(Value::of(64.0));
    drift.set("default", std::move(dflt));
    Value kernels = Value::object();
    for (const auto &row : attrib.kernels) {
        if (row.drift_ratio <= 0) continue;
        Value b = Value::array();
        b.push(Value::of(row.drift_ratio / 32.0));
        b.push(Value::of(row.drift_ratio * 32.0));
        kernels.set(row.kernel, std::move(b));
    }
    drift.set("kernels", std::move(kernels));
    doc.set("drift", std::move(drift));
    return doc.render();
}

std::optional<std::string>
read_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct GateLog {
    std::vector<bench::Gate> gates;
    bool all_ok = true;

    void
    check(const std::string &name, bool ok, const std::string &detail)
    {
        gates.push_back({name, ok, detail});
        if (!ok) {
            all_ok = false;
            std::fprintf(stderr, "bench_attrib: GATE FAILED %s: %s\n",
                         name.c_str(), detail.c_str());
        }
    }
};

std::string
u64s(uint64_t v)
{
    return std::to_string(v);
}

/** Diff measured counters against the ledger, one gate per scenario. */
void
check_counters(const Value &baselines,
               const std::vector<Counters> &measured, GateLog &log)
{
    const Value *scen = baselines.find("scenarios");
    if (scen == nullptr || !scen->is_array()) {
        log.check("baselines_schema", false,
                  "baselines.json has no scenarios array");
        return;
    }
    log.check("baseline_roster_size",
              scen->items.size() == measured.size(),
              "ledger has " + u64s(scen->items.size()) +
                  " scenario(s), roster has " + u64s(measured.size()));
    for (const Value &b : scen->items) {
        const Value *name = b.find("name");
        if (name == nullptr || !name->is_string()) continue;
        const Counters *m = nullptr;
        for (const Counters &c : measured) {
            if (c.name == name->str) m = &c;
        }
        if (m == nullptr) {
            log.check("baseline_scenario_present", false,
                      "ledger scenario '" + name->str +
                          "' is not in the roster");
            continue;
        }
        auto field = [&](const char *key, uint64_t got) {
            const Value *want = b.find(key);
            if (want == nullptr || !want->is_integer()) {
                log.check("baseline_field", false,
                          name->str + "." + key + " missing from ledger");
                return;
            }
            log.check(
                "baseline:" + name->str + ":" + key,
                want->as_u64() == got,
                name->str + "." + key + ": ledger " +
                    u64s(want->as_u64()) + ", measured " + u64s(got));
        };
        field("num_gates", m->num_gates);
        field("active_gates", m->active_gates);
        field("lookup_gates", m->lookup_gates);
        field("modmul_fr", m->modmul_fr);
        field("modmul_fq", m->modmul_fq);
        field("proof_bytes", m->proof_bytes);
    }
}

/** Gate the attribution report against the ledger's drift bounds. */
void
check_drift(const Value &baselines, const obs::attrib::Report &attrib,
            GateLog &log)
{
    log.check("attrib_jobs_joined",
              attrib.jobs_joined == roster().size(),
              "joined " + u64s(attrib.jobs_joined) + " of " +
                  u64s(roster().size()) + " roster job(s)");
    log.check("attrib_modeled_cycles", attrib.modeled_total_cycles > 0,
              "attribution joined no modeled cycles");
    std::string unmapped;
    for (const std::string &k : attrib.unmapped_kernels) {
        if (!unmapped.empty()) unmapped += ", ";
        unmapped += k;
    }
    log.check("attrib_no_unmapped_kernels",
              attrib.unmapped_kernels.empty(),
              "prover kernel(s) missing from the attribution group "
              "table: " + unmapped);

    double lo = 1.0 / 64.0, hi = 64.0;
    const Value *drift = baselines.find("drift");
    const Value *kernels = nullptr;
    if (drift != nullptr && drift->is_object()) {
        const Value *dflt = drift->find("default");
        if (dflt != nullptr && dflt->is_array() &&
            dflt->items.size() == 2) {
            lo = dflt->items[0].as_double();
            hi = dflt->items[1].as_double();
        }
        kernels = drift->find("kernels");
    }
    for (const auto &row : attrib.kernels) {
        log.check("attrib_kernel_modeled:" + row.kernel,
                  row.modeled_cycles > 0,
                  "measured kernel '" + row.kernel +
                      "' has no modeled cycles");
        log.check("attrib_kernel_measured:" + row.kernel,
                  row.measured_seconds > 0,
                  "modeled kernel '" + row.kernel +
                      "' was never measured");
        if (row.modeled_cycles == 0 || row.measured_seconds <= 0) {
            continue;
        }
        double klo = lo, khi = hi;
        if (kernels != nullptr && kernels->is_object()) {
            const Value *b = kernels->find(row.kernel);
            if (b != nullptr && b->is_array() && b->items.size() == 2) {
                klo = b->items[0].as_double();
                khi = b->items[1].as_double();
            }
        }
        char detail[160];
        std::snprintf(detail, sizeof(detail),
                      "kernel '%s' drift %.4f vs bounds [%.4f, %.4f]",
                      row.kernel.c_str(), row.drift_ratio, klo, khi);
        log.check("attrib_drift:" + row.kernel,
                  row.drift_ratio >= klo && row.drift_ratio <= khi,
                  detail);
    }
}

/** Merge sibling BENCH_*.json envelopes into one summary document. */
void
merge_bench_reports(const std::string &summary_path,
                    const std::string &own_json, GateLog &log)
{
    namespace fs = std::filesystem;
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(".", ec)) {
        if (!entry.is_regular_file()) continue;
        std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) != 0 ||
            name.size() < 6 + 5 ||
            name.compare(name.size() - 5, 5, ".json") != 0) {
            continue;
        }
        if (name == fs::path(summary_path).filename().string()) continue;
        if (!own_json.empty() &&
            name == fs::path(own_json).filename().string()) {
            continue;
        }
        paths.push_back(name);
    }
    std::sort(paths.begin(), paths.end());

    Value doc = Value::object();
    doc.set("schema", Value::of("zkspeed-bench-summary-v1"));
    doc.set("build", obs::build_info_json());
    Value benches = Value::array();
    bool merged_ok = true;
    size_t merged = 0;
    for (const std::string &p : paths) {
        auto text = read_file(p);
        auto parsed =
            text.has_value() ? obs::jsonv::parse(*text) : std::nullopt;
        const Value *schema =
            parsed.has_value() ? parsed->find("schema") : nullptr;
        bool envelope_ok =
            schema != nullptr && schema->is_string() &&
            schema->str == "zkspeed-bench-v1" &&
            parsed->find("bench") != nullptr &&
            parsed->find("metrics") != nullptr &&
            parsed->find("gates") != nullptr;
        log.check("bench_envelope:" + p, envelope_ok,
                  p + ": zkspeed-bench-v1 envelope check");
        if (!envelope_ok) continue;
        if (!bench::gates_passed(*parsed)) {
            merged_ok = false;
            log.check("bench_gates:" + p, false,
                      p + " reports a failed gate");
        }
        Value entry = Value::object();
        entry.set("file", Value::of(p));
        entry.set("report", std::move(*parsed));
        benches.push(std::move(entry));
        ++merged;
    }
    doc.set("benches", std::move(benches));
    doc.set("merged", Value::of(uint64_t(merged)));
    doc.set("all_gates_passed", Value::of(merged_ok && log.all_ok));
    if (!obs::write_file(summary_path, doc.render())) {
        log.check("bench_summary_written", false,
                  "cannot write " + summary_path);
        return;
    }
    std::printf("merged %zu bench report(s) into %s\n", merged,
                summary_path.c_str());
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string baselines_path = "baselines.json";
    std::string write_path;
    std::string json_path;
    std::string summary_path;
    std::string attrib_path;
    for (int i = 1; i < argc; ++i) {
        auto arg = [&](const char *flag) {
            if (std::strcmp(argv[i], flag) != 0) return false;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a path\n", flag);
                std::exit(2);
            }
            return true;
        };
        if (std::strcmp(argv[i], "--quick") == 0) {
            // The roster is already CI-sized; accepted for symmetry
            // with the other benches' flags.
        } else if (arg("--baselines")) {
            baselines_path = argv[++i];
        } else if (arg("--write-baselines")) {
            write_path = argv[++i];
        } else if (arg("--json")) {
            json_path = argv[++i];
        } else if (arg("--summary")) {
            summary_path = argv[++i];
        } else if (arg("--attrib")) {
            attrib_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_attrib [--quick] [--baselines P] "
                         "[--json P] [--summary P] [--attrib P] | "
                         "--write-baselines P\n");
            return 2;
        }
    }

    bench::title("Exact baseline counters (parallelism pinned to 1)");
    auto counters = measure_counters();
    bench::Table t({{"Scenario", 20}, {"Gates", 8}, {"Active", 8},
                    {"Lookup", 8}, {"Fr muls", 10}, {"Fq muls", 10},
                    {"Proof B", 9}});
    for (const Counters &c : counters) {
        t.row({c.name, bench::fmt_int(c.num_gates),
               bench::fmt_int(c.active_gates),
               bench::fmt_int(c.lookup_gates),
               bench::fmt_int(c.modmul_fr), bench::fmt_int(c.modmul_fq),
               bench::fmt_int(c.proof_bytes)});
    }

    bench::title("Kernel drift vs chip model (conformance harness)");
    std::string attrib_json;
    auto attrib = measure_attrib(&attrib_json);
    bench::Table dt({{"Kernel", 20}, {"Meas ms", 10}, {"Model Mcyc", 12},
                     {"Meas %", 8}, {"Model %", 9}, {"Drift", 8}});
    for (const auto &row : attrib.kernels) {
        dt.row({row.kernel, bench::fmt(row.measured_seconds * 1e3),
                bench::fmt(double(row.modeled_cycles) / 1e6),
                bench::fmt(100.0 * row.measured_share, 1),
                bench::fmt(100.0 * row.modeled_share, 1),
                bench::fmt(row.drift_ratio)});
    }
    std::printf("%zu job(s) joined, %zu modeled-only, %zu "
                "measured-only, %zu/%zu span(s) joined\n",
                attrib.jobs_joined, attrib.jobs_modeled_only,
                attrib.jobs_measured_only, attrib.spans_joined,
                attrib.spans_seen);
    if (!attrib_path.empty()) {
        if (!obs::write_file(attrib_path, attrib_json)) {
            std::fprintf(stderr, "cannot write %s\n",
                         attrib_path.c_str());
            return 2;
        }
        std::printf("wrote %s\n", attrib_path.c_str());
    }

    if (!write_path.empty()) {
        if (!obs::write_file(write_path,
                             render_baselines(counters, attrib))) {
            std::fprintf(stderr, "cannot write %s\n", write_path.c_str());
            return 2;
        }
        std::printf("wrote %s\n", write_path.c_str());
        return 0;
    }

    GateLog log;
    auto ledger_text = read_file(baselines_path);
    if (!ledger_text.has_value()) {
        std::fprintf(stderr,
                     "bench_attrib: cannot read %s (run with "
                     "--write-baselines to create it)\n",
                     baselines_path.c_str());
        return 2;
    }
    auto ledger = obs::jsonv::parse(*ledger_text);
    const Value *schema =
        ledger.has_value() ? ledger->find("schema") : nullptr;
    if (schema == nullptr || !schema->is_string() ||
        schema->str != "zkspeed-baselines-v1") {
        std::fprintf(stderr, "bench_attrib: %s is not a "
                     "zkspeed-baselines-v1 ledger\n",
                     baselines_path.c_str());
        return 2;
    }
    check_counters(*ledger, counters, log);
    check_drift(*ledger, attrib, log);
    if (!summary_path.empty()) {
        merge_bench_reports(summary_path, json_path, log);
    }

    if (!json_path.empty()) {
        Value metrics = Value::object();
        metrics.set("scenarios", Value::of(uint64_t(counters.size())));
        metrics.set("jobs_joined", Value::of(attrib.jobs_joined));
        metrics.set("spans_joined", Value::of(attrib.spans_joined));
        metrics.set("kernels", Value::of(attrib.kernels.size()));
        metrics.set("measured_total_seconds",
                    Value::of(attrib.measured_total_seconds));
        metrics.set("modeled_total_cycles",
                    Value::of(attrib.modeled_total_cycles));
        if (!bench::write_unified_report(json_path, "attrib", metrics,
                                         log.gates)) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 2;
        }
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (!log.all_ok) {
        std::fprintf(stderr, "FAILED: baseline/drift gate(s) failed "
                     "(see above)\n");
        return 1;
    }
    std::printf("all baseline and drift gates passed\n");
    return 0;
}
