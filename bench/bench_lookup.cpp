/**
 * @file
 * Lookup argument vs. gate-based range checks: the constraint-count
 * and prover-time win the lookup subsystem exists for.
 *
 * Proves the same statement twice at the same bit width — a bank of
 * `values` range-checked words with their sum public — once through
 * the gate-based bit-decomposition bank (scenarios::circuits::
 * range_bank) and once through one LogUp lookup gate per value
 * (range_bank_lookup). Reports gate counts (pre-padding and padded
 * 2^mu), prover wall time, verification agreement, and the simulated
 * zkSpeed latency of both circuits (the LookupUnit prices the helper
 * passes and LookupCheck).
 *
 * Usage: bench_lookup [--values N] [--bits B] [--quick] [--json PATH]
 * Exit status is non-zero unless the lookup circuit shows >= 2x fewer
 * constraints AND lower prover time (the PR's acceptance gate).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>

#include "hyperplonk/prover.hpp"
#include "report.hpp"
#include "scenarios/circuits.hpp"
#include "sim/chip.hpp"
#include "sim/replay.hpp"

using namespace zkspeed;
using ff::Fr;

namespace {

using Clock = std::chrono::steady_clock;

double
ms_since(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

struct Side {
    const char *label = "";
    size_t raw_gates = 0;  ///< active (pre-padding) gate rows
    size_t mu = 0;
    double keygen_ms = 0;
    double prove_ms = 0;
    double verify_ms = 0;
    bool verified = false;
    double chip_ms = 0;  ///< simulated zkSpeed latency
    size_t proof_bytes = 0;
};

Side
run_side(const char *label,
         std::pair<hyperplonk::CircuitIndex, hyperplonk::Witness> built,
         const sim::DesignConfig &design)
{
    Side side;
    side.label = label;
    auto [index, witness] = std::move(built);
    side.raw_gates = bench::active_gates(index);
    side.mu = index.num_vars;

    std::mt19937_64 srs_rng(0x5eed ^ index.num_vars);
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, srs_rng));
    auto t0 = Clock::now();
    auto [pk, vk] = hyperplonk::keygen(index, srs);
    side.keygen_ms = ms_since(t0);

    t0 = Clock::now();
    auto proof = hyperplonk::prove(pk, witness);
    side.prove_ms = ms_since(t0);
    side.proof_bytes = proof.size_bytes();

    auto publics = witness.public_inputs(pk.index);
    t0 = Clock::now();
    side.verified = hyperplonk::verify(vk, publics, proof,
                                       hyperplonk::PcsCheckMode::pairing);
    side.verify_ms = ms_since(t0);

    // Chip-side pricing of the same job (LookupUnit models the lookup
    // circuit's extra step).
    size_t zeros = 0, ones = 0, total = 0;
    for (const auto &w : witness.w) {
        for (size_t i = 0; i < w.size(); ++i) {
            if (w[i].is_zero()) ++zeros;
            else if (w[i].is_one()) ++ones;
            ++total;
        }
    }
    sim::Workload wl =
        sim::Workload::from_stats(label, side.mu, zeros, ones, total);
    wl.table_rows = pk.index.table_rows;
    wl.lookup_gates = pk.index.num_lookup_gates();
    side.chip_ms = sim::Chip(design).run(wl).runtime_ms;
    return side;
}

}  // namespace

int
main(int argc, char **argv)
{
    size_t values = 256;
    unsigned bits = 8;
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--values") && i + 1 < argc) {
            values = size_t(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--bits") && i + 1 < argc) {
            bits = unsigned(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--quick")) {
            values = 32;
            bits = 8;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        }
    }
    if (values == 0 || bits == 0 || bits > 16) {
        std::fprintf(stderr, "--values must be positive, --bits in 1..16\n");
        return 2;
    }

    bench::title("Lookup argument vs. gate-based range bank: " +
                 std::to_string(values) + " values x " +
                 std::to_string(bits) + " bits");

    auto design = sim::DesignConfig::paper_default();
    std::mt19937_64 rng_gates(42), rng_lookup(42);
    Side gate_side = run_side(
        "gate-based",
        scenarios::circuits::range_bank(values, bits, rng_gates), design);
    Side lookup_side = run_side(
        "lookup",
        scenarios::circuits::range_bank_lookup(values, bits, rng_lookup),
        design);

    bench::Table table({{"path", 12}, {"gates", 10}, {"2^mu", 8},
                        {"keygen ms", 10}, {"prove ms", 10},
                        {"verify ms", 10}, {"chip ms", 10},
                        {"proof B", 9}});
    for (const Side *s : {&gate_side, &lookup_side}) {
        table.row({s->label, std::to_string(s->raw_gates),
                   std::to_string(size_t(1) << s->mu),
                   bench::fmt(s->keygen_ms), bench::fmt(s->prove_ms),
                   bench::fmt(s->verify_ms), bench::fmt(s->chip_ms, 4),
                   std::to_string(s->proof_bytes)});
    }

    double constraint_ratio =
        double(size_t(1) << gate_side.mu) /
        double(size_t(1) << lookup_side.mu);
    double raw_ratio =
        double(gate_side.raw_gates) / double(lookup_side.raw_gates);
    double prove_speedup = lookup_side.prove_ms > 0
                               ? gate_side.prove_ms / lookup_side.prove_ms
                               : 0;
    std::printf(
        "\nconstraints: %.1fx fewer padded (%.1fx fewer active), "
        "prover: %.2fx faster, chip: %.2fx faster\n",
        constraint_ratio, raw_ratio, prove_speedup,
        lookup_side.chip_ms > 0 ? gate_side.chip_ms / lookup_side.chip_ms
                                : 0);

    bool ok = gate_side.verified && lookup_side.verified &&
              constraint_ratio >= 2.0 && prove_speedup > 1.0;

    if (json_path != nullptr) {
        using obs::jsonv::Value;
        auto side_json = [](const auto &side) {
            Value o = Value::object();
            o.set("active_gates", Value::of(uint64_t(side.raw_gates)));
            o.set("mu", Value::of(uint64_t(side.mu)));
            o.set("prove_ms", Value::of(side.prove_ms));
            o.set("verify_ms", Value::of(side.verify_ms));
            o.set("chip_ms", Value::of(side.chip_ms));
            o.set("proof_bytes", Value::of(uint64_t(side.proof_bytes)));
            return o;
        };
        Value metrics = Value::object();
        metrics.set("values", Value::of(uint64_t(values)));
        metrics.set("bits", Value::of(uint64_t(bits)));
        metrics.set("gate_based", side_json(gate_side));
        metrics.set("lookup", side_json(lookup_side));
        metrics.set("constraint_ratio", Value::of(constraint_ratio));
        metrics.set("active_gate_ratio", Value::of(raw_ratio));
        metrics.set("prover_speedup", Value::of(prove_speedup));
        metrics.set("both_verified",
                    Value::of(gate_side.verified && lookup_side.verified));
        metrics.set("meets_2x_constraint_target",
                    Value::of(constraint_ratio >= 2.0));
        if (!bench::write_unified_report(
                json_path, "lookup", std::move(metrics),
                {{"both_verified",
                  gate_side.verified && lookup_side.verified,
                  "both proof paths verified"},
                 {"meets_2x_constraint_target", constraint_ratio >= 2.0,
                  "lookup bank cuts padded constraints >= 2x"},
                 {"prover_faster", prove_speedup > 1.0,
                  "lookup prover beats the gate-based prover"}})) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 2;
        }
        std::printf("wrote %s\n", json_path);
    }

    if (!ok) {
        std::fprintf(stderr,
                     "FAILED: lookup did not beat the gate-based bank "
                     "(verified=%d/%d, constraint_ratio=%.2f, "
                     "prover_speedup=%.2f)\n",
                     gate_side.verified, lookup_side.verified,
                     constraint_ratio, prove_speedup);
        return 1;
    }
    return 0;
}
