/**
 * @file
 * Figure 11 reproduction: MSM and SumCheck scaling with PE count and
 * memory bandwidth. Speedups are normalized to 1 PE at 512 GB/s.
 *
 * Expected shape: MSMs are compute-bound — near-linear scaling in PEs,
 * insensitive to bandwidth (sublinear at the top due to Polynomial
 * Opening serialization). SumChecks are memory-bound — they scale with
 * PEs only until the bandwidth saturates, then plateau; more bandwidth
 * raises the plateau.
 */
#include "report.hpp"
#include "sim/chip.hpp"

namespace {

using namespace zkspeed::sim;

/** Total cycles of all MSM work in a proof at 2^20 gates. */
uint64_t
msm_cycles(const DesignConfig &cfg)
{
    Chip chip(cfg);
    auto rep = chip.run(Workload::mock(20));
    return rep.kernel_cycles.at("Witness MSMs") +
           rep.kernel_cycles.at("Wiring MSMs") +
           rep.kernel_cycles.at("PolyOpen MSMs");
}

/** Total cycles of all SumCheck work in a proof at 2^20 gates. */
uint64_t
sumcheck_cycles(const DesignConfig &cfg)
{
    Chip chip(cfg);
    auto rep = chip.run(Workload::mock(20));
    return rep.kernel_cycles.at("ZeroCheck") +
           rep.kernel_cycles.at("PermCheck") +
           rep.kernel_cycles.at("OpenCheck");
}

}  // namespace

int
main()
{
    using namespace zkspeed;
    const double bws[] = {512, 1024, 2048, 4096};

    bench::title("Figure 11 (left): MSM speedup vs PEs and bandwidth");
    {
        DesignConfig base = DesignConfig::paper_default();
        base.msm_cores = 1;
        base.msm_pes_per_core = 1;
        base.bandwidth_gbps = 512;
        uint64_t ref = msm_cycles(base);
        bench::Table t({{"MSM PEs", 9}, {"512 GB/s", 10}, {"1 TB/s", 9},
                        {"2 TB/s", 9}, {"4 TB/s", 9}});
        for (int pes : {1, 2, 4, 8, 16}) {
            std::vector<std::string> row = {bench::fmt_int(pes)};
            for (double bw : bws) {
                DesignConfig cfg = base;
                cfg.msm_pes_per_core = pes;
                cfg.bandwidth_gbps = bw;
                row.push_back(
                    bench::fmt(double(ref) / double(msm_cycles(cfg)), 2));
            }
            t.row(row);
        }
    }

    bench::title("Figure 11 (right): SumCheck speedup vs PEs and BW");
    {
        DesignConfig base = DesignConfig::paper_default();
        base.sumcheck_pes = 1;
        base.mle_update_pes = 1;
        base.mle_update_modmuls = 4;
        base.bandwidth_gbps = 512;
        uint64_t ref = sumcheck_cycles(base);
        bench::Table t({{"SC PEs", 8}, {"512 GB/s", 10}, {"1 TB/s", 9},
                        {"2 TB/s", 9}, {"4 TB/s", 9}});
        for (int pes : {1, 2, 4, 8, 16}) {
            std::vector<std::string> row = {bench::fmt_int(pes)};
            for (double bw : bws) {
                DesignConfig cfg = base;
                cfg.sumcheck_pes = pes;
                // MLE Update scales alongside the SumCheck PEs.
                cfg.mle_update_pes = std::min(11, pes);
                cfg.bandwidth_gbps = bw;
                row.push_back(bench::fmt(
                    double(ref) / double(sumcheck_cycles(cfg)), 2));
            }
            t.row(row);
        }
    }
    std::printf("\nExpected: MSM column-invariant (compute-bound), "
                "SumCheck plateaus per bandwidth (memory-bound).\n");
    return 0;
}
