/**
 * @file
 * Figure 12 reproduction: proving-time breakdown at 2^20 gates, CPU
 * (kernel granularity, Fig. 12a) vs zkSpeed at 2 TB/s (protocol-step
 * granularity, Fig. 12b).
 */
#include "report.hpp"
#include "sim/chip.hpp"
#include "sim/cpu_model.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::sim;

    bench::title("Figure 12a: CPU runtime breakdown at 2^20 gates");
    {
        auto kernels = CpuModel::kernel_ms(20);
        double total = CpuModel::total_ms(20);
        bench::Table t({{"Kernel", 18}, {"ms", 10}, {"Share", 8}});
        for (const auto &[k, ms] : kernels) {
            t.row({k, bench::fmt(ms, 1),
                   bench::fmt(100 * ms / total, 1) + "%"});
        }
        std::printf("Total: %.0f ms (paper: 8619 ms)\n", total);
    }

    bench::title("Figure 12b: zkSpeed (2 TB/s) step breakdown at 2^20");
    {
        Chip chip(DesignConfig::paper_default());
        auto rep = chip.run(Workload::mock(20));
        bench::Table t({{"Step", 26}, {"ms", 10}, {"Share", 8},
                        {"Paper share", 12}});
        const std::pair<const char *, double> paper[] = {
            {"Witness MSMs", 7.8},
            {"Gate Identity", 8.2},
            {"Wire Identity", 48.5},
            {"Batch Evals & Poly Open", 35.4},
        };
        for (const auto &[step, ref] : paper) {
            double ms = double(rep.step_cycles.at(step)) / 1e6;
            t.row({step, bench::fmt(ms, 2),
                   bench::fmt(100 * ms / rep.runtime_ms, 1) + "%",
                   bench::fmt(ref, 1) + "%"});
        }
        std::printf("Total: %.2f ms (paper: 11.405 ms)\n",
                    rep.runtime_ms);
    }
    return 0;
}
