/**
 * @file
 * Figure 14 reproduction: speedup over the CPU at iso-CPU-area designs
 * for problem sizes 2^17 - 2^23, per kernel and total.
 *
 * For each size a Pareto-optimal design with compute+SRAM area close to
 * the EPYC 7502's 296 mm^2 is picked (PHY excluded, as the EPYC's I/O
 * die is separate; Section 7.3), then per-kernel speedups are computed
 * against the calibrated CPU profile. Expected shape: total speedups in
 * the hundreds-to-thousands, MSM kernels gaining more than the
 * memory-bound SumChecks, and the annotated geomeans in the order
 * Total > PolyOpen > Witness > Wiring > Zero/Perm > Open.
 */
#include "report.hpp"
#include "sim/cpu_model.hpp"
#include "sim/dse.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::sim;

    const char *kernels[] = {"Witness MSMs", "Wiring MSMs",
                             "PolyOpen MSMs", "ZeroCheck", "PermCheck",
                             "OpenCheck"};
    std::map<std::string, std::vector<double>> per_kernel;
    std::vector<double> totals;

    bench::title("Figure 14: iso-CPU-area speedup over CPU per size");
    bench::Table t({{"Gates", 8}, {"Design mm^2", 13}, {"Total", 9},
                    {"WitMSM", 9}, {"WireMSM", 9}, {"PolyOpen", 10},
                    {"Zero", 8}, {"Perm", 8}, {"Open", 8}});

    for (size_t mu = 17; mu <= 23; ++mu) {
        Workload wl = Workload::mock(mu);
        // Per-size Pareto pick at 2 TB/s (the paper's assumption for
        // iso-area comparisons), SRAM provisioned for this size.
        auto grid = Dse::grid_for_bandwidth(2048);
        for (auto &c : grid) c.sram_target_mu = mu;
        auto front = Dse::pareto(Dse::evaluate(grid, wl));
        auto pick = Dse::pick_iso_area(front, CpuModel::kDieAreaMm2);

        Chip chip(pick.config);
        auto rep = chip.run(wl);
        auto cpu = CpuModel::kernel_ms(mu);
        double total_speedup =
            CpuModel::total_ms(mu) / rep.runtime_ms;
        totals.push_back(total_speedup);

        std::vector<std::string> row = {
            "2^" + std::to_string(mu),
            bench::fmt(pick.compute_area_mm2, 0),
            bench::fmt(total_speedup, 0)};
        for (const char *k : kernels) {
            double hw_ms = double(rep.kernel_cycles.at(k)) / 1e6;
            double sp = cpu.at(k) / hw_ms;
            per_kernel[k].push_back(sp);
            row.push_back(bench::fmt(sp, 0));
        }
        t.row(row);
    }

    bench::title("Geomean speedups across sizes (paper annotations)");
    std::printf("Total: %.0fx (paper: 2354x at iso-area picks; 801x for "
                "the fixed design of Table 3)\n",
                bench::geomean(totals));
    const std::pair<const char *, int> paper_ref[] = {
        {"Witness MSMs", 978}, {"Wiring MSMs", 784},
        {"PolyOpen MSMs", 1205}, {"ZeroCheck", 555},
        {"PermCheck", 560}, {"OpenCheck", 410}};
    for (const auto &[k, ref] : paper_ref) {
        std::printf("%-15s: %6.0fx   (paper: %dx)\n", k,
                    bench::geomean(per_kernel[k]), ref);
    }
    return 0;
}
