/**
 * @file
 * Shared console-report helpers for the reproduction benches: fixed
 * width tables, geometric means and paper-vs-measured annotations —
 * plus the unified machine-readable envelope every bench's --json
 * output goes through ("zkspeed-bench-v1"), so bench_attrib can merge
 * the per-bench artifacts into one BENCH_summary.json and CI can gate
 * on their `gates` uniformly.
 */
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "hyperplonk/circuit.hpp"
#include "obs/build_info.hpp"
#include "obs/export.hpp"  // write_file
#include "obs/jsonv.hpp"

namespace zkspeed::bench {

/** Count circuit rows with any active selector (tag-valued q_lookup
 * included) — the "active gates" column shared by the constraint-count
 * benches (bench_lookup, bench_keccak_circuit). */
inline size_t
active_gates(const hyperplonk::CircuitIndex &index)
{
    size_t n = 0;
    for (size_t i = 0; i < index.num_gates(); ++i) {
        bool active = !index.q_l[i].is_zero() ||
                      !index.q_r[i].is_zero() ||
                      !index.q_m[i].is_zero() ||
                      !index.q_o[i].is_zero() ||
                      !index.q_c[i].is_zero() || !index.q_h[i].is_zero();
        if (index.has_lookup && !index.q_lookup[i].is_zero()) {
            active = true;
        }
        if (active) ++n;
    }
    return n;
}

/** Print a rule + centered title. */
inline void
title(const std::string &t)
{
    std::printf("\n=== %s ===\n", t.c_str());
}

/** Simple fixed-width row printer. */
class Table
{
  public:
    explicit Table(std::vector<std::pair<std::string, int>> columns)
        : cols_(std::move(columns))
    {
        for (const auto &[name, w] : cols_) {
            std::printf("%-*s", w, name.c_str());
        }
        std::printf("\n");
        int total = 0;
        for (const auto &[name, w] : cols_) total += w;
        std::printf("%s\n", std::string(total, '-').c_str());
    }

    void
    row(const std::vector<std::string> &cells)
    {
        for (size_t i = 0; i < cells.size() && i < cols_.size(); ++i) {
            std::printf("%-*s", cols_[i].second, cells[i].c_str());
        }
        std::printf("\n");
    }

  private:
    std::vector<std::pair<std::string, int>> cols_;
};

inline std::string
fmt(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string
fmt_int(uint64_t v)
{
    return std::to_string(v);
}

/** Geometric mean of a list of ratios. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty()) return 0;
    double acc = 0;
    for (double x : xs) acc += std::log(x);
    return std::exp(acc / double(xs.size()));
}

/** One pass/fail criterion a bench enforced (exit status mirrors the
 * conjunction of its gates; CI reads them out of the envelope). */
struct Gate {
    std::string name;
    bool passed = false;
    std::string detail;
};

/**
 * Wrap a bench's metrics in the unified envelope:
 *   {"schema":"zkspeed-bench-v1","bench":...,"metrics":{...},
 *    "gates":[{"name","passed","detail"},...]}
 * `metrics` must be an object; its keys are bench-specific.
 */
inline obs::jsonv::Value
unified_report(const std::string &bench_name, obs::jsonv::Value metrics,
               const std::vector<Gate> &gates)
{
    using obs::jsonv::Value;
    Value doc = Value::object();
    doc.set("schema", Value::of("zkspeed-bench-v1"));
    doc.set("build", obs::build_info_json());
    doc.set("bench", Value::of(bench_name));
    doc.set("metrics", std::move(metrics));
    Value gs = Value::array();
    for (const Gate &g : gates) {
        Value o = Value::object();
        o.set("name", Value::of(g.name));
        o.set("passed", Value::of(g.passed));
        o.set("detail", Value::of(g.detail));
        gs.push(std::move(o));
    }
    doc.set("gates", std::move(gs));
    return doc;
}

/** Render + write a unified envelope; returns write success. */
inline bool
write_unified_report(const std::string &path,
                     const std::string &bench_name,
                     obs::jsonv::Value metrics,
                     const std::vector<Gate> &gates)
{
    return obs::write_file(
        path,
        unified_report(bench_name, std::move(metrics), gates).render());
}

/** Every gate in an envelope holds (vacuously true when none). */
inline bool
gates_passed(const obs::jsonv::Value &envelope)
{
    const obs::jsonv::Value *gs = envelope.find("gates");
    if (gs == nullptr || !gs->is_array()) return false;
    for (const auto &g : gs->items) {
        const obs::jsonv::Value *p = g.find("passed");
        if (p == nullptr || !p->is_bool() || !p->boolean) return false;
    }
    return true;
}

}  // namespace zkspeed::bench
