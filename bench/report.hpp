/**
 * @file
 * Shared console-report helpers for the reproduction benches: fixed
 * width tables, geometric means and paper-vs-measured annotations.
 */
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "hyperplonk/circuit.hpp"

namespace zkspeed::bench {

/** Count circuit rows with any active selector (tag-valued q_lookup
 * included) — the "active gates" column shared by the constraint-count
 * benches (bench_lookup, bench_keccak_circuit). */
inline size_t
active_gates(const hyperplonk::CircuitIndex &index)
{
    size_t n = 0;
    for (size_t i = 0; i < index.num_gates(); ++i) {
        bool active = !index.q_l[i].is_zero() ||
                      !index.q_r[i].is_zero() ||
                      !index.q_m[i].is_zero() ||
                      !index.q_o[i].is_zero() ||
                      !index.q_c[i].is_zero() || !index.q_h[i].is_zero();
        if (index.has_lookup && !index.q_lookup[i].is_zero()) {
            active = true;
        }
        if (active) ++n;
    }
    return n;
}

/** Print a rule + centered title. */
inline void
title(const std::string &t)
{
    std::printf("\n=== %s ===\n", t.c_str());
}

/** Simple fixed-width row printer. */
class Table
{
  public:
    explicit Table(std::vector<std::pair<std::string, int>> columns)
        : cols_(std::move(columns))
    {
        for (const auto &[name, w] : cols_) {
            std::printf("%-*s", w, name.c_str());
        }
        std::printf("\n");
        int total = 0;
        for (const auto &[name, w] : cols_) total += w;
        std::printf("%s\n", std::string(total, '-').c_str());
    }

    void
    row(const std::vector<std::string> &cells)
    {
        for (size_t i = 0; i < cells.size() && i < cols_.size(); ++i) {
            std::printf("%-*s", cols_[i].second, cells[i].c_str());
        }
        std::printf("\n");
    }

  private:
    std::vector<std::pair<std::string, int>> cols_;
};

inline std::string
fmt(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string
fmt_int(uint64_t v)
{
    return std::to_string(v);
}

/** Geometric mean of a list of ratios. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty()) return 0;
    double acc = 0;
    for (double x : xs) acc += std::log(x);
    return std::exp(acc / double(xs.size()));
}

}  // namespace zkspeed::bench
