/**
 * @file
 * google-benchmark microbenchmarks of the software library: the
 * measured CPU costs of every kernel the zkSpeed units accelerate.
 * These ground the CPU-model substitution (DESIGN.md Section 3) with
 * real measurements at laptop-scale problem sizes.
 */
#include <benchmark/benchmark.h>

#include <random>

#include "ff/batch_inverse.hpp"
#include "hash/keccak.hpp"
#include "hyperplonk/permutation.hpp"
#include "hyperplonk/prover.hpp"

namespace {

using namespace zkspeed;
using ff::Fr;
using ff::Fq;

std::mt19937_64 &
rng()
{
    static std::mt19937_64 r(12345);
    return r;
}

void
BM_FrMul(benchmark::State &state)
{
    Fr a = Fr::random(rng()), b = Fr::random(rng());
    for (auto _ : state) {
        benchmark::DoNotOptimize(a = a * b);
    }
}
BENCHMARK(BM_FrMul);

void
BM_FqMul(benchmark::State &state)
{
    Fq a = Fq::random(rng()), b = Fq::random(rng());
    for (auto _ : state) {
        benchmark::DoNotOptimize(a = a * b);
    }
}
BENCHMARK(BM_FqMul);

void
BM_FrInverse(benchmark::State &state)
{
    Fr a = Fr::random(rng());
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.inverse());
    }
}
BENCHMARK(BM_FrInverse);

void
BM_FrInverseBeea(benchmark::State &state)
{
    Fr a = Fr::random(rng());
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.inverse_beea());
    }
}
BENCHMARK(BM_FrInverseBeea);

void
BM_BatchInverse(benchmark::State &state)
{
    std::vector<Fr> xs(state.range(0));
    for (auto &x : xs) x = Fr::random(rng());
    for (auto _ : state) {
        auto copy = xs;
        ff::batch_inverse(copy);
        benchmark::DoNotOptimize(copy);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchInverse)->Arg(64)->Arg(1024);

void
BM_PointAdd(benchmark::State &state)
{
    curve::G1 p = curve::g1_generator().mul(Fr::random(rng()));
    auto q = curve::g1_generator().mul(Fr::random(rng())).to_affine();
    for (auto _ : state) {
        benchmark::DoNotOptimize(p = p.add_mixed(q));
    }
}
BENCHMARK(BM_PointAdd);

void
BM_ScalarMul(benchmark::State &state)
{
    curve::G1 g = curve::g1_generator();
    Fr k = Fr::random(rng());
    for (auto _ : state) {
        benchmark::DoNotOptimize(g.mul(k));
    }
}
BENCHMARK(BM_ScalarMul);

void
BM_MsmDense(benchmark::State &state)
{
    const size_t n = state.range(0);
    std::vector<curve::G1Affine> pts(n);
    std::vector<Fr> scalars(n);
    curve::G1 g = curve::g1_generator();
    for (size_t i = 0; i < n; ++i) {
        pts[i] = g.mul(Fr::from_uint(i + 1)).to_affine();
        scalars[i] = Fr::random(rng());
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(curve::msm(pts, scalars));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MsmDense)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_MsmSparse(benchmark::State &state)
{
    const size_t n = state.range(0);
    std::vector<curve::G1Affine> pts(n);
    std::vector<Fr> scalars(n);
    curve::G1 g = curve::g1_generator();
    std::uniform_real_distribution<double> uni(0, 1);
    for (size_t i = 0; i < n; ++i) {
        pts[i] = g.mul(Fr::from_uint(i + 1)).to_affine();
        double u = uni(rng());
        scalars[i] = u < 0.45 ? Fr::zero()
                              : (u < 0.9 ? Fr::one() : Fr::random(rng()));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(curve::msm_sparse(pts, scalars));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MsmSparse)->Arg(1024)->Arg(4096);

void
BM_Sha3(benchmark::State &state)
{
    std::string msg(state.range(0), 'x');
    for (auto _ : state) {
        benchmark::DoNotOptimize(hash::sha3_256(msg));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha3)->Arg(136)->Arg(4096);

void
BM_BuildMle(benchmark::State &state)
{
    const size_t mu = state.range(0);
    std::vector<Fr> point(mu);
    for (auto &p : point) p = Fr::random(rng());
    for (auto _ : state) {
        benchmark::DoNotOptimize(mle::Mle::eq_table(point));
    }
    state.SetItemsProcessed(state.iterations() * (1 << mu));
}
BENCHMARK(BM_BuildMle)->Arg(12)->Arg(16);

void
BM_MleEvaluate(benchmark::State &state)
{
    const size_t mu = state.range(0);
    mle::Mle m = mle::Mle::random(mu, rng());
    std::vector<Fr> point(mu);
    for (auto &p : point) p = Fr::random(rng());
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.evaluate(point));
    }
    state.SetItemsProcessed(state.iterations() * (1 << mu));
}
BENCHMARK(BM_MleEvaluate)->Arg(12)->Arg(16);

void
BM_MleUpdate(benchmark::State &state)
{
    const size_t mu = state.range(0);
    mle::Mle m = mle::Mle::random(mu, rng());
    Fr r = Fr::random(rng());
    for (auto _ : state) {
        auto copy = m;
        copy.fix_first_variable(r);
        benchmark::DoNotOptimize(copy);
    }
    state.SetItemsProcessed(state.iterations() * (1 << (mu - 1)));
}
BENCHMARK(BM_MleUpdate)->Arg(12)->Arg(16);

void
BM_ZeroCheckSumcheck(benchmark::State &state)
{
    const size_t mu = state.range(0);
    auto [index, wit] = hyperplonk::random_circuit(mu, rng());
    std::vector<Fr> point(mu);
    for (auto &p : point) p = Fr::random(rng());
    auto eq = std::make_shared<mle::Mle>(mle::Mle::eq_table(point));
    auto alias = [](const mle::Mle &m) {
        return std::shared_ptr<mle::Mle>(std::shared_ptr<mle::Mle>(),
                                         const_cast<mle::Mle *>(&m));
    };
    mle::VirtualPolynomial vp(mu);
    size_t ql = vp.add_mle(alias(index.q_l));
    size_t w1 = vp.add_mle(alias(wit.w[0]));
    size_t w2 = vp.add_mle(alias(wit.w[1]));
    size_t w3 = vp.add_mle(alias(wit.w[2]));
    size_t qm = vp.add_mle(alias(index.q_m));
    size_t qo = vp.add_mle(alias(index.q_o));
    size_t e = vp.add_mle(eq);
    vp.add_term(Fr::one(), {ql, w1, e});
    vp.add_term(Fr::one(), {qm, w1, w2, e});
    vp.add_term(-Fr::one(), {qo, w3, e});
    for (auto _ : state) {
        hash::Transcript tr("bench");
        benchmark::DoNotOptimize(hyperplonk::sumcheck_prove(vp, tr));
    }
    state.SetItemsProcessed(state.iterations() * (1 << mu));
}
BENCHMARK(BM_ZeroCheckSumcheck)->Arg(10)->Arg(14);

void
BM_FractionMle(benchmark::State &state)
{
    const size_t mu = state.range(0);
    auto [index, wit] = hyperplonk::random_circuit(mu, rng());
    Fr beta = Fr::random(rng()), gamma = Fr::random(rng());
    for (auto _ : state) {
        benchmark::DoNotOptimize(hyperplonk::build_permutation_oracles(
            index, wit, beta, gamma));
    }
    state.SetItemsProcessed(state.iterations() * (1 << mu));
}
BENCHMARK(BM_FractionMle)->Arg(10)->Arg(14);

void
BM_ProveEndToEnd(benchmark::State &state)
{
    const size_t mu = state.range(0);
    auto [index, wit] = hyperplonk::random_circuit(mu, rng());
    auto srs =
        std::make_shared<pcs::Srs>(pcs::Srs::generate(mu, rng()));
    auto [pk, vk] = hyperplonk::keygen(std::move(index), srs);
    for (auto _ : state) {
        benchmark::DoNotOptimize(hyperplonk::prove(pk, wit));
    }
    state.SetItemsProcessed(state.iterations() * (1 << mu));
}
BENCHMARK(BM_ProveEndToEnd)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

void
BM_VerifyIdeal(benchmark::State &state)
{
    const size_t mu = 10;
    auto [index, wit] = hyperplonk::random_circuit(mu, rng());
    auto srs =
        std::make_shared<pcs::Srs>(pcs::Srs::generate(mu, rng()));
    auto [pk, vk] = hyperplonk::keygen(std::move(index), srs);
    auto proof = hyperplonk::prove(pk, wit);
    auto publics = wit.public_inputs(pk.index);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hyperplonk::verify(vk, publics, proof));
    }
}
BENCHMARK(BM_VerifyIdeal)->Unit(benchmark::kMillisecond);

void
BM_VerifyPairing(benchmark::State &state)
{
    const size_t mu = 6;
    auto [index, wit] = hyperplonk::random_circuit(mu, rng());
    auto srs =
        std::make_shared<pcs::Srs>(pcs::Srs::generate(mu, rng()));
    auto [pk, vk] = hyperplonk::keygen(std::move(index), srs);
    auto proof = hyperplonk::prove(pk, wit);
    auto publics = wit.public_inputs(pk.index);
    for (auto _ : state) {
        benchmark::DoNotOptimize(hyperplonk::verify(
            vk, publics, proof, hyperplonk::PcsCheckMode::pairing));
    }
}
BENCHMARK(BM_VerifyPairing)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
