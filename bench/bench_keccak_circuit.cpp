/**
 * @file
 * In-circuit keccak on fused lookups vs. the gate-based bitwise
 * baseline: the constraint-count and prover-time win the keccak
 * subsystem exists for.
 *
 * Proves the same statement twice — a Keccak-f[1600] permutation of a
 * random state with one output word public — once with 1-bit lanes on
 * boolean XOR/CHI logic gates (keccak::KeccakParams::gates) and once
 * with table-width limbs on the fused xor/chi/range lookup bank
 * (KeccakParams::lookup). Reports gate counts (active and padded
 * 2^mu), prover wall time, verification agreement, the simulated
 * zkSpeed latency of both circuits (the LookupUnit prices the fused
 * bank), and the satellite note: multiplicity-construction wall time
 * serial vs. parallel (ff::parallel_for two-level parallelism).
 *
 * Usage: bench_keccak_circuit [--rounds N] [--limb-bits B] [--quick]
 *                             [--json PATH]
 * Rounds default to ZKSPEED_KECCAK_ROUNDS (else 1); the full
 * permutation is --rounds 24. Exit status is non-zero unless the
 * lookup circuit shows >= 2x fewer (padded) constraints AND lower
 * prover time than the gate-based baseline.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>

#include "ff/parallel.hpp"
#include "hyperplonk/prover.hpp"
#include "keccak/keccak.hpp"
#include "lookup/logup.hpp"
#include "report.hpp"
#include "scenarios/seed.hpp"
#include "sim/chip.hpp"

using namespace zkspeed;
using ff::Fr;

namespace {

using Clock = std::chrono::steady_clock;

double
ms_since(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

struct Side {
    const char *label = "";
    size_t raw_gates = 0;  ///< active (pre-padding) rows
    size_t lookup_gates = 0;
    size_t mu = 0;
    double keygen_ms = 0;
    double prove_ms = 0;
    double verify_ms = 0;
    bool verified = false;
    double chip_ms = 0;  ///< simulated zkSpeed latency
    size_t proof_bytes = 0;
    double mult_serial_ms = 0;    ///< lookup side only
    double mult_parallel_ms = 0;  ///< lookup side only
};

/** One permutation of a seeded state; the first output word public. */
std::pair<hyperplonk::CircuitIndex, hyperplonk::Witness>
build_permutation(const keccak::KeccakParams &params, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::array<uint64_t, 25> in;
    for (auto &lane : in) lane = rng();
    auto expect = in;
    hash::keccak_f1600(expect, params.rounds);

    hyperplonk::CircuitBuilder cb;
    keccak::KeccakGadget g(cb, params);
    std::array<keccak::Lane, 25> st;
    for (int k = 0; k < 25; ++k) {
        st[k] = g.from_var(cb.add_variable(Fr::from_uint(in[k])));
    }
    st = g.permute(std::move(st));
    hyperplonk::Var out = g.to_var(st[0]);
    hyperplonk::Var pub = cb.add_public_input(Fr::from_uint(expect[0]));
    cb.assert_equal(pub, out);
    return cb.build(2);
}

Side
run_side(const char *label, const keccak::KeccakParams &params,
         uint64_t seed, const sim::DesignConfig &design)
{
    Side side;
    side.label = label;
    auto [index, witness] = build_permutation(params, seed);
    side.raw_gates = bench::active_gates(index);
    side.lookup_gates = index.num_lookup_gates();
    side.mu = index.num_vars;

    if (index.has_lookup) {
        // Satellite note: the prover's multiplicity construction is a
        // parallel counting pass now — measure it against serial.
        const std::array<const mle::Mle *, 3> wires = {
            &witness.w[0], &witness.w[1], &witness.w[2]};
        auto t0 = Clock::now();
        {
            ff::ParallelismGuard serial(1);
            (void)lookup::multiplicities(index.q_lookup, index.table_tag,
                                         index.table, index.table_rows,
                                         wires);
        }
        side.mult_serial_ms = ms_since(t0);
        t0 = Clock::now();
        (void)lookup::multiplicities(index.q_lookup, index.table_tag,
                                     index.table, index.table_rows,
                                     wires);
        side.mult_parallel_ms = ms_since(t0);
    }

    std::mt19937_64 srs_rng(0x5eed ^ index.num_vars);
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, srs_rng));
    auto t0 = Clock::now();
    auto [pk, vk] = hyperplonk::keygen(index, srs);
    side.keygen_ms = ms_since(t0);

    t0 = Clock::now();
    auto proof = hyperplonk::prove(pk, witness);
    side.prove_ms = ms_since(t0);
    side.proof_bytes = proof.size_bytes();

    auto publics = witness.public_inputs(pk.index);
    t0 = Clock::now();
    side.verified = hyperplonk::verify(vk, publics, proof,
                                       hyperplonk::PcsCheckMode::pairing);
    side.verify_ms = ms_since(t0);

    // Chip-side pricing of the same job (the LookupUnit models the
    // fused bank's probes, folds and LookupCheck).
    size_t zeros = 0, ones = 0, total = 0;
    for (const auto &w : witness.w) {
        for (size_t i = 0; i < w.size(); ++i) {
            if (w[i].is_zero()) ++zeros;
            else if (w[i].is_one()) ++ones;
            ++total;
        }
    }
    sim::Workload wl =
        sim::Workload::from_stats(label, side.mu, zeros, ones, total);
    wl.table_rows = pk.index.table_rows;
    wl.table_row_counts = pk.index.table_row_counts;
    wl.lookup_gates = pk.index.num_lookup_gates();
    side.chip_ms = sim::Chip(design).run(wl).runtime_ms;
    return side;
}

}  // namespace

int
main(int argc, char **argv)
{
    unsigned rounds =
        unsigned(scenarios::env_u64("ZKSPEED_KECCAK_ROUNDS", 1));
    unsigned limb_bits = 4;
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--rounds") && i + 1 < argc) {
            rounds = unsigned(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--limb-bits") && i + 1 < argc) {
            limb_bits = unsigned(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--quick")) {
            rounds = 1;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        }
    }
    if (rounds == 0 || rounds > 24 || limb_bits == 0 || limb_bits > 8 ||
        64 % limb_bits != 0) {
        std::fprintf(stderr,
                     "--rounds must be 1..24, --limb-bits a divisor of "
                     "64 up to 8\n");
        return 2;
    }

    bench::title("In-circuit keccak: fused-lookup limbs vs. gate-based "
                 "bits, " +
                 std::to_string(rounds) + " round(s), " +
                 std::to_string(limb_bits) + "-bit limbs");

    auto design = sim::DesignConfig::paper_default();
    Side gate_side =
        run_side("gate-based", keccak::KeccakParams::gates(rounds), 42,
                 design);
    Side lookup_side = run_side(
        "lookup",
        keccak::KeccakParams::lookup(rounds, limb_bits), 42, design);

    bench::Table table({{"path", 12}, {"gates", 10}, {"2^mu", 8},
                        {"lookups", 9}, {"keygen ms", 10},
                        {"prove ms", 10}, {"verify ms", 10},
                        {"chip ms", 10}, {"proof B", 9}});
    for (const Side *s : {&gate_side, &lookup_side}) {
        table.row({s->label, std::to_string(s->raw_gates),
                   std::to_string(size_t(1) << s->mu),
                   std::to_string(s->lookup_gates),
                   bench::fmt(s->keygen_ms), bench::fmt(s->prove_ms),
                   bench::fmt(s->verify_ms), bench::fmt(s->chip_ms, 4),
                   std::to_string(s->proof_bytes)});
    }

    double constraint_ratio = double(size_t(1) << gate_side.mu) /
                              double(size_t(1) << lookup_side.mu);
    double raw_ratio =
        double(gate_side.raw_gates) / double(lookup_side.raw_gates);
    double prove_speedup =
        lookup_side.prove_ms > 0
            ? gate_side.prove_ms / lookup_side.prove_ms
            : 0;
    double mult_speedup =
        lookup_side.mult_parallel_ms > 0
            ? lookup_side.mult_serial_ms / lookup_side.mult_parallel_ms
            : 0;
    std::printf(
        "\nconstraints: %.1fx fewer padded (%.1fx fewer active), "
        "prover: %.2fx faster, chip: %.2fx faster\n"
        "multiplicity construction: serial %.2f ms, parallel %.2f ms "
        "(%.2fx; gap widens with 2^20+ banks)\n",
        constraint_ratio, raw_ratio, prove_speedup,
        lookup_side.chip_ms > 0
            ? gate_side.chip_ms / lookup_side.chip_ms
            : 0,
        lookup_side.mult_serial_ms, lookup_side.mult_parallel_ms,
        mult_speedup);

    bool ok = gate_side.verified && lookup_side.verified &&
              constraint_ratio >= 2.0 && prove_speedup > 1.0;

    if (json_path != nullptr) {
        using obs::jsonv::Value;
        auto side_json = [](const auto &side, bool lookup) {
            Value o = Value::object();
            o.set("active_gates", Value::of(uint64_t(side.raw_gates)));
            if (lookup) {
                o.set("lookup_gates",
                      Value::of(uint64_t(side.lookup_gates)));
            }
            o.set("mu", Value::of(uint64_t(side.mu)));
            o.set("keygen_ms", Value::of(side.keygen_ms));
            o.set("prove_ms", Value::of(side.prove_ms));
            o.set("verify_ms", Value::of(side.verify_ms));
            o.set("chip_ms", Value::of(side.chip_ms));
            o.set("proof_bytes", Value::of(uint64_t(side.proof_bytes)));
            return o;
        };
        Value metrics = Value::object();
        metrics.set("rounds", Value::of(uint64_t(rounds)));
        metrics.set("limb_bits", Value::of(uint64_t(limb_bits)));
        metrics.set("gate_based", side_json(gate_side, false));
        metrics.set("lookup", side_json(lookup_side, true));
        metrics.set("constraint_ratio", Value::of(constraint_ratio));
        metrics.set("active_gate_ratio", Value::of(raw_ratio));
        metrics.set("prover_speedup", Value::of(prove_speedup));
        metrics.set("multiplicity_serial_ms",
                    Value::of(lookup_side.mult_serial_ms));
        metrics.set("multiplicity_parallel_ms",
                    Value::of(lookup_side.mult_parallel_ms));
        metrics.set("both_verified",
                    Value::of(gate_side.verified && lookup_side.verified));
        metrics.set("meets_2x_constraint_target",
                    Value::of(constraint_ratio >= 2.0));
        if (!bench::write_unified_report(
                json_path, "keccak", std::move(metrics),
                {{"both_verified",
                  gate_side.verified && lookup_side.verified,
                  "both proof paths verified"},
                 {"meets_2x_constraint_target", constraint_ratio >= 2.0,
                  "lookup keccak cuts padded constraints >= 2x"},
                 {"prover_faster", prove_speedup > 1.0,
                  "lookup prover beats the gate-based prover"}})) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 2;
        }
        std::printf("wrote %s\n", json_path);
    }

    if (!ok) {
        std::fprintf(stderr,
                     "FAILED: lookup keccak did not beat the gate-based "
                     "baseline (verified=%d/%d, constraint_ratio=%.2f, "
                     "prover_speedup=%.2f)\n",
                     gate_side.verified, lookup_side.verified,
                     constraint_ratio, prove_speedup);
        return 1;
    }
    return 0;
}
