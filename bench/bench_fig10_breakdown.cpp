/**
 * @file
 * Figure 10 reproduction: area and runtime percentage breakdowns for
 * the Pareto points A-D of Figure 9 (the fastest design per bandwidth
 * tier 512 GB/s .. 4 TB/s).
 *
 * Expected shape: moving from A to D, the SumCheck area share grows
 * (more bandwidth feeds more SumCheck PEs) while the MSM unit's
 * absolute area stays flat; SumCheck-related runtime shares shrink.
 */
#include "report.hpp"
#include "sim/dse.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::sim;

    Workload wl = Workload::mock(20);
    const double tiers[] = {512, 1024, 2048, 4096};
    const char *names[] = {"A", "B", "C", "D"};

    std::vector<DsePoint> picks;
    for (double bw : tiers) {
        auto grid = Dse::grid_for_bandwidth(bw);
        for (auto &c : grid) c.sram_target_mu = 20;
        auto front = Dse::pareto(Dse::evaluate(grid, wl));
        picks.push_back(front.front());  // fastest on this frontier
    }

    bench::title("Figure 10 (left): area percentage breakdown");
    bench::Table at({{"Point", 7}, {"Sumcheck", 10}, {"MSM", 8},
                     {"MLE Comb", 10}, {"MTU", 7}, {"OnchipMem", 11},
                     {"HBM PHY", 9}, {"Misc", 7}, {"Total mm^2", 12}});
    for (int i = 0; i < 4; ++i) {
        Chip chip(picks[i].config);
        AreaBreakdown a = chip.area();
        double tot = a.total();
        auto pct = [&](double v) { return bench::fmt(100 * v / tot, 1); };
        at.row({names[i], pct(a.sumcheck + a.mle_update), pct(a.msm),
                pct(a.mle_combine), pct(a.mtu), pct(a.sram),
                pct(a.hbm_phy),
                pct(a.construct_nd + a.fracmle + a.other),
                bench::fmt(tot, 1)});
    }

    bench::title("Figure 10 (right): runtime percentage breakdown");
    bench::Table rt({{"Point", 7}, {"WitnessMSM", 12}, {"WiringMSM", 11},
                     {"PolyOpenMSM", 13}, {"ZeroCheck", 11},
                     {"PermCheck", 11}, {"OpenCheck", 11},
                     {"FinalEval", 11}, {"Total ms", 10}});
    for (int i = 0; i < 4; ++i) {
        Chip chip(picks[i].config);
        auto rep = chip.run(wl);
        double tot = double(rep.total_cycles);
        auto pct = [&](const char *k) {
            auto it = rep.kernel_cycles.find(k);
            double v = it == rep.kernel_cycles.end() ? 0 : double(it->second);
            return bench::fmt(100 * v / tot, 1);
        };
        rt.row({names[i], pct("Witness MSMs"), pct("Wiring MSMs"),
                pct("PolyOpen MSMs"), pct("ZeroCheck"), pct("PermCheck"),
                pct("OpenCheck"), pct("FinalEval"),
                bench::fmt(rep.runtime_ms, 3)});
    }
    std::printf("\nExpected: SumCheck area share rises A->D; total "
                "runtime falls; SumCheck runtime shares shrink.\n");
    return 0;
}
