/**
 * @file
 * Figure 5 reproduction: MSM bucket-aggregation latency, SZKP's serial
 * running sum vs zkSpeed's grouped scheme (group size 16), for window
 * sizes 7-10.
 *
 * Expected shape: SZKP grows steeply with window size (serial in the
 * bucket count with full PADD latency exposure); the grouped scheme is
 * roughly flat and ~92% lower on average.
 */
#include "report.hpp"
#include "sim/msm_unit.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::sim;

    bench::title("Figure 5: MSM bucket aggregation latency (cycles)");
    bench::Table t({{"Window (bits)", 14},
                    {"SZKP (serial)", 16},
                    {"zkSpeed (grouped)", 20},
                    {"Reduction", 12}});
    double total_red = 0;
    for (int w = 7; w <= 10; ++w) {
        uint64_t base =
            bucket_aggregation_cycles(w, Aggregation::szkp_serial);
        uint64_t ours =
            bucket_aggregation_cycles(w, Aggregation::zkspeed_grouped);
        double red = 1.0 - double(ours) / double(base);
        total_red += red;
        t.row({bench::fmt_int(w), bench::fmt_int(base),
               bench::fmt_int(ours), bench::fmt(100 * red, 1) + "%"});
    }
    std::printf("\nAverage reduction: %.1f%% (paper reports 92%%)\n",
                100 * total_red / 4);

    // Impact on small MSMs (the Polynomial Opening tail that motivated
    // the optimization, Section 4.2.2).
    bench::title("Effect on small MSMs (32-point, W=9, 16 PEs)");
    DesignConfig cfg = DesignConfig::paper_default();
    MsmUnit msm(cfg);
    uint64_t szkp = msm.dense_cycles(32, 16, Aggregation::szkp_serial);
    uint64_t zk = msm.dense_cycles(32, 16, Aggregation::zkspeed_grouped);
    std::printf("SZKP aggregation: %llu cycles; grouped: %llu cycles "
                "(%.1fx faster)\n",
                (unsigned long long)szkp, (unsigned long long)zk,
                double(szkp) / double(zk));
    return 0;
}
