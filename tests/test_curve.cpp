/**
 * @file
 * Group-law, MSM and extension-tower tests for the BLS12-381 curve layer.
 */
#include <gtest/gtest.h>

#include <random>

#include "curve/fq12.hpp"
#include "curve/g1.hpp"
#include "curve/g2.hpp"
#include "curve/msm.hpp"

namespace {

using namespace zkspeed::curve;
using zkspeed::ff::Fr;
using zkspeed::ff::Fq;

TEST(G1, GeneratorOnCurve)
{
    EXPECT_TRUE(G1Params::generator().is_on_curve());
    EXPECT_FALSE(G1Params::generator().is_identity());
}

TEST(G2, GeneratorOnCurve)
{
    EXPECT_TRUE(G2Params::generator().is_on_curve());
}

TEST(G1, GeneratorHasOrderR)
{
    // r * G == identity, and (r-1) * G == -G.
    G1 g = g1_generator();
    EXPECT_TRUE(g.mul(Fr::kModulus).is_identity());
    auto rm1 = Fr::kModulus;
    rm1.sub_assign(zkspeed::ff::BigInt<4>(1));
    EXPECT_EQ(g.mul(rm1), g.neg());
}

TEST(G2, GeneratorHasOrderR)
{
    G2 h = g2_generator();
    EXPECT_TRUE(h.mul(Fr::kModulus).is_identity());
}

template <typename Group>
void
group_law_suite(Group g)
{
    using G = Group;
    // Identity behaviour.
    EXPECT_EQ(g + G::identity(), g);
    EXPECT_EQ(G::identity() + g, g);
    EXPECT_TRUE((g + g.neg()).is_identity());
    // Doubling consistency.
    EXPECT_EQ(g.dbl(), g + g);
    EXPECT_EQ(g.dbl() + g, g.mul(Fr::from_uint(3)));
    // Associativity / commutativity on random multiples.
    std::mt19937_64 rng(11);
    Fr a = Fr::random(rng), b = Fr::random(rng);
    G ga = g.mul(a), gb = g.mul(b);
    EXPECT_EQ(ga + gb, gb + ga);
    EXPECT_EQ((ga + gb) + g, ga + (gb + g));
    // Distributivity of scalar mul: (a+b)G == aG + bG.
    EXPECT_EQ(g.mul(a + b), ga + gb);
    // (ab)G == a(bG).
    EXPECT_EQ(g.mul(a * b), gb.mul(a));
    // Affine round trips.
    auto aff = ga.to_affine();
    EXPECT_TRUE(aff.is_on_curve());
    EXPECT_EQ(G::from_affine(aff), ga);
}

TEST(G1, GroupLaws) { group_law_suite(g1_generator()); }
TEST(G2, GroupLaws) { group_law_suite(g2_generator()); }

TEST(G1, MixedAddMatchesFullAdd)
{
    std::mt19937_64 rng(12);
    G1 g = g1_generator();
    for (int i = 0; i < 10; ++i) {
        G1 p = g.mul(Fr::random(rng));
        G1 q = g.mul(Fr::random(rng));
        auto q_aff = q.to_affine();
        EXPECT_EQ(p.add_mixed(q_aff), p + q);
        // Degenerate cases: doubling and cancellation via mixed add.
        EXPECT_EQ(p.add_mixed(p.to_affine()), p.dbl());
        EXPECT_TRUE(p.add_mixed(p.neg().to_affine()).is_identity());
    }
}

TEST(G1, BatchToAffine)
{
    std::mt19937_64 rng(13);
    G1 g = g1_generator();
    std::vector<G1> pts;
    for (int i = 0; i < 17; ++i) pts.push_back(g.mul(Fr::random(rng)));
    pts.push_back(G1::identity());
    auto affs = batch_to_affine<G1Params>(pts);
    ASSERT_EQ(affs.size(), pts.size());
    for (size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(affs[i], pts[i].to_affine());
    }
}

class MsmTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(MsmTest, PippengerMatchesNaive)
{
    size_t n = GetParam();
    std::mt19937_64 rng(100 + n);
    G1 g = g1_generator();
    std::vector<G1Affine> points(n);
    std::vector<Fr> scalars(n);
    for (size_t i = 0; i < n; ++i) {
        points[i] = g.mul(Fr::random(rng)).to_affine();
        scalars[i] = Fr::random(rng);
    }
    G1 expect = msm_naive(points, scalars);
    EXPECT_EQ(msm(points, scalars), expect);
    // Explicit window sizes matching the paper's design space (Table 2).
    for (unsigned w : {7u, 8u, 9u, 10u}) {
        EXPECT_EQ(msm(points, scalars, w), expect) << "window " << w;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MsmTest,
                         ::testing::Values(1, 2, 3, 31, 32, 33, 100, 257));

TEST(Msm, EdgeCaseScalars)
{
    std::mt19937_64 rng(14);
    G1 g = g1_generator();
    std::vector<G1Affine> points;
    std::vector<Fr> scalars;
    for (int i = 0; i < 16; ++i) {
        points.push_back(g.mul(Fr::random(rng)).to_affine());
    }
    // All-zero scalars.
    scalars.assign(16, Fr::zero());
    EXPECT_TRUE(msm(points, scalars).is_identity());
    // Scalar p-1 (all windows saturated).
    scalars.assign(16, -Fr::one());
    EXPECT_EQ(msm(points, scalars), msm_naive(points, scalars));
    // Mixed tiny scalars.
    for (int i = 0; i < 16; ++i) scalars[i] = Fr::from_uint(i);
    EXPECT_EQ(msm(points, scalars), msm_naive(points, scalars));
}

TEST(Msm, SparseMsmMatchesDenseAndCountsClasses)
{
    std::mt19937_64 rng(15);
    G1 g = g1_generator();
    const size_t n = 200;
    std::vector<G1Affine> points(n);
    std::vector<Fr> scalars(n);
    // Paper Section 6.2 statistics: 45% zeros, 45% ones, 10% dense.
    size_t zeros = 0, ones = 0, dense = 0;
    for (size_t i = 0; i < n; ++i) {
        points[i] = g.mul(Fr::random(rng)).to_affine();
        double u = std::uniform_real_distribution<>(0, 1)(rng);
        if (u < 0.45) {
            scalars[i] = Fr::zero();
            ++zeros;
        } else if (u < 0.90) {
            scalars[i] = Fr::one();
            ++ones;
        } else {
            scalars[i] = Fr::random(rng);
            ++dense;
        }
    }
    MsmStats stats;
    G1 got = msm_sparse(points, scalars, &stats);
    EXPECT_EQ(got, msm_naive(points, scalars));
    EXPECT_EQ(stats.zeros, zeros);
    EXPECT_EQ(stats.ones, ones);
    EXPECT_EQ(stats.dense, dense);
}

TEST(Msm, TreeSumMatchesSequential)
{
    std::mt19937_64 rng(16);
    G1 g = g1_generator();
    for (size_t n : {0u, 1u, 2u, 3u, 15u, 16u, 17u}) {
        std::vector<G1Affine> pts(n);
        G1 expect = G1::identity();
        for (size_t i = 0; i < n; ++i) {
            pts[i] = g.mul(Fr::random(rng)).to_affine();
            expect += G1::from_affine(pts[i]);
        }
        EXPECT_EQ(tree_sum(pts), expect) << "n=" << n;
    }
}

TEST(Fq2Tower, FieldAxioms)
{
    std::mt19937_64 rng(17);
    for (int i = 0; i < 25; ++i) {
        Fq2 a = Fq2::random(rng), b = Fq2::random(rng), c = Fq2::random(rng);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a * b) * c, a * (b * c));
        EXPECT_EQ(a * (b + c), a * b + a * c);
        EXPECT_EQ(a.square(), a * a);
        if (!a.is_zero()) {
            EXPECT_EQ(a * a.inverse(), Fq2::one());
        }
        // Nonresidue multiplication is multiplication by (u+1).
        Fq2 xi(Fq::one(), Fq::one());
        EXPECT_EQ(a.mul_by_nonresidue(), a * xi);
    }
}

TEST(Fq2Tower, USquaredIsMinusOne)
{
    Fq2 u(Fq::zero(), Fq::one());
    EXPECT_EQ(u.square(), -Fq2::one());
}

TEST(Fq6Fq12Tower, AxiomsAndSparseOps)
{
    std::mt19937_64 rng(18);
    for (int i = 0; i < 10; ++i) {
        Fq6 a(Fq2::random(rng), Fq2::random(rng), Fq2::random(rng));
        Fq6 b(Fq2::random(rng), Fq2::random(rng), Fq2::random(rng));
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ(a * a.inverse(), Fq6::one());
        // Sparse muls agree with dense.
        Fq2 s0 = Fq2::random(rng), s1 = Fq2::random(rng);
        EXPECT_EQ(a.mul_by_01(s0, s1), a * Fq6(s0, s1, Fq2::zero()));
        EXPECT_EQ(a.mul_by_1(s1), a * Fq6(Fq2::zero(), s1, Fq2::zero()));
        // v^3 == xi: multiplying three times by v equals scaling by xi.
        Fq6 v(Fq2::zero(), Fq2::one(), Fq2::zero());
        Fq6 xi(Fq2::one().mul_by_nonresidue(), Fq2::zero(), Fq2::zero());
        EXPECT_EQ(a * v * v * v, a * xi);

        Fq12 x(a, b);
        Fq12 y(b, a);
        EXPECT_EQ(x * y, y * x);
        EXPECT_EQ(x * x.inverse(), Fq12::one());
        EXPECT_EQ(x.square(), x * x);
        // Sparse 014 multiplication agrees with dense.
        Fq2 d0 = Fq2::random(rng), d1 = Fq2::random(rng),
            d4 = Fq2::random(rng);
        Fq12 sparse(Fq6(d0, d1, Fq2::zero()),
                    Fq6(Fq2::zero(), d4, Fq2::zero()));
        EXPECT_EQ(x.mul_by_014(d0, d1, d4), x * sparse);
    }
}

}  // namespace
