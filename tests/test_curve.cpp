/**
 * @file
 * Group-law, MSM and extension-tower tests for the BLS12-381 curve layer.
 */
#include <gtest/gtest.h>

#include <random>

#include "curve/fq12.hpp"
#include "curve/g1.hpp"
#include "curve/g2.hpp"
#include "curve/msm.hpp"

namespace {

using namespace zkspeed::curve;
using zkspeed::ff::Fr;
using zkspeed::ff::Fq;

TEST(G1, GeneratorOnCurve)
{
    EXPECT_TRUE(G1Params::generator().is_on_curve());
    EXPECT_FALSE(G1Params::generator().is_identity());
}

TEST(G2, GeneratorOnCurve)
{
    EXPECT_TRUE(G2Params::generator().is_on_curve());
}

TEST(G1, GeneratorHasOrderR)
{
    // r * G == identity, and (r-1) * G == -G.
    G1 g = g1_generator();
    EXPECT_TRUE(g.mul(Fr::kModulus).is_identity());
    auto rm1 = Fr::kModulus;
    rm1.sub_assign(zkspeed::ff::BigInt<4>(1));
    EXPECT_EQ(g.mul(rm1), g.neg());
}

TEST(G2, GeneratorHasOrderR)
{
    G2 h = g2_generator();
    EXPECT_TRUE(h.mul(Fr::kModulus).is_identity());
}

template <typename Group>
void
group_law_suite(Group g)
{
    using G = Group;
    // Identity behaviour.
    EXPECT_EQ(g + G::identity(), g);
    EXPECT_EQ(G::identity() + g, g);
    EXPECT_TRUE((g + g.neg()).is_identity());
    // Doubling consistency.
    EXPECT_EQ(g.dbl(), g + g);
    EXPECT_EQ(g.dbl() + g, g.mul(Fr::from_uint(3)));
    // Associativity / commutativity on random multiples.
    std::mt19937_64 rng(11);
    Fr a = Fr::random(rng), b = Fr::random(rng);
    G ga = g.mul(a), gb = g.mul(b);
    EXPECT_EQ(ga + gb, gb + ga);
    EXPECT_EQ((ga + gb) + g, ga + (gb + g));
    // Distributivity of scalar mul: (a+b)G == aG + bG.
    EXPECT_EQ(g.mul(a + b), ga + gb);
    // (ab)G == a(bG).
    EXPECT_EQ(g.mul(a * b), gb.mul(a));
    // Affine round trips.
    auto aff = ga.to_affine();
    EXPECT_TRUE(aff.is_on_curve());
    EXPECT_EQ(G::from_affine(aff), ga);
}

TEST(G1, GroupLaws) { group_law_suite(g1_generator()); }
TEST(G2, GroupLaws) { group_law_suite(g2_generator()); }

TEST(G1, MixedAddMatchesFullAdd)
{
    std::mt19937_64 rng(12);
    G1 g = g1_generator();
    for (int i = 0; i < 10; ++i) {
        G1 p = g.mul(Fr::random(rng));
        G1 q = g.mul(Fr::random(rng));
        auto q_aff = q.to_affine();
        EXPECT_EQ(p.add_mixed(q_aff), p + q);
        // Degenerate cases: doubling and cancellation via mixed add.
        EXPECT_EQ(p.add_mixed(p.to_affine()), p.dbl());
        EXPECT_TRUE(p.add_mixed(p.neg().to_affine()).is_identity());
    }
}

TEST(G1, BatchToAffine)
{
    std::mt19937_64 rng(13);
    G1 g = g1_generator();
    std::vector<G1> pts;
    for (int i = 0; i < 17; ++i) pts.push_back(g.mul(Fr::random(rng)));
    pts.push_back(G1::identity());
    auto affs = batch_to_affine<G1Params>(pts);
    ASSERT_EQ(affs.size(), pts.size());
    for (size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(affs[i], pts[i].to_affine());
    }
}

class MsmTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(MsmTest, PippengerMatchesNaive)
{
    size_t n = GetParam();
    std::mt19937_64 rng(100 + n);
    G1 g = g1_generator();
    std::vector<G1Affine> points(n);
    std::vector<Fr> scalars(n);
    for (size_t i = 0; i < n; ++i) {
        points[i] = g.mul(Fr::random(rng)).to_affine();
        scalars[i] = Fr::random(rng);
    }
    G1 expect = msm_naive(points, scalars);
    EXPECT_EQ(msm(points, scalars), expect);
    // Explicit window sizes matching the paper's design space (Table 2).
    for (unsigned w : {7u, 8u, 9u, 10u}) {
        EXPECT_EQ(msm(points, scalars, w), expect) << "window " << w;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MsmTest,
                         ::testing::Values(1, 2, 3, 31, 32, 33, 100, 257));

TEST(Msm, EdgeCaseScalars)
{
    std::mt19937_64 rng(14);
    G1 g = g1_generator();
    std::vector<G1Affine> points;
    std::vector<Fr> scalars;
    for (int i = 0; i < 16; ++i) {
        points.push_back(g.mul(Fr::random(rng)).to_affine());
    }
    // All-zero scalars.
    scalars.assign(16, Fr::zero());
    EXPECT_TRUE(msm(points, scalars).is_identity());
    // Scalar p-1 (all windows saturated).
    scalars.assign(16, -Fr::one());
    EXPECT_EQ(msm(points, scalars), msm_naive(points, scalars));
    // Mixed tiny scalars.
    for (int i = 0; i < 16; ++i) scalars[i] = Fr::from_uint(i);
    EXPECT_EQ(msm(points, scalars), msm_naive(points, scalars));
}

TEST(Msm, SparseMsmMatchesDenseAndCountsClasses)
{
    std::mt19937_64 rng(15);
    G1 g = g1_generator();
    const size_t n = 200;
    std::vector<G1Affine> points(n);
    std::vector<Fr> scalars(n);
    // Paper Section 6.2 statistics: 45% zeros, 45% ones, 10% dense.
    size_t zeros = 0, ones = 0, dense = 0;
    for (size_t i = 0; i < n; ++i) {
        points[i] = g.mul(Fr::random(rng)).to_affine();
        double u = std::uniform_real_distribution<>(0, 1)(rng);
        if (u < 0.45) {
            scalars[i] = Fr::zero();
            ++zeros;
        } else if (u < 0.90) {
            scalars[i] = Fr::one();
            ++ones;
        } else {
            scalars[i] = Fr::random(rng);
            ++dense;
        }
    }
    MsmStats stats;
    G1 got = msm_sparse(points, scalars, &stats);
    EXPECT_EQ(got, msm_naive(points, scalars));
    EXPECT_EQ(stats.zeros, zeros);
    EXPECT_EQ(stats.ones, ones);
    EXPECT_EQ(stats.dense, dense);
}

TEST(Msm, TreeSumMatchesSequential)
{
    std::mt19937_64 rng(16);
    G1 g = g1_generator();
    for (size_t n : {0u, 1u, 2u, 3u, 15u, 16u, 17u}) {
        std::vector<G1Affine> pts(n);
        G1 expect = G1::identity();
        for (size_t i = 0; i < n; ++i) {
            pts[i] = g.mul(Fr::random(rng)).to_affine();
            expect += G1::from_affine(pts[i]);
        }
        EXPECT_EQ(tree_sum(pts), expect) << "n=" << n;
    }
}

TEST(Msm, SizeMismatchThrowsStructuredError)
{
    // A silent identity here turned a caller bug into a wrong-but-
    // valid-looking commitment (the PR 8 bugfix); every entry point
    // must throw with both lengths attached.
    std::vector<G1Affine> pts(3, g1_generator().to_affine());
    std::vector<Fr> scalars(2, Fr::one());
    try {
        msm(pts, scalars);
        FAIL() << "msm accepted mismatched spans";
    } catch (const MsmSizeError &e) {
        EXPECT_EQ(e.points, 3u);
        EXPECT_EQ(e.scalars, 2u);
        EXPECT_NE(std::string(e.what()).find("mismatch"),
                  std::string::npos);
    }
    EXPECT_THROW(msm_sparse(pts, scalars), MsmSizeError);
    EXPECT_THROW(msm_naive(pts, scalars), MsmSizeError);
    EXPECT_THROW(msm_reference(pts, scalars), MsmSizeError);
    // Empty inputs are fine (identity), not an error.
    EXPECT_TRUE(msm(std::span<const G1Affine>(), std::span<const Fr>())
                    .is_identity());
}

TEST(Msm, WindowClampBoundaries)
{
    // window >= 64 used to hit uint64_t(1) << w UB; any out-of-range
    // value must clamp into [kMinWindowBits, kMaxWindowBits] and still
    // produce the correct result.
    std::mt19937_64 rng(77);
    const size_t n = 33;
    std::vector<G1Affine> pts(n);
    std::vector<Fr> scalars(n);
    G1 acc = g1_generator();
    for (size_t i = 0; i < n; ++i) {
        pts[i] = acc.to_affine();
        acc = acc.dbl() + g1_generator();
        scalars[i] = Fr::random(rng);
    }
    G1 want = msm_naive(pts, scalars);
    for (unsigned w : {1u, 2u, 3u, 15u, 16u, 17u, 63u, 64u, 65u, 1000u}) {
        EXPECT_EQ(msm(pts, scalars, w), want) << "window " << w;
        EXPECT_EQ(msm_reference(pts, scalars, w), want) << "window " << w;
    }
}

TEST(Msm, SignedDigitAdversarialScalars)
{
    // Scalars chosen to stress the signed-digit recoding: 0, 1, r-1
    // (every digit maximal after recoding), single set bits at window
    // boundaries, digits exactly at +/- 2^{w-1}, and long carry chains
    // (0xFFFF... patterns propagate a carry across every window).
    std::mt19937_64 rng(78);
    std::vector<Fr> special;
    special.push_back(Fr::zero());
    special.push_back(Fr::one());
    special.push_back(-Fr::one());  // r - 1
    for (unsigned k : {1u, 7u, 8u, 63u, 64u, 127u, 128u, 254u}) {
        auto bits = Fr::Repr(0);
        bits.limbs[k / 64] = uint64_t(1) << (k % 64);
        special.push_back(Fr::from_repr(bits));  // 2^k < r for k <= 254
    }
    for (unsigned w = 2; w <= 13; ++w) {
        special.push_back(Fr::from_uint(uint64_t(1) << (w - 1)));      // +half
        special.push_back(Fr::from_uint((uint64_t(1) << (w - 1)) + 1));
        special.push_back(Fr::from_uint((uint64_t(1) << w) - 1));      // carry
    }
    auto all_ones = Fr::Repr(0);
    for (size_t l = 0; l < 3; ++l) all_ones.limbs[l] = ~uint64_t(0);
    special.push_back(Fr::from_repr(all_ones));  // 2^192 - 1 < r

    std::vector<G1Affine> pts(special.size());
    G1 acc = g1_generator();
    for (size_t i = 0; i < pts.size(); ++i) {
        pts[i] = acc.to_affine();
        acc = acc.dbl() + g1_generator();
    }
    G1 want = msm_naive(pts, special);
    for (unsigned w : {0u, 2u, 5u, 8u, 13u}) {
        EXPECT_EQ(msm(pts, special, w), want) << "window " << w;
    }
    EXPECT_EQ(msm_reference(pts, special), want);
}

TEST(Msm, DuplicateAndNegatedPoints)
{
    // Duplicate points land in the same bucket and force the affine
    // batch kernel through its doubling branch (equal x, equal y);
    // P next to -P with equal scalars forces the cancellation branch
    // (equal x, opposite y). Identity points must decompose to nothing.
    std::mt19937_64 rng(79);
    G1Affine p = g1_generator().mul(Fr::from_uint(5)).to_affine();
    G1Affine q = g1_generator().mul(Fr::from_uint(9)).to_affine();
    G1Affine minus_p = p.neg();

    std::vector<G1Affine> pts;
    std::vector<Fr> scalars;
    // 64 copies of p with the same scalar: every window reduces a
    // bucket run of equal points (doubling ladder).
    Fr s = Fr::random(rng);
    for (int i = 0; i < 64; ++i) {
        pts.push_back(p);
        scalars.push_back(s);
    }
    // P and -P with the same scalar: cancels to identity pairwise.
    for (int i = 0; i < 7; ++i) {
        pts.push_back(p);
        scalars.push_back(s);
        pts.push_back(minus_p);
        scalars.push_back(s);
    }
    // A few distinct points and an explicit identity point.
    pts.push_back(q);
    scalars.push_back(Fr::random(rng));
    pts.push_back(G1Affine::identity());
    scalars.push_back(Fr::random(rng));

    G1 want = msm_naive(pts, scalars);
    for (unsigned w : {0u, 2u, 4u, 9u}) {
        EXPECT_EQ(msm(pts, scalars, w), want) << "window " << w;
    }
    zkspeed::curve::MsmStats st;
    EXPECT_EQ(msm_sparse(pts, scalars, &st), want);
}

TEST(Msm, SignedKernelMatchesReferenceKernel)
{
    // The frozen pre-PR 8 kernel doubles as an independent oracle for
    // the signed-digit path on larger random instances.
    std::mt19937_64 rng(80);
    for (size_t n : {100u, 1000u, 4097u}) {
        std::vector<G1Affine> pts(n);
        std::vector<Fr> scalars(n);
        G1 acc = g1_generator();
        for (size_t i = 0; i < n; ++i) {
            pts[i] = acc.to_affine();
            acc = acc.dbl() + g1_generator();
            scalars[i] = Fr::random(rng);
        }
        EXPECT_EQ(msm(pts, scalars), msm_reference(pts, scalars))
            << "n = " << n;
    }
}

TEST(Fq2Tower, FieldAxioms)
{
    std::mt19937_64 rng(17);
    for (int i = 0; i < 25; ++i) {
        Fq2 a = Fq2::random(rng), b = Fq2::random(rng), c = Fq2::random(rng);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a * b) * c, a * (b * c));
        EXPECT_EQ(a * (b + c), a * b + a * c);
        EXPECT_EQ(a.square(), a * a);
        if (!a.is_zero()) {
            EXPECT_EQ(a * a.inverse(), Fq2::one());
        }
        // Nonresidue multiplication is multiplication by (u+1).
        Fq2 xi(Fq::one(), Fq::one());
        EXPECT_EQ(a.mul_by_nonresidue(), a * xi);
    }
}

TEST(Fq2Tower, USquaredIsMinusOne)
{
    Fq2 u(Fq::zero(), Fq::one());
    EXPECT_EQ(u.square(), -Fq2::one());
}

TEST(Fq6Fq12Tower, AxiomsAndSparseOps)
{
    std::mt19937_64 rng(18);
    for (int i = 0; i < 10; ++i) {
        Fq6 a(Fq2::random(rng), Fq2::random(rng), Fq2::random(rng));
        Fq6 b(Fq2::random(rng), Fq2::random(rng), Fq2::random(rng));
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ(a * a.inverse(), Fq6::one());
        // Sparse muls agree with dense.
        Fq2 s0 = Fq2::random(rng), s1 = Fq2::random(rng);
        EXPECT_EQ(a.mul_by_01(s0, s1), a * Fq6(s0, s1, Fq2::zero()));
        EXPECT_EQ(a.mul_by_1(s1), a * Fq6(Fq2::zero(), s1, Fq2::zero()));
        // v^3 == xi: multiplying three times by v equals scaling by xi.
        Fq6 v(Fq2::zero(), Fq2::one(), Fq2::zero());
        Fq6 xi(Fq2::one().mul_by_nonresidue(), Fq2::zero(), Fq2::zero());
        EXPECT_EQ(a * v * v * v, a * xi);

        Fq12 x(a, b);
        Fq12 y(b, a);
        EXPECT_EQ(x * y, y * x);
        EXPECT_EQ(x * x.inverse(), Fq12::one());
        EXPECT_EQ(x.square(), x * x);
        // Sparse 014 multiplication agrees with dense.
        Fq2 d0 = Fq2::random(rng), d1 = Fq2::random(rng),
            d4 = Fq2::random(rng);
        Fq12 sparse(Fq6(d0, d1, Fq2::zero()),
                    Fq6(Fq2::zero(), d4, Fq2::zero()));
        EXPECT_EQ(x.mul_by_014(d0, d1, d4), x * sparse);
    }
}

}  // namespace
