/**
 * @file
 * Batch verification subsystem tests: deferred-pairing accumulator
 * equivalence with inline verification, RLC batch folding, bisection
 * isolation of corrupted proofs, the VERIFY wire frames (including
 * malformed-frame fuzzing), and mixed prove/verify service traffic.
 */
#include <gtest/gtest.h>

#include <random>

#include "hyperplonk/serialize.hpp"
#include "runtime/service.hpp"
#include "sim/replay.hpp"
#include "verify/batch_verifier.hpp"

namespace {

using namespace zkspeed;
using ff::Fr;
using runtime::JobKind;
using runtime::JobStatus;

/** keygen a random satisfiable circuit and prove it. */
struct ProvenStatement {
    hyperplonk::VerifyingKey vk;
    std::vector<Fr> publics;
    hyperplonk::Proof proof;
};

ProvenStatement
prove_random(size_t mu, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    auto [index, witness] = hyperplonk::random_circuit(mu, rng);
    std::mt19937_64 srs_rng(0x5eed0 + mu);
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(mu, srs_rng, /*keep_trapdoor=*/true));
    auto [pk, vk] = hyperplonk::keygen(index, srs);
    ProvenStatement st;
    st.publics = witness.public_inputs(index);
    st.proof = hyperplonk::prove(pk, witness);
    st.vk = vk;
    return st;
}

/** Tamper with a proof so only the deferred pairing check can notice:
 * the quotients enter the transcript after every challenge is drawn,
 * so all algebraic checks still pass. */
void
corrupt_pairing_side(hyperplonk::Proof &proof)
{
    ASSERT_FALSE(proof.gprime_proof.quotients.empty());
    auto &q = proof.gprime_proof.quotients[0];
    q = (curve::G1::from_affine(q) + curve::g1_generator()).to_affine();
}

TEST(Accumulator, PcsAccumulateMatchesInlineVerify)
{
    std::mt19937_64 rng(101);
    const size_t mu = 4;
    auto srs = pcs::Srs::generate(mu, rng);
    mle::Mle poly = mle::Mle::random(mu, rng);
    auto comm = pcs::commit(srs, poly);
    std::vector<Fr> point(mu);
    for (auto &z : point) z = Fr::random(rng);
    auto [proof, value] = pcs::open(srs, poly, point);

    EXPECT_TRUE(pcs::verify(srs, comm, point, value, proof));

    verifier::PairingAccumulator acc;
    ASSERT_TRUE(pcs::accumulate(srs, comm, point, value, proof, acc));
    verifier::FlushStats stats;
    EXPECT_TRUE(acc.check(&stats));
    // Decomposed onto the fixed basis {h, h^{tau_k}}: mu+1 pairings.
    EXPECT_EQ(stats.num_pairings, mu + 1);

    // A wrong claimed value must fail both paths.
    Fr bad = value + Fr::one();
    EXPECT_FALSE(pcs::verify(srs, comm, point, bad, proof));
    verifier::PairingAccumulator acc_bad;
    ASSERT_TRUE(pcs::accumulate(srs, comm, point, bad, proof, acc_bad));
    EXPECT_FALSE(acc_bad.check());
}

TEST(Accumulator, DeferredHyperplonkVerifyMatchesInline)
{
    auto st = prove_random(4, 202);
    EXPECT_TRUE(hyperplonk::verify(st.vk, st.publics, st.proof,
                                   hyperplonk::PcsCheckMode::pairing));
    verifier::PairingAccumulator acc;
    ASSERT_TRUE(
        hyperplonk::verify_deferred(st.vk, st.publics, st.proof, acc));
    EXPECT_FALSE(acc.empty());
    EXPECT_TRUE(acc.check());

    // Algebraic failure (wrong publics) rejects before accumulating.
    auto bad_publics = st.publics;
    ASSERT_FALSE(bad_publics.empty());
    bad_publics[0] += Fr::one();
    verifier::PairingAccumulator acc2;
    EXPECT_FALSE(hyperplonk::verify_deferred(st.vk, bad_publics, st.proof,
                                             acc2));
    EXPECT_TRUE(acc2.empty());

    // Pairing-side corruption passes algebra but fails the flush.
    auto bad_proof = st.proof;
    corrupt_pairing_side(bad_proof);
    verifier::PairingAccumulator acc3;
    ASSERT_TRUE(hyperplonk::verify_deferred(st.vk, st.publics, bad_proof,
                                            acc3));
    EXPECT_FALSE(acc3.check());
}

TEST(BatchVerifier, CleanBatchFoldsIntoOneCheck)
{
    verifier::BatchVerifier bv;
    for (uint64_t seed : {301, 302, 303, 304}) {
        auto st = prove_random(4, seed);
        verifier::PairingAccumulator acc;
        ASSERT_TRUE(
            hyperplonk::verify_deferred(st.vk, st.publics, st.proof, acc));
        bv.add(std::move(acc));
    }
    ASSERT_EQ(bv.size(), 4u);
    auto result = bv.flush();
    EXPECT_TRUE(result.all_ok());
    EXPECT_EQ(result.stats.pairing_checks, 1u)
        << "a clean batch must be decided by a single folded check";
    EXPECT_EQ(result.stats.bisection_steps, 0u);
    EXPECT_GT(result.stats.msm_points, 4u);
    EXPECT_TRUE(bv.empty()) << "flush resets the verifier";
}

TEST(BatchVerifier, CorruptedProofIsolatedByBisection)
{
    const size_t kBad = 2;
    verifier::BatchVerifier bv;
    for (size_t i = 0; i < 5; ++i) {
        auto st = prove_random(4, 400 + i);
        if (i == kBad) corrupt_pairing_side(st.proof);
        verifier::PairingAccumulator acc;
        ASSERT_TRUE(
            hyperplonk::verify_deferred(st.vk, st.publics, st.proof, acc));
        bv.add(std::move(acc));
    }
    auto result = bv.flush();
    ASSERT_EQ(result.verdicts.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(result.verdicts[i], i != kBad) << "proof " << i;
    }
    EXPECT_FALSE(result.all_ok());
    EXPECT_GT(result.stats.bisection_steps, 0u);
    EXPECT_GT(result.stats.pairing_checks, 1u);
}

TEST(BatchVerifier, MixedCircuitSizesShareOneFlush)
{
    verifier::BatchVerifier bv;
    size_t distinct_g2 = 0;
    for (auto [mu, seed] : {std::pair<size_t, uint64_t>{3, 501},
                            {4, 502},
                            {3, 503}}) {
        auto st = prove_random(mu, seed);
        verifier::PairingAccumulator acc;
        ASSERT_TRUE(
            hyperplonk::verify_deferred(st.vk, st.publics, st.proof, acc));
        bv.add(std::move(acc));
        distinct_g2 = std::max(distinct_g2, mu + 1);
    }
    auto result = bv.flush();
    EXPECT_TRUE(result.all_ok());
    EXPECT_EQ(result.stats.pairing_checks, 1u);
    // Two SRS instances: the multi-pairing spans both G2 bases.
    EXPECT_GT(result.stats.num_pairings, distinct_g2);
}

TEST(BatchVerifier, SingleBadProofBatchRejects)
{
    auto st = prove_random(3, 600);
    corrupt_pairing_side(st.proof);
    verifier::PairingAccumulator acc;
    ASSERT_TRUE(
        hyperplonk::verify_deferred(st.vk, st.publics, st.proof, acc));
    verifier::BatchVerifier bv;
    bv.add(std::move(acc));
    auto result = bv.flush();
    ASSERT_EQ(result.verdicts.size(), 1u);
    EXPECT_FALSE(result.verdicts[0]);
}

// ---------------------------------------------------------------------
// Systematic proof mutation: corrupt every structural field of a proof
// in turn. Each mutated proof must still decode (the mutations keep
// points on-curve and scalars canonical), and then be rejected — either
// by the inline algebraic checks, or, for pairing-side fields, by the
// batch fold with bisection fingering exactly the mutated proof.
// ---------------------------------------------------------------------

struct ProofMutation {
    const char *field;
    std::function<void(hyperplonk::Proof &)> apply;
};

std::vector<ProofMutation>
proof_mutations()
{
    auto bump_g1 = [](curve::G1Affine &p) {
        p = (curve::G1::from_affine(p) + curve::g1_generator()).to_affine();
    };
    std::vector<ProofMutation> muts;
    muts.push_back({"witness_comms[0]", [bump_g1](hyperplonk::Proof &p) {
                        bump_g1(p.witness_comms[0]);
                    }});
    muts.push_back({"zerocheck.round_evals[0][0]",
                    [](hyperplonk::Proof &p) {
                        p.zerocheck.round_evals[0][0] += Fr::one();
                    }});
    muts.push_back({"phi_comm", [bump_g1](hyperplonk::Proof &p) {
                        bump_g1(p.phi_comm);
                    }});
    muts.push_back({"pi_comm", [bump_g1](hyperplonk::Proof &p) {
                        bump_g1(p.pi_comm);
                    }});
    muts.push_back({"permcheck.round_evals[0][0]",
                    [](hyperplonk::Proof &p) {
                        p.permcheck.round_evals[0][0] += Fr::one();
                    }});
    muts.push_back({"evals.at_gate[5]", [](hyperplonk::Proof &p) {
                        p.evals.at_gate[5] += Fr::one();
                    }});
    muts.push_back({"evals.at_perm[3]", [](hyperplonk::Proof &p) {
                        p.evals.at_perm[3] += Fr::one();
                    }});
    muts.push_back({"evals.at_u0[0]", [](hyperplonk::Proof &p) {
                        p.evals.at_u0[0] += Fr::one();
                    }});
    muts.push_back({"evals.at_u1[1]", [](hyperplonk::Proof &p) {
                        p.evals.at_u1[1] += Fr::one();
                    }});
    muts.push_back({"evals.pi_at_root", [](hyperplonk::Proof &p) {
                        p.evals.pi_at_root += Fr::one();
                    }});
    muts.push_back({"evals.w1_at_pub", [](hyperplonk::Proof &p) {
                        p.evals.w1_at_pub += Fr::one();
                    }});
    muts.push_back({"opencheck.round_evals[0][0]",
                    [](hyperplonk::Proof &p) {
                        p.opencheck.round_evals[0][0] += Fr::one();
                    }});
    muts.push_back({"gprime_value", [](hyperplonk::Proof &p) {
                        p.gprime_value += Fr::one();
                    }});
    muts.push_back({"gprime_proof.quotients[0]",
                    [bump_g1](hyperplonk::Proof &p) {
                        bump_g1(p.gprime_proof.quotients[0]);
                    }});
    muts.push_back({"gprime_proof.quotients.back()",
                    [bump_g1](hyperplonk::Proof &p) {
                        bump_g1(p.gprime_proof.quotients.back());
                    }});
    return muts;
}

TEST(ProofMutation, EveryFieldMutationIsRejectedAndBisectionFingersIt)
{
    auto honest_a = prove_random(3, 800);
    auto honest_b = prove_random(3, 801);
    auto victim = prove_random(3, 802);

    size_t algebra_rejections = 0, batch_rejections = 0;
    for (const ProofMutation &mut : proof_mutations()) {
        SCOPED_TRACE(mut.field);
        auto mutated = victim.proof;
        mut.apply(mutated);

        // The mutation must survive the serialization boundary: this
        // sweep tests verification soundness, not decode strictness.
        auto bytes = hyperplonk::serde::serialize_proof(mutated);
        auto decoded = hyperplonk::serde::deserialize_proof(bytes);
        ASSERT_TRUE(decoded.has_value());

        verifier::PairingAccumulator acc;
        bool algebra_ok = hyperplonk::verify_deferred(
            victim.vk, victim.publics, *decoded, acc);
        EXPECT_FALSE(hyperplonk::verify(victim.vk, victim.publics,
                                        *decoded,
                                        hyperplonk::PcsCheckMode::pairing));
        if (!algebra_ok) {
            // Caught inline before any pairing work.
            EXPECT_TRUE(acc.empty());
            ++algebra_rejections;
            continue;
        }

        // Algebraically clean: only the folded pairing check can catch
        // it. Sandwich it between honest proofs and demand bisection
        // isolate exactly the mutated one.
        verifier::BatchVerifier bv;
        for (const ProvenStatement *st : {&honest_a, &victim, &honest_b}) {
            verifier::PairingAccumulator a;
            const hyperplonk::Proof &pr =
                st == &victim ? *decoded : st->proof;
            ASSERT_TRUE(
                hyperplonk::verify_deferred(st->vk, st->publics, pr, a));
            bv.add(std::move(a));
        }
        auto result = bv.flush();
        ASSERT_EQ(result.verdicts.size(), 3u);
        EXPECT_TRUE(result.verdicts[0]) << "honest batch-mate rejected";
        EXPECT_FALSE(result.verdicts[1]) << "mutation not detected";
        EXPECT_TRUE(result.verdicts[2]) << "honest batch-mate rejected";
        EXPECT_GT(result.stats.bisection_steps, 0u);
        ++batch_rejections;
    }
    // The transcript binds everything except the opening quotients, so
    // most mutations die algebraically; the quotient mutations are the
    // pairing-side corruptions the batch path exists to catch.
    EXPECT_GE(algebra_rejections, 10u);
    EXPECT_GE(batch_rejections, 2u);
}

TEST(ProofMutation, SerializedBitFlipsNeverVerify)
{
    auto st = prove_random(3, 810);
    auto bytes = hyperplonk::serde::serialize_proof(st.proof);
    // A sparse deterministic sweep across the whole byte range (every
    // byte would re-run pairing checks thousands of times).
    const size_t step = bytes.size() / 48 + 1;
    size_t decode_rejections = 0, verify_rejections = 0;
    for (size_t off = 0; off < bytes.size(); off += step) {
        SCOPED_TRACE("bit flip at byte " + std::to_string(off));
        auto flipped = bytes;
        flipped[off] ^= uint8_t(1u << (off % 8));
        auto decoded = hyperplonk::serde::deserialize_proof(flipped);
        if (!decoded.has_value()) {
            ++decode_rejections;  // strict decoding caught it
            continue;
        }
        EXPECT_FALSE(hyperplonk::verify(st.vk, st.publics, *decoded,
                                        hyperplonk::PcsCheckMode::pairing));
        ++verify_rejections;
    }
    // The sweep must exercise both rejection layers: point bytes die in
    // strict decoding (off-curve), scalar bytes decode but fail
    // verification — if either count drops to zero, a layer has started
    // accepting corrupted material.
    EXPECT_GE(decode_rejections, 1u);
    EXPECT_GE(verify_rejections, 1u);
    EXPECT_EQ(decode_rejections + verify_rejections,
              (bytes.size() + step - 1) / step);
    // The original still verifies: the sweep mutated copies only.
    EXPECT_TRUE(hyperplonk::verify(st.vk, st.publics, st.proof,
                                   hyperplonk::PcsCheckMode::pairing));
}

// ---------------------------------------------------------------------
// VERIFY wire frames.
// ---------------------------------------------------------------------

runtime::VerifyRequest
make_verify_request(uint64_t id, const ProvenStatement &st)
{
    runtime::VerifyRequest req;
    req.request_id = id;
    req.vk = hyperplonk::serde::serialize_verifying_key(st.vk);
    req.public_inputs = st.publics;
    req.proof = hyperplonk::serde::serialize_proof(st.proof);
    return req;
}

TEST(WireVerify, RequestRoundTrip)
{
    auto st = prove_random(3, 700);
    auto req = make_verify_request(77, st);
    auto bytes = runtime::wire::encode_verify_request(req);
    EXPECT_EQ(runtime::wire::classify_request(bytes), JobKind::verify);
    auto back = runtime::wire::decode_verify_request(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->request_id, 77u);
    EXPECT_EQ(back->vk, req.vk);
    EXPECT_EQ(back->proof, req.proof);
    ASSERT_EQ(back->public_inputs.size(), req.public_inputs.size());
    for (size_t i = 0; i < req.public_inputs.size(); ++i) {
        EXPECT_TRUE(back->public_inputs[i] == req.public_inputs[i]);
    }
    // Canonical: re-encoding reproduces the bytes.
    EXPECT_EQ(runtime::wire::encode_verify_request(*back), bytes);

    // A prove frame classifies as prove, garbage as neither.
    EXPECT_EQ(runtime::wire::classify_request(
                  std::vector<uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}),
              std::nullopt);
    EXPECT_EQ(
        runtime::wire::classify_request(std::vector<uint8_t>{1, 2, 3}),
        std::nullopt);
}

TEST(WireVerify, MalformedFramesAreRejected)
{
    auto st = prove_random(3, 701);
    auto bytes = runtime::wire::encode_verify_request(
        make_verify_request(1, st));

    // Truncation at every interesting boundary (and a dense sweep of
    // the header region) must fail closed.
    for (size_t len : {0ul, 7ul, 8ul, 15ul, 16ul, 24ul, 40ul,
                       bytes.size() / 2, bytes.size() - 1}) {
        auto cut = std::span<const uint8_t>(bytes.data(), len);
        EXPECT_FALSE(runtime::wire::decode_verify_request(cut).has_value())
            << "truncated to " << len;
    }
    for (size_t len = 0; len < 64; len += 3) {
        auto cut = std::span<const uint8_t>(bytes.data(), len);
        EXPECT_FALSE(
            runtime::wire::decode_verify_request(cut).has_value());
    }

    // Trailing garbage.
    auto longer = bytes;
    longer.push_back(0);
    EXPECT_FALSE(
        runtime::wire::decode_verify_request(longer).has_value());

    // Bad magic / bad job kind byte.
    auto bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    EXPECT_FALSE(
        runtime::wire::decode_verify_request(bad_magic).has_value());
    EXPECT_EQ(runtime::wire::classify_request(bad_magic), std::nullopt);

    // Oversized length prefix on the vk blob: claims more bytes than
    // the frame holds (and more than kMaxVkBytes allows).
    auto oversized = bytes;
    for (size_t i = 0; i < 8; ++i) oversized[16 + i] = 0xff;
    EXPECT_FALSE(
        runtime::wire::decode_verify_request(oversized).has_value());

    // Length prefix just past the cap but within a huge allocation
    // request: still rejected without allocating.
    auto capped = bytes;
    uint64_t too_big = runtime::wire::kMaxVkBytes + 1;
    for (size_t i = 0; i < 8; ++i) {
        capped[16 + i] = uint8_t(too_big >> (8 * i));
    }
    EXPECT_FALSE(
        runtime::wire::decode_verify_request(capped).has_value());

    // Empty vk / proof blobs are not meaningful requests.
    runtime::VerifyRequest empty_vk = make_verify_request(2, st);
    empty_vk.vk.clear();
    EXPECT_FALSE(runtime::wire::decode_verify_request(
                     runtime::wire::encode_verify_request(empty_vk))
                     .has_value());
}

TEST(WireVerify, ResponseRoundTripCarriesKindAndBatchMetrics)
{
    runtime::JobResponse resp;
    resp.request_id = 9;
    resp.kind = JobKind::verify;
    resp.status = JobStatus::ok;
    resp.metrics.verify_ms = 3.5;
    resp.metrics.batch_size = 16;
    resp.metrics.num_vars = 4;
    auto bytes = runtime::wire::encode_response(resp);
    auto back = runtime::wire::decode_response(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->kind, JobKind::verify);
    EXPECT_EQ(back->status, JobStatus::ok);
    EXPECT_TRUE(back->proof.empty());
    EXPECT_DOUBLE_EQ(back->metrics.verify_ms, 3.5);
    EXPECT_EQ(back->metrics.batch_size, 16u);

    // invalid_proof round-trips for verify...
    resp.status = JobStatus::invalid_proof;
    resp.error = "rejected";
    back = runtime::wire::decode_response(
        runtime::wire::encode_response(resp));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->status, JobStatus::invalid_proof);
    // ...but is rejected as a prove status.
    resp.kind = JobKind::prove;
    EXPECT_FALSE(runtime::wire::decode_response(
                     runtime::wire::encode_response(resp))
                     .has_value());

    // An ok verify response smuggling proof bytes is malformed.
    resp.kind = JobKind::verify;
    resp.status = JobStatus::ok;
    resp.error.clear();
    resp.proof = {1, 2, 3};
    EXPECT_FALSE(runtime::wire::decode_response(
                     runtime::wire::encode_response(resp))
                     .has_value());
}

// ---------------------------------------------------------------------
// Service: mixed prove/verify traffic.
// ---------------------------------------------------------------------

runtime::JobRequest
make_prove_request(uint64_t id, size_t mu, uint64_t circuit_seed)
{
    std::mt19937_64 rng(circuit_seed);
    auto [index, wit] = hyperplonk::random_circuit(mu, rng);
    runtime::JobRequest req;
    req.request_id = id;
    req.circuit = std::move(index);
    req.witness = std::move(wit);
    return req;
}

TEST(ServiceVerify, ProveThenVerifyRoundTripWithCorruptionAndFuzz)
{
    runtime::ServiceConfig cfg;
    cfg.num_workers = 2;
    cfg.total_parallelism = 2;
    cfg.verify_batch_size = 4;
    cfg.verify_batch_window_ms = 1000.0;  // size flush must trigger first
    runtime::ProofService service(cfg);

    // Prove two distinct circuits.
    auto req_a = make_prove_request(1, 4, 9001);
    auto req_b = make_prove_request(2, 4, 9002);
    auto resp_a = service.submit(req_a).get();
    auto resp_b = service.submit(req_b).get();
    ASSERT_TRUE(resp_a.ok()) << resp_a.error;
    ASSERT_TRUE(resp_b.ok()) << resp_b.error;
    EXPECT_EQ(resp_a.kind, JobKind::prove);

    // Clients reconstruct the vk from the circuit (same simulated SRS
    // ceremony seed as the service).
    runtime::KeyCache cache(4, cfg.srs_seed);
    auto keys_a = cache.get_or_create(req_a.circuit).first;
    auto keys_b = cache.get_or_create(req_b.circuit).first;
    auto vk_a = hyperplonk::serde::serialize_verifying_key(*keys_a.vk);
    auto vk_b = hyperplonk::serde::serialize_verifying_key(*keys_b.vk);

    auto make_req = [](uint64_t id, std::vector<uint8_t> vk,
                       std::vector<Fr> publics,
                       std::vector<uint8_t> proof) {
        runtime::VerifyRequest r;
        r.request_id = id;
        r.vk = std::move(vk);
        r.public_inputs = std::move(publics);
        r.proof = std::move(proof);
        return runtime::wire::encode_verify_request(r);
    };
    auto publics_a = req_a.witness.public_inputs(req_a.circuit);
    auto publics_b = req_b.witness.public_inputs(req_b.circuit);

    // One corrupted proof (pairing side, algebraically clean).
    auto corrupted = hyperplonk::serde::deserialize_proof(resp_b.proof);
    ASSERT_TRUE(corrupted.has_value());
    corrupt_pairing_side(*corrupted);

    std::vector<std::future<runtime::JobResponse>> futures;
    futures.push_back(service.submit(
        make_req(10, vk_a, publics_a, resp_a.proof)));
    futures.push_back(service.submit(
        make_req(11, vk_b, publics_b, resp_b.proof)));
    futures.push_back(service.submit(
        make_req(12, vk_b, publics_b,
                 hyperplonk::serde::serialize_proof(*corrupted))));
    futures.push_back(service.submit(
        make_req(13, vk_a, publics_a, resp_a.proof)));

    size_t ok = 0, invalid = 0;
    for (auto &f : futures) {
        auto resp = f.get();
        EXPECT_EQ(resp.kind, JobKind::verify);
        EXPECT_EQ(resp.metrics.batch_size, 4u);
        EXPECT_TRUE(resp.proof.empty());
        if (resp.request_id == 12) {
            EXPECT_EQ(resp.status, JobStatus::invalid_proof);
            ++invalid;
        } else {
            EXPECT_TRUE(resp.ok()) << resp.error;
            ++ok;
        }
    }
    EXPECT_EQ(ok, 3u);
    EXPECT_EQ(invalid, 1u);

    // Malformed verify frames: error responses, workers survive.
    auto valid_frame = make_req(20, vk_a, publics_a, resp_a.proof);
    std::vector<std::vector<uint8_t>> bad;
    bad.push_back(std::vector<uint8_t>(valid_frame.begin(),
                                       valid_frame.begin() + 20));
    auto garbage_vk = valid_frame;
    garbage_vk[24] ^= 0xff;  // first vk byte: breaks the vk magic
    bad.push_back(garbage_vk);
    auto oversized = valid_frame;
    for (size_t i = 0; i < 8; ++i) oversized[16 + i] = 0xff;
    bad.push_back(oversized);
    for (auto &frame : bad) {
        auto resp = service.submit(frame).get();
        EXPECT_EQ(resp.status, JobStatus::malformed_request);
        EXPECT_EQ(resp.kind, JobKind::verify);
    }
    // Unknown magic (bad job kind) falls through to prove decoding and
    // is rejected there.
    std::vector<uint8_t> unknown(16, 0xab);
    auto resp = service.submit(unknown).get();
    EXPECT_EQ(resp.status, JobStatus::malformed_request);

    // The pool still proves and verifies after all that.
    auto again = service.submit(req_a).get();
    EXPECT_TRUE(again.ok()) << again.error;

    auto m = service.metrics();
    EXPECT_EQ(m.prove_class.jobs_ok, 3u);
    EXPECT_EQ(m.verify_class.jobs_ok, 3u);
    EXPECT_EQ(m.verify_class.jobs_rejected, 4u);  // 1 invalid + 3 malformed
    EXPECT_EQ(m.verify_batches.batches, 1u);
    EXPECT_EQ(m.verify_batches.flushed_on_size, 1u);
    EXPECT_EQ(m.verify_batches.proofs_accepted, 3u);
    EXPECT_EQ(m.verify_batches.proofs_rejected, 1u);
    EXPECT_GT(m.verify_batches.bisection_steps, 0u);

    // The trace carries the verify flush and replays through the chip.
    service.shutdown();
    auto trace = service.trace();
    size_t verify_entries = 0;
    for (const auto &e : trace) {
        if (e.kind == JobKind::verify) {
            ++verify_entries;
            EXPECT_EQ(e.batch_size, 4u);
            EXPECT_GT(e.msm_points, 0u);
            EXPECT_GT(e.num_pairings, 0u);
            EXPECT_GT(e.verify_ms, 0.0);
        }
    }
    EXPECT_EQ(verify_entries, 1u);
    auto report =
        sim::replay_trace(trace, sim::DesignConfig::paper_default());
    EXPECT_EQ(report.verify_flushes, 1u);
    EXPECT_EQ(report.proofs_verified, 4u);
    EXPECT_GT(report.chip_verify_ms, 0.0);
    EXPECT_GT(report.sw_verify_ms, 0.0);
    EXPECT_EQ(report.prove_jobs + report.verify_flushes,
              report.jobs.size());
}

TEST(ServiceVerify, LoneVerifyJobFlushesOnTimeout)
{
    runtime::ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.total_parallelism = 1;
    cfg.verify_batch_size = 64;        // never reached
    cfg.verify_batch_window_ms = 5.0;  // timeout must fire
    runtime::ProofService service(cfg);

    auto req = make_prove_request(1, 3, 9100);
    auto proved = service.submit(req).get();
    ASSERT_TRUE(proved.ok()) << proved.error;

    runtime::KeyCache cache(2, cfg.srs_seed);
    auto keys = cache.get_or_create(req.circuit).first;
    runtime::VerifyRequest vreq;
    vreq.request_id = 2;
    vreq.vk = hyperplonk::serde::serialize_verifying_key(*keys.vk);
    vreq.public_inputs = req.witness.public_inputs(req.circuit);
    vreq.proof = proved.proof;

    auto resp = service
                    .submit(runtime::wire::encode_verify_request(vreq))
                    .get();
    EXPECT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.metrics.batch_size, 1u);
    auto m = service.metrics();
    EXPECT_EQ(m.verify_batches.flushed_on_timeout, 1u);
    EXPECT_EQ(m.verify_batches.flushed_on_size, 0u);
}

TEST(ServiceVerify, ShutdownDrainsParkedVerifyJobs)
{
    runtime::ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.total_parallelism = 1;
    cfg.verify_batch_size = 64;
    cfg.verify_batch_window_ms = 60000.0;  // only shutdown can flush
    auto st = prove_random(3, 9200);
    runtime::VerifyRequest vreq;
    vreq.request_id = 3;
    vreq.vk = hyperplonk::serde::serialize_verifying_key(st.vk);
    vreq.public_inputs = st.publics;
    vreq.proof = hyperplonk::serde::serialize_proof(st.proof);
    std::future<runtime::JobResponse> fut;
    {
        runtime::ProofService service(cfg);
        fut = service.submit(runtime::wire::encode_verify_request(vreq));
        // Wait until the job is parked (the queue has drained), then
        // shut down: the drain must answer it, not drop the promise.
        while (service.queue_depth() > 0) {
            std::this_thread::yield();
        }
        service.shutdown();
    }
    auto resp = fut.get();
    EXPECT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.metrics.batch_size, 1u);
}

}  // namespace
