/**
 * @file
 * Unit tests for the fixed-width big integer layer.
 */
#include <gtest/gtest.h>

#include <random>

#include "ff/bigint.hpp"

namespace {

using zkspeed::ff::BigInt;

TEST(BigInt, HexRoundTrip)
{
    auto x = BigInt<4>::from_hex(
        "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001");
    EXPECT_EQ(x.to_hex(),
              "0x73eda753299d7d483339d80809a1d805"
              "53bda402fffe5bfeffffffff00000001");
    EXPECT_EQ(BigInt<4>().to_hex(), "0x0");
    EXPECT_EQ(BigInt<4>::from_hex("0xff").limbs[0], 0xffu);
}

TEST(BigInt, AddSubCarryChains)
{
    BigInt<2> a;
    a.limbs = {~0ull, 0};
    BigInt<2> one(1);
    EXPECT_EQ(a.add_assign(one), 0u);
    EXPECT_EQ(a.limbs[0], 0u);
    EXPECT_EQ(a.limbs[1], 1u);
    EXPECT_EQ(a.sub_assign(one), 0u);
    EXPECT_EQ(a.limbs[0], ~0ull);
    EXPECT_EQ(a.limbs[1], 0u);

    BigInt<2> zero;
    EXPECT_EQ(zero.sub_assign(one), 1u) << "borrow out of the top";
    EXPECT_EQ(zero.limbs[0], ~0ull);
    EXPECT_EQ(zero.limbs[1], ~0ull);
    BigInt<2> max;
    max.limbs = {~0ull, ~0ull};
    EXPECT_EQ(max.add_assign(one), 1u) << "carry out of the top";
    EXPECT_TRUE(max.is_zero());
}

TEST(BigInt, Comparison)
{
    auto a = BigInt<4>::from_hex("10000000000000000");  // 2^64
    auto b = BigInt<4>::from_hex("ffffffffffffffff");
    EXPECT_EQ(a.cmp(b), 1);
    EXPECT_EQ(b.cmp(a), -1);
    EXPECT_EQ(a.cmp(a), 0);
    EXPECT_TRUE(b < a);
    EXPECT_TRUE(a >= b);
}

TEST(BigInt, BitsAndShifts)
{
    auto x = BigInt<4>::from_hex("8000000000000001");
    EXPECT_TRUE(x.bit(0));
    EXPECT_TRUE(x.bit(63));
    EXPECT_FALSE(x.bit(1));
    EXPECT_EQ(x.num_bits(), 64u);
    x.shl1();
    EXPECT_EQ(x.num_bits(), 65u);
    EXPECT_TRUE(x.bit(64));
    EXPECT_TRUE(x.bit(1));
    x.shr1();
    EXPECT_EQ(x.to_hex(), "0x8000000000000001");
    EXPECT_EQ(BigInt<4>().num_bits(), 0u);
}

TEST(BigInt, MulWideSchoolbook)
{
    // (2^64 - 1)^2 = 2^128 - 2^65 + 1
    BigInt<1> a(~0ull);
    auto p = a.mul_wide(a);
    EXPECT_EQ(p.limbs[0], 1u);
    EXPECT_EQ(p.limbs[1], ~0ull - 1);

    // Multiplication by zero and by one.
    BigInt<4> x = BigInt<4>::from_hex("123456789abcdef0fedcba9876543210");
    auto z = x.mul_wide(BigInt<4>());
    EXPECT_TRUE(z.is_zero());
    auto i = x.mul_wide(BigInt<4>(1));
    for (size_t k = 0; k < 4; ++k) EXPECT_EQ(i.limbs[k], x.limbs[k]);
}

TEST(BigInt, ModAddSubInverseOps)
{
    auto p = BigInt<4>::from_hex(
        "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001");
    std::mt19937_64 rng(42);
    for (int iter = 0; iter < 200; ++iter) {
        BigInt<4> a, b;
        for (auto &l : a.limbs) l = rng();
        for (auto &l : b.limbs) l = rng();
        a.limbs[3] >>= 2;  // force below p
        b.limbs[3] >>= 2;
        if (!(a < p) || !(b < p)) continue;
        auto s = mod_add(a, b, p);
        EXPECT_TRUE(s < p);
        auto back = mod_sub(s, b, p);
        EXPECT_EQ(back, a);
    }
}

TEST(BigInt, Pow2Mod)
{
    auto p = BigInt<2>::from_hex("10001");  // 65537
    // 2^16 mod 65537 = 65536
    EXPECT_EQ(zkspeed::ff::pow2_mod(16, p).limbs[0], 65536u);
    // 2^17 mod 65537 = 65535 (2*65536 = 131072 = 65537 + 65535)
    EXPECT_EQ(zkspeed::ff::pow2_mod(17, p).limbs[0], 65535u);
}

TEST(BigInt, NegInv64)
{
    // For p0 odd, p0 * (-neg_inv64(p0)) == 1 (mod 2^64).
    for (uint64_t p0 : {1ull, 3ull, 0xffffffff00000001ull,
                        0xb9feffffffffaaabull}) {
        uint64_t ninv = zkspeed::ff::neg_inv64(p0);
        EXPECT_EQ(p0 * (~ninv + 1), 1ull);
    }
}

}  // namespace
