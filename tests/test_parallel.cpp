/**
 * @file
 * Parallel-kernel tests: serial and parallel runs must be bit-identical
 * (field arithmetic is exact), and the modmul-counter migration must
 * keep instrumentation totals intact under threading.
 */
#include <gtest/gtest.h>

#include <random>

#include "ff/parallel.hpp"
#include "hyperplonk/prover.hpp"

namespace {

using namespace zkspeed;
using ff::Fr;
using ff::ParallelismGuard;

TEST(Parallel, ParallelForCoversRangeExactlyOnce)
{
    std::vector<std::atomic<int>> hits(10000);
    ff::parallel_for(hits.size(), [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) ++hits[i];
    }, 16);
    for (size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1) << i;
    }
}

TEST(Parallel, CounterMigrationPreservesTotals)
{
    std::mt19937_64 rng(601);
    std::vector<Fr> xs(5000);
    for (auto &x : xs) x = Fr::random(rng);
    auto run = [&](size_t threads) {
        ParallelismGuard guard(threads);
        ff::ModmulScope scope;
        std::vector<Fr> out(xs.size());
        ff::parallel_for(xs.size(), [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i) out[i] = xs[i] * xs[i];
        }, 64);
        return scope.fr_delta();
    };
    EXPECT_EQ(run(1), xs.size());
    EXPECT_EQ(run(4), xs.size()) << "worker muls must migrate back";
}

TEST(Parallel, MsmIdenticalAcrossThreadCounts)
{
    std::mt19937_64 rng(602);
    const size_t n = 6000;  // above the parallel threshold
    std::vector<curve::G1Affine> pts(n);
    std::vector<Fr> scalars(n);
    for (size_t i = 0; i < n; ++i) {
        pts[i] = curve::g1_generator()
                     .mul(Fr::from_uint(i * 7 + 1))
                     .to_affine();
        scalars[i] = Fr::random(rng);
    }
    curve::G1 serial, parallel;
    {
        ParallelismGuard guard(1);
        serial = curve::msm(pts, scalars);
    }
    {
        ParallelismGuard guard(8);
        parallel = curve::msm(pts, scalars);
    }
    EXPECT_EQ(serial, parallel);
}

TEST(Parallel, ProofsIdenticalAcrossThreadCounts)
{
    std::mt19937_64 rng(603);
    auto [index, wit] = hyperplonk::random_circuit(6, rng);
    auto srs = std::make_shared<pcs::Srs>(pcs::Srs::generate(6, rng));
    auto [pk, vk] = hyperplonk::keygen(std::move(index), srs);

    hyperplonk::Proof p1, p2;
    {
        ParallelismGuard guard(1);
        p1 = hyperplonk::prove(pk, wit);
    }
    {
        ParallelismGuard guard(8);
        p2 = hyperplonk::prove(pk, wit);
    }
    // Bit-identical transcripts: every message matches.
    EXPECT_EQ(p1.evals.flatten(), p2.evals.flatten());
    EXPECT_EQ(p1.gprime_value, p2.gprime_value);
    ASSERT_EQ(p1.zerocheck.round_evals.size(),
              p2.zerocheck.round_evals.size());
    for (size_t i = 0; i < p1.zerocheck.round_evals.size(); ++i) {
        EXPECT_EQ(p1.zerocheck.round_evals[i],
                  p2.zerocheck.round_evals[i]);
    }
    auto publics = wit.public_inputs(pk.index);
    EXPECT_TRUE(hyperplonk::verify(vk, publics, p2));
}

TEST(Parallel, SrsGenerationIdenticalAcrossThreadCounts)
{
    auto gen = [&](size_t threads) {
        ParallelismGuard guard(threads);
        std::mt19937_64 rng(604);
        return pcs::Srs::generate(5, rng);
    };
    pcs::Srs a = gen(1);
    pcs::Srs b = gen(8);
    ASSERT_EQ(a.lagrange.size(), b.lagrange.size());
    for (size_t k = 0; k < a.lagrange.size(); ++k) {
        ASSERT_EQ(a.lagrange[k].size(), b.lagrange[k].size());
        for (size_t i = 0; i < a.lagrange[k].size(); ++i) {
            EXPECT_EQ(a.lagrange[k][i], b.lagrange[k][i]);
        }
    }
}

}  // namespace
