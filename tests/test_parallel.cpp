/**
 * @file
 * Parallel-kernel tests: serial and parallel runs must be bit-identical
 * (field arithmetic is exact), and the modmul-counter migration must
 * keep instrumentation totals intact under threading.
 */
#include <gtest/gtest.h>

#include <random>

#include "ff/parallel.hpp"
#include "hyperplonk/prover.hpp"

namespace {

using namespace zkspeed;
using ff::Fr;
using ff::ParallelismGuard;

TEST(Parallel, ParallelForCoversRangeExactlyOnce)
{
    std::vector<std::atomic<int>> hits(10000);
    ff::parallel_for(hits.size(), [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) ++hits[i];
    }, 16);
    for (size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1) << i;
    }
}

TEST(Parallel, CounterMigrationPreservesTotals)
{
    std::mt19937_64 rng(601);
    std::vector<Fr> xs(5000);
    for (auto &x : xs) x = Fr::random(rng);
    auto run = [&](size_t threads) {
        ParallelismGuard guard(threads);
        ff::ModmulScope scope;
        std::vector<Fr> out(xs.size());
        ff::parallel_for(xs.size(), [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i) out[i] = xs[i] * xs[i];
        }, 64);
        return scope.fr_delta();
    };
    EXPECT_EQ(run(1), xs.size());
    EXPECT_EQ(run(4), xs.size()) << "worker muls must migrate back";
}

TEST(Parallel, MsmIdenticalAcrossThreadCounts)
{
    std::mt19937_64 rng(602);
    const size_t n = 6000;  // above the parallel threshold
    std::vector<curve::G1Affine> pts(n);
    std::vector<Fr> scalars(n);
    for (size_t i = 0; i < n; ++i) {
        pts[i] = curve::g1_generator()
                     .mul(Fr::from_uint(i * 7 + 1))
                     .to_affine();
        scalars[i] = Fr::random(rng);
    }
    curve::G1 serial, parallel;
    {
        ParallelismGuard guard(1);
        serial = curve::msm(pts, scalars);
    }
    {
        ParallelismGuard guard(8);
        parallel = curve::msm(pts, scalars);
    }
    EXPECT_EQ(serial, parallel);
}

TEST(Parallel, ProofsIdenticalAcrossThreadCounts)
{
    std::mt19937_64 rng(603);
    auto [index, wit] = hyperplonk::random_circuit(6, rng);
    auto srs = std::make_shared<pcs::Srs>(pcs::Srs::generate(6, rng));
    auto [pk, vk] = hyperplonk::keygen(std::move(index), srs);

    hyperplonk::Proof p1, p2;
    {
        ParallelismGuard guard(1);
        p1 = hyperplonk::prove(pk, wit);
    }
    {
        ParallelismGuard guard(8);
        p2 = hyperplonk::prove(pk, wit);
    }
    // Bit-identical transcripts: every message matches.
    EXPECT_EQ(p1.evals.flatten(), p2.evals.flatten());
    EXPECT_EQ(p1.gprime_value, p2.gprime_value);
    ASSERT_EQ(p1.zerocheck.round_evals.size(),
              p2.zerocheck.round_evals.size());
    for (size_t i = 0; i < p1.zerocheck.round_evals.size(); ++i) {
        EXPECT_EQ(p1.zerocheck.round_evals[i],
                  p2.zerocheck.round_evals[i]);
    }
    auto publics = wit.public_inputs(pk.index);
    EXPECT_TRUE(hyperplonk::verify(vk, publics, p2));
}

TEST(Parallel, ConcurrentCallersShareThePersistentPool)
{
    // Multiple caller threads with per-thread worker budgets must all
    // complete on the shared WorkerPool (PR 8), with each caller's
    // modmul counters exact: worker-side muls migrate to the caller
    // that enqueued the chunk, never to a bystander.
    constexpr size_t kCallers = 4;
    constexpr size_t kPerCaller = 20000;
    std::vector<uint64_t> deltas(kCallers, 0);
    std::vector<int> ok(kCallers, 0);
    std::vector<std::thread> callers;
    for (size_t c = 0; c < kCallers; ++c) {
        callers.emplace_back([&, c] {
            ff::WorkerBudgetScope budget(3);
            std::mt19937_64 rng(700 + c);
            std::vector<Fr> xs(kPerCaller);
            for (auto &x : xs) x = Fr::random(rng);
            ff::ModmulScope scope;
            std::vector<Fr> out(xs.size());
            ff::parallel_for(xs.size(), [&](size_t b, size_t e) {
                for (size_t i = b; i < e; ++i) out[i] = xs[i] * xs[i];
            }, 64);
            deltas[c] = scope.fr_delta();
            bool all = true;
            for (size_t i = 0; i < xs.size(); ++i) {
                all = all && out[i] == xs[i] * xs[i];
            }
            ok[c] = all ? 1 : 2;
        });
    }
    for (auto &t : callers) t.join();
    for (size_t c = 0; c < kCallers; ++c) {
        EXPECT_EQ(ok[c], 1) << "caller " << c << " results";
        // The delta is read before the verification pass, so each
        // caller observed exactly its own kPerCaller squarings;
        // migration must not leak muls between concurrent callers.
        EXPECT_EQ(deltas[c], kPerCaller) << "caller " << c;
    }
}

TEST(Parallel, PoolReusesWorkersAcrossCalls)
{
    // The pool must not spawn fresh threads per call (the seed library
    // did): after a burst of parallel_for calls at the same budget, the
    // worker count stays bounded by that budget's needs.
    ParallelismGuard guard(4);
    std::vector<Fr> xs(50000, Fr::one());
    for (int rep = 0; rep < 20; ++rep) {
        std::vector<Fr> out(xs.size());
        ff::parallel_for(xs.size(), [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i) out[i] = xs[i] + xs[i];
        }, 64);
    }
    // 4-way calls need at most 3 pool workers (the caller runs one
    // chunk stream itself); concurrent-caller tests may have grown the
    // pool further, but 20 bursts must not add 20x workers.
    EXPECT_LE(ff::WorkerPool::instance().worker_count(), size_t(16));
}

TEST(Parallel, SrsGenerationIdenticalAcrossThreadCounts)
{
    auto gen = [&](size_t threads) {
        ParallelismGuard guard(threads);
        std::mt19937_64 rng(604);
        return pcs::Srs::generate(5, rng);
    };
    pcs::Srs a = gen(1);
    pcs::Srs b = gen(8);
    ASSERT_EQ(a.lagrange.size(), b.lagrange.size());
    for (size_t k = 0; k < a.lagrange.size(); ++k) {
        ASSERT_EQ(a.lagrange[k].size(), b.lagrange[k].size());
        for (size_t i = 0; i < a.lagrange[k].size(); ++i) {
            EXPECT_EQ(a.lagrange[k][i], b.lagrange[k][i]);
        }
    }
}

}  // namespace
