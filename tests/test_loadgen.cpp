/**
 * @file
 * Load-generator and snapshot-delta suite (suite #24): the windowed
 * delta engine (counter deltas under concurrent recording, interval
 * percentiles against exact in-window order statistics, counter-reset
 * clamping after a registry reset), the SloEvaluator verdict and
 * error-budget-burn math, the plan parser's strict rule-map validation
 * (every recognised field exercised, unknown keys rejected by name),
 * the deterministic schedule builder, and a small end-to-end capacity
 * run through scenarios::run_capacity with both a generous SLO (must
 * pass, knee at the last window) and an impossible one (must breach).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <random>
#include <set>
#include <thread>

#include "loadgen/loadgen.hpp"
#include "obs/window.hpp"
#include "scenarios/harness.hpp"
#include "scenarios/registry.hpp"
#include "scenarios/seed.hpp"

namespace {

using namespace zkspeed;
using loadgen::Arrival;
using loadgen::MixEntry;
using loadgen::Plan;
using loadgen::PlanError;
using loadgen::Profile;
using obs::HistogramBuckets;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::SeriesSelector;
using obs::SloObjective;
using obs::SloVerdict;
using obs::WindowDelta;

const uint64_t kSeed = scenarios::test_seed(2027);

/** A synthetic histogram snapshot from raw samples. */
HistogramSnapshot
hist_of(const std::vector<double> &samples)
{
    HistogramSnapshot h;
    std::map<size_t, uint64_t> buckets;
    for (double v : samples) {
        h.count++;
        h.sum += v;
        h.min = h.count == 1 ? v : std::min(h.min, v);
        h.max = h.count == 1 ? v : std::max(h.max, v);
        buckets[HistogramBuckets::index_for(v)]++;
    }
    for (const auto &[idx, count] : buckets) {
        h.buckets.push_back({idx, HistogramBuckets::upper_bound(idx),
                             count});
    }
    return h;
}

/** Exact order statistic matching HistogramSnapshot::quantile's rank. */
double
exact_quantile(std::vector<double> samples, double q)
{
    std::sort(samples.begin(), samples.end());
    size_t rank = size_t(std::ceil(q * double(samples.size())));
    rank = std::clamp<size_t>(rank, 1, samples.size());
    return samples[rank - 1];
}

// ---------------------------------------------------------------------------
// Snapshot-delta math.
// ---------------------------------------------------------------------------

TEST(WindowDeltaMath, CounterDeltaAndResetClamp)
{
    bool reset = false;
    EXPECT_EQ(obs::counter_delta(10, 4, &reset), 6u);
    EXPECT_FALSE(reset);
    EXPECT_EQ(obs::counter_delta(7, 7, &reset), 0u);
    EXPECT_FALSE(reset);
    // Backwards: the series restarted; the delta is everything recorded
    // since the restart, never a negative wrap.
    EXPECT_EQ(obs::counter_delta(3, 9, &reset), 3u);
    EXPECT_TRUE(reset);
}

TEST(WindowDeltaMath, CounterDeltasUnderConcurrentRecording)
{
    // Windows cut while writer threads hammer the counter: every
    // snapshot is a consistent merge, so the window deltas are
    // non-negative and sum exactly to the grand total.
    MetricsRegistry reg;
    auto id = reg.counter("t_concurrent_total", {{"k", "v"}});
    constexpr size_t kThreads = 4, kIncrements = 20000;
    std::atomic<bool> go{false};
    std::vector<std::thread> writers;
    for (size_t t = 0; t < kThreads; ++t) {
        writers.emplace_back([&] {
            while (!go.load()) std::this_thread::yield();
            for (size_t i = 0; i < kIncrements; ++i) reg.add(id);
        });
    }
    go.store(true);
    std::vector<obs::Snapshot> snaps;
    snaps.push_back(reg.snapshot());
    for (int w = 0; w < 8; ++w) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        snaps.push_back(reg.snapshot());
    }
    for (auto &th : writers) th.join();
    snaps.push_back(reg.snapshot());

    uint64_t summed = snaps.front().metrics[id.index].counter;
    for (size_t i = 1; i < snaps.size(); ++i) {
        auto d = WindowDelta::between(snaps[i], snaps[i - 1], 0.001);
        EXPECT_EQ(d.counter_resets, 0u);
        summed += d.find("t_concurrent_total", {{"k", "v"}})->counter;
    }
    EXPECT_EQ(summed, kThreads * kIncrements);
}

TEST(WindowDeltaMath, IntervalPercentilesWithinDocumentedBound)
{
    // Pre-window traffic has a very different latency distribution from
    // the in-window samples; the interval quantiles must track the
    // exact in-window order statistics, not the cumulative mixture.
    MetricsRegistry reg;
    auto id = reg.histogram("t_latency_ms");
    std::mt19937_64 rng(kSeed);
    for (int i = 0; i < 4000; ++i) {  // baseline: fast ~1ms population
        reg.observe(id, 0.5 + double(rng() % 1000) / 1000.0);
    }
    auto before = reg.snapshot();

    std::vector<double> window_samples;  // in-window: slow, long-tailed
    for (int i = 0; i < 3000; ++i) {
        double v = 20.0 * std::exp(double(rng() % 2000) / 1000.0);
        window_samples.push_back(v);
        reg.observe(id, v);
    }
    auto after = reg.snapshot();

    bool reset = false;
    auto d = obs::histogram_delta(after.metrics[id.index].hist,
                                  before.metrics[id.index].hist, &reset);
    EXPECT_FALSE(reset);
    ASSERT_EQ(d.count, window_samples.size());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        double exact = exact_quantile(window_samples, q);
        double est = d.quantile(q);
        EXPECT_NEAR(est, exact,
                    exact * HistogramBuckets::kMaxRelativeError * 1.0001)
            << "q=" << q;
    }
    // Interval extrema: the window dominated both cumulative extrema
    // here, so they are exact.
    EXPECT_DOUBLE_EQ(
        d.max, *std::max_element(window_samples.begin(),
                                 window_samples.end()));
}

TEST(WindowDeltaMath, HistogramDeltaMinMaxBoundedByEdgeBuckets)
{
    // The cumulative min/max did NOT move in-window, so exact extrema
    // are unknowable from two snapshots; the delta must bound them by
    // its edge buckets instead of leaking the stale cumulative values.
    auto before = hist_of({0.001, 1.0, 2.0, 1000.0});
    auto after = hist_of({0.001, 1.0, 1.0, 2.0, 2.0, 2.0, 1000.0});
    bool reset = false;
    auto d = obs::histogram_delta(after, before, &reset);
    EXPECT_FALSE(reset);
    EXPECT_EQ(d.count, 3u);
    EXPECT_LE(d.min, 1.0);
    EXPECT_GT(d.min, 0.001);  // tighter than the stale cumulative min
    EXPECT_GE(d.max, 2.0);
    EXPECT_LT(d.max, 1000.0);
    // And the interval quantiles stay inside the documented bound.
    EXPECT_NEAR(d.quantile(0.99), 2.0,
                2.0 * HistogramBuckets::kMaxRelativeError * 1.0001);
}

TEST(WindowDeltaMath, RegistryResetIsClampedNotNegative)
{
    // A MetricsRegistry::reset() between the two snapshots (the
    // new-process / wiped-shard case): cumulative values go backwards,
    // deltas clamp to everything-since-the-reset and the window flags
    // how many series restarted.
    MetricsRegistry reg;
    auto c = reg.counter("t_jobs_total");
    auto h = reg.histogram("t_ms");
    reg.add(c, 100);
    for (int i = 0; i < 50; ++i) reg.observe(h, 5.0);
    auto before = reg.snapshot();

    reg.reset();
    reg.add(c, 7);
    for (int i = 0; i < 3; ++i) reg.observe(h, 9.0);
    auto after = reg.snapshot();

    auto d = WindowDelta::between(after, before, 1.0);
    EXPECT_EQ(d.counter_resets, 2u);
    EXPECT_EQ(d.find("t_jobs_total")->counter, 7u);
    EXPECT_EQ(d.find("t_ms")->hist.count, 3u);
    EXPECT_DOUBLE_EQ(d.rate("t_jobs_total"), 7.0);
}

TEST(WindowDeltaMath, NewSeriesMidWindowDeltasAgainstZero)
{
    MetricsRegistry reg;
    auto a = reg.counter("t_first_total");
    reg.add(a, 5);
    auto before = reg.snapshot();
    auto b = reg.counter("t_second_total");  // registered mid-window
    reg.add(a, 2);
    reg.add(b, 11);
    auto after = reg.snapshot();

    auto d = WindowDelta::between(after, before, 1.0);
    EXPECT_EQ(d.counter_resets, 0u);
    EXPECT_EQ(d.find("t_first_total")->counter, 2u);
    EXPECT_EQ(d.find("t_second_total")->counter, 11u);
}

TEST(WindowDeltaMath, SelectorMergesAcrossLabelSubsets)
{
    MetricsRegistry reg;
    auto h1 = reg.histogram("t_lat_ms", {{"class", "prove"},
                                         {"status", "ok"}});
    auto h2 = reg.histogram("t_lat_ms", {{"class", "verify"},
                                         {"status", "ok"}});
    auto h3 = reg.histogram("t_lat_ms", {{"class", "prove"},
                                         {"status", "failed"}});
    auto before = reg.snapshot();
    reg.observe(h1, 1.0);
    reg.observe(h1, 2.0);
    reg.observe(h2, 3.0);
    reg.observe(h3, 100.0);
    auto after = reg.snapshot();
    auto d = WindowDelta::between(after, before, 1.0);

    SeriesSelector ok{"t_lat_ms", {{"status", "ok"}}};
    EXPECT_EQ(d.total(ok), 3u);  // both classes, not the failed series
    auto merged = d.merged_histogram(ok);
    EXPECT_EQ(merged.count, 3u);
    EXPECT_DOUBLE_EQ(merged.min, 1.0);
    EXPECT_DOUBLE_EQ(merged.max, 3.0);
    SeriesSelector all{"t_lat_ms", {}};
    EXPECT_EQ(d.total(all), 4u);
}

// ---------------------------------------------------------------------------
// SLO evaluation.
// ---------------------------------------------------------------------------

TEST(SloEvaluation, QuantileVerdictAndBudgetBurn)
{
    MetricsRegistry reg;
    auto h = reg.histogram("t_lat_ms", {{"status", "ok"}});
    auto before = reg.snapshot();
    // 100 samples: 97 fast (~10ms), 3 slow (~1000ms). p99 > 100ms, and
    // the fraction over 100ms is 3% = 3x the 1% budget of a p99 SLO.
    for (int i = 0; i < 97; ++i) reg.observe(h, 10.0);
    for (int i = 0; i < 3; ++i) reg.observe(h, 1000.0);
    auto after = reg.snapshot();
    auto d = WindowDelta::between(after, before, 1.0);

    SloObjective fail_obj;
    fail_obj.name = "p99-tight";
    fail_obj.series = {"t_lat_ms", {{"status", "ok"}}};
    fail_obj.q = 0.99;
    fail_obj.threshold = 100.0;
    SloObjective pass_obj = fail_obj;
    pass_obj.name = "p99-loose";
    pass_obj.threshold = 2000.0;

    obs::SloEvaluator ev({fail_obj, pass_obj});
    auto verdicts = ev.evaluate(d);
    ASSERT_EQ(verdicts.size(), 2u);
    EXPECT_FALSE(verdicts[0].pass);
    EXPECT_EQ(verdicts[0].samples, 100u);
    EXPECT_NEAR(verdicts[0].budget_burn, 3.0, 1e-9);
    EXPECT_TRUE(verdicts[1].pass);
    EXPECT_NEAR(verdicts[1].budget_burn, 0.0, 1e-9);
    EXPECT_FALSE(obs::SloEvaluator::all_pass(verdicts));

    // An idle window passes vacuously with zero burn.
    auto idle = WindowDelta::between(after, after, 1.0);
    auto idle_verdicts = ev.evaluate(idle);
    EXPECT_TRUE(obs::SloEvaluator::all_pass(idle_verdicts));
    EXPECT_EQ(idle_verdicts[0].samples, 0u);
}

TEST(SloEvaluation, ErrorRatioVerdictAndBurn)
{
    MetricsRegistry reg;
    auto total = reg.counter("t_offered_total");
    auto errors = reg.counter("t_shed_total");
    auto before = reg.snapshot();
    reg.add(total, 200);
    reg.add(errors, 10);  // 5% observed
    auto after = reg.snapshot();
    auto d = WindowDelta::between(after, before, 2.0);

    SloObjective o;
    o.name = "shed";
    o.kind = SloObjective::Kind::error_ratio;
    o.series = {"t_offered_total", {}};
    o.errors = {"t_shed_total", {}};
    o.threshold = 0.01;
    auto verdicts = obs::SloEvaluator({o}).evaluate(d);
    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_FALSE(verdicts[0].pass);
    EXPECT_NEAR(verdicts[0].value, 0.05, 1e-12);
    EXPECT_NEAR(verdicts[0].budget_burn, 5.0, 1e-9);

    o.threshold = 0.10;
    auto ok = obs::SloEvaluator({o}).evaluate(d);
    EXPECT_TRUE(ok[0].pass);
    EXPECT_NEAR(ok[0].budget_burn, 0.5, 1e-9);
}

// ---------------------------------------------------------------------------
// Plan parsing: strict rule-map validation.
// ---------------------------------------------------------------------------

/** One plan exercising EVERY recognised key of every directive. */
const char *kFullPlan =
    "# capacity plan, full schema\n"
    "mix family=rescue-chain weight=3 log_size=5 seed=11\n"
    "mix family=range-bank weight=1 log_size=4 seed=23  # trailing\n"
    "profile kind=ramp qps=4 qps0=2 qps1=24 steps=6\n"
    "run windows=10 window_ms=250 warmup_windows=2 seed=77 "
    "verify_fraction=0.25\n"
    "slo name=p99 kind=quantile series=zkspeed_job_latency_ms "
    "labels=status:ok,class:prove q=0.99 threshold_ms=250\n"
    "slo name=shed kind=error_ratio total=zkspeed_loadgen_offered_total "
    "total_labels=service:svc0 errors=zkspeed_loadgen_shed_total "
    "errors_labels=service:svc0 threshold=0.01\n";

TEST(PlanParser, FullSchemaRoundTrip)
{
    Plan p = loadgen::parse_plan(kFullPlan);
    ASSERT_EQ(p.mix.size(), 2u);
    EXPECT_EQ(p.mix[0].family, "rescue-chain");
    EXPECT_DOUBLE_EQ(p.mix[0].weight, 3.0);
    EXPECT_EQ(p.mix[0].log_size, 5u);
    EXPECT_EQ(p.mix[0].seed, 11u);
    EXPECT_EQ(p.profile.kind, Profile::Kind::ramp);
    EXPECT_DOUBLE_EQ(p.profile.qps, 4.0);
    EXPECT_DOUBLE_EQ(p.profile.qps0, 2.0);
    EXPECT_DOUBLE_EQ(p.profile.qps1, 24.0);
    EXPECT_EQ(p.profile.steps, 6u);
    EXPECT_EQ(p.windows, 10u);
    EXPECT_DOUBLE_EQ(p.window_ms, 250.0);
    EXPECT_EQ(p.warmup_windows, 2u);
    EXPECT_EQ(p.seed, 77u);
    EXPECT_DOUBLE_EQ(p.verify_fraction, 0.25);
    ASSERT_EQ(p.objectives.size(), 2u);
    EXPECT_EQ(p.objectives[0].kind, SloObjective::Kind::quantile);
    EXPECT_EQ(p.objectives[0].series.name, "zkspeed_job_latency_ms");
    // Labels sorted: class before status (series identity order).
    ASSERT_EQ(p.objectives[0].series.labels.size(), 2u);
    EXPECT_EQ(p.objectives[0].series.labels[0].first, "class");
    EXPECT_DOUBLE_EQ(p.objectives[0].threshold, 250.0);
    EXPECT_EQ(p.objectives[1].kind, SloObjective::Kind::error_ratio);
    EXPECT_EQ(p.objectives[1].errors.name, "zkspeed_loadgen_shed_total");
    EXPECT_DOUBLE_EQ(p.objectives[1].threshold, 0.01);
}

TEST(PlanParser, SchemaIsFullyExercisedByTheRoundTripPlan)
{
    // Guard against schema drift: every directive and every recognised
    // key must appear in kFullPlan, so FullSchemaRoundTrip really does
    // cover the whole rule map (Snippet-1-style exhaustiveness).
    const std::string text = kFullPlan;
    for (const auto &[directive, keys] : loadgen::plan_schema()) {
        EXPECT_NE(text.find("\n" + directive + " "), std::string::npos)
            << "directive '" << directive << "' not exercised";
        for (const auto &key : keys) {
            EXPECT_NE(text.find(key + "="), std::string::npos)
                << "key '" << key << "' of directive '" << directive
                << "' not exercised";
        }
    }
}

TEST(PlanParser, RejectsUnknownAndMalformedByName)
{
    auto expect_error = [](const char *text, const char *needle) {
        try {
            loadgen::parse_plan(text);
            FAIL() << "accepted: " << text;
        } catch (const PlanError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << "error '" << e.what() << "' does not name '" << needle
                << "'";
        }
    };
    expect_error("mixx family=rollup\n", "unknown directive 'mixx'");
    expect_error("mix family=rollup wieght=2\n", "unknown key 'wieght'");
    expect_error("profile kind=warp\n", "unknown profile kind 'warp'");
    expect_error("run windows=soon\n", "wants an integer");
    expect_error("mix family=rollup weight=fat\n", "wants a number");
    expect_error("mix weight=1\n", "missing required key 'family'");
    expect_error("slo name=x kind=quantile series=s threshold_ms=1 "
                 "labels=nocolon\n",
                 "wants k:v");
    expect_error("mix family=a family=b\n", "duplicate key 'family'");
    expect_error("run windows=0\n", "windows must be >= 1");
    expect_error("run windows=2 warmup_windows=2\n",
                 "at least one measured window");
    expect_error("slo name=x kind=sometimes series=s threshold_ms=1\n",
                 "unknown slo kind 'sometimes'");
}

// ---------------------------------------------------------------------------
// Deterministic scheduling.
// ---------------------------------------------------------------------------

TEST(Schedule, SameSeedSameScheduleAndSeedChangesIt)
{
    Plan p;
    p.windows = 6;
    p.window_ms = 100;
    p.seed = kSeed;
    p.verify_fraction = 0.3;
    p.profile.kind = Profile::Kind::constant;
    p.profile.qps = 200;
    const std::vector<double> weights = {3, 1};

    auto a = loadgen::build_schedule(p, weights);
    auto b = loadgen::build_schedule(p, weights);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GT(a.size(), 50u);
    bool any_verify = false, every_pool[2] = {false, false};
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].t_ms, b[i].t_ms);
        EXPECT_EQ(a[i].pool, b[i].pool);
        EXPECT_EQ(a[i].verify, b[i].verify);
        EXPECT_GE(a[i].t_ms, 0.0);
        EXPECT_LT(a[i].t_ms, p.windows * p.window_ms);
        ASSERT_LT(a[i].pool, 2u);
        every_pool[a[i].pool] = true;
        any_verify = any_verify || a[i].verify;
        if (i > 0) EXPECT_GE(a[i].t_ms, a[i - 1].t_ms);
    }
    EXPECT_TRUE(any_verify);
    EXPECT_TRUE(every_pool[0]);
    EXPECT_TRUE(every_pool[1]);

    p.seed = kSeed + 1;
    auto c = loadgen::build_schedule(p, weights);
    bool differs = c.size() != a.size();
    for (size_t i = 0; !differs && i < a.size(); ++i) {
        differs = a[i].t_ms != c[i].t_ms;
    }
    EXPECT_TRUE(differs) << "seed does not influence the schedule";
}

TEST(Schedule, RampProfileIsMonotoneAndStepHasPlateaus)
{
    Plan p;
    p.windows = 8;
    p.profile.kind = Profile::Kind::ramp;
    p.profile.qps0 = 2;
    p.profile.qps1 = 30;
    double prev = -1;
    for (size_t w = 0; w < p.windows; ++w) {
        double q = p.profile.qps_for_window(w, p.windows);
        EXPECT_GT(q, prev) << "ramp not strictly increasing at " << w;
        prev = q;
    }
    EXPECT_DOUBLE_EQ(p.profile.qps_for_window(0, 8), 2.0);
    EXPECT_DOUBLE_EQ(p.profile.qps_for_window(7, 8), 30.0);

    Profile step;
    step.kind = Profile::Kind::step;
    step.qps0 = 10;
    step.qps1 = 40;
    step.steps = 4;
    std::set<double> levels;
    prev = -1;
    for (size_t w = 0; w < 8; ++w) {
        double q = step.qps_for_window(w, 8);
        EXPECT_GE(q, prev);
        prev = q;
        levels.insert(q);
    }
    EXPECT_EQ(levels.size(), 4u);
    EXPECT_DOUBLE_EQ(*levels.begin(), 10.0);
    EXPECT_DOUBLE_EQ(*levels.rbegin(), 40.0);

    // A ramp schedule offers more arrivals late than early.
    p.seed = kSeed;
    p.window_ms = 100;
    auto sched = loadgen::build_schedule(p, {1.0});
    size_t early = 0, late = 0;
    for (const auto &ar : sched) {
        if (ar.t_ms < 2 * p.window_ms) ++early;
        if (ar.t_ms >= 6 * p.window_ms) ++late;
    }
    EXPECT_GT(late, early);
}

// ---------------------------------------------------------------------------
// End to end through scenarios::run_capacity.
// ---------------------------------------------------------------------------

loadgen::Plan
small_capacity_plan()
{
    Plan p;
    p.mix.push_back(MixEntry{"rescue-chain", 3.0, 4, kSeed});
    p.mix.push_back(MixEntry{"range-bank", 1.0, 4, kSeed + 7});
    p.profile.kind = Profile::Kind::constant;
    p.profile.qps = 6;
    p.windows = 3;
    p.window_ms = 400;
    p.seed = kSeed;
    p.verify_fraction = 0.25;
    return p;
}

TEST(CapacityRun, UnderCapacityPassesAndFindsKneeAtLastWindow)
{
    scenarios::CapacityConfig cfg;
    cfg.plan = small_capacity_plan();
    SloObjective o;
    o.name = "p99-generous";
    o.series = {"zkspeed_job_latency_ms", {{"status", "ok"}}};
    o.q = 0.99;
    o.threshold = 60000.0;  // a gate nothing short of a hang can breach
    cfg.plan.objectives.push_back(o);
    cfg.frames_per_pool = 2;

    auto rep = scenarios::run_capacity(cfg);
    EXPECT_TRUE(rep.slo_ok);
    EXPECT_GT(rep.offered_total, 0u);
    EXPECT_GT(rep.completed_total, 0u);
    EXPECT_EQ(rep.errors_total, 0u);
    ASSERT_EQ(rep.windows.size(), cfg.plan.windows);
    ASSERT_TRUE(rep.knee_found);
    // Under capacity with traffic in every window, the knee is the
    // last window: nothing breached.
    EXPECT_EQ(rep.knee_window, cfg.plan.windows - 1);

    // The machine-readable report carries the whole window series.
    std::string json = rep.render_json();
    for (const char *key :
         {"\"tool\":\"zkspeed_loadgen\"", "\"window_series\":",
          "\"knee\":", "\"slo_ok\":true", "\"qps_offered\":",
          "\"objectives\":", "\"budget_burn\":"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

TEST(CapacityRun, ImpossibleSloBreachesAndReproducesAcrossRuns)
{
    scenarios::CapacityConfig cfg;
    cfg.plan = small_capacity_plan();
    cfg.plan.windows = 2;
    SloObjective o;
    o.name = "p99-impossible";
    o.series = {"zkspeed_job_latency_ms", {{"status", "ok"}}};
    o.q = 0.99;
    o.threshold = 1e-6;  // no real proof finishes in a nanosecond
    cfg.plan.objectives.push_back(o);
    cfg.frames_per_pool = 1;

    auto first = scenarios::run_capacity(cfg);
    EXPECT_FALSE(first.slo_ok);
    EXPECT_FALSE(first.knee_found);
    bool any_burn = false;
    for (const auto &w : first.windows) {
        for (const auto &v : w.verdicts) {
            if (!v.pass) {
                EXPECT_GT(v.budget_burn, 1.0);
                any_burn = true;
            }
        }
    }
    EXPECT_TRUE(any_burn);

    // Same seed, same plan: the offered traffic is identical (the
    // schedule is fully derived from the seed; completions may differ).
    auto second = scenarios::run_capacity(cfg);
    EXPECT_EQ(first.offered_total, second.offered_total);
    ASSERT_EQ(first.windows.size(), second.windows.size());
}

TEST(CapacityRun, RejectsUnknownAndAdversarialMixes)
{
    scenarios::CapacityConfig cfg;
    cfg.plan = small_capacity_plan();
    cfg.plan.mix[0].family = "no-such-family";
    EXPECT_THROW(scenarios::run_capacity(cfg), PlanError);

    cfg.plan = small_capacity_plan();
    bool found_adversarial = false;
    for (const auto &f : scenarios::Registry::global().families()) {
        if (f.adversarial()) {
            cfg.plan.mix[0].family = f.name;
            found_adversarial = true;
            break;
        }
    }
    ASSERT_TRUE(found_adversarial);
    EXPECT_THROW(scenarios::run_capacity(cfg), PlanError);
}

}  // namespace
