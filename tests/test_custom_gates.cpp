/**
 * @file
 * Tests for the high-degree custom-gate extension (q_H w1^5, the
 * Jellyfish direction of the paper's Section 8): circuit semantics,
 * end-to-end proving with the degree-7 ZeroCheck and 23-claim batch
 * opening, serialization, and cross-flag rejection.
 */
#include <gtest/gtest.h>

#include <random>

#include "hyperplonk/gadgets.hpp"
#include "hyperplonk/serialize.hpp"

namespace {

using namespace zkspeed::hyperplonk;
namespace g = zkspeed::hyperplonk::gadgets;
using zkspeed::ff::Fr;
using zkspeed::pcs::Srs;

TEST(CustomGates, Pow5GateSemantics)
{
    CircuitBuilder cb;
    Var x = cb.add_variable(Fr::from_uint(3));
    Var y = cb.add_pow5_gate(x);
    EXPECT_EQ(cb.value(y), Fr::from_uint(243));  // 3^5
    auto [index, wit] = cb.build();
    EXPECT_TRUE(index.custom_gates);
    EXPECT_TRUE(wit.satisfies_gates(index));
    EXPECT_TRUE(wit.satisfies_wiring(index));
    // A wrong output value must violate the gate.
    Witness bad = wit;
    bad.w[2][0] += Fr::one();  // pow5 gate is the first (no publics)
    // Locate the custom gate row robustly.
    bool violated = !bad.satisfies_gates(index);
    EXPECT_TRUE(violated);
}

TEST(CustomGates, PlainCircuitsStayBaseProtocol)
{
    CircuitBuilder cb;
    Var x = cb.add_variable(Fr::from_uint(2));
    cb.add_multiplication(x, x);
    auto [index, wit] = cb.build();
    EXPECT_FALSE(index.custom_gates);
    (void)wit;
}

TEST(CustomGates, EndToEndProveVerify)
{
    // x public, prove knowledge of y with y^5 + x == 7779.
    CircuitBuilder cb;
    Var x = cb.add_public_input(Fr::from_uint(4));
    Var y = cb.add_variable(Fr::from_uint(6));
    Var y5 = cb.add_pow5_gate(y);  // 7776
    Var s = cb.add_addition(y5, x);
    cb.assert_constant(s, Fr::from_uint(7780));
    auto [index, wit] = cb.build(3);
    ASSERT_TRUE(index.custom_gates);
    ASSERT_TRUE(wit.satisfies_gates(index));

    std::mt19937_64 rng(401);
    auto srs = std::make_shared<Srs>(Srs::generate(index.num_vars, rng));
    auto [pk, vk] = keygen(std::move(index), srs);
    EXPECT_TRUE(vk.custom_gates);
    Proof proof = prove(pk, wit);
    // Degree-7 ZeroCheck: 8 evaluations per round.
    EXPECT_EQ(proof.zerocheck.degree, 7u);
    EXPECT_EQ(proof.evals.count(), 23u);
    auto publics = wit.public_inputs(pk.index);
    EXPECT_TRUE(verify(vk, publics, proof, PcsCheckMode::ideal));
    EXPECT_TRUE(verify(vk, publics, proof, PcsCheckMode::pairing));

    // Tampering with the q_H evaluation must be rejected.
    Proof bad = proof;
    bad.evals.qh_at_gate += Fr::one();
    EXPECT_FALSE(verify(vk, publics, bad));
    // Flag mismatch must be rejected.
    bad = proof;
    bad.evals.custom = false;
    EXPECT_FALSE(verify(vk, publics, bad));
}

TEST(CustomGates, RescueWithCustomGatesSavesGates)
{
    Fr a = Fr::from_uint(10), b = Fr::from_uint(20);
    Fr expect = g::rescue_hash2_value(a, b);

    auto build = [&](const g::RescueParams &params) {
        CircuitBuilder cb;
        Var va = cb.add_variable(a);
        Var vb = cb.add_variable(b);
        Var h = g::rescue_hash2(cb, va, vb, params);
        EXPECT_EQ(cb.value(h), expect);
        return cb.num_gates();
    };
    size_t plain = build(g::RescueParams::standard());
    size_t custom = build(g::RescueParams::with_custom_gates());
    // Each forward S-box shrinks from 3 gates to 1 (3 lanes x rounds).
    EXPECT_EQ(plain - custom,
              size_t(2 * 3 * g::RescueParams::standard().rounds));
}

TEST(CustomGates, RescueCustomCircuitProves)
{
    Fr a = Fr::from_uint(5), b = Fr::from_uint(9);
    Fr h = g::rescue_hash2_value(a, b);
    CircuitBuilder cb;
    Var pub = cb.add_public_input(h);
    Var va = cb.add_variable(a);
    Var vb = cb.add_variable(b);
    Var out =
        g::rescue_hash2(cb, va, vb, g::RescueParams::with_custom_gates());
    cb.assert_equal(out, pub);
    auto [index, wit] = cb.build();
    ASSERT_TRUE(index.custom_gates);
    ASSERT_TRUE(wit.satisfies_gates(index));

    std::mt19937_64 rng(402);
    auto srs = std::make_shared<Srs>(Srs::generate(index.num_vars, rng));
    auto [pk, vk] = keygen(std::move(index), srs);
    Proof proof = prove(pk, wit);
    EXPECT_TRUE(verify(vk, wit.public_inputs(pk.index), proof));
}

TEST(CustomGates, SerializationRoundTrip)
{
    CircuitBuilder cb;
    Var x = cb.add_public_input(Fr::from_uint(2));
    Var y = cb.add_pow5_gate(x);
    (void)y;
    auto [index, wit] = cb.build(3);
    std::mt19937_64 rng(403);
    auto srs = std::make_shared<Srs>(Srs::generate(index.num_vars, rng));
    auto [pk, vk] = keygen(std::move(index), srs);
    Proof proof = prove(pk, wit);
    auto publics = wit.public_inputs(pk.index);
    ASSERT_TRUE(verify(vk, publics, proof));

    auto bytes = serde::serialize_proof(proof);
    auto back = serde::deserialize_proof(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->evals.custom);
    EXPECT_TRUE(verify(vk, publics, *back));

    auto vk_bytes = serde::serialize_verifying_key(vk);
    auto vk2 = serde::deserialize_verifying_key(vk_bytes);
    ASSERT_TRUE(vk2.has_value());
    EXPECT_TRUE(vk2->custom_gates);
    EXPECT_TRUE(verify(*vk2, publics, proof, PcsCheckMode::pairing));
}

}  // namespace
