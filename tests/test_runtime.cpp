/**
 * @file
 * Batch proving service tests: wire strictness, deterministic proof
 * bytes under concurrency, key-cache hit/eviction behaviour, queue
 * backpressure and worker survival across malformed requests.
 */
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "hyperplonk/serialize.hpp"
#include "runtime/queue.hpp"
#include "runtime/service.hpp"
#include "sim/replay.hpp"

namespace {

using namespace zkspeed;
using namespace zkspeed::runtime;
using ff::Fr;

/** A valid request around a random satisfying circuit. */
JobRequest
make_request(uint64_t id, size_t mu, uint64_t circuit_seed)
{
    std::mt19937_64 rng(circuit_seed);
    auto [index, wit] = hyperplonk::random_circuit(mu, rng);
    JobRequest req;
    req.request_id = id;
    req.circuit = std::move(index);
    req.witness = std::move(wit);
    return req;
}

TEST(Wire, RequestRoundTrip)
{
    JobRequest req = make_request(42, 4, 1001);
    auto bytes = wire::encode_request(req);
    auto back = wire::decode_request(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->request_id, 42u);
    EXPECT_EQ(back->circuit.num_vars, req.circuit.num_vars);
    EXPECT_EQ(back->circuit.q_m, req.circuit.q_m);
    EXPECT_EQ(back->circuit.sigma[1], req.circuit.sigma[1]);
    EXPECT_EQ(back->witness.w[2], req.witness.w[2]);
    // Canonical: re-encoding reproduces the bytes.
    EXPECT_EQ(wire::encode_request(*back), bytes);
}

TEST(Wire, RejectsMalformedRequests)
{
    JobRequest req = make_request(7, 4, 1002);
    auto bytes = wire::encode_request(req);
    // Truncations.
    for (size_t len : {0ul, 8ul, 40ul, bytes.size() / 2, bytes.size() - 1}) {
        auto cut = std::span<const uint8_t>(bytes.data(), len);
        EXPECT_FALSE(wire::decode_request(cut).has_value()) << len;
    }
    // Trailing garbage.
    auto longer = bytes;
    longer.push_back(0);
    EXPECT_FALSE(wire::decode_request(longer).has_value());
    // Bad magic.
    auto bad = bytes;
    bad[0] ^= 0xff;
    EXPECT_FALSE(wire::decode_request(bad).has_value());
    // A bare header claiming a huge circuit must be rejected by the
    // size precheck (no table allocation for a 34-byte frame).
    std::vector<uint8_t> header(bytes.begin(), bytes.begin() + 34);
    header[16] = 20;  // num_vars = kMaxRequestVars
    EXPECT_FALSE(wire::decode_request(header).has_value());
    // Non-canonical field element in the first selector table.
    auto nc = bytes;
    // magic,id,mu,pub,custom,lookup
    size_t table_off = 8 + 8 + 8 + 8 + 1 + 1;
    for (size_t i = 0; i < Fr::kByteSize; ++i) nc[table_off + i] = 0xff;
    EXPECT_FALSE(wire::decode_request(nc).has_value());
}

TEST(Wire, RejectsOutOfRangeSigma)
{
    JobRequest req = make_request(8, 4, 1003);
    // A sigma entry beyond the 3 * 2^mu wire slots would index out of
    // bounds in Witness::satisfies_wiring; the decoder must refuse it.
    req.circuit.sigma[0][0] = Fr::from_uint(3 * 16 + 1);
    auto bytes = wire::encode_request(req);
    EXPECT_FALSE(wire::decode_request(bytes).has_value());
}

TEST(Wire, ResponseRoundTrip)
{
    JobResponse resp;
    resp.request_id = 9;
    resp.status = JobStatus::ok;
    resp.proof = {1, 2, 3, 4};
    resp.metrics.prove_ms = 12.5;
    resp.metrics.total_ms = 13.25;
    resp.metrics.modmul_fr = 1234;
    resp.metrics.key_cache_hit = true;
    resp.metrics.num_vars = 4;
    auto bytes = wire::encode_response(resp);
    auto back = wire::decode_response(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->request_id, 9u);
    EXPECT_EQ(back->status, JobStatus::ok);
    EXPECT_EQ(back->proof, resp.proof);
    EXPECT_DOUBLE_EQ(back->metrics.prove_ms, 12.5);
    EXPECT_TRUE(back->metrics.key_cache_hit);
    // Truncation rejected.
    auto cut = std::span<const uint8_t>(bytes.data(), bytes.size() - 3);
    EXPECT_FALSE(wire::decode_response(cut).has_value());
}

TEST(Wire, FrameStream)
{
    std::vector<uint8_t> stream;
    wire::append_frame(stream, std::vector<uint8_t>{1, 2, 3});
    wire::append_frame(stream, std::vector<uint8_t>{});
    wire::append_frame(stream, std::vector<uint8_t>{9});
    auto frames = wire::split_frames(stream);
    ASSERT_TRUE(frames.has_value());
    ASSERT_EQ(frames->size(), 3u);
    EXPECT_EQ((*frames)[0], (std::vector<uint8_t>{1, 2, 3}));
    EXPECT_TRUE((*frames)[1].empty());
    // Truncated stream rejected.
    stream.pop_back();
    EXPECT_FALSE(wire::split_frames(stream).has_value());
}

TEST(Queue, BackpressureAndClose)
{
    BoundedQueue<int> q(2);
    int a = 1, b = 2, c = 3;
    EXPECT_TRUE(q.try_push(a));
    EXPECT_TRUE(q.try_push(b));
    // Full: non-blocking push refuses (backpressure is visible).
    EXPECT_FALSE(q.try_push(c));
    EXPECT_EQ(q.size(), 2u);
    // A blocked push() completes once a consumer drains one slot.
    std::thread producer([&] { EXPECT_TRUE(q.push(3)); });
    EXPECT_EQ(q.pop().value(), 1);
    producer.join();
    // Close: remaining items drain, then pops report exhaustion.
    q.close();
    EXPECT_FALSE(q.push(4));
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(Service, BackpressureAtTheServiceBoundary)
{
    ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.queue_capacity = 2;
    cfg.start_paused = true;  // nobody drains: admission is deterministic
    ProofService service(cfg);
    auto bytes = wire::encode_request(make_request(1, 4, 2001));
    auto f1 = service.try_submit(bytes);
    auto f2 = service.try_submit(bytes);
    auto f3 = service.try_submit(bytes);
    EXPECT_TRUE(f1.has_value());
    EXPECT_TRUE(f2.has_value());
    EXPECT_FALSE(f3.has_value()) << "full queue must refuse admission";
    service.start();
    EXPECT_TRUE(f1->get().ok());
    EXPECT_TRUE(f2->get().ok());
}

TEST(Service, DeterministicProofBytesSerialVsFourWorkers)
{
    const size_t kJobs = 8;
    auto bytes = wire::encode_request(make_request(5, 4, 2002));

    auto run = [&](size_t workers) {
        ServiceConfig cfg;
        cfg.num_workers = workers;
        cfg.total_parallelism = workers;  // 1 kernel thread per worker
        ProofService service(cfg);
        std::vector<std::future<JobResponse>> futures;
        for (size_t i = 0; i < kJobs; ++i) {
            futures.push_back(service.submit(bytes));
        }
        std::vector<std::vector<uint8_t>> proofs;
        for (auto &f : futures) {
            auto resp = f.get();
            EXPECT_TRUE(resp.ok()) << resp.error;
            proofs.push_back(std::move(resp.proof));
        }
        return proofs;
    };

    auto serial = run(1);
    auto parallel = run(4);
    ASSERT_EQ(serial.size(), kJobs);
    ASSERT_EQ(parallel.size(), kJobs);
    for (size_t i = 0; i < kJobs; ++i) {
        // Same job -> bit-identical canonical proof bytes, regardless
        // of scheduling.
        EXPECT_EQ(serial[i], serial[0]);
        EXPECT_EQ(parallel[i], serial[0]) << "job " << i;
    }

    // The wire bytes decode to a verifying proof under the cached vk.
    auto proof = hyperplonk::serde::deserialize_proof(serial[0]);
    ASSERT_TRUE(proof.has_value());
    auto req = wire::decode_request(bytes);
    ASSERT_TRUE(req.has_value());
    KeyCache cache(4);
    auto [keys, hit] = cache.get_or_create(req->circuit);
    EXPECT_FALSE(hit);
    auto publics = req->witness.public_inputs(req->circuit);
    EXPECT_TRUE(hyperplonk::verify(*keys.vk, publics, *proof));
}

TEST(Service, KeyCacheHitsAcrossRepeatedCircuits)
{
    ServiceConfig cfg;
    cfg.num_workers = 2;
    cfg.total_parallelism = 2;
    ProofService service(cfg);
    auto circuit_a = wire::encode_request(make_request(1, 4, 3001));
    auto circuit_b = wire::encode_request(make_request(2, 4, 3002));
    std::vector<std::future<JobResponse>> futures;
    for (int round = 0; round < 3; ++round) {
        futures.push_back(service.submit(circuit_a));
        futures.push_back(service.submit(circuit_b));
    }
    size_t hits = 0;
    for (auto &f : futures) {
        auto resp = f.get();
        ASSERT_TRUE(resp.ok()) << resp.error;
        if (resp.metrics.key_cache_hit) ++hits;
    }
    auto stats = service.cache_stats();
    EXPECT_EQ(stats.hits + stats.misses, 6u);
    EXPECT_EQ(stats.hits, hits);
    // Two distinct circuits: at least one keygen each; with any reuse
    // the rest hit. Concurrent first submissions may both miss (the
    // build is deduped on the entry), so allow 2..4 hits.
    EXPECT_GE(stats.hits, 2u);
    EXPECT_LE(stats.misses, 4u);
}

TEST(Service, KeyCacheEvictsLeastRecentlyUsed)
{
    KeyCache cache(/*capacity=*/1);
    std::mt19937_64 rng(4001);
    auto [ca, wa] = hyperplonk::random_circuit(4, rng);
    auto [cb, wb] = hyperplonk::random_circuit(4, rng);
    EXPECT_FALSE(cache.get_or_create(ca).second);
    EXPECT_TRUE(cache.get_or_create(ca).second);
    EXPECT_FALSE(cache.get_or_create(cb).second);  // evicts ca
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_FALSE(cache.get_or_create(ca).second);  // rebuilt
    auto stats = cache.stats();
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 3u);
}

TEST(Service, MalformedRequestsGetErrorResponsesAndWorkerSurvives)
{
    ServiceConfig cfg;
    cfg.num_workers = 1;  // the same worker must field every job
    ProofService service(cfg);

    // Garbage, truncation, and a tampered-but-plausible frame.
    auto valid = wire::encode_request(make_request(1, 4, 5001));
    std::vector<std::vector<uint8_t>> bad;
    bad.push_back({0xde, 0xad, 0xbe, 0xef});
    bad.push_back({});
    bad.push_back(std::vector<uint8_t>(valid.begin(),
                                       valid.begin() + valid.size() / 2));
    auto non_canonical = valid;
    for (size_t i = 0; i < Fr::kByteSize; ++i) {
        non_canonical[34 + i] = 0xff;  // first selector-table element
    }
    bad.push_back(non_canonical);

    for (auto &frame : bad) {
        auto resp = service.submit(frame).get();
        EXPECT_EQ(resp.status, JobStatus::malformed_request);
        EXPECT_TRUE(resp.proof.empty());
        EXPECT_FALSE(resp.error.empty());
    }

    // An unsatisfiable witness is rejected without proving: perturb an
    // output wire at a gate whose q_O selector is active, which breaks
    // Eq. 1 there (padding slots are unconstrained, so pick carefully).
    auto unsat = make_request(2, 4, 5002);
    bool broke = false;
    for (size_t i = 0; i < unsat.circuit.q_o.size() && !broke; ++i) {
        if (!unsat.circuit.q_o[i].is_zero()) {
            unsat.witness.w[2][i] += Fr::one();
            broke = true;
        }
    }
    ASSERT_TRUE(broke);
    ASSERT_FALSE(unsat.witness.satisfies_gates(unsat.circuit));
    auto unsat_resp = service.submit(wire::encode_request(unsat)).get();
    EXPECT_EQ(unsat_resp.status, JobStatus::unsatisfiable);

    // The worker that saw every bad frame still proves fine.
    auto resp = service.submit(valid).get();
    EXPECT_TRUE(resp.ok()) << resp.error;
    EXPECT_FALSE(resp.proof.empty());

    auto metrics = service.metrics();
    EXPECT_EQ(metrics.jobs_ok(), 1u);
    EXPECT_EQ(metrics.jobs_rejected(), bad.size() + 1);
    EXPECT_EQ(metrics.jobs_failed(), 0u);
}

TEST(Service, TraceReplaysThroughChipModel)
{
    ServiceConfig cfg;
    cfg.num_workers = 1;
    ProofService service(cfg);
    auto bytes = wire::encode_request(make_request(1, 4, 6001));
    for (int i = 0; i < 3; ++i) service.submit(bytes).get();
    auto trace = service.trace();
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0].num_vars, 4u);
    EXPECT_GT(trace[0].total_scalars, 0u);
    EXPECT_GT(trace[0].prove_ms, 0.0);

    auto report = sim::replay_trace(trace, sim::DesignConfig::paper_default());
    ASSERT_EQ(report.jobs.size(), 3u);
    EXPECT_GT(report.chip_total_ms, 0.0);
    EXPECT_GT(report.sw_total_ms, 0.0);
    EXPECT_GT(report.chip_jobs_per_s, 0.0);
    // The accelerator must not be slower than our software prover.
    EXPECT_GT(report.speedup, 1.0);
}

TEST(Service, ShutdownCancelsQueuedJobs)
{
    ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.queue_capacity = 8;
    cfg.start_paused = true;
    auto bytes = wire::encode_request(make_request(1, 4, 7001));
    std::vector<std::future<JobResponse>> futures;
    {
        ProofService service(cfg);
        futures.push_back(service.submit(bytes));
        futures.push_back(service.submit(bytes));
        service.shutdown();  // never started: jobs must be cancelled
    }
    for (auto &f : futures) {
        auto resp = f.get();
        EXPECT_EQ(resp.status, JobStatus::cancelled);
    }
}

}  // namespace
