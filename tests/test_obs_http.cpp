/**
 * @file
 * Live telemetry plane tests (DESIGN.md §14): the embedded scrape
 * server (/metrics, /metrics.json, /healthz, /readyz, /trace,
 * /attrib), the live-scrape == shutdown-exposition series-set
 * invariant, concurrent scrapes while two provers run, readiness
 * flipping under queue saturation, the obs::set_enabled(false) kill
 * switch covering HTTP + log ring, structured-log ring/rate-limit
 * semantics and JSONL rendering, and the flight recorder's
 * worker-exception path (forced via ZKSPEED_FAULT_INJECT).
 */
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "hyperplonk/serialize.hpp"
#include "obs/build_info.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/http.hpp"
#include "obs/jsonv.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/service.hpp"

namespace {

using namespace zkspeed;

// ---------------------------------------------------------------------------
// Minimal JSON validator (same contract as test_obs.cpp's): true iff
// the whole string is exactly one JSON value a real parser accepts.
// ---------------------------------------------------------------------------

struct JsonCursor {
    const std::string &s;
    size_t i = 0;

    void
    ws()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t' ||
                                s[i] == '\n' || s[i] == '\r')) {
            ++i;
        }
    }
    bool
    lit(const char *t)
    {
        size_t n = std::strlen(t);
        if (s.compare(i, n, t) != 0) return false;
        i += n;
        return true;
    }
    bool
    string()
    {
        if (i >= s.size() || s[i] != '"') return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size()) return false;
                if (s[i] == 'u') {
                    for (int k = 0; k < 4; ++k) {
                        if (++i >= s.size() || !std::isxdigit(
                                                   (unsigned char)s[i])) {
                            return false;
                        }
                    }
                }
            }
            ++i;
        }
        if (i >= s.size()) return false;
        ++i;  // closing quote
        return true;
    }
    bool
    number()
    {
        size_t start = i;
        if (i < s.size() && s[i] == '-') ++i;
        while (i < s.size() && std::isdigit((unsigned char)s[i])) ++i;
        if (i < s.size() && s[i] == '.') {
            ++i;
            while (i < s.size() && std::isdigit((unsigned char)s[i])) ++i;
        }
        if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
            ++i;
            if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
            while (i < s.size() && std::isdigit((unsigned char)s[i])) ++i;
        }
        return i > start;
    }
    bool
    value()
    {
        ws();
        if (i >= s.size()) return false;
        char c = s[i];
        if (c == '"') return string();
        if (c == '{') {
            ++i;
            ws();
            if (i < s.size() && s[i] == '}') {
                ++i;
                return true;
            }
            for (;;) {
                ws();
                if (!string()) return false;
                ws();
                if (i >= s.size() || s[i] != ':') return false;
                ++i;
                if (!value()) return false;
                ws();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                break;
            }
            if (i >= s.size() || s[i] != '}') return false;
            ++i;
            return true;
        }
        if (c == '[') {
            ++i;
            ws();
            if (i < s.size() && s[i] == ']') {
                ++i;
                return true;
            }
            for (;;) {
                if (!value()) return false;
                ws();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                break;
            }
            if (i >= s.size() || s[i] != ']') return false;
            ++i;
            return true;
        }
        if (c == 't') return lit("true");
        if (c == 'f') return lit("false");
        if (c == 'n') return lit("null");
        return number();
    }
};

bool
valid_json(const std::string &s)
{
    JsonCursor c{s};
    if (!c.value()) return false;
    c.ws();
    return c.i == s.size();
}

/** Strict line check for the Prometheus text format (v0.0.4 subset),
 * same as test_obs.cpp's — here applied to live scrape bodies. */
void
check_prometheus_lines(const std::string &text)
{
    size_t pos = 0;
    int series_lines = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        ASSERT_NE(eol, std::string::npos) << "unterminated last line";
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty()) continue;
        if (line.rfind("# HELP ", 0) == 0 ||
            line.rfind("# TYPE ", 0) == 0) {
            continue;
        }
        ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
        size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        std::string value = line.substr(sp + 1);
        char *end = nullptr;
        std::strtod(value.c_str(), &end);
        EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
        std::string series = line.substr(0, sp);
        size_t brace = series.find('{');
        std::string name = series.substr(0, brace);
        ASSERT_FALSE(name.empty());
        for (char ch : name) {
            EXPECT_TRUE(std::isalnum((unsigned char)ch) || ch == '_' ||
                        ch == ':')
                << "bad metric name char in: " << line;
        }
        if (brace != std::string::npos) {
            EXPECT_EQ(series.back(), '}') << line;
        }
        ++series_lines;
    }
    EXPECT_GT(series_lines, 0);
}

/** Series identities (`name{labels}`, value stripped) of an
 * exposition — the live-vs-shutdown comparison key. The `le` label is
 * dropped: histogram buckets render sparsely (only populated ones), so
 * observations arriving between the two expositions legitimately add
 * bucket *lines*; the series itself must still be present in both. */
std::set<std::string>
series_identities(const std::string &text)
{
    std::set<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        size_t sp = line.rfind(' ');
        if (sp == std::string::npos) continue;
        std::string id = line.substr(0, sp);
        size_t le = id.find("le=\"");
        size_t end = le == std::string::npos ? std::string::npos
                                             : id.find('"', le + 4);
        if (end != std::string::npos) {
            // Swallow a trailing comma (le mid-label-set) or a leading
            // one (le last) so the remainder is well-formed.
            if (end + 1 < id.size() && id[end + 1] == ',') {
                id.erase(le, end + 2 - le);
            } else {
                size_t from = le > 0 && id[le - 1] == ',' ? le - 1 : le;
                id.erase(from, end + 1 - from);
            }
        }
        out.insert(id);
    }
    return out;
}

// ---------------------------------------------------------------------------
// A tiny loopback HTTP client (blocking, Connection: close).
// ---------------------------------------------------------------------------

struct HttpReply {
    bool ok = false;  ///< transport-level success (connect/read)
    int code = 0;
    std::string body;
};

HttpReply
http_request(uint16_t port, const std::string &method,
             const std::string &path)
{
    HttpReply reply;
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return reply;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        close(fd);
        return reply;
    }
    std::string req = method + " " + path +
                      " HTTP/1.1\r\nHost: localhost\r\n"
                      "Connection: close\r\n\r\n";
    size_t off = 0;
    while (off < req.size()) {
        ssize_t n = send(fd, req.data() + off, req.size() - off, 0);
        if (n <= 0) {
            close(fd);
            return reply;
        }
        off += size_t(n);
    }
    std::string raw;
    char buf[4096];
    for (;;) {
        ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        raw.append(buf, size_t(n));
    }
    close(fd);
    if (raw.rfind("HTTP/1.1 ", 0) != 0 || raw.size() < 12) return reply;
    reply.code = std::atoi(raw.c_str() + 9);
    size_t split = raw.find("\r\n\r\n");
    if (split == std::string::npos) return reply;
    reply.body = raw.substr(split + 4);
    reply.ok = true;
    return reply;
}

HttpReply
http_get(uint16_t port, const std::string &path)
{
    return http_request(port, "GET", path);
}

runtime::JobRequest
make_request(uint64_t id, size_t mu, uint64_t circuit_seed)
{
    std::mt19937_64 rng(circuit_seed);
    auto [index, wit] = hyperplonk::random_circuit(mu, rng);
    runtime::JobRequest req;
    req.request_id = id;
    req.circuit = std::move(index);
    req.witness = std::move(wit);
    return req;
}

// ---------------------------------------------------------------------------
// Endpoint coverage + the live == shutdown series-set invariant.
// ---------------------------------------------------------------------------

TEST(ObsHttp, ServesAllEndpointsOnEphemeralPort)
{
    runtime::ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.total_parallelism = 1;
    runtime::ProofService service(cfg);
    EXPECT_TRUE(service.submit(make_request(1, 5, 42)).get().ok());

    auto server = obs::HttpServer::start();
    ASSERT_NE(server, nullptr);
    ASSERT_GT(server->port(), 0);

    auto health = http_get(server->port(), "/healthz");
    ASSERT_TRUE(health.ok);
    EXPECT_EQ(health.code, 200);
    EXPECT_EQ(health.body, "ok\n");

    // No readiness provider registered in this test: default ready.
    obs::set_readiness_provider(nullptr);
    auto ready = http_get(server->port(), "/readyz");
    ASSERT_TRUE(ready.ok);
    EXPECT_EQ(ready.code, 200);

    auto metrics_json = http_get(server->port(), "/metrics.json");
    ASSERT_TRUE(metrics_json.ok);
    EXPECT_EQ(metrics_json.code, 200);
    EXPECT_TRUE(valid_json(metrics_json.body));

    auto trace = http_get(server->port(), "/trace");
    ASSERT_TRUE(trace.ok);
    EXPECT_EQ(trace.code, 200);
    EXPECT_TRUE(valid_json(trace.body));

    EXPECT_EQ(http_get(server->port(), "/nope").code, 404);
    EXPECT_EQ(http_request(server->port(), "POST", "/metrics").code, 405);

    // /attrib is 404 until a report exists, 200 JSON afterwards.
    obs::set_latest_attrib_json("");
    EXPECT_EQ(http_get(server->port(), "/attrib").code, 404);
    obs::set_latest_attrib_json("{\"schema\":\"test\"}");
    auto attrib = http_get(server->port(), "/attrib");
    EXPECT_EQ(attrib.code, 200);
    EXPECT_EQ(attrib.body, "{\"schema\":\"test\"}");
    obs::set_latest_attrib_json("");

    // Query strings are stripped before dispatch.
    EXPECT_EQ(http_get(server->port(), "/healthz?x=1").code, 200);

    // The live scrape and the shutdown exposition must expose the same
    // series set — a scrape must never see a partial registry.
    auto live = http_get(server->port(), "/metrics");
    ASSERT_TRUE(live.ok);
    EXPECT_EQ(live.code, 200);
    check_prometheus_lines(live.body);
    server->stop();
    service.shutdown();
    std::string final_text = obs::render_prometheus_text(
        obs::MetricsRegistry::global().snapshot());
    EXPECT_EQ(series_identities(live.body),
              series_identities(final_text));

    // The request counter covers every endpoint label it saw.
    auto snap = obs::MetricsRegistry::global().snapshot();
    const auto *req_metrics = snap.find("zkspeed_http_requests_total",
                                        {{"endpoint", "/metrics"}});
    ASSERT_NE(req_metrics, nullptr);
    EXPECT_GE(req_metrics->counter, 1u);
    const auto *req_other =
        snap.find("zkspeed_http_requests_total", {{"endpoint", "other"}});
    ASSERT_NE(req_other, nullptr);
    EXPECT_GE(req_other->counter, 1u);
    const auto *port_gauge = snap.find("zkspeed_http_port", {});
    ASSERT_NE(port_gauge, nullptr);
    EXPECT_EQ(port_gauge->gauge, 0.0) << "stop() must clear the gauge";
}

// ---------------------------------------------------------------------------
// Concurrent scrapes while two provers run.
// ---------------------------------------------------------------------------

TEST(ObsHttp, ConcurrentScrapeWhileProving)
{
    auto server = obs::HttpServer::start();
    ASSERT_NE(server, nullptr);

    runtime::ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.total_parallelism = 1;
    runtime::ProofService svc_a(cfg), svc_b(cfg);

    std::atomic<bool> proving{true};
    std::thread prover_a([&] {
        for (int i = 0; i < 4; ++i) {
            svc_a.submit(make_request(100 + i, 5, 7 + i)).get();
        }
        proving.store(false, std::memory_order_release);
    });
    std::thread prover_b([&] {
        for (int i = 0; i < 4; ++i) {
            svc_b.submit(make_request(200 + i, 5, 19 + i)).get();
        }
    });

    constexpr int kScrapers = 4;
    std::atomic<int> bad_transport{0}, bad_code{0}, bad_body{0};
    std::vector<std::thread> scrapers;
    for (int s = 0; s < kScrapers; ++s) {
        scrapers.emplace_back([&, s] {
            int iter = 0;
            do {
                const char *path = (iter + s) % 2 == 0 ? "/metrics"
                                                       : "/trace";
                auto reply = http_get(server->port(), path);
                if (!reply.ok) {
                    ++bad_transport;
                } else if (reply.code != 200) {
                    ++bad_code;
                } else if (std::strcmp(path, "/trace") == 0
                               ? !valid_json(reply.body)
                               : reply.body.find("# TYPE") ==
                                     std::string::npos) {
                    ++bad_body;
                }
                ++iter;
            } while (iter < 8 ||
                     proving.load(std::memory_order_acquire));
        });
    }
    for (auto &t : scrapers) t.join();
    prover_a.join();
    prover_b.join();
    EXPECT_EQ(bad_transport.load(), 0);
    EXPECT_EQ(bad_code.load(), 0);
    EXPECT_EQ(bad_body.load(), 0);

    // One full strict validation of the final live body.
    auto final_scrape = http_get(server->port(), "/metrics");
    ASSERT_TRUE(final_scrape.ok);
    check_prometheus_lines(final_scrape.body);
}

// ---------------------------------------------------------------------------
// Readiness: saturation flips /readyz, draining flips it back.
// ---------------------------------------------------------------------------

TEST(ObsHttp, ReadyzFlipsUnderQueueSaturation)
{
    runtime::ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.total_parallelism = 1;
    cfg.queue_capacity = 3;
    runtime::ProofService service(cfg);
    obs::set_readiness_provider([&service] {
        auto r = service.readiness();
        return obs::Readiness{r.ready, r.detail};
    });
    auto server = obs::HttpServer::start();
    ASSERT_NE(server, nullptr);

    EXPECT_EQ(http_get(server->port(), "/readyz").code, 200);

    // Park the lone worker on a big proof, then fill the queue.
    std::vector<std::future<runtime::JobResponse>> futures;
    futures.push_back(service.submit(make_request(1, 9, 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    uint64_t id = 2;
    for (;;) {
        auto f = service.try_submit(
            runtime::wire::encode_request(make_request(id, 4, id)));
        if (!f.has_value()) break;
        futures.push_back(std::move(*f));
        ++id;
        ASSERT_LT(id, 64u) << "queue never saturated";
    }
    auto r = service.readiness();
    EXPECT_FALSE(r.ready);
    EXPECT_TRUE(r.workers_up);
    EXPECT_GE(r.queue_depth, r.queue_capacity);
    EXPECT_NE(r.detail.find("queue saturated"), std::string::npos)
        << r.detail;
    auto saturated = http_get(server->port(), "/readyz");
    ASSERT_TRUE(saturated.ok);
    EXPECT_EQ(saturated.code, 503);
    EXPECT_NE(saturated.body.find("not ready"), std::string::npos);

    for (auto &f : futures) EXPECT_TRUE(f.get().ok());
    auto drained = service.readiness();
    EXPECT_TRUE(drained.ready) << drained.detail;
    EXPECT_EQ(http_get(server->port(), "/readyz").code, 200);

    obs::set_readiness_provider(nullptr);
    server->stop();
    // A shut-down service reports not ready (workers gone).
    service.shutdown();
    EXPECT_FALSE(service.readiness().ready);
}

// ---------------------------------------------------------------------------
// Kill switch: HTTP 503 + inert log ring, both reversible.
// ---------------------------------------------------------------------------

TEST(ObsHttp, KillSwitchDisablesServerAndLogRing)
{
    auto server = obs::HttpServer::start();
    ASSERT_NE(server, nullptr);
    ASSERT_EQ(http_get(server->port(), "/metrics").code, 200);

    auto &rec = obs::LogRecorder::global();
    size_t before = rec.size();

    obs::set_enabled(false);
    auto disabled = http_get(server->port(), "/metrics");
    ASSERT_TRUE(disabled.ok);
    EXPECT_EQ(disabled.code, 503);
    EXPECT_NE(disabled.body.find("disabled"), std::string::npos);
    EXPECT_EQ(http_get(server->port(), "/healthz").code, 503)
        << "the kill switch covers every endpoint";

    obs::log_event(obs::LogLevel::info, "t26", "ghost event");
    obs::logf(obs::LogLevel::debug, "t26", 0, "ghost %d", 1);
    EXPECT_EQ(rec.size(), before) << "disabled ring must not record";

    obs::set_enabled(true);
    EXPECT_EQ(http_get(server->port(), "/metrics").code, 200);
    obs::log_event(obs::LogLevel::info, "t26", "revived event");
    EXPECT_EQ(rec.size(), before + 1);
}

// ---------------------------------------------------------------------------
// Structured log ring: bound, rate limit, JSONL rendering.
// ---------------------------------------------------------------------------

TEST(ObsLog, RingBoundAndArrivalOrder)
{
    obs::LogRecorder rec(4);
    rec.set_rate_limit(0, 0);  // unlimited
    for (int i = 0; i < 6; ++i) {
        rec.record(obs::LogLevel::info, "t26",
                   "event " + std::to_string(i), uint64_t(i));
    }
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.dropped(), 2u);
    auto events = rec.events();
    ASSERT_EQ(events.size(), 4u);
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].message, "event " + std::to_string(i + 2));
        EXPECT_EQ(events[i].correlation_id, i + 2);
        EXPECT_GT(events[i].tid, 0u);
    }
    rec.clear();
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.dropped(), 0u);
}

TEST(ObsLog, RateLimitBoundsSustainedVolume)
{
    obs::LogRecorder rec(256);
    rec.set_rate_limit(1.0, 2.0);  // 1/s sustained, burst of 2
    for (int i = 0; i < 20; ++i) {
        rec.record(obs::LogLevel::info, "t26", "spam");
    }
    // The burst admits ~2 (plus at most a token of refill slack).
    EXPECT_LE(rec.size(), 3u);
    EXPECT_GE(rec.rate_limited(), 17u);
    // Other levels have their own bucket: an error still gets through.
    rec.record(obs::LogLevel::error, "t26", "the one that matters");
    bool found = false;
    for (const auto &e : rec.events()) {
        if (e.level == obs::LogLevel::error) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(ObsLog, JsonlRenderingEscapesAndParses)
{
    obs::LogRecorder rec(8);
    rec.set_rate_limit(0, 0);
    rec.record(obs::LogLevel::warn, "t26",
               "quote \" backslash \\ newline \n tab \t done", 77);
    rec.record(obs::LogLevel::error, "t26", "plain");
    std::string jsonl = rec.render_jsonl();
    size_t lines = 0, pos = 0;
    while (pos < jsonl.size()) {
        size_t eol = jsonl.find('\n', pos);
        ASSERT_NE(eol, std::string::npos);
        std::string line = jsonl.substr(pos, eol - pos);
        EXPECT_TRUE(valid_json(line)) << line;
        EXPECT_NE(line.find("\"component\":\"t26\""), std::string::npos);
        pos = eol + 1;
        ++lines;
    }
    EXPECT_EQ(lines, 2u);
    auto parsed = obs::jsonv::parse(
        obs::LogRecorder::render_event(rec.events()[0]));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("correlation_id")->as_u64(), 77u);
    EXPECT_EQ(parsed->find("level")->str, "warn");
}

// ---------------------------------------------------------------------------
// Flight recorder: the worker-exception path produces a schema-valid
// report (the signal path is exercised by the CI kill job).
// ---------------------------------------------------------------------------

TEST(ObsFlight, WorkerExceptionWritesSchemaValidReport)
{
    const char *path = "FLIGHT_test_worker_ex.json";
    std::remove(path);
    obs::flight::Options fopts;
    fopts.path = path;
    fopts.install_signal_handlers = false;  // don't fight gtest
    ASSERT_TRUE(obs::flight::install(fopts));
    ASSERT_TRUE(obs::flight::installed());

    setenv("ZKSPEED_FAULT_INJECT", "prove", 1);
    runtime::ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.total_parallelism = 1;
    runtime::ProofService service(cfg);
    auto resp = service.submit(make_request(31, 5, 3)).get();
    unsetenv("ZKSPEED_FAULT_INJECT");
    EXPECT_EQ(resp.status, runtime::JobStatus::internal_error);
    EXPECT_NE(resp.error.find("fault injection"), std::string::npos);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    ASSERT_FALSE(text.empty());
    EXPECT_TRUE(valid_json(text)) << text;
    auto doc = obs::jsonv::parse(text);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("schema")->str, "zkspeed-flight-v1");
    EXPECT_EQ(doc->find("reason")->str, "worker_exception");
    EXPECT_NE(doc->find("detail")->str.find("fault injection"),
              std::string::npos);
    EXPECT_TRUE(doc->find("signal")->is_number());
    const auto *build = doc->find("build");
    ASSERT_NE(build, nullptr);
    ASSERT_TRUE(build->is_object());
    EXPECT_FALSE(build->find("git")->str.empty());
    EXPECT_FALSE(build->find("compiler")->str.empty());
    const auto *log = doc->find("log");
    ASSERT_NE(log, nullptr);
    ASSERT_TRUE(log->find("events")->is_array());
    // The catch site logged the exception before snapshotting, so the
    // tail of the ring carries it.
    bool logged = false;
    for (const auto &ev : log->find("events")->items) {
        if (ev.find("message")->str.find("fault injection") !=
            std::string::npos) {
            logged = true;
        }
    }
    EXPECT_TRUE(logged);
    const auto *metrics = doc->find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_GT(metrics->find("series")->as_u64(), 0u);
    service.shutdown();
}

TEST(ObsFlight, SnapshotJsonIsValidAndBounded)
{
    std::string snap = obs::flight::snapshot_json("snapshot", "", 9999,
                                                  64, 32);
    EXPECT_TRUE(valid_json(snap)) << snap.substr(0, 400);
    EXPECT_NE(snap.find("\"signal\": 9999"), std::string::npos)
        << "the patchable placeholder must render verbatim";
    EXPECT_LT(snap.size(), 256u * 1024u);
}

// ---------------------------------------------------------------------------
// Build identity: every envelope embeds the same payload.
// ---------------------------------------------------------------------------

TEST(ObsBuildInfo, EnvelopeMatchesGaugeAndParses)
{
    const obs::BuildInfo &b = obs::build_info();
    EXPECT_FALSE(b.git.empty());
    EXPECT_FALSE(b.compiler.empty());
    EXPECT_FALSE(b.flags.empty());
    EXPECT_EQ(b.format, "v3");
    EXPECT_NE(b.features.find("http"), std::string::npos);
    EXPECT_NE(b.features.find("log"), std::string::npos);
    EXPECT_NE(b.features.find("flight"), std::string::npos);

    std::string compact = obs::build_info_json_text(-1);
    EXPECT_TRUE(valid_json(compact)) << compact;
    auto doc = obs::jsonv::parse(compact);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("git")->str, b.git);
    EXPECT_EQ(doc->find("compiler")->str, b.compiler);
    EXPECT_EQ(doc->find("flags")->str, b.flags);
    EXPECT_EQ(doc->find("format")->str, b.format);
    EXPECT_EQ(doc->find("features")->str, b.features);

    // The info gauge carries the same identity as labels.
    auto snap = obs::MetricsRegistry::global().snapshot();
    const obs::MetricSnapshot *info = nullptr;
    for (const auto &m : snap.metrics) {
        if (m.name == "zkspeed_build_info") info = &m;
    }
    ASSERT_NE(info, nullptr);
    auto label = [&](const char *key) -> std::string {
        for (const auto &[k, v] : info->labels) {
            if (k == key) return v;
        }
        return "";
    };
    EXPECT_EQ(label("git"), b.git);
    EXPECT_EQ(label("compiler"), b.compiler);
    EXPECT_EQ(label("format"), b.format);
}

}  // namespace
