/**
 * @file
 * Attribution-engine suite (suite #25): the measured/modeled join.
 *
 * Unit side: obs::attrib::build over hand-built synthetic spans and
 * ModeledJobs with known share ratios pins the drift-ratio math, the
 * parent-chain job resolution, the min_ts window and the
 * joined/modeled-only/measured-only accounting; the JSON round-trip
 * pins the "zkspeed-attrib-v1" schema bit-for-bit (strict parse
 * rejects unknown keys, wrong schema, truncation).
 *
 * Instrumentation side: cross-thread modmuls must fold into the
 * enclosing kernel span (ff::parallel_for migrates worker counters to
 * the caller, so a ProfileRegion's modmul args are identical serial
 * vs threaded); ZKSPEED_TRACE_RING sizes the global ring and the
 * capacity gauge tracks it; zkspeed_build_info is an info-style gauge.
 *
 * End-to-end: two honest scenarios through scenarios::Harness must
 * join every prover kernel span to a modeled cycle count (the PR's
 * acceptance line) and surface the drift series in both expositions.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "ff/counters.hpp"
#include "ff/fr.hpp"
#include "ff/parallel.hpp"
#include "hyperplonk/profile.hpp"
#include "obs/attrib.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenarios/harness.hpp"
#include "scenarios/registry.hpp"
#include "scenarios/seed.hpp"
#include "sim/tech.hpp"

namespace {

using namespace zkspeed;
using obs::SpanEvent;
using obs::attrib::ModeledJob;
using obs::attrib::Report;

/** Shorthand: one span in the synthetic ring dump. */
SpanEvent
span(uint64_t id, uint64_t parent, uint64_t corr, std::string name,
     std::string category, double ts_us, double dur_us,
     std::vector<std::pair<std::string, double>> args = {})
{
    SpanEvent ev;
    ev.span_id = id;
    ev.parent_id = parent;
    ev.correlation_id = corr;
    ev.ts_us = ts_us;
    ev.dur_us = dur_us;
    ev.name = std::move(name);
    ev.category = std::move(category);
    ev.args = std::move(args);
    return ev;
}

const obs::attrib::KernelRow *
find_row(const std::vector<obs::attrib::KernelRow> &rows,
         const std::string &name)
{
    for (const auto &r : rows) {
        if (r.kernel == name) return &r;
    }
    return nullptr;
}

/** The synthetic fixture both the math and the round-trip tests use:
 * one joined job (42), one modeled-only job (7), one measured-only
 * job (99), one span below the min_ts window, one non-prover span and
 * one unmapped measured kernel name. */
struct Synthetic {
    std::vector<SpanEvent> events;
    std::vector<ModeledJob> jobs;
    obs::attrib::Options opts;

    Synthetic()
    {
        // Job 42: service span carries the correlation id; the prover
        // spans resolve it through the parent chain (one is nested a
        // level deeper to exercise the multi-hop walk).
        events.push_back(
            span(1, 0, 42, "prove.prove", "service", 100, 5e6));
        events.push_back(span(2, 1, 0, "Witness MSMs", "prover", 200,
                              2e6,
                              {{"modmul_fr", 100},
                               {"modmul_fq", 300},
                               {"bytes_in", 1000},
                               {"bytes_out", 24}}));
        events.push_back(span(3, 1, 0, "ZeroCheck Rounds", "prover",
                              300, 1e6, {{"modmul_fr", 50}}));
        events.push_back(
            span(4, 3, 0, "Linear Combine", "prover", 400, 1e6));
        // Below the window: would double Witness MSMs if not dropped.
        events.push_back(span(5, 1, 0, "Witness MSMs", "prover", 10,
                              2e6, {{"modmul_fr", 999}}));
        // Wrong category: runtime spans never join.
        events.push_back(
            span(6, 1, 0, "Witness MSMs", "runtime", 500, 9e6));
        // Unmapped measured kernel: must be reported, not joined.
        events.push_back(
            span(7, 1, 0, "Mystery Kernel", "prover", 600, 1e6));
        // Job 99: prover span with no modeled counterpart.
        events.push_back(
            span(8, 0, 99, "prove.prove", "service", 700, 1e6));
        events.push_back(
            span(9, 8, 0, "Build MLE", "prover", 800, 1e6));
        // Orphan prover span: no correlation anywhere up the chain.
        events.push_back(
            span(10, 0, 0, "Build MLE", "prover", 900, 1e6));

        ModeledJob joined;
        joined.job_id = 42;
        joined.mu = 4;
        joined.sw_ms = 4000;
        joined.chip_ms = 0.004;
        joined.total_cycles = 4000;
        joined.kernel_cycles = {{"Witness MSMs", 1000},
                                {"ZeroCheck", 2000},
                                {"Other", 1000}};
        joined.step_cycles = {{"commit_witness", 1000},
                              {"gate_check", 3000}};
        jobs.push_back(std::move(joined));

        ModeledJob lonely;
        lonely.job_id = 7;
        lonely.mu = 3;
        lonely.kernel_cycles = {{"Witness MSMs", 500}};
        jobs.push_back(std::move(lonely));

        opts.min_ts_us = 50;
        opts.clock_ghz = 1.0;
    }
};

TEST(AttribJoin, DriftRatioMathOnSyntheticData)
{
    Synthetic fx;
    Report rep = obs::attrib::build(fx.events, fx.jobs, fx.opts);

    // Accounting: job 42 joins; job 7 is modeled-only; job 99 is
    // measured-only; 6 prover spans sit inside the window (the early
    // one is excluded, the orphan and the unmapped one still count as
    // seen), 3 of them join job 42.
    EXPECT_EQ(rep.jobs_joined, 1u);
    EXPECT_EQ(rep.jobs_modeled_only, 1u);
    EXPECT_EQ(rep.jobs_measured_only, 1u);
    EXPECT_EQ(rep.spans_seen, 6u);
    EXPECT_EQ(rep.spans_joined, 3u);
    ASSERT_EQ(rep.unmapped_kernels.size(), 1u);
    EXPECT_EQ(rep.unmapped_kernels[0], "Mystery Kernel");

    // Joined totals: 2s + 1s + 1s measured, 4000 modeled cycles. The
    // modeled-only job's 500 cycles must NOT leak into the shares.
    EXPECT_DOUBLE_EQ(rep.measured_total_seconds, 4.0);
    EXPECT_EQ(rep.modeled_total_cycles, 4000u);

    // Shares and drift: measured 1/2, 1/4, 1/4 against modeled 1/4,
    // 1/2, 1/4 ("Other" groups with the measured Linear Combine).
    ASSERT_EQ(rep.kernels.size(), 3u);
    EXPECT_EQ(rep.kernels[0].kernel, "ZeroCheck");  // 2000 cycles first
    const auto *msm = find_row(rep.kernels, "Witness MSMs");
    const auto *zc = find_row(rep.kernels, "ZeroCheck");
    const auto *lin = find_row(rep.kernels, "Linear Combine");
    ASSERT_NE(msm, nullptr);
    ASSERT_NE(zc, nullptr);
    ASSERT_NE(lin, nullptr);

    EXPECT_DOUBLE_EQ(msm->measured_seconds, 2.0);
    EXPECT_EQ(msm->measured_modmuls, 400u);
    EXPECT_EQ(msm->measured_bytes, 1024u);
    EXPECT_EQ(msm->calls, 1u);
    EXPECT_EQ(msm->modeled_cycles, 1000u);
    EXPECT_DOUBLE_EQ(msm->measured_share, 0.5);
    EXPECT_DOUBLE_EQ(msm->modeled_share, 0.25);
    EXPECT_DOUBLE_EQ(msm->drift_ratio, 2.0);
    EXPECT_DOUBLE_EQ(msm->modmuls_per_byte, 400.0 / 1024.0);
    // 1000 cycles at 1 GHz is 1 µs; the host took 2 s.
    EXPECT_DOUBLE_EQ(msm->implied_speedup, 2e6);

    EXPECT_DOUBLE_EQ(zc->drift_ratio, 0.5);
    EXPECT_EQ(zc->measured_modmuls, 50u);
    EXPECT_DOUBLE_EQ(lin->drift_ratio, 1.0);
    EXPECT_EQ(lin->measured_modmuls, 0u);
    EXPECT_DOUBLE_EQ(lin->modmuls_per_byte, 0.0);

    // Per-job drill-down mirrors the aggregate for the single job.
    ASSERT_EQ(rep.jobs.size(), 1u);
    EXPECT_EQ(rep.jobs[0].job_id, 42u);
    EXPECT_EQ(rep.jobs[0].mu, 4u);
    EXPECT_DOUBLE_EQ(rep.jobs[0].sw_ms, 4000.0);
    EXPECT_EQ(rep.jobs[0].kernels.size(), 3u);
}

TEST(AttribJoin, UnmappedModeledKernelsSurfaceAsModelRows)
{
    // A modeled kernel name outside the group table must keep its
    // cycles visible (prefixed "model:") instead of silently skewing
    // every other share.
    std::vector<SpanEvent> events;
    events.push_back(span(1, 0, 5, "prove.prove", "service", 10, 1e6));
    events.push_back(
        span(2, 1, 0, "Witness MSMs", "prover", 20, 1e6));
    ModeledJob job;
    job.job_id = 5;
    job.kernel_cycles = {{"Witness MSMs", 300}, {"Sorting Net", 100}};
    Report rep = obs::attrib::build(events, {job});

    const auto *odd = find_row(rep.kernels, "model:Sorting Net");
    ASSERT_NE(odd, nullptr);
    EXPECT_EQ(odd->modeled_cycles, 100u);
    EXPECT_DOUBLE_EQ(odd->measured_seconds, 0.0);
    EXPECT_DOUBLE_EQ(odd->modeled_share, 0.25);
    EXPECT_DOUBLE_EQ(odd->drift_ratio, 0.0);  // no measured twin
    EXPECT_EQ(rep.modeled_total_cycles, 400u);
}

TEST(AttribSchema, JsonRoundTripIsExactAndStrict)
{
    Synthetic fx;
    Report rep = obs::attrib::build(fx.events, fx.jobs, fx.opts);
    std::string text = obs::attrib::render_json(rep);
    EXPECT_NE(text.find("\"schema\": \"zkspeed-attrib-v1\""),
              std::string::npos);

    auto back = obs::attrib::parse_json(text);
    ASSERT_TRUE(back.has_value());
    EXPECT_DOUBLE_EQ(back->clock_ghz, rep.clock_ghz);
    EXPECT_DOUBLE_EQ(back->measured_total_seconds,
                     rep.measured_total_seconds);
    EXPECT_EQ(back->modeled_total_cycles, rep.modeled_total_cycles);
    EXPECT_EQ(back->jobs_joined, rep.jobs_joined);
    EXPECT_EQ(back->jobs_modeled_only, rep.jobs_modeled_only);
    EXPECT_EQ(back->jobs_measured_only, rep.jobs_measured_only);
    EXPECT_EQ(back->spans_seen, rep.spans_seen);
    EXPECT_EQ(back->spans_joined, rep.spans_joined);
    EXPECT_EQ(back->unmapped_kernels, rep.unmapped_kernels);
    ASSERT_EQ(back->kernels.size(), rep.kernels.size());
    for (size_t i = 0; i < rep.kernels.size(); ++i) {
        const auto &a = rep.kernels[i];
        const auto &b = back->kernels[i];
        EXPECT_EQ(b.kernel, a.kernel);
        EXPECT_DOUBLE_EQ(b.measured_seconds, a.measured_seconds);
        EXPECT_EQ(b.measured_modmuls, a.measured_modmuls);
        EXPECT_EQ(b.measured_bytes, a.measured_bytes);
        EXPECT_EQ(b.calls, a.calls);
        EXPECT_EQ(b.modeled_cycles, a.modeled_cycles);
        EXPECT_DOUBLE_EQ(b.measured_share, a.measured_share);
        EXPECT_DOUBLE_EQ(b.modeled_share, a.modeled_share);
        EXPECT_DOUBLE_EQ(b.drift_ratio, a.drift_ratio);
        EXPECT_DOUBLE_EQ(b.modmuls_per_byte, a.modmuls_per_byte);
        EXPECT_DOUBLE_EQ(b.implied_speedup, a.implied_speedup);
    }
    ASSERT_EQ(back->jobs.size(), rep.jobs.size());
    EXPECT_EQ(back->jobs[0].job_id, rep.jobs[0].job_id);
    EXPECT_EQ(back->jobs[0].mu, rep.jobs[0].mu);
    EXPECT_EQ(back->jobs[0].kernels.size(), rep.jobs[0].kernels.size());

    // A second render of the parsed report reproduces the document
    // bit-for-bit — nothing is lost or reordered in flight.
    EXPECT_EQ(obs::attrib::render_json(*back), text);

    // Strict parse: wrong schema, renamed (= unknown + missing) key,
    // and truncation must all be rejected.
    std::string bad = text;
    bad.replace(bad.find("zkspeed-attrib-v1"), 17, "zkspeed-attrib-v2");
    EXPECT_FALSE(obs::attrib::parse_json(bad).has_value());

    bad = text;
    bad.replace(bad.find("\"jobs_joined\""), 13, "\"jobs_joinedX\"");
    EXPECT_FALSE(obs::attrib::parse_json(bad).has_value());

    EXPECT_FALSE(
        obs::attrib::parse_json(text.substr(0, text.size() / 2))
            .has_value());
    EXPECT_FALSE(obs::attrib::parse_json("").has_value());
}

TEST(AttribExport, DriftGaugesLandInARegistry)
{
    Synthetic fx;
    Report rep = obs::attrib::build(fx.events, fx.jobs, fx.opts);

    obs::MetricsRegistry reg;
    obs::attrib::export_to_registry(rep, reg);
    obs::Snapshot snap = reg.snapshot();
    for (const auto &row : rep.kernels) {
        const auto *drift = snap.find("zkspeed_model_drift_ratio",
                                      {{"kernel", row.kernel}});
        ASSERT_NE(drift, nullptr) << row.kernel;
        EXPECT_EQ(drift->kind, obs::MetricKind::gauge);
        EXPECT_DOUBLE_EQ(drift->gauge, row.drift_ratio);
        const auto *mpb = snap.find("zkspeed_kernel_modmuls_per_byte",
                                    {{"kernel", row.kernel}});
        ASSERT_NE(mpb, nullptr) << row.kernel;
        EXPECT_DOUBLE_EQ(mpb->gauge, row.modmuls_per_byte);
    }
}

TEST(AttribGroups, GroupTableCoversTheProverVocabulary)
{
    // known_measured_kernels() is the contract between the prover's
    // ProfileRegion names and the group table; a new region must be
    // added here AND to kGroups or the e2e join below reports it
    // unmapped.
    const std::vector<std::string> expected = {
        "Batch Evaluations", "Build MLE",        "Construct N & D",
        "Fraction MLE",      "Linear Combine",   "LookupCheck Rounds",
        "OpenCheck Rounds",  "PermCheck Rounds", "Poly Open MSMs",
        "Product MLE",       "Wire Identity MSMs", "Witness MSMs",
        "ZeroCheck Rounds",
    };
    EXPECT_EQ(obs::attrib::known_measured_kernels(), expected);
}

// Satellite: cross-thread modmuls must fold into the enclosing kernel
// span. ff::parallel_for migrates worker-thread counters back to the
// caller, so the per-span modmul_fr attribute is identical whether the
// region body ran serial or on 4 threads.
TEST(AttribSpans, CrossThreadModmulsFoldIntoEnclosingSpan)
{
    constexpr size_t kN = 1 << 15;
    std::vector<ff::Fr> vals(kN, ff::Fr::from_uint(3));

    auto run_region = [&](size_t threads) -> double {
        double t0 = obs::TraceRecorder::to_us(
            std::chrono::steady_clock::now());
        ff::ParallelismGuard guard(threads);
        {
            hyperplonk::ProfileRegion region("Build MLE");
            ff::parallel_for(kN, [&](size_t b, size_t e) {
                for (size_t i = b; i < e; ++i) {
                    vals[i] = vals[i] * vals[i];
                }
            });
        }
        // Read the span back from the global ring and return its
        // folded modmul_fr attribute.
        for (const SpanEvent &ev : obs::TraceRecorder::global().events()) {
            if (ev.name == "Build MLE" && ev.category == "prover" &&
                ev.ts_us >= t0) {
                for (const auto &[k, v] : ev.args) {
                    if (k == "modmul_fr") return v;
                }
            }
        }
        return -1;  // span or attribute missing
    };

    double serial = run_region(1);
    double threaded = run_region(4);
    EXPECT_GE(serial, double(kN));  // one mul per element, at least
    EXPECT_DOUBLE_EQ(serial, threaded)
        << "worker-thread modmuls did not migrate to the enclosing span";
}

// Satellite: ZKSPEED_TRACE_RING sizes the global ring; the capacity
// gauge tracks set_capacity.
TEST(AttribSpans, TraceRingCapacityFromEnvAndGauge)
{
    const size_t dflt = 16384;
    unsetenv("ZKSPEED_TRACE_RING");
    EXPECT_EQ(obs::TraceRecorder::env_capacity(), dflt);
    setenv("ZKSPEED_TRACE_RING", "4096", 1);
    EXPECT_EQ(obs::TraceRecorder::env_capacity(), 4096u);
    setenv("ZKSPEED_TRACE_RING", "0", 1);  // 0 would wedge the ring
    EXPECT_EQ(obs::TraceRecorder::env_capacity(), dflt);
    setenv("ZKSPEED_TRACE_RING", "12cats", 1);
    EXPECT_EQ(obs::TraceRecorder::env_capacity(), dflt);
    setenv("ZKSPEED_TRACE_RING", "", 1);
    EXPECT_EQ(obs::TraceRecorder::env_capacity(), dflt);
    unsetenv("ZKSPEED_TRACE_RING");

    // Resizing the global recorder updates the capacity gauge (and
    // clears the ring); restore the env-derived capacity after.
    auto &rec = obs::TraceRecorder::global();
    rec.set_capacity(2048);
    obs::Snapshot snap = obs::MetricsRegistry::global().snapshot();
    const auto *cap = snap.find("zkspeed_trace_ring_spans",
                                {{"kind", "capacity"}});
    ASSERT_NE(cap, nullptr);
    EXPECT_DOUBLE_EQ(cap->gauge, 2048.0);
    rec.set_capacity(obs::TraceRecorder::env_capacity());
}

// Satellite: zkspeed_build_info is an info-style gauge — value 1, the
// payload is the label set.
TEST(AttribSpans, BuildInfoGauge)
{
    obs::MetricsRegistry reg;
    obs::register_build_info(reg);
    obs::Snapshot snap = reg.snapshot();
    const obs::MetricSnapshot *info = nullptr;
    for (const auto &m : snap.metrics) {
        if (m.name == "zkspeed_build_info") info = &m;
    }
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->kind, obs::MetricKind::gauge);
    EXPECT_DOUBLE_EQ(info->gauge, 1.0);
    bool has_format = false, has_features = false;
    for (const auto &[k, v] : info->labels) {
        if (k == "format") {
            has_format = true;
            EXPECT_EQ(v, "v3");
        }
        if (k == "features") {
            has_features = true;
            EXPECT_NE(v.find("attrib"), std::string::npos);
        }
    }
    EXPECT_TRUE(has_format);
    EXPECT_TRUE(has_features);

    // The global registry registers it on construction, so it is
    // present in every exposition.
    obs::Snapshot global = obs::MetricsRegistry::global().snapshot();
    bool present = false;
    for (const auto &m : global.metrics) {
        present = present || m.name == "zkspeed_build_info";
    }
    EXPECT_TRUE(present);
}

// Acceptance: the harness joins every prover kernel span of a real
// suite to a modeled cycle count and surfaces the drift series in the
// captured expositions.
TEST(AttribE2E, HarnessJoinsEveryProverKernelSpan)
{
    const uint64_t seed = scenarios::test_seed(8125);
    const auto &reg = scenarios::Registry::global();
    scenarios::Harness harness;
    for (const char *family : {"rescue-chain", "range-via-lookup"}) {
        scenarios::Spec spec;
        spec.name = family;
        spec.log_size = 4;
        spec.seed = seed + (family[0] == 'r' && family[1] == 'a' ? 1 : 0);
        scenarios::ScenarioResult res = harness.run(reg.build(spec));
        EXPECT_TRUE(res.conformant) << family << ": " << res.detail;
    }
    scenarios::SuiteResult suite = harness.finish();

    const Report &rep = suite.attrib;
    EXPECT_EQ(rep.jobs_joined, 2u);
    EXPECT_EQ(rep.jobs_modeled_only, 0u);
    EXPECT_TRUE(rep.unmapped_kernels.empty())
        << "first unmapped: " << rep.unmapped_kernels.front();
    EXPECT_GT(rep.spans_joined, 0u);
    EXPECT_GT(rep.measured_total_seconds, 0.0);
    EXPECT_GT(rep.modeled_total_cycles, 0u);
    ASSERT_GE(rep.kernels.size(), 8u);
    for (const auto &row : rep.kernels) {
        EXPECT_GT(row.modeled_cycles, 0u)
            << row.kernel << " measured but not modeled";
        EXPECT_GT(row.measured_seconds, 0.0)
            << row.kernel << " modeled but never measured";
        EXPECT_GT(row.drift_ratio, 0.0) << row.kernel;
        EXPECT_EQ(row.kernel.rfind("model:", 0), std::string::npos)
            << row.kernel << " escaped the group table";
    }
    // The lookup scenario must light up the lookup pipeline.
    EXPECT_NE(find_row(rep.kernels, "LookupCheck"), nullptr);
    ASSERT_EQ(rep.jobs.size(), 2u);
    for (const auto &job : rep.jobs) {
        EXPECT_GT(job.mu, 0u);
        EXPECT_GT(job.sw_ms, 0.0);
        EXPECT_GT(job.chip_ms, 0.0);
        EXPECT_FALSE(job.kernels.empty());
    }

    // The rendered report round-trips and the drift series made it
    // into both captured expositions.
    auto back = obs::attrib::parse_json(suite.attrib_json);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->jobs_joined, rep.jobs_joined);
    EXPECT_NE(suite.metrics_prom.find("zkspeed_model_drift_ratio{"),
              std::string::npos);
    EXPECT_NE(suite.metrics_prom.find("zkspeed_kernel_modmuls_per_byte{"),
              std::string::npos);
    EXPECT_NE(
        suite.metrics_json.find("\"name\":\"zkspeed_model_drift_ratio\""),
        std::string::npos);
}

}  // namespace
