/**
 * @file
 * Scenario conformance suite (suite #20): enumerates the whole workload
 * registry and drives every family — honest and adversarial — through
 * prove -> wire -> ProofService -> BatchVerifier -> sim replay,
 * asserting cross-layer agreement: the direct, deferred and service
 * verification paths must reach identical verdicts, the suite-wide
 * batch fold must reproduce them (isolating tampered proofs via
 * bisection), and the replayed trace must stay sane on the chip model.
 *
 * Determinism: every random draw descends from one base seed,
 * overridable with ZKSPEED_TEST_SEED; failures print the seed and the
 * scenario spec so any red run reproduces in one command. The SoakSweep
 * suite re-runs the registry across extra seeds and larger sizes and is
 * registered with the `soak` ctest label (depth dialled up in CI via
 * ZKSPEED_SOAK_SEEDS / ZKSPEED_SOAK_MU_BUMP).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "runtime/key_cache.hpp"
#include "scenarios/harness.hpp"
#include "scenarios/registry.hpp"
#include "scenarios/seed.hpp"

namespace {

using namespace zkspeed;
using scenarios::Instance;
using scenarios::Outcome;
using scenarios::Registry;
using scenarios::ScenarioResult;
using scenarios::Spec;

const uint64_t kSeed = scenarios::test_seed(2026);

std::string
repro(const Spec &spec)
{
    return "rerun with: ZKSPEED_TEST_SEED=" + std::to_string(kSeed) +
           " ctest -R test_scenarios   (scenario " + spec.describe() + ")";
}

TEST(Registry, OffersDiverseUniquelyNamedFamilies)
{
    const auto &reg = Registry::global();
    EXPECT_GE(reg.size(), 8u) << "the workload library shrank";
    std::set<std::string> names;
    size_t adversarial = 0;
    for (const auto &f : reg.families()) {
        EXPECT_TRUE(names.insert(f.name).second)
            << "duplicate family name " << f.name;
        EXPECT_FALSE(f.description.empty()) << f.name;
        EXPECT_EQ(reg.find(f.name), &f) << f.name;
        if (f.adversarial()) ++adversarial;
    }
    EXPECT_GE(adversarial, 3u);
    EXPECT_EQ(reg.find("no-such-family"), nullptr);
    Spec unknown;
    unknown.name = "no-such-family";
    EXPECT_THROW((void)reg.build(unknown), std::out_of_range);

    // The default suite covers every family and the full outcome
    // taxonomy, so the e2e sweep below exercises all four contracts.
    auto suite = reg.default_suite(kSeed);
    EXPECT_EQ(suite.size(), reg.size());
    std::set<Outcome> outcomes;
    for (const auto &spec : suite) {
        outcomes.insert(reg.find(spec.name)->expected);
    }
    EXPECT_EQ(outcomes.size(), 4u)
        << "suite no longer covers ACCEPT / REJECT_WITNESS / "
           "REJECT_PROOF / REJECT_FRAME";
}

TEST(Registry, BuildsAreDeterministicInTheSpec)
{
    const auto &reg = Registry::global();
    for (const Spec &spec : reg.default_suite(kSeed)) {
        SCOPED_TRACE(repro(spec));
        Instance a = reg.build(spec);
        Instance b = reg.build(spec);
        EXPECT_EQ(runtime::circuit_fingerprint(a.circuit),
                  runtime::circuit_fingerprint(b.circuit));
        for (size_t j = 0; j < 3; ++j) {
            EXPECT_EQ(a.witness.w[j], b.witness.w[j]);
        }
        EXPECT_EQ(a.expected, b.expected);
        // A different seed draws genuinely different material. Some
        // families keep the circuit shape seed-invariant on purpose
        // (values live in the witness, so the key cache can hit across
        // seeds) — but then the witness must differ.
        Spec other = spec;
        other.seed += 1;
        Instance c = reg.build(other);
        bool circuit_differs =
            runtime::circuit_fingerprint(c.circuit) !=
            runtime::circuit_fingerprint(a.circuit);
        bool witness_differs = false;
        for (size_t j = 0; j < 3; ++j) {
            if (!(c.witness.w[j] == a.witness.w[j])) {
                witness_differs = true;
            }
        }
        EXPECT_TRUE(circuit_differs || witness_differs)
            << "builder ignores the seed";
    }
}

TEST(Registry, HonestWitnessesSatisfyAdversarialOnesDeclareWhy)
{
    const auto &reg = Registry::global();
    for (const Spec &spec : reg.default_suite(kSeed)) {
        SCOPED_TRACE(repro(spec));
        Instance inst = reg.build(spec);
        EXPECT_GE(inst.circuit.num_vars, spec.log_size);
        switch (inst.expected) {
            case Outcome::reject_witness:
                // Bad via gates, wiring or lookups — any of the three
                // trips the service's front-door witness check.
                EXPECT_FALSE(
                    inst.witness.satisfies_gates(inst.circuit) &&
                    inst.witness.satisfies_wiring(inst.circuit) &&
                    inst.witness.satisfies_lookups(inst.circuit));
                break;
            case Outcome::reject_proof:
                EXPECT_TRUE(inst.witness.satisfies_gates(inst.circuit));
                EXPECT_TRUE(inst.witness.satisfies_lookups(inst.circuit));
                EXPECT_TRUE(bool(inst.tamper_proof) ||
                            bool(inst.tamper_publics))
                    << "reject_proof family carries no proof transform";
                break;
            case Outcome::reject_frame:
                EXPECT_TRUE(bool(inst.tamper_frame));
                EXPECT_TRUE(inst.witness.satisfies_gates(inst.circuit));
                break;
            case Outcome::accept:
                EXPECT_TRUE(inst.witness.satisfies_gates(inst.circuit));
                EXPECT_TRUE(inst.witness.satisfies_wiring(inst.circuit));
                EXPECT_TRUE(inst.witness.satisfies_lookups(inst.circuit));
                EXPECT_FALSE(bool(inst.tamper_proof));
                break;
        }
    }
}

TEST(Conformance, EveryScenarioEndToEndWithCrossLayerAgreement)
{
    const auto &reg = Registry::global();
    scenarios::Harness harness;
    // The default suite picks one frame-corruption kind by seed; pin
    // all three variants explicitly so the blocking gate always covers
    // truncation, bad magic, and the oversized length prefix.
    auto sweep = reg.default_suite(kSeed);
    for (uint64_t variant = 0; variant < 3; ++variant) {
        Spec spec;
        spec.name = "malformed-frame";
        spec.seed = kSeed + 100;
        spec.knobs["variant"] = variant;
        sweep.push_back(std::move(spec));
    }
    std::vector<ScenarioResult> results;
    std::set<Outcome> observed;
    for (const Spec &spec : sweep) {
        SCOPED_TRACE(repro(spec));
        ScenarioResult res = harness.run(reg.build(spec));
        EXPECT_TRUE(res.conformant) << res.detail;
        EXPECT_EQ(res.observed, res.expected);
        observed.insert(res.observed);
        results.push_back(std::move(res));
    }
    EXPECT_EQ(observed.size(), 4u) << "outcome coverage shrank";

    // Every proof that reached the accumulator rides one folded flush;
    // its verdict must match what the direct path predicted, and the
    // tampered proofs must be isolated by bisection without dragging
    // honest batch-mates down.
    size_t batched = 0, expected_false = 0;
    for (const auto &res : results) {
        if (res.batch_index == SIZE_MAX) continue;
        ++batched;
        if (!res.direct_verdict) ++expected_false;
    }
    ASSERT_GE(batched, 8u);
    ASSERT_GE(expected_false, 1u)
        << "no pairing-side adversarial proof reached the batch";

    auto suite = harness.finish();
    EXPECT_TRUE(suite.batch_matches_direct)
        << "batched verdicts diverge from direct verification";
    ASSERT_EQ(suite.batch.verdicts.size(), batched);
    for (const auto &res : results) {
        if (res.batch_index == SIZE_MAX) continue;
        EXPECT_EQ(suite.batch.verdicts[res.batch_index],
                  res.direct_verdict)
            << res.spec.describe();
    }
    EXPECT_GT(suite.batch.stats.bisection_steps, 0u);
    EXPECT_GT(suite.batch.stats.pairing_checks, 1u);

    // Replay-cycle sanity: every proved job and verify flush crossed
    // the chip model with non-degenerate latencies.
    // Frame-family proofs are accumulated client-side (the proof is
    // honest; the frame died in service decoding), so the service parks
    // one fewer VERIFY job per frame scenario than the local batch.
    size_t proved = 0, service_parked = 0;
    for (const auto &res : results) {
        if (res.expected != Outcome::reject_witness &&
            !res.presented_proof.empty()) {
            ++proved;
        }
        if (res.batch_index != SIZE_MAX &&
            res.expected != Outcome::reject_frame) {
            ++service_parked;
        }
    }
    EXPECT_EQ(suite.replay.prove_jobs, proved);
    EXPECT_GE(suite.replay.verify_flushes, 1u);
    EXPECT_EQ(suite.replay.proofs_verified, service_parked);
    EXPECT_GT(suite.replay.chip_total_ms, 0.0);
    EXPECT_GT(suite.replay.sw_total_ms, 0.0);
    EXPECT_GT(suite.replay.speedup, 1.0)
        << "the modelled accelerator fell behind the software prover";
    EXPECT_EQ(suite.replay.prove_jobs + suite.replay.verify_flushes,
              suite.replay.jobs.size());

    // The service saw exactly the traffic the scenario sweep generated.
    const auto &m = suite.service_metrics;
    EXPECT_EQ(m.prove_class.jobs_ok, proved);
    EXPECT_EQ(m.verify_batches.proofs_accepted +
                  m.verify_batches.proofs_rejected,
              service_parked);
}

TEST(Conformance, PipelineIsDeterministicAcrossHarnesses)
{
    const auto &reg = Registry::global();
    Spec spec;
    spec.name = "rescue-chain";
    spec.seed = kSeed + 7;
    spec.log_size = 4;

    auto run_once = [&] {
        scenarios::HarnessConfig cfg;
        cfg.replay = false;
        scenarios::Harness harness(cfg);
        ScenarioResult res = harness.run(reg.build(spec));
        EXPECT_TRUE(res.conformant) << res.detail;
        (void)harness.finish();
        return res.presented_proof;
    };
    auto first = run_once();
    auto second = run_once();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second)
        << "same spec, fresh service: proof bytes must be identical";
}

// ---------------------------------------------------------------------
// Soak sweep (ctest label `soak`): the whole registry across extra
// seeds and larger circuits. Shallow by default; CI's non-blocking
// soak job raises ZKSPEED_SOAK_SEEDS / ZKSPEED_SOAK_MU_BUMP.
// ---------------------------------------------------------------------
TEST(SoakSweep, RegistryAcrossSeedsAndSizes)
{
    const uint64_t seeds = scenarios::env_u64("ZKSPEED_SOAK_SEEDS", 1);
    const uint64_t bump = scenarios::env_u64("ZKSPEED_SOAK_MU_BUMP", 1);
    const auto &reg = Registry::global();
    for (uint64_t s = 0; s < seeds; ++s) {
        scenarios::Harness harness;
        const uint64_t base = kSeed + 1000 * (s + 1);
        for (const Spec &spec :
             reg.default_suite(base, size_t(4 + bump))) {
            SCOPED_TRACE("rerun with: ZKSPEED_TEST_SEED=" +
                         std::to_string(kSeed) +
                         " ZKSPEED_SOAK_SEEDS=" + std::to_string(seeds) +
                         " ZKSPEED_SOAK_MU_BUMP=" + std::to_string(bump) +
                         " ctest -R test_scenarios_soak   (scenario " +
                         spec.describe() + ")");
            ScenarioResult res = harness.run(reg.build(spec));
            EXPECT_TRUE(res.conformant) << res.detail;
        }
        auto suite = harness.finish();
        EXPECT_TRUE(suite.batch_matches_direct);
        EXPECT_GT(suite.replay.speedup, 1.0);
    }
}

// Capacity ramp in the soak lane: a monotone offered-QPS sweep through
// the load generator against a dedicated service. Shallow by default
// (a handful of short windows); CI's soak job raises the dials via
// ZKSPEED_CAPACITY_WINDOWS / ZKSPEED_CAPACITY_QPS. The SLO here is a
// liveness gate, not a latency target — the interesting output is the
// windowed percentile series and the knee estimate.
TEST(SoakSweep, CapacityRamp)
{
    const uint64_t windows =
        scenarios::env_u64("ZKSPEED_CAPACITY_WINDOWS", 4);
    const uint64_t qps1 = scenarios::env_u64("ZKSPEED_CAPACITY_QPS", 12);
    scenarios::CapacityConfig cfg;
    cfg.plan.mix.push_back(
        loadgen::MixEntry{"rescue-chain", 3.0, 4, kSeed});
    cfg.plan.mix.push_back(
        loadgen::MixEntry{"range-bank", 1.0, 4, kSeed + 7});
    cfg.plan.profile.kind = loadgen::Profile::Kind::ramp;
    cfg.plan.profile.qps0 = 2;
    cfg.plan.profile.qps1 = double(qps1);
    cfg.plan.windows = size_t(std::max<uint64_t>(2, windows));
    cfg.plan.window_ms = 500;
    cfg.plan.seed = kSeed;
    cfg.plan.verify_fraction = 0.25;
    obs::SloObjective o;
    o.name = "liveness-p99";
    o.series = {"zkspeed_job_latency_ms", {{"status", "ok"}}};
    o.q = 0.99;
    o.threshold = 60000.0;
    cfg.plan.objectives.push_back(o);
    cfg.frames_per_pool = 2;
    cfg.stream = stdout;

    auto rep = scenarios::run_capacity(cfg);
    EXPECT_TRUE(rep.slo_ok) << "liveness SLO breached in the ramp";
    EXPECT_GT(rep.completed_total, 0u);
    ASSERT_EQ(rep.windows.size(), cfg.plan.windows);
    // The offered-QPS targets sweep monotonically by construction.
    for (size_t w = 1; w < rep.windows.size(); ++w) {
        EXPECT_GT(rep.windows[w].qps_target,
                  rep.windows[w - 1].qps_target);
    }
    EXPECT_TRUE(rep.knee_found);
}

}  // namespace
