/**
 * @file
 * Serialization tests: round trips, strict validation (non-canonical
 * field elements, off-curve points, truncation, trailing garbage) and
 * end-to-end verification through the wire format.
 */
#include <gtest/gtest.h>

#include <random>

#include "hyperplonk/serialize.hpp"

namespace {

using namespace zkspeed::hyperplonk;
using zkspeed::ff::Fr;
using zkspeed::pcs::Srs;

struct Fixture {
    ProvingKey pk;
    VerifyingKey vk;
    Witness wit;
    Proof proof;
    std::vector<Fr> publics;
};

Fixture &
fixture()
{
    static Fixture f = [] {
        std::mt19937_64 rng(301);
        auto [index, wit] = random_circuit(4, rng);
        auto srs = std::make_shared<Srs>(Srs::generate(4, rng));
        auto [pk, vk] = keygen(std::move(index), srs);
        Proof proof = prove(pk, wit);
        auto publics = wit.public_inputs(pk.index);
        return Fixture{std::move(pk), std::move(vk), std::move(wit),
                       std::move(proof), std::move(publics)};
    }();
    return f;
}

TEST(Serialize, ProofRoundTrip)
{
    auto &f = fixture();
    auto bytes = serde::serialize_proof(f.proof);
    // Wire size tracks the logical proof size plus framing overhead.
    EXPECT_GE(bytes.size(), f.proof.size_bytes());
    EXPECT_LT(bytes.size(), f.proof.size_bytes() + 512);
    auto back = serde::deserialize_proof(bytes);
    ASSERT_TRUE(back.has_value());
    // The decoded proof must verify exactly like the original.
    EXPECT_TRUE(verify(f.vk, f.publics, *back));
    // And re-serialize to identical bytes (canonical encoding).
    EXPECT_EQ(serde::serialize_proof(*back), bytes);
}

TEST(Serialize, RejectsTruncationEverywhere)
{
    auto &f = fixture();
    auto bytes = serde::serialize_proof(f.proof);
    // Any prefix must fail to decode.
    for (size_t len : {0ul, 1ul, 7ul, 8ul, bytes.size() / 2,
                       bytes.size() - 1}) {
        auto cut = std::span<const uint8_t>(bytes.data(), len);
        EXPECT_FALSE(serde::deserialize_proof(cut).has_value())
            << "len " << len;
    }
}

TEST(Serialize, RejectsTrailingGarbage)
{
    auto &f = fixture();
    auto bytes = serde::serialize_proof(f.proof);
    bytes.push_back(0);
    EXPECT_FALSE(serde::deserialize_proof(bytes).has_value());
}

TEST(Serialize, RejectsBadMagic)
{
    auto &f = fixture();
    auto bytes = serde::serialize_proof(f.proof);
    bytes[0] ^= 0xff;
    EXPECT_FALSE(serde::deserialize_proof(bytes).has_value());
}

TEST(Serialize, RejectsNonCanonicalFieldElement)
{
    auto &f = fixture();
    auto bytes = serde::serialize_proof(f.proof);
    // The batch-evaluation block sits after the two sumchecks; rather
    // than compute the offset, set a known Fr slot to the modulus:
    // find the first 32-byte window after the witness commitments that
    // we can overwrite with r (definitely >= modulus -> must reject).
    // gprime_value is the 32 bytes before the final quotient block:
    size_t quotients = f.proof.gprime_proof.quotients.size();
    size_t quot_bytes = 8 + quotients * (1 + 2 * 48);
    size_t off = bytes.size() - quot_bytes - 32;
    uint8_t modulus_le[32];
    (Fr::zero() - Fr::one()).to_bytes(modulus_le);  // r - 1 (valid)
    // Bump to exactly r (invalid): r-1 ends in ...00000000, +1 works.
    modulus_le[0] += 1;
    std::copy(modulus_le, modulus_le + 32, bytes.begin() + off);
    EXPECT_FALSE(serde::deserialize_proof(bytes).has_value());
}

TEST(Serialize, RejectsOffCurvePoint)
{
    auto &f = fixture();
    auto bytes = serde::serialize_proof(f.proof);
    // Witness commitment #0 starts right after the magic: flip a byte
    // of its x coordinate (offset 8 + 1 flag byte).
    bytes[9] ^= 0x01;
    EXPECT_FALSE(serde::deserialize_proof(bytes).has_value());
}

TEST(Serialize, TamperedWireProofFailsVerification)
{
    auto &f = fixture();
    auto bytes = serde::serialize_proof(f.proof);
    // Corrupt one byte inside a sumcheck round message (the region
    // between the commitments decodes as field elements; field-valid
    // mutations must still be caught by the verifier).
    // Flip a low-order byte of some round evaluation.
    size_t off = 8 + 3 * (1 + 96) + 8 * 3 + 8;  // into zerocheck rounds
    bytes[off + 10] ^= 0x01;
    auto back = serde::deserialize_proof(bytes);
    if (back.has_value()) {
        EXPECT_FALSE(verify(f.vk, f.publics, *back));
    }
}

TEST(Serialize, VerifyingKeyRoundTripSupportsPairingMode)
{
    auto &f = fixture();
    auto bytes = serde::serialize_verifying_key(f.vk);
    auto vk2 = serde::deserialize_verifying_key(bytes);
    ASSERT_TRUE(vk2.has_value());
    EXPECT_EQ(vk2->num_vars, f.vk.num_vars);
    EXPECT_EQ(vk2->num_public, f.vk.num_public);
    // The reconstructed key has no trapdoor, so use pairing mode.
    EXPECT_TRUE(verify(*vk2, f.publics, f.proof, PcsCheckMode::pairing));
    // Tampered proofs still rejected through the decoded key.
    Proof bad = f.proof;
    bad.gprime_value += Fr::one();
    EXPECT_FALSE(verify(*vk2, f.publics, bad, PcsCheckMode::pairing));
}

TEST(Serialize, VerifyingKeyRejectsCorruption)
{
    auto &f = fixture();
    auto bytes = serde::serialize_verifying_key(f.vk);
    for (size_t off : {0ul, 8ul, 30ul, bytes.size() - 5}) {
        auto bad = bytes;
        bad[off] ^= 0x40;
        auto vk2 = serde::deserialize_verifying_key(bad);
        if (vk2.has_value()) {
            // Decoded but semantically different: must not accept the
            // original proof as-is AND match the original key.
            bool same = vk2->num_vars == f.vk.num_vars &&
                        vk2->num_public == f.vk.num_public;
            if (same) {
                EXPECT_FALSE(verify(*vk2, f.publics, f.proof,
                                    PcsCheckMode::pairing))
                    << "offset " << off;
            }
        }
    }
    auto cut = std::span<const uint8_t>(bytes.data(), bytes.size() / 2);
    EXPECT_FALSE(serde::deserialize_verifying_key(cut).has_value());
}

}  // namespace
