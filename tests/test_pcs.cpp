/**
 * @file
 * Multilinear-KZG commitment tests: commit/open/verify, homomorphism,
 * the halving-MSM structure, and both verification paths.
 */
#include <gtest/gtest.h>

#include <random>

#include "pcs/mkzg.hpp"

namespace {

using namespace zkspeed::pcs;
using zkspeed::curve::G1;
using zkspeed::ff::Fr;

std::vector<Fr>
random_point(size_t n, std::mt19937_64 &rng)
{
    std::vector<Fr> p(n);
    for (auto &x : p) x = Fr::random(rng);
    return p;
}

class PcsRoundTrip : public ::testing::TestWithParam<size_t>
{
};

TEST_P(PcsRoundTrip, CommitOpenVerifyIdeal)
{
    const size_t mu = GetParam();
    std::mt19937_64 rng(70 + mu);
    Srs srs = Srs::generate(mu, rng);
    Mle f = Mle::random(mu, rng);
    auto comm = commit(srs, f);
    auto z = random_point(mu, rng);
    auto [proof, value] = open(srs, f, z);
    EXPECT_EQ(value, f.evaluate(z));
    EXPECT_EQ(proof.quotients.size(), mu);
    EXPECT_TRUE(verify_ideal(srs, comm, z, value, proof));
    // Wrong value must fail.
    EXPECT_FALSE(verify_ideal(srs, comm, z, value + Fr::one(), proof));
    // Wrong point must fail.
    auto z2 = random_point(mu, rng);
    EXPECT_FALSE(verify_ideal(srs, comm, z2, value, proof));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PcsRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 10));

TEST(Pcs, PairingVerificationAgreesWithIdeal)
{
    const size_t mu = 4;
    std::mt19937_64 rng(71);
    Srs srs = Srs::generate(mu, rng);
    Mle f = Mle::random(mu, rng);
    auto comm = commit(srs, f);
    auto z = random_point(mu, rng);
    auto [proof, value] = open(srs, f, z);
    EXPECT_TRUE(verify(srs, comm, z, value, proof));
    EXPECT_TRUE(verify_ideal(srs, comm, z, value, proof));
    // Both reject a corrupted quotient.
    auto bad = proof;
    bad.quotients[1] =
        (G1::from_affine(bad.quotients[1]) + zkspeed::curve::g1_generator())
            .to_affine();
    EXPECT_FALSE(verify(srs, comm, z, value, bad));
    EXPECT_FALSE(verify_ideal(srs, comm, z, value, bad));
    // Both reject a wrong value.
    EXPECT_FALSE(verify(srs, comm, z, value + Fr::one(), proof));
}

TEST(Pcs, CommitmentIsEvaluationAtTau)
{
    // commit(f) == f(tau) * g: the defining property of the eq basis.
    const size_t mu = 5;
    std::mt19937_64 rng(72);
    Srs srs = Srs::generate(mu, rng);
    Mle f = Mle::random(mu, rng);
    Fr f_tau = f.evaluate(srs.trapdoor);
    EXPECT_EQ(G1::from_affine(commit(srs, f)),
              zkspeed::curve::g1_generator().mul(f_tau));
}

TEST(Pcs, CommitmentHomomorphism)
{
    // commit(a*f + b*h) == a*commit(f) + b*commit(h); the verifier's
    // batch-opening reduction relies on this.
    const size_t mu = 4;
    std::mt19937_64 rng(73);
    Srs srs = Srs::generate(mu, rng);
    Mle f = Mle::random(mu, rng);
    Mle h = Mle::random(mu, rng);
    Fr a = Fr::random(rng), b = Fr::random(rng);
    Mle combo(mu);
    combo.add_scaled(f, a);
    combo.add_scaled(h, b);
    G1 lhs = G1::from_affine(commit(srs, combo));
    G1 rhs = G1::from_affine(commit(srs, f)).mul(a) +
             G1::from_affine(commit(srs, h)).mul(b);
    EXPECT_EQ(lhs, rhs);
}

TEST(Pcs, SparseCommitMatchesDense)
{
    const size_t mu = 6;
    std::mt19937_64 rng(74);
    Srs srs = Srs::generate(mu, rng);
    Mle f(mu);
    // 0/1-heavy table, like a witness MLE.
    for (size_t i = 0; i < f.size(); ++i) {
        double u = std::uniform_real_distribution<>(0, 1)(rng);
        f[i] = u < 0.45 ? Fr::zero()
                        : (u < 0.9 ? Fr::one() : Fr::random(rng));
    }
    zkspeed::curve::MsmStats st;
    auto sparse = commit_sparse(srs, f, &st);
    auto dense = commit(srs, f);
    EXPECT_EQ(G1::from_affine(sparse), G1::from_affine(dense));
    EXPECT_GT(st.ones + st.zeros, st.dense);
}

TEST(Pcs, OpeningAtBooleanPointRecoversTableEntry)
{
    const size_t mu = 4;
    std::mt19937_64 rng(75);
    Srs srs = Srs::generate(mu, rng);
    Mle f = Mle::random(mu, rng);
    auto comm = commit(srs, f);
    for (size_t idx : {0u, 5u, 15u}) {
        std::vector<Fr> z(mu);
        for (size_t k = 0; k < mu; ++k) {
            z[k] = ((idx >> k) & 1) ? Fr::one() : Fr::zero();
        }
        auto [proof, value] = open(srs, f, z);
        EXPECT_EQ(value, f[idx]);
        EXPECT_TRUE(verify_ideal(srs, comm, z, value, proof));
    }
}

TEST(Pcs, ZeroPolynomial)
{
    const size_t mu = 3;
    std::mt19937_64 rng(76);
    Srs srs = Srs::generate(mu, rng);
    Mle f(mu);  // identically zero
    auto comm = commit(srs, f);
    EXPECT_TRUE(comm.is_identity());
    auto z = random_point(mu, rng);
    auto [proof, value] = open(srs, f, z);
    EXPECT_TRUE(value.is_zero());
    EXPECT_TRUE(verify_ideal(srs, comm, z, value, proof));
    EXPECT_TRUE(verify(srs, comm, z, value, proof));
}

}  // namespace
