/**
 * @file
 * Telemetry subsystem tests (DESIGN.md §10): histogram quantile error
 * against exact order statistics, shard-merge determinism under
 * threads, trace-event JSON well-formedness and span-nesting links,
 * Prometheus text parseability, the Snippet-1-style exposition
 * exhaustiveness sweep over every series a ProofService registers, the
 * concurrent (2-prover) Profiler hot path and the rejected-job latency
 * fix (ClassMetrics used to drop non-ok latencies entirely).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <random>
#include <thread>

#include "hyperplonk/profile.hpp"
#include "hyperplonk/serialize.hpp"
#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/service.hpp"

namespace {

using namespace zkspeed;

// ---------------------------------------------------------------------------
// A minimal JSON validator (recursive descent): enough to assert the
// trace and metrics exports are well-formed documents that a real
// parser (Perfetto's, jq) would accept. Returns true iff the whole
// string is exactly one JSON value.
// ---------------------------------------------------------------------------

struct JsonCursor {
    const std::string &s;
    size_t i = 0;

    void
    ws()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t' ||
                                s[i] == '\n' || s[i] == '\r')) {
            ++i;
        }
    }
    bool
    lit(const char *t)
    {
        size_t n = std::strlen(t);
        if (s.compare(i, n, t) != 0) return false;
        i += n;
        return true;
    }
    bool
    string()
    {
        if (i >= s.size() || s[i] != '"') return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size()) return false;
                if (s[i] == 'u') {
                    for (int k = 0; k < 4; ++k) {
                        if (++i >= s.size() || !std::isxdigit(
                                                   (unsigned char)s[i])) {
                            return false;
                        }
                    }
                }
            }
            ++i;
        }
        if (i >= s.size()) return false;
        ++i;  // closing quote
        return true;
    }
    bool
    number()
    {
        size_t start = i;
        if (i < s.size() && s[i] == '-') ++i;
        while (i < s.size() && std::isdigit((unsigned char)s[i])) ++i;
        if (i < s.size() && s[i] == '.') {
            ++i;
            while (i < s.size() && std::isdigit((unsigned char)s[i])) ++i;
        }
        if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
            ++i;
            if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
            while (i < s.size() && std::isdigit((unsigned char)s[i])) ++i;
        }
        return i > start;
    }
    bool
    value()
    {
        ws();
        if (i >= s.size()) return false;
        char c = s[i];
        if (c == '"') return string();
        if (c == '{') {
            ++i;
            ws();
            if (i < s.size() && s[i] == '}') {
                ++i;
                return true;
            }
            for (;;) {
                ws();
                if (!string()) return false;
                ws();
                if (i >= s.size() || s[i] != ':') return false;
                ++i;
                if (!value()) return false;
                ws();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                break;
            }
            if (i >= s.size() || s[i] != '}') return false;
            ++i;
            return true;
        }
        if (c == '[') {
            ++i;
            ws();
            if (i < s.size() && s[i] == ']') {
                ++i;
                return true;
            }
            for (;;) {
                if (!value()) return false;
                ws();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                break;
            }
            if (i >= s.size() || s[i] != ']') return false;
            ++i;
            return true;
        }
        if (c == 't') return lit("true");
        if (c == 'f') return lit("false");
        if (c == 'n') return lit("null");
        return number();
    }
};

bool
valid_json(const std::string &s)
{
    JsonCursor c{s};
    if (!c.value()) return false;
    c.ws();
    return c.i == s.size();
}

// ---------------------------------------------------------------------------
// Histogram geometry and quantile error.
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketGeometryInvariants)
{
    using B = obs::HistogramBuckets;
    // Every positive value lands in the bucket whose bound covers it.
    std::mt19937_64 rng(23001);
    std::uniform_real_distribution<double> exp_dist(-19.0, 39.0);
    for (int k = 0; k < 20000; ++k) {
        double v = std::exp2(exp_dist(rng));
        size_t i = B::index_for(v);
        EXPECT_LE(v, B::upper_bound(i)) << v;
        if (i > 0) EXPECT_GT(v, B::upper_bound(i - 1)) << v;
    }
    // Exact powers of two sit on a bucket boundary (inclusive bound).
    for (int e = -19; e <= 39; ++e) {
        double v = std::exp2(e);
        EXPECT_DOUBLE_EQ(B::upper_bound(B::index_for(v)), v);
    }
    // Non-positive / NaN values are swallowed by bucket 0, and the
    // range clamps instead of indexing out of bounds.
    EXPECT_EQ(B::index_for(0.0), 0u);
    EXPECT_EQ(B::index_for(-3.5), 0u);
    EXPECT_EQ(B::index_for(std::nan("")), 0u);
    EXPECT_EQ(B::index_for(1e-300), 0u);
    EXPECT_EQ(B::index_for(1e300), B::kNumBuckets - 1);
}

/** Percentile estimates vs exact order statistics on one sample set. */
void
check_quantiles(const std::vector<double> &samples, const char *what)
{
    obs::MetricsRegistry reg;
    obs::MetricId h = reg.histogram("t23_dist");
    for (double v : samples) reg.observe(h, v);

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());

    auto snap = reg.snapshot();
    const obs::MetricSnapshot *m = snap[h];
    ASSERT_NE(m, nullptr);
    ASSERT_EQ(m->hist.count, samples.size());
    EXPECT_DOUBLE_EQ(m->hist.min, sorted.front());
    EXPECT_DOUBLE_EQ(m->hist.max, sorted.back());

    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        size_t rank = size_t(std::ceil(q * double(sorted.size())));
        rank = std::clamp<size_t>(rank, 1, sorted.size());
        double exact = sorted[rank - 1];
        double est = m->hist.quantile(q);
        // The documented bound: the reported midpoint is within
        // 2^(1/16)-1 of any exact value in the same bucket.
        EXPECT_LE(std::abs(est - exact),
                  exact * obs::HistogramBuckets::kMaxRelativeError *
                      (1.0 + 1e-9))
            << what << " q=" << q << " exact=" << exact
            << " est=" << est;
    }
}

TEST(ObsHistogram, QuantilesWithinDocumentedError)
{
    std::mt19937_64 rng(23002);
    std::vector<double> uniform, lognormal, exponential, bimodal;
    std::uniform_real_distribution<double> u(0.1, 1000.0);
    std::lognormal_distribution<double> ln(1.5, 0.8);
    std::exponential_distribution<double> ex(0.25);
    for (int k = 0; k < 20000; ++k) {
        uniform.push_back(u(rng));
        lognormal.push_back(ln(rng));
        exponential.push_back(ex(rng) + 1e-3);
        // Latency-shaped: fast mode plus a 1% slow tail two decades up.
        bimodal.push_back((k % 100 == 0 ? 250.0 : 2.5) * (1.0 + u(rng) / 2000.0));
    }
    check_quantiles(uniform, "uniform");
    check_quantiles(lognormal, "lognormal");
    check_quantiles(exponential, "exponential");
    check_quantiles(bimodal, "bimodal");
}

TEST(ObsHistogram, EmptyAndSingleton)
{
    obs::MetricsRegistry reg;
    obs::MetricId h = reg.histogram("t23_edge");
    auto snap = reg.snapshot();
    ASSERT_NE(snap[h], nullptr);
    EXPECT_EQ(snap[h]->hist.count, 0u);
    EXPECT_DOUBLE_EQ(snap[h]->hist.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(snap[h]->hist.min, 0.0);
    EXPECT_DOUBLE_EQ(snap[h]->hist.max, 0.0);

    reg.observe(h, 42.0);
    snap = reg.snapshot();
    EXPECT_EQ(snap[h]->hist.count, 1u);
    // A single sample: every quantile is clamped to the exact value.
    EXPECT_DOUBLE_EQ(snap[h]->hist.quantile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(snap[h]->hist.quantile(0.999), 42.0);
}

// ---------------------------------------------------------------------------
// Registry semantics: identity, gauges, kill switch, shard merging.
// ---------------------------------------------------------------------------

TEST(ObsRegistry, SeriesIdentityIsNamePlusSortedLabels)
{
    obs::MetricsRegistry reg;
    obs::MetricId a =
        reg.counter("t23_c", {{"x", "1"}, {"y", "2"}});
    obs::MetricId b =
        reg.counter("t23_c", {{"y", "2"}, {"x", "1"}});  // same, reordered
    obs::MetricId c = reg.counter("t23_c", {{"x", "1"}});
    EXPECT_EQ(a.index, b.index);
    EXPECT_NE(a.index, c.index);
    reg.add(a, 3);
    reg.add(b, 4);
    auto snap = reg.snapshot();
    EXPECT_EQ(snap[a]->counter, 7u);
    EXPECT_EQ(snap[a]->full_name(), "t23_c{x=\"1\",y=\"2\"}");
    EXPECT_EQ(snap.find("t23_c", {{"y", "2"}, {"x", "1"}}), snap[a]);
}

TEST(ObsRegistry, GaugesAndKillSwitch)
{
    obs::MetricsRegistry reg;
    obs::MetricId g = reg.gauge("t23_g");
    obs::MetricId c = reg.counter("t23_kc");
    obs::MetricId h = reg.histogram("t23_kh");
    reg.set(g, 2.5);
    reg.gauge_add(g, 0.5);
    EXPECT_DOUBLE_EQ(reg.snapshot()[g]->gauge, 3.0);

    obs::set_enabled(false);
    reg.set(g, 99.0);
    reg.add(c, 10);
    reg.observe(h, 1.0);
    obs::set_enabled(true);

    auto snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap[g]->gauge, 3.0) << "gauge set while disabled";
    EXPECT_EQ(snap[c]->counter, 0u) << "counter add while disabled";
    EXPECT_EQ(snap[h]->hist.count, 0u) << "observe while disabled";
}

TEST(ObsRegistry, ShardMergeDeterministicUnderThreads)
{
    // The same multiset of observations, partitioned across different
    // thread counts, must merge to the identical snapshot (integer
    // values keep the FP sums exact under any merge order).
    constexpr size_t kN = 40000;
    auto value = [](size_t j) { return double(j % 997 + 1); };

    auto run = [&](size_t num_threads) {
        obs::MetricsRegistry reg;
        obs::MetricId h = reg.histogram("t23_merge");
        obs::MetricId c = reg.counter("t23_merge_count");
        std::vector<std::thread> threads;
        for (size_t t = 0; t < num_threads; ++t) {
            threads.emplace_back([&, t] {
                for (size_t j = t; j < kN; j += num_threads) {
                    reg.observe(h, value(j));
                    reg.add(c, j % 5);
                }
            });
        }
        for (auto &th : threads) th.join();
        auto snap = reg.snapshot();
        return std::make_pair(*snap[h], *snap[c]);
    };

    auto [h1, c1] = run(1);
    auto [h4, c4] = run(4);
    auto [h7, c7] = run(7);
    EXPECT_EQ(h1.hist.count, kN);
    EXPECT_EQ(h4.hist.count, kN);
    EXPECT_EQ(h7.hist.count, kN);
    EXPECT_DOUBLE_EQ(h4.hist.sum, h1.hist.sum);
    EXPECT_DOUBLE_EQ(h7.hist.sum, h1.hist.sum);
    EXPECT_DOUBLE_EQ(h4.hist.min, h1.hist.min);
    EXPECT_DOUBLE_EQ(h4.hist.max, h1.hist.max);
    ASSERT_EQ(h4.hist.buckets.size(), h1.hist.buckets.size());
    for (size_t i = 0; i < h1.hist.buckets.size(); ++i) {
        EXPECT_EQ(h4.hist.buckets[i].index, h1.hist.buckets[i].index);
        EXPECT_EQ(h4.hist.buckets[i].count, h1.hist.buckets[i].count);
        EXPECT_EQ(h7.hist.buckets[i].count, h1.hist.buckets[i].count);
    }
    EXPECT_EQ(c4.counter, c1.counter);
    EXPECT_EQ(c7.counter, c1.counter);
}

TEST(ObsRegistry, ShardsSurviveThreadExit)
{
    obs::MetricsRegistry reg;
    obs::MetricId c = reg.counter("t23_survivor");
    std::thread([&] { reg.add(c, 17); }).join();
    // The recording thread is gone; its cumulative cell must not be.
    EXPECT_EQ(reg.snapshot()[c]->counter, 17u);
}

// ---------------------------------------------------------------------------
// Tracing.
// ---------------------------------------------------------------------------

TEST(ObsTrace, NestingRoundTripAndChromeJson)
{
    auto &rec = obs::TraceRecorder::global();
    rec.clear();
    {
        obs::Span outer("t23.outer", "test", 77);
        {
            obs::Span mid("t23.mid", "test", 77);
            obs::Span inner("t23.inner", "test", 77);
            // Retroactive window: parent resolves to the stack top.
            auto now = std::chrono::steady_clock::now();
            obs::Span::record_complete("t23.window", "test",
                                       now - std::chrono::milliseconds(1),
                                       now, 77);
        }
    }
    auto evs = rec.events();
    auto find = [&](const char *name) -> const obs::SpanEvent * {
        for (const auto &e : evs) {
            if (e.name == name) return &e;
        }
        return nullptr;
    };
    const auto *outer = find("t23.outer");
    const auto *mid = find("t23.mid");
    const auto *inner = find("t23.inner");
    const auto *window = find("t23.window");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(mid, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(window, nullptr);
    EXPECT_EQ(outer->parent_id, 0u);
    EXPECT_EQ(mid->parent_id, outer->span_id);
    EXPECT_EQ(inner->parent_id, mid->span_id);
    EXPECT_EQ(window->parent_id, inner->span_id);
    EXPECT_EQ(inner->correlation_id, 77u);
    // Temporal containment (same thread).
    EXPECT_LE(outer->ts_us, mid->ts_us);
    EXPECT_LE(mid->ts_us, inner->ts_us);
    EXPECT_GE(outer->ts_us + outer->dur_us, mid->ts_us + mid->dur_us);
    EXPECT_GE(mid->ts_us + mid->dur_us, inner->ts_us + inner->dur_us);
    EXPECT_EQ(outer->tid, inner->tid);

    std::string json = rec.render_chrome_json();
    EXPECT_TRUE(valid_json(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"t23.inner\""), std::string::npos);
    EXPECT_NE(json.find("\"job\":77"), std::string::npos);
}

TEST(ObsTrace, RingBoundAndDropCount)
{
    obs::TraceRecorder rec(8);
    for (int k = 0; k < 20; ++k) {
        obs::SpanEvent ev;
        ev.span_id = uint64_t(k + 1);
        ev.ts_us = double(k);
        ev.name = "t23.ring";
        rec.record(std::move(ev));
    }
    EXPECT_EQ(rec.size(), 8u);
    EXPECT_EQ(rec.dropped(), 12u);
    // Overwrite-oldest: the survivors are the 8 most recent spans.
    auto evs = rec.events();
    ASSERT_EQ(evs.size(), 8u);
    EXPECT_EQ(evs.front().span_id, 13u);
    EXPECT_EQ(evs.back().span_id, 20u);
    rec.clear();
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.dropped(), 0u);
}

TEST(ObsTrace, DisabledSpansAreInert)
{
    auto &rec = obs::TraceRecorder::global();
    rec.clear();
    obs::set_enabled(false);
    {
        obs::Span s("t23.ghost", "test");
        EXPECT_EQ(s.id(), 0u);
    }
    obs::set_enabled(true);
    for (const auto &e : rec.events()) EXPECT_NE(e.name, "t23.ghost");
}

// ---------------------------------------------------------------------------
// Exposition formats.
// ---------------------------------------------------------------------------

/** Strict line check for the Prometheus text format (v0.0.4 subset). */
void
check_prometheus_lines(const std::string &text)
{
    size_t pos = 0;
    int series_lines = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        ASSERT_NE(eol, std::string::npos) << "unterminated last line";
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty()) continue;
        if (line.rfind("# HELP ", 0) == 0 ||
            line.rfind("# TYPE ", 0) == 0) {
            continue;
        }
        ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
        // <name>[{labels}] <value>
        size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        std::string series = line.substr(0, sp);
        std::string value = line.substr(sp + 1);
        char *end = nullptr;
        std::strtod(value.c_str(), &end);
        EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
        size_t brace = series.find('{');
        std::string name = series.substr(0, brace);
        ASSERT_FALSE(name.empty());
        for (char ch : name) {
            EXPECT_TRUE(std::isalnum((unsigned char)ch) || ch == '_' ||
                        ch == ':')
                << "bad metric name char in: " << line;
        }
        if (brace != std::string::npos) {
            EXPECT_EQ(series.back(), '}') << line;
            // Label values must be quoted: k="v",k2="v2"
            std::string body = series.substr(brace + 1,
                                             series.size() - brace - 2);
            size_t lp = 0;
            while (lp < body.size()) {
                size_t eq = body.find('=', lp);
                ASSERT_NE(eq, std::string::npos) << line;
                ASSERT_LT(eq + 1, body.size());
                EXPECT_EQ(body[eq + 1], '"') << line;
                size_t q = eq + 2;
                while (q < body.size() &&
                       !(body[q] == '"' && body[q - 1] != '\\')) {
                    ++q;
                }
                ASSERT_LT(q, body.size()) << "unterminated label: " << line;
                lp = q + 1;
                if (lp < body.size()) {
                    EXPECT_EQ(body[lp], ',') << line;
                    ++lp;
                }
            }
        }
        ++series_lines;
    }
    EXPECT_GT(series_lines, 0);
}

TEST(ObsExport, PrometheusTextParses)
{
    obs::MetricsRegistry reg;
    obs::MetricId c = reg.counter(
        "t23_jobs_total", {{"class", "prove"}, {"status", "ok"}},
        "Jobs with \"quotes\" and a\nnewline in the help");
    obs::MetricId g = reg.gauge("t23_depth", {}, "plain gauge");
    obs::MetricId h =
        reg.histogram("t23_latency_ms", {{"svc", "a"}}, "latency");
    reg.add(c, 5);
    reg.set(g, -2.25);
    for (double v : {0.5, 1.0, 2.0, 2.0, 700.0}) reg.observe(h, v);

    std::string text = obs::render_prometheus_text(reg.snapshot());
    check_prometheus_lines(text);
    EXPECT_NE(
        text.find(
            "t23_jobs_total{class=\"prove\",status=\"ok\"} 5"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("# TYPE t23_latency_ms histogram"),
              std::string::npos);
    EXPECT_NE(text.find("t23_latency_ms_count{svc=\"a\"} 5"),
              std::string::npos);
    EXPECT_NE(text.find("t23_latency_ms_bucket{svc=\"a\",le=\"+Inf\"} 5"),
              std::string::npos);

    // Cumulative bucket counts must be nondecreasing and end at count.
    uint64_t prev = 0;
    size_t search = 0;
    while ((search = text.find("t23_latency_ms_bucket", search)) !=
           std::string::npos) {
        size_t sp = text.find(' ', search);
        uint64_t cum = std::strtoull(text.c_str() + sp + 1, nullptr, 10);
        EXPECT_GE(cum, prev);
        prev = cum;
        search = sp;
    }
    EXPECT_EQ(prev, 5u);

    std::string json = obs::render_json(reg.snapshot());
    EXPECT_TRUE(valid_json(json)) << json;
    EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Service integration: exhaustive exposition sweep + rejected-latency.
// ---------------------------------------------------------------------------

runtime::JobRequest
make_request(uint64_t id, size_t mu, uint64_t circuit_seed)
{
    std::mt19937_64 rng(circuit_seed);
    auto [index, wit] = hyperplonk::random_circuit(mu, rng);
    runtime::JobRequest req;
    req.request_id = id;
    req.circuit = std::move(index);
    req.witness = std::move(wit);
    return req;
}

TEST(ObsService, ExpositionExhaustive)
{
    // Snippet-1-style sweep: drive the service through a prove and a
    // verify, then assert every series the instance registered shows up
    // in BOTH rendered expositions — a metric that silently drops out
    // of the export is the exact failure mode this guards against.
    runtime::ServiceConfig cfg;
    cfg.num_workers = 2;
    cfg.total_parallelism = 2;
    cfg.verify_batch_size = 1;
    runtime::ProofService service(cfg);

    auto req = make_request(1, 3, 23100);
    auto proved = service.submit(req).get();
    ASSERT_TRUE(proved.ok()) << proved.error;

    runtime::KeyCache cache(2, cfg.srs_seed);
    auto keys = cache.get_or_create(req.circuit).first;
    runtime::VerifyRequest vreq;
    vreq.request_id = 2;
    vreq.vk = hyperplonk::serde::serialize_verifying_key(*keys.vk);
    vreq.public_inputs = req.witness.public_inputs(req.circuit);
    vreq.proof = proved.proof;
    auto verified = service.submit(vreq).get();
    EXPECT_TRUE(verified.ok()) << verified.error;
    service.shutdown();

    auto series = service.telemetry_series();
    // 6 latency + 2 queue + 2 active + 2 flush_reason + 2 verdicts
    // + 2 modmul + 7 singles + 4 gauges = 27 — keep in lockstep with
    // ProofService::register_telemetry.
    EXPECT_EQ(series.size(), 27u) << "register_telemetry drifted";

    auto snap = obs::MetricsRegistry::global().snapshot();
    std::string prom = obs::render_prometheus_text(snap);
    std::string json = obs::render_json(snap);
    EXPECT_TRUE(valid_json(json));

    for (const std::string &full : series) {
        const obs::MetricSnapshot *m = nullptr;
        for (const auto &cand : snap.metrics) {
            if (cand.full_name() == full) {
                m = &cand;
                break;
            }
        }
        ASSERT_NE(m, nullptr) << full << " not in the snapshot";
        // name{labels} -> the concrete exposition tokens per kind.
        size_t brace = full.find('{');
        std::string name = full.substr(0, brace);
        std::string labels =
            brace == std::string::npos ? "" : full.substr(brace);
        std::string prom_token =
            m->kind == obs::MetricKind::histogram
                ? name + "_count" + labels + " "
                : name + labels + " ";
        EXPECT_NE(prom.find(prom_token), std::string::npos)
            << full << " missing from Prometheus text";
        EXPECT_NE(json.find("\"name\":\"" + name + "\""),
                  std::string::npos)
            << full << " missing from JSON";
    }

    // Process-wide (non-service) series must be in both expositions
    // too: the build-info identity gauge registered by global() and the
    // trace-ring health series the global recorder exports.
    for (const char *name :
         {"zkspeed_build_info", "zkspeed_trace_ring_spans",
          "zkspeed_trace_spans_dropped_total"}) {
        EXPECT_NE(prom.find(name), std::string::npos)
            << name << " missing from Prometheus text";
        EXPECT_NE(json.find(std::string("\"name\":\"") + name + "\""),
                  std::string::npos)
            << name << " missing from JSON";
    }

    // And the reverse direction: the service's own view must agree with
    // the registry (the derived-struct reconstruction cannot drift).
    auto m = service.metrics();
    EXPECT_EQ(m.prove_class.jobs_ok, 1u);
    EXPECT_EQ(m.verify_class.jobs_ok, 1u);
    EXPECT_EQ(m.verify_batches.batches, 1u);
    EXPECT_EQ(m.verify_batches.proofs_accepted, 1u);
    EXPECT_GT(m.proof_bytes_total, 0u);
    const auto *lat = snap.find(
        "zkspeed_job_latency_ms",
        {{"service", service.instance_label()},
         {"class", "prove"},
         {"status", "ok"}});
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->hist.count, 1u);
    EXPECT_DOUBLE_EQ(lat->hist.sum, m.prove_class.sum_latency_ms);
}

TEST(ObsService, RejectedJobsKeepTheirLatency)
{
    // ClassMetrics used to drop the latency of every non-ok job; the
    // status-labelled histogram must record rejected jobs too.
    runtime::ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.total_parallelism = 1;
    runtime::ProofService service(cfg);

    // Perturb an output wire at a gate with an active q_O selector
    // (padding slots are unconstrained, so pick carefully).
    auto bad = make_request(3, 3, 23200);
    bool broke = false;
    for (size_t i = 0; i < bad.circuit.q_o.size() && !broke; ++i) {
        if (!bad.circuit.q_o[i].is_zero()) {
            bad.witness.w[2][i] += ff::Fr::one();
            broke = true;
        }
    }
    ASSERT_TRUE(broke);
    ASSERT_FALSE(bad.witness.satisfies_gates(bad.circuit));
    auto resp = service.submit(bad).get();
    EXPECT_EQ(resp.status, runtime::JobStatus::unsatisfiable);
    service.shutdown();

    auto m = service.metrics();
    EXPECT_EQ(m.prove_class.jobs_ok, 0u);
    EXPECT_EQ(m.prove_class.jobs_rejected, 1u);

    auto snap = obs::MetricsRegistry::global().snapshot();
    const auto *lat = snap.find(
        "zkspeed_job_latency_ms",
        {{"service", service.instance_label()},
         {"class", "prove"},
         {"status", "rejected"}});
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->hist.count, 1u);
    EXPECT_GT(lat->hist.sum, 0.0) << "rejection latency was dropped";
}

TEST(ObsService, CancelledJobsLandInFailedHistogram)
{
    runtime::ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.start_paused = true;  // never started: shutdown cancels the job
    runtime::ProofService service(cfg);
    auto fut = service.submit(make_request(4, 3, 23300));
    service.shutdown();
    EXPECT_EQ(fut.get().status, runtime::JobStatus::cancelled);
    EXPECT_EQ(service.metrics().prove_class.jobs_failed, 1u);
}

// ---------------------------------------------------------------------------
// Profiler hot path (satellite 1): concurrent recording.
// ---------------------------------------------------------------------------

TEST(ObsProfiler, TwoConcurrentRecordersNeverCorrupt)
{
    // The old Profiler serialised concurrent provers on one global
    // mutex (string copy + map lookup per record). The sharded path
    // must produce exact totals under 2-way concurrency — this is the
    // 2-prover recording pattern with the prover math stripped out.
    constexpr int kCalls = 50000;
    auto worker = [](int t) {
        auto &p = hyperplonk::Profiler::instance();
        for (int k = 0; k < kCalls; ++k) {
            p.record("t23 kernel A", 3, 64, 32, 1e-7);
            if (k % 2 == t) p.record("t23 kernel B", 1, 8, 8, 1e-7);
        }
    };
    std::thread a(worker, 0), b(worker, 1);
    a.join();
    b.join();

    auto kernels = hyperplonk::Profiler::instance().kernels();
    ASSERT_TRUE(kernels.count("t23 kernel A"));
    ASSERT_TRUE(kernels.count("t23 kernel B"));
    const auto &ka = kernels["t23 kernel A"];
    EXPECT_EQ(ka.calls, uint64_t(2 * kCalls));
    EXPECT_EQ(ka.modmuls, uint64_t(2 * kCalls) * 3);
    EXPECT_EQ(ka.bytes_in, uint64_t(2 * kCalls) * 64);
    EXPECT_EQ(ka.bytes_out, uint64_t(2 * kCalls) * 32);
    EXPECT_EQ(kernels["t23 kernel B"].calls, uint64_t(kCalls));
    EXPECT_GT(ka.arithmetic_intensity(), 0.0);
}

TEST(ObsService, TwoConcurrentProversRecordEveryJob)
{
    // End-to-end flavour of the same satellite: two workers prove
    // concurrently; every job must land in the registry exactly once.
    runtime::ServiceConfig cfg;
    cfg.num_workers = 2;
    cfg.total_parallelism = 2;
    runtime::ProofService service(cfg);
    constexpr int kJobs = 6;
    std::vector<std::future<runtime::JobResponse>> futs;
    for (int k = 0; k < kJobs; ++k) {
        futs.push_back(
            service.submit(make_request(uint64_t(k), 3, 23400 + k)));
    }
    for (auto &f : futs) EXPECT_TRUE(f.get().ok());
    service.shutdown();
    auto m = service.metrics();
    EXPECT_EQ(m.prove_class.jobs_ok, uint64_t(kJobs));
    EXPECT_GT(m.modmul_fr, 0u);
    // Kernel profiles from both workers folded into the registry.
    auto kernels = hyperplonk::Profiler::instance().kernels();
    EXPECT_TRUE(kernels.count("Witness MSMs"));
}

}  // namespace
