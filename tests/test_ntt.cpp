/**
 * @file
 * NTT tests: root orders, forward/inverse round trips, agreement with
 * naive evaluation, and the convolution theorem.
 */
#include <gtest/gtest.h>

#include <random>

#include "ff/ntt.hpp"

namespace {

using zkspeed::ff::Fr;
using zkspeed::ff::NttDomain;

TEST(Ntt, TwoAdicRootHasExactOrder)
{
    Fr c = NttDomain::two_adic_root();
    Fr probe = c;
    for (int i = 0; i < 31; ++i) probe = probe.square();
    EXPECT_FALSE(probe.is_one()) << "order must be exactly 2^32";
    EXPECT_EQ(probe.square(), Fr::one()) << "order must divide 2^32";
    EXPECT_EQ(probe, -Fr::one()) << "c^(2^31) is the square root of 1";
}

TEST(Ntt, DomainRootOrders)
{
    for (size_t log_n : {1u, 4u, 10u}) {
        NttDomain d(log_n);
        Fr w = d.root();
        EXPECT_EQ(w.pow(uint64_t(d.size())), Fr::one());
        EXPECT_FALSE(w.pow(uint64_t(d.size() / 2)).is_one());
    }
}

class NttRoundTrip : public ::testing::TestWithParam<size_t>
{
};

TEST_P(NttRoundTrip, InverseUndoesForward)
{
    NttDomain d(GetParam());
    std::mt19937_64 rng(500 + GetParam());
    std::vector<Fr> a(d.size());
    for (auto &x : a) x = Fr::random(rng);
    auto orig = a;
    d.forward(a);
    EXPECT_NE(a, orig);
    d.inverse(a);
    EXPECT_EQ(a, orig);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NttRoundTrip,
                         ::testing::Values(1, 2, 3, 6, 10, 12));

TEST(Ntt, MatchesNaiveEvaluation)
{
    // forward(coeffs)[k] == poly(root^k).
    NttDomain d(4);
    std::mt19937_64 rng(501);
    std::vector<Fr> coeffs(d.size());
    for (auto &c : coeffs) c = Fr::random(rng);
    auto evals = coeffs;
    d.forward(evals);
    Fr wk = Fr::one();
    for (size_t k = 0; k < d.size(); ++k) {
        Fr acc = Fr::zero(), pw = Fr::one();
        for (const auto &c : coeffs) {
            acc += c * pw;
            pw *= wk;
        }
        EXPECT_EQ(evals[k], acc) << "k=" << k;
        wk *= d.root();
    }
}

TEST(Ntt, ConvolutionTheorem)
{
    // (1 + 2x)(3 + x + x^2) = 3 + 7x + 3x^2 + 2x^3.
    NttDomain d(3);
    std::vector<Fr> a = {Fr::from_uint(1), Fr::from_uint(2)};
    std::vector<Fr> b = {Fr::from_uint(3), Fr::from_uint(1),
                         Fr::from_uint(1)};
    auto c = d.multiply(a, b);
    EXPECT_EQ(c[0], Fr::from_uint(3));
    EXPECT_EQ(c[1], Fr::from_uint(7));
    EXPECT_EQ(c[2], Fr::from_uint(3));
    EXPECT_EQ(c[3], Fr::from_uint(2));
    for (size_t i = 4; i < c.size(); ++i) EXPECT_TRUE(c[i].is_zero());
}

TEST(Ntt, RandomConvolutionMatchesSchoolbook)
{
    std::mt19937_64 rng(502);
    NttDomain d(6);
    std::vector<Fr> a(20), b(30);
    for (auto &x : a) x = Fr::random(rng);
    for (auto &x : b) x = Fr::random(rng);
    auto fast = d.multiply(a, b);
    std::vector<Fr> slow(d.size(), Fr::zero());
    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = 0; j < b.size(); ++j) {
            slow[i + j] += a[i] * b[j];
        }
    }
    EXPECT_EQ(fast, slow);
}

TEST(Ntt, ModmulCountIsNLogN)
{
    // The motivating complexity claim: forward NTT costs ~ (n/2) log n
    // multiplications, vs O(n) for one SumCheck pass.
    NttDomain d(10);
    std::vector<Fr> a(d.size(), Fr::one());
    zkspeed::ff::ModmulScope scope;
    d.forward(a);
    uint64_t muls = scope.fr_delta();
    uint64_t n = d.size();
    // Each butterfly costs one data mul plus one twiddle update, so the
    // total is between (n/2) log n and n log n.
    EXPECT_GE(muls, n / 2 * 10);
    EXPECT_LE(muls, n * 10 + 64);
}

}  // namespace
