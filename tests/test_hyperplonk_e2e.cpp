/**
 * @file
 * End-to-end HyperPlonk tests: prove + verify on builder and random
 * circuits, pairing-mode verification, and exhaustive tamper rejection.
 */
#include <gtest/gtest.h>

#include <random>

#include "hyperplonk/prover.hpp"

namespace {

using namespace zkspeed::hyperplonk;
using zkspeed::ff::Fr;
using zkspeed::pcs::Srs;
namespace curve = zkspeed::curve;

struct E2eContext {
    ProvingKey pk;
    VerifyingKey vk;
    Witness wit;
    std::vector<Fr> publics;
};

E2eContext
make_setup(size_t mu, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    auto [index, wit] = random_circuit(mu, rng);
    auto srs = std::make_shared<Srs>(Srs::generate(mu, rng));
    auto [pk, vk] = keygen(std::move(index), srs);
    std::vector<Fr> publics = wit.public_inputs(pk.index);
    return {std::move(pk), std::move(vk), std::move(wit),
            std::move(publics)};
}

class E2eTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(E2eTest, ProveAndVerifyRandomCircuit)
{
    E2eContext s = make_setup(GetParam(), 80 + GetParam());
    Proof proof = prove(s.pk, s.wit);
    EXPECT_TRUE(verify(s.vk, s.publics, proof, PcsCheckMode::ideal));
}

INSTANTIATE_TEST_SUITE_P(Sizes, E2eTest, ::testing::Values(3, 4, 5, 6, 8));

TEST(E2e, PairingModeVerifies)
{
    E2eContext s = make_setup(4, 90);
    Proof proof = prove(s.pk, s.wit);
    EXPECT_TRUE(verify(s.vk, s.publics, proof, PcsCheckMode::pairing));
}

TEST(E2e, BuilderCircuitProves)
{
    CircuitBuilder cb;
    // Prove knowledge of x,y with (x + y) * x == 77 and x public.
    Var x = cb.add_public_input(Fr::from_uint(7));
    Var y = cb.add_variable(Fr::from_uint(4));
    Var s = cb.add_addition(x, y);
    Var p = cb.add_multiplication(s, x);
    cb.assert_constant(p, Fr::from_uint(77));
    auto [index, wit] = cb.build(3);
    ASSERT_TRUE(wit.satisfies_gates(index));

    std::mt19937_64 rng(91);
    auto srs = std::make_shared<Srs>(Srs::generate(index.num_vars, rng));
    auto [pk, vk] = keygen(std::move(index), srs);
    Proof proof = prove(pk, wit);
    auto publics = wit.public_inputs(pk.index);
    EXPECT_TRUE(verify(vk, publics, proof));
    // Wrong public input must fail.
    std::vector<Fr> bad = publics;
    bad[0] += Fr::one();
    EXPECT_FALSE(verify(vk, bad, proof));
}

TEST(E2e, ProofSizeIsSuccinct)
{
    E2eContext s = make_setup(8, 92);
    Proof proof = prove(s.pk, s.wit);
    // HyperPlonk proofs are a few KB (paper: ~5 KB); ours must be within
    // the same order, and crucially much smaller than the witness.
    size_t witness_bytes = 3 * (size_t(1) << 8) * 32;
    EXPECT_LT(proof.size_bytes(), witness_bytes / 2);
    EXPECT_LT(proof.size_bytes(), 16 * 1024u);
}

TEST(E2e, RejectsCheatingWitness)
{
    E2eContext s = make_setup(5, 93);
    // Corrupt the witness so a gate is violated; the prover will emit
    // *some* proof but the verifier must reject it.
    Witness bad = s.wit;
    bad.w[2][7] += Fr::one();
    ASSERT_FALSE(bad.satisfies_gates(s.pk.index));
    Proof proof = prove(s.pk, bad);
    EXPECT_FALSE(verify(s.vk, s.publics, proof));
}

TEST(E2e, RejectsBrokenWiring)
{
    E2eContext s = make_setup(5, 94);
    // Find a slot that is copy-constrained and break only the copy.
    Mle id = s.pk.index.identity_mle(1);
    size_t victim = SIZE_MAX;
    for (size_t i = 0; i < s.pk.index.num_gates(); ++i) {
        if (!(s.pk.index.sigma[1][i] == id[i])) {
            victim = i;
            break;
        }
    }
    ASSERT_NE(victim, SIZE_MAX);
    Witness bad = s.wit;
    // Keep the gate satisfied by recomputing w3 but break the copy.
    bad.w[1][victim] += Fr::one();
    bad.w[2][victim] = s.pk.index.q_l[victim] * bad.w[0][victim] +
                       s.pk.index.q_r[victim] * bad.w[1][victim] +
                       s.pk.index.q_m[victim] * bad.w[0][victim] *
                           bad.w[1][victim] +
                       s.pk.index.q_c[victim];
    Proof proof = prove(s.pk, bad);
    EXPECT_FALSE(verify(s.vk, s.publics, proof));
}

/** Every prover message is attacked in turn; all must be rejected. */
class TamperTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        s_ = std::make_unique<E2eContext>(make_setup(4, 95));
        proof_ = prove(s_->pk, s_->wit);
        ASSERT_TRUE(verify(s_->vk, s_->publics, proof_));
    }

    std::unique_ptr<E2eContext> s_;
    Proof proof_;

    bool
    verify_tampered(const Proof &p)
    {
        return verify(s_->vk, s_->publics, p);
    }

    static curve::G1Affine
    bump(const curve::G1Affine &p)
    {
        return (curve::G1::from_affine(p) + zkspeed::curve::g1_generator())
            .to_affine();
    }
};

TEST_F(TamperTest, WitnessCommitment)
{
    for (size_t j = 0; j < 3; ++j) {
        Proof p = proof_;
        p.witness_comms[j] = bump(p.witness_comms[j]);
        EXPECT_FALSE(verify_tampered(p)) << "witness comm " << j;
    }
}

TEST_F(TamperTest, PhiPiCommitments)
{
    {
        Proof p = proof_;
        p.phi_comm = bump(p.phi_comm);
        EXPECT_FALSE(verify_tampered(p));
    }
    {
        Proof p = proof_;
        p.pi_comm = bump(p.pi_comm);
        EXPECT_FALSE(verify_tampered(p));
    }
}

TEST_F(TamperTest, SumcheckMessages)
{
    {
        Proof p = proof_;
        p.zerocheck.round_evals[0][0] += Fr::one();
        EXPECT_FALSE(verify_tampered(p));
    }
    {
        Proof p = proof_;
        p.permcheck.round_evals[1][2] += Fr::one();
        EXPECT_FALSE(verify_tampered(p));
    }
    {
        Proof p = proof_;
        p.opencheck.round_evals[2][1] += Fr::one();
        EXPECT_FALSE(verify_tampered(p));
    }
}

TEST_F(TamperTest, EveryBatchEvaluation)
{
    auto flat = proof_.evals.flatten();
    for (size_t c = 0; c < flat.size(); ++c) {
        Proof p = proof_;
        // Perturb claim c through the structured fields.
        if (c < 8) p.evals.at_gate[c] += Fr::one();
        else if (c < 16) p.evals.at_perm[c - 8] += Fr::one();
        else if (c < 18) p.evals.at_u0[c - 16] += Fr::one();
        else if (c < 20) p.evals.at_u1[c - 18] += Fr::one();
        else if (c == 20) p.evals.pi_at_root += Fr::one();
        else p.evals.w1_at_pub += Fr::one();
        EXPECT_FALSE(verify_tampered(p)) << "claim " << c;
    }
}

TEST_F(TamperTest, OpeningProofAndValue)
{
    {
        Proof p = proof_;
        p.gprime_value += Fr::one();
        EXPECT_FALSE(verify_tampered(p));
    }
    for (size_t k = 0; k < proof_.gprime_proof.quotients.size(); ++k) {
        Proof p = proof_;
        p.gprime_proof.quotients[k] = bump(p.gprime_proof.quotients[k]);
        EXPECT_FALSE(verify_tampered(p)) << "quotient " << k;
    }
}

TEST_F(TamperTest, ProofsAreNotTransferable)
{
    // A proof for one circuit/witness must not verify under another vk.
    E2eContext other = make_setup(4, 96);
    EXPECT_FALSE(verify(other.vk, other.publics, proof_));
}

}  // namespace
