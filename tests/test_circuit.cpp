/**
 * @file
 * Circuit builder, gate/wiring satisfaction and permutation-oracle tests.
 */
#include <gtest/gtest.h>

#include <random>

#include "hyperplonk/circuit.hpp"
#include "hyperplonk/permutation.hpp"

namespace {

using namespace zkspeed::hyperplonk;
using zkspeed::ff::Fr;

TEST(CircuitBuilder, ArithmeticGatesSatisfy)
{
    CircuitBuilder cb;
    Var x = cb.add_public_input(Fr::from_uint(3));
    Var y = cb.add_variable(Fr::from_uint(5));
    Var s = cb.add_addition(x, y);        // 8
    Var p = cb.add_multiplication(s, y);  // 40
    Var d = cb.add_subtraction(p, x);     // 37
    Var e = cb.add_constant_addition(d, Fr::from_uint(5));  // 42
    cb.assert_constant(e, Fr::from_uint(42));
    EXPECT_EQ(cb.value(e), Fr::from_uint(42));

    auto [index, wit] = cb.build();
    EXPECT_TRUE(wit.satisfies_gates(index));
    EXPECT_TRUE(wit.satisfies_wiring(index));
    EXPECT_EQ(index.num_public, 1u);
    EXPECT_EQ(wit.public_inputs(index)[0], Fr::from_uint(3));
}

TEST(CircuitBuilder, BooleanAndEqualityGates)
{
    CircuitBuilder cb;
    Var b0 = cb.add_variable(Fr::zero());
    Var b1 = cb.add_variable(Fr::one());
    cb.assert_boolean(b0);
    cb.assert_boolean(b1);
    Var s = cb.add_addition(b0, b1);
    cb.assert_equal(s, b1);
    auto [index, wit] = cb.build();
    EXPECT_TRUE(wit.satisfies_gates(index));
    EXPECT_TRUE(wit.satisfies_wiring(index));
}

TEST(CircuitBuilder, UnsatisfiedGateDetected)
{
    CircuitBuilder cb;
    Var x = cb.add_variable(Fr::from_uint(2));
    cb.assert_constant(x, Fr::from_uint(3));  // false on purpose
    auto [index, wit] = cb.build();
    EXPECT_FALSE(wit.satisfies_gates(index));
}

TEST(CircuitBuilder, PadsToPowerOfTwo)
{
    CircuitBuilder cb;
    Var x = cb.add_variable(Fr::one());
    for (int i = 0; i < 5; ++i) x = cb.add_addition(x, x);
    auto [index, wit] = cb.build(2);
    EXPECT_EQ(index.num_gates(), 8u);  // 5 gates -> 2^3
    EXPECT_TRUE(wit.satisfies_gates(index));
    EXPECT_TRUE(wit.satisfies_wiring(index));
}

TEST(CircuitIndex, IdentityMleValues)
{
    std::mt19937_64 rng(51);
    auto [index, wit] = random_circuit(4, rng);
    for (size_t j = 0; j < 3; ++j) {
        Mle id = index.identity_mle(j);
        for (size_t i = 0; i < 16; ++i) {
            EXPECT_EQ(id[i], Fr::from_uint(j * 16 + i));
        }
    }
}

class RandomCircuitTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(RandomCircuitTest, SatisfiesGatesAndWiring)
{
    std::mt19937_64 rng(60 + GetParam());
    auto [index, wit] = random_circuit(GetParam(), rng);
    EXPECT_TRUE(wit.satisfies_gates(index));
    EXPECT_TRUE(wit.satisfies_wiring(index));
    // The permutation must not be trivial (copy constraints exist).
    bool nontrivial = false;
    for (size_t j = 0; j < 3 && !nontrivial; ++j) {
        Mle id = index.identity_mle(j);
        nontrivial = !(index.sigma[j] == id);
    }
    EXPECT_TRUE(nontrivial);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomCircuitTest,
                         ::testing::Values(3, 4, 6, 8, 10));

TEST(RandomCircuit, WitnessSparsityStatistics)
{
    std::mt19937_64 rng(52);
    auto [index, wit] = random_circuit(12, rng, 0.1);
    size_t zeros = 0, ones = 0, dense = 0, total = 0;
    for (size_t j = 0; j < 2; ++j) {  // inputs follow the distribution
        for (size_t i = 0; i < index.num_gates(); ++i) {
            const Fr &v = wit.w[j][i];
            if (v.is_zero()) ++zeros;
            else if (v.is_one()) ++ones;
            else ++dense;
            ++total;
        }
    }
    // Paper Section 6.2: ~90% of witness scalars are 0/1.
    double sparse_frac = double(zeros + ones) / double(total);
    EXPECT_GT(sparse_frac, 0.80);
    EXPECT_LT(double(dense) / double(total), 0.25);
}

TEST(PermutationOracles, FractionAndProductIdentities)
{
    std::mt19937_64 rng(53);
    auto [index, wit] = random_circuit(5, rng);
    Fr beta = Fr::random(rng), gamma = Fr::random(rng);
    auto o = build_permutation_oracles(index, wit, beta, gamma);
    const size_t n = index.num_gates();

    // phi * D1 D2 D3 == N1 N2 N3 elementwise.
    for (size_t i = 0; i < n; ++i) {
        Fr d = (*o.d_parts[0])[i] * (*o.d_parts[1])[i] * (*o.d_parts[2])[i];
        Fr nn = (*o.n_parts[0])[i] * (*o.n_parts[1])[i] *
                (*o.n_parts[2])[i];
        EXPECT_EQ((*o.phi)[i] * d, nn) << i;
    }
    // Tree consistency: pi == p1 * p2 everywhere (including the root
    // slot, which encodes grand-product == 1).
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ((*o.pi)[i], (*o.p1)[i] * (*o.p2)[i]) << i;
    }
    // Grand product of phi over the hypercube is 1 for a valid wiring.
    Fr prod = Fr::one();
    for (size_t i = 0; i < n; ++i) prod *= (*o.phi)[i];
    EXPECT_TRUE(prod.is_one());
    // The tree root holds the grand product.
    EXPECT_TRUE((*o.pi)[n - 2].is_one());
}

TEST(PermutationOracles, BrokenWiringBreaksProduct)
{
    std::mt19937_64 rng(54);
    auto [index, wit] = random_circuit(5, rng);
    // Corrupt one witness value that participates in a copy constraint.
    Mle id = index.identity_mle(0);
    size_t victim = SIZE_MAX;
    for (size_t i = 0; i < index.num_gates(); ++i) {
        if (!(index.sigma[0][i] == id[i])) {
            victim = i;
            break;
        }
    }
    ASSERT_NE(victim, SIZE_MAX);
    wit.w[0][victim] += Fr::one();
    Fr beta = Fr::random(rng), gamma = Fr::random(rng);
    auto o = build_permutation_oracles(index, wit, beta, gamma);
    Fr prod = Fr::one();
    for (size_t i = 0; i < index.num_gates(); ++i) prod *= (*o.phi)[i];
    EXPECT_FALSE(prod.is_one());
    EXPECT_FALSE((*o.pi)[index.num_gates() - 2].is_one());
}

TEST(PermutationOracles, ChildEvaluationIdentity)
{
    // p1/p2 evaluations derive from phi/pi at the child points.
    std::mt19937_64 rng(55);
    auto [index, wit] = random_circuit(4, rng);
    auto o = build_permutation_oracles(index, wit, Fr::random(rng),
                                       Fr::random(rng));
    const size_t mu = 4;
    std::vector<Fr> x(mu);
    for (auto &v : x) v = Fr::random(rng);
    std::vector<Fr> u0(mu), u1(mu);
    u0[0] = Fr::zero();
    u1[0] = Fr::one();
    for (size_t k = 1; k < mu; ++k) u0[k] = u1[k] = x[k - 1];
    Fr p1 = eval_p1_from_children(x[mu - 1], o.phi->evaluate(u0),
                                  o.pi->evaluate(u0));
    Fr p2 = eval_p1_from_children(x[mu - 1], o.phi->evaluate(u1),
                                  o.pi->evaluate(u1));
    EXPECT_EQ(p1, o.p1->evaluate(x));
    EXPECT_EQ(p2, o.p2->evaluate(x));
}

}  // namespace
