/**
 * @file
 * Simulator model tests: unit invariants, calibration against published
 * numbers, Pareto properties and cycle-sim/analytic agreement.
 */
#include <gtest/gtest.h>

#include "sim/chip.hpp"
#include "sim/cpu_model.hpp"
#include "sim/dse.hpp"

namespace {

using namespace zkspeed::sim;

TEST(MsmModel, GroupedAggregationBeatsSzkp)
{
    // Figure 5: grouped aggregation cuts latency by ~92% on average.
    double total_reduction = 0;
    for (int w : {7, 8, 9, 10}) {
        uint64_t naive =
            bucket_aggregation_cycles(w, Aggregation::szkp_serial);
        uint64_t ours =
            bucket_aggregation_cycles(w, Aggregation::zkspeed_grouped);
        EXPECT_LT(ours, naive) << "window " << w;
        total_reduction += 1.0 - double(ours) / double(naive);
    }
    double avg = total_reduction / 4.0;
    EXPECT_GT(avg, 0.80) << "average reduction should be ~92%";
    // SZKP latency grows steeply with W (serial in bucket count).
    EXPECT_GT(bucket_aggregation_cycles(10, Aggregation::szkp_serial),
              4 * bucket_aggregation_cycles(7, Aggregation::szkp_serial));
}

TEST(MsmModel, DenseCyclesScaleWithPointsAndPes)
{
    DesignConfig cfg = DesignConfig::paper_default();
    MsmUnit msm(cfg);
    uint64_t t1 = msm.dense_cycles(1 << 20, 1);
    uint64_t t16 = msm.dense_cycles(1 << 20, 16);
    EXPECT_GT(t1, t16);
    EXPECT_GT(double(t1) / double(t16), 8.0) << "near-linear PE scaling";
    EXPECT_GT(msm.dense_cycles(1 << 21, 16), msm.dense_cycles(1 << 20, 16));
    // Small MSMs are dominated by aggregation + combine fixed costs, the
    // motivation for Section 4.2.2.
    uint64_t small = msm.dense_cycles(32, 16);
    EXPECT_GT(small, msm.dense_cycles(1, 16) / 2);
}

TEST(MsmModel, SparseCheaperThanDense)
{
    DesignConfig cfg = DesignConfig::paper_default();
    MsmUnit msm(cfg);
    uint64_t sparse = msm.sparse_cycles(1 << 20, 0.45, 0.10, 16);
    uint64_t dense = msm.dense_cycles(1 << 20, 16);
    EXPECT_LT(sparse, dense / 2);
    EXPECT_LT(msm.sparse_bytes(1 << 20, 0.45, 0.10),
              msm.dense_bytes(1 << 20));
}

TEST(MsmModel, CycleSimMatchesAnalyticBucketPhase)
{
    DesignConfig cfg = DesignConfig::paper_default();
    MsmUnit msm(cfg);
    const uint64_t n = 1 << 16;
    uint64_t simulated = msm.simulate_bucket_phase(n, 16, 7);
    // Analytic per-window share: points/pes with conflict factor.
    double analytic = double(n) / 16.0;
    double ratio = double(simulated) / analytic;
    EXPECT_GT(ratio, 0.95);
    EXPECT_LT(ratio, 1.40) << "conflict stalls should stay modest";
}

TEST(FracMleModel, ImbalanceAndAreaMinimalAt64)
{
    // Figure 8: both curves bottom out at b = 64.
    uint64_t best_imb = UINT64_MAX;
    double best_area = 1e300;
    int best_imb_b = 0, best_area_b = 0;
    for (int lb = 1; lb <= 8; ++lb) {
        int b = 1 << lb;
        if (FracMleUnit::latency_imbalance(b) < best_imb) {
            best_imb = FracMleUnit::latency_imbalance(b);
            best_imb_b = b;
        }
        if (FracMleUnit::standalone_area(b) < best_area) {
            best_area = FracMleUnit::standalone_area(b);
            best_area_b = b;
        }
    }
    EXPECT_EQ(best_imb_b, 64);
    EXPECT_EQ(best_area_b, 64);
    // Paper: 256 inverse units at b=2 vs ~12 at b=64.
    EXPECT_GE(FracMleUnit::inverse_units_needed(2), 200);
    EXPECT_LE(FracMleUnit::inverse_units_needed(64), 16);
}

TEST(SumcheckModel, BandwidthBoundAtHighPeCount)
{
    // Figure 11: SumCheck speedup saturates once bandwidth is the
    // bottleneck; MSM keeps scaling with compute.
    DesignConfig lo = DesignConfig::paper_default();
    lo.bandwidth_gbps = 512;
    DesignConfig hi = lo;
    hi.bandwidth_gbps = 4096;
    for (auto *cfg : {&lo, &hi}) {
        cfg->sumcheck_pes = 16;
        cfg->mle_update_pes = 11;
        cfg->mle_update_modmuls = 16;
    }
    auto shape = SumcheckShape::permcheck(20);
    uint64_t t_lo =
        SumcheckUnit(lo).run(shape, lo.bandwidth_gbps).cycles;
    uint64_t t_hi =
        SumcheckUnit(hi).run(shape, hi.bandwidth_gbps).cycles;
    EXPECT_GT(double(t_lo) / double(t_hi), 2.0)
        << "8x bandwidth should speed the memory-bound SumCheck >2x";

    // With 1 PE the low-bandwidth run is compute-bound instead.
    DesignConfig one = lo;
    one.sumcheck_pes = 1;
    one.mle_update_pes = 1;
    one.mle_update_modmuls = 1;
    auto c = SumcheckUnit(one).run(shape, one.bandwidth_gbps);
    EXPECT_GT(c.compute_cycles, t_lo / 4);
}

TEST(ChipModel, PaperDefaultAreaMatchesTable5)
{
    Chip chip(DesignConfig::paper_default());
    AreaBreakdown a = chip.area();
    // Table 5 at 7 nm: MSM 105.64, SumCheck 24.96, MLE Combine 9.56,
    // MLE Update 5.84, N&D 1.35, total 366.46.
    EXPECT_NEAR(a.msm, 105.64, 8.0);
    EXPECT_NEAR(a.sumcheck, 24.96, 2.0);
    EXPECT_NEAR(a.mle_combine, 9.56, 1.0);
    EXPECT_NEAR(a.mle_update, 5.84, 0.6);
    EXPECT_NEAR(a.construct_nd, 1.35, 0.2);
    EXPECT_NEAR(a.hbm_phy, 59.2, 0.1);
    EXPECT_NEAR(a.total(), 366.46, 55.0);
    // Compute vs memory split is in Table 5's proportions.
    EXPECT_NEAR(a.compute_total(), 163.5, 25.0);
}

TEST(ChipModel, PaperDefaultRuntimeNearTable3)
{
    Chip chip(DesignConfig::paper_default());
    // Table 3: 11.405 ms at 2^20 gates, 1.984 ms at 2^17.
    double t20 = chip.run(Workload::mock(20)).runtime_ms;
    EXPECT_GT(t20, 11.405 / 2.0);
    EXPECT_LT(t20, 11.405 * 2.0);
    double t17 = chip.run(Workload::mock(17)).runtime_ms;
    EXPECT_GT(t17, 1.984 / 2.5);
    EXPECT_LT(t17, 1.984 * 2.5);
    // Scaling is roughly linear in gate count.
    EXPECT_GT(t20 / t17, 4.0);
    EXPECT_LT(t20 / t17, 12.0);
}

TEST(ChipModel, StepBreakdownShapeMatchesFigure12)
{
    // Figure 12b: Wire Identity is the largest step (48.5%), then Batch
    // Evals & Poly Open (35.4%); Witness and Gate Identity are small.
    Chip chip(DesignConfig::paper_default());
    auto rep = chip.run(Workload::mock(20));
    auto &s = rep.step_cycles;
    EXPECT_GT(s["Wire Identity"], s["Witness MSMs"]);
    EXPECT_GT(s["Wire Identity"], s["Gate Identity"]);
    EXPECT_GT(s["Batch Evals & Poly Open"], s["Witness MSMs"]);
    double wire_share =
        double(s["Wire Identity"]) / double(rep.total_cycles);
    EXPECT_GT(wire_share, 0.30);
    EXPECT_LT(wire_share, 0.65);
}

TEST(ChipModel, UtilizationAndPowerSane)
{
    Chip chip(DesignConfig::paper_default());
    auto rep = chip.run(Workload::mock(20));
    for (const auto &[unit, u] : rep.utilization) {
        EXPECT_GE(u, 0.0) << unit;
        EXPECT_LE(u, 1.0) << unit;
    }
    // MSM is the most-utilised major unit (Figure 13).
    EXPECT_GT(rep.utilization.at("MSM"), rep.utilization.at("FracMLE"));
    EXPECT_GT(rep.utilization.at("MSM"),
              rep.utilization.at("Construct N&D"));
    // Total average power within 2x of Table 5's 170.88 W.
    EXPECT_GT(rep.total_power, 170.88 / 2);
    EXPECT_LT(rep.total_power, 170.88 * 2);
}

TEST(ChipModel, MoreBandwidthNeverHurts)
{
    Workload wl = Workload::mock(20);
    double prev = 1e300;
    for (double bw : {512.0, 1024.0, 2048.0, 4096.0}) {
        DesignConfig cfg = DesignConfig::paper_default();
        cfg.bandwidth_gbps = bw;
        double t = Chip(cfg).run(wl).runtime_ms;
        EXPECT_LE(t, prev * 1.001) << bw;
        prev = t;
    }
}

TEST(ChipModel, MorePesNeverHurt)
{
    Workload wl = Workload::mock(18);
    double prev = 1e300;
    for (int pes : {1, 2, 4, 8, 16}) {
        DesignConfig cfg = DesignConfig::paper_default();
        cfg.msm_pes_per_core = pes;
        double t = Chip(cfg).run(wl).runtime_ms;
        EXPECT_LE(t, prev * 1.001) << pes;
        prev = t;
    }
}

TEST(CpuModel, AnchorsToTable3)
{
    // The fit must land on the published measurements.
    EXPECT_NEAR(CpuModel::total_ms(17), 1429, 40);
    EXPECT_NEAR(CpuModel::total_ms(20), 8619, 260);
    EXPECT_NEAR(CpuModel::total_ms(23), 74052, 2300);
    // Monotone in problem size.
    for (size_t mu = 17; mu < 24; ++mu) {
        EXPECT_LT(CpuModel::total_ms(mu), CpuModel::total_ms(mu + 1));
    }
    // Kernel shares sum to ~1.
    double sum = 0;
    for (auto &[k, v] : CpuModel::kernel_shares()) sum += v;
    EXPECT_NEAR(sum, 1.0, 0.005);
}

TEST(Dse, ParetoFrontIsNonDominated)
{
    Workload wl = Workload::mock(18);
    auto grid = Dse::grid_for_bandwidth(1024);
    // Sub-sample the grid for test speed.
    std::vector<DesignConfig> sample;
    for (size_t i = 0; i < grid.size(); i += 97) sample.push_back(grid[i]);
    auto pts = Dse::evaluate(sample, wl);
    auto front = Dse::pareto(pts);
    ASSERT_FALSE(front.empty());
    // Strictly decreasing area with increasing runtime.
    for (size_t i = 1; i < front.size(); ++i) {
        EXPECT_GT(front[i].runtime_ms, front[i - 1].runtime_ms);
        EXPECT_LT(front[i].area_mm2, front[i - 1].area_mm2);
    }
    // No sampled point dominates a frontier point.
    for (const auto &f : front) {
        for (const auto &p : pts) {
            bool dominates = p.runtime_ms < f.runtime_ms &&
                             p.area_mm2 < f.area_mm2;
            EXPECT_FALSE(dominates);
        }
    }
}

TEST(Dse, IsoAreaPickRespectsBudget)
{
    Workload wl = Workload::mock(18);
    auto grid = Dse::grid_for_bandwidth(2048);
    std::vector<DesignConfig> sample;
    for (size_t i = 0; i < grid.size(); i += 53) sample.push_back(grid[i]);
    for (auto &c : sample) c.sram_target_mu = 18;
    auto front = Dse::pareto(Dse::evaluate(sample, wl));
    auto pick = Dse::pick_iso_area(front, CpuModel::kDieAreaMm2);
    EXPECT_LE(pick.compute_area_mm2, CpuModel::kDieAreaMm2);
    EXPECT_GT(pick.runtime_ms, 0);
}

TEST(Ablations, PublishedSavingsReproduce)
{
    // Section 4.1.4: modmul sharing saves 48.9% per SumCheck PE.
    double unshared = double(kSumcheckPeModmulsUnshared);
    double shared = double(kSumcheckPeModmuls);
    EXPECT_NEAR(1.0 - shared / unshared, 0.489, 0.01);
    // Section 4.5: MLE Combine sharing saves ~41%.
    EXPECT_NEAR(1.0 - MleCombineUnit::area() /
                          MleCombineUnit::area_without_sharing(),
                0.41, 0.01);
    // Section 4.2.1: dropping the dedicated scalar bank saves 18% of
    // the MSM SRAM (3 banks instead of 3.66 effective).
    EXPECT_NEAR(1.0 - 3.0 / 3.66, 0.18, 0.01);
    // Section 4.6: MLE compression saves 10-11x.
    DesignConfig cfg = DesignConfig::paper_default();
    MemorySystem mem(cfg);
    double ratio =
        mem.global_sram_mb_uncompressed() / mem.global_sram_mb();
    EXPECT_GE(ratio, 10.0);
    EXPECT_LE(ratio, 11.5);
    // Section 4.3.3: MTU multifunction reuse saves ~41.6% vs dedicated
    // trees.
    MtuUnit mtu(cfg);
    double saving = 1.0 - mtu.area() / mtu.area_without_reuse();
    EXPECT_GT(saving, 0.40);
}

}  // namespace
