/**
 * @file
 * Property-based sweeps: randomized algebraic laws and protocol
 * invariants exercised across seed/size grids with parameterized gtest.
 *
 * Every seed grid is offset by ZKSPEED_TEST_SEED (default 0), and each
 * randomized test announces its effective seed via SCOPED_TRACE, so any
 * red run reproduces with a single `ZKSPEED_TEST_SEED=<seed> ctest -R
 * test_properties`.
 */
#include <gtest/gtest.h>

#include <random>

#include "hyperplonk/prover.hpp"
#include "pcs/mkzg.hpp"
#include "scenarios/seed.hpp"
#include "sim/chip.hpp"

namespace {

using namespace zkspeed;
using ff::Fr;
using ff::Fq;
using hyperplonk::PcsCheckMode;

/** Base offset applied to every seed grid below. */
const uint64_t kSeedBase = scenarios::test_seed(0);

#define ZKSPEED_TRACE_SEED(seed)                                        \
    SCOPED_TRACE(::testing::Message()                                   \
                 << "rerun with: ZKSPEED_TEST_SEED=" << kSeedBase       \
                 << " ctest -R test_properties  (effective seed "       \
                 << (seed) << ")")

// ---------------------------------------------------------------------
// Field laws over many seeds.
// ---------------------------------------------------------------------
class FieldLaws : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FieldLaws, RandomizedAlgebra)
{
    ZKSPEED_TRACE_SEED(GetParam());
    std::mt19937_64 rng(GetParam());
    for (int i = 0; i < 20; ++i) {
        Fr a = Fr::random(rng), b = Fr::random(rng), c = Fr::random(rng);
        // (a - b) + b == a; a*(b - c) == ab - ac.
        EXPECT_EQ((a - b) + b, a);
        EXPECT_EQ(a * (b - c), a * b - a * c);
        // Fermat inverse is a two-sided inverse.
        if (!a.is_zero()) {
            EXPECT_EQ(a.inverse() * a, Fr::one());
            EXPECT_EQ((a * b).inverse(), a.inverse() * b.inverse());
        }
        // Squaring consistency under addition: (a+b)^2 = a^2+2ab+b^2.
        EXPECT_EQ((a + b).square(),
                  a.square() + (a * b).dbl() + b.square());
        // Exponent laws with random small exponents.
        uint64_t e1 = rng() % 64, e2 = rng() % 64;
        EXPECT_EQ(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldLaws,
                         ::testing::Range<uint64_t>(kSeedBase + 1,
                                                    kSeedBase + 9));

// ---------------------------------------------------------------------
// MSM linearity in the scalar vector.
// ---------------------------------------------------------------------
class MsmLinearity : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MsmLinearity, LinearInScalars)
{
    ZKSPEED_TRACE_SEED(GetParam());
    std::mt19937_64 rng(GetParam());
    const size_t n = 24;
    std::vector<curve::G1Affine> pts(n);
    std::vector<Fr> s(n), t(n), mix(n);
    Fr a = Fr::random(rng), b = Fr::random(rng);
    for (size_t i = 0; i < n; ++i) {
        pts[i] = curve::g1_generator().mul(Fr::random(rng)).to_affine();
        s[i] = Fr::random(rng);
        t[i] = Fr::random(rng);
        mix[i] = a * s[i] + b * t[i];
    }
    curve::G1 lhs = curve::msm(pts, mix);
    curve::G1 rhs = curve::msm(pts, s).mul(a) + curve::msm(pts, t).mul(b);
    EXPECT_EQ(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsmLinearity,
                         ::testing::Range<uint64_t>(kSeedBase + 10,
                                                    kSeedBase + 16));

// ---------------------------------------------------------------------
// PCS: opening value equals direct evaluation at random points, and
// commitments are binding across distinct polynomials.
// ---------------------------------------------------------------------
class PcsProperties
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>>
{
};

TEST_P(PcsProperties, OpeningConsistency)
{
    auto [mu, seed] = GetParam();
    ZKSPEED_TRACE_SEED(seed);
    std::mt19937_64 rng(seed);
    pcs::Srs srs = pcs::Srs::generate(mu, rng);
    mle::Mle f = mle::Mle::random(mu, rng);
    auto comm = pcs::commit(srs, f);
    for (int k = 0; k < 3; ++k) {
        std::vector<Fr> z(mu);
        for (auto &x : z) x = Fr::random(rng);
        auto [proof, value] = pcs::open(srs, f, z);
        EXPECT_EQ(value, f.evaluate(z));
        EXPECT_TRUE(pcs::verify_ideal(srs, comm, z, value, proof));
    }
    // Distinct polynomials get distinct commitments (binding, whp).
    mle::Mle g = f;
    g[0] += Fr::one();
    EXPECT_FALSE(curve::G1::from_affine(pcs::commit(srs, g)) ==
                 curve::G1::from_affine(comm));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PcsProperties,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values(kSeedBase + 21, kSeedBase + 22,
                                         kSeedBase + 23)));

// ---------------------------------------------------------------------
// End-to-end prove/verify across a (size, seed) grid.
// ---------------------------------------------------------------------
class E2eGrid
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>>
{
};

TEST_P(E2eGrid, ProveVerifyAndSingleBitTamper)
{
    auto [mu, seed] = GetParam();
    ZKSPEED_TRACE_SEED(seed);
    std::mt19937_64 rng(seed);
    auto [index, wit] = hyperplonk::random_circuit(mu, rng);
    auto srs =
        std::make_shared<pcs::Srs>(pcs::Srs::generate(mu, rng));
    auto [pk, vk] = hyperplonk::keygen(std::move(index), srs);
    auto proof = hyperplonk::prove(pk, wit);
    auto publics = wit.public_inputs(pk.index);
    ASSERT_TRUE(hyperplonk::verify(vk, publics, proof));
    // Deterministic proving: same inputs, same proof bytes.
    auto proof2 = hyperplonk::prove(pk, wit);
    EXPECT_EQ(proof2.gprime_value, proof.gprime_value);
    EXPECT_EQ(proof2.evals.flatten(), proof.evals.flatten());
    // Random single-field tamper in the batch evals must be rejected.
    auto bad = proof;
    size_t victim = rng() % 8;
    bad.evals.at_perm[victim] += Fr::one();
    EXPECT_FALSE(hyperplonk::verify(vk, publics, bad));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, E2eGrid,
    ::testing::Combine(::testing::Values(3, 4, 5),
                       ::testing::Values(kSeedBase + 31, kSeedBase + 32,
                                         kSeedBase + 33)));

// ---------------------------------------------------------------------
// Production-mode SRS (no trapdoor) still verifies via pairings.
// ---------------------------------------------------------------------
TEST(Pcs, ProductionSrsHasNoTrapdoorButVerifies)
{
    ZKSPEED_TRACE_SEED(kSeedBase + 41);
    std::mt19937_64 rng(kSeedBase + 41);
    pcs::Srs srs = pcs::Srs::generate(3, rng, /*keep_trapdoor=*/false);
    EXPECT_TRUE(srs.trapdoor.empty());
    mle::Mle f = mle::Mle::random(3, rng);
    auto comm = pcs::commit(srs, f);
    std::vector<Fr> z = {Fr::random(rng), Fr::random(rng),
                         Fr::random(rng)};
    auto [proof, value] = pcs::open(srs, f, z);
    EXPECT_TRUE(pcs::verify(srs, comm, z, value, proof));
}

// ---------------------------------------------------------------------
// Simulator: knob monotonicity sweeps.
// ---------------------------------------------------------------------
class SimMonotonicity : public ::testing::TestWithParam<size_t>
{
};

TEST_P(SimMonotonicity, RuntimeMonotoneInResources)
{
    using namespace zkspeed::sim;
    const size_t mu = GetParam();
    Workload wl = Workload::mock(mu);
    DesignConfig base = DesignConfig::paper_default();
    base.sram_target_mu = mu;
    double t_base = Chip(base).run(wl).runtime_ms;
    // Doubling any single resource must not slow the design down.
    {
        DesignConfig c = base;
        c.msm_cores = 2;
        EXPECT_LE(Chip(c).run(wl).runtime_ms, t_base * 1.001);
    }
    {
        DesignConfig c = base;
        c.sumcheck_pes = 4;
        EXPECT_LE(Chip(c).run(wl).runtime_ms, t_base * 1.001);
    }
    {
        DesignConfig c = base;
        c.mle_update_modmuls = 8;
        EXPECT_LE(Chip(c).run(wl).runtime_ms, t_base * 1.001);
    }
    {
        DesignConfig c = base;
        c.frac_pes = 4;
        EXPECT_LE(Chip(c).run(wl).runtime_ms, t_base * 1.001);
    }
    {
        DesignConfig c = base;
        c.bandwidth_gbps = 4096;
        EXPECT_LE(Chip(c).run(wl).runtime_ms, t_base * 1.001);
    }
    // And larger problems always take longer on the same design.
    Workload bigger = Workload::mock(mu + 1);
    EXPECT_GT(Chip(base).run(bigger).runtime_ms, t_base);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimMonotonicity,
                         ::testing::Values(17, 19, 21, 23));

// ---------------------------------------------------------------------
// Hash avalanche property.
// ---------------------------------------------------------------------
TEST(Keccak, AvalancheOnSingleBitFlips)
{
    std::string msg = "the quick brown fox jumps over the lazy dog";
    auto base = hash::sha3_256(msg);
    for (size_t bit : {0u, 7u, 100u, 300u}) {
        std::string flipped = msg;
        flipped[bit / 8] ^= char(1 << (bit % 8));
        auto d = hash::sha3_256(flipped);
        // Hamming distance should be near 128 of 256 bits.
        int dist = 0;
        for (size_t i = 0; i < d.size(); ++i) {
            dist += __builtin_popcount(unsigned(d[i] ^ base[i]));
        }
        EXPECT_GT(dist, 80) << "bit " << bit;
        EXPECT_LT(dist, 176) << "bit " << bit;
    }
}

}  // namespace
