/**
 * @file
 * Bilinearity and non-degeneracy tests for the optimal-ate pairing.
 */
#include <gtest/gtest.h>

#include <random>

#include "curve/pairing.hpp"

namespace {

using namespace zkspeed::curve;
using zkspeed::ff::Fr;

TEST(Pairing, NonDegenerate)
{
    Fq12 e = pairing(G1Params::generator(), G2Params::generator());
    EXPECT_FALSE(e.is_one());
    // e(g, h) lies in the order-r subgroup: e^r == 1.
    EXPECT_TRUE(e.pow(Fr::kModulus).is_one());
}

TEST(Pairing, IdentityInputsGiveOne)
{
    EXPECT_TRUE(pairing(G1Affine::identity(), G2Params::generator())
                    .is_one());
    EXPECT_TRUE(pairing(G1Params::generator(), G2Affine::identity())
                    .is_one());
}

TEST(Pairing, Bilinearity)
{
    std::mt19937_64 rng(21);
    Fr a = Fr::random(rng);
    Fr b = Fr::random(rng);
    G1Affine ga = g1_generator().mul(a).to_affine();
    G2Affine hb = g2_generator().mul(b).to_affine();
    Fq12 lhs = pairing(ga, hb);
    Fq12 rhs = pairing(G1Params::generator(), G2Params::generator())
                   .pow((a * b).to_repr());
    EXPECT_EQ(lhs, rhs) << "e(aG, bH) == e(G, H)^{ab}";
}

TEST(Pairing, LinearInFirstArgument)
{
    std::mt19937_64 rng(22);
    Fr a = Fr::random(rng), b = Fr::random(rng);
    G1 ga = g1_generator().mul(a);
    G1 gb = g1_generator().mul(b);
    G2Affine h = G2Params::generator();
    Fq12 lhs = pairing((ga + gb).to_affine(), h);
    Fq12 rhs = pairing(ga.to_affine(), h) * pairing(gb.to_affine(), h);
    EXPECT_EQ(lhs, rhs);
}

TEST(Pairing, ProductCheckDetectsEquality)
{
    // e(aG, H) * e(-G, aH) == 1.
    std::mt19937_64 rng(23);
    Fr a = Fr::random(rng);
    std::vector<G1Affine> ps = {
        g1_generator().mul(a).to_affine(),
        g1_generator().neg().to_affine(),
    };
    std::vector<G2Affine> qs = {
        G2Params::generator(),
        g2_generator().mul(a).to_affine(),
    };
    EXPECT_TRUE(pairing_product_is_one(ps, qs));
    // Perturb one side: must fail.
    qs[1] = g2_generator().mul(a + Fr::one()).to_affine();
    EXPECT_FALSE(pairing_product_is_one(ps, qs));
}

TEST(Pairing, PreparedMatchesUnprepared)
{
    std::mt19937_64 rng(25);
    std::vector<G1Affine> ps;
    std::vector<G2Affine> qs;
    std::vector<G2Prepared> preps;
    for (int i = 0; i < 3; ++i) {
        Fr a = Fr::random(rng), b = Fr::random(rng);
        ps.push_back(g1_generator().mul(a).to_affine());
        qs.push_back(g2_generator().mul(b).to_affine());
        preps.push_back(prepare_g2(qs.back()));
    }
    EXPECT_EQ(multi_miller_loop_prepared(ps, preps),
              multi_miller_loop(ps, qs));
    // Re-using the same preparation for a different G1 side agrees too
    // (the point of preparing: the G2 work is done once).
    std::vector<G1Affine> ps2 = {ps[1], ps[2], ps[0]};
    EXPECT_EQ(multi_miller_loop_prepared(ps2, preps),
              multi_miller_loop(ps2, qs));
}

TEST(Pairing, PreparedHandlesIdentities)
{
    std::mt19937_64 rng(26);
    Fr a = Fr::random(rng);
    G2Prepared inf = prepare_g2(G2Affine::identity());
    EXPECT_TRUE(inf.infinity);
    EXPECT_TRUE(inf.coeffs.empty());
    std::vector<G1Affine> ps = {g1_generator().mul(a).to_affine(),
                                G1Affine::identity()};
    std::vector<G2Prepared> preps = {inf, prepare_g2(G2Params::generator())};
    // Both pairs degenerate: the product is 1 before final exp.
    EXPECT_TRUE(multi_miller_loop_prepared(ps, preps).is_one());
    EXPECT_TRUE(pairing_product_is_one_prepared(ps, preps));
}

TEST(Pairing, PreparedProductCheckDetectsEquality)
{
    // e(aG, H) * e(-G, aH) == 1 through the prepared path.
    std::mt19937_64 rng(27);
    Fr a = Fr::random(rng);
    std::vector<G1Affine> ps = {
        g1_generator().mul(a).to_affine(),
        g1_generator().neg().to_affine(),
    };
    std::vector<G2Prepared> preps = {
        prepare_g2(G2Params::generator()),
        prepare_g2(g2_generator().mul(a).to_affine()),
    };
    EXPECT_TRUE(pairing_product_is_one_prepared(ps, preps));
    preps[1] = prepare_g2(g2_generator().mul(a + Fr::one()).to_affine());
    EXPECT_FALSE(pairing_product_is_one_prepared(ps, preps));
}

TEST(Pairing, MultiMillerMatchesProductOfPairings)
{
    std::mt19937_64 rng(24);
    std::vector<G1Affine> ps;
    std::vector<G2Affine> qs;
    Fq12 expect = Fq12::one();
    for (int i = 0; i < 3; ++i) {
        Fr a = Fr::random(rng), b = Fr::random(rng);
        ps.push_back(g1_generator().mul(a).to_affine());
        qs.push_back(g2_generator().mul(b).to_affine());
        expect *= pairing(ps.back(), qs.back());
    }
    EXPECT_EQ(final_exponentiation(multi_miller_loop(ps, qs)), expect);
}

}  // namespace
