/**
 * @file
 * Bilinearity and non-degeneracy tests for the optimal-ate pairing.
 */
#include <gtest/gtest.h>

#include <random>

#include "curve/pairing.hpp"

namespace {

using namespace zkspeed::curve;
using zkspeed::ff::Fr;

TEST(Pairing, NonDegenerate)
{
    Fq12 e = pairing(G1Params::generator(), G2Params::generator());
    EXPECT_FALSE(e.is_one());
    // e(g, h) lies in the order-r subgroup: e^r == 1.
    EXPECT_TRUE(e.pow(Fr::kModulus).is_one());
}

TEST(Pairing, IdentityInputsGiveOne)
{
    EXPECT_TRUE(pairing(G1Affine::identity(), G2Params::generator())
                    .is_one());
    EXPECT_TRUE(pairing(G1Params::generator(), G2Affine::identity())
                    .is_one());
}

TEST(Pairing, Bilinearity)
{
    std::mt19937_64 rng(21);
    Fr a = Fr::random(rng);
    Fr b = Fr::random(rng);
    G1Affine ga = g1_generator().mul(a).to_affine();
    G2Affine hb = g2_generator().mul(b).to_affine();
    Fq12 lhs = pairing(ga, hb);
    Fq12 rhs = pairing(G1Params::generator(), G2Params::generator())
                   .pow((a * b).to_repr());
    EXPECT_EQ(lhs, rhs) << "e(aG, bH) == e(G, H)^{ab}";
}

TEST(Pairing, LinearInFirstArgument)
{
    std::mt19937_64 rng(22);
    Fr a = Fr::random(rng), b = Fr::random(rng);
    G1 ga = g1_generator().mul(a);
    G1 gb = g1_generator().mul(b);
    G2Affine h = G2Params::generator();
    Fq12 lhs = pairing((ga + gb).to_affine(), h);
    Fq12 rhs = pairing(ga.to_affine(), h) * pairing(gb.to_affine(), h);
    EXPECT_EQ(lhs, rhs);
}

TEST(Pairing, ProductCheckDetectsEquality)
{
    // e(aG, H) * e(-G, aH) == 1.
    std::mt19937_64 rng(23);
    Fr a = Fr::random(rng);
    std::vector<G1Affine> ps = {
        g1_generator().mul(a).to_affine(),
        g1_generator().neg().to_affine(),
    };
    std::vector<G2Affine> qs = {
        G2Params::generator(),
        g2_generator().mul(a).to_affine(),
    };
    EXPECT_TRUE(pairing_product_is_one(ps, qs));
    // Perturb one side: must fail.
    qs[1] = g2_generator().mul(a + Fr::one()).to_affine();
    EXPECT_FALSE(pairing_product_is_one(ps, qs));
}

TEST(Pairing, MultiMillerMatchesProductOfPairings)
{
    std::mt19937_64 rng(24);
    std::vector<G1Affine> ps;
    std::vector<G2Affine> qs;
    Fq12 expect = Fq12::one();
    for (int i = 0; i < 3; ++i) {
        Fr a = Fr::random(rng), b = Fr::random(rng);
        ps.push_back(g1_generator().mul(a).to_affine());
        qs.push_back(g2_generator().mul(b).to_affine());
        expect *= pairing(ps.back(), qs.back());
    }
    EXPECT_EQ(final_exponentiation(multi_miller_loop(ps, qs)), expect);
}

}  // namespace
