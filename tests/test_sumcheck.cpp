/**
 * @file
 * SumCheck completeness, soundness and interpolation tests.
 */
#include <gtest/gtest.h>

#include <random>

#include "hyperplonk/sumcheck.hpp"

namespace {

using namespace zkspeed::hyperplonk;
using zkspeed::ff::Fr;
namespace mle = zkspeed::mle;
namespace hash = zkspeed::hash;

TEST(Interpolation, RecoversPolynomialValues)
{
    std::mt19937_64 rng(41);
    // Random degree-4 polynomial, evaluated at 0..4, interpolated at x.
    std::array<Fr, 5> coeffs;
    for (auto &c : coeffs) c = Fr::random(rng);
    auto poly_eval = [&](const Fr &x) {
        Fr acc = Fr::zero(), p = Fr::one();
        for (const auto &c : coeffs) {
            acc += c * p;
            p *= x;
        }
        return acc;
    };
    std::vector<Fr> evals(5);
    for (size_t k = 0; k < 5; ++k) evals[k] = poly_eval(Fr::from_uint(k));
    // At the nodes themselves.
    for (size_t k = 0; k < 5; ++k) {
        EXPECT_EQ(interpolate_univariate(evals, Fr::from_uint(k)), evals[k]);
    }
    // At random points.
    for (int i = 0; i < 10; ++i) {
        Fr x = Fr::random(rng);
        EXPECT_EQ(interpolate_univariate(evals, x), poly_eval(x));
    }
}

TEST(Interpolation, DegreeOneAndTwo)
{
    // g(x) = 3 + 5x from evals at 0,1.
    std::vector<Fr> lin = {Fr::from_uint(3), Fr::from_uint(8)};
    EXPECT_EQ(interpolate_univariate(lin, Fr::from_uint(10)),
              Fr::from_uint(53));
    // g(x) = x^2 from evals at 0,1,2.
    std::vector<Fr> quad = {Fr::from_uint(0), Fr::from_uint(1),
                            Fr::from_uint(4)};
    EXPECT_EQ(interpolate_univariate(quad, Fr::from_uint(7)),
              Fr::from_uint(49));
}

class SumcheckRoundTrip
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(SumcheckRoundTrip, ProveThenVerify)
{
    auto [nv, degree] = GetParam();
    std::mt19937_64 rng(100 * nv + degree);
    VirtualPolynomial vp(nv);
    // Build `degree` stacked products of random MLEs plus a linear term.
    std::vector<std::shared_ptr<mle::Mle>> ms;
    for (size_t i = 0; i < degree; ++i) {
        ms.push_back(std::make_shared<mle::Mle>(mle::Mle::random(nv, rng)));
    }
    std::vector<size_t> all;
    for (const auto &m : ms) all.push_back(vp.add_mle(m));
    vp.add_term(Fr::random(rng), all);
    vp.add_term(Fr::random(rng), {all[0]});
    if (degree >= 2) vp.add_term(Fr::random(rng), {all[1], all[0]});

    Fr claim = vp.sum_over_hypercube();
    hash::Transcript tp("sumcheck-test");
    auto pres = sumcheck_prove(vp, tp);
    hash::Transcript tv("sumcheck-test");
    auto vres = sumcheck_verify(claim, nv, vp.max_degree(),
                                pres.proof, tv);
    ASSERT_TRUE(vres.ok);
    EXPECT_EQ(vres.challenges, pres.challenges);
    // The verifier's final value matches evaluating the polynomial at r.
    EXPECT_EQ(vres.final_value, vp.evaluate(vres.challenges));
    // And matches combining the prover's final per-MLE values.
    EXPECT_EQ(vres.final_value,
              vp.evaluate_from_mle_values(pres.final_mle_values));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SumcheckRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(1, 2, 3, 5)));

TEST(Sumcheck, RejectsWrongClaim)
{
    std::mt19937_64 rng(42);
    VirtualPolynomial vp(4);
    vp.add_product(Fr::one(),
                   {std::make_shared<mle::Mle>(mle::Mle::random(4, rng)),
                    std::make_shared<mle::Mle>(mle::Mle::random(4, rng))});
    hash::Transcript tp("sumcheck-test");
    auto pres = sumcheck_prove(vp, tp);
    Fr bad_claim = vp.sum_over_hypercube() + Fr::one();
    hash::Transcript tv("sumcheck-test");
    EXPECT_FALSE(sumcheck_verify(bad_claim, 4, 2, pres.proof, tv).ok);
}

TEST(Sumcheck, RejectsTamperedRounds)
{
    std::mt19937_64 rng(43);
    VirtualPolynomial vp(5);
    auto a = std::make_shared<mle::Mle>(mle::Mle::random(5, rng));
    auto b = std::make_shared<mle::Mle>(mle::Mle::random(5, rng));
    vp.add_product(Fr::one(), {a, b});
    Fr claim = vp.sum_over_hypercube();
    hash::Transcript tp("sumcheck-test");
    auto pres = sumcheck_prove(vp, tp);

    // Tamper with each round message in turn; every variant must fail
    // either the running-claim check or the final-value check.
    for (size_t round = 0; round < 5; ++round) {
        auto proof = pres.proof;
        proof.round_evals[round][1] += Fr::one();
        hash::Transcript tv("sumcheck-test");
        auto vres = sumcheck_verify(claim, 5, 2, proof, tv);
        bool final_matches =
            vres.ok && vres.final_value == vp.evaluate(vres.challenges);
        EXPECT_FALSE(final_matches) << "tampered round " << round;
    }
}

TEST(Sumcheck, RejectsMalformedShapes)
{
    std::mt19937_64 rng(44);
    VirtualPolynomial vp(3);
    vp.add_product(Fr::one(),
                   {std::make_shared<mle::Mle>(mle::Mle::random(3, rng))});
    Fr claim = vp.sum_over_hypercube();
    hash::Transcript tp("sumcheck-test");
    auto pres = sumcheck_prove(vp, tp);
    {
        auto proof = pres.proof;
        proof.round_evals.pop_back();  // missing round
        hash::Transcript tv("sumcheck-test");
        EXPECT_FALSE(sumcheck_verify(claim, 3, 1, proof, tv).ok);
    }
    {
        auto proof = pres.proof;
        proof.round_evals[0].push_back(Fr::one());  // degree overflow
        hash::Transcript tv("sumcheck-test");
        EXPECT_FALSE(sumcheck_verify(claim, 3, 1, proof, tv).ok);
    }
    {
        hash::Transcript tv("sumcheck-test");
        EXPECT_FALSE(sumcheck_verify(claim, 4, 1, pres.proof, tv).ok)
            << "wrong variable count";
    }
}

TEST(Sumcheck, ZeroPolynomialSumsToZero)
{
    VirtualPolynomial vp(4);
    auto z = std::make_shared<mle::Mle>(4);  // all-zero table
    vp.add_product(Fr::one(), {z, z});
    hash::Transcript tp("sumcheck-test");
    auto pres = sumcheck_prove(vp, tp);
    hash::Transcript tv("sumcheck-test");
    auto vres = sumcheck_verify(Fr::zero(), 4, 2, pres.proof, tv);
    EXPECT_TRUE(vres.ok);
    EXPECT_TRUE(vres.final_value.is_zero());
}

TEST(Sumcheck, CostBreakdownIsPlausible)
{
    std::mt19937_64 rng(45);
    const size_t nv = 6;
    VirtualPolynomial vp(nv);
    auto a = std::make_shared<mle::Mle>(mle::Mle::random(nv, rng));
    auto b = std::make_shared<mle::Mle>(mle::Mle::random(nv, rng));
    vp.add_product(Fr::one(), {a, b});
    hash::Transcript tp("sumcheck-test");
    SumcheckCosts costs;
    sumcheck_prove(vp, tp, &costs);
    EXPECT_GT(costs.round_modmuls, 0u);
    // MLE Update: 2 tables, sum over rounds of 2^{nv-1-k} muls each.
    EXPECT_EQ(costs.update_modmuls, 2 * ((size_t(1) << nv) - 1));
    // Bytes: reads of both tables across all rounds.
    EXPECT_EQ(costs.round_bytes_in, 2 * 32 * (2 * ((size_t(1) << nv) - 1)));
}

}  // namespace
