/**
 * @file
 * Known-answer and property tests for Keccak/SHA3 and the transcript.
 */
#include <gtest/gtest.h>

#include <string>

#include "hash/keccak.hpp"
#include "hash/transcript.hpp"

namespace {

using namespace zkspeed::hash;
using zkspeed::ff::Fr;

TEST(Keccak, Sha3_256KnownAnswers)
{
    // FIPS-202 test vector.
    EXPECT_EQ(digest_hex(sha3_256("abc")),
              "3a985da74fe225b2045c172d6bd390bd"
              "855f086e3e9d525b46bfe24511431532");
    EXPECT_EQ(digest_hex(sha3_256("")),
              "a7ffc6f8bf1ed76651c14756a061d662"
              "f580ff4de43b49fa82d80a4b80f8434a")
        << "empty-string SHA3-256";
}

TEST(Keccak, Keccak256KnownAnswers)
{
    // Legacy (pre-FIPS) padding, as used by Ethereum.
    EXPECT_EQ(digest_hex(keccak_256("")),
              "c5d2460186f7233c927e7db2dcc703c0"
              "e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak, MultiBlockMessages)
{
    // Message sizes around the 136-byte rate boundary must be consistent
    // between one-shot and incremental absorption.
    for (size_t len : {1u, 64u, 135u, 136u, 137u, 272u, 1000u}) {
        std::string msg(len, 'x');
        for (size_t i = 0; i < len; ++i) msg[i] = char('a' + i % 26);
        Digest oneshot = sha3_256(msg);
        Sponge256 sp(0x06);
        // Absorb in awkward chunks.
        size_t off = 0, chunk = 7;
        while (off < len) {
            size_t take = std::min(chunk, len - off);
            sp.absorb(std::string_view(msg).substr(off, take));
            off += take;
            chunk = chunk * 3 % 50 + 1;
        }
        EXPECT_EQ(digest_hex(sp.finalize()), digest_hex(oneshot))
            << "len=" << len;
    }
}

TEST(Keccak, DistinctInputsDistinctDigests)
{
    EXPECT_NE(digest_hex(sha3_256("a")), digest_hex(sha3_256("b")));
    EXPECT_NE(digest_hex(sha3_256("")), digest_hex(keccak_256("")));
}

TEST(Transcript, DeterministicAndOrderSensitive)
{
    Transcript t1("test"), t2("test"), t3("test");
    t1.append_fr("a", Fr::from_uint(1));
    t1.append_fr("b", Fr::from_uint(2));
    t2.append_fr("a", Fr::from_uint(1));
    t2.append_fr("b", Fr::from_uint(2));
    t3.append_fr("b", Fr::from_uint(2));
    t3.append_fr("a", Fr::from_uint(1));
    Fr c1 = t1.challenge_fr("c");
    Fr c2 = t2.challenge_fr("c");
    Fr c3 = t3.challenge_fr("c");
    EXPECT_EQ(c1, c2) << "same history -> same challenge";
    EXPECT_NE(c1, c3) << "order must matter";
}

TEST(Transcript, ChallengesChainForward)
{
    Transcript t("test");
    Fr c1 = t.challenge_fr("c");
    Fr c2 = t.challenge_fr("c");
    EXPECT_NE(c1, c2) << "successive challenges must differ";
    auto cs = t.challenge_frs("v", 8);
    for (size_t i = 0; i < cs.size(); ++i) {
        for (size_t j = i + 1; j < cs.size(); ++j) {
            EXPECT_NE(cs[i], cs[j]);
        }
    }
    EXPECT_EQ(t.challenge_count(), 10u);
}

TEST(Transcript, LabelsSeparateDomains)
{
    Transcript t1("proto-a"), t2("proto-b");
    EXPECT_NE(t1.challenge_fr("c"), t2.challenge_fr("c"));
}

}  // namespace
