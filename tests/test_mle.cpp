/**
 * @file
 * MLE table, eq/Build-MLE and virtual polynomial tests.
 */
#include <gtest/gtest.h>

#include <random>

#include "mle/mle.hpp"
#include "mle/virtual_poly.hpp"

namespace {

using namespace zkspeed::mle;
using zkspeed::ff::Fr;

std::vector<Fr>
random_point(size_t n, std::mt19937_64 &rng)
{
    std::vector<Fr> p(n);
    for (auto &x : p) x = Fr::random(rng);
    return p;
}

TEST(Mle, EvaluateAtBooleanPointsRecoversTable)
{
    std::mt19937_64 rng(31);
    Mle m = Mle::random(4, rng);
    for (size_t i = 0; i < m.size(); ++i) {
        std::vector<Fr> pt(4);
        for (size_t k = 0; k < 4; ++k) {
            pt[k] = ((i >> k) & 1) ? Fr::one() : Fr::zero();
        }
        EXPECT_EQ(m.evaluate(pt), m[i]) << "index " << i;
    }
}

TEST(Mle, FixFirstVariableMatchesEq2)
{
    // t'[i] = (t[2i+1] - t[2i]) * r + t[2i] (paper Eq. 2).
    std::mt19937_64 rng(32);
    Mle m = Mle::random(5, rng);
    Mle orig = m;
    Fr r = Fr::random(rng);
    m.fix_first_variable(r);
    ASSERT_EQ(m.num_vars(), 4u);
    for (size_t i = 0; i < m.size(); ++i) {
        EXPECT_EQ(m[i], (orig[2 * i + 1] - orig[2 * i]) * r + orig[2 * i]);
    }
}

TEST(Mle, FixVariableConsistentWithEvaluate)
{
    std::mt19937_64 rng(33);
    Mle m = Mle::random(6, rng);
    auto pt = random_point(6, rng);
    Fr direct = m.evaluate(pt);
    Mle folded = m;
    for (size_t k = 0; k < 6; ++k) folded.fix_first_variable(pt[k]);
    EXPECT_EQ(folded[0], direct);
}

TEST(Mle, MultilinearityInEachVariable)
{
    // f restricted to one variable is affine: f(..,t,..) =
    // f(..,0,..) + t*(f(..,1,..) - f(..,0,..)).
    std::mt19937_64 rng(34);
    Mle m = Mle::random(5, rng);
    for (size_t var = 0; var < 5; ++var) {
        auto pt = random_point(5, rng);
        Fr t = Fr::random(rng);
        auto p0 = pt, p1 = pt, pts = pt;
        p0[var] = Fr::zero();
        p1[var] = Fr::one();
        pts[var] = t;
        Fr f0 = m.evaluate(p0), f1 = m.evaluate(p1);
        EXPECT_EQ(m.evaluate(pts), f0 + t * (f1 - f0)) << "var " << var;
    }
}

TEST(Mle, EqTableMatchesClosedForm)
{
    std::mt19937_64 rng(35);
    auto r = random_point(5, rng);
    Mle eq = Mle::eq_table(r);
    ASSERT_EQ(eq.size(), 32u);
    // Each entry is the product formula.
    for (size_t i = 0; i < 32; ++i) {
        Fr expect = Fr::one();
        for (size_t k = 0; k < 5; ++k) {
            expect *= ((i >> k) & 1) ? r[k] : Fr::one() - r[k];
        }
        EXPECT_EQ(eq[i], expect);
    }
    // Table sums to 1.
    EXPECT_EQ(eq.sum(), Fr::one());
    // eq_eval agrees with evaluating the table.
    auto z = random_point(5, rng);
    EXPECT_EQ(eq.evaluate(z), Mle::eq_eval(z, r));
    EXPECT_EQ(Mle::eq_eval(z, r), Mle::eq_eval(r, z));
}

TEST(Mle, EqTableSelectsEvaluations)
{
    // sum_i f[i] * eq(z)[i] == f(z): the identity underlying both MLE
    // Evaluate and the OpenCheck structure.
    std::mt19937_64 rng(36);
    Mle f = Mle::random(6, rng);
    auto z = random_point(6, rng);
    Mle eq = Mle::eq_table(z);
    Fr acc = Fr::zero();
    for (size_t i = 0; i < f.size(); ++i) acc += f[i] * eq[i];
    EXPECT_EQ(acc, f.evaluate(z));
}

TEST(Mle, AddScaledAndSum)
{
    std::mt19937_64 rng(37);
    Mle a = Mle::random(4, rng);
    Mle b = Mle::random(4, rng);
    Fr c = Fr::random(rng);
    Mle combo = a;
    combo.add_scaled(b, c);
    auto z = random_point(4, rng);
    EXPECT_EQ(combo.evaluate(z), a.evaluate(z) + c * b.evaluate(z));
    EXPECT_EQ(combo.sum(), a.sum() + c * b.sum());
}

TEST(Mle, ZeroVariablePolynomial)
{
    Mle m = Mle::constant(0, Fr::from_uint(7));
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.evaluate({}), Fr::from_uint(7));
    EXPECT_EQ(m.sum(), Fr::from_uint(7));
}

TEST(VirtualPoly, EvaluateAndHypercubeSum)
{
    std::mt19937_64 rng(38);
    auto a = std::make_shared<Mle>(Mle::random(4, rng));
    auto b = std::make_shared<Mle>(Mle::random(4, rng));
    auto c = std::make_shared<Mle>(Mle::random(4, rng));
    VirtualPolynomial vp(4);
    Fr k1 = Fr::random(rng), k2 = Fr::random(rng);
    vp.add_product(k1, {a, b, c});
    vp.add_product(k2, {a, a});
    EXPECT_EQ(vp.max_degree(), 3u);

    auto z = random_point(4, rng);
    Fr ea = a->evaluate(z), eb = b->evaluate(z), ec = c->evaluate(z);
    EXPECT_EQ(vp.evaluate(z), k1 * ea * eb * ec + k2 * ea * ea);

    // Hypercube sum matches a direct loop.
    Fr expect = Fr::zero();
    for (size_t i = 0; i < 16; ++i) {
        expect += k1 * (*a)[i] * (*b)[i] * (*c)[i] + k2 * (*a)[i] * (*a)[i];
    }
    EXPECT_EQ(vp.sum_over_hypercube(), expect);
}

TEST(VirtualPoly, MleDeduplication)
{
    std::mt19937_64 rng(39);
    auto a = std::make_shared<Mle>(Mle::random(3, rng));
    VirtualPolynomial vp(3);
    size_t i1 = vp.add_mle(a);
    size_t i2 = vp.add_mle(a);
    EXPECT_EQ(i1, i2);
    EXPECT_EQ(vp.mles().size(), 1u);
}

}  // namespace
