/**
 * @file
 * Gadget-library tests: boolean logic, range checks, equality tests,
 * S-boxes and the Rescue-style permutation, each validated both for
 * witness correctness and as part of a provable circuit.
 */
#include <gtest/gtest.h>

#include <random>

#include "hyperplonk/gadgets.hpp"
#include "hyperplonk/prover.hpp"

namespace {

using namespace zkspeed::hyperplonk;
namespace g = zkspeed::hyperplonk::gadgets;
using zkspeed::ff::Fr;

/** Build + check satisfaction of everything added to the builder. */
void
expect_satisfied(const CircuitBuilder &cb)
{
    auto [index, wit] = cb.build();
    EXPECT_TRUE(wit.satisfies_gates(index));
    EXPECT_TRUE(wit.satisfies_wiring(index));
}

TEST(Gadgets, BooleanLogicTruthTables)
{
    for (int a = 0; a <= 1; ++a) {
        for (int b = 0; b <= 1; ++b) {
            CircuitBuilder cb;
            Var va = cb.add_variable(Fr::from_uint(a));
            Var vb = cb.add_variable(Fr::from_uint(b));
            cb.assert_boolean(va);
            cb.assert_boolean(vb);
            EXPECT_EQ(cb.value(g::logic_xor(cb, va, vb)),
                      Fr::from_uint(a ^ b));
            EXPECT_EQ(cb.value(g::logic_and(cb, va, vb)),
                      Fr::from_uint(a & b));
            EXPECT_EQ(cb.value(g::logic_or(cb, va, vb)),
                      Fr::from_uint(a | b));
            EXPECT_EQ(cb.value(g::logic_not(cb, va)),
                      Fr::from_uint(1 - a));
            expect_satisfied(cb);
        }
    }
}

TEST(Gadgets, MuxSelectsCorrectArm)
{
    for (int sel = 0; sel <= 1; ++sel) {
        CircuitBuilder cb;
        Var s = cb.add_variable(Fr::from_uint(sel));
        Var a = cb.add_variable(Fr::from_uint(111));
        Var b = cb.add_variable(Fr::from_uint(222));
        Var out = g::mux(cb, s, a, b);
        EXPECT_EQ(cb.value(out), Fr::from_uint(sel ? 111 : 222));
        expect_satisfied(cb);
    }
}

TEST(Gadgets, BitDecomposeRoundTrip)
{
    for (uint64_t v : {0ull, 1ull, 42ull, 65535ull, 65536ull}) {
        CircuitBuilder cb;
        Var x = cb.add_variable(Fr::from_uint(v));
        auto bits = g::bit_decompose(cb, x, 20);
        ASSERT_EQ(bits.size(), 20u);
        for (unsigned i = 0; i < 20; ++i) {
            EXPECT_EQ(cb.value(bits[i]), Fr::from_uint((v >> i) & 1));
        }
        expect_satisfied(cb);
    }
}

TEST(Gadgets, RangeCheckRejectsOutOfRange)
{
    // In-range passes.
    {
        CircuitBuilder cb;
        Var x = cb.add_variable(Fr::from_uint(255));
        g::range_check(cb, x, 8);
        expect_satisfied(cb);
    }
    // Out of range: the reconstruction constraint fails.
    {
        CircuitBuilder cb;
        Var x = cb.add_variable(Fr::from_uint(256));
        g::range_check(cb, x, 8);
        auto [index, wit] = cb.build();
        EXPECT_FALSE(wit.satisfies_gates(index));
    }
    // Field wrap-around ("negative" value) is also out of range.
    {
        CircuitBuilder cb;
        Var x = cb.add_variable(Fr::zero() - Fr::from_uint(5));
        g::range_check(cb, x, 8);
        auto [index, wit] = cb.build();
        EXPECT_FALSE(wit.satisfies_gates(index));
    }
}

TEST(Gadgets, IsEqual)
{
    {
        CircuitBuilder cb;
        Var a = cb.add_variable(Fr::from_uint(77));
        Var b = cb.add_variable(Fr::from_uint(77));
        EXPECT_EQ(cb.value(g::is_equal(cb, a, b)), Fr::one());
        expect_satisfied(cb);
    }
    {
        CircuitBuilder cb;
        Var a = cb.add_variable(Fr::from_uint(77));
        Var b = cb.add_variable(Fr::from_uint(78));
        EXPECT_EQ(cb.value(g::is_equal(cb, a, b)), Fr::zero());
        expect_satisfied(cb);
    }
}

TEST(Gadgets, Pow5AndInverseAreInverses)
{
    std::mt19937_64 rng(201);
    for (int i = 0; i < 5; ++i) {
        Fr x = Fr::random(rng);
        CircuitBuilder cb;
        Var vx = cb.add_variable(x);
        Var v5 = g::pow5(cb, vx);
        Var back = g::pow5_inverse(cb, v5);
        EXPECT_EQ(cb.value(back), x);
        expect_satisfied(cb);
    }
}

TEST(Gadgets, Pow5InverseHintIsConstrained)
{
    // A dishonest hint must break the circuit: we emulate by checking
    // that the constraint gate actually pins y^5 == x.
    CircuitBuilder cb;
    Var x = cb.add_variable(Fr::from_uint(32));  // 2^5
    Var y = g::pow5_inverse(cb, x);
    EXPECT_EQ(cb.value(y).pow(uint64_t(5)), Fr::from_uint(32));
    expect_satisfied(cb);
}

TEST(Gadgets, RescuePermutationMatchesSoftware)
{
    std::mt19937_64 rng(202);
    std::array<Fr, 3> input = {Fr::random(rng), Fr::random(rng),
                               Fr::random(rng)};
    CircuitBuilder cb;
    std::array<Var, 3> state = {cb.add_variable(input[0]),
                                cb.add_variable(input[1]),
                                cb.add_variable(input[2])};
    auto out_vars = g::rescue_permutation(cb, state);
    auto expect = g::rescue_permutation_value(input);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(cb.value(out_vars[i]), expect[i]) << "lane " << i;
    }
    expect_satisfied(cb);
}

TEST(Gadgets, RescueHashDiffusion)
{
    Fr h1 = g::rescue_hash2_value(Fr::from_uint(1), Fr::from_uint(2));
    Fr h2 = g::rescue_hash2_value(Fr::from_uint(1), Fr::from_uint(3));
    Fr h3 = g::rescue_hash2_value(Fr::from_uint(2), Fr::from_uint(1));
    EXPECT_FALSE(h1 == h2);
    EXPECT_FALSE(h1 == h3);
    EXPECT_FALSE(h1.is_zero());
}

TEST(Gadgets, RescuePreimageCircuitProves)
{
    // Full end-to-end: prove knowledge of (a, b) with H(a, b) == h.
    Fr a_val = Fr::from_uint(1234), b_val = Fr::from_uint(5678);
    Fr h = g::rescue_hash2_value(a_val, b_val);

    CircuitBuilder cb;
    Var pub_h = cb.add_public_input(h);
    Var a = cb.add_variable(a_val);
    Var b = cb.add_variable(b_val);
    Var out = g::rescue_hash2(cb, a, b);
    cb.assert_equal(out, pub_h);
    auto [index, wit] = cb.build();
    ASSERT_TRUE(wit.satisfies_gates(index));

    std::mt19937_64 rng(203);
    auto srs = std::make_shared<zkspeed::pcs::Srs>(
        zkspeed::pcs::Srs::generate(index.num_vars, rng));
    auto [pk, vk] = keygen(std::move(index), srs);
    Proof proof = prove(pk, wit);
    EXPECT_TRUE(verify(vk, wit.public_inputs(pk.index), proof));
    // The wrong digest must not verify.
    std::vector<Fr> bad = wit.public_inputs(pk.index);
    bad[0] += Fr::one();
    EXPECT_FALSE(verify(vk, bad, proof));
}

}  // namespace
