/**
 * @file
 * In-circuit keccak suite (suite #22): the src/keccak gadget library on
 * the fused multi-table lookup argument.
 *
 *  - Reference vectors: the round-parameterised circuit permutation
 *    matches hash::keccak_f1600 at every tested round count and limb
 *    width, and at the full 24 rounds the sponge node digest equals the
 *    real hash::keccak_256 across input vectors and Merkle depths.
 *  - Completeness: a reduced-round keccak-Merkle statement proves and
 *    verifies on the direct, deferred and batched paths, and its proof
 *    serialization round-trips canonically.
 *  - Cross-table soundness sweep: a triple valid under table A claimed
 *    under table B's tag is refused at the witness front door, and a
 *    proof forced past it is rejected by every verifier; a pairing-side
 *    proof mutation is isolated by batch bisection (REJECT_PROOF with
 *    the bisection fingering exactly the mutated proof).
 */
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "hash/keccak.hpp"
#include "hyperplonk/serialize.hpp"
#include "keccak/merkle.hpp"
#include "scenarios/circuits.hpp"
#include "scenarios/registry.hpp"
#include "scenarios/seed.hpp"
#include "verify/batch_verifier.hpp"

namespace {

using namespace zkspeed;
using namespace zkspeed::keccak;
using ff::Fr;
using hyperplonk::CircuitBuilder;
using hyperplonk::CircuitIndex;
using hyperplonk::Var;
using hyperplonk::Witness;

const uint64_t kSeed = scenarios::test_seed(2026);

std::string
repro()
{
    return "rerun with: ZKSPEED_TEST_SEED=" + std::to_string(kSeed) +
           " ctest -R test_keccak_circuit";
}

/** Random 5x5 lane state. */
std::array<uint64_t, 25>
random_state(std::mt19937_64 &rng)
{
    std::array<uint64_t, 25> st;
    for (auto &lane : st) lane = rng();
    return st;
}

struct ProvenStatement {
    CircuitIndex circuit;
    Witness witness;
    hyperplonk::VerifyingKey vk;
    std::vector<Fr> publics;
    hyperplonk::Proof proof;
};

/** keygen + prove a reduced-round keccak-Merkle statement. */
ProvenStatement
prove_keccak_merkle(uint64_t seed, size_t depth = 1, unsigned rounds = 1)
{
    std::mt19937_64 rng(seed);
    scenarios::circuits::KeccakMerkleParams p;
    p.depth = depth;
    p.rounds = rounds;
    auto [index, wit] = scenarios::circuits::keccak_merkle(p, rng);
    std::mt19937_64 srs_rng(seed ^ 0x5eed);
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, srs_rng));
    auto [pk, vk] = hyperplonk::keygen(index, srs);
    ProvenStatement st;
    st.publics = wit.public_inputs(index);
    st.proof = hyperplonk::prove(pk, wit);
    st.vk = vk;
    st.circuit = pk.index;
    st.witness = wit;
    return st;
}

TEST(KeccakTables, ChiTableEncodesTheNonlinearity)
{
    auto chi = lookup::Table::chi_table(3);
    ASSERT_EQ(chi.size(), 64u);
    for (uint64_t a = 0; a < 8; ++a) {
        for (uint64_t b = 0; b < 8; ++b) {
            const auto &row = chi.rows[a * 8 + b];
            EXPECT_EQ(row[0], Fr::from_uint(a));
            EXPECT_EQ(row[1], Fr::from_uint(b));
            EXPECT_EQ(row[2], Fr::from_uint(~a & b & 7));
        }
    }
}

TEST(KeccakCircuit, PermutationMatchesNativeAcrossRoundsAndWidths)
{
    SCOPED_TRACE(repro());
    std::mt19937_64 rng(kSeed + 1);
    for (unsigned rounds : {1u, 3u}) {
        for (unsigned limb_bits : {2u, 4u}) {
            SCOPED_TRACE("rounds=" + std::to_string(rounds) +
                         " limb_bits=" + std::to_string(limb_bits));
            auto in = random_state(rng);
            auto expect = in;
            hash::keccak_f1600(expect, rounds);

            CircuitBuilder cb;
            KeccakGadget g(cb,
                           KeccakParams::lookup(rounds, limb_bits));
            std::array<Lane, 25> st;
            for (int k = 0; k < 25; ++k) {
                st[k] = g.from_var(
                    cb.add_variable(Fr::from_uint(in[k])));
            }
            st = g.permute(std::move(st));
            for (int k = 0; k < 25; ++k) {
                EXPECT_EQ(g.value(st[k]), expect[k]) << "lane " << k;
            }
            auto [index, wit] = cb.build(2);
            EXPECT_TRUE(wit.satisfies_gates(index));
            EXPECT_TRUE(wit.satisfies_wiring(index));
            EXPECT_TRUE(wit.satisfies_lookups(index));
        }
    }
}

TEST(KeccakCircuit, FullRoundNodeDigestEqualsKeccak256Reference)
{
    SCOPED_TRACE(repro());
    std::mt19937_64 rng(kSeed + 2);
    // Several vectors: the 24-round circuit witness must reproduce the
    // reference hash::keccak_256 of the concatenated child digests.
    for (int vec = 0; vec < 3; ++vec) {
        DigestWords l{}, r{};
        for (auto &w : l) w = rng();
        for (auto &w : r) w = rng();
        uint8_t buf[64];
        for (int k = 0; k < 4; ++k) {
            for (int b = 0; b < 8; ++b) {
                buf[k * 8 + b] = uint8_t(l[k] >> (8 * b));
                buf[32 + k * 8 + b] = uint8_t(r[k] >> (8 * b));
            }
        }
        DigestWords ref = digest_to_words(
            hash::keccak_256(std::span<const uint8_t>(buf, 64)));
        EXPECT_EQ(native_node(l, r, 24), ref);

        CircuitBuilder cb;
        KeccakGadget g(cb, KeccakParams::lookup(24, 4));
        DigestLanes ll, rl;
        for (int k = 0; k < 4; ++k) {
            ll[k] = g.from_var(cb.add_variable(Fr::from_uint(l[k])));
            rl[k] = g.from_var(cb.add_variable(Fr::from_uint(r[k])));
        }
        DigestLanes out = node_hash(g, ll, rl);
        for (int k = 0; k < 4; ++k) {
            EXPECT_EQ(g.value(out[k]), ref[k]);
        }
        // The 74k-gate witness satisfies every constraint system layer
        // (proving at 2^17 stays in the bench/soak tier).
        auto [index, wit] = cb.build(2);
        EXPECT_TRUE(wit.satisfies_gates(index));
        EXPECT_TRUE(wit.satisfies_lookups(index));
    }
}

TEST(KeccakCircuit, MerklePathMatchesNativeAcrossDepths)
{
    SCOPED_TRACE(repro());
    std::mt19937_64 rng(kSeed + 3);
    for (size_t depth : {1ul, 3ul}) {
        DigestWords leaf{};
        for (auto &w : leaf) w = rng();
        std::vector<MerkleStep> path(depth);
        for (auto &step : path) {
            for (auto &w : step.sibling) w = rng();
            step.right = (rng() & 1) != 0;
        }
        // Chained native nodes are the ground truth for the helper.
        DigestWords expect = leaf;
        for (const auto &step : path) {
            expect = step.right
                         ? native_node(step.sibling, expect, 24)
                         : native_node(expect, step.sibling, 24);
        }
        EXPECT_EQ(native_path(leaf, path, 24), expect);

        // Reduced rounds in-circuit (full rounds covered above).
        CircuitBuilder cb;
        KeccakGadget g(cb, KeccakParams::lookup(2, 4));
        DigestLanes lanes;
        for (int k = 0; k < 4; ++k) {
            lanes[k] =
                g.from_var(cb.add_variable(Fr::from_uint(leaf[k])));
        }
        DigestLanes root = merkle_path(g, lanes, path);
        DigestWords want = native_path(leaf, path, 2);
        for (int k = 0; k < 4; ++k) {
            EXPECT_EQ(g.value(root[k]), want[k]);
        }
        auto [index, wit] = cb.build(2);
        EXPECT_TRUE(wit.satisfies_gates(index));
        EXPECT_TRUE(wit.satisfies_lookups(index));
    }
}

TEST(KeccakProof, ReducedRoundMerkleProvesOnEveryPath)
{
    SCOPED_TRACE(repro());
    auto st = prove_keccak_merkle(kSeed + 4);
    EXPECT_TRUE(hyperplonk::verify(st.vk, st.publics, st.proof,
                                   hyperplonk::PcsCheckMode::ideal));
    EXPECT_TRUE(hyperplonk::verify(st.vk, st.publics, st.proof,
                                   hyperplonk::PcsCheckMode::pairing));
    verifier::PairingAccumulator acc;
    ASSERT_TRUE(
        hyperplonk::verify_deferred(st.vk, st.publics, st.proof, acc));
    EXPECT_TRUE(acc.check());

    // The proof serializes canonically with its fused-lookup artifacts.
    auto bytes = hyperplonk::serde::serialize_proof(st.proof);
    auto back = hyperplonk::serde::deserialize_proof(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(hyperplonk::serde::serialize_proof(*back), bytes);
    EXPECT_TRUE(hyperplonk::verify(st.vk, st.publics, *back,
                                   hyperplonk::PcsCheckMode::pairing));

    // Forged public leaf word: every path must reject (the scenario
    // registry's keccak-merkle-wrong-leaf family).
    auto forged = st.publics;
    forged.front() += Fr::one();
    EXPECT_FALSE(hyperplonk::verify(st.vk, forged, st.proof,
                                    hyperplonk::PcsCheckMode::pairing));
}

TEST(KeccakProof, RegistryFamiliesRespectTheRoundsKnob)
{
    SCOPED_TRACE(repro());
    const auto &reg = scenarios::Registry::global();
    ASSERT_NE(reg.find("keccak-merkle"), nullptr);
    ASSERT_NE(reg.find("keccak-merkle-wrong-path"), nullptr);
    ASSERT_NE(reg.find("keccak-merkle-wrong-leaf"), nullptr);
    scenarios::Spec one, two;
    one.name = two.name = "keccak-merkle";
    one.seed = two.seed = kSeed + 5;
    one.knobs["rounds"] = 1;
    two.knobs["rounds"] = 2;
    auto a = reg.build(one);
    auto b = reg.build(two);
    EXPECT_TRUE(a.witness.satisfies_lookups(a.circuit));
    EXPECT_TRUE(b.witness.satisfies_lookups(b.circuit));
    EXPECT_GT(b.circuit.num_lookup_gates(), a.circuit.num_lookup_gates())
        << "a second round added no lookups";
    auto wrong = one;
    wrong.name = "keccak-merkle-wrong-path";
    auto w = reg.build(wrong);
    EXPECT_FALSE(w.witness.satisfies_gates(w.circuit))
        << "wrong-path family must break the root equality gates";
    EXPECT_TRUE(w.witness.satisfies_lookups(w.circuit));
}

// ---------------------------------------------------------------------
// Cross-table soundness sweep: a triple that IS a row of table A,
// claimed under table B's tag. The tagged LogUp fold must keep the
// banks apart: the front door refuses the witness, and a proof forced
// past it dies at verification.
// ---------------------------------------------------------------------

struct CrossTableCase {
    const char *name;
    /** Index into the gadget's bank registration order:
     * 0 = xor4, 1 = chi4, 2..4 = range1..range3. */
    size_t valid_under, claimed_under;
    uint64_t a, b, c;
};

TEST(KeccakSoundness, CrossTableClaimsAreRefusedAndUnprovable)
{
    SCOPED_TRACE(repro());
    // (3,5,6): an xor4 row (3^5). chi4(3,5) = ~3&5 = 4, so (3,5,4) is a
    // chi row. (5,0,0) is a range3 row but not a range1 row, and
    // 5^0 != 0 so it is no xor row either.
    const CrossTableCase kCases[] = {
        {"xor row under chi tag", 0, 1, 3, 5, 6},
        {"chi row under xor tag", 1, 0, 3, 5, 4},
        {"range row under xor tag", 4, 0, 5, 0, 0},
        {"wide range row under narrow range tag", 4, 2, 5, 0, 0},
    };
    std::mt19937_64 srs_seed(kSeed + 6);
    for (const auto &cc : kCases) {
        SCOPED_TRACE(cc.name);
        CircuitBuilder cb;
        KeccakGadget g(cb, KeccakParams::lookup(1, 4));
        // Table tags in registration order (xor, chi, range1..3) are
        // 1-based and contiguous.
        size_t tag_of[5] = {1, 2, 3, 4, 5};
        // An honest lookup keeps the bank populated.
        Var hx = cb.add_variable(Fr::from_uint(2));
        Var hy = cb.add_variable(Fr::from_uint(7));
        Var hz = cb.add_variable(Fr::from_uint(2 ^ 7));
        cb.add_lookup_gate(tag_of[0], hx, hy, hz);
        // The forged claim.
        Var fa = cb.add_variable(Fr::from_uint(cc.a));
        Var fb = cb.add_variable(Fr::from_uint(cc.b));
        Var fc = cb.add_variable(Fr::from_uint(cc.c));
        cb.add_lookup_gate(tag_of[cc.claimed_under], fa, fb, fc);
        auto [index, wit] = cb.build(2);
        // Sanity: the triple IS valid under its home table.
        {
            CircuitBuilder honest;
            KeccakGadget g2(honest, KeccakParams::lookup(1, 4));
            Var a2 = honest.add_variable(Fr::from_uint(cc.a));
            Var b2 = honest.add_variable(Fr::from_uint(cc.b));
            Var c2 = honest.add_variable(Fr::from_uint(cc.c));
            honest.add_lookup_gate(tag_of[cc.valid_under], a2, b2, c2);
            auto [hi, hw] = honest.build(2);
            EXPECT_TRUE(hw.satisfies_lookups(hi))
                << "case is miswired: triple not in its home table";
        }
        // Front door: REJECT_WITNESS.
        EXPECT_TRUE(wit.satisfies_gates(index));
        EXPECT_FALSE(wit.satisfies_lookups(index));
        // Forced past the front door: REJECT_PROOF on both PCS modes.
        std::mt19937_64 srs_rng(srs_seed());
        auto srs = std::make_shared<pcs::Srs>(
            pcs::Srs::generate(index.num_vars, srs_rng));
        auto [pk, vk] = hyperplonk::keygen(index, srs);
        auto proof = hyperplonk::prove(pk, wit);
        EXPECT_FALSE(
            hyperplonk::verify(vk, wit.public_inputs(index), proof,
                               hyperplonk::PcsCheckMode::ideal));
        EXPECT_FALSE(
            hyperplonk::verify(vk, wit.public_inputs(index), proof,
                               hyperplonk::PcsCheckMode::pairing));
    }
}

TEST(KeccakSoundness, BisectionFingersAPairingSideKeccakMutation)
{
    SCOPED_TRACE(repro());
    auto honest_a = prove_keccak_merkle(kSeed + 7);
    auto victim = prove_keccak_merkle(kSeed + 8);

    // Pairing-side corruption: survives every algebraic check, so only
    // the folded pairing flush can catch it — and bisection must finger
    // exactly the mutated proof without dragging the honest mate down.
    auto mutated = victim.proof;
    auto &q = mutated.gprime_proof.quotients[0];
    q = (curve::G1::from_affine(q) + curve::g1_generator()).to_affine();

    verifier::BatchVerifier bv;
    {
        verifier::PairingAccumulator a;
        ASSERT_TRUE(hyperplonk::verify_deferred(
            honest_a.vk, honest_a.publics, honest_a.proof, a));
        bv.add(std::move(a));
    }
    {
        verifier::PairingAccumulator a;
        ASSERT_TRUE(hyperplonk::verify_deferred(victim.vk, victim.publics,
                                                mutated, a));
        bv.add(std::move(a));
    }
    auto result = bv.flush();
    ASSERT_EQ(result.verdicts.size(), 2u);
    EXPECT_TRUE(result.verdicts[0]) << "honest keccak proof rejected";
    EXPECT_FALSE(result.verdicts[1]) << "mutation not detected";
    EXPECT_GT(result.stats.bisection_steps, 0u);
}

}  // namespace
