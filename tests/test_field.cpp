/**
 * @file
 * Unit and property tests for the Montgomery prime fields Fr and Fq.
 */
#include <gtest/gtest.h>

#include <random>

#include "ff/batch_inverse.hpp"
#include "ff/fq.hpp"
#include "ff/fr.hpp"

namespace {

using zkspeed::ff::Fq;
using zkspeed::ff::Fr;

template <typename F>
class FieldTest : public ::testing::Test
{
};

using FieldTypes = ::testing::Types<Fr, Fq>;
TYPED_TEST_SUITE(FieldTest, FieldTypes);

TYPED_TEST(FieldTest, MontgomeryConstants)
{
    using F = TypeParam;
    // R and R^2 must be properly reduced.
    EXPECT_TRUE(F::kR < F::kModulus);
    EXPECT_TRUE(F::kR2 < F::kModulus);
    // kInv * p == -1 mod 2^64.
    EXPECT_EQ(F::kInv * F::kModulus.limbs[0], ~0ull);
    // Modulus bit width matches the declared field size.
    EXPECT_EQ(F::kModulus.num_bits(), F::kBits);
}

TYPED_TEST(FieldTest, IdentityAndReprRoundTrip)
{
    using F = TypeParam;
    EXPECT_TRUE(F::zero().is_zero());
    EXPECT_TRUE(F::one().is_one());
    EXPECT_EQ(F::from_uint(0), F::zero());
    EXPECT_EQ(F::from_uint(1), F::one());
    EXPECT_EQ(F::from_uint(12345).to_repr().limbs[0], 12345u);

    std::mt19937_64 rng(1);
    for (int i = 0; i < 50; ++i) {
        F x = F::random(rng);
        EXPECT_EQ(F::from_repr(x.to_repr()), x);
    }
}

TYPED_TEST(FieldTest, FieldAxioms)
{
    using F = TypeParam;
    std::mt19937_64 rng(2);
    for (int i = 0; i < 50; ++i) {
        F a = F::random(rng), b = F::random(rng), c = F::random(rng);
        EXPECT_EQ(a + b, b + a);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a + b) + c, a + (b + c));
        EXPECT_EQ((a * b) * c, a * (b * c));
        EXPECT_EQ(a * (b + c), a * b + a * c);
        EXPECT_EQ(a + F::zero(), a);
        EXPECT_EQ(a * F::one(), a);
        EXPECT_EQ(a - a, F::zero());
        EXPECT_EQ(a + (-a), F::zero());
        EXPECT_EQ(a.dbl(), a + a);
        EXPECT_EQ(a.square(), a * a);
    }
}

TYPED_TEST(FieldTest, SmallIntegerArithmeticMatches)
{
    using F = TypeParam;
    // 123 * 456 = 56088, 1000 - 1 = 999 etc., checked through Montgomery.
    EXPECT_EQ(F::from_uint(123) * F::from_uint(456), F::from_uint(56088));
    EXPECT_EQ(F::from_uint(1000) - F::from_uint(1), F::from_uint(999));
    EXPECT_EQ(F::from_uint(7).pow(uint64_t(13)),
              F::from_uint(96889010407ull));  // 7^13
}

TYPED_TEST(FieldTest, InverseFermatAndBeeaAgree)
{
    using F = TypeParam;
    std::mt19937_64 rng(3);
    for (int i = 0; i < 25; ++i) {
        F a = F::random(rng);
        if (a.is_zero()) continue;
        F inv = a.inverse();
        EXPECT_EQ(a * inv, F::one());
        EXPECT_EQ(a.inverse_beea(), inv);
    }
    EXPECT_TRUE(F::zero().inverse().is_zero());
    EXPECT_TRUE(F::zero().inverse_beea().is_zero());
    EXPECT_EQ(F::one().inverse(), F::one());
}

TYPED_TEST(FieldTest, NegationEdgeCases)
{
    using F = TypeParam;
    EXPECT_EQ(-F::zero(), F::zero());
    F pm1 = F::zero() - F::one();  // p - 1
    EXPECT_EQ(pm1 * pm1, F::one());
    EXPECT_EQ(pm1 + F::one(), F::zero());
}

TYPED_TEST(FieldTest, PowLaws)
{
    using F = TypeParam;
    std::mt19937_64 rng(4);
    F a = F::random(rng);
    EXPECT_EQ(a.pow(uint64_t(0)), F::one());
    EXPECT_EQ(a.pow(uint64_t(1)), a);
    EXPECT_EQ(a.pow(uint64_t(5)) * a.pow(uint64_t(7)), a.pow(uint64_t(12)));
    // Fermat: a^p == a.
    EXPECT_EQ(a.pow(F::kModulus), a);
}

TYPED_TEST(FieldTest, BytesRoundTripAndReduce)
{
    using F = TypeParam;
    std::mt19937_64 rng(5);
    for (int i = 0; i < 20; ++i) {
        F x = F::random(rng);
        uint8_t buf[F::kByteSize];
        x.to_bytes(buf);
        EXPECT_EQ(F::from_bytes_reduce(buf, sizeof(buf)), x);
    }
    // Reduction of an over-size value: 2^{8*len} style inputs.
    std::array<uint8_t, 64> big;
    big.fill(0xff);
    F v = F::from_bytes_reduce(big.data(), big.size());
    // Value must be consistent with Horner evaluation: spot check via sum.
    F expect = F::zero();
    F base = F::from_uint(256);
    F pw = F::one();
    for (size_t i = 0; i < big.size(); ++i) {
        expect += F::from_uint(big[i]) * pw;
        pw *= base;
    }
    EXPECT_EQ(v, expect);
}

TYPED_TEST(FieldTest, BatchInverse)
{
    using F = TypeParam;
    std::mt19937_64 rng(6);
    for (size_t n : {0u, 1u, 2u, 7u, 64u, 255u}) {
        std::vector<F> xs(n), ref(n);
        for (size_t i = 0; i < n; ++i) xs[i] = F::random(rng);
        if (n > 2) xs[n / 2] = F::zero();  // zeros must survive
        ref = xs;
        zkspeed::ff::batch_inverse(xs);
        for (size_t i = 0; i < n; ++i) {
            if (ref[i].is_zero()) {
                EXPECT_TRUE(xs[i].is_zero());
            } else {
                EXPECT_EQ(ref[i] * xs[i], F::one());
            }
        }
    }
}

TYPED_TEST(FieldTest, UnrolledCiosMatchesSchoolbookReference)
{
    // The fused, compile-time-unrolled CIOS multiplier (PR 8) against
    // the obviously-correct path: widen to 2N limbs, schoolbook
    // multiply, long-divide by p. Also pins the worst-case operands
    // (p-1)^2 and values with all-ones limbs that maximise the carry
    // chains the fusion reorders.
    using F = TypeParam;
    using Wide = zkspeed::ff::BigInt<2 * F::kLimbs>;
    auto reference_mul = [](const F &a, const F &b) {
        Wide prod = a.to_repr().mul_wide(b.to_repr());
        Wide q, r;
        zkspeed::ff::divmod(prod, zkspeed::ff::widen<2 * F::kLimbs>(
                                      F::kModulus),
                            q, r);
        typename F::Repr lo;
        for (size_t i = 0; i < F::kLimbs; ++i) lo.limbs[i] = r.limbs[i];
        return lo;
    };

    std::mt19937_64 rng(55);
    std::vector<F> specials = {F::zero(), F::one(), -F::one(),
                               F::one() + F::one()};
    auto maxlimbs = typename F::Repr(0);
    for (size_t i = 0; i + 1 < F::kLimbs; ++i) {
        maxlimbs.limbs[i] = ~uint64_t(0);
    }
    specials.push_back(F::from_repr(maxlimbs));
    for (const F &a : specials) {
        for (const F &b : specials) {
            EXPECT_EQ((a * b).to_repr(), reference_mul(a, b));
        }
    }
    for (int it = 0; it < 200; ++it) {
        F a = F::random(rng), b = F::random(rng);
        EXPECT_EQ((a * b).to_repr(), reference_mul(a, b));
        EXPECT_EQ(a.square().to_repr(), reference_mul(a, a));
    }
}

TEST(FrSpecific, ModulusValue)
{
    EXPECT_EQ(Fr::kModulus.to_hex(),
              "0x73eda753299d7d483339d80809a1d805"
              "53bda402fffe5bfeffffffff00000001");
    EXPECT_EQ(Fr::kBits, 255u);
}

TEST(FqSpecific, ModulusValue)
{
    EXPECT_EQ(Fq::kBits, 381u);
    // p mod 4 == 3 for BLS12-381 (used by sqrt-free pairing towers).
    EXPECT_EQ(Fq::kModulus.limbs[0] & 3, 3u);
}

TEST(Counters, ModmulCountsIncrease)
{
    auto &c = zkspeed::ff::modmul_counters();
    std::mt19937_64 rng(7);
    Fr a = Fr::random(rng), b = Fr::random(rng);
    Fq x = Fq::random(rng), y = Fq::random(rng);
    zkspeed::ff::ModmulScope scope;
    (void)(a * b);
    (void)(x * y);
    (void)(x * y);
    EXPECT_EQ(scope.fr_delta(), 1u);
    EXPECT_EQ(scope.fq_delta(), 2u);
    EXPECT_EQ(scope.total_delta(), 3u);
    (void)c;
}

}  // namespace
