/**
 * @file
 * Lookup-argument suite (suite #21): table builders, tagged LogUp
 * helper algebra over fused multi-table banks, completeness/soundness
 * property tests under ZKSPEED_TEST_SEED, lookup-proof serialization
 * round trips, a proof-field mutation sweep over the lookup artifacts
 * (every mutation rejected; pairing-side ones isolated by batch
 * bisection), table-registration ergonomics (set_table alias,
 * structured TableSizeError), parallel-multiplicity determinism, and
 * the wire/request round trip for single- and multi-table circuits.
 */
#include <gtest/gtest.h>

#include <random>

#include "ff/parallel.hpp"
#include "hyperplonk/gadgets.hpp"
#include "hyperplonk/protocol_common.hpp"
#include "hyperplonk/serialize.hpp"
#include "lookup/logup.hpp"
#include "runtime/wire.hpp"
#include "scenarios/circuits.hpp"
#include "scenarios/seed.hpp"
#include "verify/batch_verifier.hpp"

namespace {

using namespace zkspeed;
using ff::Fr;
using hyperplonk::CircuitBuilder;
using hyperplonk::CircuitIndex;
using hyperplonk::Witness;
namespace gadgets = hyperplonk::gadgets;

const uint64_t kSeed = scenarios::test_seed(2026);

std::string
repro()
{
    return "rerun with: ZKSPEED_TEST_SEED=" + std::to_string(kSeed) +
           " ctest -R test_lookup";
}

struct ProvenStatement {
    CircuitIndex circuit;
    Witness witness;
    hyperplonk::VerifyingKey vk;
    std::vector<Fr> publics;
    hyperplonk::Proof proof;
};

/** keygen + prove a lookup range bank (values 6-bit values). */
ProvenStatement
prove_range_lookup(uint64_t seed, size_t values = 4, unsigned bits = 5)
{
    std::mt19937_64 rng(seed);
    auto [index, wit] =
        scenarios::circuits::range_bank_lookup(values, bits, rng);
    std::mt19937_64 srs_rng(seed ^ 0x5eed);
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, srs_rng));
    auto [pk, vk] = hyperplonk::keygen(index, srs);
    ProvenStatement st;
    st.publics = wit.public_inputs(index);
    st.proof = hyperplonk::prove(pk, wit);
    st.vk = vk;
    st.circuit = pk.index;
    st.witness = wit;
    return st;
}

TEST(Table, BuildersProduceTheDeclaredRows)
{
    auto range = lookup::Table::range(4);
    ASSERT_EQ(range.size(), 16u);
    EXPECT_EQ(range.rows[7][0], Fr::from_uint(7));
    EXPECT_TRUE(range.rows[7][1].is_zero());
    EXPECT_TRUE(range.rows[7][2].is_zero());

    auto xt = lookup::Table::xor_table(3);
    ASSERT_EQ(xt.size(), 64u);
    for (uint64_t a = 0; a < 8; ++a) {
        for (uint64_t b = 0; b < 8; ++b) {
            const auto &row = xt.rows[a * 8 + b];
            EXPECT_EQ(row[0], Fr::from_uint(a));
            EXPECT_EQ(row[1], Fr::from_uint(b));
            EXPECT_EQ(row[2], Fr::from_uint(a ^ b));
        }
    }
}

TEST(Table, CircuitEmbeddingAndWitnessChecks)
{
    SCOPED_TRACE(repro());
    std::mt19937_64 rng(kSeed + 1);
    auto [index, wit] =
        scenarios::circuits::range_bank_lookup(3, 4, rng, 2);
    ASSERT_TRUE(index.has_lookup);
    EXPECT_EQ(index.table_rows, 16u);
    EXPECT_GE(index.num_gates(), index.table_rows);
    // One lookup gate per value.
    size_t lookups = 0;
    for (size_t i = 0; i < index.q_lookup.size(); ++i) {
        if (!index.q_lookup[i].is_zero()) ++lookups;
    }
    EXPECT_EQ(lookups, 3u);
    EXPECT_TRUE(wit.satisfies_gates(index));
    EXPECT_TRUE(wit.satisfies_wiring(index));
    EXPECT_TRUE(wit.satisfies_lookups(index));

    // Perturb a looked-up wire: only the lookup check must trip.
    Witness bad = wit;
    for (size_t i = 0; i < index.q_lookup.size(); ++i) {
        if (!index.q_lookup[i].is_zero()) {
            bad.w[1][i] += Fr::one();
            break;
        }
    }
    EXPECT_TRUE(bad.satisfies_gates(index));
    EXPECT_FALSE(bad.satisfies_lookups(index));
}

TEST(LogUp, MultiplicitiesCountEveryLookupAndFractionsBalance)
{
    SCOPED_TRACE(repro());
    std::mt19937_64 rng(kSeed + 2);
    auto [index, wit] =
        scenarios::circuits::xor_rescue_lookup(5, 3, rng, 2);
    ASSERT_TRUE(index.has_lookup);
    const std::array<const mle::Mle *, 3> wires = {&wit.w[0], &wit.w[1],
                                                   &wit.w[2]};
    mle::Mle m = lookup::multiplicities(index.q_lookup, index.table_tag,
                                        index.table, index.table_rows,
                                        wires);
    // Total multiplicity == number of active lookup rows.
    Fr total = Fr::zero(), lookups = Fr::zero();
    for (size_t i = 0; i < m.size(); ++i) {
        total += m[i];
        lookups += index.q_lookup[i];
    }
    EXPECT_EQ(total, lookups);

    // The fractional identity holds for any challenge draw.
    std::mt19937_64 chal(kSeed + 3);
    Fr lambda = Fr::random(chal), gamma = Fr::random(chal);
    auto oracles = lookup::build_helper_oracles(
        index.q_lookup, index.table_tag, index.table, wires, m, lambda,
        gamma);
    Fr lhs = Fr::zero(), rhs = Fr::zero();
    for (size_t i = 0; i < m.size(); ++i) {
        lhs += (*oracles.h_f)[i];
        rhs += (*oracles.h_t)[i];
    }
    EXPECT_EQ(lhs, rhs) << "sum h_f != sum h_t on an honest witness";

    // Per-row well-formedness: h_f (lambda + f) == q_lookup and
    // h_t (lambda + t) == m, with the tagged 4-column folds.
    for (size_t i = 0; i < m.size(); ++i) {
        Fr f = lambda + lookup::fold_tagged(index.q_lookup[i],
                                            wit.w[0][i], wit.w[1][i],
                                            wit.w[2][i], gamma);
        Fr t = lambda + lookup::fold_tagged(index.table_tag[i],
                                            index.table[0][i],
                                            index.table[1][i],
                                            index.table[2][i], gamma);
        EXPECT_EQ((*oracles.h_f)[i] * f, index.q_lookup[i]);
        EXPECT_EQ((*oracles.h_t)[i] * t, m[i]);
    }
}

TEST(LogUp, ParallelMultiplicityConstructionMatchesSerial)
{
    SCOPED_TRACE(repro());
    // Big enough that ff::parallel_for actually forks (2^mu > its
    // min_chunk): ~2000 lookup gates put the circuit at 2^13 rows.
    std::mt19937_64 rng(kSeed + 40);
    auto [index, wit] =
        scenarios::circuits::range_bank_lookup(2000, 8, rng, 2);
    const std::array<const mle::Mle *, 3> wires = {&wit.w[0], &wit.w[1],
                                                   &wit.w[2]};
    mle::Mle serial, parallel;
    {
        zkspeed::ff::ParallelismGuard guard(1);
        serial = lookup::multiplicities(index.q_lookup, index.table_tag,
                                        index.table, index.table_rows,
                                        wires);
    }
    {
        zkspeed::ff::ParallelismGuard guard(8);
        parallel = lookup::multiplicities(index.q_lookup, index.table_tag,
                                          index.table, index.table_rows,
                                          wires);
    }
    EXPECT_EQ(serial, parallel)
        << "parallel multiplicity pass is not bit-identical to serial";
}

TEST(LookupProof, CompletenessAcrossEveryVerificationPath)
{
    SCOPED_TRACE(repro());
    auto st = prove_range_lookup(kSeed + 4);
    EXPECT_TRUE(hyperplonk::verify(st.vk, st.publics, st.proof,
                                   hyperplonk::PcsCheckMode::ideal));
    EXPECT_TRUE(hyperplonk::verify(st.vk, st.publics, st.proof,
                                   hyperplonk::PcsCheckMode::pairing));
    verifier::PairingAccumulator acc;
    ASSERT_TRUE(
        hyperplonk::verify_deferred(st.vk, st.publics, st.proof, acc));
    EXPECT_TRUE(acc.check());

    // XOR table flavour too (3-column relation rows).
    std::mt19937_64 rng(kSeed + 5);
    auto [index, wit] = scenarios::circuits::xor_rescue_lookup(4, 3, rng);
    std::mt19937_64 srs_rng(kSeed + 6);
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, srs_rng));
    auto [pk, vk] = hyperplonk::keygen(index, srs);
    auto proof = hyperplonk::prove(pk, wit);
    EXPECT_TRUE(hyperplonk::verify(vk, wit.public_inputs(index), proof,
                                   hyperplonk::PcsCheckMode::ideal));
}

TEST(LookupProof, OutOfTableWitnessCannotProduceAValidProof)
{
    SCOPED_TRACE(repro());
    std::mt19937_64 rng(kSeed + 7);
    auto [index, wit] = scenarios::circuits::range_bank_lookup(4, 5, rng);
    // Push a looked-up triple out of the table (past the front door).
    bool broke = false;
    for (size_t i = 0; i < index.q_lookup.size(); ++i) {
        if (!index.q_lookup[i].is_zero()) {
            wit.w[1][i] += Fr::one();
            broke = true;
            break;
        }
    }
    ASSERT_TRUE(broke);
    ASSERT_FALSE(wit.satisfies_lookups(index));
    std::mt19937_64 srs_rng(kSeed + 8);
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, srs_rng));
    auto [pk, vk] = hyperplonk::keygen(index, srs);
    // Force a prove anyway: soundness demands the proof not verify.
    auto proof = hyperplonk::prove(pk, wit);
    EXPECT_FALSE(hyperplonk::verify(vk, wit.public_inputs(index), proof,
                                    hyperplonk::PcsCheckMode::ideal));
    EXPECT_FALSE(hyperplonk::verify(vk, wit.public_inputs(index), proof,
                                    hyperplonk::PcsCheckMode::pairing));
}

TEST(LookupProof, SerializationRoundTripPreservesLookupArtifacts)
{
    SCOPED_TRACE(repro());
    auto st = prove_range_lookup(kSeed + 9);
    ASSERT_TRUE(st.proof.evals.lookup);
    auto bytes = hyperplonk::serde::serialize_proof(st.proof);
    EXPECT_GE(bytes.size(), st.proof.size_bytes());
    auto back = hyperplonk::serde::deserialize_proof(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->evals.lookup);
    EXPECT_EQ(back->m_comm, st.proof.m_comm);
    EXPECT_EQ(back->hf_comm, st.proof.hf_comm);
    EXPECT_EQ(back->ht_comm, st.proof.ht_comm);
    EXPECT_EQ(back->lookupcheck.round_evals,
              st.proof.lookupcheck.round_evals);
    EXPECT_EQ(back->evals.at_lookup, st.proof.evals.at_lookup);
    // Canonical: re-encoding reproduces the bytes, and the decoded
    // proof still verifies.
    EXPECT_EQ(hyperplonk::serde::serialize_proof(*back), bytes);
    EXPECT_TRUE(hyperplonk::verify(st.vk, st.publics, *back,
                                   hyperplonk::PcsCheckMode::pairing));

    // The vk round-trips its lookup commitments (pairing-mode SRS).
    auto vk_bytes = hyperplonk::serde::serialize_verifying_key(st.vk);
    auto vk_back =
        hyperplonk::serde::deserialize_verifying_key(vk_bytes);
    ASSERT_TRUE(vk_back.has_value());
    EXPECT_TRUE(vk_back->has_lookup);
    EXPECT_EQ(vk_back->lookup_comms, st.vk.lookup_comms);
    EXPECT_TRUE(hyperplonk::verify(*vk_back, st.publics, *back,
                                   hyperplonk::PcsCheckMode::pairing));

    // Truncations die in strict decoding.
    for (size_t len : {0ul, 9ul, bytes.size() / 2, bytes.size() - 1}) {
        auto cut = std::span<const uint8_t>(bytes.data(), len);
        EXPECT_FALSE(
            hyperplonk::serde::deserialize_proof(cut).has_value())
            << len;
    }
    // Unknown flag bits die too (byte 8 is the flags byte).
    auto bad_flags = bytes;
    bad_flags[8] |= 0x80;
    EXPECT_FALSE(
        hyperplonk::serde::deserialize_proof(bad_flags).has_value());
}

// ---------------------------------------------------------------------
// Proof-field mutation sweep over the lookup artifacts: every mutation
// must decode and then be rejected — inline by the algebra, or, for
// pairing-side fields, by the batch fold with bisection fingering
// exactly the mutated proof.
// ---------------------------------------------------------------------

struct LookupMutation {
    const char *field;
    std::function<void(hyperplonk::Proof &)> apply;
};

std::vector<LookupMutation>
lookup_mutations()
{
    auto bump_g1 = [](curve::G1Affine &p) {
        p = (curve::G1::from_affine(p) + curve::g1_generator()).to_affine();
    };
    std::vector<LookupMutation> muts;
    muts.push_back({"m_comm", [bump_g1](hyperplonk::Proof &p) {
                        bump_g1(p.m_comm);
                    }});
    muts.push_back({"hf_comm", [bump_g1](hyperplonk::Proof &p) {
                        bump_g1(p.hf_comm);
                    }});
    muts.push_back({"ht_comm", [bump_g1](hyperplonk::Proof &p) {
                        bump_g1(p.ht_comm);
                    }});
    muts.push_back({"lookupcheck.round_evals[0][0]",
                    [](hyperplonk::Proof &p) {
                        p.lookupcheck.round_evals[0][0] += Fr::one();
                    }});
    for (size_t e = 0; e < hyperplonk::BatchEvaluations::kLookupCount;
         ++e) {
        static const char *kNames[] = {
            "at_lookup[w1]", "at_lookup[w2]", "at_lookup[w3]",
            "at_lookup[q_lookup]", "at_lookup[tag]", "at_lookup[t1]",
            "at_lookup[t2]", "at_lookup[t3]", "at_lookup[m]",
            "at_lookup[h_f]", "at_lookup[h_t]"};
        muts.push_back({kNames[e], [e](hyperplonk::Proof &p) {
                            p.evals.at_lookup[e] += Fr::one();
                        }});
    }
    muts.push_back({"gprime_proof.quotients[0]",
                    [bump_g1](hyperplonk::Proof &p) {
                        bump_g1(p.gprime_proof.quotients[0]);
                    }});
    return muts;
}

TEST(LookupMutation, EveryFieldMutationIsRejectedAndBisectionFingersIt)
{
    SCOPED_TRACE(repro());
    auto honest_a = prove_range_lookup(kSeed + 10);
    auto honest_b = prove_range_lookup(kSeed + 11);
    auto victim = prove_range_lookup(kSeed + 12);

    size_t algebra_rejections = 0, batch_rejections = 0;
    for (const LookupMutation &mut : lookup_mutations()) {
        SCOPED_TRACE(mut.field);
        auto mutated = victim.proof;
        mut.apply(mutated);

        // The mutation must survive the serialization boundary.
        auto bytes = hyperplonk::serde::serialize_proof(mutated);
        auto decoded = hyperplonk::serde::deserialize_proof(bytes);
        ASSERT_TRUE(decoded.has_value());

        verifier::PairingAccumulator acc;
        bool algebra_ok = hyperplonk::verify_deferred(
            victim.vk, victim.publics, *decoded, acc);
        EXPECT_FALSE(hyperplonk::verify(victim.vk, victim.publics,
                                        *decoded,
                                        hyperplonk::PcsCheckMode::pairing));
        if (!algebra_ok) {
            EXPECT_TRUE(acc.empty());
            ++algebra_rejections;
            continue;
        }

        // Algebraically clean: the folded pairing check must catch it,
        // and bisection must isolate exactly the mutated proof.
        verifier::BatchVerifier bv;
        for (const ProvenStatement *st : {&honest_a, &victim, &honest_b}) {
            verifier::PairingAccumulator a;
            const hyperplonk::Proof &pr =
                st == &victim ? *decoded : st->proof;
            ASSERT_TRUE(
                hyperplonk::verify_deferred(st->vk, st->publics, pr, a));
            bv.add(std::move(a));
        }
        auto result = bv.flush();
        ASSERT_EQ(result.verdicts.size(), 3u);
        EXPECT_TRUE(result.verdicts[0]) << "honest batch-mate rejected";
        EXPECT_FALSE(result.verdicts[1]) << "mutation not detected";
        EXPECT_TRUE(result.verdicts[2]) << "honest batch-mate rejected";
        EXPECT_GT(result.stats.bisection_steps, 0u);
        ++batch_rejections;
    }
    // The transcript binds the lookup commitments and claimed evals, so
    // those mutations die algebraically; the quotient mutation is the
    // pairing-side corruption only the batch flush can see.
    EXPECT_GE(algebra_rejections, 14u);
    EXPECT_GE(batch_rejections, 1u);
}

TEST(LookupWire, RequestRoundTripCarriesTheTable)
{
    SCOPED_TRACE(repro());
    std::mt19937_64 rng(kSeed + 13);
    auto [index, wit] = scenarios::circuits::range_bank_lookup(3, 4, rng);
    runtime::JobRequest req;
    req.request_id = 77;
    req.circuit = index;
    req.witness = wit;
    auto bytes = runtime::wire::encode_request(req);
    auto back = runtime::wire::decode_request(bytes);
    ASSERT_TRUE(back.has_value());
    ASSERT_TRUE(back->circuit.has_lookup);
    EXPECT_EQ(back->circuit.table_rows, index.table_rows);
    EXPECT_EQ(back->circuit.table_row_counts, index.table_row_counts);
    EXPECT_EQ(back->circuit.q_lookup, index.q_lookup);
    // The tag column is reconstructed from the counts, bit for bit.
    EXPECT_EQ(back->circuit.table_tag, index.table_tag);
    for (size_t k = 0; k < 3; ++k) {
        EXPECT_EQ(back->circuit.table[k], index.table[k]);
    }
    EXPECT_EQ(runtime::wire::encode_request(*back), bytes);

    // Strictness: non-boolean q_lookup and oversized table_rows reject.
    auto non_bool = req;
    for (size_t i = 0; i < non_bool.circuit.q_lookup.size(); ++i) {
        if (!non_bool.circuit.q_lookup[i].is_zero()) {
            non_bool.circuit.q_lookup[i] = Fr::from_uint(2);
            break;
        }
    }
    EXPECT_FALSE(runtime::wire::decode_request(
                     runtime::wire::encode_request(non_bool))
                     .has_value());
    auto oversized = req;
    oversized.circuit.table_row_counts[0] = index.num_gates() + 1;
    EXPECT_FALSE(runtime::wire::decode_request(
                     runtime::wire::encode_request(oversized))
                     .has_value());
    auto too_many_tables = req;
    too_many_tables.circuit.table_row_counts.assign(
        runtime::wire::kMaxRequestTables + 1, 1);
    EXPECT_FALSE(runtime::wire::decode_request(
                     runtime::wire::encode_request(too_many_tables))
                     .has_value());
    // A count huge enough to wrap the running total must be rejected
    // before it can size the tag-column reconstruction (the decoder
    // bounds each count before accumulating).
    auto wrapping = req;
    wrapping.circuit.table_row_counts = {1, ~uint64_t(0)};
    EXPECT_FALSE(runtime::wire::decode_request(
                     runtime::wire::encode_request(wrapping))
                     .has_value());
    // Padding rows must be copies of row 0: a garbage row past
    // table_rows would widen the committed table beyond the declared
    // one (the LogUp sum runs over all 2^mu rows). Build with a
    // table shorter than the circuit so padding rows exist.
    std::mt19937_64 rng2(kSeed + 14);
    auto [pad_index, pad_wit] =
        scenarios::circuits::range_bank_lookup(3, 3, rng2, 4);
    runtime::JobRequest widened;
    widened.request_id = 78;
    widened.circuit = pad_index;
    widened.witness = pad_wit;
    ASSERT_GT(widened.circuit.table[0].size(), pad_index.table_rows);
    EXPECT_TRUE(runtime::wire::decode_request(
                    runtime::wire::encode_request(widened))
                    .has_value());
    widened.circuit.table[0][pad_index.table_rows] = Fr::from_uint(999);
    EXPECT_FALSE(runtime::wire::decode_request(
                     runtime::wire::encode_request(widened))
                     .has_value());
}

// ---------------------------------------------------------------------
// Multi-table fusion: several tables in one circuit fold into one
// tagged LogUp argument.
// ---------------------------------------------------------------------

/** A circuit mixing a range(bits) table and an xor(bits) table: every
 * drawn value is range-checked under tag 1 and XOR-folded into a
 * running checksum under tag 2, checksum public. */
std::pair<CircuitIndex, Witness>
fused_range_xor_circuit(uint64_t seed, size_t values = 4,
                        unsigned bits = 3)
{
    std::mt19937_64 rng(seed);
    const uint64_t mask = (uint64_t(1) << bits) - 1;
    CircuitBuilder cb;
    size_t range_tag = cb.add_table(lookup::Table::range(bits));
    size_t xor_tag = cb.add_table(lookup::Table::xor_table(bits));
    uint64_t acc_val = rng() & mask;
    hyperplonk::Var acc = cb.add_variable(Fr::from_uint(acc_val));
    gadgets::range_via_lookup(cb, acc, range_tag);
    for (size_t i = 0; i < values; ++i) {
        uint64_t v = rng() & mask;
        hyperplonk::Var x = cb.add_variable(Fr::from_uint(v));
        gadgets::range_via_lookup(cb, x, range_tag);
        acc = gadgets::xor_via_lookup(cb, acc, x, xor_tag);
        acc_val ^= v;
    }
    hyperplonk::Var pub = cb.add_public_input(Fr::from_uint(acc_val));
    cb.assert_equal(pub, acc);
    return cb.build(2);
}

TEST(MultiTable, FusedBankEmbedsTagsAndCounts)
{
    SCOPED_TRACE(repro());
    auto [index, wit] = fused_range_xor_circuit(kSeed + 20);
    ASSERT_TRUE(index.has_lookup);
    ASSERT_EQ(index.num_tables(), 2u);
    EXPECT_EQ(index.table_row_counts[0], 8u);   // range3
    EXPECT_EQ(index.table_row_counts[1], 64u);  // xor3
    EXPECT_EQ(index.table_rows, 72u);
    // Tag column: 1 over the range slice, 2 over the xor slice, and
    // padding copies bank row 0 (tag 1).
    EXPECT_EQ(index.table_tag[0], Fr::one());
    EXPECT_EQ(index.table_tag[7], Fr::one());
    EXPECT_EQ(index.table_tag[8], Fr::from_uint(2));
    EXPECT_EQ(index.table_tag[71], Fr::from_uint(2));
    EXPECT_EQ(index.table_tag[72], Fr::one());
    // q_lookup carries the per-gate tags.
    bool saw_tag1 = false, saw_tag2 = false;
    for (size_t i = 0; i < index.q_lookup.size(); ++i) {
        if (index.q_lookup[i] == Fr::one()) saw_tag1 = true;
        if (index.q_lookup[i] == Fr::from_uint(2)) saw_tag2 = true;
    }
    EXPECT_TRUE(saw_tag1);
    EXPECT_TRUE(saw_tag2);
    EXPECT_TRUE(wit.satisfies_gates(index));
    EXPECT_TRUE(wit.satisfies_lookups(index));
}

TEST(MultiTable, FusedProofVerifiesOnEveryPath)
{
    SCOPED_TRACE(repro());
    auto [index, wit] = fused_range_xor_circuit(kSeed + 21);
    std::mt19937_64 srs_rng(kSeed + 22);
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, srs_rng));
    auto [pk, vk] = hyperplonk::keygen(index, srs);
    auto proof = hyperplonk::prove(pk, wit);
    auto publics = wit.public_inputs(index);
    EXPECT_TRUE(hyperplonk::verify(vk, publics, proof,
                                   hyperplonk::PcsCheckMode::ideal));
    EXPECT_TRUE(hyperplonk::verify(vk, publics, proof,
                                   hyperplonk::PcsCheckMode::pairing));
    verifier::PairingAccumulator acc;
    ASSERT_TRUE(hyperplonk::verify_deferred(vk, publics, proof, acc));
    EXPECT_TRUE(acc.check());
    // Serialization round-trips the fused proof canonically.
    auto bytes = hyperplonk::serde::serialize_proof(proof);
    auto back = hyperplonk::serde::deserialize_proof(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(hyperplonk::serde::serialize_proof(*back), bytes);
    // Wire round trip carries both tables.
    runtime::JobRequest req;
    req.request_id = 99;
    req.circuit = index;
    req.witness = wit;
    auto frame = runtime::wire::encode_request(req);
    auto decoded = runtime::wire::decode_request(frame);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->circuit.table_row_counts, index.table_row_counts);
    EXPECT_EQ(decoded->circuit.table_tag, index.table_tag);
}

TEST(MultiTable, CrossTableClaimIsRejected)
{
    SCOPED_TRACE(repro());
    // A triple valid under the range table (tag 1) claimed under the
    // xor table's tag must fail: (v, 0, 0) is only an xor row when
    // v = 0, so pick v != 0.
    CircuitBuilder cb;
    size_t range_tag = cb.add_table(lookup::Table::range(3));
    size_t xor_tag = cb.add_table(lookup::Table::xor_table(3));
    hyperplonk::Var v = cb.add_variable(Fr::from_uint(5));
    gadgets::range_via_lookup(cb, v, range_tag);
    // The forged gate: same (5, 0, 0) triple, wrong tag.
    hyperplonk::Var z1 = cb.add_variable(Fr::zero());
    hyperplonk::Var z2 = cb.add_variable(Fr::zero());
    cb.add_lookup_gate(xor_tag, v, z1, z2);
    auto [index, wit] = cb.build(2);
    // Front door: the tagged membership check must refuse the witness.
    EXPECT_TRUE(wit.satisfies_gates(index));
    EXPECT_FALSE(wit.satisfies_lookups(index));
    // Pushed past the front door, the proof must not verify: the
    // (tag, triple) pole has no matching bank pole.
    std::mt19937_64 srs_rng(kSeed + 24);
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, srs_rng));
    auto [pk, vk] = hyperplonk::keygen(index, srs);
    auto proof = hyperplonk::prove(pk, wit);
    EXPECT_FALSE(hyperplonk::verify(vk, wit.public_inputs(index), proof,
                                    hyperplonk::PcsCheckMode::ideal));
    EXPECT_FALSE(hyperplonk::verify(vk, wit.public_inputs(index), proof,
                                    hyperplonk::PcsCheckMode::pairing));
}

TEST(TableRegistration, SetTableIsAThinAliasOverAddTable)
{
    CircuitBuilder cb;
    cb.set_table(lookup::Table::range(3));
    EXPECT_EQ(cb.num_tables(), 1u);
    EXPECT_EQ(cb.table().name, "range3");
    // A second set_table must refuse (add_table is the fusion API).
    EXPECT_THROW(cb.set_table(lookup::Table::xor_table(2)),
                 std::logic_error);
    EXPECT_EQ(cb.add_table(lookup::Table::xor_table(2)), 2u);
    EXPECT_EQ(cb.table(2).name, "xor2");
}

TEST(TableRegistration, OversizedBankThrowsStructuredError)
{
    CircuitBuilder cb;
    cb.set_max_vars(4);  // bank bound 2^4 = 16 rows
    cb.add_table(lookup::Table::range(3));  // 8 rows: fits
    try {
        cb.add_table(lookup::Table::xor_table(3));  // 64 rows: breaks
        FAIL() << "oversized table registration did not throw";
    } catch (const lookup::TableSizeError &e) {
        EXPECT_EQ(e.table, "xor3");
        EXPECT_EQ(e.table_rows, 64u);
        EXPECT_EQ(e.total_rows, 72u);
        EXPECT_EQ(e.max_vars, 4u);
        EXPECT_NE(std::string(e.what()).find("xor3"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("2^4"), std::string::npos);
    }
    // Lowering the bound below an already-registered bank throws the
    // same structured error (the bound cannot be bypassed by ordering).
    CircuitBuilder late;
    late.add_table(lookup::Table::xor_table(3));  // 64 rows, fits 2^20
    EXPECT_THROW(late.set_max_vars(4), lookup::TableSizeError);
}

}  // namespace
