/**
 * @file
 * Private transaction example — the blockchain use case that motivates
 * HyperPlonk's small proofs (paper Section 1: one proof per transaction
 * is posted on chain and checked by every node).
 *
 * A sender proves, without revealing any balance or amount:
 *   - the new balances are consistent:
 *       sender_after   = sender_before  - amount
 *       receiver_after = receiver_before + amount
 *   - the transferred amount is a valid 16-bit value (bit-decomposed
 *     with boolean gates, so no wrap-around "negative" transfer), and
 *   - the sender balance does not go negative (sender_after also
 *     range-checked to 16 bits).
 * Only commitments-in-the-clear (here: the public transaction id) are
 * exposed.
 */
#include <cstdio>
#include <random>

#include "hyperplonk/prover.hpp"

namespace {

using namespace zkspeed::hyperplonk;
using zkspeed::ff::Fr;

/**
 * Constrain `value` to `bits` bits: allocate the bits as boolean
 * variables and assert the weighted sum reconstructs the value.
 * @return the bit variables.
 */
std::vector<Var>
range_check(CircuitBuilder &cb, Var value, unsigned bits, uint64_t v)
{
    std::vector<Var> bit_vars;
    Var acc = cb.add_variable(Fr::zero());
    cb.assert_constant(acc, Fr::zero());
    for (unsigned i = 0; i < bits; ++i) {
        uint64_t bit = (v >> i) & 1;
        Var b = cb.add_variable(Fr::from_uint(bit));
        cb.assert_boolean(b);
        bit_vars.push_back(b);
        // acc += b * 2^i  via a custom gate: acc_next = acc + (2^i) b.
        Var next = cb.add_variable(cb.value(acc) +
                                   Fr::from_uint(uint64_t(1) << i) *
                                       cb.value(b));
        cb.add_custom_gate(Fr::one(), Fr::from_uint(uint64_t(1) << i),
                           Fr::zero(), Fr::one(), Fr::zero(), acc, b,
                           next);
        acc = next;
    }
    cb.assert_equal(acc, value);
    return bit_vars;
}

}  // namespace

int
main()
{
    // Secret state.
    const uint64_t sender_before = 50000;
    const uint64_t receiver_before = 1200;
    const uint64_t amount = 1750;
    const uint64_t tx_id = 0xC0FFEE;  // public

    CircuitBuilder cb;
    Var pub_tx = cb.add_public_input(Fr::from_uint(tx_id));
    (void)pub_tx;

    Var s0 = cb.add_variable(Fr::from_uint(sender_before));
    Var r0 = cb.add_variable(Fr::from_uint(receiver_before));
    Var amt = cb.add_variable(Fr::from_uint(amount));

    // Balance equations.
    Var s1 = cb.add_subtraction(s0, amt);
    Var r1 = cb.add_addition(r0, amt);
    (void)r1;

    // Range checks: amount and the post-transfer sender balance.
    range_check(cb, amt, 16, amount);
    range_check(cb, s1, 16, sender_before - amount);

    auto [index, witness] = cb.build();
    std::printf("Private-transaction circuit: %zu gates (2^%zu)\n",
                index.num_gates(), index.num_vars);

    std::mt19937_64 rng(7);
    auto srs = std::make_shared<zkspeed::pcs::Srs>(
        zkspeed::pcs::Srs::generate(index.num_vars, rng));
    auto [pk, vk] = keygen(std::move(index), srs);

    Proof proof = prove(pk, witness);
    auto publics = witness.public_inputs(pk.index);
    bool ok = verify(vk, publics, proof);
    std::printf("Proof: %zu bytes — the chain never sees balances or "
                "amount.\nVerifier: %s\n",
                proof.size_bytes(), ok ? "ACCEPT" : "REJECT");

    // Overdraft attempt: amount > balance wraps the field value, which
    // the 16-bit range check rejects (the witness no longer satisfies
    // the boolean/range gates, so any forged proof fails).
    {
        CircuitBuilder evil;
        evil.add_public_input(Fr::from_uint(tx_id));
        Var es0 = evil.add_variable(Fr::from_uint(100));
        Var eamt = evil.add_variable(Fr::from_uint(5000));
        Var es1 = evil.add_subtraction(es0, eamt);  // "negative"
        range_check(evil, es1, 16, 100 - 5000);     // wraps mod p
        auto [eindex, ewit] = evil.build();
        std::printf("Overdraft witness satisfies gates: %s "
                    "(expected no)\n",
                    ewit.satisfies_gates(eindex) ? "yes" : "no");
    }
    return ok ? 0 : 1;
}
