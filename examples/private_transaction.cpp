/**
 * @file
 * Private transaction example — the blockchain use case that motivates
 * HyperPlonk's small proofs (paper Section 1: one proof per transaction
 * is posted on chain and checked by every node).
 *
 * A sender proves, without revealing any balance or amount, that the
 * new balances are consistent, the amount fits 16 bits, and the sender
 * balance does not go negative. The circuit is the scenario library's
 * `private-transaction` family (scenarios::circuits::private_transaction);
 * the overdraft attempt below is the same library's adversarial
 * `overdraft-transaction` variant, whose witness violates its own range
 * gates — the canonical corrupted-witness workload.
 */
#include <cstdio>
#include <random>

#include "hyperplonk/prover.hpp"
#include "scenarios/circuits.hpp"

int
main()
{
    using namespace zkspeed;

    scenarios::circuits::TransferParams params;
    params.bits = 16;
    std::mt19937_64 circuit_rng(7);
    auto [index, witness] =
        scenarios::circuits::private_transaction(params, circuit_rng);
    std::printf("Private-transaction circuit: %zu gates (2^%zu)\n",
                index.num_gates(), index.num_vars);

    std::mt19937_64 rng(7);
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, rng));
    auto publics = witness.public_inputs(index);
    auto [pk, vk] = hyperplonk::keygen(std::move(index), srs);

    hyperplonk::Proof proof = hyperplonk::prove(pk, witness);
    bool ok = hyperplonk::verify(vk, publics, proof);
    std::printf("Proof: %zu bytes — the chain never sees balances or "
                "amount.\nVerifier: %s\n",
                proof.size_bytes(), ok ? "ACCEPT" : "REJECT");

    // Overdraft attempt: amount > balance wraps the field value, which
    // the 16-bit range check rejects (the witness no longer satisfies
    // the boolean/range gates, so any forged proof fails).
    {
        scenarios::circuits::TransferParams evil = params;
        evil.overdraft = true;
        std::mt19937_64 evil_rng(7);
        auto [eindex, ewit] =
            scenarios::circuits::private_transaction(evil, evil_rng);
        std::printf("Overdraft witness satisfies gates: %s "
                    "(expected no)\n",
                    ewit.satisfies_gates(eindex) ? "yes" : "no");
    }
    return ok ? 0 : 1;
}
