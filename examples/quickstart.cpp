/**
 * @file
 * Quickstart: prove and verify a tiny statement with HyperPlonk.
 *
 * The statement: "I know secret x, y such that (x + y) * y == 35 and
 * x is the public value 2". The circuit is built gate by gate, keys are
 * generated against a locally-simulated universal SRS, and the proof is
 * checked with both the fast trapdoor verifier and the real
 * pairing-based verifier.
 */
#include <cstdio>
#include <random>

#include "hyperplonk/prover.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::hyperplonk;
    using ff::Fr;

    // 1. Build the circuit (x = 2 public; y = 5 secret).
    CircuitBuilder cb;
    Var x = cb.add_public_input(Fr::from_uint(2));
    Var y = cb.add_variable(Fr::from_uint(5));
    Var s = cb.add_addition(x, y);        // s = x + y = 7
    Var p = cb.add_multiplication(s, y);  // p = s * y = 35
    cb.assert_constant(p, Fr::from_uint(35));
    auto [index, witness] = cb.build(/*min_vars=*/3);
    std::printf("Circuit: %zu gates (2^%zu), %zu public input(s)\n",
                index.num_gates(), index.num_vars, index.num_public);
    std::printf("Gate identity satisfied: %s; wiring satisfied: %s\n",
                witness.satisfies_gates(index) ? "yes" : "no",
                witness.satisfies_wiring(index) ? "yes" : "no");

    // 2. Universal setup (simulated locally; in production this is a
    // one-time ceremony reusable by every circuit of this size).
    std::mt19937_64 rng(std::random_device{}());
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, rng));

    // 3. Key generation: commit to the circuit's preprocessed index.
    auto [pk, vk] = keygen(std::move(index), srs);

    // 4. Prove.
    Proof proof = prove(pk, witness);
    std::printf("Proof generated: %zu bytes\n", proof.size_bytes());

    // 5. Verify (both PCS checking modes).
    auto publics = witness.public_inputs(pk.index);
    bool ok_ideal = verify(vk, publics, proof, PcsCheckMode::ideal);
    bool ok_pairing = verify(vk, publics, proof, PcsCheckMode::pairing);
    std::printf("Verification (trapdoor): %s\n",
                ok_ideal ? "ACCEPT" : "REJECT");
    std::printf("Verification (pairing):  %s\n",
                ok_pairing ? "ACCEPT" : "REJECT");

    // 6. A wrong public input must be rejected.
    std::vector<Fr> wrong = publics;
    wrong[0] = Fr::from_uint(3);
    std::printf("Wrong public input:      %s (expected REJECT)\n",
                verify(vk, wrong, proof) ? "ACCEPT" : "REJECT");
    return ok_ideal && ok_pairing ? 0 : 1;
}
