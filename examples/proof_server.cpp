/**
 * @file
 * Proof server driver: feed a stream of length-prefixed, wire-encoded
 * proving requests through the batch proving service, then round-trip
 * the returned proofs as VERIFY jobs through the same worker pool, and
 * print the responses, per-class metrics and the accelerator replay.
 *
 * Usage:
 *   proof_server [requests.bin|-] [num_workers]
 *
 * With a file argument the driver decodes `[u64 len][request bytes]...`
 * frames from it (`-` keeps the demo stream). Without one it synthesises a demo stream: a batch of
 * Rescue-style and random-circuit jobs with repeated circuit shapes
 * (exercising the key cache) plus deliberately malformed frames
 * (exercising the reject-don't-crash path). Every frame — valid or not
 * — gets exactly one response on the output stream.
 *
 * The round-trip stage asserts the protocol end to end: every proof the
 * service produced must verify (batched, one folded pairing check), and
 * one deliberately corrupted proof must be rejected — isolated by the
 * batch verifier's bisection, without dragging honest proofs down.
 */
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string_view>
#include <thread>

#include "hyperplonk/serialize.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/http.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "obs/attrib.hpp"
#include "runtime/service.hpp"
#include "scenarios/registry.hpp"
#include "sim/replay.hpp"
#include "sim/tech.hpp"

using namespace zkspeed;
using namespace zkspeed::runtime;
using ff::Fr;

namespace {

/** A job drawn from the scenario workload library. */
JobRequest
scenario_request(uint64_t id, const char *family, uint64_t seed)
{
    scenarios::Spec spec;
    spec.name = family;
    spec.seed = seed;
    auto inst = scenarios::Registry::global().build(spec);
    JobRequest req;
    req.request_id = id;
    req.circuit = std::move(inst.circuit);
    req.witness = std::move(inst.witness);
    return req;
}

/** Demo stream: repeated circuit shapes + malformed frames. */
std::vector<uint8_t>
demo_stream()
{
    std::vector<uint8_t> stream;
    uint64_t id = 1;
    // Three scenario-library jobs: a Rescue hash chain, a Merkle
    // membership proof, and a lookup-argument range bank (the wire
    // frame carries the table; the proof carries the LogUp artifacts).
    wire::append_frame(stream, wire::encode_request(
        scenario_request(id++, "rescue-chain", 2025)));
    wire::append_frame(stream, wire::encode_request(
        scenario_request(id++, "merkle-membership", 2026)));
    wire::append_frame(stream, wire::encode_request(
        scenario_request(id++, "range-via-lookup", 2028)));
    // The same random circuit proved three times: cache hits.
    std::mt19937_64 circuit_rng(7);
    auto [index, witness] = hyperplonk::random_circuit(5, circuit_rng);
    for (int i = 0; i < 3; ++i) {
        JobRequest req;
        req.request_id = id++;
        req.circuit = index;
        req.witness = witness;
        wire::append_frame(stream, wire::encode_request(req));
    }
    // A malformed frame: truncated request.
    auto victim = wire::encode_request(
        scenario_request(id++, "range-bank", 2027));
    victim.resize(victim.size() / 3);
    wire::append_frame(stream, victim);
    // A garbage frame.
    wire::append_frame(stream, std::vector<uint8_t>{0xba, 0xad, 0xf0, 0x0d});
    return stream;
}

/**
 * ^C / SIGTERM: flush every telemetry artifact (metrics, trace, log
 * ring, attribution, flight snapshot) before dying, so an interrupted
 * run keeps its telemetry. Not strictly async-signal-safe (the
 * exporters allocate and lock), but the alternative is losing the
 * artifacts entirely — acceptable for a demo driver on its way out.
 * (Fatal signals — SIGSEGV/SIGABRT — go through the flight recorder's
 * own handlers instead, which ARE async-signal-safe.)
 */
void
on_interrupt(int sig)
{
    obs::flush_all();
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

std::vector<uint8_t>
read_file(const char *path)
{
    FILE *f = std::fopen(path, "rb");
    if (!f) {
        obs::logf(obs::LogLevel::error, "proof_server", 0,
                  "cannot open %s", path);
        std::exit(2);
    }
    std::fseek(f, 0, SEEK_END);
    long n = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(n), 0);
    if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
        obs::logf(obs::LogLevel::error, "proof_server", 0,
                  "short read from %s", path);
        std::exit(2);
    }
    std::fclose(f);
    return bytes;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool use_demo = argc <= 1 || std::string_view(argv[1]) == "-";
    std::vector<uint8_t> stream =
        use_demo ? demo_stream() : read_file(argv[1]);
    size_t workers = argc > 2 ? size_t(std::atoi(argv[2])) : 2;

    auto frames = wire::split_frames(stream);
    if (!frames.has_value()) {
        obs::logf(obs::LogLevel::error, "proof_server", 0,
                  "input is not a valid frame stream");
        return 2;
    }
    std::printf("proof_server: %zu request frame(s), %zu worker(s)\n\n",
                frames->size(), workers);

    std::signal(SIGINT, on_interrupt);
    std::signal(SIGTERM, on_interrupt);
    // Crash forensics: pre-serialized FLIGHT_report.json snapshot kept
    // fresh from normal context, dumped async-signal-safely on
    // SIGSEGV/SIGABRT (path override: ZKSPEED_FLIGHT_OUT).
    obs::flight::install();

    ServiceConfig cfg;
    cfg.num_workers = workers;
    cfg.queue_capacity = 32;
    ProofService service(cfg);

    // Live scrape plane (ZKSPEED_HTTP_PORT; 0 = ephemeral). /readyz
    // answers from the service's readiness formula.
    obs::set_readiness_provider([&service] {
        auto r = service.readiness();
        return obs::Readiness{r.ready, r.detail};
    });
    auto http = obs::HttpServer::start_from_env();
    if (http != nullptr) {
        std::printf("http: serving telemetry on 127.0.0.1:%u\n",
                    unsigned(http->port()));
        if (const char *pf = std::getenv("ZKSPEED_HTTP_PORT_FILE");
            pf != nullptr && *pf != '\0') {
            obs::write_file(pf, std::to_string(http->port()) + "\n");
        }
    }

    // Live stats line every 500 ms while jobs are in flight: windowed
    // rates and interval percentiles from successive registry snapshots
    // (obs::WindowDelta), on stderr so the report stream stays clean.
    std::atomic<bool> live_stop{false};
    std::thread live_stats([&service, &live_stop] {
        auto &reg = obs::MetricsRegistry::global();
        const obs::SeriesSelector ok_sel{
            "zkspeed_job_latency_ms",
            {{"service", service.instance_label()}, {"status", "ok"}}};
        obs::Snapshot prev = reg.snapshot();
        auto prev_t = std::chrono::steady_clock::now();
        while (!live_stop.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(500));
            auto now_t = std::chrono::steady_clock::now();
            obs::Snapshot snap = reg.snapshot();
            double dt =
                std::chrono::duration<double>(now_t - prev_t).count();
            auto delta = obs::WindowDelta::between(snap, prev, dt);
            auto hist = delta.merged_histogram(ok_sel);
            if (hist.count > 0) {
                char line[160];
                std::snprintf(line, sizeof(line),
                              "%.1f jobs/s  p50 %.1f ms  p99 %.1f ms  "
                              "queue %zu",
                              double(hist.count) / dt,
                              hist.quantile(0.50), hist.quantile(0.99),
                              service.queue_depth());
                std::fprintf(stderr, "[live] %s\n", line);
                obs::log_event(obs::LogLevel::info, "live_stats", line);
            }
            prev = std::move(snap);
            prev_t = now_t;
        }
    });

    std::vector<std::future<JobResponse>> futures;
    futures.reserve(frames->size());
    for (auto &frame : *frames) {
        // Copy: the frames are re-decoded below to rebuild client-side
        // verifying keys for the VERIFY round-trip.
        futures.push_back(service.submit(frame));
    }

    std::vector<uint8_t> response_stream;
    std::vector<JobResponse> prove_responses;
    size_t ok = 0;
    for (auto &f : futures) {
        JobResponse resp = f.get();
        std::printf("  request %-3llu %-18s 2^%-2u gates  %7.2f ms  "
                    "%s%zu proof bytes%s\n",
                    (unsigned long long)resp.request_id,
                    to_string(resp.status), resp.metrics.num_vars,
                    resp.metrics.total_ms,
                    resp.metrics.key_cache_hit ? "[cached] " : "",
                    resp.proof.size(),
                    resp.ok() ? "" : (" — " + resp.error).c_str());
        wire::append_frame(response_stream, wire::encode_response(resp));
        if (resp.ok()) ++ok;
        prove_responses.push_back(std::move(resp));
    }

    // Optional hold-open window (ZKSPEED_SERVE_MS): keep the workers
    // loaded with small prove jobs for ~N ms so external scrapers (the
    // CI lane curling /metrics and /readyz) observe a live, busy
    // process rather than a raced startup.
    if (const char *serve = std::getenv("ZKSPEED_SERVE_MS");
        serve != nullptr && *serve != '\0') {
        double serve_ms = std::atof(serve);
        auto serve_until =
            std::chrono::steady_clock::now() +
            std::chrono::duration<double, std::milli>(serve_ms);
        std::mt19937_64 serve_rng(11);
        auto [serve_circuit, serve_witness] =
            hyperplonk::random_circuit(4, serve_rng);
        uint64_t serve_id = 9000;
        size_t served = 0;
        while (std::chrono::steady_clock::now() < serve_until) {
            JobRequest req;
            req.request_id = serve_id++;
            req.circuit = serve_circuit;
            req.witness = serve_witness;
            service.submit(req).get();
            ++served;
        }
        obs::logf(obs::LogLevel::info, "proof_server", 0,
                  "serve window closed after %zu extra prove job(s)",
                  served);
    }

    // ------------------------------------------------------------------
    // Round-trip: feed every proof back as a VERIFY job, plus one
    // deliberately corrupted copy that must be rejected via bisection.
    // The client rebuilds each vk from the request's circuit (the vk is
    // deterministic given the circuit and the service's SRS seed).
    // ------------------------------------------------------------------
    KeyCache client_keys(8, cfg.srs_seed);
    std::vector<std::future<JobResponse>> verify_futures;
    uint64_t corrupted_id = 0;
    size_t expected_ok = 0;
    for (size_t i = 0; i < frames->size(); ++i) {
        const JobResponse &resp = prove_responses[i];
        if (!resp.ok()) continue;
        auto req = wire::decode_request((*frames)[i]);
        if (!req.has_value()) continue;
        auto keys = client_keys.get_or_create(req->circuit).first;
        VerifyRequest vreq;
        vreq.request_id = 1000 + resp.request_id;
        vreq.vk = hyperplonk::serde::serialize_verifying_key(*keys.vk);
        vreq.public_inputs = req->witness.public_inputs(req->circuit);
        vreq.proof = resp.proof;
        verify_futures.push_back(service.submit(vreq));
        ++expected_ok;
        auto proof = hyperplonk::serde::deserialize_proof(resp.proof);
        if (corrupted_id == 0 && proof.has_value() &&
            !proof->gprime_proof.quotients.empty()) {
            // One tampered copy: still decodes (the point stays on the
            // curve) but the folded pairing check must reject it.
            auto &q = proof->gprime_proof.quotients[0];
            q = (curve::G1::from_affine(q) + curve::g1_generator())
                    .to_affine();
            vreq.request_id = corrupted_id = 2000 + resp.request_id;
            vreq.proof = hyperplonk::serde::serialize_proof(*proof);
            verify_futures.push_back(service.submit(vreq));
        }
    }

    std::printf("\nround-trip: %zu VERIFY job(s) (incl. 1 corrupted)\n",
                verify_futures.size());
    size_t verified_ok = 0;
    bool corrupted_rejected = false;
    for (auto &f : verify_futures) {
        JobResponse resp = f.get();
        std::printf("  request %-4llu %-14s batch=%-2u  %7.2f ms%s\n",
                    (unsigned long long)resp.request_id,
                    to_string(resp.status), resp.metrics.batch_size,
                    resp.metrics.total_ms,
                    resp.ok() ? "" : (" — " + resp.error).c_str());
        wire::append_frame(response_stream, wire::encode_response(resp));
        if (resp.ok()) ++verified_ok;
        if (resp.request_id == corrupted_id &&
            resp.status == JobStatus::invalid_proof) {
            corrupted_rejected = true;
        }
    }
    live_stop.store(true, std::memory_order_relaxed);
    live_stats.join();

    bool round_trip_ok =
        verified_ok == expected_ok && corrupted_rejected;
    std::printf("  => %zu/%zu accepted, corrupted proof %s\n",
                verified_ok, expected_ok,
                corrupted_rejected ? "rejected (bisection)"
                                   : "NOT rejected");

    auto m = service.metrics();
    auto cache = service.cache_stats();
    std::printf("\naggregate: %llu ok, %llu rejected, %llu failed\n",
                (unsigned long long)m.jobs_ok(),
                (unsigned long long)m.jobs_rejected(),
                (unsigned long long)m.jobs_failed());
    std::printf("  prove   %llu ok, mean %.2f ms\n",
                (unsigned long long)m.prove_class.jobs_ok,
                m.prove_class.mean_latency_ms());
    std::printf("  verify  %llu ok, %llu rejected, mean %.2f ms "
                "(%llu batch(es), %.1f proofs/batch, "
                "%llu bisection probe(s))\n",
                (unsigned long long)m.verify_class.jobs_ok,
                (unsigned long long)m.verify_class.jobs_rejected,
                m.verify_class.mean_latency_ms(),
                (unsigned long long)m.verify_batches.batches,
                m.verify_batches.mean_batch_size(),
                (unsigned long long)m.verify_batches.bisection_steps);
    std::printf("  modmuls  %.1f M Fr, %.1f M Fq\n",
                double(m.modmul_fr) / 1e6, double(m.modmul_fq) / 1e6);
    std::printf("  key cache: %llu hits / %llu misses (%.0f%% hit rate)\n",
                (unsigned long long)cache.hits,
                (unsigned long long)cache.misses,
                100.0 * cache.hit_rate());
    std::printf("  response stream: %zu bytes for %zu responses\n",
                response_stream.size(),
                futures.size() + verify_futures.size());

    // Registry percentiles (Fig-12-style breakdown needs more than the
    // struct view's min/mean/max).
    {
        auto snap = obs::MetricsRegistry::global().snapshot();
        const auto *lat = snap.find(
            "zkspeed_job_latency_ms",
            {{"service", service.instance_label()},
             {"class", "prove"},
             {"status", "ok"}});
        if (lat != nullptr && lat->hist.count > 0) {
            std::printf("  prove latency p50/p90/p99: %.2f / %.2f / "
                        "%.2f ms (±%.1f%% bucket error)\n",
                        lat->hist.quantile(0.50), lat->hist.quantile(0.90),
                        lat->hist.quantile(0.99),
                        100.0 * obs::HistogramBuckets::kMaxRelativeError);
        }
    }

    // What would the paper's accelerator do with this exact job stream?
    // Shutdown also fires the telemetry artifact hooks: set
    // ZKSPEED_METRICS_OUT / ZKSPEED_TRACE_OUT to dump metrics.prom (or
    // .json) and a Perfetto-loadable trace.json.
    service.shutdown();  // flush any parked verify window into the trace
    if (const char *p = std::getenv("ZKSPEED_METRICS_OUT")) {
        std::printf("  metrics exposition written to %s\n", p);
    }
    if (const char *p = std::getenv("ZKSPEED_TRACE_OUT")) {
        std::printf("  trace (%zu span(s), %llu dropped) written to %s\n",
                    obs::TraceRecorder::global().size(),
                    (unsigned long long)obs::TraceRecorder::global()
                        .dropped(),
                    p);
    }
    auto trace = service.trace();
    if (!trace.empty()) {
        auto report =
            sim::replay_trace(trace, sim::DesignConfig::paper_default());
        std::printf("\nzkSpeed replay (366 mm^2 design, %zu prove job(s) "
                    "+ %zu verify flush(es)):\n",
                    report.prove_jobs, report.verify_flushes);
        std::printf("  software  %8.2f ms busy  -> %7.1f units/s\n",
                    report.sw_total_ms, report.sw_jobs_per_s);
        std::printf("  zkSpeed   %8.2f ms busy  -> %7.1f units/s "
                    "(%.0fx)\n",
                    report.chip_total_ms, report.chip_jobs_per_s,
                    report.speedup);
        if (report.verify_flushes > 0) {
            std::printf("  verify    %8.2f ms sw vs %.2f ms chip for "
                        "%llu proof(s) checked\n",
                        report.sw_verify_ms, report.chip_verify_ms,
                        (unsigned long long)report.proofs_verified);
        }

        // Kernel-level cost attribution: join the prover spans still
        // in the trace ring with the replay's per-kernel cycles, export
        // the drift gauges and write ATTRIB_report.json. Re-dump the
        // env artifacts afterwards so ZKSPEED_METRICS_OUT includes the
        // drift series.
        obs::attrib::Options aopts;
        aopts.clock_ghz = sim::kClockGhz;
        auto attrib =
            obs::attrib::build(obs::TraceRecorder::global().events(),
                               sim::attrib_jobs(report), aopts);
        obs::attrib::export_to_registry(attrib,
                                        obs::MetricsRegistry::global());
        const char *attrib_out = std::getenv("ZKSPEED_ATTRIB_OUT");
        const char *attrib_path =
            attrib_out != nullptr && *attrib_out != '\0'
                ? attrib_out
                : "ATTRIB_report.json";
        std::string attrib_json = obs::attrib::render_json(attrib);
        obs::set_latest_attrib_json(attrib_json);  // /attrib goes live
        obs::write_file(attrib_path, attrib_json);
        obs::dump_artifacts_to_env();
        std::printf("\nattribution: %zu job(s) joined, %zu kernel "
                    "group(s), report written to %s\n",
                    attrib.jobs_joined, attrib.kernels.size(),
                    attrib_path);
        for (const auto &row : attrib.kernels) {
            std::printf("  %-18s %8.2f ms measured  %8.2f ms modeled  "
                        "drift %.2f\n",
                        row.kernel.c_str(), row.measured_seconds * 1e3,
                        double(row.modeled_cycles) /
                            (sim::kClockGhz * 1e6),
                        row.drift_ratio);
        }
    }
    return ok > 0 && round_trip_ok ? 0 : 1;
}
