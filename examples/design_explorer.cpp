/**
 * @file
 * Accelerator design explorer: the workflow of the paper's Section 7
 * as a tool. Given a target workload size, an area budget and a latency
 * goal, sweep the zkSpeed design space and recommend a configuration,
 * printing its full area/power/runtime report.
 *
 * Usage: design_explorer [mu] [area_budget_mm2] [latency_ms]
 */
#include <cstdio>
#include <cstdlib>

#include "sim/cpu_model.hpp"
#include "sim/dse.hpp"

int
main(int argc, char **argv)
{
    using namespace zkspeed::sim;

    size_t mu = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;
    double area_budget =
        argc > 2 ? std::strtod(argv[2], nullptr) : 400.0;
    double latency_goal =
        argc > 3 ? std::strtod(argv[3], nullptr) : 20.0;

    Workload wl = Workload::mock(mu);
    std::printf("Exploring zkSpeed designs for 2^%zu gates "
                "(budget %.0f mm^2, goal %.1f ms)...\n",
                mu, area_budget, latency_goal);

    auto sweep = Dse::sweep(wl, /*sram_target_mu=*/mu);
    std::printf("Global Pareto frontier: %zu designs\n",
                sweep.global.size());

    // Recommend: cheapest design meeting the latency goal; otherwise
    // the fastest within the budget.
    const DsePoint *pick = nullptr;
    for (const auto &p : sweep.global) {
        if (p.runtime_ms <= latency_goal && p.area_mm2 <= area_budget) {
            if (pick == nullptr || p.area_mm2 < pick->area_mm2) {
                pick = &p;
            }
        }
    }
    if (pick == nullptr) {
        std::printf("No design meets both constraints; showing the "
                    "fastest within budget.\n");
        for (const auto &p : sweep.global) {
            if (p.area_mm2 <= area_budget &&
                (pick == nullptr || p.runtime_ms < pick->runtime_ms)) {
                pick = &p;
            }
        }
    }
    if (pick == nullptr) {
        std::printf("Area budget too small for any design.\n");
        return 1;
    }

    std::printf("\nRecommended design:\n  %s\n",
                pick->config.describe().c_str());
    Chip chip(pick->config);
    auto rep = chip.run(wl);
    AreaBreakdown a = chip.area();
    std::printf("  runtime: %.3f ms  (CPU baseline: %.0f ms -> %.0fx)\n",
                rep.runtime_ms, CpuModel::total_ms(mu),
                CpuModel::total_ms(mu) / rep.runtime_ms);
    std::printf("  area: %.1f mm^2 (compute %.1f, SRAM %.1f, PHY %.1f)\n",
                a.total(), a.compute_total(), a.sram, a.hbm_phy);
    std::printf("  average power: %.1f W\n", rep.total_power);
    std::printf("  step breakdown:\n");
    for (const auto &[step, cyc] : rep.step_cycles) {
        std::printf("    %-26s %8.3f ms (%4.1f%%)\n", step.c_str(),
                    double(cyc) / 1e6,
                    100.0 * double(cyc) / double(rep.total_cycles));
    }
    return 0;
}
