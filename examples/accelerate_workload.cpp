/**
 * @file
 * End-to-end bridge between the two halves of the repository: build a
 * real circuit, prove and verify it with the software library, then
 * feed the circuit's *measured* witness statistics to the zkSpeed chip
 * model and report what the accelerator would do with the same workload
 * at paper scale.
 */
#include <cstdio>
#include <random>

#include "hyperplonk/gadgets.hpp"
#include "hyperplonk/prover.hpp"
#include "sim/chip.hpp"
#include "sim/cpu_model.hpp"

int
main()
{
    using namespace zkspeed;
    using namespace zkspeed::hyperplonk;
    namespace g = zkspeed::hyperplonk::gadgets;
    using ff::Fr;

    // 1. A realistic workload: a batch of Rescue preimage proofs.
    std::mt19937_64 rng(77);
    CircuitBuilder cb;
    for (int i = 0; i < 4; ++i) {
        Fr a = Fr::random(rng), b = Fr::random(rng);
        Fr h = g::rescue_hash2_value(a, b);
        Var pub = cb.add_public_input(h);
        Var out = g::rescue_hash2(cb, cb.add_variable(a),
                                  cb.add_variable(b));
        cb.assert_equal(out, pub);
    }
    auto [index, witness] = cb.build();
    std::printf("Circuit: %zu gates (2^%zu)\n", index.num_gates(),
                index.num_vars);

    // 2. Prove and verify in software.
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, rng));
    auto [pk, vk] = keygen(std::move(index), srs);
    Proof proof = prove(pk, witness);
    bool ok = verify(vk, witness.public_inputs(pk.index), proof);
    std::printf("Software prover: proof %zu bytes, verifier %s\n",
                proof.size_bytes(), ok ? "ACCEPT" : "REJECT");

    // 3. Measure the witness scalar population (what the Sparse MSMs
    // actually see) and build a calibrated simulator workload.
    size_t zeros = 0, ones = 0, total = 0;
    for (const auto &w : witness.w) {
        for (size_t i = 0; i < w.size(); ++i) {
            if (w[i].is_zero()) ++zeros;
            else if (w[i].is_one()) ++ones;
            ++total;
        }
    }
    std::printf("Witness scalars: %.1f%% zero, %.1f%% one, %.1f%% "
                "dense\n",
                100.0 * zeros / total, 100.0 * ones / total,
                100.0 * (total - zeros - ones) / total);

    // 4. What would zkSpeed do with this workload at paper scale?
    // Scale the measured statistics up to a 2^21 version of the same
    // application (the Table-3 Rescue row).
    sim::Workload wl = sim::Workload::from_stats(
        "rescue batch (measured stats)", 21, zeros, ones, total);
    sim::Chip chip(sim::DesignConfig::paper_default());
    auto rep = chip.run(wl);
    double cpu_ms = sim::CpuModel::total_ms(wl.mu);
    std::printf("\nzkSpeed (366 mm^2, 2 TB/s) on the 2^%zu-gate "
                "version:\n", wl.mu);
    std::printf("  runtime %.3f ms vs CPU %.0f ms -> %.0fx speedup\n",
                rep.runtime_ms, cpu_ms, cpu_ms / rep.runtime_ms);
    for (const auto &[step, cyc] : rep.step_cycles) {
        std::printf("  %-26s %7.3f ms\n", step.c_str(),
                    double(cyc) / 1e6);
    }
    return ok ? 0 : 1;
}
