/**
 * @file
 * Rollup example: one succinct proof attesting to a batch of
 * transfers — the "Rollup of 10 Pvt Tx" workload class of Table 3.
 *
 * A rollup operator maintains a small account ledger, applies a batch
 * of transfers inside the circuit, and publishes only the pre/post
 * ledger checksums plus a proof. Every chain node verifies the batch in
 * milliseconds instead of re-executing it; the proof stays a few KB no
 * matter how many transfers are batched (HyperPlonk's succinctness).
 */
#include <cstdio>
#include <random>
#include <vector>

#include "hyperplonk/prover.hpp"

namespace {

using namespace zkspeed::hyperplonk;
using zkspeed::ff::Fr;

struct Transfer {
    size_t from, to;
    uint64_t amount;
};

}  // namespace

int
main()
{
    // The operator's private ledger (8 accounts) and a transfer batch.
    std::vector<uint64_t> balances = {9000, 2500, 770,  10,
                                      4400, 125,  6100, 42};
    std::vector<Transfer> batch = {
        {0, 1, 1200}, {1, 2, 300}, {4, 0, 2000}, {6, 5, 999},
        {0, 7, 123},  {2, 3, 15},  {6, 4, 2500}, {1, 6, 450},
        {4, 2, 77},   {0, 6, 800},
    };

    CircuitBuilder cb;

    // Ledger variables, plus a running weighted checksum the verifier
    // can recompute from the public pre/post states.
    std::vector<Var> acct;
    acct.reserve(balances.size());
    for (uint64_t b : balances) {
        acct.push_back(cb.add_variable(Fr::from_uint(b)));
    }
    auto checksum = [&](const std::vector<Var> &accounts) {
        // sum_i 3^i * balance_i, built with constant-mul gates.
        Var acc = cb.add_variable(Fr::zero());
        cb.assert_constant(acc, Fr::zero());
        Fr w = Fr::one();
        for (Var a : accounts) {
            Var next =
                cb.add_variable(cb.value(acc) + w * cb.value(a));
            cb.add_custom_gate(Fr::one(), w, Fr::zero(), Fr::one(),
                               Fr::zero(), acc, a, next);
            acc = next;
            w *= Fr::from_uint(3);
        }
        return acc;
    };

    Var pre_checksum = checksum(acct);

    // Apply every transfer with in-circuit arithmetic.
    for (const Transfer &t : batch) {
        acct[t.from] =
            cb.add_subtraction(acct[t.from],
                               [&] {
                                   Var a = cb.add_variable(
                                       Fr::from_uint(t.amount));
                                   cb.assert_constant(
                                       a, Fr::from_uint(t.amount));
                                   return a;
                               }());
        Var amt = cb.add_variable(Fr::from_uint(t.amount));
        cb.assert_constant(amt, Fr::from_uint(t.amount));
        acct[t.to] = cb.add_addition(acct[t.to], amt);
    }

    Var post_checksum = checksum(acct);

    // Publish the checksums: bind them to public inputs.
    Var pub_pre = cb.add_public_input(cb.value(pre_checksum));
    Var pub_post = cb.add_public_input(cb.value(post_checksum));
    cb.assert_equal(pub_pre, pre_checksum);
    cb.assert_equal(pub_post, post_checksum);

    auto [index, witness] = cb.build();
    std::printf("Rollup circuit: %zu transfers -> %zu gates (2^%zu)\n",
                batch.size(), index.num_gates(), index.num_vars);

    std::mt19937_64 rng(11);
    auto srs = std::make_shared<zkspeed::pcs::Srs>(
        zkspeed::pcs::Srs::generate(index.num_vars, rng));
    auto [pk, vk] = keygen(std::move(index), srs);
    Proof proof = prove(pk, witness);
    auto publics = witness.public_inputs(pk.index);

    std::printf("Proof size: %zu bytes for the whole batch\n",
                proof.size_bytes());
    bool ok = verify(vk, publics, proof);
    std::printf("Verifier: %s\n", ok ? "ACCEPT" : "REJECT");

    // Value conservation is a consequence of balanced transfers: the
    // un-weighted sum of balances is preserved. Demonstrate by
    // tampering: claim a different post-state checksum.
    std::vector<Fr> forged = publics;
    forged[1] += Fr::one();
    std::printf("Forged post-state: %s (expected REJECT)\n",
                verify(vk, forged, proof) ? "ACCEPT" : "REJECT");
    return ok ? 0 : 1;
}
