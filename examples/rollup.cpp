/**
 * @file
 * Rollup example: one succinct proof attesting to a batch of
 * transfers — the "Rollup of 10 Pvt Tx" workload class of Table 3.
 *
 * A rollup operator maintains a small account ledger, applies a batch
 * of transfers inside the circuit, and publishes only the pre/post
 * ledger checksums plus a proof. Every chain node verifies the batch in
 * milliseconds instead of re-executing it; the proof stays a few KB no
 * matter how many transfers are batched (HyperPlonk's succinctness).
 *
 * The circuit itself lives in the scenario workload library
 * (scenarios::circuits::rollup) so this example, the benches and the
 * conformance harness all prove the same construction.
 */
#include <cstdio>
#include <random>

#include "hyperplonk/prover.hpp"
#include "scenarios/circuits.hpp"

int
main()
{
    using namespace zkspeed;
    using zkspeed::ff::Fr;

    scenarios::circuits::RollupParams params;
    params.accounts = 8;
    params.transfers = 10;
    std::mt19937_64 circuit_rng(11);
    auto [index, witness] =
        scenarios::circuits::rollup(params, circuit_rng);
    std::printf("Rollup circuit: %zu transfers -> %zu gates (2^%zu)\n",
                params.transfers, index.num_gates(), index.num_vars);

    std::mt19937_64 rng(11);
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, rng));
    auto publics = witness.public_inputs(index);
    auto [pk, vk] = hyperplonk::keygen(std::move(index), srs);
    hyperplonk::Proof proof = hyperplonk::prove(pk, witness);

    std::printf("Proof size: %zu bytes for the whole batch\n",
                proof.size_bytes());
    bool ok = hyperplonk::verify(vk, publics, proof);
    std::printf("Verifier: %s\n", ok ? "ACCEPT" : "REJECT");

    // Value conservation is a consequence of balanced transfers: the
    // un-weighted sum of balances is preserved. Demonstrate by
    // tampering: claim a different post-state checksum.
    std::vector<Fr> forged = publics;
    forged[1] += Fr::one();
    std::printf("Forged post-state: %s (expected REJECT)\n",
                hyperplonk::verify(vk, forged, proof) ? "ACCEPT"
                                                      : "REJECT");
    return ok ? 0 : 1;
}
