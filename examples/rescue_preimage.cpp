/**
 * @file
 * Rescue-hash preimage example — the workload class behind Table 3's
 * "2^12 Rescue-Hash Invocations" row.
 *
 * The prover demonstrates knowledge of preimages for a batch of
 * algebraic-hash digests (e.g. nullifier openings in a shielded pool)
 * without revealing them. Each invocation of the width-3 Rescue-style
 * permutation costs a few hundred Plonk gates, matching the paper's
 * ~512 gates/invocation scaling (2^12 invocations -> 2^21 gates).
 */
#include <cstdio>
#include <random>

#include "hyperplonk/gadgets.hpp"
#include "hyperplonk/prover.hpp"

int
main(int argc, char **argv)
{
    using namespace zkspeed;
    using namespace zkspeed::hyperplonk;
    namespace g = zkspeed::hyperplonk::gadgets;
    using ff::Fr;

    const size_t invocations =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;

    std::mt19937_64 rng(42);
    CircuitBuilder cb;
    std::vector<Fr> digests;
    for (size_t i = 0; i < invocations; ++i) {
        Fr a = Fr::random(rng);
        Fr b = Fr::random(rng);
        Fr h = g::rescue_hash2_value(a, b);
        digests.push_back(h);
        Var pub = cb.add_public_input(h);
        Var va = cb.add_variable(a);  // secret preimage
        Var vb = cb.add_variable(b);
        Var out = g::rescue_hash2(cb, va, vb);
        cb.assert_equal(out, pub);
    }
    auto [index, witness] = cb.build();
    std::printf("%zu Rescue invocations -> %zu gates (2^%zu), "
                "%.0f gates/invocation\n",
                invocations, index.num_gates(), index.num_vars,
                double(cb.num_gates()) / double(invocations));

    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(index.num_vars, rng));
    auto [pk, vk] = keygen(std::move(index), srs);
    Proof proof = prove(pk, witness);
    auto publics = witness.public_inputs(pk.index);
    bool ok = verify(vk, publics, proof);
    std::printf("Proof: %zu bytes for %zu preimage claims; verifier: "
                "%s\n",
                proof.size_bytes(), invocations,
                ok ? "ACCEPT" : "REJECT");
    return ok ? 0 : 1;
}
