#include "sim/dse.hpp"

#include <algorithm>

namespace zkspeed::sim {

const std::vector<double> &
Dse::bandwidths()
{
    static const std::vector<double> kBw = {64,  128,  256, 512,
                                            1024, 2048, 4096};
    return kBw;
}

std::vector<DesignConfig>
Dse::grid_for_bandwidth(double gbps)
{
    // Table 2 knob values.
    static const int kCores[] = {1, 2};
    static const int kPes[] = {1, 2, 4, 8, 16};
    static const int kWindows[] = {7, 8, 9, 10};
    static const int kPoints[] = {1024, 2048, 4096, 8192, 16384};
    static const int kFracPes[] = {1, 2, 4};
    static const int kScPes[] = {1, 2, 4, 8, 16};
    static const int kUpdPes[] = {1, 3, 5, 7, 9, 11};
    static const int kUpdMuls[] = {1, 2, 4, 8, 16};

    std::vector<DesignConfig> grid;
    for (int cores : kCores) {
        for (int pes : kPes) {
            for (int w : kWindows) {
                for (int pts : kPoints) {
                    for (int fp : kFracPes) {
                        for (int sc : kScPes) {
                            for (int up : kUpdPes) {
                                for (int um : kUpdMuls) {
                                    DesignConfig c;
                                    c.msm_cores = cores;
                                    c.msm_pes_per_core = pes;
                                    c.msm_window = w;
                                    c.msm_points_per_pe = pts;
                                    c.frac_pes = fp;
                                    c.sumcheck_pes = sc;
                                    c.mle_update_pes = up;
                                    c.mle_update_modmuls = um;
                                    c.bandwidth_gbps = gbps;
                                    grid.push_back(c);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return grid;
}

std::vector<DsePoint>
Dse::evaluate(const std::vector<DesignConfig> &configs, const Workload &wl)
{
    std::vector<DsePoint> out;
    out.reserve(configs.size());
    for (const auto &cfg : configs) {
        Chip chip(cfg);
        DsePoint p;
        p.config = cfg;
        p.runtime_ms = chip.run(wl).runtime_ms;
        AreaBreakdown a = chip.area();
        p.area_mm2 = a.total();
        p.compute_area_mm2 = a.compute_total() + a.sram;
        out.push_back(p);
    }
    return out;
}

std::vector<DsePoint>
Dse::pareto(std::vector<DsePoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const DsePoint &a, const DsePoint &b) {
                  if (a.runtime_ms != b.runtime_ms) {
                      return a.runtime_ms < b.runtime_ms;
                  }
                  return a.area_mm2 < b.area_mm2;
              });
    std::vector<DsePoint> front;
    double best_area = 1e300;
    for (const auto &p : points) {
        if (p.area_mm2 < best_area) {
            front.push_back(p);
            best_area = p.area_mm2;
        }
    }
    return front;
}

Dse::SweepResult
Dse::sweep(const Workload &wl, size_t sram_target_mu)
{
    SweepResult res;
    std::vector<DsePoint> all;
    for (double bw : bandwidths()) {
        auto grid = grid_for_bandwidth(bw);
        for (auto &cfg : grid) cfg.sram_target_mu = sram_target_mu;
        auto pts = evaluate(grid, wl);
        auto front = pareto(pts);
        all.insert(all.end(), front.begin(), front.end());
        res.per_bw.emplace_back(bw, std::move(front));
    }
    res.global = pareto(std::move(all));
    return res;
}

DsePoint
Dse::pick_iso_area(const std::vector<DsePoint> &frontier,
                   double area_budget)
{
    DsePoint best;
    best.runtime_ms = 1e300;
    for (const auto &p : frontier) {
        if (p.compute_area_mm2 <= area_budget &&
            p.runtime_ms < best.runtime_ms) {
            best = p;
        }
    }
    if (best.runtime_ms == 1e300 && !frontier.empty()) {
        // Nothing fits: fall back to the smallest design.
        best = *std::min_element(
            frontier.begin(), frontier.end(),
            [](const DsePoint &a, const DsePoint &b) {
                return a.compute_area_mm2 < b.compute_area_mm2;
            });
    }
    return best;
}

}  // namespace zkspeed::sim
