/**
 * @file
 * Replay a proving/verification-service trace through the zkSpeed chip
 * model.
 *
 * The runtime records, per proved job, its circuit size, measured
 * witness scalar statistics and software prove time, and per verify
 * batch flush, the folded RLC MSM size, multi-pairing width and
 * measured software timings (runtime::TraceEntry). Replaying converts
 * each entry into the accelerator-side latency of the identical work:
 *
 *  - PROVE entries become calibrated sim::Workloads (the Sparse MSMs
 *    see the job's real zero/one population) and run on the full chip.
 *  - VERIFY entries run their folded MSM on the chip's MSM unit
 *    (compute overlapped with HBM streaming of the points), while the
 *    Miller loops + final exponentiation keep their measured CPU time —
 *    the paper leaves pairings on the host, so the chip only
 *    accelerates the MSM side of verification.
 *
 * Comparing aggregate throughput answers the serving question the
 * paper's Table 3 answers per proof: how many zkSpeed chips would this
 * software deployment replace, now for both sides of the protocol?
 */
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/attrib.hpp"
#include "runtime/job.hpp"
#include "sim/config.hpp"

namespace zkspeed::sim {

/** One replayed unit of work (a proved job or a verify batch flush). */
struct ReplayedJob {
    runtime::JobKind kind = runtime::JobKind::prove;
    size_t mu = 0;
    double sw_ms = 0;    ///< measured software time
    double chip_ms = 0;  ///< simulated zkSpeed latency
    /** VERIFY flushes: proofs decided by this unit of work. */
    uint32_t batch_size = 0;
    /** Request id from the trace entry (prove jobs; verify flushes fold
     * several requests and keep 0). Joins against prover span
     * correlation ids in obs/attrib. */
    uint64_t request_id = 0;
    /** Modeled cycle breakdown (prove jobs only; empty for verify). */
    uint64_t total_cycles = 0;
    std::vector<std::pair<std::string, uint64_t>> kernel_cycles;
    std::vector<std::pair<std::string, uint64_t>> step_cycles;
};

struct ReplayReport {
    std::vector<ReplayedJob> jobs;

    double sw_total_ms = 0;    ///< software busy time (all entries)
    double chip_total_ms = 0;  ///< chip busy time, entries back-to-back
    /** Throughput assuming each side runs its entries back-to-back. */
    double sw_jobs_per_s = 0;
    double chip_jobs_per_s = 0;
    /** chip throughput / software throughput on this exact stream. */
    double speedup = 0;

    // Per-class breakdown.
    size_t prove_jobs = 0;
    double sw_prove_ms = 0;
    double chip_prove_ms = 0;
    size_t verify_flushes = 0;
    /** Proofs decided across all verify flushes. */
    uint64_t proofs_verified = 0;
    double sw_verify_ms = 0;
    double chip_verify_ms = 0;
};

/**
 * Run every trace entry through a chip of the given design. Distinct
 * (mu, stats) prove jobs are simulated individually; the chip processes
 * the stream serially (the paper's chip proves one statement at a time).
 */
ReplayReport replay_trace(const std::vector<runtime::TraceEntry> &trace,
                          const DesignConfig &design);

/**
 * Adapt the prove jobs of a replay into the attribution engine's
 * modeled-side input (obs/attrib.hpp). Jobs without a request id (old
 * traces, verify flushes) are skipped — they can never join a span.
 */
std::vector<obs::attrib::ModeledJob> attrib_jobs(
    const ReplayReport &report);

}  // namespace zkspeed::sim
