/**
 * @file
 * Replay a proving-service trace through the zkSpeed chip model.
 *
 * The runtime records, per proved job, its circuit size, measured
 * witness scalar statistics and software prove time (runtime::TraceEntry).
 * Replaying converts each entry into a calibrated sim::Workload (the
 * Sparse MSMs see the job's real zero/one population) and runs it on a
 * chip design, yielding the accelerator-side latency of the identical
 * job stream. Comparing aggregate throughput answers the serving
 * question the paper's Table 3 answers per proof: how many zkSpeed
 * chips would this software deployment replace?
 */
#pragma once

#include <vector>

#include "runtime/job.hpp"
#include "sim/config.hpp"

namespace zkspeed::sim {

/** One replayed job. */
struct ReplayedJob {
    size_t mu = 0;
    double sw_ms = 0;    ///< measured software prove time
    double chip_ms = 0;  ///< simulated zkSpeed latency
};

struct ReplayReport {
    std::vector<ReplayedJob> jobs;

    double sw_total_ms = 0;    ///< software busy time (sum of proves)
    double chip_total_ms = 0;  ///< chip busy time, jobs run back-to-back
    /** Throughput assuming each side runs its jobs back-to-back. */
    double sw_jobs_per_s = 0;
    double chip_jobs_per_s = 0;
    /** chip throughput / software throughput on this exact stream. */
    double speedup = 0;
};

/**
 * Run every trace entry through a chip of the given design. Distinct
 * (mu, stats) jobs are simulated individually; the chip processes the
 * stream serially (the paper's chip proves one statement at a time).
 */
ReplayReport replay_trace(const std::vector<runtime::TraceEntry> &trace,
                          const DesignConfig &design);

}  // namespace zkspeed::sim
