/**
 * @file
 * Full-chip zkSpeed model: assembles the eight units, sizes memory, and
 * statically schedules the HyperPlonk protocol steps (paper Section 5).
 *
 * The dataflow is data-oblivious at stage granularity, so each step's
 * latency is the maximum of the pipelined stage latencies and the HBM
 * transfer time for the step's traffic — computation overlaps
 * communication whenever the paper's schedule allows it.
 */
#pragma once

#include <map>
#include <string>

#include "sim/config.hpp"
#include "sim/fracmle_unit.hpp"
#include "sim/lookup_unit.hpp"
#include "sim/memory.hpp"
#include "sim/misc_units.hpp"
#include "sim/msm_unit.hpp"
#include "sim/mtu.hpp"
#include "sim/sumcheck_unit.hpp"

namespace zkspeed::sim {

/** Area breakdown in mm^2 (Table 5 rows). */
struct AreaBreakdown {
    double msm = 0;
    double sumcheck = 0;
    double construct_nd = 0;
    double fracmle = 0;
    double mle_combine = 0;
    double mle_update = 0;
    double mtu = 0;
    double other = 0;  ///< SHA3 + interconnect

    double sram = 0;
    double hbm_phy = 0;

    double
    compute_total() const
    {
        return msm + sumcheck + construct_nd + fracmle + mle_combine +
               mle_update + mtu + other;
    }
    double memory_total() const { return sram + hbm_phy; }
    double total() const { return compute_total() + memory_total(); }
};

/** Result of simulating one proof on one design. */
struct ChipReport {
    uint64_t total_cycles = 0;
    double runtime_ms = 0;

    /** Per-protocol-step latency (Figure 12b granularity). */
    std::map<std::string, uint64_t> step_cycles;
    /** Per-kernel latency (Figure 14 granularity). */
    std::map<std::string, uint64_t> kernel_cycles;
    /** Unit utilisation in [0, 1] (Figure 13). */
    std::map<std::string, double> utilization;
    /** Average power per unit group in W (Table 5). */
    std::map<std::string, double> power;
    double total_power = 0;
    /** Total HBM traffic in bytes. */
    double hbm_bytes = 0;
};

class Chip
{
  public:
    explicit Chip(const DesignConfig &cfg);

    const DesignConfig &config() const { return cfg_; }

    /** Area breakdown of this design (workload independent). */
    AreaBreakdown area() const;

    /** Simulate proving one workload end to end. */
    ChipReport run(const Workload &wl) const;

  private:
    DesignConfig cfg_;
    MsmUnit msm_;
    SumcheckUnit sumcheck_;
    MtuUnit mtu_;
    FracMleUnit frac_;
    LookupUnit lookup_;
    MemorySystem mem_;
};

}  // namespace zkspeed::sim
