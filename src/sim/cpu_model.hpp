/**
 * @file
 * CPU baseline model (AMD EPYC 7502, 32 cores, 296 mm^2 die).
 *
 * The paper's baseline is the Espresso HyperPlonk Rust prover on an EPYC
 * 7502 (Section 7.3). We cannot rerun that testbed, so the model anchors
 * total runtime to the paper's published end-to-end measurements
 * (Table 3: 1429 ms at 2^17 up to 74052 ms at 2^23) with a
 * c0 + c1*n + c2*n*log2(n) fit, and distributes time across kernels with
 * the Figure-12a profile. Our own C++ prover provides measured runtimes
 * at small scales (see bench_software_kernels) to sanity-check the
 * model's shape; absolute large-scale numbers are the paper's.
 * DESIGN.md Section 3 records this substitution.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace zkspeed::sim {

class CpuModel
{
  public:
    /** CPU die (core + cache) area used for iso-area comparisons. */
    static constexpr double kDieAreaMm2 = 296.0;

    /** Total proving time in ms for 2^mu gates. */
    static double total_ms(size_t mu);

    /**
     * Per-kernel time in ms, Figure 12a profile. Keys:
     *  "Witness MSMs" (Sparse MSMs), "ZeroCheck" (Gate Identity),
     *  "Wiring MSMs" (PermCheck dense MSMs + create-PermCheck-MLEs),
     *  "PermCheck", "FinalEval" (Batch Evals), "Other" (MLE Combine),
     *  "OpenCheck", "PolyOpen MSMs".
     */
    static std::map<std::string, double> kernel_ms(size_t mu);

    /** The Figure-12a CPU runtime shares at 2^20 gates. */
    static const std::map<std::string, double> &kernel_shares();
};

}  // namespace zkspeed::sim
