/**
 * @file
 * Small fixed-function units: Construct N&D, MLE Combine and SHA3.
 */
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/config.hpp"
#include "sim/tech.hpp"

namespace zkspeed::sim {

/**
 * Construct N&D (Section 4.4.1): elementwise affine combinations turning
 * witness/permutation MLEs into the six N/D intermediates, then the
 * two triple products feeding FracMLE.
 */
class ConstructNdUnit
{
  public:
    /** Modmuls per gate: beta*sigma_j for j=1..3 plus the two triple
     * products (N and D) at 2 muls each. */
    static constexpr int kModmulsPerGate = 7;

    static uint64_t
    cycles(size_t m)
    {
        uint64_t n = uint64_t(1) << m;
        return n * kModmulsPerGate / kConstructNdModmuls + kModmulLatency;
    }

    static double area() { return kConstructNdModmuls * kModmulAreaFr; }
};

/**
 * MLE Combine (Section 4.5): linear combinations building the six y
 * MLEs before OpenCheck and g' before the opening MSMs. The two uses
 * are serial, so one shared bank of multipliers serves both.
 */
class MleCombineUnit
{
  public:
    /** Cycles to apply `muls` scalar-multiply-accumulate operations. */
    static uint64_t
    cycles(uint64_t muls)
    {
        return muls / kMleCombineModmuls + kModmulLatency;
    }

    static double area() { return kMleCombineModmuls * kModmulAreaFr; }
    static double
    area_without_sharing()
    {
        return kMleCombineModmulsUnshared * kModmulAreaFr;
    }
};

/** SHA3 transcript unit (Section 3.3.6). */
class Sha3Unit
{
  public:
    /** Cycles to absorb `blocks` rate-blocks into the transcript. */
    static uint64_t
    cycles(uint64_t blocks)
    {
        return std::max<uint64_t>(blocks, 1) * kSha3Cycles;
    }

    static double area() { return kSha3Area; }
};

}  // namespace zkspeed::sim
