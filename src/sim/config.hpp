/**
 * @file
 * zkSpeed design configuration (the Table-2 design space) and workload
 * descriptors.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace zkspeed::sim {

/** One zkSpeed design point: the knobs of Table 2. */
struct DesignConfig {
    // MSM unit.
    int msm_cores = 1;          ///< {1, 2}
    int msm_pes_per_core = 16;  ///< {1, 2, 4, 8, 16}
    int msm_window = 9;         ///< {7, 8, 9, 10}
    int msm_points_per_pe = 2048;  ///< {1K, 2K, 4K, 8K, 16K}

    // FracMLE unit.
    int frac_pes = 1;  ///< {1, 2, 4}
    int inversion_batch = 64;

    // SumCheck + MLE Update units.
    int sumcheck_pes = 2;        ///< {1, 2, 4, 8, 16}
    int mle_update_pes = 11;     ///< {1, .., 11}
    int mle_update_modmuls = 4;  ///< {1, 2, 4, 8, 16}

    // Memory system.
    double bandwidth_gbps = 2048.0;  ///< {64 .. 4096}
    /** Problem size (log2 gates) the global MLE SRAM is provisioned for. */
    size_t sram_target_mu = 23;

    /** Human-readable one-liner for reports. */
    std::string describe() const;

    /** The highlighted configuration of Table 5 / Section 7.4. */
    static DesignConfig paper_default();
};

/** A HyperPlonk proving workload. */
struct Workload {
    std::string name;
    size_t mu = 20;  ///< log2 of the gate count

    // Witness scalar statistics for the Sparse MSMs (Section 6.2;
    // pessimistic default: 10% dense, 45% ones, 45% zeros).
    double dense_fraction = 0.10;
    double ones_fraction = 0.45;
    double zeros_fraction = 0.45;

    /** Lookup-argument shape (sim/lookup_unit.hpp prices the helper
     * construction, extra commits and the LookupCheck). table_rows = 0
     * means the circuit carries no lookup argument. `table_row_counts`
     * holds each fused table's height in tag order (the LookupUnit
     * prices one CAM bank fill per table); when empty but table_rows is
     * set, the workload is treated as one table of table_rows rows. */
    uint64_t lookup_gates = 0;
    uint64_t table_rows = 0;
    std::vector<uint64_t> table_row_counts;
    bool has_lookup() const { return table_rows > 0; }

    /** Per-table heights, normalising the single-table legacy shape. */
    std::vector<uint64_t>
    per_table_rows() const
    {
        if (!table_row_counts.empty()) return table_row_counts;
        if (table_rows > 0) return {table_rows};
        return {};
    }

    size_t num_gates() const { return size_t(1) << mu; }

    /** The five real-world workloads of Table 3. */
    static std::vector<Workload> paper_workloads();
    static Workload mock(size_t mu);

    /**
     * Build a workload from measured witness statistics (fractions of
     * zero / one / dense scalars across the three wire MLEs), so a
     * circuit proved by the software library can be fed to the chip
     * model with its real Sparse-MSM profile.
     */
    static Workload from_stats(std::string name, size_t mu, size_t zeros,
                               size_t ones, size_t total);
};

}  // namespace zkspeed::sim
