/**
 * @file
 * Memory-system model: HBM bandwidth/PHYs and on-chip SRAM sizing
 * (paper Sections 4.6 and 5).
 */
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/config.hpp"
#include "sim/tech.hpp"

namespace zkspeed::sim {

class MemorySystem
{
  public:
    explicit MemorySystem(const DesignConfig &cfg) : cfg_(cfg) {}

    /** Deliverable bytes per cycle at the configured bandwidth. */
    double
    bytes_per_cycle() const
    {
        return cfg_.bandwidth_gbps / kClockGhz;
    }

    /** Cycles to move `bytes` over the off-chip interface. */
    uint64_t
    transfer_cycles(double bytes) const
    {
        return uint64_t(bytes / bytes_per_cycle());
    }

    /**
     * Global MLE SRAM capacity (MB): the compressed resident input MLEs
     * (selectors, witness, sigma) for the provisioned problem size
     * (Section 4.6: 10-11x compression over raw 255-bit tables).
     */
    double
    global_sram_mb() const
    {
        double gates = double(uint64_t(1) << cfg_.sram_target_mu);
        return gates * kCompressedBytesPerGate / (1024.0 * 1024.0);
    }

    /** What the same tables would occupy uncompressed (11 raw 32-byte
     * tables per gate) — the ablation baseline for Section 4.6. */
    double
    global_sram_mb_uncompressed() const
    {
        double gates = double(uint64_t(1) << cfg_.sram_target_mu);
        return gates * 11.0 * 32.0 / (1024.0 * 1024.0);
    }

    /** SRAM area for a given capacity. */
    static double
    sram_area(double mb)
    {
        return mb * kSramAreaPerMb;
    }

    /** PHY area for the configured bandwidth (HBM2 below 1 TB/s, HBM3
     * at and above; Section 7.1). */
    double
    phy_area() const
    {
        if (cfg_.bandwidth_gbps >= kHbm3PhyGbps) {
            double phys = std::ceil(cfg_.bandwidth_gbps / kHbm3PhyGbps);
            return phys * kHbm3PhyArea;
        }
        double phys = std::ceil(cfg_.bandwidth_gbps / kHbm2PhyGbps);
        return phys * kHbm2PhyArea;
    }

  private:
    DesignConfig cfg_;
};

}  // namespace zkspeed::sim
