#include "sim/cpu_model.hpp"

#include <cmath>

namespace zkspeed::sim {

double
CpuModel::total_ms(size_t mu)
{
    // Three-point fit through Table 3 (2^17: 1429 ms, 2^20: 8619 ms,
    // 2^23: 74052 ms) of T = c0 + A t + B t log2(n), t = n / 2^17.
    constexpr double c0 = 563.0;
    constexpr double A = 65.0;
    constexpr double B = 47.1;
    double t = std::pow(2.0, double(mu) - 17.0);
    return c0 + A * t + B * t * double(mu);
}

const std::map<std::string, double> &
CpuModel::kernel_shares()
{
    // Figure 12a at 2^20 gates. "Wiring MSMs" merges the PermCheck
    // dense MSMs (43.6%) with Create-PermCheck-MLEs (1.2%); "Other"
    // carries MLE Combine (3.3%).
    static const std::map<std::string, double> kShares = {
        {"Witness MSMs", 0.088},
        {"ZeroCheck", 0.056},
        {"Wiring MSMs", 0.448},
        {"PermCheck", 0.062},
        {"FinalEval", 0.025},
        {"Other", 0.033},
        {"OpenCheck", 0.041},
        {"PolyOpen MSMs", 0.246},
    };
    return kShares;
}

std::map<std::string, double>
CpuModel::kernel_ms(size_t mu)
{
    std::map<std::string, double> out;
    double total = total_ms(mu);
    for (const auto &[k, share] : kernel_shares()) {
        out[k] = total * share;
    }
    return out;
}

}  // namespace zkspeed::sim
