#include "sim/msm_unit.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace zkspeed::sim {

namespace {

int
ceil_log2(uint64_t v)
{
    int b = 0;
    while ((uint64_t(1) << b) < v) ++b;
    return b;
}

}  // namespace

uint64_t
bucket_aggregation_cycles(int window, Aggregation scheme, int group_size)
{
    const uint64_t buckets = (uint64_t(1) << window) - 1;
    if (scheme == Aggregation::szkp_serial) {
        // Running-sum aggregation: 2*(2^W - 1) strictly dependent PADDs,
        // each exposing the full pipeline latency.
        return 2 * buckets * kPaddLatency;
    }
    // Grouped scheme (Section 4.2.2): partial sums within groups are
    // independent across groups, so the pipeline stays full while the
    // 2*(2^W - 1) adds issue; the per-group chains then combine with a
    // short serial tail.
    const uint64_t groups = (buckets + group_size - 1) / group_size;
    uint64_t issue = 2 * buckets;                    // pipelined adds
    uint64_t chain_drain = 2 * uint64_t(group_size)  // longest group chain
                           * kPaddLatency / std::max<uint64_t>(groups, 1);
    uint64_t combine = groups +                       // weighted merge adds
                       uint64_t(kPaddLatency) * (2 + ceil_log2(groups));
    return issue + chain_drain + combine;
}

uint64_t
MsmUnit::window_combine_cycles() const
{
    // Horner combine across windows: W doublings per window plus one
    // add, all serially dependent through the PADD pipeline.
    return uint64_t(kScalarBits + num_windows()) * kPaddLatency;
}

uint64_t
MsmUnit::dense_cycles(uint64_t n, int pes, Aggregation scheme) const
{
    if (n == 0) return 0;
    pes = std::max(pes, 1);
    const int nwin = num_windows();
    // Bucket phase: each point issues one PADD per window; points are
    // spread over the PEs. A small stall factor covers residual bucket
    // conflicts after reorder scheduling (validated against
    // simulate_bucket_phase).
    double conflict = 1.0 + std::max(
        0.0, double(kPaddLatency) / double(uint64_t(1) << cfg_.msm_window) *
                 0.25);
    uint64_t per_pe_points = (n + pes - 1) / pes;
    uint64_t bucket_phase =
        uint64_t(double(per_pe_points) * nwin * conflict) + kPaddLatency;
    // Aggregation: one window per PE in parallel, rounds of windows.
    uint64_t agg_rounds = (nwin + pes - 1) / pes;
    uint64_t aggregation =
        agg_rounds * bucket_aggregation_cycles(cfg_.msm_window, scheme);
    return bucket_phase + aggregation + window_combine_cycles();
}

uint64_t
MsmUnit::sparse_cycles(uint64_t n, double ones_frac, double dense_frac,
                       int pes) const
{
    pes = std::max(pes, 1);
    uint64_t ones = uint64_t(double(n) * ones_frac);
    uint64_t dense = uint64_t(double(n) * dense_frac);
    // Tree reduction of the 1-scalar points: fully pipelined adds with a
    // log-depth drain (Section 4.2).
    uint64_t tree = ones / pes + uint64_t(kPaddLatency) *
                                     (ceil_log2(std::max<uint64_t>(ones, 2)));
    return tree + dense_cycles(dense, pes);
}

uint64_t
MsmUnit::halving_sequence_cycles(size_t mu, int pes) const
{
    uint64_t total = 0;
    for (size_t k = 1; k <= mu; ++k) {
        total += dense_cycles(uint64_t(1) << (mu - k), pes);
    }
    return total;
}

uint64_t
MsmUnit::simulate_bucket_phase(uint64_t n, int pes, uint64_t seed) const
{
    // Cycle-level model of one PE's stream for one window; other PEs
    // behave statistically identically, so we simulate the slowest
    // (ceil) share. A reorder window of 8 in-flight candidates mimics
    // SZKP's quasi-deterministic scheduler.
    const uint64_t buckets = uint64_t(1) << cfg_.msm_window;
    const uint64_t points = (n + pes - 1) / std::max(pes, 1);
    std::mt19937_64 rng(seed);
    std::vector<uint64_t> ready(buckets, 0);
    std::vector<uint64_t> pending;
    constexpr size_t kReorderWindow = 32;
    uint64_t cycle = 0;
    uint64_t issued = 0;
    while (issued < points) {
        while (pending.size() < kReorderWindow &&
               issued + pending.size() < points) {
            pending.push_back(rng() % buckets);
        }
        bool fired = false;
        for (size_t i = 0; i < pending.size(); ++i) {
            if (ready[pending[i]] <= cycle) {
                ready[pending[i]] = cycle + kPaddLatency;
                pending.erase(pending.begin() + i);
                ++issued;
                fired = true;
                break;
            }
        }
        ++cycle;
        (void)fired;  // a miss is simply a stall cycle
    }
    return cycle + kPaddLatency;  // drain
}

double
MsmUnit::compute_area() const
{
    return double(total_pes()) *
           (kPaddModmuls * kModmulAreaFq + kMsmPeControlArea);
}

double
MsmUnit::local_sram_mb() const
{
    // Point buffers: 3 banks of points_per_pe x 48 B per PE
    // (Section 4.2.1: the Z bank doubles as scalar storage).
    double point_buf = double(total_pes()) * 3.0 *
                       double(cfg_.msm_points_per_pe) * 48.0;
    // Bucket memories: all windows' buckets live on chip so points
    // stream exactly once.
    double bucket_mem = double(total_pes()) * double(num_windows()) *
                        double(uint64_t(1) << cfg_.msm_window) * 144.0;
    return (point_buf + bucket_mem) / (1024.0 * 1024.0);
}

}  // namespace zkspeed::sim
