/**
 * @file
 * MSM unit performance model (paper Section 4.2).
 *
 * The unit follows the SZKP architecture: each PE owns one fully
 * pipelined PADD (II = 1, deep latency) and a set of bucket memories; an
 * MSM streams points once, extracting all window digits per point, then
 * aggregates buckets per window. Two aggregation schemes are modelled:
 * the serial SZKP scheme and zkSpeed's grouped scheme (group size 16),
 * reproducing Figure 5. A cycle-level bucket-conflict simulation backs
 * the analytic estimate used in the DSE.
 */
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "sim/tech.hpp"

namespace zkspeed::sim {

/** Bucket-aggregation scheme selector. */
enum class Aggregation {
    szkp_serial,   ///< baseline: fully serial running sum
    zkspeed_grouped,  ///< grouped partial sums (Section 4.2.2)
};

/** Latency (cycles) of aggregating one window's 2^W - 1 buckets. */
uint64_t bucket_aggregation_cycles(int window, Aggregation scheme,
                                   int group_size = kAggregationGroupSize);

/** MSM unit model bound to a design configuration. */
class MsmUnit
{
  public:
    explicit MsmUnit(const DesignConfig &cfg) : cfg_(cfg) {}

    int total_pes() const { return cfg_.msm_cores * cfg_.msm_pes_per_core; }
    int
    num_windows() const
    {
        return (kScalarBits + cfg_.msm_window - 1) / cfg_.msm_window;
    }

    /**
     * Cycles for a dense n-point Pippenger MSM using `pes` PEs
     * (compute only; the chip model overlays bandwidth limits).
     */
    uint64_t dense_cycles(uint64_t n, int pes,
                          Aggregation scheme =
                              Aggregation::zkspeed_grouped) const;

    /**
     * Cycles for a sparse MSM: tree-sum of one-scalar points plus a
     * dense Pippenger pass over the dense remainder (Section 3.3.1).
     */
    uint64_t sparse_cycles(uint64_t n, double ones_frac, double dense_frac,
                           int pes) const;

    /**
     * The halving MSM sequence of Polynomial Opening: MSMs of size
     * 2^{mu-1}, 2^{mu-2}, ..., 1 run back-to-back (Section 3.3.5).
     */
    uint64_t halving_sequence_cycles(size_t mu, int pes) const;

    /**
     * Cycle-level simulation of the bucket-accumulation phase for one
     * window, modelling pipeline hazards on same-bucket hits with a
     * small reorder window (quasi-deterministic scheduling a la SZKP).
     * Deterministic given the seed; used to validate the analytic model.
     */
    uint64_t simulate_bucket_phase(uint64_t n, int pes,
                                   uint64_t seed) const;

    /** Datapath area (mm^2): PADD multipliers + PE control. */
    double compute_area() const;

    /** Local SRAM (MB): point buffers and bucket memories. */
    double local_sram_mb() const;

    /** HBM bytes for a dense n-point MSM (points streamed once, plus
     * scalars). */
    double
    dense_bytes(uint64_t n) const
    {
        return double(n) * (kG1PointBytes + kFrBytes);
    }

    /** HBM bytes for a sparse MSM (zero-scalar points never fetched,
     * one-scalar points fetched without scalars; Section 4.2.1). */
    double
    sparse_bytes(uint64_t n, double ones_frac, double dense_frac) const
    {
        return double(n) * (ones_frac + dense_frac) * kG1PointBytes +
               double(n) * dense_frac * kFrBytes;
    }

  private:
    /** Fixed tail: cross-window combination doublings/adds (serial). */
    uint64_t window_combine_cycles() const;

    DesignConfig cfg_;
};

}  // namespace zkspeed::sim
