/**
 * @file
 * Multifunction Tree Unit (MTU) model (paper Section 4.3).
 *
 * One unit serves three binary-tree dataflows: Build MLE (forward tree),
 * MLE Evaluate (inverse tree with adders) and Product MLE (inverse tree
 * emitting every level). The hybrid DFS/BFS traversal keeps the PEs >99%
 * utilised and avoids storing whole intermediate levels, so throughput is
 * simply the leaf-PE width; the accumulator tail adds a per-level drain.
 */
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/config.hpp"
#include "sim/tech.hpp"

namespace zkspeed::sim {

class MtuUnit
{
  public:
    explicit MtuUnit(const DesignConfig &cfg)
    {
        // Rate-match the HBM interface: one 255-bit element is 32 bytes,
        // and the unit is sized to consume/produce a full interface
        // width per cycle (Section 4.3.3 "rate-match with upstream or
        // downstream units"), within [8, 64] leaf PEs.
        double bytes_per_cycle = cfg.bandwidth_gbps / kClockGhz;
        int width = int(bytes_per_cycle / kFrBytes);
        leaf_pes_ = std::clamp(width, 8, 64);
    }

    int leaf_pes() const { return leaf_pes_; }

    /** Cycles to build an eq table of 2^m entries (Build MLE). */
    uint64_t
    build_mle_cycles(size_t m) const
    {
        uint64_t n = uint64_t(1) << m;
        return n / leaf_pes_ + drain(m);
    }

    /** Cycles to evaluate one MLE of 2^m entries at a point. */
    uint64_t
    evaluate_cycles(size_t m) const
    {
        uint64_t n = uint64_t(1) << m;
        return n / leaf_pes_ + drain(m);
    }

    /** Cycles to emit the Product MLE over 2^m leaves (all levels). */
    uint64_t
    product_mle_cycles(size_t m) const
    {
        uint64_t n = uint64_t(1) << m;
        // All 2^m - 1 internal nodes flow through the same tree/
        // accumulator pipeline at one result per cycle per leaf pair.
        return n / std::max(leaf_pes_ / 2, 1) + drain(m);
    }

    /**
     * Multiplier-tree latency for a FracMLE inversion batch of size b
     * (the tree is shared with this unit; Section 4.4.2).
     */
    static uint64_t
    batch_tree_latency(int b)
    {
        int levels = 0;
        while ((1 << levels) < b) ++levels;
        return uint64_t(levels) * kModmulLatency;
    }

    /** Datapath area: one modmul + modadd per PE, plus the accumulator
     * PE and its register file (Section 4.3.3). */
    double
    area() const
    {
        double pe = kModmulAreaFr * 1.35;  // multiplier + adder + muxes
        return double(leaf_pes_) * pe + 0.6 /* accumulator + regfile */;
    }

    /**
     * Area the chip would need WITHOUT multifunction reuse: dedicated
     * trees for Build MLE, Evaluate and Product (the 41.6% saving of
     * Section 4.3.3 comes from not provisioning these).
     */
    double
    area_without_reuse() const
    {
        return 3.0 * (double(leaf_pes_) * kModmulAreaFr * 1.35) + 3 * 0.6;
    }

  private:
    uint64_t
    drain(size_t m) const
    {
        // DFS accumulator drain: one pipeline latency per remaining
        // level above the hardware tree.
        return uint64_t(m) * kModmulLatency;
    }

    int leaf_pes_;
};

}  // namespace zkspeed::sim
