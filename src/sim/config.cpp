#include "sim/config.hpp"

#include <sstream>

namespace zkspeed::sim {

std::string
DesignConfig::describe() const
{
    std::ostringstream os;
    os << msm_cores << "x" << msm_pes_per_core << " MSM PEs (W="
       << msm_window << ", " << msm_points_per_pe << " pts/PE), "
       << sumcheck_pes << " SumCheck PEs, " << mle_update_pes << "x"
       << mle_update_modmuls << " MLE-Update, " << frac_pes
       << " FracMLE, " << bandwidth_gbps << " GB/s";
    return os.str();
}

DesignConfig
DesignConfig::paper_default()
{
    // Section 7.4: one MSM unit with 9-bit windows, 16 PEs, 2048
    // points/PE, 1 FracMLE PE, 2 SumCheck PEs, 11 MLE Update PEs with 4
    // modmuls each, 2 TB/s HBM3.
    DesignConfig c;
    c.msm_cores = 1;
    c.msm_pes_per_core = 16;
    c.msm_window = 9;
    c.msm_points_per_pe = 2048;
    c.frac_pes = 1;
    c.sumcheck_pes = 2;
    c.mle_update_pes = 11;
    c.mle_update_modmuls = 4;
    c.bandwidth_gbps = 2048.0;
    c.sram_target_mu = 23;
    return c;
}

std::vector<Workload>
Workload::paper_workloads()
{
    // Table 3.
    return {
        {"Zcash", 17, 0.10, 0.45, 0.45},
        {"Auction", 20, 0.10, 0.45, 0.45},
        {"2^12 Rescue-Hash Invocations", 21, 0.10, 0.45, 0.45},
        {"Zexe's Recursive Circuit", 22, 0.10, 0.45, 0.45},
        {"Rollup of 10 Pvt Tx", 23, 0.10, 0.45, 0.45},
    };
}

Workload
Workload::mock(size_t mu)
{
    Workload w;
    w.name = "mock-2^" + std::to_string(mu);
    w.mu = mu;
    return w;
}

Workload
Workload::from_stats(std::string name, size_t mu, size_t zeros,
                     size_t ones, size_t total)
{
    Workload w;
    w.name = std::move(name);
    w.mu = mu;
    if (total > 0) {
        w.zeros_fraction = double(zeros) / double(total);
        w.ones_fraction = double(ones) / double(total);
        w.dense_fraction = 1.0 - w.zeros_fraction - w.ones_fraction;
    }
    return w;
}

}  // namespace zkspeed::sim
