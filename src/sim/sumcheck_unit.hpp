/**
 * @file
 * SumCheck + MLE Update unit models (paper Section 4.1).
 *
 * The SumCheck unit is fully pipelined: each PE consumes one boolean-
 * hypercube pair per cycle, computing all per-MLE extensions and per-term
 * products in a deep pipeline of 94 shared modular multipliers. The MLE
 * Update unit applies Eq. 2 between rounds with a configurable number of
 * PEs x multipliers. Both stream tables from HBM (Section 4.1.2), so the
 * chip model takes max(compute, bandwidth) per round.
 */
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "sim/tech.hpp"

namespace zkspeed::sim {

/** Shape of one SumCheck instance (one of the three flavours). */
struct SumcheckShape {
    size_t mu = 0;          ///< number of rounds / variables
    int num_mles = 0;       ///< distinct MLE tables
    int degree = 0;         ///< max per-round degree
    int tables_round1_hbm = 0;  ///< tables streamed from HBM in round 1
    int interp_modmuls = 0;     ///< fixed interpolation tail per round

    /** ZeroCheck on Eq. 3: 9 tables, degree 4, inputs resident on chip,
     * 23-modmul interpolation tail (Section 4.1.1). */
    static SumcheckShape zerocheck(size_t mu);
    /** PermCheck on Eq. 4: 11 tables, degree 5, intermediates off-chip,
     * 46-modmul interpolation tail. */
    static SumcheckShape permcheck(size_t mu);
    /** OpenCheck on Eq. 5: 12 tables (6 y + 6 k), degree 2. With a
     * lookup argument one more (y, k) pair joins (7th opening point). */
    static SumcheckShape opencheck(size_t mu, bool lookup = false);
    /** LookupCheck (DESIGN.md Section 8): 12 tables (h_f, h_t, w1..3,
     * q_lookup, tag, t1..3, m, eq), degree 3. */
    static SumcheckShape lookupcheck(size_t mu);
};

/** Per-round and total latency/traffic for a SumCheck run. */
struct SumcheckRunCost {
    uint64_t cycles = 0;           ///< latency with bandwidth applied
    uint64_t compute_cycles = 0;   ///< compute-only latency
    double hbm_bytes = 0;          ///< total HBM traffic
    uint64_t sc_busy_cycles = 0;   ///< SumCheck-PE busy cycles
    uint64_t upd_busy_cycles = 0;  ///< MLE-Update busy cycles
};

class SumcheckUnit
{
  public:
    explicit SumcheckUnit(const DesignConfig &cfg) : cfg_(cfg) {}

    /**
     * Cost of a full SumCheck instance under a bandwidth budget.
     * @param bytes_per_cycle off-chip bytes deliverable per cycle.
     */
    SumcheckRunCost run(const SumcheckShape &shape,
                        double bytes_per_cycle) const;

    /** SumCheck datapath area (mm^2). */
    double
    sumcheck_area() const
    {
        return double(cfg_.sumcheck_pes) * kSumcheckPeModmuls *
               kModmulAreaFr;
    }

    /** MLE Update datapath area (mm^2). */
    double
    mle_update_area() const
    {
        return double(cfg_.mle_update_pes) * cfg_.mle_update_modmuls *
               kModmulAreaFr;
    }

  private:
    DesignConfig cfg_;
};

}  // namespace zkspeed::sim
