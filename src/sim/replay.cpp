#include "sim/replay.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "sim/chip.hpp"
#include "sim/msm_unit.hpp"
#include "sim/tech.hpp"

namespace zkspeed::sim {

namespace {

/**
 * Chip-side latency of one verify flush: the folded RLC MSM runs on the
 * MSM unit (compute overlapped with streaming the points from HBM, as
 * in the chip model), the multi-pairing keeps its measured CPU time.
 */
double
verify_flush_chip_ms(const runtime::TraceEntry &entry, const MsmUnit &msm,
                     double bandwidth_gbps)
{
    uint64_t n = std::max<uint64_t>(1, entry.msm_points);
    double compute_ms =
        double(msm.dense_cycles(n, msm.total_pes())) / (kClockGhz * 1e6);
    double transfer_ms =
        msm.dense_bytes(n) / (bandwidth_gbps * 1e9) * 1e3;
    return std::max(compute_ms, transfer_ms) + entry.pairing_ms;
}

}  // namespace

ReplayReport
replay_trace(const std::vector<runtime::TraceEntry> &trace,
             const DesignConfig &design)
{
    ReplayReport report;
    Chip chip(design);
    MsmUnit msm(design);
    // Prove jobs with identical size, scalar statistics and lookup
    // shape (per-table bank heights included) have identical simulated
    // latency; memoise so a cache-friendly job stream (many repeats of
    // few circuits) replays in O(distinct jobs). The memo keeps the
    // whole cycle breakdown: obs/attrib needs per-kernel cycles per
    // job, not just the scalar latency.
    struct Modeled {
        double runtime_ms = 0;
        uint64_t total_cycles = 0;
        std::vector<std::pair<std::string, uint64_t>> kernel_cycles;
        std::vector<std::pair<std::string, uint64_t>> step_cycles;
    };
    std::map<std::tuple<uint32_t, uint64_t, uint64_t, uint64_t, uint64_t,
                        std::vector<uint64_t>>,
             Modeled>
        memo;
    for (const auto &entry : trace) {
        ReplayedJob job;
        job.kind = entry.kind;
        job.mu = entry.num_vars;
        if (entry.kind == runtime::JobKind::verify) {
            job.sw_ms = entry.verify_ms;
            job.chip_ms =
                verify_flush_chip_ms(entry, msm, design.bandwidth_gbps);
            job.batch_size = entry.batch_size;
            ++report.verify_flushes;
            report.proofs_verified += entry.batch_size;
            report.sw_verify_ms += job.sw_ms;
            report.chip_verify_ms += job.chip_ms;
        } else {
            // Legacy single-table entries memoise under {table_rows}.
            std::vector<uint64_t> bank_shape =
                entry.per_table_rows.empty() && entry.table_rows > 0
                    ? std::vector<uint64_t>{entry.table_rows}
                    : entry.per_table_rows;
            auto key = std::make_tuple(entry.num_vars, entry.zero_scalars,
                                       entry.one_scalars,
                                       entry.total_scalars,
                                       entry.lookup_gates, bank_shape);
            auto it = memo.find(key);
            if (it == memo.end()) {
                Workload wl = Workload::from_stats(
                    "replay", entry.num_vars, entry.zero_scalars,
                    entry.one_scalars,
                    std::max<uint64_t>(1, entry.total_scalars));
                wl.lookup_gates = entry.lookup_gates;
                wl.table_rows = entry.table_rows;
                wl.table_row_counts = bank_shape;
                ChipReport rep = chip.run(wl);
                Modeled m;
                m.runtime_ms = rep.runtime_ms;
                m.total_cycles = rep.total_cycles;
                m.kernel_cycles.assign(rep.kernel_cycles.begin(),
                                       rep.kernel_cycles.end());
                m.step_cycles.assign(rep.step_cycles.begin(),
                                     rep.step_cycles.end());
                it = memo.emplace(key, std::move(m)).first;
            }
            job.sw_ms = entry.prove_ms;
            job.chip_ms = it->second.runtime_ms;
            job.request_id = entry.request_id;
            job.total_cycles = it->second.total_cycles;
            job.kernel_cycles = it->second.kernel_cycles;
            job.step_cycles = it->second.step_cycles;
            ++report.prove_jobs;
            report.sw_prove_ms += job.sw_ms;
            report.chip_prove_ms += job.chip_ms;
        }
        report.sw_total_ms += job.sw_ms;
        report.chip_total_ms += job.chip_ms;
        report.jobs.push_back(job);
    }
    if (report.sw_total_ms > 0) {
        report.sw_jobs_per_s =
            1000.0 * double(report.jobs.size()) / report.sw_total_ms;
    }
    if (report.chip_total_ms > 0) {
        report.chip_jobs_per_s =
            1000.0 * double(report.jobs.size()) / report.chip_total_ms;
        report.speedup = report.sw_total_ms / report.chip_total_ms;
    }
    return report;
}

std::vector<obs::attrib::ModeledJob>
attrib_jobs(const ReplayReport &report)
{
    std::vector<obs::attrib::ModeledJob> jobs;
    for (const ReplayedJob &job : report.jobs) {
        if (job.kind != runtime::JobKind::prove || job.request_id == 0) {
            continue;
        }
        obs::attrib::ModeledJob m;
        m.job_id = job.request_id;
        m.mu = uint32_t(job.mu);
        m.sw_ms = job.sw_ms;
        m.chip_ms = job.chip_ms;
        m.total_cycles = job.total_cycles;
        m.kernel_cycles = job.kernel_cycles;
        m.step_cycles = job.step_cycles;
        jobs.push_back(std::move(m));
    }
    return jobs;
}

}  // namespace zkspeed::sim
