#include "sim/replay.hpp"

#include <map>
#include <tuple>

#include "sim/chip.hpp"

namespace zkspeed::sim {

ReplayReport
replay_trace(const std::vector<runtime::TraceEntry> &trace,
             const DesignConfig &design)
{
    ReplayReport report;
    Chip chip(design);
    // Jobs with identical size and scalar statistics have identical
    // simulated latency; memoise so a cache-friendly job stream (many
    // repeats of few circuits) replays in O(distinct jobs).
    std::map<std::tuple<uint32_t, uint64_t, uint64_t, uint64_t>, double>
        memo;
    for (const auto &entry : trace) {
        auto key = std::make_tuple(entry.num_vars, entry.zero_scalars,
                                   entry.one_scalars, entry.total_scalars);
        auto it = memo.find(key);
        if (it == memo.end()) {
            Workload wl = Workload::from_stats(
                "replay", entry.num_vars, entry.zero_scalars,
                entry.one_scalars,
                std::max<uint64_t>(1, entry.total_scalars));
            it = memo.emplace(key, chip.run(wl).runtime_ms).first;
        }
        ReplayedJob job;
        job.mu = entry.num_vars;
        job.sw_ms = entry.prove_ms;
        job.chip_ms = it->second;
        report.sw_total_ms += job.sw_ms;
        report.chip_total_ms += job.chip_ms;
        report.jobs.push_back(job);
    }
    if (report.sw_total_ms > 0) {
        report.sw_jobs_per_s =
            1000.0 * double(report.jobs.size()) / report.sw_total_ms;
    }
    if (report.chip_total_ms > 0) {
        report.chip_jobs_per_s =
            1000.0 * double(report.jobs.size()) / report.chip_total_ms;
        report.speedup = report.sw_total_ms / report.chip_total_ms;
    }
    return report;
}

}  // namespace zkspeed::sim
