/**
 * @file
 * Design-space exploration over the Table-2 knobs with Pareto analysis
 * (paper Section 7.1, Figure 9).
 */
#pragma once

#include <vector>

#include "sim/chip.hpp"

namespace zkspeed::sim {

/** One evaluated design point. */
struct DsePoint {
    DesignConfig config;
    double runtime_ms = 0;
    double area_mm2 = 0;         ///< total incl. PHY
    double compute_area_mm2 = 0; ///< compute + on-chip SRAM (no PHY)
};

class Dse
{
  public:
    /** The full Table-2 grid restricted to one bandwidth. */
    static std::vector<DesignConfig> grid_for_bandwidth(double gbps);

    /** All Table-2 bandwidth settings. */
    static const std::vector<double> &bandwidths();

    /** Evaluate a set of configs on a workload. */
    static std::vector<DsePoint> evaluate(
        const std::vector<DesignConfig> &configs, const Workload &wl);

    /**
     * Pareto frontier: points not dominated in (runtime, area), sorted
     * by runtime. A point dominates another if it is no worse in both
     * dimensions and better in one.
     */
    static std::vector<DsePoint> pareto(std::vector<DsePoint> points);

    /**
     * Sweep every bandwidth's grid on `wl` and return the per-bandwidth
     * Pareto frontiers plus the global frontier (Figure 9).
     */
    struct SweepResult {
        std::vector<std::pair<double, std::vector<DsePoint>>> per_bw;
        std::vector<DsePoint> global;
    };
    static SweepResult sweep(const Workload &wl,
                             size_t sram_target_mu = 20);

    /**
     * Pick the fastest Pareto design whose compute+SRAM area does not
     * exceed `area_budget` (iso-CPU-area selection, Section 7.3).
     */
    static DsePoint pick_iso_area(const std::vector<DsePoint> &frontier,
                                  double area_budget);
};

}  // namespace zkspeed::sim
