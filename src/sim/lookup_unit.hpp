/**
 * @file
 * LookupUnit model: accelerator-side cost of the LogUp lookup argument
 * (DESIGN.md Section 8).
 *
 * The lookup step reuses existing datapaths rather than adding one:
 *
 *  - Multiplicity construction streams the lookup wires and probes a
 *    table-resident SRAM (hash/CAM probe, one lookup row per cycle) —
 *    modelled here as a fixed-function scan.
 *  - Helper-MLE construction is two more FracMLE passes (h_f and h_t
 *    are exactly the "batched modular inversion over 2^mu elements"
 *    kernel of the wiring identity's phi), fed by a Construct-N&D-style
 *    fold computing lambda + w1 + gamma w2 + gamma^2 w3.
 *  - m / h_f / h_t commitments ride the MSM unit.
 *  - The LookupCheck itself is a degree-3 sumcheck on the SumCheck PEs
 *    (SumcheckShape::lookupcheck).
 *
 * Table SRAM: the three table columns are MLEs of the same height as
 * every other input table, so their residency is charged to the global
 * MLE SRAM provisioning (MemorySystem), not to a dedicated array; this
 * unit only adds the latency/traffic of the probes. table_bytes()
 * reports the resident footprint for reports.
 */
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "sim/fracmle_unit.hpp"
#include "sim/tech.hpp"

namespace zkspeed::sim {

class LookupUnit
{
  public:
    explicit LookupUnit(const DesignConfig &cfg) : frac_(cfg) {}

    /** Resident table footprint: 3 columns of 2^mu Fr elements. */
    static double
    table_bytes(size_t mu)
    {
        return 3.0 * double(uint64_t(1) << mu) * kFrBytes;
    }

    /**
     * Multiplicity construction: one probe per hypercube row (the
     * selector decides whether the hit increments), pipelined at one
     * row per cycle behind the table SRAM.
     */
    static uint64_t
    multiplicity_cycles(size_t mu)
    {
        return (uint64_t(1) << mu) + kModmulLatency;
    }

    /**
     * Denominator fold feeding the batched inverters: two modmuls per
     * element (gamma (w2 + gamma w3)), on the Construct N&D multipliers.
     */
    static uint64_t
    fold_cycles(size_t mu)
    {
        uint64_t n = uint64_t(1) << mu;
        return 2 * n * 2 / kConstructNdModmuls + kModmulLatency;
    }

    /** Two FracMLE passes: h_f and h_t denominators inverted in batch. */
    uint64_t
    helper_cycles(size_t mu) const
    {
        return 2 * frac_.cycles(mu);
    }

    /** HBM traffic of the helper construction: wires + table columns in
     * (6 tables; q_lookup and m are narrow/resident), helpers out. */
    static double
    helper_bytes(size_t mu)
    {
        uint64_t n = uint64_t(1) << mu;
        return (6.0 + 2.0) * double(n) * kFrBytes;
    }

  private:
    FracMleUnit frac_;
};

}  // namespace zkspeed::sim
