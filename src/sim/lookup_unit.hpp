/**
 * @file
 * LookupUnit model: accelerator-side cost of the LogUp lookup argument
 * (DESIGN.md Section 8).
 *
 * The lookup step reuses existing datapaths rather than adding one:
 *
 *  - Multiplicity construction streams the lookup wires and probes a
 *    table-resident SRAM (hash/CAM probe, one lookup row per cycle) —
 *    modelled here as a fixed-function scan.
 *  - Helper-MLE construction is two more FracMLE passes (h_f and h_t
 *    are exactly the "batched modular inversion over 2^mu elements"
 *    kernel of the wiring identity's phi), fed by a Construct-N&D-style
 *    fold computing lambda + w1 + gamma w2 + gamma^2 w3.
 *  - m / h_f / h_t commitments ride the MSM unit.
 *  - The LookupCheck itself is a degree-3 sumcheck on the SumCheck PEs
 *    (SumcheckShape::lookupcheck).
 *
 * Table SRAM: the four bank columns (tag + 3 data columns) are MLEs of
 * the same height as every other input table, so their residency is
 * charged to the global MLE SRAM provisioning (MemorySystem), not to a
 * dedicated array; this unit only adds the latency/traffic of the
 * probes. table_bytes() reports the resident footprint for reports.
 *
 * Multi-table fusion: the CAM is filled one bank (one fused table) at
 * a time before the probe pass — multiplicity_cycles takes the
 * per-table row counts so a circuit fusing several tables pays each
 * bank fill, while the probe pass itself stays one row per cycle (the
 * tag travels with the probe key, it is not a second probe).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/fracmle_unit.hpp"
#include "sim/tech.hpp"

namespace zkspeed::sim {

class LookupUnit
{
  public:
    explicit LookupUnit(const DesignConfig &cfg) : frac_(cfg) {}

    /** Resident bank footprint: 4 columns (tag + t1..t3) of 2^mu Fr
     * elements. */
    static double
    table_bytes(size_t mu)
    {
        return 4.0 * double(uint64_t(1) << mu) * kFrBytes;
    }

    /**
     * Multiplicity construction: fill the CAM one bank per fused table
     * (one row per cycle per fill), then one probe per hypercube row
     * (the tag-valued selector decides whether the hit increments),
     * pipelined at one row per cycle behind the table SRAM.
     */
    static uint64_t
    multiplicity_cycles(size_t mu,
                        const std::vector<uint64_t> &per_table_rows)
    {
        uint64_t fill = 0;
        for (uint64_t rows : per_table_rows) fill += rows;
        return fill + (uint64_t(1) << mu) + kModmulLatency;
    }

    /**
     * Denominator fold feeding the batched inverters: three modmuls per
     * element (gamma (c1 + gamma (c2 + gamma c3)) over the tagged
     * 4-column fold), on the Construct N&D multipliers.
     */
    static uint64_t
    fold_cycles(size_t mu)
    {
        uint64_t n = uint64_t(1) << mu;
        return 2 * n * 3 / kConstructNdModmuls + kModmulLatency;
    }

    /** Two FracMLE passes: h_f and h_t denominators inverted in batch. */
    uint64_t
    helper_cycles(size_t mu) const
    {
        return 2 * frac_.cycles(mu);
    }

    /** HBM traffic of the helper construction: wires + bank columns in
     * (7 tables; q_lookup and m are narrow/resident), helpers out. */
    static double
    helper_bytes(size_t mu)
    {
        uint64_t n = uint64_t(1) << mu;
        return (7.0 + 2.0) * double(n) * kFrBytes;
    }

  private:
    FracMleUnit frac_;
};

}  // namespace zkspeed::sim
