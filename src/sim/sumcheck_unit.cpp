#include "sim/sumcheck_unit.hpp"

#include <algorithm>

namespace zkspeed::sim {

SumcheckShape
SumcheckShape::zerocheck(size_t mu)
{
    // Eq. 3 tables: qL,qR,qM,qO,qC,w1,w2,w3 plus the eq factor f_z1.
    // The inputs are resident in global SRAM; f_z1 arrives from the MTU.
    return {mu, 9, 4, 0, 23};
}

SumcheckShape
SumcheckShape::permcheck(size_t mu)
{
    // Eq. 4 tables: pi, p1, p2, phi, D1..3, N1..3 plus f_z2. All except
    // the built f_z2 are intermediates living in HBM (Section 4.1.2).
    return {mu, 11, 5, 10, 46};
}

SumcheckShape
SumcheckShape::opencheck(size_t mu, bool lookup)
{
    // Eq. 5 tables: six y_i and six k_i MLEs, products of two (seven
    // pairs when the lookup point joins the batch opening).
    int pairs = lookup ? 7 : 6;
    return {mu, 2 * pairs, 2, 2 * pairs, 2 * pairs};
}

SumcheckShape
SumcheckShape::lookupcheck(size_t mu)
{
    // h_f, h_t, w1..w3, q_lookup, the bank tag column, t1..t3, m plus
    // the built eq factor; the wires/selectors are resident, the
    // helpers stream from HBM.
    return {mu, 12, 3, 4, 36};
}

SumcheckRunCost
SumcheckUnit::run(const SumcheckShape &shape, double bytes_per_cycle) const
{
    SumcheckRunCost cost;
    const int sc_pes = std::max(cfg_.sumcheck_pes, 1);
    const uint64_t upd_throughput =
        uint64_t(std::max(cfg_.mle_update_pes, 1)) *
        std::max(cfg_.mle_update_modmuls, 1);

    for (size_t round = 0; round < shape.mu; ++round) {
        const uint64_t len = uint64_t(1) << (shape.mu - round);
        const uint64_t pairs = len / 2;
        // SumCheck: one hypercube pair per PE per cycle, fully pipelined.
        uint64_t sc = pairs / sc_pes + kModmulLatency +
                      uint64_t(shape.interp_modmuls);
        // MLE Update: one modmul per element per table (Eq. 2).
        uint64_t upd =
            (uint64_t(shape.num_mles) * pairs) / upd_throughput +
            kModmulLatency;
        // Traffic: round 1 reads only the off-chip tables; later rounds
        // stream every (now dense 255-bit) table; updates write halves.
        int tables_in =
            (round == 0) ? shape.tables_round1_hbm : shape.num_mles;
        double bytes = double(tables_in) * double(len) * kFrBytes +
                       double(shape.num_mles) * double(pairs) * kFrBytes;
        uint64_t bw = uint64_t(bytes / bytes_per_cycle);
        // SumCheck and MLE Update pipeline against each other and
        // against memory; the round takes the slowest of the three,
        // plus the SHA3 transcript update between rounds.
        uint64_t round_cycles =
            std::max({sc, upd, bw}) + uint64_t(kSha3Cycles);
        cost.cycles += round_cycles;
        cost.compute_cycles += std::max(sc, upd);
        cost.hbm_bytes += bytes;
        cost.sc_busy_cycles += sc;
        cost.upd_busy_cycles += upd;
    }
    return cost;
}

}  // namespace zkspeed::sim
