/**
 * @file
 * Technology constants for the zkSpeed performance/area/power models.
 *
 * The paper synthesises units with Catapult HLS + Design Compiler at TSMC
 * 22 nm and scales to 7 nm (Section 6.1). We substitute the *published*
 * post-scaling constants (Table 4 modmul areas, Table 5 unit powers, HBM
 * PHY areas from Section 7.1) so the architecture study reproduces without
 * a synthesis flow; see DESIGN.md Section 3 for the substitution record.
 *
 * All latencies are in cycles at the paper's 1 GHz clock, so cycles are
 * nanoseconds.
 */
#pragma once

#include <cstdint>

namespace zkspeed::sim {

/** Clock frequency (GHz); the paper clocks all units at 1 GHz. */
constexpr double kClockGhz = 1.0;

// ---------------------------------------------------------------------
// Modular arithmetic datapaths (Table 4: modmul area at 7 nm).
// ---------------------------------------------------------------------
/** Area of one pipelined 255-bit Montgomery multiplier (mm^2). */
constexpr double kModmulAreaFr = 0.133;
/** Area of one pipelined 381-bit Montgomery multiplier (mm^2). */
constexpr double kModmulAreaFq = 0.314;
/** Pipeline latency of a modular multiplier (cycles, II = 1). */
constexpr int kModmulLatency = 10;

/** Modular multipliers per unified SumCheck PE (Section 4.1.4). */
constexpr int kSumcheckPeModmuls = 94;
/** Multipliers a naive (unshared) SumCheck PE would need (Section 4.1.4). */
constexpr int kSumcheckPeModmulsUnshared = 184;

/** Modular multipliers in the MLE Combine unit with resource sharing
 * (Section 4.5). */
constexpr int kMleCombineModmuls = 72;
constexpr int kMleCombineModmulsUnshared = 122;

/** Modular multipliers in the Construct N&D unit. */
constexpr int kConstructNdModmuls = 10;

// ---------------------------------------------------------------------
// Point addition (PADD) and MSM.
// ---------------------------------------------------------------------
/** Equivalent 381-bit modmuls in one fully-pipelined PADD datapath. */
constexpr int kPaddModmuls = 20;
/** PADD pipeline latency (cycles); the 381-bit PADD sets the critical
 * path in the paper's synthesis. */
constexpr int kPaddLatency = 120;
/** Control/glue area per MSM PE beyond the PADD multipliers (mm^2). */
constexpr double kMsmPeControlArea = 0.32;
/** Scalar bit-width driving the window count. */
constexpr int kScalarBits = 255;
/** Group size of the parallel bucket-aggregation scheme (Section 4.2.2). */
constexpr int kAggregationGroupSize = 16;

// ---------------------------------------------------------------------
// Modular inversion (FracMLE, Section 4.4).
// ---------------------------------------------------------------------
/** Constant-time BEEA latency: 2W - 1 iterations for W = 255. */
constexpr int kBeeaLatency = 509;
/** Area of one BEEA inversion datapath (mm^2; shift/subtract only). */
constexpr double kBeeaArea = 0.15;
/** Optimal inversion batch size (Section 4.4.4). */
constexpr int kDefaultInversionBatch = 64;

// ---------------------------------------------------------------------
// Memory system.
// ---------------------------------------------------------------------
/** SRAM area per MB at 7 nm including array overheads (mm^2/MB). */
constexpr double kSramAreaPerMb = 0.5;
/** Compressed on-chip bytes per gate for the resident input MLEs
 * (binary-packed selectors + 0/1-flagged witness + narrow sigma; the
 * 10-11x compression of Section 4.6 over 11 raw 32-byte tables). */
constexpr double kCompressedBytesPerGate = 32.0;
/** Bytes per Fr MLE element in HBM traffic. */
constexpr double kFrBytes = 32.0;
/** Bytes per streamed affine G1 point: (X, Y) only (Section 4.2.1). */
constexpr double kG1PointBytes = 96.0;

/** HBM2 PHY: 512 GB/s per PHY at 14.9 mm^2 (Section 7.1). */
constexpr double kHbm2PhyGbps = 512.0;
constexpr double kHbm2PhyArea = 14.9;
/** HBM3 PHY: 1 TB/s per PHY at 29.6 mm^2. */
constexpr double kHbm3PhyGbps = 1024.0;
constexpr double kHbm3PhyArea = 29.6;

// ---------------------------------------------------------------------
// Fixed-function units.
// ---------------------------------------------------------------------
/** SHA3 unit area (Section 7.3.1: 5888 um^2). */
constexpr double kSha3Area = 0.005888;
/** Cycles per SHA3 state update (one Keccak-f permutation pass). */
constexpr int kSha3Cycles = 24;
/** Interconnect/misc area bundled with SHA3 in Table 5's "Other". */
constexpr double kInterconnectArea = 1.97;

// ---------------------------------------------------------------------
// Power densities (W/mm^2 at full utilisation), calibrated so the
// Table-5 design reproduces its published average powers at its
// simulated utilisations (Figure 13).
// ---------------------------------------------------------------------
constexpr double kPowerDensityMsm = 1.03;
constexpr double kPowerDensitySumcheck = 0.60;
constexpr double kPowerDensityMleUpdate = 0.64;
constexpr double kPowerDensityMtu = 1.12;
constexpr double kPowerDensityCombine = 0.35;
constexpr double kPowerDensityNd = 2.8;
constexpr double kPowerDensityFrac = 1.6;
constexpr double kPowerDensitySram = 0.136;
constexpr double kPowerDensityPhy = 1.074;
constexpr double kPowerDensityOther = 0.02;

}  // namespace zkspeed::sim
