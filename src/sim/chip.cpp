#include "sim/chip.hpp"

#include <algorithm>

namespace zkspeed::sim {

Chip::Chip(const DesignConfig &cfg)
    : cfg_(cfg), msm_(cfg), sumcheck_(cfg), mtu_(cfg), frac_(cfg),
      lookup_(cfg), mem_(cfg)
{
}

AreaBreakdown
Chip::area() const
{
    AreaBreakdown a;
    a.msm = msm_.compute_area();
    a.sumcheck = sumcheck_.sumcheck_area();
    a.mle_update = sumcheck_.mle_update_area();
    a.construct_nd = ConstructNdUnit::area();
    a.fracmle = frac_.area();
    a.mle_combine = MleCombineUnit::area();
    a.mtu = mtu_.area();
    a.other = Sha3Unit::area() + kInterconnectArea;
    double sram_mb = mem_.global_sram_mb() + msm_.local_sram_mb() +
                     frac_.local_sram_mb();
    a.sram = MemorySystem::sram_area(sram_mb);
    a.hbm_phy = mem_.phy_area();
    return a;
}

ChipReport
Chip::run(const Workload &wl) const
{
    ChipReport rep;
    const size_t mu = wl.mu;
    const uint64_t n = uint64_t(1) << mu;
    const int total_pes = msm_.total_pes();
    const int pes_per_core = cfg_.msm_pes_per_core;
    const double bpc = mem_.bytes_per_cycle();

    uint64_t msm_busy = 0, sc_busy = 0, upd_busy = 0, mtu_busy = 0;
    uint64_t nd_busy = 0, frac_busy = 0, comb_busy = 0, sha_busy = 0;

    // ------------------------------------------------------------------
    // Step 1: Witness Commits — three Sparse MSMs, serial on the
    // critical path (Section 4.2), each using every PE.
    // ------------------------------------------------------------------
    uint64_t witness_cycles = 0;
    {
        uint64_t compute = msm_.sparse_cycles(n, wl.ones_fraction,
                                              wl.dense_fraction, total_pes);
        double bytes = msm_.sparse_bytes(n, wl.ones_fraction,
                                         wl.dense_fraction);
        uint64_t one = std::max(compute, mem_.transfer_cycles(bytes));
        witness_cycles = 3 * one + Sha3Unit::cycles(4);
        msm_busy += 3 * compute;
        sha_busy += Sha3Unit::cycles(4);
        rep.hbm_bytes += 3 * bytes;
    }
    rep.step_cycles["Witness MSMs"] = witness_cycles;
    rep.kernel_cycles["Witness MSMs"] = witness_cycles;

    // ------------------------------------------------------------------
    // Step 2: Gate Identity — Build MLE (f_z1) then the ZeroCheck.
    // ------------------------------------------------------------------
    uint64_t gate_cycles = 0;
    {
        uint64_t build = mtu_.build_mle_cycles(mu);
        mtu_busy += build;
        auto zc = sumcheck_.run(SumcheckShape::zerocheck(mu), bpc);
        sc_busy += zc.sc_busy_cycles;
        upd_busy += zc.upd_busy_cycles;
        rep.hbm_bytes += zc.hbm_bytes;
        gate_cycles = build + zc.cycles;
        // Build-MLE work gets its own kernel bucket (one entry summed
        // across steps 2/3/3.5/5) so kernel_cycles tiles total_cycles
        // and obs/attrib can join it against the measured "Build MLE"
        // ProfileRegions.
        rep.kernel_cycles["Build MLE"] += build;
        rep.kernel_cycles["ZeroCheck"] = zc.cycles;
    }
    rep.step_cycles["Gate Identity"] = gate_cycles;

    // ------------------------------------------------------------------
    // Step 3: Wiring Identity — the pipelined front (Construct N&D ->
    // FracMLE -> ProdMLE -> two dense MSMs; Section 5's four-channel
    // case) followed by the PermCheck ZeroCheck.
    // ------------------------------------------------------------------
    uint64_t wire_cycles = 0;
    {
        uint64_t nd = ConstructNdUnit::cycles(mu);
        uint64_t fr = frac_.cycles(mu);
        uint64_t prod = mtu_.product_mle_cycles(mu);
        // phi/pi commitments: with two cores the MSMs run concurrently,
        // otherwise back to back on the single core's PEs.
        uint64_t one_msm = msm_.dense_cycles(n, pes_per_core);
        uint64_t msms = (cfg_.msm_cores >= 2) ? one_msm : 2 * one_msm;
        // Front stages stream into each other (MSM consumes FracMLE and
        // ProdMLE output as it is produced): latency is the slowest
        // stage plus pipeline fill.
        uint64_t fill = uint64_t(kPaddLatency) + 2 * kModmulLatency +
                        FracMleUnit::inversion_path_latency(
                            cfg_.inversion_batch);
        double front_bytes =
            6.0 * n * kFrBytes          // N1..3, D1..3 to HBM
            + 2.0 * n * kFrBytes        // phi, pi to HBM
            + 2.0 * n * kG1PointBytes;  // MSM base points in
        uint64_t front = std::max({nd, fr, prod, msms,
                                   mem_.transfer_cycles(front_bytes)}) +
                         fill;
        nd_busy += nd;
        frac_busy += fr;
        mtu_busy += prod;
        msm_busy += msms;  // wall time the MSM unit is occupied
        rep.hbm_bytes += front_bytes;

        uint64_t build = mtu_.build_mle_cycles(mu);
        mtu_busy += build;
        auto pc = sumcheck_.run(SumcheckShape::permcheck(mu), bpc);
        sc_busy += pc.sc_busy_cycles;
        upd_busy += pc.upd_busy_cycles;
        rep.hbm_bytes += pc.hbm_bytes;
        wire_cycles = front + build + pc.cycles;
        rep.kernel_cycles["Build MLE"] += build;
        rep.kernel_cycles["Wiring MSMs"] = front;
        rep.kernel_cycles["PermCheck"] = pc.cycles;
    }
    rep.step_cycles["Wire Identity"] = wire_cycles;

    // ------------------------------------------------------------------
    // Step 3.5: Lookup Argument (lookup workloads only) — multiplicity
    // probes, denominator fold, two FracMLE helper passes, three MSM
    // commits and the degree-3 LookupCheck (sim/lookup_unit.hpp).
    // ------------------------------------------------------------------
    uint64_t lookup_cycles = 0;
    if (wl.has_lookup()) {
        uint64_t mult =
            LookupUnit::multiplicity_cycles(mu, wl.per_table_rows());
        uint64_t fold = LookupUnit::fold_cycles(mu);
        uint64_t helpers = lookup_.helper_cycles(mu);
        // m is multiplicity-sparse (at most table_rows non-zeros); the
        // helpers are dense 255-bit tables. Three commits on the MSM
        // unit, concurrent across cores like the phi/pi pair.
        uint64_t one_msm = msm_.dense_cycles(n, pes_per_core);
        uint64_t msms =
            (cfg_.msm_cores >= 2) ? 2 * one_msm : 3 * one_msm;
        double front_bytes = LookupUnit::helper_bytes(mu) +
                             3.0 * n * kG1PointBytes;  // commit points
        uint64_t front =
            std::max({mult + fold + helpers, msms,
                      mem_.transfer_cycles(front_bytes)}) +
            FracMleUnit::inversion_path_latency(cfg_.inversion_batch);
        nd_busy += fold;
        frac_busy += helpers;
        msm_busy += msms;
        rep.hbm_bytes += front_bytes;

        uint64_t build = mtu_.build_mle_cycles(mu);
        mtu_busy += build;
        auto lc = sumcheck_.run(SumcheckShape::lookupcheck(mu), bpc);
        sc_busy += lc.sc_busy_cycles;
        upd_busy += lc.upd_busy_cycles;
        rep.hbm_bytes += lc.hbm_bytes;
        lookup_cycles = front + build + lc.cycles;
        rep.kernel_cycles["Build MLE"] += build;
        // `front` is the whole pipelined front end (probes + fold +
        // FracMLE passes + commits), not just the MSM share.
        rep.kernel_cycles["Lookup Front"] = front;
        rep.kernel_cycles["LookupCheck"] = lc.cycles;
        rep.step_cycles["Lookup Argument"] = lookup_cycles;
    }

    // ------------------------------------------------------------------
    // Step 4: Batch Evaluations — 22 MLE Evaluates on the MTU (+11 at
    // the LookupCheck point; Section 3.3.4). phi and pi stream from
    // HBM; the rest are resident (Section 4.6 cuts this step's
    // bandwidth by 84%).
    // ------------------------------------------------------------------
    const uint64_t num_evals = wl.has_lookup() ? 33 : 22;
    uint64_t batch_cycles = 0;
    {
        uint64_t compute = num_evals * mtu_.evaluate_cycles(mu);
        double bytes = 7.0 * n * kFrBytes;  // phi x3 + pi x4 reads
        if (wl.has_lookup()) {
            bytes += 2.0 * n * kFrBytes;  // h_f, h_t stream back in
        }
        batch_cycles =
            std::max(compute, mem_.transfer_cycles(bytes)) +
            Sha3Unit::cycles(8);
        mtu_busy += compute;
        sha_busy += Sha3Unit::cycles(8);
        rep.hbm_bytes += bytes;
        rep.kernel_cycles["FinalEval"] = batch_cycles;
    }

    // ------------------------------------------------------------------
    // Step 5: Polynomial Opening — MLE Combine (6 y MLEs), Build MLE
    // (6 k MLEs), OpenCheck, g' combine, and the halving MSMs.
    // ------------------------------------------------------------------
    uint64_t open_cycles = 0;
    {
        const uint64_t num_points = wl.has_lookup() ? 7 : 6;
        // Linear Combine: one multiply-accumulate per claim per gate
        // into the per-point y MLEs.
        uint64_t comb1 = MleCombineUnit::cycles(num_evals * n);
        double comb1_bytes =
            2.0 * n * kFrBytes                     // phi, pi in
            + double(num_points) * n * kFrBytes;   // y_j out
        uint64_t lin = std::max(comb1, mem_.transfer_cycles(comb1_bytes));
        comb_busy += comb1;
        rep.hbm_bytes += comb1_bytes;

        uint64_t builds = num_points * mtu_.build_mle_cycles(mu);
        double build_bytes = double(num_points) * n * kFrBytes;  // k_j
        uint64_t build =
            std::max(builds, mem_.transfer_cycles(build_bytes));
        mtu_busy += builds;
        rep.hbm_bytes += build_bytes;

        auto oc = sumcheck_.run(
            SumcheckShape::opencheck(mu, wl.has_lookup()), bpc);
        sc_busy += oc.sc_busy_cycles;
        upd_busy += oc.upd_busy_cycles;
        rep.hbm_bytes += oc.hbm_bytes;

        // g' = sum_j k_j(r) y_j plus the ReduceMLE halving pass.
        uint64_t comb2 = MleCombineUnit::cycles(num_points * n + n / 2);
        double comb2_bytes =
            double(num_points) * n * kFrBytes + n * kFrBytes;
        uint64_t gp = std::max(comb2, mem_.transfer_cycles(comb2_bytes));
        comb_busy += comb2;
        rep.hbm_bytes += comb2_bytes;

        // Halving MSM sequence: 2^{mu-1} + ... + 1 points.
        uint64_t msms = msm_.halving_sequence_cycles(mu, total_pes);
        double msm_bytes = double(n) * (kG1PointBytes + kFrBytes);
        uint64_t msm_lat =
            std::max(msms, mem_.transfer_cycles(msm_bytes));
        msm_busy += msms;
        rep.hbm_bytes += msm_bytes;

        open_cycles = lin + build + oc.cycles + gp + msm_lat;
        rep.kernel_cycles["Build MLE"] += build;
        rep.kernel_cycles["OpenCheck"] = oc.cycles;
        rep.kernel_cycles["PolyOpen MSMs"] = msm_lat;
        rep.kernel_cycles["Other"] = lin + gp;
    }
    rep.step_cycles["Batch Evals & Poly Open"] = batch_cycles + open_cycles;

    rep.total_cycles =
        witness_cycles + gate_cycles + wire_cycles + lookup_cycles +
        batch_cycles + open_cycles;
    rep.runtime_ms = double(rep.total_cycles) / (kClockGhz * 1e6);

    // ------------------------------------------------------------------
    // Utilisation and power.
    // ------------------------------------------------------------------
    double t = double(rep.total_cycles);
    auto util = [&](uint64_t busy) {
        return std::min(1.0, double(busy) / t);
    };
    rep.utilization["MSM"] = util(msm_busy);
    rep.utilization["Sumcheck"] = util(sc_busy);
    rep.utilization["MLE Update"] = util(upd_busy);
    rep.utilization["Multifunction"] = util(mtu_busy);
    rep.utilization["Construct N&D"] = util(nd_busy);
    rep.utilization["FracMLE"] = util(frac_busy);
    rep.utilization["MLE Combine"] = util(comb_busy);
    rep.utilization["SHA3"] = util(sha_busy);

    AreaBreakdown a = area();
    auto pw = [&](double ar, double density, double u) {
        return ar * density * u;
    };
    rep.power["MSM"] = pw(a.msm, kPowerDensityMsm, rep.utilization["MSM"]);
    rep.power["SumCheck"] =
        pw(a.sumcheck, kPowerDensitySumcheck, rep.utilization["Sumcheck"]);
    rep.power["MLE Update"] = pw(a.mle_update, kPowerDensityMleUpdate,
                                 rep.utilization["MLE Update"]);
    rep.power["Multifunction Tree"] =
        pw(a.mtu, kPowerDensityMtu, rep.utilization["Multifunction"]);
    rep.power["Construct N&D"] =
        pw(a.construct_nd, kPowerDensityNd, rep.utilization["Construct N&D"]);
    rep.power["FracMLE"] =
        pw(a.fracmle, kPowerDensityFrac, rep.utilization["FracMLE"]);
    rep.power["MLE Combine"] = pw(a.mle_combine, kPowerDensityCombine,
                                  rep.utilization["MLE Combine"]);
    rep.power["Other"] = pw(a.other, kPowerDensityOther, 1.0);
    rep.power["SRAM"] = pw(a.sram, kPowerDensitySram, 1.0);
    // PHY power scales with achieved bandwidth utilisation.
    double bw_util =
        std::min(1.0, rep.hbm_bytes / (double(rep.total_cycles) *
                                       mem_.bytes_per_cycle()));
    rep.power["HBM PHY"] = pw(a.hbm_phy, kPowerDensityPhy,
                              std::max(0.5, bw_util));
    for (const auto &[k, v] : rep.power) rep.total_power += v;
    return rep;
}

}  // namespace zkspeed::sim
