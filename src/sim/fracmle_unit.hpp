/**
 * @file
 * FracMLE unit model: batched constant-time modular inversion
 * (paper Section 4.4, Figures 7 and 8).
 *
 * Elements arrive one per cycle per PE; batches of b elements flow
 * through (i) a sequential partial-product chain, (ii) a shared
 * multiplier tree plus one BEEA inversion of the batch product, and
 * (iii) a recovery multiplier. Enough batched-inverse units are
 * provisioned round-robin to mask the inversion latency so the unit is
 * a pipeline producing one phi element per cycle per PE.
 */
#pragma once

#include <cstdint>
#include <cstdlib>

#include "sim/config.hpp"
#include "sim/mtu.hpp"
#include "sim/tech.hpp"

namespace zkspeed::sim {

class FracMleUnit
{
  public:
    explicit FracMleUnit(const DesignConfig &cfg) : cfg_(cfg) {}

    /** Latency of the inversion path for batch size b: shared tree then
     * constant-time BEEA (Section 4.4.1: 2W - 1 = 509 cycles). */
    static uint64_t
    inversion_path_latency(int b)
    {
        return MtuUnit::batch_tree_latency(b) + kBeeaLatency;
    }

    /** Latency of the sequential partial-product chain for batch b. */
    static uint64_t
    partial_product_latency(int b)
    {
        return uint64_t(b) * kModmulLatency;
    }

    /**
     * Latency imbalance between the two overlapped paths (Figure 8,
     * left axis): minimised at b = 64.
     */
    static uint64_t
    latency_imbalance(int b)
    {
        int64_t d = int64_t(partial_product_latency(b)) -
                    int64_t(inversion_path_latency(b));
        return uint64_t(std::llabs(d));
    }

    /** Batched-inverse units needed to accept one element per cycle. */
    static int
    inverse_units_needed(int b)
    {
        uint64_t busy = std::max(inversion_path_latency(b),
                                 partial_product_latency(b));
        return int((busy + b - 1) / b);
    }

    /**
     * Multiplier trees required: one tree serves all inverse units only
     * once its O(log2 b) latency fits within the batch arrival period
     * (Section 4.4.4: "starting at b = 64 we can reuse the multiplier
     * tree across all units").
     */
    static int
    trees_needed(int b)
    {
        uint64_t tree_lat = MtuUnit::batch_tree_latency(b);
        return int((tree_lat + b - 1) / b) == 0
                   ? 1
                   : int((tree_lat + b - 1) / b);
    }

    /**
     * Standalone area of a FracMLE pipeline at batch size b (Figure 8,
     * right axis), including its own multiplier trees and partial-
     * product SRAM — i.e. without the cross-unit reuse the full chip
     * enjoys (the figure's caption makes the same caveat).
     */
    static double
    standalone_area(int b)
    {
        double inv = double(inverse_units_needed(b)) * kBeeaArea;
        double tree =
            double(trees_needed(b)) * double(b - 1) * kModmulAreaFr;
        double chain = 2.0 * kModmulAreaFr;  // pp + recovery multipliers
        double sram = double(inverse_units_needed(b)) * double(b) * 2.0 *
                      32.0 / (1024.0 * 1024.0) * kSramAreaPerMb;
        return inv + tree + chain + sram;
    }

    /** Throughput: elements per cycle (one per FracMLE PE). */
    int throughput() const { return cfg_.frac_pes; }

    /** Cycles to produce all 2^m phi elements. */
    uint64_t
    cycles(size_t m) const
    {
        uint64_t n = uint64_t(1) << m;
        return n / throughput() +
               inversion_path_latency(cfg_.inversion_batch);
    }

    /** In-chip datapath area (tree shared with the MTU; Section 4.4.2),
     * plus the Construct N&D feeder area reported separately. */
    double
    area() const
    {
        int units = inverse_units_needed(cfg_.inversion_batch);
        return double(cfg_.frac_pes) *
               (double(units) * kBeeaArea + 2.0 * kModmulAreaFr);
    }

    /** Local SRAM (MB) buffering in-flight batches. */
    double
    local_sram_mb() const
    {
        int units = inverse_units_needed(cfg_.inversion_batch);
        return double(cfg_.frac_pes) * double(units) *
               double(cfg_.inversion_batch) * 2.0 * 32.0 /
               (1024.0 * 1024.0);
    }

  private:
    DesignConfig cfg_;
};

}  // namespace zkspeed::sim
