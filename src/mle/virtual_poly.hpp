/**
 * @file
 * Virtual polynomials: sums of coefficient-weighted products of MLEs.
 *
 * HyperPlonk's three SumCheck flavours (ZeroCheck, PermCheck, OpenCheck;
 * paper Eqs. 3-5) all operate on polynomials of this shape. MLEs are
 * shared between terms (e.g. f_z1 appears in every term of Eq. 3); the
 * SumCheck prover exploits this by extending each distinct table only
 * once per round, as the zkSpeed SumCheck PE does (Section 4.1.1).
 */
#pragma once

#include <memory>
#include <vector>

#include "mle/mle.hpp"

namespace zkspeed::mle {

class VirtualPolynomial
{
  public:
    /** One product term: coeff * prod_k mle[factor_k]. */
    struct Term {
        Fr coeff;
        std::vector<size_t> factors;  ///< indices into the MLE list
    };

    explicit VirtualPolynomial(size_t num_vars) : num_vars_(num_vars) {}

    size_t num_vars() const { return num_vars_; }
    const std::vector<std::shared_ptr<Mle>> &mles() const { return mles_; }
    const std::vector<Term> &terms() const { return terms_; }

    /**
     * Register an MLE (deduplicated by pointer identity) and return its
     * index for use in terms.
     */
    size_t
    add_mle(std::shared_ptr<Mle> m)
    {
        assert(m->num_vars() == num_vars_);
        for (size_t i = 0; i < mles_.size(); ++i) {
            if (mles_[i] == m) return i;
        }
        mles_.push_back(std::move(m));
        return mles_.size() - 1;
    }

    /** Append a term coeff * prod of the given registered MLE indices. */
    void
    add_term(const Fr &coeff, std::vector<size_t> factors)
    {
        for ([[maybe_unused]] size_t f : factors) assert(f < mles_.size());
        terms_.push_back(Term{coeff, std::move(factors)});
    }

    /** Convenience: register MLEs and append the product term. */
    void
    add_product(const Fr &coeff,
                std::initializer_list<std::shared_ptr<Mle>> ms)
    {
        std::vector<size_t> idx;
        idx.reserve(ms.size());
        for (const auto &m : ms) idx.push_back(add_mle(m));
        add_term(coeff, std::move(idx));
    }

    /** Highest per-variable degree: the longest product. */
    size_t
    max_degree() const
    {
        size_t d = 0;
        for (const auto &t : terms_) d = std::max(d, t.factors.size());
        return d;
    }

    /** Evaluate the full polynomial at a point (test/verifier path). */
    Fr
    evaluate(std::span<const Fr> point) const
    {
        std::vector<Fr> mle_vals(mles_.size());
        for (size_t i = 0; i < mles_.size(); ++i) {
            mle_vals[i] = mles_[i]->evaluate(point);
        }
        return evaluate_from_mle_values(mle_vals);
    }

    /**
     * Combine per-MLE evaluations into the polynomial value. The verifier
     * uses this with externally-verified MLE openings.
     */
    Fr
    evaluate_from_mle_values(std::span<const Fr> mle_vals) const
    {
        Fr acc = Fr::zero();
        for (const auto &t : terms_) {
            Fr prod = t.coeff;
            for (size_t f : t.factors) prod *= mle_vals[f];
            acc += prod;
        }
        return acc;
    }

    /** Sum over the boolean hypercube (the SumCheck claim). */
    Fr
    sum_over_hypercube() const
    {
        Fr acc = Fr::zero();
        size_t n = size_t(1) << num_vars_;
        for (size_t i = 0; i < n; ++i) {
            for (const auto &t : terms_) {
                Fr prod = t.coeff;
                for (size_t f : t.factors) prod *= (*mles_[f])[i];
                acc += prod;
            }
        }
        return acc;
    }

  private:
    size_t num_vars_;
    std::vector<std::shared_ptr<Mle>> mles_;
    std::vector<Term> terms_;
};

}  // namespace zkspeed::mle
