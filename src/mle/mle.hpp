/**
 * @file
 * Dense multilinear extensions (MLE tables).
 *
 * A mu-variate multilinear polynomial is stored as its 2^mu evaluations
 * over the boolean hypercube (paper Section 2.3: "MLE tables"). Index i
 * encodes the assignment little-endian: variable x_k is bit k-1 of i.
 *
 * The two core mutations are exactly the paper's kernels:
 *  - fix_first_variable implements the MLE Update of Eq. 2:
 *        t'[i] = (t[2i+1] - t[2i]) * r + t[2i]
 *  - eq_table implements Build MLE (the eq polynomial of Section 3.3.2).
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "ff/fr.hpp"

namespace zkspeed::mle {

using ff::Fr;

class Mle
{
  public:
    /** Construct the zero polynomial over num_vars variables. */
    explicit Mle(size_t num_vars = 0)
        : num_vars_(num_vars), evals_(size_t(1) << num_vars)
    {}

    /** Construct from an evaluation table (size must be a power of two). */
    static Mle
    from_evals(std::vector<Fr> evals)
    {
        size_t nv = 0;
        while ((size_t(1) << nv) < evals.size()) ++nv;
        assert((size_t(1) << nv) == evals.size() && !evals.empty());
        Mle m;
        m.num_vars_ = nv;
        m.evals_ = std::move(evals);
        return m;
    }

    /** Constant polynomial c over num_vars variables. */
    static Mle
    constant(size_t num_vars, const Fr &c)
    {
        Mle m(num_vars);
        for (auto &e : m.evals_) e = c;
        return m;
    }

    /** Uniformly random table (for tests and mock workloads). */
    template <typename Rng>
    static Mle
    random(size_t num_vars, Rng &rng)
    {
        Mle m(num_vars);
        for (auto &e : m.evals_) e = Fr::random(rng);
        return m;
    }

    size_t num_vars() const { return num_vars_; }
    size_t size() const { return evals_.size(); }
    const std::vector<Fr> &evals() const { return evals_; }
    std::vector<Fr> &evals() { return evals_; }
    Fr &operator[](size_t i) { return evals_[i]; }
    const Fr &operator[](size_t i) const { return evals_[i]; }
    bool operator==(const Mle &o) const = default;

    /**
     * MLE Update (paper Eq. 2): bind the first variable x_1 to r, halving
     * the table. t'[i] = (t[2i+1] - t[2i]) * r + t[2i].
     */
    void
    fix_first_variable(const Fr &r)
    {
        assert(num_vars_ > 0);
        size_t half = evals_.size() / 2;
        for (size_t i = 0; i < half; ++i) {
            evals_[i] = evals_[2 * i] +
                        (evals_[2 * i + 1] - evals_[2 * i]) * r;
        }
        evals_.resize(half);
        --num_vars_;
    }

    /**
     * Evaluate at an arbitrary point (MLE Evaluate, paper Section 3.3.4)
     * by folding one variable at a time: O(2^mu) multiplications.
     */
    Fr
    evaluate(std::span<const Fr> point) const
    {
        assert(point.size() == num_vars_);
        std::vector<Fr> cur = evals_;
        size_t len = cur.size();
        for (size_t k = 0; k < num_vars_; ++k) {
            len /= 2;
            for (size_t i = 0; i < len; ++i) {
                cur[i] = cur[2 * i] + (cur[2 * i + 1] - cur[2 * i]) * point[k];
            }
        }
        return cur[0];
    }

    /**
     * Build MLE (paper Sections 3.3.2 / 4.3): the eq polynomial table
     *   eq(x; r)[i] = prod_k (i_k ? r_k : 1 - r_k),
     * built as a forward binary tree with 2^{mu+1} - 4 multiplications
     * (one child per pair is derived by subtraction, footnote 3).
     */
    static Mle
    eq_table(std::span<const Fr> point)
    {
        Mle m;
        m.num_vars_ = point.size();
        std::vector<Fr> cur = {Fr::one()};
        cur.reserve(size_t(1) << point.size());
        // Each doubling step installs the new variable at bit 0, so we
        // process the point back-to-front to leave x_1 at the LSB.
        for (size_t k = point.size(); k-- > 0;) {
            std::vector<Fr> next(cur.size() * 2);
            for (size_t i = 0; i < cur.size(); ++i) {
                next[2 * i + 1] = cur[i] * point[k];
                next[2 * i] = cur[i] - next[2 * i + 1];  // (1-r)*c, mul-free
            }
            cur = std::move(next);
        }
        m.evals_ = std::move(cur);
        return m;
    }

    /**
     * Closed-form evaluation of eq(z; r) = prod_k (z_k r_k +
     * (1-z_k)(1-r_k)); what the verifier uses instead of a table.
     */
    static Fr
    eq_eval(std::span<const Fr> z, std::span<const Fr> r)
    {
        assert(z.size() == r.size());
        Fr acc = Fr::one();
        for (size_t k = 0; k < z.size(); ++k) {
            Fr zr = z[k] * r[k];
            acc *= zr + zr + Fr::one() - z[k] - r[k];
        }
        return acc;
    }

    /** Sum of the table over the boolean hypercube. */
    Fr
    sum() const
    {
        Fr acc = Fr::zero();
        for (const auto &e : evals_) acc += e;
        return acc;
    }

    /** this += c * other (MLE Combine primitive). */
    void
    add_scaled(const Mle &other, const Fr &c)
    {
        assert(other.size() == size());
        for (size_t i = 0; i < evals_.size(); ++i) {
            evals_[i] += other.evals_[i] * c;
        }
    }

  private:
    size_t num_vars_ = 0;
    std::vector<Fr> evals_;
};

}  // namespace zkspeed::mle
