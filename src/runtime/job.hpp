/**
 * @file
 * Job and response types for the batch proving/verification service.
 *
 * Two job classes share the worker pool. A PROVE job (JobRequest)
 * carries everything needed to prove one statement: the preprocessed
 * circuit and a claimed witness; the service answers with canonical
 * proof bytes. A VERIFY job (VerifyRequest) carries a serialized
 * verifying key, public inputs and proof bytes; the service coalesces
 * verify jobs into batch windows and answers each with accept/reject.
 * Either way a malformed request becomes an error response, never a
 * worker crash.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hyperplonk/circuit.hpp"

namespace zkspeed::runtime {

/** The two job classes served by the worker pool. */
enum class JobKind : uint8_t {
    prove = 0,
    verify = 1,
};

const char *to_string(JobKind k);

/** One proving request, decoded from the wire. */
struct JobRequest {
    /** Caller-chosen correlation id, echoed in the response. */
    uint64_t request_id = 0;
    hyperplonk::CircuitIndex circuit;
    hyperplonk::Witness witness;
};

/**
 * One verification request, decoded from the wire. The key and proof
 * stay in their canonical serialized forms; strict decoding (curve
 * membership, canonical field elements) happens in the worker so a
 * garbage payload rejects without touching the batch window.
 */
struct VerifyRequest {
    /** Caller-chosen correlation id, echoed in the response. */
    uint64_t request_id = 0;
    /** serialize_verifying_key bytes (pairing-mode SRS subset). */
    std::vector<uint8_t> vk;
    std::vector<ff::Fr> public_inputs;
    /** serialize_proof bytes. */
    std::vector<uint8_t> proof;
};

/** Why a job succeeded or failed. */
enum class JobStatus : uint8_t {
    ok = 0,
    /** Request bytes failed strict decoding. */
    malformed_request = 1,
    /** Witness does not satisfy the circuit (caught before proving). */
    unsatisfiable = 2,
    /** Circuit exceeds the service's configured size cap. */
    too_large = 3,
    /** Worker caught an unexpected exception while proving. */
    internal_error = 4,
    /** Service shut down before the job ran. */
    cancelled = 5,
    /** VERIFY only: the proof was checked and rejected. */
    invalid_proof = 6,
};

const char *to_string(JobStatus s);

/** Per-job measurements, folded into the service aggregates. */
struct JobMetrics {
    double queue_ms = 0;  ///< submit -> worker pickup
    double prove_ms = 0;  ///< keygen (on cache miss) + prove + encode
    double total_ms = 0;  ///< submit -> response ready
    /** Modular multiplications spent by this job (ff counters). */
    uint64_t modmul_fr = 0;
    uint64_t modmul_fq = 0;
    bool key_cache_hit = false;
    uint32_t worker_id = 0;
    uint64_t proof_bytes = 0;
    /** log2 gate count of the proved/verified circuit (0 when rejected
     * early). */
    uint32_t num_vars = 0;
    /** VERIFY only: wall time of the shared batch flush this job rode. */
    double verify_ms = 0;
    /** VERIFY only: number of proofs folded into that flush. */
    uint32_t batch_size = 0;
};

/** One answered job. */
struct JobResponse {
    uint64_t request_id = 0;
    JobKind kind = JobKind::prove;
    JobStatus status = JobStatus::internal_error;
    /** PROVE: canonical serialize_proof bytes; empty unless ok.
     *  VERIFY: always empty (the verdict is the status). */
    std::vector<uint8_t> proof;
    /** Human-readable detail for non-ok statuses. */
    std::string error;
    JobMetrics metrics;

    bool ok() const { return status == JobStatus::ok; }
};

/**
 * One line of the runtime trace: enough of a finished unit of work to
 * replay it through the zkSpeed chip model (sim/replay.hpp).
 *
 * PROVE entries are one per proved job; witness scalar statistics are
 * measured on the real witness so the simulated Sparse MSMs see the
 * job's true zero/one population. VERIFY entries are one per *batch
 * flush* (the amortized unit of verification work): the folded RLC MSM
 * replays on the chip's MSM unit while the multi-pairing stays on the
 * CPU, mirroring the paper's placement of pairings.
 */
struct TraceEntry {
    JobKind kind = JobKind::prove;
    /** Request id of the proved job — joins the replayed model cycles
     * to this job's prover spans in obs/attrib (the service tags its
     * prove spans with the same id as correlation id). Verify flushes
     * fold several requests and keep 0. */
    uint64_t request_id = 0;
    uint32_t num_vars = 0;
    /** Witness scalar population across the three wire MLEs (prove). */
    uint64_t zero_scalars = 0;
    uint64_t one_scalars = 0;
    uint64_t total_scalars = 0;
    /** Lookup argument shape (prove; 0 when the circuit has none): the
     * sim LookupUnit prices the helper-MLE and LookupCheck work.
     * `per_table_rows` carries each fused table's height in tag order
     * (table_rows is their sum) so replay can price the per-bank CAM
     * fills of a multi-table circuit. */
    uint64_t lookup_gates = 0;
    uint64_t table_rows = 0;
    std::vector<uint64_t> per_table_rows;
    double prove_ms = 0;
    bool key_cache_hit = false;

    // VERIFY-flush fields.
    /** Proofs folded into this flush. */
    uint32_t batch_size = 0;
    /** G1 points folded through RLC MSMs across the whole flush,
     * including every bisection probe (matches pairing_ms, which also
     * sums the probes). */
    uint64_t msm_points = 0;
    /** Multi-pairing pairs across the whole flush, probes included. */
    uint32_t num_pairings = 0;
    /** Measured software wall time of the whole flush. */
    double verify_ms = 0;
    /** Portion spent in Miller loops + final exponentiation (stays on
     * the CPU when replayed on the chip model). */
    double pairing_ms = 0;
};

}  // namespace zkspeed::runtime
