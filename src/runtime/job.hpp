/**
 * @file
 * Job and response types for the batch proving service.
 *
 * A JobRequest carries everything needed to prove one statement: the
 * preprocessed circuit and a claimed witness. The service answers with
 * a JobResponse holding either canonical proof bytes (the exact
 * serialize_proof encoding, ready to post) or a status describing why
 * the job was rejected — malformed requests become error responses,
 * never worker crashes.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hyperplonk/circuit.hpp"

namespace zkspeed::runtime {

/** One proving request, decoded from the wire. */
struct JobRequest {
    /** Caller-chosen correlation id, echoed in the response. */
    uint64_t request_id = 0;
    hyperplonk::CircuitIndex circuit;
    hyperplonk::Witness witness;
};

/** Why a job succeeded or failed. */
enum class JobStatus : uint8_t {
    ok = 0,
    /** Request bytes failed strict decoding. */
    malformed_request = 1,
    /** Witness does not satisfy the circuit (caught before proving). */
    unsatisfiable = 2,
    /** Circuit exceeds the service's configured size cap. */
    too_large = 3,
    /** Worker caught an unexpected exception while proving. */
    internal_error = 4,
    /** Service shut down before the job ran. */
    cancelled = 5,
};

const char *to_string(JobStatus s);

/** Per-job measurements, folded into the service aggregates. */
struct JobMetrics {
    double queue_ms = 0;  ///< submit -> worker pickup
    double prove_ms = 0;  ///< keygen (on cache miss) + prove + encode
    double total_ms = 0;  ///< submit -> response ready
    /** Modular multiplications spent by this job (ff counters). */
    uint64_t modmul_fr = 0;
    uint64_t modmul_fq = 0;
    bool key_cache_hit = false;
    uint32_t worker_id = 0;
    uint64_t proof_bytes = 0;
    /** log2 gate count of the proved circuit (0 when rejected early). */
    uint32_t num_vars = 0;
};

/** One answered job. */
struct JobResponse {
    uint64_t request_id = 0;
    JobStatus status = JobStatus::internal_error;
    /** Canonical serialize_proof bytes; empty unless status == ok. */
    std::vector<uint8_t> proof;
    /** Human-readable detail for non-ok statuses. */
    std::string error;
    JobMetrics metrics;

    bool ok() const { return status == JobStatus::ok; }
};

/**
 * One line of the runtime trace: enough of a finished job to replay it
 * through the zkSpeed chip model (sim/replay.hpp). Witness scalar
 * statistics are measured on the real witness so the simulated Sparse
 * MSMs see the job's true zero/one population.
 */
struct TraceEntry {
    uint32_t num_vars = 0;
    /** Witness scalar population across the three wire MLEs. */
    uint64_t zero_scalars = 0;
    uint64_t one_scalars = 0;
    uint64_t total_scalars = 0;
    double prove_ms = 0;
    bool key_cache_hit = false;
};

}  // namespace zkspeed::runtime
