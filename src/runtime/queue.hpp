/**
 * @file
 * Bounded multi-producer / multi-consumer job queue with backpressure.
 *
 * Producers block in push() (or get an immediate refusal from
 * try_push()) once the queue holds `capacity` items, so a flood of
 * requests throttles the submitters instead of growing an unbounded
 * backlog of multi-megabyte witnesses. close() wakes everyone: pending
 * pops drain the remaining items and then return nullopt.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace zkspeed::runtime {

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

    /** Blocks while full. @return false iff the queue was closed. */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock,
                       [&] { return closed_ || items_.size() < capacity_; });
        if (closed_) return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /** Non-blocking push. @return false when full or closed. */
    bool
    try_push(T &item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || items_.size() >= capacity_) return false;
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return true;
    }

    /** Blocks while empty. @return nullopt once closed and drained. */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /** Non-blocking pop (shutdown drains). */
    std::optional<T>
    try_pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /** Wake all waiters; pushes fail from here on, pops drain. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    size_t capacity() const { return capacity_; }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_full_, not_empty_;
    std::deque<T> items_;
    bool closed_ = false;
};

}  // namespace zkspeed::runtime
