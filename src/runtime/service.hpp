/**
 * @file
 * The batch proving/verification service: a worker pool pulling encoded
 * requests from a bounded queue and serving mixed PROVE/VERIFY traffic.
 *
 * Two-level parallelism (see DESIGN.md "Runtime"): the pool schedules
 * whole proofs across workers, and each worker carves its share of the
 * machine out of a total core budget via ff::WorkerBudgetScope, so the
 * per-proof kernels (`ff::parallel_for` inside MSM / sumcheck) never
 * oversubscribe the host while concurrent proofs run.
 *
 * VERIFY jobs are coalesced in a batch window: a worker runs the
 * per-proof algebraic checks inline (parallel across workers), parks
 * the deferred pairing accumulator, and the window flushes through one
 * folded BatchVerifier check when it reaches `verify_batch_size` or
 * when the oldest parked job has waited `verify_batch_window_ms` (a
 * dedicated flusher thread enforces the deadline, so a lone verify job
 * never waits for traffic that isn't coming).
 *
 * Workers are crash-isolated per job: decode failures, witness
 * mismatches and unexpected exceptions all turn into error responses;
 * the worker thread survives and moves to the next job.
 */
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <future>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/key_cache.hpp"
#include "runtime/metrics.hpp"
#include "runtime/queue.hpp"
#include "runtime/wire.hpp"
#include "verify/batch_verifier.hpp"

namespace zkspeed::runtime {

struct ServiceConfig {
    /** Proof-level workers. */
    size_t num_workers = 1;
    /** Jobs admitted before submitters feel backpressure. */
    size_t queue_capacity = 64;
    /**
     * Total kernel-thread budget split across workers (two-level
     * parallelism). 0 = one hardware thread per core. Each worker gets
     * max(1, total / num_workers).
     */
    size_t total_parallelism = 0;
    /** Resident proving keys (LRU beyond this). */
    size_t key_cache_capacity = 16;
    /** Largest circuit (log2 gates) this instance accepts. */
    size_t max_circuit_vars = wire::kMaxRequestVars;
    /** Seed of the simulated per-size SRS ceremonies. */
    uint64_t srs_seed = 0x7a6b5eedULL;
    /** Check the witness satisfies the circuit before proving. */
    bool check_witness = true;
    /** Record a TraceEntry per proved job / verify flush for sim replay. */
    bool record_trace = true;
    /** VERIFY jobs folded per batch flush (the size trigger). */
    size_t verify_batch_size = 16;
    /** Max time a parked VERIFY job waits before a timeout flush. */
    double verify_batch_window_ms = 25.0;
    /**
     * Create the service with idle workers; call start() to run them.
     * Lets tests fill the queue deterministically first.
     */
    bool start_paused = false;
};

/**
 * Readiness probe answer (the /readyz formula, DESIGN.md §14):
 * ready = workers up AND queue below capacity AND the failed-job
 * ratio over the last `kReadinessWindow` terminal jobs under
 * `kReadinessErrorThreshold`. Rejected jobs (bad requests) do not
 * count against readiness — only `failed` ones (internal errors /
 * cancellations) signal an unhealthy instance.
 */
struct ServiceReadiness {
    bool ready = false;
    bool workers_up = false;
    size_t queue_depth = 0;
    size_t queue_capacity = 0;
    double recent_error_ratio = 0.0;
    /** Human-readable reason when not ready (empty when ready). */
    std::string detail;
};

class ProofService
{
  public:
    explicit ProofService(ServiceConfig cfg);
    ~ProofService();

    ProofService(const ProofService &) = delete;
    ProofService &operator=(const ProofService &) = delete;

    /** Launch the worker threads (no-op unless start_paused). */
    void start();

    /**
     * Enqueue encoded request bytes; blocks when the queue is full
     * (backpressure). The future resolves when a worker answers.
     */
    std::future<JobResponse> submit(std::vector<uint8_t> request_bytes);

    /**
     * Non-blocking enqueue. @return empty optional when the queue is
     * full or the service is shutting down.
     */
    std::optional<std::future<JobResponse>> try_submit(
        std::vector<uint8_t> request_bytes);

    /** Convenience: encode and enqueue a structured request. */
    std::future<JobResponse> submit(const JobRequest &request);

    /** Convenience: encode and enqueue a structured verify request. */
    std::future<JobResponse> submit(const VerifyRequest &request);

    /** Stop accepting work, drain the queue, join the workers. */
    void shutdown();

    /**
     * Derived view over this instance's series in the global
     * obs::MetricsRegistry (the struct API predates the registry and is
     * kept as a snapshot reconstruction — see runtime/metrics.hpp).
     */
    ServiceMetrics metrics() const;

    /** Failed-job window size of the readiness formula. */
    static constexpr size_t kReadinessWindow = 64;
    /** Recent failed-job ratio at or above this flips /readyz to 503. */
    static constexpr double kReadinessErrorThreshold = 0.5;
    /** Evaluate the /readyz formula against live state (lock-free
     * reads; safe from the telemetry HTTP server's handler threads). */
    ServiceReadiness readiness() const;

    KeyCacheStats cache_stats() const { return cache_.stats(); }
    /** Snapshot of the replayable trace (record_trace only). */
    std::vector<TraceEntry> trace() const;
    size_t queue_depth() const { return queue_.size(); }
    const ServiceConfig &config() const { return cfg_; }
    /** Kernel-thread budget each worker proves under. */
    size_t worker_budget() const { return per_worker_budget_; }

    /** `service` label value of this instance's registry series. */
    const std::string &instance_label() const { return instance_; }
    /** Canonical `name{labels}` of every series this instance
     * registered (exposition-exhaustiveness tests sweep this). */
    std::vector<std::string> telemetry_series() const;

  private:
    struct QueuedJob {
        std::vector<uint8_t> request;
        std::promise<JobResponse> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    /** A VERIFY job parked in the batch window, algebraic checks done. */
    struct PendingVerify {
        uint64_t request_id = 0;
        std::promise<JobResponse> promise;
        verifier::PairingAccumulator acc;
        JobMetrics metrics;
        std::chrono::steady_clock::time_point enqueued;
        /** When it entered the batch window (residency trace span). */
        std::chrono::steady_clock::time_point parked;
    };

    /** MetricIds of this instance's registry series (obs rewiring).
     * Class index: 0 = prove, 1 = verify. Status index: 0 = ok,
     * 1 = rejected, 2 = failed (ClassMetrics buckets). */
    struct Telemetry {
        obs::MetricId latency[2][3];  ///< total_ms, ALL terminal jobs
        obs::MetricId queue_ms[2];
        obs::MetricId active_ms[2];
        obs::MetricId modmul_fr, modmul_fq;
        obs::MetricId cache_hits, proof_bytes;
        obs::MetricId flush_ms, batch_size;
        obs::MetricId flush_reason[2];  ///< 0 = size, 1 = timeout
        obs::MetricId verdicts[2];      ///< 0 = accepted, 1 = rejected
        obs::MetricId pairing_checks, bisection_steps, msm_points;
        obs::MetricId queue_depth, busy_workers, utilization,
            window_depth;
    };

    void register_telemetry();
    /** Fold one terminal job into the registry (all statuses). */
    void record_job_telemetry(const JobResponse &resp);
    void set_worker_gauges(size_t busy);
    void set_queue_depth_gauge();

    void worker_loop(uint32_t worker_id);
    /** Answer or park one job (VERIFY jobs park in the batch window). */
    void handle(QueuedJob &&job, uint32_t worker_id);
    JobResponse process_prove(QueuedJob &job);
    /** @return the parked job, or nullopt with `resp` filled in. */
    std::optional<PendingVerify> process_verify(QueuedJob &job,
                                               JobResponse &resp);
    void park_verify(PendingVerify pending);
    void flush_verify_batch(std::vector<PendingVerify> batch,
                            bool timed_out);
    void flusher_loop();
    void finish(QueuedJob &job, JobResponse resp);
    void finish_response(std::promise<JobResponse> &promise,
                         JobResponse resp);

    ServiceConfig cfg_;
    size_t per_worker_budget_ = 1;
    std::string instance_;  ///< `service` label value (svc0, svc1, ...)
    Telemetry tele_;
    BoundedQueue<QueuedJob> queue_;
    KeyCache cache_;
    std::vector<std::thread> workers_;
    std::thread flusher_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<size_t> busy_workers_{0};

    /** Terminal-status ring behind readiness(): slot = job index mod
     * window, value 1 when the job failed. Updated unconditionally in
     * finish_response (readiness must work with telemetry disabled). */
    std::array<std::atomic<uint8_t>, kReadinessWindow> recent_failed_{};
    std::atomic<uint64_t> terminal_jobs_{0};

    std::mutex window_mu_;
    std::condition_variable window_cv_;
    std::vector<PendingVerify> window_;
    std::chrono::steady_clock::time_point window_opened_;
    bool draining_ = false;

    mutable std::mutex stats_mu_;
    std::vector<TraceEntry> trace_;
};

}  // namespace zkspeed::runtime
