#include "runtime/service.hpp"

#include <exception>

#include "ff/parallel.hpp"
#include "hyperplonk/serialize.hpp"

namespace zkspeed::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
ms_since(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

}  // namespace

ProofService::ProofService(ServiceConfig cfg)
    : cfg_(cfg),
      queue_(std::max<size_t>(1, cfg.queue_capacity)),
      cache_(cfg.key_cache_capacity, cfg.srs_seed)
{
    cfg_.num_workers = std::max<size_t>(1, cfg_.num_workers);
    cfg_.verify_batch_size = std::max<size_t>(1, cfg_.verify_batch_size);
    size_t total = cfg_.total_parallelism != 0
                       ? cfg_.total_parallelism
                       : std::max<size_t>(
                             1, std::thread::hardware_concurrency());
    per_worker_budget_ = std::max<size_t>(1, total / cfg_.num_workers);
    if (!cfg_.start_paused) start();
}

ProofService::~ProofService() { shutdown(); }

void
ProofService::start()
{
    if (started_) return;
    started_ = true;
    workers_.reserve(cfg_.num_workers);
    for (size_t i = 0; i < cfg_.num_workers; ++i) {
        workers_.emplace_back(
            [this, i] { worker_loop(uint32_t(i)); });
    }
    flusher_ = std::thread([this] { flusher_loop(); });
}

std::future<JobResponse>
ProofService::submit(std::vector<uint8_t> request_bytes)
{
    // Classify before the push: push takes the job by value, so the
    // request bytes are gone (moved) whether or not it succeeds.
    JobKind kind =
        wire::classify_request(request_bytes).value_or(JobKind::prove);
    QueuedJob job;
    job.request = std::move(request_bytes);
    job.enqueued = Clock::now();
    auto future = job.promise.get_future();
    if (!queue_.push(std::move(job))) {
        // Shutting down (push only fails after close()): answer
        // directly instead of losing the promise.
        std::promise<JobResponse> p;
        future = p.get_future();
        JobResponse resp;
        resp.kind = kind;
        resp.status = JobStatus::cancelled;
        resp.error = "service is shutting down";
        {
            // Same accounting as every other cancellation path.
            std::lock_guard<std::mutex> lock(stats_mu_);
            metrics_.add(resp);
        }
        p.set_value(std::move(resp));
    }
    return future;
}

std::optional<std::future<JobResponse>>
ProofService::try_submit(std::vector<uint8_t> request_bytes)
{
    QueuedJob job;
    job.request = std::move(request_bytes);
    job.enqueued = Clock::now();
    auto future = job.promise.get_future();
    if (!queue_.try_push(job)) return std::nullopt;
    return future;
}

std::future<JobResponse>
ProofService::submit(const JobRequest &request)
{
    return submit(wire::encode_request(request));
}

std::future<JobResponse>
ProofService::submit(const VerifyRequest &request)
{
    return submit(wire::encode_verify_request(request));
}

void
ProofService::shutdown()
{
    if (stopped_) return;
    stopped_ = true;
    queue_.close();
    if (!started_) {
        // Paused service: nobody will drain the queue; cancel directly.
        while (auto job = queue_.try_pop()) {
            JobResponse resp;
            resp.kind = wire::classify_request(job->request)
                            .value_or(JobKind::prove);
            resp.status = JobStatus::cancelled;
            resp.error = "service shut down before the job ran";
            finish(*job, std::move(resp));
        }
        return;
    }
    for (auto &t : workers_) {
        if (t.joinable()) t.join();
    }
    // Workers are gone, so no new verify jobs can be parked; tell the
    // flusher to drain whatever is left in the window and exit.
    {
        std::lock_guard<std::mutex> lock(window_mu_);
        draining_ = true;
    }
    window_cv_.notify_all();
    if (flusher_.joinable()) flusher_.join();
}

void
ProofService::worker_loop(uint32_t worker_id)
{
    // The worker's kernels fan out to this thread's budget only; with
    // W workers on C cores that is ~C/W threads each, so concurrent
    // proofs never oversubscribe the machine (two-level parallelism).
    ff::WorkerBudgetScope budget(per_worker_budget_);
    while (auto job = queue_.pop()) {
        handle(std::move(*job), worker_id);
    }
}

void
ProofService::handle(QueuedJob &&job, uint32_t worker_id)
{
    auto kind = wire::classify_request(job.request);
    if (kind == JobKind::verify) {
        // True queue time: submit -> this worker picking the job up.
        // Rejected verify jobs short-circuit below and would otherwise
        // report queue_ms = 0, hiding queue pressure from the metrics.
        double queue_ms = ms_since(job.enqueued);
        JobResponse resp;
        resp.kind = JobKind::verify;
        resp.metrics.queue_ms = queue_ms;
        std::optional<PendingVerify> parked;
        try {
            parked = process_verify(job, resp);
        } catch (const std::exception &e) {
            parked.reset();
            resp.status = JobStatus::internal_error;
            resp.error = e.what();
        } catch (...) {
            parked.reset();
            resp.status = JobStatus::internal_error;
            resp.error = "unknown exception while verifying";
        }
        if (parked.has_value()) {
            parked->metrics.worker_id = worker_id;
            park_verify(std::move(*parked));
            return;
        }
        resp.metrics.worker_id = worker_id;
        resp.metrics.total_ms = ms_since(job.enqueued);
        finish(job, std::move(resp));
        return;
    }
    // PROVE, or an unknown magic (which fails strict decoding below and
    // is answered malformed_request — bad job kinds never kill workers).
    JobResponse resp;
    try {
        resp = process_prove(job);
    } catch (const std::exception &e) {
        resp = JobResponse{};
        resp.status = JobStatus::internal_error;
        resp.error = e.what();
    } catch (...) {
        resp = JobResponse{};
        resp.status = JobStatus::internal_error;
        resp.error = "unknown exception while proving";
    }
    resp.kind = JobKind::prove;
    resp.metrics.worker_id = worker_id;
    resp.metrics.queue_ms = resp.metrics.total_ms - resp.metrics.prove_ms;
    finish(job, std::move(resp));
}

JobResponse
ProofService::process_prove(QueuedJob &job)
{
    JobResponse resp;
    ff::ModmulScope muls;

    auto decoded = wire::decode_request(job.request);
    if (!decoded.has_value()) {
        resp.status = JobStatus::malformed_request;
        resp.error = "request failed strict decoding";
        resp.metrics.total_ms = ms_since(job.enqueued);
        return resp;
    }
    JobRequest &req = *decoded;
    resp.request_id = req.request_id;
    resp.metrics.num_vars = uint32_t(req.circuit.num_vars);

    if (req.circuit.num_vars > cfg_.max_circuit_vars) {
        resp.status = JobStatus::too_large;
        resp.error = "circuit exceeds this instance's size cap";
        resp.metrics.total_ms = ms_since(job.enqueued);
        return resp;
    }

    if (cfg_.check_witness &&
        (!req.witness.satisfies_gates(req.circuit) ||
         !req.witness.satisfies_wiring(req.circuit) ||
         !req.witness.satisfies_lookups(req.circuit))) {
        resp.status = JobStatus::unsatisfiable;
        resp.error = "witness does not satisfy the circuit";
        resp.metrics.total_ms = ms_since(job.enqueued);
        return resp;
    }

    auto prove_start = Clock::now();
    bool cache_hit = false;
    try {
        auto [keys, hit] = cache_.get_or_create(req.circuit);
        cache_hit = hit;
        hyperplonk::Proof proof = hyperplonk::prove(*keys.pk, req.witness);
        resp.proof = hyperplonk::serde::serialize_proof(proof);
    } catch (const std::exception &e) {
        // Catch here rather than in handle() so the response keeps
        // the decoded request_id for correlation.
        resp.status = JobStatus::internal_error;
        resp.error = e.what();
        resp.metrics.total_ms = ms_since(job.enqueued);
        return resp;
    }

    resp.status = JobStatus::ok;
    resp.metrics.prove_ms = ms_since(prove_start);
    resp.metrics.total_ms = ms_since(job.enqueued);
    resp.metrics.key_cache_hit = cache_hit;
    resp.metrics.proof_bytes = resp.proof.size();
    resp.metrics.modmul_fr = muls.fr_delta();
    resp.metrics.modmul_fq = muls.fq_delta();

    if (cfg_.record_trace) {
        TraceEntry entry;
        entry.kind = JobKind::prove;
        entry.num_vars = uint32_t(req.circuit.num_vars);
        entry.prove_ms = resp.metrics.prove_ms;
        entry.key_cache_hit = cache_hit;
        for (const auto &w : req.witness.w) {
            for (size_t i = 0; i < w.size(); ++i) {
                if (w[i].is_zero()) ++entry.zero_scalars;
                else if (w[i].is_one()) ++entry.one_scalars;
                ++entry.total_scalars;
            }
        }
        entry.table_rows = req.circuit.table_rows;
        entry.per_table_rows = req.circuit.table_row_counts;
        entry.lookup_gates = req.circuit.num_lookup_gates();
        std::lock_guard<std::mutex> lock(stats_mu_);
        trace_.push_back(entry);
    }
    return resp;
}

std::optional<ProofService::PendingVerify>
ProofService::process_verify(QueuedJob &job, JobResponse &resp)
{
    ff::ModmulScope muls;

    auto decoded = wire::decode_verify_request(job.request);
    if (!decoded.has_value()) {
        resp.status = JobStatus::malformed_request;
        resp.error = "verify request failed strict decoding";
        return std::nullopt;
    }
    VerifyRequest &req = *decoded;
    resp.request_id = req.request_id;

    auto vk = hyperplonk::serde::deserialize_verifying_key(req.vk);
    if (!vk.has_value()) {
        resp.status = JobStatus::malformed_request;
        resp.error = "verifying key failed strict decoding";
        return std::nullopt;
    }
    resp.metrics.num_vars = uint32_t(vk->num_vars);
    if (vk->num_vars > cfg_.max_circuit_vars) {
        resp.status = JobStatus::too_large;
        resp.error = "verifying key exceeds this instance's size cap";
        return std::nullopt;
    }

    auto proof = hyperplonk::serde::deserialize_proof(req.proof);
    if (!proof.has_value()) {
        resp.status = JobStatus::malformed_request;
        resp.error = "proof failed strict decoding";
        return std::nullopt;
    }

    // Algebraic stage (transcript, sumchecks, claimed evaluations) runs
    // inline on this worker; only the pairing check is deferred.
    auto alg_start = Clock::now();
    verifier::PairingAccumulator acc;
    bool algebraic_ok =
        hyperplonk::verify_deferred(*vk, req.public_inputs, *proof, acc);
    double alg_ms = ms_since(alg_start);
    if (!algebraic_ok) {
        resp.status = JobStatus::invalid_proof;
        resp.error = "algebraic verification checks failed";
        resp.metrics.prove_ms = alg_ms;
        resp.metrics.modmul_fr = muls.fr_delta();
        resp.metrics.modmul_fq = muls.fq_delta();
        return std::nullopt;
    }

    PendingVerify pending;
    pending.request_id = req.request_id;
    pending.promise = std::move(job.promise);
    pending.acc = std::move(acc);
    pending.enqueued = job.enqueued;
    pending.metrics.num_vars = uint32_t(vk->num_vars);
    // Queue time was measured at worker pickup (handle()); keep that
    // one definition whether the job is answered now or after a flush.
    pending.metrics.queue_ms = resp.metrics.queue_ms;
    pending.metrics.prove_ms = alg_ms;
    pending.metrics.modmul_fr = muls.fr_delta();
    pending.metrics.modmul_fq = muls.fq_delta();
    return pending;
}

void
ProofService::park_verify(PendingVerify pending)
{
    std::vector<PendingVerify> batch;
    {
        std::lock_guard<std::mutex> lock(window_mu_);
        if (window_.empty()) window_opened_ = Clock::now();
        window_.push_back(std::move(pending));
        if (window_.size() >= cfg_.verify_batch_size) {
            batch.swap(window_);
        }
    }
    if (!batch.empty()) {
        flush_verify_batch(std::move(batch), /*timed_out=*/false);
    } else {
        // Wake the flusher so it arms the window deadline.
        window_cv_.notify_one();
    }
}

void
ProofService::flusher_loop()
{
    std::unique_lock<std::mutex> lock(window_mu_);
    for (;;) {
        if (window_.empty()) {
            if (draining_) return;
            window_cv_.wait(lock, [this] {
                return draining_ || !window_.empty();
            });
            continue;
        }
        auto deadline =
            window_opened_ +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    cfg_.verify_batch_window_ms));
        if (!draining_ && Clock::now() < deadline) {
            window_cv_.wait_until(lock, deadline);
            continue;  // re-evaluate: batch may have been size-flushed
        }
        std::vector<PendingVerify> batch;
        batch.swap(window_);
        lock.unlock();
        flush_verify_batch(std::move(batch), /*timed_out=*/true);
        lock.lock();
    }
}

void
ProofService::flush_verify_batch(std::vector<PendingVerify> batch,
                                 bool timed_out)
{
    if (batch.empty()) return;
    auto flush_start = Clock::now();
    std::optional<verifier::BatchResult> result;
    std::string flush_error;
    try {
        verifier::BatchVerifier bv;
        for (auto &p : batch) bv.add(std::move(p.acc));
        result = bv.flush();
    } catch (const std::exception &e) {
        flush_error = e.what();
    } catch (...) {
        flush_error = "unknown exception while flushing verify batch";
    }
    if (!result.has_value()) {
        // Flush blew up (e.g. allocation failure): every parked job
        // still gets a response — the flush runs on worker and flusher
        // threads, where an escaped exception would kill the process.
        for (auto &p : batch) {
            JobResponse resp;
            resp.kind = JobKind::verify;
            resp.request_id = p.request_id;
            resp.metrics = p.metrics;
            resp.metrics.batch_size = uint32_t(batch.size());
            resp.metrics.total_ms = ms_since(p.enqueued);
            resp.status = JobStatus::internal_error;
            resp.error = flush_error;
            finish_response(p.promise, std::move(resp));
        }
        return;
    }
    double flush_ms = ms_since(flush_start);

    uint32_t max_vars = 0;
    size_t accepted = 0;
    for (const auto &p : batch) {
        max_vars = std::max(max_vars, p.metrics.num_vars);
    }
    for (size_t i = 0; i < batch.size(); ++i) {
        if (result->verdicts[i]) ++accepted;
    }

    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        auto &vb = metrics_.verify_batches;
        ++vb.batches;
        if (timed_out) ++vb.flushed_on_timeout;
        else ++vb.flushed_on_size;
        vb.proofs_accepted += accepted;
        vb.proofs_rejected += batch.size() - accepted;
        vb.pairing_checks += result->stats.pairing_checks;
        vb.bisection_steps += result->stats.bisection_steps;
        vb.msm_points += result->stats.msm_points;
        vb.total_flush_ms += flush_ms;
        if (cfg_.record_trace) {
            TraceEntry entry;
            entry.kind = JobKind::verify;
            entry.num_vars = max_vars;
            entry.batch_size = uint32_t(batch.size());
            entry.msm_points = result->stats.msm_points;
            entry.num_pairings = uint32_t(result->stats.num_pairings);
            entry.verify_ms = flush_ms;
            entry.pairing_ms = result->stats.pairing_ms;
            trace_.push_back(entry);
        }
    }

    for (size_t i = 0; i < batch.size(); ++i) {
        JobResponse resp;
        resp.kind = JobKind::verify;
        resp.request_id = batch[i].request_id;
        resp.metrics = batch[i].metrics;
        resp.metrics.verify_ms = flush_ms;
        resp.metrics.batch_size = uint32_t(batch.size());
        resp.metrics.total_ms = ms_since(batch[i].enqueued);
        // queue_ms stays the submit -> worker-pickup time measured in
        // handle() (carried through PendingVerify); batch-window idle
        // is total - queue - prove - verify, not queue pressure.
        if (result->verdicts[i]) {
            resp.status = JobStatus::ok;
        } else {
            resp.status = JobStatus::invalid_proof;
            resp.error = "batch pairing check rejected this proof "
                         "(isolated by bisection)";
        }
        finish_response(batch[i].promise, std::move(resp));
    }
}

void
ProofService::finish(QueuedJob &job, JobResponse resp)
{
    finish_response(job.promise, std::move(resp));
}

void
ProofService::finish_response(std::promise<JobResponse> &promise,
                              JobResponse resp)
{
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        metrics_.add(resp);
    }
    promise.set_value(std::move(resp));
}

ServiceMetrics
ProofService::metrics() const
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    return metrics_;
}

std::vector<TraceEntry>
ProofService::trace() const
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    return trace_;
}

}  // namespace zkspeed::runtime
