#include "runtime/service.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string_view>

#include "ff/parallel.hpp"
#include "hyperplonk/serialize.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace zkspeed::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
ms_since(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Distinguishes each instance's series in the process registry. */
std::atomic<uint32_t> g_next_instance{0};

/** ClassMetrics status bucket: 0 = ok, 1 = rejected, 2 = failed. */
int
status_bucket(JobStatus s)
{
    switch (s) {
        case JobStatus::ok: return 0;
        case JobStatus::malformed_request:
        case JobStatus::unsatisfiable:
        case JobStatus::too_large:
        case JobStatus::invalid_proof: return 1;
        case JobStatus::internal_error:
        case JobStatus::cancelled: return 2;
    }
    return 2;
}

/**
 * Shutdown artifact hooks: metrics, trace, log ring, attribution and
 * a final flight snapshot all flush through obs::flush_all (shared
 * with the examples' interrupt handlers — obs/export.hpp).
 */
void
dump_telemetry_env()
{
    obs::flush_all();
}

/** True when ZKSPEED_FAULT_INJECT names this stage (test/CI hook for
 * exercising the worker-exception flight-recorder path). */
bool
fault_injected(const char *stage)
{
    const char *v = std::getenv("ZKSPEED_FAULT_INJECT");
    return v != nullptr && std::string_view(v) == stage;
}

/** Worker catch-site hook: one structured log line + a flight-recorder
 * snapshot, so a crashing job class is diagnosable post-mortem even
 * when the process survives (workers are crash-isolated per job). */
void
note_worker_exception(const char *where, const std::string &what)
{
    obs::logf(obs::LogLevel::error, "service", 0,
              "worker exception in %s: %s", where, what.c_str());
    obs::flight::note_worker_exception(where, what.c_str());
}

}  // namespace

ProofService::ProofService(ServiceConfig cfg)
    : cfg_(cfg),
      instance_("svc" + std::to_string(g_next_instance.fetch_add(1))),
      queue_(std::max<size_t>(1, cfg.queue_capacity)),
      cache_(cfg.key_cache_capacity, cfg.srs_seed)
{
    cfg_.num_workers = std::max<size_t>(1, cfg_.num_workers);
    cfg_.verify_batch_size = std::max<size_t>(1, cfg_.verify_batch_size);
    size_t total = cfg_.total_parallelism != 0
                       ? cfg_.total_parallelism
                       : std::max<size_t>(
                             1, std::thread::hardware_concurrency());
    per_worker_budget_ = std::max<size_t>(1, total / cfg_.num_workers);
    register_telemetry();
    if (!cfg_.start_paused) start();
}

void
ProofService::register_telemetry()
{
    auto &reg = obs::MetricsRegistry::global();
    const std::pair<std::string, std::string> svc{"service", instance_};
    static const char *kClass[2] = {"prove", "verify"};
    static const char *kStatus[3] = {"ok", "rejected", "failed"};
    for (int c = 0; c < 2; ++c) {
        for (int s = 0; s < 3; ++s) {
            tele_.latency[c][s] = reg.histogram(
                "zkspeed_job_latency_ms",
                {svc, {"class", kClass[c]}, {"status", kStatus[s]}},
                "End-to-end job latency (submit -> response), every "
                "terminal job including rejected/failed ones");
        }
        tele_.queue_ms[c] = reg.histogram(
            "zkspeed_job_queue_ms", {svc, {"class", kClass[c]}},
            "Submit -> worker-pickup wait per job");
        tele_.active_ms[c] = reg.histogram(
            "zkspeed_job_active_ms", {svc, {"class", kClass[c]}},
            "Worker-active time per job (prove / algebraic verify)");
    }
    tele_.modmul_fr =
        reg.counter("zkspeed_modmuls_total", {svc, {"field", "fr"}},
                    "Modular multiplications across all jobs");
    tele_.modmul_fq =
        reg.counter("zkspeed_modmuls_total", {svc, {"field", "fq"}},
                    "Modular multiplications across all jobs");
    tele_.cache_hits =
        reg.counter("zkspeed_key_cache_hits_total", {svc},
                    "Jobs that found their proving key resident");
    tele_.proof_bytes =
        reg.counter("zkspeed_proof_bytes_total", {svc},
                    "Canonical proof bytes produced");
    tele_.flush_ms = reg.histogram(
        "zkspeed_verify_flush_ms", {svc},
        "Wall time of each folded batch-verify flush");
    tele_.batch_size = reg.histogram(
        "zkspeed_verify_batch_size", {svc},
        "Proofs folded per batch-verify flush");
    tele_.flush_reason[0] = reg.counter(
        "zkspeed_verify_flushes_total", {svc, {"reason", "size"}},
        "Batch flushes by trigger");
    tele_.flush_reason[1] = reg.counter(
        "zkspeed_verify_flushes_total", {svc, {"reason", "timeout"}},
        "Batch flushes by trigger (timeout includes shutdown drains)");
    tele_.verdicts[0] = reg.counter(
        "zkspeed_verify_verdicts_total", {svc, {"verdict", "accepted"}},
        "Per-proof batch-verify verdicts");
    tele_.verdicts[1] = reg.counter(
        "zkspeed_verify_verdicts_total", {svc, {"verdict", "rejected"}},
        "Per-proof batch-verify verdicts");
    tele_.pairing_checks = reg.counter(
        "zkspeed_verify_pairing_checks_total", {svc},
        "Pairing checks run, bisection probes included");
    tele_.bisection_steps = reg.counter(
        "zkspeed_verify_bisection_steps_total", {svc},
        "Bisection probes isolating rejected proofs");
    tele_.msm_points = reg.counter(
        "zkspeed_verify_msm_points_total", {svc},
        "Folded RLC MSM points across all flushes");
    tele_.queue_depth =
        reg.gauge("zkspeed_queue_depth", {svc},
                  "Jobs waiting in the admission queue");
    tele_.busy_workers = reg.gauge(
        "zkspeed_busy_workers", {svc}, "Workers currently running a job");
    tele_.utilization = reg.gauge(
        "zkspeed_worker_utilization", {svc},
        "busy_workers / num_workers, 0..1");
    tele_.window_depth = reg.gauge(
        "zkspeed_verify_window_depth", {svc},
        "VERIFY jobs parked in the open batch window");
}

std::vector<std::string>
ProofService::telemetry_series() const
{
    std::vector<std::string> out;
    auto snap = obs::MetricsRegistry::global().snapshot();
    std::vector<obs::MetricId> ids;
    for (int c = 0; c < 2; ++c) {
        for (int s = 0; s < 3; ++s) ids.push_back(tele_.latency[c][s]);
        ids.push_back(tele_.queue_ms[c]);
        ids.push_back(tele_.active_ms[c]);
        ids.push_back(tele_.flush_reason[c]);
        ids.push_back(tele_.verdicts[c]);
    }
    for (obs::MetricId id :
         {tele_.modmul_fr, tele_.modmul_fq, tele_.cache_hits,
          tele_.proof_bytes, tele_.flush_ms, tele_.batch_size,
          tele_.pairing_checks, tele_.bisection_steps, tele_.msm_points,
          tele_.queue_depth, tele_.busy_workers, tele_.utilization,
          tele_.window_depth}) {
        ids.push_back(id);
    }
    for (obs::MetricId id : ids) {
        const obs::MetricSnapshot *m = snap[id];
        if (m != nullptr) out.push_back(m->full_name());
    }
    return out;
}

void
ProofService::record_job_telemetry(const JobResponse &resp)
{
    if (!obs::enabled()) return;
    auto &reg = obs::MetricsRegistry::global();
    int cls = resp.kind == JobKind::verify ? 1 : 0;
    const JobMetrics &m = resp.metrics;
    reg.observe(tele_.latency[cls][status_bucket(resp.status)],
                m.total_ms);
    reg.observe(tele_.queue_ms[cls], m.queue_ms);
    reg.observe(tele_.active_ms[cls], m.prove_ms);
    if (m.modmul_fr != 0) reg.add(tele_.modmul_fr, m.modmul_fr);
    if (m.modmul_fq != 0) reg.add(tele_.modmul_fq, m.modmul_fq);
    if (m.key_cache_hit) reg.add(tele_.cache_hits);
    if (m.proof_bytes != 0) reg.add(tele_.proof_bytes, m.proof_bytes);
}

void
ProofService::set_worker_gauges(size_t busy)
{
    auto &reg = obs::MetricsRegistry::global();
    reg.set(tele_.busy_workers, double(busy));
    reg.set(tele_.utilization, double(busy) / double(cfg_.num_workers));
}

void
ProofService::set_queue_depth_gauge()
{
    obs::MetricsRegistry::global().set(tele_.queue_depth,
                                       double(queue_.size()));
}

ProofService::~ProofService() { shutdown(); }

void
ProofService::start()
{
    if (started_) return;
    started_ = true;
    workers_.reserve(cfg_.num_workers);
    for (size_t i = 0; i < cfg_.num_workers; ++i) {
        workers_.emplace_back(
            [this, i] { worker_loop(uint32_t(i)); });
    }
    flusher_ = std::thread([this] { flusher_loop(); });
}

std::future<JobResponse>
ProofService::submit(std::vector<uint8_t> request_bytes)
{
    // Classify before the push: push takes the job by value, so the
    // request bytes are gone (moved) whether or not it succeeds.
    JobKind kind =
        wire::classify_request(request_bytes).value_or(JobKind::prove);
    QueuedJob job;
    job.request = std::move(request_bytes);
    job.enqueued = Clock::now();
    auto future = job.promise.get_future();
    if (!queue_.push(std::move(job))) {
        // Shutting down (push only fails after close()): answer
        // directly instead of losing the promise.
        std::promise<JobResponse> p;
        future = p.get_future();
        JobResponse resp;
        resp.kind = kind;
        resp.status = JobStatus::cancelled;
        resp.error = "service is shutting down";
        // Same accounting as every other cancellation path.
        record_job_telemetry(resp);
        p.set_value(std::move(resp));
        return future;
    }
    set_queue_depth_gauge();
    return future;
}

std::optional<std::future<JobResponse>>
ProofService::try_submit(std::vector<uint8_t> request_bytes)
{
    QueuedJob job;
    job.request = std::move(request_bytes);
    job.enqueued = Clock::now();
    auto future = job.promise.get_future();
    if (!queue_.try_push(job)) return std::nullopt;
    set_queue_depth_gauge();
    return future;
}

std::future<JobResponse>
ProofService::submit(const JobRequest &request)
{
    return submit(wire::encode_request(request));
}

std::future<JobResponse>
ProofService::submit(const VerifyRequest &request)
{
    return submit(wire::encode_verify_request(request));
}

void
ProofService::shutdown()
{
    if (stopped_) return;
    stopped_ = true;
    queue_.close();
    if (!started_) {
        // Paused service: nobody will drain the queue; cancel directly.
        while (auto job = queue_.try_pop()) {
            JobResponse resp;
            resp.kind = wire::classify_request(job->request)
                            .value_or(JobKind::prove);
            resp.status = JobStatus::cancelled;
            resp.error = "service shut down before the job ran";
            finish(*job, std::move(resp));
        }
        dump_telemetry_env();
        return;
    }
    for (auto &t : workers_) {
        if (t.joinable()) t.join();
    }
    // Workers are gone, so no new verify jobs can be parked; tell the
    // flusher to drain whatever is left in the window and exit.
    {
        std::lock_guard<std::mutex> lock(window_mu_);
        draining_ = true;
    }
    window_cv_.notify_all();
    if (flusher_.joinable()) flusher_.join();
    dump_telemetry_env();
}

void
ProofService::worker_loop(uint32_t worker_id)
{
    // The worker's kernels fan out to this thread's budget only; with
    // W workers on C cores that is ~C/W threads each, so concurrent
    // proofs never oversubscribe the machine (two-level parallelism).
    ff::WorkerBudgetScope budget(per_worker_budget_);
    while (auto job = queue_.pop()) {
        set_queue_depth_gauge();
        set_worker_gauges(busy_workers_.fetch_add(1) + 1);
        handle(std::move(*job), worker_id);
        set_worker_gauges(busy_workers_.fetch_sub(1) - 1);
    }
}

void
ProofService::handle(QueuedJob &&job, uint32_t worker_id)
{
    auto kind = wire::classify_request(job.request);
    if (kind == JobKind::verify) {
        // True queue time: submit -> this worker picking the job up.
        // Rejected verify jobs short-circuit below and would otherwise
        // report queue_ms = 0, hiding queue pressure from the metrics.
        double queue_ms = ms_since(job.enqueued);
        JobResponse resp;
        resp.kind = JobKind::verify;
        resp.metrics.queue_ms = queue_ms;
        std::optional<PendingVerify> parked;
        try {
            parked = process_verify(job, resp);
        } catch (const std::exception &e) {
            parked.reset();
            resp.status = JobStatus::internal_error;
            resp.error = e.what();
            note_worker_exception("verify", resp.error);
        } catch (...) {
            parked.reset();
            resp.status = JobStatus::internal_error;
            resp.error = "unknown exception while verifying";
            note_worker_exception("verify", resp.error);
        }
        if (parked.has_value()) {
            parked->metrics.worker_id = worker_id;
            park_verify(std::move(*parked));
            return;
        }
        resp.metrics.worker_id = worker_id;
        resp.metrics.total_ms = ms_since(job.enqueued);
        finish(job, std::move(resp));
        return;
    }
    // PROVE, or an unknown magic (which fails strict decoding below and
    // is answered malformed_request — bad job kinds never kill workers).
    JobResponse resp;
    try {
        resp = process_prove(job);
    } catch (const std::exception &e) {
        resp = JobResponse{};
        resp.status = JobStatus::internal_error;
        resp.error = e.what();
        note_worker_exception("prove", resp.error);
    } catch (...) {
        resp = JobResponse{};
        resp.status = JobStatus::internal_error;
        resp.error = "unknown exception while proving";
        note_worker_exception("prove", resp.error);
    }
    resp.kind = JobKind::prove;
    resp.metrics.worker_id = worker_id;
    resp.metrics.queue_ms = resp.metrics.total_ms - resp.metrics.prove_ms;
    finish(job, std::move(resp));
}

JobResponse
ProofService::process_prove(QueuedJob &job)
{
    JobResponse resp;
    ff::ModmulScope muls;
    auto picked_up = Clock::now();

    auto decoded = wire::decode_request(job.request);
    if (!decoded.has_value()) {
        resp.status = JobStatus::malformed_request;
        resp.error = "request failed strict decoding";
        resp.metrics.total_ms = ms_since(job.enqueued);
        return resp;
    }
    JobRequest &req = *decoded;
    resp.request_id = req.request_id;
    resp.metrics.num_vars = uint32_t(req.circuit.num_vars);

    obs::Span job_span("prove.job", "service", req.request_id);
    obs::Span::record_complete("job.queue_wait", "service", job.enqueued,
                               picked_up, req.request_id, job_span.id());

    if (req.circuit.num_vars > cfg_.max_circuit_vars) {
        resp.status = JobStatus::too_large;
        resp.error = "circuit exceeds this instance's size cap";
        resp.metrics.total_ms = ms_since(job.enqueued);
        return resp;
    }

    if (cfg_.check_witness) {
        obs::Span check_span("prove.witness_check", "service",
                             req.request_id);
        if (!req.witness.satisfies_gates(req.circuit) ||
            !req.witness.satisfies_wiring(req.circuit) ||
            !req.witness.satisfies_lookups(req.circuit)) {
            resp.status = JobStatus::unsatisfiable;
            resp.error = "witness does not satisfy the circuit";
            resp.metrics.total_ms = ms_since(job.enqueued);
            return resp;
        }
    }

    auto prove_start = Clock::now();
    bool cache_hit = false;
    try {
        if (fault_injected("prove")) {
            throw std::runtime_error(
                "fault injection: ZKSPEED_FAULT_INJECT=prove");
        }
        auto kc_start = Clock::now();
        auto [keys, hit] = cache_.get_or_create(req.circuit);
        obs::Span::record_complete("prove.key_cache", "service", kc_start,
                                   Clock::now(), req.request_id);
        cache_hit = hit;
        hyperplonk::Proof proof;
        {
            // Prover-phase spans (ProfileRegion, category "prover")
            // nest under this one via the thread-local span stack.
            obs::Span prove_span("prove.prove", "service", req.request_id);
            proof = hyperplonk::prove(*keys.pk, req.witness);
        }
        obs::Span encode_span("prove.encode", "service", req.request_id);
        resp.proof = hyperplonk::serde::serialize_proof(proof);
    } catch (const std::exception &e) {
        // Catch here rather than in handle() so the response keeps
        // the decoded request_id for correlation.
        resp.status = JobStatus::internal_error;
        resp.error = e.what();
        resp.metrics.total_ms = ms_since(job.enqueued);
        note_worker_exception("prove", resp.error);
        return resp;
    }

    resp.status = JobStatus::ok;
    resp.metrics.prove_ms = ms_since(prove_start);
    resp.metrics.total_ms = ms_since(job.enqueued);
    resp.metrics.key_cache_hit = cache_hit;
    resp.metrics.proof_bytes = resp.proof.size();
    resp.metrics.modmul_fr = muls.fr_delta();
    resp.metrics.modmul_fq = muls.fq_delta();

    if (cfg_.record_trace) {
        TraceEntry entry;
        entry.kind = JobKind::prove;
        entry.request_id = req.request_id;
        entry.num_vars = uint32_t(req.circuit.num_vars);
        entry.prove_ms = resp.metrics.prove_ms;
        entry.key_cache_hit = cache_hit;
        for (const auto &w : req.witness.w) {
            for (size_t i = 0; i < w.size(); ++i) {
                if (w[i].is_zero()) ++entry.zero_scalars;
                else if (w[i].is_one()) ++entry.one_scalars;
                ++entry.total_scalars;
            }
        }
        entry.table_rows = req.circuit.table_rows;
        entry.per_table_rows = req.circuit.table_row_counts;
        entry.lookup_gates = req.circuit.num_lookup_gates();
        std::lock_guard<std::mutex> lock(stats_mu_);
        trace_.push_back(entry);
    }
    return resp;
}

std::optional<ProofService::PendingVerify>
ProofService::process_verify(QueuedJob &job, JobResponse &resp)
{
    ff::ModmulScope muls;
    auto picked_up = Clock::now();

    auto decoded = wire::decode_verify_request(job.request);
    if (!decoded.has_value()) {
        resp.status = JobStatus::malformed_request;
        resp.error = "verify request failed strict decoding";
        return std::nullopt;
    }
    VerifyRequest &req = *decoded;
    resp.request_id = req.request_id;

    obs::Span job_span("verify.job", "service", req.request_id);
    obs::Span::record_complete("job.queue_wait", "service", job.enqueued,
                               picked_up, req.request_id, job_span.id());

    auto vk = hyperplonk::serde::deserialize_verifying_key(req.vk);
    if (!vk.has_value()) {
        resp.status = JobStatus::malformed_request;
        resp.error = "verifying key failed strict decoding";
        return std::nullopt;
    }
    resp.metrics.num_vars = uint32_t(vk->num_vars);
    if (vk->num_vars > cfg_.max_circuit_vars) {
        resp.status = JobStatus::too_large;
        resp.error = "verifying key exceeds this instance's size cap";
        return std::nullopt;
    }

    auto proof = hyperplonk::serde::deserialize_proof(req.proof);
    if (!proof.has_value()) {
        resp.status = JobStatus::malformed_request;
        resp.error = "proof failed strict decoding";
        return std::nullopt;
    }

    // Algebraic stage (transcript, sumchecks, claimed evaluations) runs
    // inline on this worker; only the pairing check is deferred.
    auto alg_start = Clock::now();
    verifier::PairingAccumulator acc;
    bool algebraic_ok;
    {
        obs::Span alg_span("verify.algebraic", "service", req.request_id);
        algebraic_ok = hyperplonk::verify_deferred(*vk, req.public_inputs,
                                                   *proof, acc);
    }
    double alg_ms = ms_since(alg_start);
    if (!algebraic_ok) {
        resp.status = JobStatus::invalid_proof;
        resp.error = "algebraic verification checks failed";
        resp.metrics.prove_ms = alg_ms;
        resp.metrics.modmul_fr = muls.fr_delta();
        resp.metrics.modmul_fq = muls.fq_delta();
        return std::nullopt;
    }

    PendingVerify pending;
    pending.request_id = req.request_id;
    pending.promise = std::move(job.promise);
    pending.acc = std::move(acc);
    pending.enqueued = job.enqueued;
    pending.metrics.num_vars = uint32_t(vk->num_vars);
    // Queue time was measured at worker pickup (handle()); keep that
    // one definition whether the job is answered now or after a flush.
    pending.metrics.queue_ms = resp.metrics.queue_ms;
    pending.metrics.prove_ms = alg_ms;
    pending.metrics.modmul_fr = muls.fr_delta();
    pending.metrics.modmul_fq = muls.fq_delta();
    return pending;
}

void
ProofService::park_verify(PendingVerify pending)
{
    pending.parked = Clock::now();
    std::vector<PendingVerify> batch;
    size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(window_mu_);
        if (window_.empty()) window_opened_ = Clock::now();
        window_.push_back(std::move(pending));
        if (window_.size() >= cfg_.verify_batch_size) {
            batch.swap(window_);
        }
        depth = window_.size();
    }
    obs::MetricsRegistry::global().set(tele_.window_depth, double(depth));
    if (!batch.empty()) {
        flush_verify_batch(std::move(batch), /*timed_out=*/false);
    } else {
        // Wake the flusher so it arms the window deadline.
        window_cv_.notify_one();
    }
}

void
ProofService::flusher_loop()
{
    std::unique_lock<std::mutex> lock(window_mu_);
    for (;;) {
        if (window_.empty()) {
            if (draining_) return;
            window_cv_.wait(lock, [this] {
                return draining_ || !window_.empty();
            });
            continue;
        }
        auto deadline =
            window_opened_ +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    cfg_.verify_batch_window_ms));
        if (!draining_ && Clock::now() < deadline) {
            window_cv_.wait_until(lock, deadline);
            continue;  // re-evaluate: batch may have been size-flushed
        }
        std::vector<PendingVerify> batch;
        batch.swap(window_);
        lock.unlock();
        flush_verify_batch(std::move(batch), /*timed_out=*/true);
        lock.lock();
    }
}

void
ProofService::flush_verify_batch(std::vector<PendingVerify> batch,
                                 bool timed_out)
{
    if (batch.empty()) return;
    obs::MetricsRegistry::global().set(tele_.window_depth, 0.0);
    auto flush_start = Clock::now();
    // Residency spans: parked -> flush start, one per folded job, so
    // Perfetto shows what each proof spent waiting in the window.
    for (const auto &p : batch) {
        obs::Span::record_complete("verify.window_wait", "service",
                                   p.parked, flush_start, p.request_id);
    }
    std::optional<verifier::BatchResult> result;
    std::string flush_error;
    try {
        obs::Span flush_span("verify.flush", "service");
        verifier::BatchVerifier bv;
        for (auto &p : batch) bv.add(std::move(p.acc));
        result = bv.flush();
    } catch (const std::exception &e) {
        flush_error = e.what();
    } catch (...) {
        flush_error = "unknown exception while flushing verify batch";
    }
    if (!flush_error.empty()) {
        note_worker_exception("verify_flush", flush_error);
    }
    if (!result.has_value()) {
        // Flush blew up (e.g. allocation failure): every parked job
        // still gets a response — the flush runs on worker and flusher
        // threads, where an escaped exception would kill the process.
        for (auto &p : batch) {
            JobResponse resp;
            resp.kind = JobKind::verify;
            resp.request_id = p.request_id;
            resp.metrics = p.metrics;
            resp.metrics.batch_size = uint32_t(batch.size());
            resp.metrics.total_ms = ms_since(p.enqueued);
            resp.status = JobStatus::internal_error;
            resp.error = flush_error;
            finish_response(p.promise, std::move(resp));
        }
        return;
    }
    double flush_ms = ms_since(flush_start);

    uint32_t max_vars = 0;
    size_t accepted = 0;
    for (const auto &p : batch) {
        max_vars = std::max(max_vars, p.metrics.num_vars);
    }
    for (size_t i = 0; i < batch.size(); ++i) {
        if (result->verdicts[i]) ++accepted;
    }

    if (obs::enabled()) {
        auto &reg = obs::MetricsRegistry::global();
        reg.observe(tele_.flush_ms, flush_ms);
        reg.observe(tele_.batch_size, double(batch.size()));
        reg.add(tele_.flush_reason[timed_out ? 1 : 0]);
        if (accepted != 0) reg.add(tele_.verdicts[0], accepted);
        if (accepted != batch.size()) {
            reg.add(tele_.verdicts[1], batch.size() - accepted);
        }
        reg.add(tele_.pairing_checks, result->stats.pairing_checks);
        reg.add(tele_.bisection_steps, result->stats.bisection_steps);
        reg.add(tele_.msm_points, result->stats.msm_points);
    }
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        if (cfg_.record_trace) {
            TraceEntry entry;
            entry.kind = JobKind::verify;
            entry.num_vars = max_vars;
            entry.batch_size = uint32_t(batch.size());
            entry.msm_points = result->stats.msm_points;
            entry.num_pairings = uint32_t(result->stats.num_pairings);
            entry.verify_ms = flush_ms;
            entry.pairing_ms = result->stats.pairing_ms;
            trace_.push_back(entry);
        }
    }

    for (size_t i = 0; i < batch.size(); ++i) {
        JobResponse resp;
        resp.kind = JobKind::verify;
        resp.request_id = batch[i].request_id;
        resp.metrics = batch[i].metrics;
        resp.metrics.verify_ms = flush_ms;
        resp.metrics.batch_size = uint32_t(batch.size());
        resp.metrics.total_ms = ms_since(batch[i].enqueued);
        // queue_ms stays the submit -> worker-pickup time measured in
        // handle() (carried through PendingVerify); batch-window idle
        // is total - queue - prove - verify, not queue pressure.
        if (result->verdicts[i]) {
            resp.status = JobStatus::ok;
        } else {
            resp.status = JobStatus::invalid_proof;
            resp.error = "batch pairing check rejected this proof "
                         "(isolated by bisection)";
        }
        finish_response(batch[i].promise, std::move(resp));
    }
}

void
ProofService::finish(QueuedJob &job, JobResponse resp)
{
    finish_response(job.promise, std::move(resp));
}

void
ProofService::finish_response(std::promise<JobResponse> &promise,
                              JobResponse resp)
{
    // Readiness window first and unconditionally: /readyz must keep
    // answering truthfully with the telemetry kill switch off.
    uint64_t slot = terminal_jobs_.fetch_add(1, std::memory_order_relaxed);
    recent_failed_[slot % kReadinessWindow].store(
        status_bucket(resp.status) == 2 ? 1 : 0,
        std::memory_order_relaxed);
    record_job_telemetry(resp);
    promise.set_value(std::move(resp));
}

ServiceReadiness
ProofService::readiness() const
{
    ServiceReadiness r;
    r.workers_up = started_.load(std::memory_order_acquire) &&
                   !stopped_.load(std::memory_order_acquire);
    r.queue_depth = queue_.size();
    r.queue_capacity = std::max<size_t>(1, cfg_.queue_capacity);
    uint64_t seen = terminal_jobs_.load(std::memory_order_relaxed);
    size_t n = size_t(std::min<uint64_t>(seen, kReadinessWindow));
    size_t failed = 0;
    for (size_t i = 0; i < n; ++i) {
        failed += recent_failed_[i].load(std::memory_order_relaxed);
    }
    r.recent_error_ratio = n != 0 ? double(failed) / double(n) : 0.0;
    bool saturated = r.queue_depth >= r.queue_capacity;
    bool erroring = r.recent_error_ratio >= kReadinessErrorThreshold;
    r.ready = r.workers_up && !saturated && !erroring;
    if (!r.workers_up) {
        r.detail = "workers not running";
    } else if (saturated) {
        r.detail = "queue saturated (" + std::to_string(r.queue_depth) +
                   "/" + std::to_string(r.queue_capacity) + ")";
    } else if (erroring) {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "recent error ratio %.2f over last %zu jobs",
                      r.recent_error_ratio, n);
        r.detail = buf;
    }
    return r;
}

ServiceMetrics
ProofService::metrics() const
{
    // Reconstruct the legacy struct from this instance's registry
    // series (runtime/metrics.hpp documents the derived-view contract).
    ServiceMetrics out;
    auto snap = obs::MetricsRegistry::global().snapshot();
    auto hist = [&](obs::MetricId id) -> const obs::HistogramSnapshot * {
        const obs::MetricSnapshot *m = snap[id];
        return m != nullptr ? &m->hist : nullptr;
    };
    auto count = [&](obs::MetricId id) -> uint64_t {
        const obs::MetricSnapshot *m = snap[id];
        return m != nullptr ? m->counter : 0;
    };
    ClassMetrics *cls[2] = {&out.prove_class, &out.verify_class};
    for (int c = 0; c < 2; ++c) {
        if (const auto *h = hist(tele_.latency[c][0])) {
            cls[c]->jobs_ok = h->count;
            cls[c]->min_latency_ms = h->count != 0 ? h->min : 0.0;
            cls[c]->max_latency_ms = h->count != 0 ? h->max : 0.0;
            cls[c]->sum_latency_ms = h->sum;
        }
        if (const auto *h = hist(tele_.latency[c][1])) {
            cls[c]->jobs_rejected = h->count;
        }
        if (const auto *h = hist(tele_.latency[c][2])) {
            cls[c]->jobs_failed = h->count;
        }
        if (const auto *h = hist(tele_.queue_ms[c])) {
            out.total_queue_ms += h->sum;
        }
        if (const auto *h = hist(tele_.active_ms[c])) {
            out.total_prove_ms += h->sum;
        }
    }
    out.modmul_fr = count(tele_.modmul_fr);
    out.modmul_fq = count(tele_.modmul_fq);
    out.key_cache_hits = count(tele_.cache_hits);
    out.proof_bytes_total = count(tele_.proof_bytes);

    auto &vb = out.verify_batches;
    if (const auto *h = hist(tele_.flush_ms)) {
        vb.batches = h->count;
        vb.total_flush_ms = h->sum;
    }
    vb.flushed_on_size = count(tele_.flush_reason[0]);
    vb.flushed_on_timeout = count(tele_.flush_reason[1]);
    vb.proofs_accepted = count(tele_.verdicts[0]);
    vb.proofs_rejected = count(tele_.verdicts[1]);
    vb.pairing_checks = count(tele_.pairing_checks);
    vb.bisection_steps = count(tele_.bisection_steps);
    vb.msm_points = count(tele_.msm_points);
    return out;
}

std::vector<TraceEntry>
ProofService::trace() const
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    return trace_;
}

}  // namespace zkspeed::runtime
