#include "runtime/service.hpp"

#include <exception>

#include "ff/parallel.hpp"
#include "hyperplonk/serialize.hpp"

namespace zkspeed::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
ms_since(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

}  // namespace

ProofService::ProofService(ServiceConfig cfg)
    : cfg_(cfg),
      queue_(std::max<size_t>(1, cfg.queue_capacity)),
      cache_(cfg.key_cache_capacity, cfg.srs_seed)
{
    cfg_.num_workers = std::max<size_t>(1, cfg_.num_workers);
    size_t total = cfg_.total_parallelism != 0
                       ? cfg_.total_parallelism
                       : std::max<size_t>(
                             1, std::thread::hardware_concurrency());
    per_worker_budget_ = std::max<size_t>(1, total / cfg_.num_workers);
    if (!cfg_.start_paused) start();
}

ProofService::~ProofService() { shutdown(); }

void
ProofService::start()
{
    if (started_) return;
    started_ = true;
    workers_.reserve(cfg_.num_workers);
    for (size_t i = 0; i < cfg_.num_workers; ++i) {
        workers_.emplace_back(
            [this, i] { worker_loop(uint32_t(i)); });
    }
}

std::future<JobResponse>
ProofService::submit(std::vector<uint8_t> request_bytes)
{
    QueuedJob job;
    job.request = std::move(request_bytes);
    job.enqueued = Clock::now();
    auto future = job.promise.get_future();
    if (!queue_.push(std::move(job))) {
        // Shutting down: answer directly instead of losing the promise.
        // (push only fails after close(), which moved nothing.)
        std::promise<JobResponse> p;
        future = p.get_future();
        JobResponse resp;
        resp.status = JobStatus::cancelled;
        resp.error = "service is shutting down";
        {
            // Same accounting as every other cancellation path.
            std::lock_guard<std::mutex> lock(stats_mu_);
            metrics_.add(resp);
        }
        p.set_value(std::move(resp));
    }
    return future;
}

std::optional<std::future<JobResponse>>
ProofService::try_submit(std::vector<uint8_t> request_bytes)
{
    QueuedJob job;
    job.request = std::move(request_bytes);
    job.enqueued = Clock::now();
    auto future = job.promise.get_future();
    if (!queue_.try_push(job)) return std::nullopt;
    return future;
}

std::future<JobResponse>
ProofService::submit(const JobRequest &request)
{
    return submit(wire::encode_request(request));
}

void
ProofService::shutdown()
{
    if (stopped_) return;
    stopped_ = true;
    queue_.close();
    if (!started_) {
        // Paused service: nobody will drain the queue; cancel directly.
        while (auto job = queue_.try_pop()) {
            JobResponse resp;
            resp.status = JobStatus::cancelled;
            resp.error = "service shut down before the job ran";
            finish(*job, std::move(resp));
        }
        return;
    }
    for (auto &t : workers_) {
        if (t.joinable()) t.join();
    }
}

void
ProofService::worker_loop(uint32_t worker_id)
{
    // The worker's kernels fan out to this thread's budget only; with
    // W workers on C cores that is ~C/W threads each, so concurrent
    // proofs never oversubscribe the machine (two-level parallelism).
    ff::WorkerBudgetScope budget(per_worker_budget_);
    while (auto job = queue_.pop()) {
        JobResponse resp;
        try {
            resp = process(*job);
        } catch (const std::exception &e) {
            resp = JobResponse{};
            resp.status = JobStatus::internal_error;
            resp.error = e.what();
        } catch (...) {
            resp = JobResponse{};
            resp.status = JobStatus::internal_error;
            resp.error = "unknown exception while proving";
        }
        resp.metrics.worker_id = worker_id;
        resp.metrics.queue_ms = resp.metrics.total_ms - resp.metrics.prove_ms;
        finish(*job, std::move(resp));
    }
}

JobResponse
ProofService::process(QueuedJob &job)
{
    JobResponse resp;
    ff::ModmulScope muls;

    auto decoded = wire::decode_request(job.request);
    if (!decoded.has_value()) {
        resp.status = JobStatus::malformed_request;
        resp.error = "request failed strict decoding";
        resp.metrics.total_ms = ms_since(job.enqueued);
        return resp;
    }
    JobRequest &req = *decoded;
    resp.request_id = req.request_id;
    resp.metrics.num_vars = uint32_t(req.circuit.num_vars);

    if (req.circuit.num_vars > cfg_.max_circuit_vars) {
        resp.status = JobStatus::too_large;
        resp.error = "circuit exceeds this instance's size cap";
        resp.metrics.total_ms = ms_since(job.enqueued);
        return resp;
    }

    if (cfg_.check_witness &&
        (!req.witness.satisfies_gates(req.circuit) ||
         !req.witness.satisfies_wiring(req.circuit))) {
        resp.status = JobStatus::unsatisfiable;
        resp.error = "witness does not satisfy the circuit";
        resp.metrics.total_ms = ms_since(job.enqueued);
        return resp;
    }

    auto prove_start = Clock::now();
    bool cache_hit = false;
    try {
        auto [keys, hit] = cache_.get_or_create(req.circuit);
        cache_hit = hit;
        hyperplonk::Proof proof = hyperplonk::prove(*keys.pk, req.witness);
        resp.proof = hyperplonk::serde::serialize_proof(proof);
    } catch (const std::exception &e) {
        // Catch here rather than in worker_loop so the response keeps
        // the decoded request_id for correlation.
        resp.status = JobStatus::internal_error;
        resp.error = e.what();
        resp.metrics.total_ms = ms_since(job.enqueued);
        return resp;
    }

    resp.status = JobStatus::ok;
    resp.metrics.prove_ms = ms_since(prove_start);
    resp.metrics.total_ms = ms_since(job.enqueued);
    resp.metrics.key_cache_hit = cache_hit;
    resp.metrics.proof_bytes = resp.proof.size();
    resp.metrics.modmul_fr = muls.fr_delta();
    resp.metrics.modmul_fq = muls.fq_delta();

    if (cfg_.record_trace) {
        TraceEntry entry;
        entry.num_vars = uint32_t(req.circuit.num_vars);
        entry.prove_ms = resp.metrics.prove_ms;
        entry.key_cache_hit = cache_hit;
        for (const auto &w : req.witness.w) {
            for (size_t i = 0; i < w.size(); ++i) {
                if (w[i].is_zero()) ++entry.zero_scalars;
                else if (w[i].is_one()) ++entry.one_scalars;
                ++entry.total_scalars;
            }
        }
        std::lock_guard<std::mutex> lock(stats_mu_);
        trace_.push_back(entry);
    }
    return resp;
}

void
ProofService::finish(QueuedJob &job, JobResponse resp)
{
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        metrics_.add(resp);
    }
    job.promise.set_value(std::move(resp));
}

ServiceMetrics
ProofService::metrics() const
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    return metrics_;
}

std::vector<TraceEntry>
ProofService::trace() const
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    return trace_;
}

}  // namespace zkspeed::runtime
