#include "runtime/key_cache.hpp"

#include <algorithm>
#include <random>

namespace zkspeed::runtime {

using hyperplonk::CircuitIndex;

hash::Digest
circuit_fingerprint(const CircuitIndex &circuit)
{
    hash::Sponge256 sponge;
    auto absorb_u64 = [&](uint64_t v) {
        uint8_t b[8];
        for (int i = 0; i < 8; ++i) b[i] = uint8_t(v >> (8 * i));
        sponge.absorb(std::span<const uint8_t>(b, 8));
    };
    auto absorb_table = [&](const mle::Mle &t) {
        std::vector<uint8_t> buf(t.size() * ff::Fr::kByteSize);
        for (size_t i = 0; i < t.size(); ++i) {
            t[i].to_bytes(buf.data() + i * ff::Fr::kByteSize);
        }
        sponge.absorb(buf);
    };
    sponge.absorb("zkspeed.circuit.v3");
    absorb_u64(circuit.num_vars);
    absorb_u64(circuit.num_public);
    absorb_u64(circuit.custom_gates ? 1 : 0);
    absorb_u64(circuit.has_lookup ? 1 : 0);
    for (const mle::Mle *t : {&circuit.q_l, &circuit.q_r, &circuit.q_m,
                              &circuit.q_o, &circuit.q_c, &circuit.q_h}) {
        absorb_table(*t);
    }
    for (const auto &s : circuit.sigma) absorb_table(s);
    if (circuit.has_lookup) {
        absorb_u64(circuit.table_row_counts.size());
        for (uint64_t rows : circuit.table_row_counts) absorb_u64(rows);
        // The bank tag column is bit-for-bit determined by the counts
        // (lookup::build_tag_column), so absorbing it would add 2^mu
        // elements of derivable data with no distinguishing power.
        absorb_table(circuit.q_lookup);
        for (const auto &t : circuit.table) absorb_table(t);
    }
    return sponge.finalize();
}

KeyCache::KeyCache(size_t capacity, uint64_t srs_seed)
    : capacity_(std::max<size_t>(1, capacity)), srs_seed_(srs_seed)
{}

std::shared_ptr<const pcs::Srs>
KeyCache::srs_for(size_t num_vars)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = srs_by_vars_.find(num_vars);
    if (it != srs_by_vars_.end()) return it->second;
    // Deterministic per-size ceremony: same seed -> same SRS -> the
    // same circuit proves to identical bytes on every instance.
    std::mt19937_64 rng(srs_seed_ ^ (0x9e3779b97f4a7c15ULL * num_vars));
    auto srs = std::make_shared<pcs::Srs>(
        pcs::Srs::generate(num_vars, rng, /*keep_trapdoor=*/true));
    srs_by_vars_.emplace(num_vars, srs);
    return srs;
}

std::pair<KeyCache::Keys, bool>
KeyCache::get_or_create(const CircuitIndex &circuit)
{
    hash::Digest key = circuit_fingerprint(circuit);
    std::shared_ptr<Entry> entry;
    bool hit = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            entry = it->second;
            // An in-flight build still counts a miss.
            hit = entry->built.load(std::memory_order_acquire);
            touch_locked(key);
        } else {
            entry = std::make_shared<Entry>();
            entries_.emplace(key, entry);
            lru_.push_front(key);
        }
        if (hit) ++stats_.hits;
        else ++stats_.misses;
    }

    {
        // Per-entry lock: other circuits keygen in parallel, concurrent
        // misses on this circuit serialise here and build exactly once.
        std::lock_guard<std::mutex> build(entry->build_mu);
        if (!entry->built.load(std::memory_order_acquire)) {
            auto srs = srs_for(circuit.num_vars);
            auto [pk, vk] = hyperplonk::keygen(circuit, std::move(srs));
            entry->keys.pk = std::make_shared<const hyperplonk::ProvingKey>(
                std::move(pk));
            entry->keys.vk =
                std::make_shared<const hyperplonk::VerifyingKey>(
                    std::move(vk));
            entry->built.store(true, std::memory_order_release);
        }
    }

    std::lock_guard<std::mutex> lock(mu_);
    evict_locked();
    return {entry->keys, hit};
}

void
KeyCache::touch_locked(const hash::Digest &key)
{
    auto it = std::find(lru_.begin(), lru_.end(), key);
    if (it != lru_.end()) lru_.erase(it);
    lru_.push_front(key);
}

void
KeyCache::evict_locked()
{
    while (entries_.size() > capacity_ && !lru_.empty()) {
        // Evict the least-recently-used *built* entry; skip in-flight
        // builds (their workers hold the Entry alive regardless, but
        // dropping them would forget the dedup point).
        auto victim = lru_.end();
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
            auto found = entries_.find(*it);
            if (found != entries_.end() &&
                found->second->built.load(std::memory_order_acquire)) {
                victim = std::next(it).base();
                break;
            }
        }
        if (victim == lru_.end()) break;
        entries_.erase(*victim);
        lru_.erase(victim);
        ++stats_.evictions;
    }
}

KeyCacheStats
KeyCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

size_t
KeyCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

}  // namespace zkspeed::runtime
