/**
 * @file
 * Wire protocol for the batch proving service.
 *
 * Requests and responses reuse the strict serde byte codecs of
 * hyperplonk/serde_bytes.hpp: fixed-width little-endian integers,
 * canonical field elements (rejected when >= the modulus) and full
 * consumption checks, so a malformed frame decodes to nullopt instead
 * of a half-initialised job. See DESIGN.md "Runtime wire format" for
 * the byte layout.
 *
 * Frames are self-delimiting given their length; streams carry them
 * length-prefixed (u64 little-endian) — see read_frame/write_frame.
 */
#pragma once

#include <cstdio>
#include <optional>
#include <span>
#include <vector>

#include "runtime/job.hpp"

namespace zkspeed::runtime::wire {

/** Largest circuit a request may carry (2^20 gates ~ 400 MB decoded). */
constexpr uint64_t kMaxRequestVars = 20;
/** Cap on fused lookup tables per circuit (tag column values 1..N);
 * matches CircuitBuilder's registration cap so every buildable circuit
 * is encodable. */
constexpr uint64_t kMaxRequestTables = lookup::kMaxTablesPerCircuit;
/** Cap on response error-string length. */
constexpr uint64_t kMaxErrorBytes = 1024;
/** Cap on embedded proof blobs (generous: proofs are ~5 KB). */
constexpr uint64_t kMaxProofBytes = 1 << 20;
/** Cap on embedded verifying-key blobs (scales with num_vars only). */
constexpr uint64_t kMaxVkBytes = 1 << 16;

/**
 * Classify a frame by its leading magic without decoding the payload.
 * @return nullopt when the magic matches no known job class.
 */
std::optional<JobKind> classify_request(std::span<const uint8_t> bytes);

/** Encode a proving request. */
std::vector<uint8_t> encode_request(const JobRequest &req);

/** Decode and validate a request. @return nullopt on any malformation. */
std::optional<JobRequest> decode_request(std::span<const uint8_t> bytes);

/** Encode a verification request. */
std::vector<uint8_t> encode_verify_request(const VerifyRequest &req);

/**
 * Decode and validate a verification request's framing (blob bounds,
 * canonical public inputs, full consumption). The embedded vk/proof
 * blobs are validated by their own strict decoders in the worker.
 */
std::optional<VerifyRequest> decode_verify_request(
    std::span<const uint8_t> bytes);

/** Encode a response. */
std::vector<uint8_t> encode_response(const JobResponse &resp);

/** Decode and validate a response. */
std::optional<JobResponse> decode_response(std::span<const uint8_t> bytes);

/** Append one length-prefixed frame to a byte stream. */
void append_frame(std::vector<uint8_t> &stream,
                  std::span<const uint8_t> frame);

/**
 * Split a byte stream into length-prefixed frames. Returns nullopt if
 * the stream is truncated or a frame exceeds max_frame_bytes.
 */
std::optional<std::vector<std::vector<uint8_t>>> split_frames(
    std::span<const uint8_t> stream, uint64_t max_frame_bytes = 1ull << 32);

}  // namespace zkspeed::runtime::wire
