/**
 * @file
 * Aggregate service metrics: counts, latency distribution summary and
 * the folded-in ff modmul counters, matching the Table-1 style of
 * instrumentation so service throughput can sit next to the paper's
 * kernel characterisation.
 *
 * Since the obs rewiring these structs are a *derived snapshot view*:
 * the authoritative stats live in obs::MetricsRegistry::global() as
 * per-service-labelled histograms and counters (full percentiles, and
 * latency of rejected/failed jobs too — status-labelled
 * zkspeed_job_latency_ms series, where this view's min/mean/max only
 * summarise ok jobs). ProofService::metrics() reconstructs the struct
 * from a registry snapshot, so existing callers keep working; add()
 * remains for code that aggregates JobResponses outside a service.
 * With obs::set_enabled(false) the view reads as all zeros.
 */
#pragma once

#include <algorithm>
#include <cstdint>

#include "runtime/job.hpp"

namespace zkspeed::runtime {

/** Latency/count aggregates for one job class (prove or verify). */
struct ClassMetrics {
    uint64_t jobs_ok = 0;
    uint64_t jobs_rejected = 0;  ///< malformed / unsatisfiable / too large
    uint64_t jobs_failed = 0;    ///< internal errors + cancellations

    double min_latency_ms = 0;  ///< over completed ok jobs
    double max_latency_ms = 0;
    double sum_latency_ms = 0;

    uint64_t jobs_total() const { return jobs_ok + jobs_rejected + jobs_failed; }

    double
    mean_latency_ms() const
    {
        return jobs_ok == 0 ? 0.0 : sum_latency_ms / double(jobs_ok);
    }

    void
    add(JobStatus status, double total_ms)
    {
        switch (status) {
            case JobStatus::ok: ++jobs_ok; break;
            case JobStatus::malformed_request:
            case JobStatus::unsatisfiable:
            case JobStatus::too_large:
            case JobStatus::invalid_proof: ++jobs_rejected; break;
            case JobStatus::internal_error:
            case JobStatus::cancelled: ++jobs_failed; break;
        }
        if (status == JobStatus::ok) {
            sum_latency_ms += total_ms;
            max_latency_ms = std::max(max_latency_ms, total_ms);
            min_latency_ms = jobs_ok == 1
                                 ? total_ms
                                 : std::min(min_latency_ms, total_ms);
        }
    }
};

/** Aggregates for the verify class's batch-window behaviour. */
struct VerifyBatchMetrics {
    uint64_t batches = 0;
    uint64_t flushed_on_size = 0;
    uint64_t flushed_on_timeout = 0;   ///< includes shutdown drains
    uint64_t proofs_accepted = 0;
    uint64_t proofs_rejected = 0;      ///< invalid_proof verdicts
    uint64_t pairing_checks = 0;       ///< incl. bisection probes
    uint64_t bisection_steps = 0;
    uint64_t msm_points = 0;           ///< folded RLC MSM points, summed
    double total_flush_ms = 0;

    double
    mean_batch_size() const
    {
        uint64_t n = proofs_accepted + proofs_rejected;
        return batches == 0 ? 0.0 : double(n) / double(batches);
    }
};

struct ServiceMetrics {
    /** Per-class breakdowns (VERIFY jobs land in `verify_class`). */
    ClassMetrics prove_class;
    ClassMetrics verify_class;
    VerifyBatchMetrics verify_batches;

    double total_prove_ms = 0;
    double total_queue_ms = 0;

    /** Modmuls across all jobs (ff::modmul_counters deltas, migrated). */
    uint64_t modmul_fr = 0;
    uint64_t modmul_fq = 0;

    uint64_t key_cache_hits = 0;
    uint64_t proof_bytes_total = 0;

    // Cross-class views, derived so they cannot drift from the
    // per-class accumulation.
    uint64_t
    jobs_ok() const
    {
        return prove_class.jobs_ok + verify_class.jobs_ok;
    }
    uint64_t
    jobs_rejected() const
    {
        return prove_class.jobs_rejected + verify_class.jobs_rejected;
    }
    uint64_t
    jobs_failed() const
    {
        return prove_class.jobs_failed + verify_class.jobs_failed;
    }
    uint64_t
    jobs_total() const
    {
        return prove_class.jobs_total() + verify_class.jobs_total();
    }

    double
    mean_latency_ms() const
    {
        uint64_t ok = jobs_ok();
        return ok == 0 ? 0.0
                       : (prove_class.sum_latency_ms +
                          verify_class.sum_latency_ms) /
                             double(ok);
    }

    double
    min_latency_ms() const
    {
        if (prove_class.jobs_ok == 0) return verify_class.min_latency_ms;
        if (verify_class.jobs_ok == 0) return prove_class.min_latency_ms;
        return std::min(prove_class.min_latency_ms,
                        verify_class.min_latency_ms);
    }

    double
    max_latency_ms() const
    {
        return std::max(prove_class.max_latency_ms,
                        verify_class.max_latency_ms);
    }

    /** Fold one finished job in (caller holds the service lock). */
    void
    add(const JobResponse &resp)
    {
        const JobMetrics &m = resp.metrics;
        ClassMetrics &cls = resp.kind == JobKind::verify ? verify_class
                                                         : prove_class;
        cls.add(resp.status, m.total_ms);
        total_prove_ms += m.prove_ms;
        total_queue_ms += m.queue_ms;
        modmul_fr += m.modmul_fr;
        modmul_fq += m.modmul_fq;
        if (m.key_cache_hit) ++key_cache_hits;
        proof_bytes_total += m.proof_bytes;
    }
};

}  // namespace zkspeed::runtime
