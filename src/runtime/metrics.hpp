/**
 * @file
 * Aggregate service metrics: counts, latency distribution summary and
 * the folded-in ff modmul counters, matching the Table-1 style of
 * instrumentation so service throughput can sit next to the paper's
 * kernel characterisation.
 */
#pragma once

#include <algorithm>
#include <cstdint>

#include "runtime/job.hpp"

namespace zkspeed::runtime {

struct ServiceMetrics {
    uint64_t jobs_ok = 0;
    uint64_t jobs_rejected = 0;  ///< malformed / unsatisfiable / too large
    uint64_t jobs_failed = 0;    ///< internal errors + cancellations

    double total_prove_ms = 0;
    double total_queue_ms = 0;
    double min_latency_ms = 0;  ///< over completed ok jobs
    double max_latency_ms = 0;
    double sum_latency_ms = 0;

    /** Modmuls across all jobs (ff::modmul_counters deltas, migrated). */
    uint64_t modmul_fr = 0;
    uint64_t modmul_fq = 0;

    uint64_t key_cache_hits = 0;
    uint64_t proof_bytes_total = 0;

    uint64_t jobs_total() const { return jobs_ok + jobs_rejected + jobs_failed; }

    double
    mean_latency_ms() const
    {
        return jobs_ok == 0 ? 0.0 : sum_latency_ms / double(jobs_ok);
    }

    /** Fold one finished job in (caller holds the service lock). */
    void
    add(const JobResponse &resp)
    {
        const JobMetrics &m = resp.metrics;
        switch (resp.status) {
            case JobStatus::ok: ++jobs_ok; break;
            case JobStatus::malformed_request:
            case JobStatus::unsatisfiable:
            case JobStatus::too_large: ++jobs_rejected; break;
            case JobStatus::internal_error:
            case JobStatus::cancelled: ++jobs_failed; break;
        }
        total_prove_ms += m.prove_ms;
        total_queue_ms += m.queue_ms;
        modmul_fr += m.modmul_fr;
        modmul_fq += m.modmul_fq;
        if (m.key_cache_hit) ++key_cache_hits;
        proof_bytes_total += m.proof_bytes;
        if (resp.status == JobStatus::ok) {
            sum_latency_ms += m.total_ms;
            max_latency_ms = std::max(max_latency_ms, m.total_ms);
            min_latency_ms = jobs_ok == 1
                                 ? m.total_ms
                                 : std::min(min_latency_ms, m.total_ms);
        }
    }
};

}  // namespace zkspeed::runtime
