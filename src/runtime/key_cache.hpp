/**
 * @file
 * Proving-key / SRS cache for the batch proving service.
 *
 * keygen commits to every selector and sigma table (nine MSMs), which
 * dwarfs proving time for small circuits, so a service proving the same
 * circuit shape repeatedly must pay it once. Circuits are identified by
 * a SHA3-256 hash over their canonical encoding (tables, sizes, flags);
 * two requests carrying byte-identical circuits share one ProvingKey.
 *
 * SRS handling: the service simulates the universal setup locally, one
 * SRS per variable count, derived from a configured seed so proofs are
 * reproducible across service instances (and across cache hit / miss
 * paths). Eviction is LRU over fully-built entries; in-flight keygens
 * are never evicted and concurrent misses on the same circuit build the
 * key once while other workers wait on that entry alone (the cache-wide
 * lock is never held across a keygen).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "hash/keccak.hpp"
#include "hyperplonk/prover.hpp"

namespace zkspeed::runtime {

/** Canonical SHA3-256 identity of a circuit (selectors + wiring). */
hash::Digest circuit_fingerprint(const hyperplonk::CircuitIndex &circuit);

struct KeyCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;

    double
    hit_rate() const
    {
        uint64_t n = hits + misses;
        return n == 0 ? 0.0 : double(hits) / double(n);
    }
};

class KeyCache
{
  public:
    struct Keys {
        std::shared_ptr<const hyperplonk::ProvingKey> pk;
        std::shared_ptr<const hyperplonk::VerifyingKey> vk;
    };

    /**
     * @param capacity max resident key pairs (>= 1).
     * @param srs_seed seed for the per-size simulated SRS ceremonies.
     */
    explicit KeyCache(size_t capacity, uint64_t srs_seed = 0x7a6b5eedULL);

    /**
     * Look up the keys for `circuit`, running keygen on a miss. The
     * bool is true on a cache hit. Thread-safe; concurrent misses on
     * the same circuit run keygen exactly once.
     */
    std::pair<Keys, bool> get_or_create(
        const hyperplonk::CircuitIndex &circuit);

    /** The (lazily generated) SRS for a given variable count. */
    std::shared_ptr<const pcs::Srs> srs_for(size_t num_vars);

    KeyCacheStats stats() const;
    size_t size() const;

  private:
    struct Entry {
        std::mutex build_mu;   ///< serialises keygen for this circuit
        Keys keys;             ///< empty until built
        /** Atomic: written under build_mu but read under the cache-wide
         * mu_ (hit accounting, eviction), which is a different lock. */
        std::atomic<bool> built{false};
    };

    void touch_locked(const hash::Digest &key);
    void evict_locked();

    const size_t capacity_;
    const uint64_t srs_seed_;

    mutable std::mutex mu_;
    std::map<hash::Digest, std::shared_ptr<Entry>> entries_;
    /** LRU order, most recent at the front. */
    std::list<hash::Digest> lru_;
    std::map<size_t, std::shared_ptr<const pcs::Srs>> srs_by_vars_;
    KeyCacheStats stats_;
};

}  // namespace zkspeed::runtime
