#include "runtime/wire.hpp"

#include "hyperplonk/serde_bytes.hpp"
#include "lookup/logup.hpp"

namespace zkspeed::runtime {

const char *
to_string(JobStatus s)
{
    switch (s) {
        case JobStatus::ok: return "ok";
        case JobStatus::malformed_request: return "malformed_request";
        case JobStatus::unsatisfiable: return "unsatisfiable";
        case JobStatus::too_large: return "too_large";
        case JobStatus::internal_error: return "internal_error";
        case JobStatus::cancelled: return "cancelled";
        case JobStatus::invalid_proof: return "invalid_proof";
    }
    return "unknown";
}

const char *
to_string(JobKind k)
{
    switch (k) {
        case JobKind::prove: return "prove";
        case JobKind::verify: return "verify";
    }
    return "unknown";
}

namespace wire {

namespace {

using hyperplonk::serde::ByteReader;
using hyperplonk::serde::ByteWriter;
using mle::Mle;

// Request layout v3 (fused multi-table lookups: per-table row counts +
// tag-valued q_lookup): new magic so a v2 peer rejects the frame
// outright instead of misparsing it.
constexpr uint64_t kRequestMagic = 0x7a6b737065656414ULL;   // "zkspeed",20
constexpr uint64_t kVerifyRequestMagic = 0x7a6b737065656412ULL;  // ..,18
// Response layout v2 (kind byte + verify metrics): new magic so a PR 1
// peer rejects the frame outright instead of misparsing it.
constexpr uint64_t kResponseMagic = 0x7a6b737065656413ULL;  // ..,19
constexpr uint8_t kMaxStatus = uint8_t(JobStatus::invalid_proof);
constexpr uint8_t kMaxKind = uint8_t(JobKind::verify);

/** Raw (unprefixed) MLE table: the length is implied by num_vars. */
void
write_table(ByteWriter &w, const Mle &t)
{
    for (size_t i = 0; i < t.size(); ++i) w.fr(t[i]);
}

Mle
read_table(ByteReader &r, size_t num_vars)
{
    std::vector<ff::Fr> evals(size_t(1) << num_vars);
    for (auto &e : evals) e = r.fr();
    return Mle::from_evals(std::move(evals));
}

/** True iff x is a small integer < bound (all high limbs zero). */
bool
fits_below(const ff::Fr &x, uint64_t bound)
{
    auto repr = x.to_repr();
    for (size_t i = 1; i < ff::Fr::kLimbs; ++i) {
        if (repr.limbs[i] != 0) return false;
    }
    return repr.limbs[0] < bound;
}

}  // namespace

std::vector<uint8_t>
encode_request(const JobRequest &req)
{
    ByteWriter w;
    w.u64(kRequestMagic);
    w.u64(req.request_id);
    w.u64(req.circuit.num_vars);
    w.u64(req.circuit.num_public);
    w.u8(req.circuit.custom_gates ? 1 : 0);
    w.u8(req.circuit.has_lookup ? 1 : 0);
    for (const Mle *t : {&req.circuit.q_l, &req.circuit.q_r,
                         &req.circuit.q_m, &req.circuit.q_o,
                         &req.circuit.q_c, &req.circuit.q_h}) {
        write_table(w, *t);
    }
    for (const auto &s : req.circuit.sigma) write_table(w, s);
    for (const auto &wi : req.witness.w) write_table(w, wi);
    if (req.circuit.has_lookup) {
        // The bank's tag column is fully determined by the per-table
        // row counts (tag k owns the k-th slice, padding copies row 0),
        // so only the counts travel; the decoder reconstructs the
        // column bit-for-bit.
        w.u64(req.circuit.table_row_counts.size());
        for (uint64_t rows : req.circuit.table_row_counts) w.u64(rows);
        write_table(w, req.circuit.q_lookup);
        for (const auto &t : req.circuit.table) write_table(w, t);
    }
    return std::move(w.buf);
}

std::optional<JobRequest>
decode_request(std::span<const uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.u64() != kRequestMagic) return std::nullopt;
    JobRequest req;
    req.request_id = r.u64();
    uint64_t num_vars = r.u64();
    uint64_t num_public = r.u64();
    uint8_t custom = r.u8();
    uint8_t has_lookup = r.u8();
    if (r.failed() || num_vars < 1 || num_vars > kMaxRequestVars ||
        custom > 1 || has_lookup > 1 ||
        num_public > (uint64_t(1) << num_vars)) {
        return std::nullopt;
    }
    // Size the frame before allocating: 12 tables of 2^mu elements
    // (plus a lookup section for lookup circuits) follow the 34-byte
    // header. Without this, a bare header claiming num_vars=20 would
    // make us allocate ~400 MB of tables just to discover the bytes
    // aren't there. The lookup section's length depends on its leading
    // num_tables word, which sits at a known offset — peek it before
    // trusting the rest of the frame.
    uint64_t table_bytes =
        (uint64_t(1) << num_vars) * uint64_t(ff::Fr::kByteSize);
    uint64_t expected_base = 34 + 12 * table_bytes;
    uint64_t num_tables = 0;
    if (has_lookup == 1) {
        if (bytes.size() < expected_base + 8) return std::nullopt;
        for (int i = 0; i < 8; ++i) {
            num_tables |= uint64_t(bytes[expected_base + i]) << (8 * i);
        }
        if (num_tables < 1 || num_tables > kMaxRequestTables) {
            return std::nullopt;
        }
    }
    uint64_t expected =
        expected_base +
        (has_lookup == 1 ? 8 + 8 * num_tables + 4 * table_bytes : 0);
    if (bytes.size() != expected) return std::nullopt;
    req.circuit.num_vars = num_vars;
    req.circuit.num_public = num_public;
    req.circuit.custom_gates = custom == 1;
    req.circuit.has_lookup = has_lookup == 1;
    for (Mle *t : {&req.circuit.q_l, &req.circuit.q_r, &req.circuit.q_m,
                   &req.circuit.q_o, &req.circuit.q_c, &req.circuit.q_h}) {
        *t = read_table(r, num_vars);
    }
    for (auto &s : req.circuit.sigma) s = read_table(r, num_vars);
    for (auto &wi : req.witness.w) wi = read_table(r, num_vars);
    if (req.circuit.has_lookup) {
        if (r.u64() != num_tables) return std::nullopt;
        uint64_t total_rows = 0;
        req.circuit.table_row_counts.reserve(num_tables);
        for (uint64_t ti = 0; ti < num_tables; ++ti) {
            uint64_t rows = r.u64();
            // Bound each count BEFORE accumulating: a huge count could
            // wrap total_rows past the check and turn the tag-column
            // reconstruction below into an out-of-bounds write.
            if (rows < 1 || rows > (uint64_t(1) << num_vars) ||
                total_rows + rows > (uint64_t(1) << num_vars)) {
                return std::nullopt;
            }
            total_rows += rows;
            req.circuit.table_row_counts.push_back(rows);
        }
        req.circuit.table_rows = total_rows;
        req.circuit.q_lookup = read_table(r, num_vars);
        for (auto &t : req.circuit.table) t = read_table(r, num_vars);
        // Reconstruct the bank's tag column from the counts — the same
        // shared layout definition CircuitBuilder committed to.
        req.circuit.table_tag = lookup::build_tag_column(
            req.circuit.table_row_counts, num_vars);
        // q_lookup is a tag-valued selector: entries must be small
        // integers naming a registered table (or zero).
        for (size_t i = 0; i < req.circuit.q_lookup.size(); ++i) {
            if (!fits_below(req.circuit.q_lookup[i], num_tables + 1)) {
                return std::nullopt;
            }
        }
        // Rows past total_rows must be padding copies of row 0
        // (CircuitBuilder::build's invariant). The committed bank is
        // the full 2^mu rows, so un-checked padding would silently
        // widen the proved statement beyond the declared tables: the
        // front door only tests the first total_rows rows, while a
        // prover could park multiplicity mass on garbage padding rows.
        for (size_t i = total_rows; i < (size_t(1) << num_vars); ++i) {
            for (const auto &t : req.circuit.table) {
                if (!(t[i] == t[0])) return std::nullopt;
            }
        }
    }
    if (!r.fully_consumed()) return std::nullopt;
    // Shape consistency: the custom-gates flag decides the proof layout
    // (23 vs 22 batch claims), so a clear q_H selector must not claim it.
    if (!req.circuit.custom_gates) {
        for (size_t i = 0; i < req.circuit.q_h.size(); ++i) {
            if (!req.circuit.q_h[i].is_zero()) return std::nullopt;
        }
    }
    // Sigma entries are wire-slot indices and get used as array indices
    // (Witness::satisfies_wiring); an out-of-range value would read out
    // of bounds, so reject it here.
    uint64_t slot_bound = 3 * (uint64_t(1) << num_vars);
    for (const auto &s : req.circuit.sigma) {
        for (size_t i = 0; i < s.size(); ++i) {
            if (!fits_below(s[i], slot_bound)) return std::nullopt;
        }
    }
    return req;
}

std::optional<JobKind>
classify_request(std::span<const uint8_t> bytes)
{
    ByteReader r(bytes);
    uint64_t magic = r.u64();
    if (r.failed()) return std::nullopt;
    if (magic == kRequestMagic) return JobKind::prove;
    if (magic == kVerifyRequestMagic) return JobKind::verify;
    return std::nullopt;
}

std::vector<uint8_t>
encode_verify_request(const VerifyRequest &req)
{
    ByteWriter w;
    w.u64(kVerifyRequestMagic);
    w.u64(req.request_id);
    w.bytes(req.vk);
    w.frs(req.public_inputs);
    w.bytes(req.proof);
    return std::move(w.buf);
}

std::optional<VerifyRequest>
decode_verify_request(std::span<const uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.u64() != kVerifyRequestMagic) return std::nullopt;
    VerifyRequest req;
    req.request_id = r.u64();
    req.vk = r.bytes(kMaxVkBytes);
    req.public_inputs = r.frs(uint64_t(1) << kMaxRequestVars);
    req.proof = r.bytes(kMaxProofBytes);
    if (!r.fully_consumed()) return std::nullopt;
    if (req.vk.empty() || req.proof.empty()) return std::nullopt;
    return req;
}

std::vector<uint8_t>
encode_response(const JobResponse &resp)
{
    ByteWriter w;
    w.u64(kResponseMagic);
    w.u64(resp.request_id);
    w.u8(uint8_t(resp.kind));
    w.u8(uint8_t(resp.status));
    std::span<const uint8_t> err(
        reinterpret_cast<const uint8_t *>(resp.error.data()),
        std::min<size_t>(resp.error.size(), kMaxErrorBytes));
    w.bytes(err);
    w.bytes(resp.proof);
    const JobMetrics &m = resp.metrics;
    w.u64(uint64_t(m.queue_ms * 1000.0));
    w.u64(uint64_t(m.prove_ms * 1000.0));
    w.u64(uint64_t(m.total_ms * 1000.0));
    w.u64(m.modmul_fr);
    w.u64(m.modmul_fq);
    w.u8(m.key_cache_hit ? 1 : 0);
    w.u64(m.worker_id);
    w.u64(m.proof_bytes);
    w.u64(m.num_vars);
    w.u64(uint64_t(m.verify_ms * 1000.0));
    w.u64(m.batch_size);
    return std::move(w.buf);
}

std::optional<JobResponse>
decode_response(std::span<const uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.u64() != kResponseMagic) return std::nullopt;
    JobResponse resp;
    resp.request_id = r.u64();
    uint8_t kind = r.u8();
    uint8_t status = r.u8();
    if (r.failed() || status > kMaxStatus || kind > kMaxKind) {
        return std::nullopt;
    }
    resp.kind = JobKind(kind);
    resp.status = JobStatus(status);
    auto err = r.bytes(kMaxErrorBytes);
    resp.error.assign(err.begin(), err.end());
    resp.proof = r.bytes(kMaxProofBytes);
    JobMetrics &m = resp.metrics;
    m.queue_ms = double(r.u64()) / 1000.0;
    m.prove_ms = double(r.u64()) / 1000.0;
    m.total_ms = double(r.u64()) / 1000.0;
    m.modmul_fr = r.u64();
    m.modmul_fq = r.u64();
    uint8_t hit = r.u8();
    m.key_cache_hit = hit == 1;
    m.worker_id = uint32_t(r.u64());
    m.proof_bytes = r.u64();
    m.num_vars = uint32_t(r.u64());
    m.verify_ms = double(r.u64()) / 1000.0;
    m.batch_size = uint32_t(r.u64());
    if (!r.fully_consumed() || hit > 1) return std::nullopt;
    // A PROVE success always carries the proof bytes; a VERIFY job's
    // verdict is its status and the blob stays empty.
    if (resp.kind == JobKind::prove && resp.status == JobStatus::ok &&
        resp.proof.empty()) {
        return std::nullopt;
    }
    if (resp.kind == JobKind::verify && !resp.proof.empty()) {
        return std::nullopt;
    }
    // invalid_proof is a verification verdict, not a proving status.
    if (resp.kind == JobKind::prove &&
        resp.status == JobStatus::invalid_proof) {
        return std::nullopt;
    }
    return resp;
}

void
append_frame(std::vector<uint8_t> &stream, std::span<const uint8_t> frame)
{
    uint64_t n = frame.size();
    for (int i = 0; i < 8; ++i) stream.push_back(uint8_t(n >> (8 * i)));
    stream.insert(stream.end(), frame.begin(), frame.end());
}

std::optional<std::vector<std::vector<uint8_t>>>
split_frames(std::span<const uint8_t> stream, uint64_t max_frame_bytes)
{
    std::vector<std::vector<uint8_t>> frames;
    size_t pos = 0;
    while (pos < stream.size()) {
        if (pos + 8 > stream.size()) return std::nullopt;
        uint64_t n = 0;
        for (int i = 0; i < 8; ++i) {
            n |= uint64_t(stream[pos + i]) << (8 * i);
        }
        pos += 8;
        if (n > max_frame_bytes || n > stream.size() - pos) {
            return std::nullopt;
        }
        frames.emplace_back(stream.begin() + pos, stream.begin() + pos + n);
        pos += n;
    }
    return frames;
}

}  // namespace wire
}  // namespace zkspeed::runtime
