#include "verify/batch_verifier.hpp"

#include <chrono>

namespace zkspeed::verifier {

namespace {

using curve::G1;
using curve::G1Affine;
using curve::G2Affine;
using curve::G2Prepared;
using ff::Fr;

/**
 * The folded check, shared between the full batch and bisection probes:
 * all terms of the selected items, each scaled by its item's weight,
 * grouped onto the pre-collected distinct G2 points.
 */
struct Fold {
    /** Distinct G2 points across the whole batch, prepared once. */
    std::vector<G2Affine> g2s;
    std::vector<G2Prepared> prepared;
    /** Per item, per term: index into g2s (parallel to terms()). */
    std::vector<std::vector<size_t>> slot;

    explicit Fold(const std::vector<PairingAccumulator> &items)
    {
        slot.resize(items.size());
        for (size_t i = 0; i < items.size(); ++i) {
            slot[i].reserve(items[i].size());
            for (const auto &t : items[i].terms()) {
                slot[i].push_back(find_or_add_g2(g2s, t.g2));
            }
        }
        prepared.reserve(g2s.size());
        for (const auto &q : g2s) prepared.push_back(prepare_g2(q));
    }

    /** Check prod over items in [begin, end) of product_i^{rho_i} == 1. */
    bool
    check(const std::vector<PairingAccumulator> &items,
          const std::vector<Fr> &rho, size_t begin, size_t end,
          BatchStats &stats) const
    {
        std::vector<std::vector<G1Affine>> bases(g2s.size());
        std::vector<std::vector<Fr>> scalars(g2s.size());
        size_t points = 0;
        for (size_t i = begin; i < end; ++i) {
            const auto &terms = items[i].terms();
            for (size_t j = 0; j < terms.size(); ++j) {
                size_t gi = slot[i][j];
                bases[gi].push_back(terms[j].base);
                scalars[gi].push_back(rho[i] * terms[j].scalar);
                ++points;
            }
        }
        std::vector<G1> sums;
        std::vector<G2Prepared> qs;
        sums.reserve(g2s.size());
        qs.reserve(g2s.size());
        for (size_t gi = 0; gi < g2s.size(); ++gi) {
            if (bases[gi].empty()) continue;
            sums.push_back(curve::msm(bases[gi], scalars[gi]));
            qs.push_back(prepared[gi]);
        }
        auto ps = curve::batch_to_affine<curve::G1Params>(sums);
        ++stats.pairing_checks;
        // Every check — full batch or bisection probe — folds its own
        // MSMs, so the stats accumulate across probes; otherwise a
        // poisoned batch's replay would charge the probes' pairings to
        // the CPU while omitting their MSMs from the chip side,
        // inflating the modelled verify speedup.
        stats.msm_points += points;
        stats.num_pairings += qs.size();
        auto t0 = std::chrono::steady_clock::now();
        bool ok = curve::pairing_product_is_one_prepared(ps, qs);
        stats.pairing_ms +=
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        return ok;
    }
};

/** Group-test [begin, end): mark verdicts, recursing into bad halves. */
void
bisect(const Fold &fold, const std::vector<PairingAccumulator> &items,
       const std::vector<Fr> &rho, size_t begin, size_t end,
       std::vector<bool> &verdicts, BatchStats &stats)
{
    if (begin >= end) return;
    ++stats.bisection_steps;
    if (fold.check(items, rho, begin, end, stats)) {
        for (size_t i = begin; i < end; ++i) verdicts[i] = true;
        return;
    }
    if (end - begin == 1) {
        verdicts[begin] = false;
        return;
    }
    size_t mid = begin + (end - begin) / 2;
    bisect(fold, items, rho, begin, mid, verdicts, stats);
    bisect(fold, items, rho, mid, end, verdicts, stats);
}

}  // namespace

size_t
BatchVerifier::add(PairingAccumulator acc)
{
    items_.push_back(std::move(acc));
    return items_.size() - 1;
}

BatchResult
BatchVerifier::flush()
{
    BatchResult result;
    result.verdicts.assign(items_.size(), false);
    if (items_.empty()) return result;

    // Fiat-Shamir weights: bind every accumulator before deriving any
    // weight, so no proof can be chosen after seeing its rho.
    hash::Transcript tr("zkspeed-batch-verify-v1");
    tr.append_fr("batch_size", Fr::from_uint(items_.size()));
    for (const auto &item : items_) item.bind(tr);
    std::vector<Fr> rho = tr.challenge_frs("batch_rho", items_.size());

    Fold fold(items_);
    if (fold.check(items_, rho, 0, items_.size(), result.stats)) {
        result.verdicts.assign(items_.size(), true);
    } else if (items_.size() == 1) {
        result.verdicts[0] = false;
    } else {
        // Group-test halves; the prepared G2 coefficients are re-used by
        // every probe, so each probe costs one MSM + one multi-pairing.
        size_t mid = items_.size() / 2;
        bisect(fold, items_, rho, 0, mid, result.verdicts, result.stats);
        bisect(fold, items_, rho, mid, items_.size(), result.verdicts,
               result.stats);
    }
    items_.clear();
    return result;
}

}  // namespace zkspeed::verifier
