/**
 * @file
 * Amortized multi-proof verification (DESIGN.md Section 6).
 *
 * The BatchVerifier collects per-proof deferred-pairing accumulators
 * (hyperplonk::verify_deferred emits one per proof) and decides them
 * all with a single folded check:
 *
 *   1. Fiat-Shamir weights: a transcript absorbs every accumulator's
 *      canonical content, then derives one random weight rho_i per
 *      proof. An adversary therefore commits to all proofs before any
 *      weight is known.
 *   2. Fold: terms of proof i are scaled by rho_i and concatenated.
 *      Grouping by G2 point turns the fold into one G1 MSM per distinct
 *      G2 point (mu+1 points for same-SRS mKZG batches) followed by one
 *      multi-pairing — N proofs cost one pairing product instead of N.
 *   3. Bisection fallback: when the folded check rejects, the verifier
 *      group-tests halves of the batch (re-using the already-prepared
 *      G2 Miller-loop coefficients) until the offending proof(s) are
 *      isolated; honest proofs in a poisoned batch still accept.
 *
 * Soundness: if any single proof's pairing product is not 1, the folded
 * product is 1 with probability at most 1/r over the choice of weights
 * (Schwartz-Zippel in the exponent of GT).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "verify/accumulator.hpp"

namespace zkspeed::verifier {

/** Measurements of one batch flush (metrics + sim replay). */
struct BatchStats {
    /** Product-of-pairings evaluations, including bisection probes. */
    size_t pairing_checks = 0;
    /** Subset probes spent isolating failures (0 when the batch is clean). */
    size_t bisection_steps = 0;
    /** G1 points folded through MSMs across every check of the flush —
     * the full-batch check AND each bisection probe — so sim replay
     * charges the chip the same MSM work whose pairings it charges the
     * CPU (a clean flush runs one check, so this equals the full-batch
     * point count there). */
    size_t msm_points = 0;
    /** Multi-pairing pairs across every check of the flush (same
     * accounting as msm_points). */
    size_t num_pairings = 0;
    /** Wall time spent in Miller loops + final exponentiations, across
     * every probe (the CPU-resident portion under sim replay). */
    double pairing_ms = 0;
};

struct BatchResult {
    /** verdicts[i] == true iff proof i's deferred check passed. */
    std::vector<bool> verdicts;
    BatchStats stats;

    bool
    all_ok() const
    {
        for (bool v : verdicts) {
            if (!v) return false;
        }
        return true;
    }
};

class BatchVerifier
{
  public:
    /**
     * Add one proof's deferred accumulator (as produced by
     * hyperplonk::verify_deferred / pcs::accumulate).
     * @return the proof's index within the batch.
     */
    size_t add(PairingAccumulator acc);

    size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }

    /**
     * Decide every added proof: derive weights, run the folded check,
     * bisect on rejection. Resets the verifier for reuse.
     */
    BatchResult flush();

  private:
    std::vector<PairingAccumulator> items_;
};

}  // namespace zkspeed::verifier
