/**
 * @file
 * Deferred-pairing accumulator: the core of the batch verification
 * subsystem.
 *
 * A pairing-based verifier normally finishes with a product-of-pairings
 * check  prod_i e(P_i, Q_i) == 1.  Instead of evaluating it inline, the
 * accumulator records the (scalar, G1 base, G2 point) terms the check
 * *would* pair, with each G1 input kept in unscaled base+scalar form:
 *
 *   prod_j e(s_j * B_j, Q_j) == 1
 *
 * Deferring buys three things (DESIGN.md Section 6):
 *  1. Single-proof verify becomes "accumulate then flush", and the flush
 *     groups terms by their G2 point, so every group collapses to one
 *     G1 MSM — G2 scalar multiplications (the old h^{tau_k} - z_k h
 *     construction) disappear from the verifier entirely.
 *  2. Many proofs' accumulators fold into ONE check: scale each proof's
 *     terms by a Fiat-Shamir weight rho_i and concatenate. By bilinearity
 *     the folded check holds iff prod_i (proof_i product)^{rho_i} == 1,
 *     which for independent uniform rho_i accepts a batch containing any
 *     bad proof with probability <= 1/r (Schwartz-Zippel in the exponent).
 *  3. mKZG openings share the fixed G2 basis {h, h^{tau_k}}, so a folded
 *     batch of N proofs still pairs only mu+1 points: cost moves from
 *     N*(mu+1) pairings to one N*(mu+2)-term MSM plus one multi-pairing.
 *
 * Header-only so the pcs layer can emit terms without a link-time
 * dependency on the higher verify library.
 */
#pragma once

#include <vector>

#include "curve/msm.hpp"
#include "curve/pairing.hpp"
#include "hash/transcript.hpp"

namespace zkspeed::verifier {

/** Statistics of one accumulator flush (fed into sim replay / metrics). */
struct FlushStats {
    /** Total G1 terms folded through MSMs. */
    size_t msm_points = 0;
    /** Pairs in the final multi-pairing (distinct G2 points). */
    size_t num_pairings = 0;
};

/**
 * Linear-scan lookup of `q` in `qs`, appending when absent; returns its
 * index. The distinct-G2 count is tiny (mu+1 per SRS), so a scan beats
 * building an ordered key. Shared by the accumulator's own flush and
 * the BatchVerifier's fold.
 */
inline size_t
find_or_add_g2(std::vector<curve::G2Affine> &qs, const curve::G2Affine &q)
{
    for (size_t i = 0; i < qs.size(); ++i) {
        if (qs[i] == q) return i;
    }
    qs.push_back(q);
    return qs.size() - 1;
}

class PairingAccumulator
{
  public:
    /** One deferred factor e(scalar * base, g2). */
    struct Term {
        ff::Fr scalar;
        curve::G1Affine base;
        curve::G2Affine g2;
    };

    /** Record e(p, q). */
    void
    add_pair(const curve::G1Affine &p, const curve::G2Affine &q)
    {
        add_term(ff::Fr::one(), p, q);
    }

    /** Record e(scalar * base, q) without performing the scalar mul. */
    void
    add_term(const ff::Fr &scalar, const curve::G1Affine &base,
             const curve::G2Affine &q)
    {
        if (base.is_identity() || q.is_identity() || scalar.is_zero()) {
            return;  // contributes e(..)^0 = 1
        }
        terms_.push_back({scalar, base, q});
    }

    bool empty() const { return terms_.empty(); }
    size_t size() const { return terms_.size(); }
    const std::vector<Term> &terms() const { return terms_; }
    void clear() { terms_.clear(); }

    /**
     * Absorb the accumulator's canonical content into a transcript, so
     * Fiat-Shamir batch weights bind every folded statement.
     */
    void
    bind(hash::Transcript &tr) const
    {
        std::vector<uint8_t> buf;
        buf.reserve(terms_.size() * (ff::Fr::kByteSize +
                                     6 * ff::Fq::kByteSize + 2));
        uint8_t scratch[ff::Fq::kByteSize];
        auto put_fq = [&](const ff::Fq &x) {
            x.to_bytes(scratch);
            buf.insert(buf.end(), scratch, scratch + ff::Fq::kByteSize);
        };
        for (const Term &t : terms_) {
            t.scalar.to_bytes(scratch);
            buf.insert(buf.end(), scratch, scratch + ff::Fr::kByteSize);
            buf.push_back(t.base.infinity ? 1 : 0);
            put_fq(t.base.x);
            put_fq(t.base.y);
            buf.push_back(t.g2.infinity ? 1 : 0);
            put_fq(t.g2.x.c0);
            put_fq(t.g2.x.c1);
            put_fq(t.g2.y.c0);
            put_fq(t.g2.y.c1);
        }
        tr.append_bytes("pairing_accumulator", buf);
    }

    /**
     * Flush: group terms by G2 point, run one G1 MSM per group, and
     * evaluate the single product-of-pairings check.
     */
    bool
    check(FlushStats *stats = nullptr) const
    {
        if (terms_.empty()) return true;
        // Group by G2 point: one MSM per distinct point.
        std::vector<curve::G2Affine> qs;
        std::vector<std::vector<curve::G1Affine>> bases;
        std::vector<std::vector<ff::Fr>> scalars;
        for (const Term &t : terms_) {
            size_t gi = find_or_add_g2(qs, t.g2);
            if (gi == bases.size()) {
                bases.emplace_back();
                scalars.emplace_back();
            }
            bases[gi].push_back(t.base);
            scalars[gi].push_back(t.scalar);
        }
        std::vector<curve::G1> sums(qs.size());
        for (size_t i = 0; i < qs.size(); ++i) {
            if (bases[i].size() == 1 && scalars[i][0].is_one()) {
                sums[i] = curve::G1::from_affine(bases[i][0]);
            } else {
                sums[i] = curve::msm(bases[i], scalars[i]);
            }
        }
        auto ps = curve::batch_to_affine<curve::G1Params>(sums);
        if (stats != nullptr) {
            stats->msm_points += terms_.size();
            stats->num_pairings += qs.size();
        }
        return curve::pairing_product_is_one(ps, qs);
    }

  private:
    std::vector<Term> terms_;
};

}  // namespace zkspeed::verifier
