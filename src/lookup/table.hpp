/**
 * @file
 * Lookup tables: the preprocessed side of the lookup argument.
 *
 * A Table is an ordered list of 3-column rows (t1, t2, t3). A lookup
 * gate asserts that its full wire triple (w1, w2, w3) equals some row of
 * the circuit's table, with the triple compressed by a verifier
 * challenge (Schwartz-Zippel vector lookup), so a single gate can
 * encode relations that would otherwise cost a bank of arithmetic
 * gates:
 *
 *   range(b):  rows (v, 0, 0) for v in [0, 2^b)  — looking up
 *              (x, 0, 0) range-checks x in one gate instead of the
 *              ~2b+2 gates of the bit-decomposition gadget (and pins
 *              the other two wires to zero for free);
 *   xor(b):    rows (a, c, a^c) for a, c in [0, 2^b) — looking up
 *              (x, y, z) both range-checks x, y and asserts z = x^y.
 *
 * One table per circuit: rows of different logical tables may collide
 * under the 3-column encoding (e.g. an XOR row with c = 0 looks like a
 * range row), so fusing tables needs a tag column — a recorded
 * follow-on, not supported here.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ff/fr.hpp"

namespace zkspeed::lookup {

using ff::Fr;

/** One 3-column lookup table. */
struct Table {
    std::string name;
    std::vector<std::array<Fr, 3>> rows;

    size_t size() const { return rows.size(); }
    bool empty() const { return rows.empty(); }

    /** Range table: rows (v, 0, 0) for v in [0, 2^bits). */
    static Table range(unsigned bits);

    /** XOR table: rows (a, b, a XOR b) for a, b in [0, 2^bits).
     * Has 2^{2 bits} rows — keep bits small (<= 8). */
    static Table xor_table(unsigned bits);
};

/**
 * One lookup gate: the wire triple at this row must equal some table
 * row. Used by CircuitBuilder bookkeeping; the proved object is the
 * q_lookup selector MLE plus the table column MLEs.
 */
struct LookupGate {
    size_t a = 0, b = 0, c = 0;  ///< variable handles (hyperplonk::Var)
};

}  // namespace zkspeed::lookup
