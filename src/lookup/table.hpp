/**
 * @file
 * Lookup tables: the preprocessed side of the lookup argument.
 *
 * A Table is an ordered list of 3-column rows (t1, t2, t3). A lookup
 * gate asserts that its full wire triple (w1, w2, w3) equals some row of
 * one of the circuit's tables, with the triple compressed by a verifier
 * challenge (Schwartz-Zippel vector lookup), so a single gate can
 * encode relations that would otherwise cost a bank of arithmetic
 * gates:
 *
 *   range(b):  rows (v, 0, 0) for v in [0, 2^b)  — looking up
 *              (x, 0, 0) range-checks x in one gate instead of the
 *              ~2b+2 gates of the bit-decomposition gadget (and pins
 *              the other two wires to zero for free);
 *   xor(b):    rows (a, c, a^c) for a, c in [0, 2^b) — looking up
 *              (x, y, z) both range-checks x, y and asserts z = x^y;
 *   chi(b):    rows (a, c, ~a & c) for a, c in [0, 2^b) — the keccak
 *              chi nonlinearity's per-limb kernel.
 *
 * A circuit may register several tables (CircuitBuilder::add_table);
 * each carries a 1-based tag and the LogUp argument folds tag and
 * columns together — tag + gamma c1 + gamma^2 c2 + gamma^3 c3 — so rows
 * of different logical tables can never collide under the compression
 * (DESIGN.md Section 8, "multi-table fusion").
 */
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ff/fr.hpp"

namespace zkspeed::lookup {

using ff::Fr;

/** Cap on fused tables per circuit (tag column values 1..N). Shared by
 * CircuitBuilder::add_table and the wire format, so a circuit the
 * builder accepts always survives request decoding. */
constexpr size_t kMaxTablesPerCircuit = 16;

/** One 3-column lookup table. */
struct Table {
    std::string name;
    std::vector<std::array<Fr, 3>> rows;

    size_t size() const { return rows.size(); }
    bool empty() const { return rows.empty(); }

    /** Range table: rows (v, 0, 0) for v in [0, 2^bits). */
    static Table range(unsigned bits);

    /** XOR table: rows (a, b, a XOR b) for a, b in [0, 2^bits).
     * Has 2^{2 bits} rows — keep bits small (<= 8). */
    static Table xor_table(unsigned bits);

    /** Keccak-chi table: rows (a, b, ~a AND b) over `bits`-wide limbs
     * (the complement is taken inside the limb: (~a & b) mod 2^bits).
     * Has 2^{2 bits} rows — keep bits small (<= 8). */
    static Table chi_table(unsigned bits);
};

/**
 * Structured error for a table bank that cannot fit any circuit the
 * builder is allowed to emit: the fused tables need more hypercube rows
 * than 2^max_vars. Carries the offending table's name and the bound so
 * callers (and error messages) can say exactly which table broke the
 * budget instead of a bare throw.
 */
class TableSizeError : public std::runtime_error
{
  public:
    TableSizeError(std::string table_name, size_t table_rows_,
                   size_t total_rows_, size_t max_vars_)
        : std::runtime_error(
              "lookup table '" + table_name + "' (" +
              std::to_string(table_rows_) + " rows; " +
              std::to_string(total_rows_) +
              " fused rows total) exceeds the circuit height bound 2^" +
              std::to_string(max_vars_) +
              " — shrink the table or raise "
              "CircuitBuilder::set_max_vars"),
          table(std::move(table_name)), table_rows(table_rows_),
          total_rows(total_rows_), max_vars(max_vars_)
    {}

    std::string table;  ///< name of the table that broke the budget
    size_t table_rows;  ///< its row count
    size_t total_rows;  ///< fused row total across all tables
    size_t max_vars;    ///< the 2^max_vars height bound
};

/**
 * One lookup gate: the wire triple at this row must equal some row of
 * the table with tag `tag`. Used by CircuitBuilder bookkeeping; the
 * proved object is the tag-valued q_lookup selector MLE plus the table
 * column MLEs.
 */
struct LookupGate {
    size_t a = 0, b = 0, c = 0;  ///< variable handles (hyperplonk::Var)
    uint32_t tag = 1;            ///< 1-based table tag
};

}  // namespace zkspeed::lookup
