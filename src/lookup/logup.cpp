#include "lookup/logup.hpp"

#include <mutex>
#include <string>
#include <unordered_map>

#include "ff/batch_inverse.hpp"
#include "ff/parallel.hpp"

namespace zkspeed::lookup {

using ff::Fr;

Table
Table::range(unsigned bits)
{
    Table t;
    t.name = "range" + std::to_string(bits);
    uint64_t n = uint64_t(1) << bits;
    t.rows.reserve(n);
    for (uint64_t v = 0; v < n; ++v) {
        t.rows.push_back({Fr::from_uint(v), Fr::zero(), Fr::zero()});
    }
    return t;
}

Table
Table::xor_table(unsigned bits)
{
    Table t;
    t.name = "xor" + std::to_string(bits);
    uint64_t n = uint64_t(1) << bits;
    t.rows.reserve(n * n);
    for (uint64_t a = 0; a < n; ++a) {
        for (uint64_t b = 0; b < n; ++b) {
            t.rows.push_back({Fr::from_uint(a), Fr::from_uint(b),
                              Fr::from_uint(a ^ b)});
        }
    }
    return t;
}

Table
Table::chi_table(unsigned bits)
{
    Table t;
    t.name = "chi" + std::to_string(bits);
    uint64_t n = uint64_t(1) << bits;
    uint64_t mask = n - 1;
    t.rows.reserve(n * n);
    for (uint64_t a = 0; a < n; ++a) {
        for (uint64_t b = 0; b < n; ++b) {
            t.rows.push_back({Fr::from_uint(a), Fr::from_uint(b),
                              Fr::from_uint(~a & b & mask)});
        }
    }
    return t;
}

namespace {

/** Canonical byte key of a tagged wire/table row (hash-map lookup). */
std::string
quad_key(const Fr &tag, const Fr &a, const Fr &b, const Fr &c)
{
    std::string key(4 * Fr::kByteSize, '\0');
    auto *p = reinterpret_cast<uint8_t *>(key.data());
    tag.to_bytes(p);
    a.to_bytes(p + Fr::kByteSize);
    b.to_bytes(p + 2 * Fr::kByteSize);
    c.to_bytes(p + 3 * Fr::kByteSize);
    return key;
}

/** First-occurrence index of every distinct (tag, row) bank entry. */
std::unordered_map<std::string, size_t>
row_index(const Mle &table_tag, const std::array<Mle, 3> &table,
          size_t table_rows)
{
    std::unordered_map<std::string, size_t> idx;
    idx.reserve(table_rows);
    for (size_t j = 0; j < table_rows; ++j) {
        idx.emplace(quad_key(table_tag[j], table[0][j], table[1][j],
                             table[2][j]),
                    j);
    }
    return idx;
}

}  // namespace

Mle
build_tag_column(const std::vector<uint64_t> &table_row_counts,
                 size_t num_vars)
{
    Mle tag_col(num_vars);
    size_t j = 0;
    for (size_t ti = 0; ti < table_row_counts.size(); ++ti) {
        Fr tag = Fr::from_uint(ti + 1);
        for (uint64_t k = 0; k < table_row_counts[ti]; ++k) {
            tag_col[j++] = tag;
        }
    }
    // Padding copies bank row 0: tag 1 (the first table has >= 1 row).
    for (; j < tag_col.size(); ++j) tag_col[j] = Fr::one();
    return tag_col;
}

Mle
multiplicities(const Mle &q_lookup, const Mle &table_tag,
               const std::array<Mle, 3> &table, size_t table_rows,
               const std::array<const Mle *, 3> &wires)
{
    auto idx = row_index(table_tag, table, table_rows);
    // Parallel counting pass: each worker range scans its share of the
    // hypercube into a local bank histogram (read-only probes of the
    // shared index), then folds it into the global counts under a lock.
    // Per-bank-row addition is commutative, so the merged counts are
    // identical to a serial scan regardless of chunking.
    std::vector<uint64_t> counts(table_rows, 0);
    std::mutex merge_mu;
    ff::parallel_for(q_lookup.size(), [&](size_t begin, size_t end) {
        std::vector<uint64_t> local(table_rows, 0);
        bool any = false;
        for (size_t i = begin; i < end; ++i) {
            if (q_lookup[i].is_zero()) continue;
            auto it = idx.find(quad_key(q_lookup[i], (*wires[0])[i],
                                        (*wires[1])[i], (*wires[2])[i]));
            if (it != idx.end()) {
                ++local[it->second];
                any = true;
            }
        }
        if (!any) return;
        std::lock_guard<std::mutex> lock(merge_mu);
        for (size_t j = 0; j < table_rows; ++j) counts[j] += local[j];
    });
    Mle m(q_lookup.num_vars());
    for (size_t j = 0; j < table_rows; ++j) {
        if (counts[j] == 0) continue;
        // Tag-weighted: residues on the table side must match the
        // gate side, whose numerators are the tag-valued selector.
        m[j] = table_tag[j] * Fr::from_uint(counts[j]);
    }
    return m;
}

LookupOracles
build_helper_oracles(const Mle &q_lookup, const Mle &table_tag,
                     const std::array<Mle, 3> &table,
                     const std::array<const Mle *, 3> &wires, const Mle &m,
                     const Fr &lambda, const Fr &gamma)
{
    const size_t mu = q_lookup.num_vars();
    const size_t n = q_lookup.size();
    LookupOracles o;
    o.h_f = std::make_shared<Mle>(mu);
    o.h_t = std::make_shared<Mle>(mu);
    // Denominators for both helpers, inverted chunk-batched in parallel
    // (a zero denominator — probability ~n/r over lambda — stays zero,
    // yielding an invalid proof rather than a crash). All three passes
    // are elementwise, so any chunking gives identical results; the
    // inversion runs on parallel_batch_inverse's fixed grid so the
    // modmul counts are identical across thread counts too.
    std::vector<Fr> den_f(n), den_t(n);
    ff::parallel_for(n, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            den_f[i] = lambda + fold_tagged(q_lookup[i], (*wires[0])[i],
                                            (*wires[1])[i], (*wires[2])[i],
                                            gamma);
            den_t[i] = lambda + fold_tagged(table_tag[i], table[0][i],
                                            table[1][i], table[2][i],
                                            gamma);
        }
    });
    ff::parallel_batch_inverse(den_f);
    ff::parallel_batch_inverse(den_t);
    ff::parallel_for(n, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            if (!q_lookup[i].is_zero()) {
                (*o.h_f)[i] = q_lookup[i] * den_f[i];
            }
            if (!m[i].is_zero()) {
                (*o.h_t)[i] = m[i] * den_t[i];
            }
        }
    });
    return o;
}

bool
rows_satisfy(const Mle &q_lookup, const Mle &table_tag,
             const std::array<Mle, 3> &table, size_t table_rows,
             const std::array<const Mle *, 3> &wires)
{
    auto idx = row_index(table_tag, table, table_rows);
    for (size_t i = 0; i < q_lookup.size(); ++i) {
        if (q_lookup[i].is_zero()) continue;
        if (idx.find(quad_key(q_lookup[i], (*wires[0])[i], (*wires[1])[i],
                              (*wires[2])[i])) == idx.end()) {
            return false;
        }
    }
    return true;
}

}  // namespace zkspeed::lookup
