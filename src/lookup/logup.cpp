#include "lookup/logup.hpp"

#include <string>
#include <unordered_map>

#include "ff/batch_inverse.hpp"

namespace zkspeed::lookup {

using ff::Fr;

Table
Table::range(unsigned bits)
{
    Table t;
    t.name = "range" + std::to_string(bits);
    uint64_t n = uint64_t(1) << bits;
    t.rows.reserve(n);
    for (uint64_t v = 0; v < n; ++v) {
        t.rows.push_back({Fr::from_uint(v), Fr::zero(), Fr::zero()});
    }
    return t;
}

Table
Table::xor_table(unsigned bits)
{
    Table t;
    t.name = "xor" + std::to_string(bits);
    uint64_t n = uint64_t(1) << bits;
    t.rows.reserve(n * n);
    for (uint64_t a = 0; a < n; ++a) {
        for (uint64_t b = 0; b < n; ++b) {
            t.rows.push_back({Fr::from_uint(a), Fr::from_uint(b),
                              Fr::from_uint(a ^ b)});
        }
    }
    return t;
}

namespace {

/** Canonical byte key of a wire/table triple (hash-map lookup). */
std::string
triple_key(const Fr &a, const Fr &b, const Fr &c)
{
    std::string key(3 * Fr::kByteSize, '\0');
    auto *p = reinterpret_cast<uint8_t *>(key.data());
    a.to_bytes(p);
    b.to_bytes(p + Fr::kByteSize);
    c.to_bytes(p + 2 * Fr::kByteSize);
    return key;
}

/** First-occurrence index of every distinct table row. */
std::unordered_map<std::string, size_t>
row_index(const std::array<Mle, 3> &table, size_t table_rows)
{
    std::unordered_map<std::string, size_t> idx;
    idx.reserve(table_rows);
    for (size_t j = 0; j < table_rows; ++j) {
        idx.emplace(triple_key(table[0][j], table[1][j], table[2][j]), j);
    }
    return idx;
}

}  // namespace

Mle
multiplicities(const Mle &q_lookup, const std::array<Mle, 3> &table,
               size_t table_rows, const std::array<const Mle *, 3> &wires)
{
    auto idx = row_index(table, table_rows);
    Mle m(q_lookup.num_vars());
    for (size_t i = 0; i < q_lookup.size(); ++i) {
        if (q_lookup[i].is_zero()) continue;
        auto it = idx.find(triple_key((*wires[0])[i], (*wires[1])[i],
                                      (*wires[2])[i]));
        if (it != idx.end()) m[it->second] += Fr::one();
    }
    return m;
}

LookupOracles
build_helper_oracles(const Mle &q_lookup, const std::array<Mle, 3> &table,
                     const std::array<const Mle *, 3> &wires, const Mle &m,
                     const Fr &lambda, const Fr &gamma)
{
    const size_t mu = q_lookup.num_vars();
    const size_t n = q_lookup.size();
    LookupOracles o;
    o.h_f = std::make_shared<Mle>(mu);
    o.h_t = std::make_shared<Mle>(mu);
    // Denominators for both helpers, inverted in one batch each (a zero
    // denominator — probability ~n/r over lambda — stays zero, yielding
    // an invalid proof rather than a crash).
    std::vector<Fr> den_f(n), den_t(n);
    for (size_t i = 0; i < n; ++i) {
        den_f[i] = lambda + fold_triple((*wires[0])[i], (*wires[1])[i],
                                        (*wires[2])[i], gamma);
        den_t[i] = lambda +
                   fold_triple(table[0][i], table[1][i], table[2][i],
                               gamma);
    }
    ff::batch_inverse(den_f);
    ff::batch_inverse(den_t);
    for (size_t i = 0; i < n; ++i) {
        if (!q_lookup[i].is_zero()) {
            (*o.h_f)[i] = q_lookup[i] * den_f[i];
        }
        if (!m[i].is_zero()) {
            (*o.h_t)[i] = m[i] * den_t[i];
        }
    }
    return o;
}

bool
rows_satisfy(const Mle &q_lookup, const std::array<Mle, 3> &table,
             size_t table_rows, const std::array<const Mle *, 3> &wires)
{
    auto idx = row_index(table, table_rows);
    for (size_t i = 0; i < q_lookup.size(); ++i) {
        if (q_lookup[i].is_zero()) continue;
        if (idx.find(triple_key((*wires[0])[i], (*wires[1])[i],
                                (*wires[2])[i])) == idx.end()) {
            return false;
        }
    }
    return true;
}

}  // namespace zkspeed::lookup
