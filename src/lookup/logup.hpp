/**
 * @file
 * LogUp-style multiset-inclusion argument (fractional sumcheck).
 *
 * Statement: for every hypercube row x with q_lookup(x) = 1, the wire
 * triple (w1, w2, w3)(x) equals some row of the table (t1, t2, t3).
 *
 * With challenges gamma (triple compression) and lambda (pole
 * location), both drawn after the witness and multiplicity commitments,
 * define
 *
 *   f(x) = w1(x) + gamma w2(x) + gamma^2 w3(x)
 *   t(x) = t1(x) + gamma t2(x) + gamma^2 t3(x)
 *
 * and the prover-committed helper MLEs
 *
 *   h_f(x) = q_lookup(x) / (lambda + f(x))
 *   h_t(x) = m(x)        / (lambda + t(x))
 *
 * where m is the multiplicity MLE (how many lookup rows hit each table
 * row). The multiset inclusion is then equivalent (w.h.p. over lambda,
 * gamma) to the fractional identity
 *
 *   sum_x h_f(x)  ==  sum_x h_t(x)                            (L1)
 *
 * together with the two per-row well-formedness ZeroChecks
 *
 *   h_f(x) (lambda + f(x)) - q_lookup(x) = 0                  (L2)
 *   h_t(x) (lambda + t(x)) - m(x)        = 0                  (L3)
 *
 * All three fold into ONE degree-3 sumcheck with a batching challenge
 * alpha: sum_x [ (h_f - h_t) + alpha (L2) eq + alpha^2 (L3) eq ] = 0.
 * The claimed evaluations at the sumcheck point ride the existing
 * batch-opening machinery (a 7th opening point), so the lookup argument
 * adds no new pairing work — its PCS terms flow through the same
 * deferred accumulator as every other opening. Soundness sketch in
 * DESIGN.md Section 8.
 *
 * Helper construction uses one batched inversion per helper — the same
 * FracMLE kernel as the wiring identity's phi, which is what lets the
 * sim's LookupUnit reuse the FracMLE pipeline model.
 */
#pragma once

#include <array>
#include <memory>

#include "lookup/table.hpp"
#include "mle/mle.hpp"

namespace zkspeed::lookup {

using mle::Mle;

/** Prover-side helper oracles (committed in the proof). */
struct LookupOracles {
    std::shared_ptr<Mle> h_f;  ///< q_lookup / (lambda + f)
    std::shared_ptr<Mle> h_t;  ///< m / (lambda + t)
};

/** Triple compression f = a + gamma b + gamma^2 c. */
inline ff::Fr
fold_triple(const ff::Fr &a, const ff::Fr &b, const ff::Fr &c,
            const ff::Fr &gamma)
{
    return a + gamma * (b + gamma * c);
}

/**
 * Multiplicity MLE: m[j] = number of active lookup rows whose wire
 * triple equals table row j (challenge-free, so it can be committed
 * with the witness). Duplicate table rows accumulate at their first
 * occurrence. Lookup rows matching no table row are simply not counted
 * — the fractional identity then fails and the proof is invalid, which
 * is the desired behaviour for an out-of-table witness pushed past the
 * front door.
 */
Mle multiplicities(const Mle &q_lookup, const std::array<Mle, 3> &table,
                   size_t table_rows,
                   const std::array<const Mle *, 3> &wires);

/** Build h_f and h_t for the drawn challenges (two batched inversions). */
LookupOracles build_helper_oracles(const Mle &q_lookup,
                                   const std::array<Mle, 3> &table,
                                   const std::array<const Mle *, 3> &wires,
                                   const Mle &m, const ff::Fr &lambda,
                                   const ff::Fr &gamma);

/**
 * Direct witness check: every active lookup row's wire triple appears
 * among the first `table_rows` table rows. This is the front-door test
 * mirroring Witness::satisfies_gates for lookup gates.
 */
bool rows_satisfy(const Mle &q_lookup, const std::array<Mle, 3> &table,
                  size_t table_rows,
                  const std::array<const Mle *, 3> &wires);

}  // namespace zkspeed::lookup
