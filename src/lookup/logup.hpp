/**
 * @file
 * LogUp-style multiset-inclusion argument (fractional sumcheck) over a
 * fused bank of tagged tables.
 *
 * Statement: for every hypercube row x with q_lookup(x) = k != 0, the
 * wire triple (w1, w2, w3)(x) equals some row of the table with tag k.
 * All registered tables are concatenated into one 4-column bank
 * (tag, t1, t2, t3) — the tag column keeps rows of different logical
 * tables apart under the compression.
 *
 * With challenges gamma (column compression) and lambda (pole
 * location), both drawn after the witness and multiplicity commitments,
 * define the tagged folds
 *
 *   f(x) = q_lookup(x) + gamma w1(x) + gamma^2 w2(x) + gamma^3 w3(x)
 *   t(x) = tag(x)      + gamma t1(x) + gamma^2 t2(x) + gamma^3 t3(x)
 *
 * and the prover-committed helper MLEs
 *
 *   h_f(x) = q_lookup(x) / (lambda + f(x))
 *   h_t(x) = m(x)        / (lambda + t(x))
 *
 * where m is the tag-weighted multiplicity MLE: table row j matched by
 * c_j active lookup rows gets m[j] = tag_j * c_j, so each pole's
 * residues agree on both sides. The multiset inclusion is then
 * equivalent (w.h.p. over lambda, gamma) to the fractional identity
 *
 *   sum_x h_f(x)  ==  sum_x h_t(x)                            (L1)
 *
 * together with the two per-row well-formedness ZeroChecks
 *
 *   h_f(x) (lambda + f(x)) - q_lookup(x) = 0                  (L2)
 *   h_t(x) (lambda + t(x)) - m(x)        = 0                  (L3)
 *
 * All three fold into ONE degree-3 sumcheck with a batching challenge
 * alpha: sum_x [ (h_f - h_t) + alpha (L2) eq + alpha^2 (L3) eq ] = 0.
 * Because the gate-side tag IS the q_lookup selector value, fusing
 * tables adds exactly one committed polynomial (the bank's tag column)
 * and no sumcheck degree. The claimed evaluations at the sumcheck point
 * ride the existing batch-opening machinery (a 7th opening point), so
 * the lookup argument adds no new pairing work — its PCS terms flow
 * through the same deferred accumulator as every other opening.
 * Soundness sketch in DESIGN.md Section 8.
 *
 * Helper construction uses one batched inversion per helper — the same
 * FracMLE kernel as the wiring identity's phi, which is what lets the
 * sim's LookupUnit reuse the FracMLE pipeline model. Multiplicity
 * construction is parallel: ff::parallel_for workers count into
 * per-range bank histograms merged deterministically (the ROADMAP
 * 2^20+-bank item).
 */
#pragma once

#include <array>
#include <memory>

#include "lookup/table.hpp"
#include "mle/mle.hpp"

namespace zkspeed::lookup {

using mle::Mle;

/** Prover-side helper oracles (committed in the proof). */
struct LookupOracles {
    std::shared_ptr<Mle> h_f;  ///< q_lookup / (lambda + f)
    std::shared_ptr<Mle> h_t;  ///< m / (lambda + t)
};

/** Tagged fold tag + gamma c1 + gamma^2 c2 + gamma^3 c3. */
inline ff::Fr
fold_tagged(const ff::Fr &tag, const ff::Fr &c1, const ff::Fr &c2,
            const ff::Fr &c3, const ff::Fr &gamma)
{
    return tag + gamma * (c1 + gamma * (c2 + gamma * c3));
}

/**
 * The bank's tag column from per-table row counts: tag k (1-based)
 * owns the k-th slice, padding rows past the total copy bank row 0
 * (tag 1). The ONE definition of the bank layout — CircuitBuilder
 * embeds it at build time and the wire decoder reconstructs it from
 * the transmitted counts, so the committed column can never diverge
 * between the two sides.
 */
Mle build_tag_column(const std::vector<uint64_t> &table_row_counts,
                     size_t num_vars);

/**
 * Tag-weighted multiplicity MLE: m[j] = tag_j * (number of active
 * lookup rows whose (tag, triple) equals bank row j). Challenge-free,
 * so it can be committed with the witness. Duplicate bank rows
 * accumulate at their first occurrence. Lookup rows matching no bank
 * row are simply not counted — the fractional identity then fails and
 * the proof is invalid, which is the desired behaviour for an
 * out-of-table witness pushed past the front door.
 *
 * The counting pass is parallelised over the hypercube with
 * ff::parallel_for (per-worker histograms, deterministic merge), so
 * 2^20+ lookup banks no longer serialise the prover here.
 */
Mle multiplicities(const Mle &q_lookup, const Mle &table_tag,
                   const std::array<Mle, 3> &table, size_t table_rows,
                   const std::array<const Mle *, 3> &wires);

/** Build h_f and h_t for the drawn challenges (two batched inversions). */
LookupOracles build_helper_oracles(const Mle &q_lookup,
                                   const Mle &table_tag,
                                   const std::array<Mle, 3> &table,
                                   const std::array<const Mle *, 3> &wires,
                                   const Mle &m, const ff::Fr &lambda,
                                   const ff::Fr &gamma);

/**
 * Direct witness check: every active lookup row's wire triple appears,
 * under the row's tag, among the first `table_rows` bank rows. This is
 * the front-door test mirroring Witness::satisfies_gates for lookup
 * gates.
 */
bool rows_satisfy(const Mle &q_lookup, const Mle &table_tag,
                  const std::array<Mle, 3> &table, size_t table_rows,
                  const std::array<const Mle *, 3> &wires);

}  // namespace zkspeed::lookup
