#include "loadgen/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <future>
#include <mutex>
#include <random>
#include <sstream>
#include <thread>

#include "obs/build_info.hpp"
#include "obs/export.hpp"  // json_escape
#include "obs/log.hpp"
#include "runtime/service.hpp"

namespace zkspeed::loadgen {

namespace {

using Clock = std::chrono::steady_clock;

/** 53-bit uniform in [0, 1) from the raw generator word (the std
 * distributions are implementation-defined; this is bit-stable). */
double
uniform01(std::mt19937_64 &rng)
{
    return double(rng() >> 11) * 0x1.0p-53;
}

std::string
fmt_double(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

[[noreturn]] void
fail(const std::string &msg)
{
    throw PlanError("loadgen plan: " + msg);
}

std::string
join_keys(const std::set<std::string> &keys)
{
    std::string out;
    for (const auto &k : keys) {
        if (!out.empty()) out += ", ";
        out += k;
    }
    return out;
}

double
parse_double_value(const std::string &where, const std::string &key,
                   const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || !std::isfinite(v)) {
        fail(where + ": key '" + key + "' wants a number, got '" + value +
             "'");
    }
    return v;
}

uint64_t
parse_u64_value(const std::string &where, const std::string &key,
                const std::string &value)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
        fail(where + ": key '" + key + "' wants an integer, got '" + value +
             "'");
    }
    return uint64_t(v);
}

/** `k:v,k:v` -> sorted LabelSet (sorted keys are the series identity). */
obs::LabelSet
parse_labels_value(const std::string &where, const std::string &key,
                   const std::string &value)
{
    obs::LabelSet out;
    std::stringstream ss(value);
    std::string pair;
    while (std::getline(ss, pair, ',')) {
        auto colon = pair.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= pair.size()) {
            fail(where + ": key '" + key + "' wants k:v[,k:v...], got '" +
                 value + "'");
        }
        out.emplace_back(pair.substr(0, colon), pair.substr(colon + 1));
    }
    std::sort(out.begin(), out.end());
    return out;
}

/** Strict rule-map check of one parsed directive line. */
void
check_keys(const std::string &where, const std::string &directive,
           const std::map<std::string, std::string> &kv)
{
    const auto &schema = plan_schema();
    const auto &known = schema.at(directive);
    for (const auto &[k, v] : kv) {
        if (known.count(k) == 0) {
            fail(where + ": unknown key '" + k + "' for directive '" +
                 directive + "' (recognised: " + join_keys(known) + ")");
        }
    }
}

const std::string &
require(const std::string &where,
        const std::map<std::string, std::string> &kv,
        const std::string &key)
{
    auto it = kv.find(key);
    if (it == kv.end()) fail(where + ": missing required key '" + key + "'");
    return it->second;
}

void
json_verdicts(std::string &out, const std::vector<obs::SloVerdict> &vs)
{
    out += "[";
    bool first = true;
    for (const auto &v : vs) {
        if (!first) out += ",";
        first = false;
        out += "{\"objective\":\"" + obs::json_escape(v.objective) + "\"";
        out += ",\"pass\":";
        out += v.pass ? "true" : "false";
        out += ",\"value\":" + fmt_double(v.value);
        out += ",\"threshold\":" + fmt_double(v.threshold);
        out += ",\"budget_burn\":" + fmt_double(v.budget_burn);
        out += ",\"samples\":" + std::to_string(v.samples);
        out += "}";
    }
    out += "]";
}

}  // namespace

double
Profile::qps_for_window(size_t w, size_t num_windows) const
{
    switch (kind) {
        case Kind::constant: return qps;
        case Kind::ramp: {
            if (num_windows <= 1) return qps1;
            double t = double(w) / double(num_windows - 1);
            return qps0 + (qps1 - qps0) * t;
        }
        case Kind::step: {
            if (steps <= 1 || num_windows == 0) return qps0;
            size_t plateau =
                std::min(steps - 1, w * steps / num_windows);
            return qps0 +
                   (qps1 - qps0) * double(plateau) / double(steps - 1);
        }
    }
    return qps;
}

const char *
Profile::kind_name() const
{
    switch (kind) {
        case Kind::constant: return "constant";
        case Kind::ramp: return "ramp";
        case Kind::step: return "step";
    }
    return "constant";
}

void
Plan::validate() const
{
    if (windows == 0) fail("run: windows must be >= 1");
    if (!(window_ms > 0)) fail("run: window_ms must be > 0");
    if (warmup_windows >= windows) {
        fail("run: warmup_windows must leave at least one measured window");
    }
    if (!(verify_fraction >= 0 && verify_fraction <= 1)) {
        fail("run: verify_fraction must be in [0, 1]");
    }
    if (!(profile.qps >= 0) || !(profile.qps0 >= 0) || !(profile.qps1 >= 0)) {
        fail("profile: qps levels must be >= 0");
    }
    if (profile.steps == 0) fail("profile: steps must be >= 1");
    for (const auto &m : mix) {
        if (m.family.empty()) fail("mix: family must be non-empty");
        if (!(m.weight > 0)) {
            fail("mix '" + m.family + "': weight must be > 0");
        }
    }
    for (const auto &o : objectives) {
        if (o.kind == obs::SloObjective::Kind::quantile) {
            if (!(o.q > 0 && o.q < 1)) {
                fail("slo '" + o.name + "': q must be in (0, 1)");
            }
        }
        if (!(o.threshold >= 0)) {
            fail("slo '" + o.name + "': threshold must be >= 0");
        }
    }
}

const std::map<std::string, std::set<std::string>> &
plan_schema()
{
    static const std::map<std::string, std::set<std::string>> schema = {
        {"mix", {"family", "weight", "log_size", "seed"}},
        {"profile", {"kind", "qps", "qps0", "qps1", "steps"}},
        {"run",
         {"windows", "window_ms", "warmup_windows", "seed",
          "verify_fraction"}},
        {"slo",
         {"name", "kind", "series", "labels", "q", "threshold_ms", "total",
          "total_labels", "errors", "errors_labels", "threshold"}},
    };
    return schema;
}

Plan
parse_plan(const std::string &text)
{
    Plan plan;
    std::stringstream lines(text);
    std::string line;
    size_t lineno = 0;
    while (std::getline(lines, line)) {
        ++lineno;
        if (auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        std::stringstream toks(line);
        std::string directive;
        if (!(toks >> directive)) continue;  // blank / comment-only
        const std::string where = "line " + std::to_string(lineno);

        const auto &schema = plan_schema();
        if (schema.count(directive) == 0) {
            std::set<std::string> names;
            for (const auto &[d, keys] : schema) names.insert(d);
            fail(where + ": unknown directive '" + directive +
                 "' (recognised: " + join_keys(names) + ")");
        }

        std::map<std::string, std::string> kv;
        std::string tok;
        while (toks >> tok) {
            auto eq = tok.find('=');
            if (eq == std::string::npos || eq == 0) {
                fail(where + ": expected key=value, got '" + tok + "'");
            }
            std::string key = tok.substr(0, eq);
            if (!kv.emplace(key, tok.substr(eq + 1)).second) {
                fail(where + ": duplicate key '" + key + "'");
            }
        }
        check_keys(where, directive, kv);

        if (directive == "mix") {
            MixEntry m;
            m.family = require(where, kv, "family");
            if (auto it = kv.find("weight"); it != kv.end()) {
                m.weight = parse_double_value(where, "weight", it->second);
            }
            if (auto it = kv.find("log_size"); it != kv.end()) {
                m.log_size =
                    size_t(parse_u64_value(where, "log_size", it->second));
            }
            if (auto it = kv.find("seed"); it != kv.end()) {
                m.seed = parse_u64_value(where, "seed", it->second);
            }
            plan.mix.push_back(std::move(m));
        } else if (directive == "profile") {
            if (auto it = kv.find("kind"); it != kv.end()) {
                if (it->second == "constant") {
                    plan.profile.kind = Profile::Kind::constant;
                } else if (it->second == "ramp") {
                    plan.profile.kind = Profile::Kind::ramp;
                } else if (it->second == "step") {
                    plan.profile.kind = Profile::Kind::step;
                } else {
                    fail(where + ": unknown profile kind '" + it->second +
                         "' (recognised: constant, ramp, step)");
                }
            }
            if (auto it = kv.find("qps"); it != kv.end()) {
                plan.profile.qps =
                    parse_double_value(where, "qps", it->second);
            }
            if (auto it = kv.find("qps0"); it != kv.end()) {
                plan.profile.qps0 =
                    parse_double_value(where, "qps0", it->second);
            }
            if (auto it = kv.find("qps1"); it != kv.end()) {
                plan.profile.qps1 =
                    parse_double_value(where, "qps1", it->second);
            }
            if (auto it = kv.find("steps"); it != kv.end()) {
                plan.profile.steps =
                    size_t(parse_u64_value(where, "steps", it->second));
            }
        } else if (directive == "run") {
            if (auto it = kv.find("windows"); it != kv.end()) {
                plan.windows =
                    size_t(parse_u64_value(where, "windows", it->second));
            }
            if (auto it = kv.find("window_ms"); it != kv.end()) {
                plan.window_ms =
                    parse_double_value(where, "window_ms", it->second);
            }
            if (auto it = kv.find("warmup_windows"); it != kv.end()) {
                plan.warmup_windows = size_t(
                    parse_u64_value(where, "warmup_windows", it->second));
            }
            if (auto it = kv.find("seed"); it != kv.end()) {
                plan.seed = parse_u64_value(where, "seed", it->second);
            }
            if (auto it = kv.find("verify_fraction"); it != kv.end()) {
                plan.verify_fraction = parse_double_value(
                    where, "verify_fraction", it->second);
            }
        } else {  // slo
            obs::SloObjective o;
            o.name = require(where, kv, "name");
            std::string kind = "quantile";
            if (auto it = kv.find("kind"); it != kv.end()) kind = it->second;
            if (kind == "quantile") {
                o.kind = obs::SloObjective::Kind::quantile;
                o.series.name = require(where, kv, "series");
                if (auto it = kv.find("labels"); it != kv.end()) {
                    o.series.labels =
                        parse_labels_value(where, "labels", it->second);
                }
                if (auto it = kv.find("q"); it != kv.end()) {
                    o.q = parse_double_value(where, "q", it->second);
                }
                o.threshold = parse_double_value(
                    where, "threshold_ms",
                    require(where, kv, "threshold_ms"));
            } else if (kind == "error_ratio") {
                o.kind = obs::SloObjective::Kind::error_ratio;
                o.series.name = require(where, kv, "total");
                if (auto it = kv.find("total_labels"); it != kv.end()) {
                    o.series.labels = parse_labels_value(
                        where, "total_labels", it->second);
                }
                o.errors.name = require(where, kv, "errors");
                if (auto it = kv.find("errors_labels"); it != kv.end()) {
                    o.errors.labels = parse_labels_value(
                        where, "errors_labels", it->second);
                }
                o.threshold = parse_double_value(
                    where, "threshold", require(where, kv, "threshold"));
            } else {
                fail(where + ": unknown slo kind '" + kind +
                     "' (recognised: quantile, error_ratio)");
            }
            plan.objectives.push_back(std::move(o));
        }
    }
    plan.validate();
    return plan;
}

std::vector<Arrival>
build_schedule(const Plan &plan, const std::vector<double> &weights)
{
    if (weights.empty()) fail("schedule: no frame pools / weights");
    double total_weight = 0;
    std::vector<double> cumulative;
    cumulative.reserve(weights.size());
    for (double w : weights) {
        if (!(w > 0)) fail("schedule: every pool weight must be > 0");
        total_weight += w;
        cumulative.push_back(total_weight);
    }

    std::mt19937_64 rng(plan.seed * 0x9e3779b97f4a7c15ULL + 1);
    std::vector<Arrival> out;
    for (size_t w = 0; w < plan.windows; ++w) {
        double rate = plan.profile.qps_for_window(w, plan.windows);
        if (!(rate > 0)) continue;
        // Independent per-window Poisson process so ramp/step levels
        // switch exactly at the window boundary.
        double t = double(w) * plan.window_ms;
        const double end = double(w + 1) * plan.window_ms;
        for (;;) {
            double u = uniform01(rng);
            t += -std::log(1.0 - u) * 1000.0 / rate;  // exp gap, ms
            if (t >= end) break;
            Arrival a;
            a.t_ms = t;
            double pick = uniform01(rng) * total_weight;
            a.pool = uint32_t(
                std::lower_bound(cumulative.begin(), cumulative.end(),
                                 pick) -
                cumulative.begin());
            if (a.pool >= weights.size()) {
                a.pool = uint32_t(weights.size() - 1);
            }
            a.verify = uniform01(rng) < plan.verify_fraction;
            out.push_back(a);
        }
    }
    return out;
}

std::string
Report::render_json() const
{
    std::string out = "{\"tool\":\"zkspeed_loadgen\"";
    out += ",\"build\":" + obs::build_info_json_text(-1);
    out += ",\"seed\":" + std::to_string(plan.seed);
    out += ",\"profile\":{\"kind\":\"";
    out += plan.profile.kind_name();
    out += "\",\"qps\":" + fmt_double(plan.profile.qps);
    out += ",\"qps0\":" + fmt_double(plan.profile.qps0);
    out += ",\"qps1\":" + fmt_double(plan.profile.qps1);
    out += ",\"steps\":" + std::to_string(plan.profile.steps) + "}";
    out += ",\"windows\":" + std::to_string(plan.windows);
    out += ",\"window_ms\":" + fmt_double(plan.window_ms);
    out += ",\"warmup_windows\":" + std::to_string(plan.warmup_windows);
    out += ",\"verify_fraction\":" + fmt_double(plan.verify_fraction);

    out += ",\"mix\":[";
    bool first = true;
    for (const auto &m : plan.mix) {
        if (!first) out += ",";
        first = false;
        out += "{\"family\":\"" + obs::json_escape(m.family) + "\"";
        out += ",\"weight\":" + fmt_double(m.weight);
        out += ",\"log_size\":" + std::to_string(m.log_size);
        out += ",\"seed\":" + std::to_string(m.seed) + "}";
    }
    out += "]";

    out += ",\"objectives\":[";
    first = true;
    for (const auto &o : plan.objectives) {
        if (!first) out += ",";
        first = false;
        out += "{\"name\":\"" + obs::json_escape(o.name) + "\"";
        out += ",\"kind\":\"";
        out += o.kind == obs::SloObjective::Kind::quantile ? "quantile"
                                                           : "error_ratio";
        out += "\",\"detail\":\"" + obs::json_escape(o.describe()) + "\"";
        out += ",\"threshold\":" + fmt_double(o.threshold);
        if (o.kind == obs::SloObjective::Kind::quantile) {
            out += ",\"q\":" + fmt_double(o.q);
        }
        out += "}";
    }
    out += "]";

    out += ",\"window_series\":[";
    first = true;
    for (const auto &w : windows) {
        if (!first) out += ",";
        first = false;
        out += "{\"index\":" + std::to_string(w.index);
        out += ",\"start_s\":" + fmt_double(w.start_s);
        out += ",\"dur_s\":" + fmt_double(w.dur_s);
        out += ",\"qps_target\":" + fmt_double(w.qps_target);
        out += ",\"qps_offered\":" + fmt_double(w.qps_offered);
        out += ",\"qps_achieved\":" + fmt_double(w.qps_achieved);
        out += ",\"offered\":" + std::to_string(w.offered);
        out += ",\"completed_ok\":" + std::to_string(w.completed_ok);
        out += ",\"errors\":" + std::to_string(w.errors);
        out += ",\"shed\":" + std::to_string(w.shed);
        out += ",\"errors_per_s\":" + fmt_double(w.errors_per_s);
        out += ",\"p50_ms\":" + fmt_double(w.p50_ms);
        out += ",\"p90_ms\":" + fmt_double(w.p90_ms);
        out += ",\"p99_ms\":" + fmt_double(w.p99_ms);
        out += ",\"p999_ms\":" + fmt_double(w.p999_ms);
        out += ",\"counter_resets\":" + std::to_string(w.counter_resets);
        out += ",\"slo_ok\":";
        out += w.slo_ok ? "true" : "false";
        out += ",\"verdicts\":";
        json_verdicts(out, w.verdicts);
        out += "}";
    }
    out += "]";

    out += ",\"totals\":{\"offered\":" + std::to_string(offered_total);
    out += ",\"completed\":" + std::to_string(completed_total);
    out += ",\"errors\":" + std::to_string(errors_total);
    out += ",\"shed\":" + std::to_string(shed_total);
    out += ",\"offered_qps\":" + fmt_double(offered_qps);
    out += ",\"achieved_qps\":" + fmt_double(achieved_qps) + "}";

    out += ",\"knee\":{\"found\":";
    out += knee_found ? "true" : "false";
    out += ",\"window\":" + std::to_string(knee_window);
    out += ",\"qps_offered\":" + fmt_double(knee_qps_offered);
    out += ",\"qps_achieved\":" + fmt_double(knee_qps_achieved) + "}";

    out += ",\"slo_ok\":";
    out += slo_ok ? "true" : "false";
    out += "}\n";
    return out;
}

LoadGen::LoadGen(runtime::ProofService &service,
                 std::vector<FramePool> pools, Plan plan)
    : service_(service), pools_(std::move(pools)), plan_(std::move(plan))
{
}

Report
LoadGen::run(std::FILE *stream)
{
    plan_.validate();
    if (pools_.empty()) fail("run: no frame pools");
    for (const auto &p : pools_) {
        if (p.prove_frames.empty()) {
            fail("run: pool '" + p.name + "' has no prove frames");
        }
        if (!(p.weight > 0)) {
            fail("run: pool '" + p.name + "' weight must be > 0");
        }
    }

    auto &reg = obs::MetricsRegistry::global();
    const std::string svc = service_.instance_label();
    const obs::LabelSet svc_labels = {{"service", svc}};
    const obs::MetricId offered_id =
        reg.counter("zkspeed_loadgen_offered_total", svc_labels,
                    "Load-generator arrivals issued (submitted or shed)");
    const obs::MetricId shed_id = reg.counter(
        "zkspeed_loadgen_shed_total", svc_labels,
        "Load-generator arrivals dropped by queue backpressure");
    const obs::MetricId target_id =
        reg.gauge("zkspeed_loadgen_target_qps", svc_labels,
                  "Offered-load target of the current window");

    std::vector<double> weights;
    weights.reserve(pools_.size());
    for (const auto &p : pools_) weights.push_back(p.weight);
    const std::vector<Arrival> schedule = build_schedule(plan_, weights);
    const obs::SloEvaluator evaluator(plan_.objectives);

    // The per-window latency / error deltas come from the service's own
    // job series, scoped to this instance.
    const obs::SeriesSelector ok_sel{
        "zkspeed_job_latency_ms",
        {{"service", svc}, {"status", "ok"}}};
    const obs::SeriesSelector all_sel{"zkspeed_job_latency_ms",
                                      {{"service", svc}}};

    // Collector thread: harvests response futures off the submit path
    // so a slow completion never delays the next arrival.
    std::mutex fut_mu;
    std::condition_variable fut_cv;
    std::deque<std::future<runtime::JobResponse>> futures;
    bool submit_done = false;
    std::atomic<uint64_t> completed_ok{0}, completed_err{0};
    std::thread collector([&] {
        for (;;) {
            std::future<runtime::JobResponse> f;
            {
                std::unique_lock<std::mutex> lk(fut_mu);
                fut_cv.wait(lk, [&] {
                    return submit_done || !futures.empty();
                });
                if (futures.empty()) return;  // submit_done and drained
                f = std::move(futures.front());
                futures.pop_front();
            }
            runtime::JobResponse resp = f.get();
            if (resp.ok()) {
                completed_ok.fetch_add(1, std::memory_order_relaxed);
            } else {
                completed_err.fetch_add(1, std::memory_order_relaxed);
            }
        }
    });

    Report rep;
    rep.plan = plan_;
    std::vector<size_t> prove_cursor(pools_.size(), 0);
    std::vector<size_t> verify_cursor(pools_.size(), 0);
    uint64_t shed = 0;
    size_t next_arrival = 0;

    const auto t0 = Clock::now();
    auto to_tp = [&](double ms) {
        return t0 + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(ms));
    };

    obs::Snapshot prev_snap = reg.snapshot();
    auto prev_time = t0;

    for (size_t w = 0; w < plan_.windows; ++w) {
        const double target =
            plan_.profile.qps_for_window(w, plan_.windows);
        reg.set(target_id, target);
        const auto window_end = to_tp(double(w + 1) * plan_.window_ms);
        uint64_t offered_w = 0;
        const uint64_t shed_before = shed;

        for (;;) {
            const auto now = Clock::now();
            if (now >= window_end) break;
            if (next_arrival < schedule.size()) {
                const Arrival &ar = schedule[next_arrival];
                const auto due = to_tp(ar.t_ms);
                if (due <= now) {
                    FramePool &pool = pools_[ar.pool];
                    const bool verify =
                        ar.verify && !pool.verify_frames.empty();
                    const auto &src = verify ? pool.verify_frames
                                             : pool.prove_frames;
                    auto &cursor = verify ? verify_cursor[ar.pool]
                                          : prove_cursor[ar.pool];
                    const auto &frame = src[cursor++ % src.size()];
                    ++next_arrival;
                    ++offered_w;
                    reg.add(offered_id);
                    auto fut = service_.try_submit(frame);
                    if (!fut) {
                        ++shed;
                        reg.add(shed_id);
                        continue;
                    }
                    {
                        std::lock_guard<std::mutex> lk(fut_mu);
                        futures.push_back(std::move(*fut));
                    }
                    fut_cv.notify_one();
                    continue;
                }
                std::this_thread::sleep_until(std::min(due, window_end));
                continue;
            }
            std::this_thread::sleep_until(window_end);
        }

        const auto snap_time = Clock::now();
        obs::Snapshot snap = reg.snapshot();
        const double dur_s =
            std::chrono::duration<double>(snap_time - prev_time).count();
        const auto delta =
            obs::WindowDelta::between(snap, prev_snap, dur_s);
        prev_snap = std::move(snap);
        prev_time = snap_time;

        WindowReport wr;
        wr.index = w;
        wr.start_s = double(w) * plan_.window_ms / 1000.0;
        wr.dur_s = dur_s;
        wr.qps_target = target;
        wr.offered = offered_w;
        wr.shed = shed - shed_before;
        wr.completed_ok = delta.total(ok_sel);
        const uint64_t all = delta.total(all_sel);
        wr.errors = all > wr.completed_ok ? all - wr.completed_ok : 0;
        if (dur_s > 0) {
            wr.qps_offered = double(offered_w) / dur_s;
            wr.qps_achieved = double(wr.completed_ok) / dur_s;
            wr.errors_per_s = double(wr.errors) / dur_s;
        }
        const auto hist = delta.merged_histogram(ok_sel);
        if (hist.count > 0) {
            wr.p50_ms = hist.quantile(0.50);
            wr.p90_ms = hist.quantile(0.90);
            wr.p99_ms = hist.quantile(0.99);
            wr.p999_ms = hist.quantile(0.999);
        }
        wr.counter_resets = delta.counter_resets;
        wr.verdicts = evaluator.evaluate(delta);
        wr.slo_ok = obs::SloEvaluator::all_pass(wr.verdicts);

        {
            std::string failing;
            for (const auto &v : wr.verdicts) {
                if (v.pass) continue;
                failing += failing.empty() ? " FAIL[" : ",";
                failing += v.objective;
            }
            if (!failing.empty()) failing += "]";
            char line[256];
            std::snprintf(
                line, sizeof(line),
                "[loadgen %s] w%02zu target=%.1fqps offered=%.1f "
                "achieved=%.1f p50=%.2fms p99=%.2fms err/s=%.2f "
                "shed=%llu SLO=%s%s",
                svc.c_str(), w, target, wr.qps_offered, wr.qps_achieved,
                wr.p50_ms, wr.p99_ms, wr.errors_per_s,
                (unsigned long long)wr.shed, wr.slo_ok ? "ok" : "BREACH",
                failing.c_str());
            // Same line to the console stream and the structured ring,
            // so a crash's flight snapshot carries the recent windows.
            if (stream != nullptr) {
                std::fprintf(stream, "%s\n", line);
                std::fflush(stream);
            }
            obs::log_event(wr.slo_ok ? obs::LogLevel::info
                                     : obs::LogLevel::warn,
                           "loadgen", line);
        }
        rep.windows.push_back(std::move(wr));
    }

    // Drain: wake the collector, let it empty the deque, join.
    {
        std::lock_guard<std::mutex> lk(fut_mu);
        submit_done = true;
    }
    fut_cv.notify_all();
    collector.join();

    rep.offered_total = next_arrival;
    rep.completed_total = completed_ok.load();
    rep.errors_total = completed_err.load();
    rep.shed_total = shed;
    const double run_s =
        double(plan_.windows) * plan_.window_ms / 1000.0;
    if (run_s > 0) {
        rep.offered_qps = double(rep.offered_total) / run_s;
        rep.achieved_qps = double(rep.completed_total) / run_s;
    }

    rep.slo_ok = true;
    for (const auto &w : rep.windows) {
        if (w.index < plan_.warmup_windows) continue;
        if (!w.slo_ok) rep.slo_ok = false;
        if (w.offered > 0 && w.slo_ok) {
            rep.knee_found = true;
            rep.knee_window = w.index;
            rep.knee_qps_offered = w.qps_offered;
            rep.knee_qps_achieved = w.qps_achieved;
        }
    }
    return rep;
}

}  // namespace zkspeed::loadgen
