/**
 * @file
 * Seeded open-loop load generator with windowed SLO evaluation.
 *
 * The generator replays a weighted mix of pre-encoded wire frames
 * against a live `runtime::ProofService` at a target QPS: arrivals are
 * exponentially distributed (Poisson traffic) under a constant, ramp,
 * or stepped offered-load profile, and the whole schedule is derived
 * up-front from one seed so two runs with the same plan offer the same
 * instants, the same pool picks, and the same prove/verify split.
 * Open-loop means arrivals do not wait for completions: when the
 * service queue is full the job is *shed* (`try_submit` backpressure)
 * and counted, which is what makes the over-capacity knee visible
 * instead of silently coordinating away (closed-loop generators
 * self-throttle and hide saturation).
 *
 * Every window the generator snapshots the global metrics registry,
 * diffs it through `obs::WindowDelta`, evaluates the plan's SLO
 * objectives, streams a human-readable line, and records a
 * `WindowReport`. The final `Report` carries the per-window series,
 * offered vs achieved QPS, a knee-of-curve capacity estimate (last
 * window whose verdicts all pass — meaningful under a ramp profile),
 * and renders the machine-readable `SLO_report.json`.
 *
 * Plans are parsed from a small line-oriented text format with strict
 * rule-map validation (every key checked against the directive's
 * schema; unknown directives and keys are rejected by name — see
 * `plan_schema`). DESIGN.md §11 documents the format.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/window.hpp"

namespace zkspeed::runtime {
class ProofService;
}

namespace zkspeed::loadgen {

/** Plan-text / plan-structure validation failure (names the culprit). */
class PlanError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One weighted scenario family in the traffic mix. */
struct MixEntry {
    std::string family;    ///< scenarios::Registry family name
    double weight = 1.0;   ///< relative arrival probability
    size_t log_size = 4;   ///< circuit size (log2 gates)
    uint64_t seed = 1;     ///< instance seed within the family
};

/** Offered-load profile: target QPS as a function of the window. */
struct Profile {
    enum class Kind : uint8_t { constant = 0, ramp = 1, step = 2 };

    Kind kind = Kind::constant;
    double qps = 4.0;    ///< constant profile level
    double qps0 = 1.0;   ///< ramp/step start
    double qps1 = 8.0;   ///< ramp/step end
    size_t steps = 4;    ///< step profile plateau count

    /** Target QPS for window `w` of `num_windows`. */
    double qps_for_window(size_t w, size_t num_windows) const;
    const char *kind_name() const;
};

/** A full load-generation plan (parse_plan output / bench input). */
struct Plan {
    std::vector<MixEntry> mix;
    std::vector<obs::SloObjective> objectives;
    Profile profile;
    size_t windows = 8;
    double window_ms = 500.0;
    /** Leading windows excluded from slo_ok / the knee estimate. */
    size_t warmup_windows = 0;
    uint64_t seed = 1;
    /** Fraction of arrivals issued as VERIFY traffic. */
    double verify_fraction = 0.0;

    /** Throws PlanError on out-of-range numbers. */
    void validate() const;
};

/**
 * The plan text schema: directive -> recognised keys. Exposed so tests
 * can assert the parser exercises every field and rejects everything
 * else (rule-map validation; SNIPPETS.md Snippet 1 idiom).
 */
const std::map<std::string, std::set<std::string>> &plan_schema();

/**
 * Parse the line-oriented plan format:
 *
 *     mix family=msm_heavy weight=3 log_size=5 seed=7
 *     profile kind=ramp qps0=2 qps1=24
 *     run windows=10 window_ms=500 seed=42 verify_fraction=0.25
 *     slo name=prove-p99 kind=quantile series=zkspeed_job_latency_ms \
 *         labels=class:prove,status:ok q=0.99 threshold_ms=250
 *
 * `#` starts a comment; unknown directives/keys throw PlanError naming
 * the offender and the recognised set.
 */
Plan parse_plan(const std::string &text);

/** One scheduled arrival, offset from run start. */
struct Arrival {
    double t_ms = 0;
    uint32_t pool = 0;    ///< index into the frame pools / weights
    bool verify = false;  ///< issue from the pool's verify frames
};

/**
 * Derive the deterministic arrival schedule: per-window Poisson
 * processes at `profile.qps_for_window`, pool picks by cumulative
 * weight, verify flags by `verify_fraction` — all from `plan.seed`
 * via explicit 53-bit uniforms (no implementation-defined std
 * distributions, so the schedule is bit-identical across platforms).
 */
std::vector<Arrival> build_schedule(const Plan &plan,
                                    const std::vector<double> &weights);

/** Pre-encoded wire frames for one mix entry (scenario family). */
struct FramePool {
    std::string name;
    double weight = 1.0;
    /** Encoded PROVE requests, cycled through in order. */
    std::vector<std::vector<uint8_t>> prove_frames;
    /** Encoded VERIFY requests (may be empty: verify arrivals then
     * downgrade to prove without perturbing the schedule). */
    std::vector<std::vector<uint8_t>> verify_frames;
};

/** One window's measurements + verdicts. */
struct WindowReport {
    size_t index = 0;
    double start_s = 0;     ///< window start, seconds from run start
    double dur_s = 0;       ///< measured snapshot-to-snapshot seconds
    double qps_target = 0;  ///< profile's offered-load target
    double qps_offered = 0; ///< arrivals issued / dur_s
    double qps_achieved = 0;///< jobs completed ok / dur_s
    uint64_t offered = 0;   ///< arrivals issued (submitted or shed)
    uint64_t completed_ok = 0;
    uint64_t errors = 0;    ///< non-ok terminal jobs in the window
    uint64_t shed = 0;      ///< arrivals dropped by queue backpressure
    double errors_per_s = 0;
    double p50_ms = 0, p90_ms = 0, p99_ms = 0, p999_ms = 0;
    uint64_t counter_resets = 0;
    std::vector<obs::SloVerdict> verdicts;
    bool slo_ok = true;     ///< every verdict passed
};

/** Whole-run result; `render_json` is the SLO_report.json document. */
struct Report {
    Plan plan;
    std::vector<WindowReport> windows;
    uint64_t offered_total = 0;
    uint64_t completed_total = 0;
    uint64_t errors_total = 0;
    uint64_t shed_total = 0;
    double offered_qps = 0;   ///< whole-run offered rate
    double achieved_qps = 0;  ///< whole-run completion rate
    /** Every post-warmup window passed its verdicts. */
    bool slo_ok = true;
    /** Capacity knee: last post-warmup window with traffic whose
     * verdicts all pass (under a ramp, the capacity estimate). */
    bool knee_found = false;
    size_t knee_window = 0;
    double knee_qps_offered = 0;
    double knee_qps_achieved = 0;

    std::string render_json() const;
};

/**
 * Drive one plan against a live service. The generator owns a
 * collector thread that harvests response futures off the submit path
 * so a slow completion never delays the next arrival.
 */
class LoadGen
{
  public:
    /** `pools[i]` serves arrivals with `Arrival::pool == i`. */
    LoadGen(runtime::ProofService &service, std::vector<FramePool> pools,
            Plan plan);

    LoadGen(const LoadGen &) = delete;
    LoadGen &operator=(const LoadGen &) = delete;

    /**
     * Run the plan to completion, streaming one line per window to
     * `stream` (nullptr = silent) and draining every in-flight job
     * before returning. Throws PlanError on an invalid plan/pools.
     */
    Report run(std::FILE *stream = nullptr);

  private:
    runtime::ProofService &service_;
    std::vector<FramePool> pools_;
    Plan plan_;
};

}  // namespace zkspeed::loadgen
