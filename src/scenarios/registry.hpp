/**
 * @file
 * The scenario registry: every workload family the conformance harness
 * knows how to generate, honest and adversarial, behind one
 * name-indexed factory.
 *
 * A Family couples a builder with its declared expected Outcome; the
 * conformance suite (tests/test_scenarios.cpp) enumerates the registry
 * and drives every family end to end through prove -> wire ->
 * ProofService -> BatchVerifier -> sim replay, so adding a Family here
 * is all it takes to put a new workload under cross-layer test. See
 * DESIGN.md Section 7 for the how-to.
 */
#pragma once

#include <vector>

#include "scenarios/scenario.hpp"

namespace zkspeed::scenarios {

/** One registered workload family. */
struct Family {
    std::string name;
    std::string description;
    Outcome expected = Outcome::accept;
    /** Expand a Spec (whose name must match) into concrete material. */
    std::function<Instance(const Spec &)> build;

    bool adversarial() const { return expected != Outcome::accept; }
};

class Registry
{
  public:
    /** The process-wide registry holding every built-in family. */
    static const Registry &global();

    const std::vector<Family> &families() const { return families_; }
    size_t size() const { return families_.size(); }

    /** @return nullptr when no family carries that name. */
    const Family *find(const std::string &name) const;

    /**
     * Expand a Spec through its family builder.
     * @throws std::out_of_range on an unregistered name.
     */
    Instance build(const Spec &spec) const;

    std::vector<std::string> names() const;

    /**
     * One Spec per family at its default knobs, every seed derived from
     * `seed`: the canonical conformance sweep. `log_size` floors each
     * circuit (families may exceed it).
     */
    std::vector<Spec> default_suite(uint64_t seed,
                                    size_t log_size = 4) const;

  private:
    Registry();

    std::vector<Family> families_;
};

}  // namespace zkspeed::scenarios
