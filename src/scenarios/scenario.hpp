/**
 * @file
 * Core scenario types: a Spec names and parameterises one workload
 * draw, an Instance is the concrete circuit + witness + adversarial
 * transforms a Spec expands to, and an Outcome declares what every
 * verification layer must conclude about it.
 *
 * The expected-outcome contract (DESIGN.md Section 7): every scenario
 * flows through the same pipeline — prove, serialize, ProofService,
 * BatchVerifier, sim replay — and all layers must agree:
 *
 *   accept          honest circuit; proof accepted by the direct,
 *                   service and batched verification paths alike.
 *   reject_witness  the witness violates its own gates; the prover
 *                   front door (ProofService witness check) refuses to
 *                   prove it, so no proof exists to disagree about.
 *   reject_proof    a well-formed but false proof (tampered bytes or
 *                   wrong public inputs); every verification path
 *                   rejects it, and batch bisection isolates it without
 *                   dragging honest batch-mates down.
 *   reject_frame    the wire frame itself is malformed; strict decoding
 *                   rejects it before any cryptography runs.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hyperplonk/circuit.hpp"

namespace zkspeed::scenarios {

/** What every verification layer must conclude about a scenario. */
enum class Outcome : uint8_t {
    accept = 0,
    reject_witness = 1,
    reject_proof = 2,
    reject_frame = 3,
};

const char *to_string(Outcome o);

/**
 * One workload draw: a registered family name plus the deterministic
 * parameters that expand it. Two equal Specs always expand to
 * byte-identical circuits and witnesses.
 */
struct Spec {
    /** Registered family name (scenarios::Registry::names()). */
    std::string name;
    /** Floor on the circuit size: at least 2^log_size gates. */
    size_t log_size = 4;
    /** Seed for every random draw inside the family builder. */
    uint64_t seed = 1;
    /** Family-specific dials (chain length, tree depth, bit widths...). */
    std::map<std::string, uint64_t> knobs;

    uint64_t
    knob(const std::string &key, uint64_t fallback) const
    {
        auto it = knobs.find(key);
        return it == knobs.end() ? fallback : it->second;
    }

    /** One-line identity for failure messages and logs. */
    std::string describe() const;
};

/**
 * A Spec expanded to concrete material. Honest scenarios carry only the
 * circuit and witness; adversarial ones additionally carry the
 * transform that injects the fault downstream (tampered proof bytes,
 * forged public inputs, or a corrupted wire frame).
 */
struct Instance {
    Spec spec;
    Outcome expected = Outcome::accept;
    hyperplonk::CircuitIndex circuit;
    hyperplonk::Witness witness;

    /**
     * reject_proof families: map honest serialized proof bytes to the
     * adversarial payload presented to every verifier. Must return
     * bytes that still pass strict proof decoding (a payload that fails
     * decoding belongs to a reject_frame family instead).
     */
    std::function<std::vector<uint8_t>(std::vector<uint8_t>)> tamper_proof;

    /** reject_proof families may instead forge the claimed publics. */
    std::function<void(std::vector<ff::Fr> &)> tamper_publics;

    /**
     * reject_frame families: corrupt an encoded VERIFY wire frame
     * (truncation, bad magic, oversized length prefix...).
     */
    std::function<std::vector<uint8_t>(std::vector<uint8_t>)> tamper_frame;

    bool adversarial() const { return expected != Outcome::accept; }
};

}  // namespace zkspeed::scenarios
