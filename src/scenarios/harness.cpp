#include "scenarios/harness.hpp"

#include <chrono>
#include <cstdlib>

#include "hyperplonk/serialize.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/http.hpp"
#include "obs/trace.hpp"
#include "scenarios/registry.hpp"
#include "sim/tech.hpp"

namespace zkspeed::scenarios {

using runtime::JobResponse;
using runtime::JobStatus;
using runtime::VerifyRequest;
namespace wire = runtime::wire;

Harness::Harness(HarnessConfig cfg)
    : cfg_(cfg),
      service_(cfg.service),
      client_keys_(cfg.service.key_cache_capacity, cfg.service.srs_seed),
      trace_min_ts_us_(
          obs::TraceRecorder::to_us(std::chrono::steady_clock::now()))
{
    // Crash forensics opt-in for scenario drivers: when
    // ZKSPEED_FLIGHT_OUT names a path, keep a flight snapshot there
    // (proof_server installs unconditionally; the harness is library
    // code embedded in tests, so it only installs when asked).
    if (const char *fo = std::getenv("ZKSPEED_FLIGHT_OUT");
        fo != nullptr && *fo != '\0' && !obs::flight::installed()) {
        obs::flight::install();
    }
}

ScenarioResult
Harness::run(const Instance &inst)
{
    ScenarioResult res;
    res.spec = inst.spec;
    res.expected = inst.expected;

    auto fail = [&res](std::string why) {
        res.conformant = false;
        res.detail = std::move(why);
        return res;
    };

    // ------------------------------------------------------------------
    // 1. PROVE through the service. Unsatisfiable witnesses must be
    //    refused here and never reach a verifier.
    // ------------------------------------------------------------------
    runtime::JobRequest prove_req;
    prove_req.request_id = inst.spec.seed;
    prove_req.circuit = inst.circuit;
    prove_req.witness = inst.witness;
    JobResponse proved = service_.submit(prove_req).get();

    if (inst.expected == Outcome::reject_witness) {
        res.observed = proved.status == JobStatus::unsatisfiable
                           ? Outcome::reject_witness
                           : Outcome::accept;
        // Mirror the service front door: a witness is bad when it
        // violates its gates, its copy constraints OR its lookups.
        res.conformant =
            res.observed == Outcome::reject_witness &&
            !(inst.witness.satisfies_gates(inst.circuit) &&
              inst.witness.satisfies_wiring(inst.circuit) &&
              inst.witness.satisfies_lookups(inst.circuit));
        if (!res.conformant) {
            res.detail = "corrupted witness was not refused at the "
                         "proving front door (status " +
                         std::string(to_string(proved.status)) + ")";
        }
        return res;
    }
    if (!proved.ok()) {
        return fail("prove failed: " + proved.error);
    }

    // ------------------------------------------------------------------
    // 2. Client-side vk (same simulated SRS ceremony as the service)
    //    and the adversarially transformed material.
    // ------------------------------------------------------------------
    auto keys = client_keys_.get_or_create(inst.circuit).first;
    std::vector<ff::Fr> publics = inst.witness.public_inputs(inst.circuit);
    if (inst.tamper_publics) inst.tamper_publics(publics);
    res.presented_proof = inst.tamper_proof
                              ? inst.tamper_proof(proved.proof)
                              : proved.proof;

    // ------------------------------------------------------------------
    // 3. Direct and deferred verification.
    // ------------------------------------------------------------------
    auto decoded = hyperplonk::serde::deserialize_proof(res.presented_proof);
    if (!decoded.has_value()) {
        return fail("presented proof failed strict decoding; proof "
                    "tampering must stay decodable (use a frame family "
                    "for undecodable payloads)");
    }
    res.direct_verdict = hyperplonk::verify(
        *keys.vk, publics, *decoded, hyperplonk::PcsCheckMode::pairing);

    verifier::PairingAccumulator acc;
    bool algebra_ok =
        hyperplonk::verify_deferred(*keys.vk, publics, *decoded, acc);
    if (algebra_ok) {
        res.deferred_verdict = acc.check();
        res.batch_index = batch_.add(std::move(acc));
        predicted_.push_back(res.direct_verdict);
    } else {
        res.deferred_verdict = false;
    }

    // ------------------------------------------------------------------
    // 4. VERIFY through the service (frame families corrupt the frame
    //    on the way in and must bounce off strict decoding).
    // ------------------------------------------------------------------
    VerifyRequest vreq;
    vreq.request_id = inst.spec.seed + (uint64_t(1) << 32);
    vreq.vk = hyperplonk::serde::serialize_verifying_key(*keys.vk);
    vreq.public_inputs = publics;
    vreq.proof = res.presented_proof;
    JobResponse verified =
        inst.tamper_frame
            ? service_
                  .submit(inst.tamper_frame(
                      wire::encode_verify_request(vreq)))
                  .get()
            : service_.submit(vreq).get();

    switch (verified.status) {
        case JobStatus::ok:
            res.service_verdict = true;
            res.observed = Outcome::accept;
            break;
        case JobStatus::invalid_proof:
            res.service_verdict = false;
            res.observed = Outcome::reject_proof;
            break;
        case JobStatus::malformed_request:
            res.service_verdict = false;
            res.observed = Outcome::reject_frame;
            break;
        default:
            return fail(std::string("unexpected verify status ") +
                        to_string(verified.status) + ": " +
                        verified.error);
    }

    // ------------------------------------------------------------------
    // 5. Conformance: observed matches declared, and every verification
    //    path that saw the proof reached the same verdict.
    // ------------------------------------------------------------------
    if (res.observed != inst.expected) {
        return fail(std::string("expected ") + to_string(inst.expected) +
                    " but observed " + to_string(res.observed));
    }
    if (inst.expected == Outcome::reject_frame) {
        // The frame died in decoding; the proof itself was honest, so
        // the out-of-band paths must have accepted it.
        res.conformant = res.direct_verdict && res.deferred_verdict;
        if (!res.conformant) {
            res.detail = "frame-family proof rejected out of band";
        }
        return res;
    }
    if (res.direct_verdict != res.service_verdict ||
        res.direct_verdict != res.deferred_verdict) {
        return fail("verification paths disagree: direct=" +
                    std::to_string(res.direct_verdict) + " deferred=" +
                    std::to_string(res.deferred_verdict) + " service=" +
                    std::to_string(res.service_verdict));
    }
    res.conformant = true;
    return res;
}

SuiteResult
Harness::finish()
{
    SuiteResult suite;
    suite.predicted_verdicts = predicted_;
    suite.batch = batch_.flush();
    suite.batch_matches_direct =
        suite.batch.verdicts.size() == predicted_.size();
    if (suite.batch_matches_direct) {
        for (size_t i = 0; i < predicted_.size(); ++i) {
            if (suite.batch.verdicts[i] != predicted_[i]) {
                suite.batch_matches_direct = false;
                break;
            }
        }
    }
    suite.service_metrics = service_.metrics();
    service_.shutdown();
    if (cfg_.replay) {
        suite.replay = sim::replay_trace(service_.trace(),
                                         sim::DesignConfig::paper_default());
        // Join the suite's prover spans against the replayed chip
        // model, export the drift gauges *before* the telemetry capture
        // below so they appear in the captured expositions, and write
        // ATTRIB_report.json when asked to.
        obs::attrib::Options aopts;
        aopts.min_ts_us = trace_min_ts_us_;
        aopts.clock_ghz = sim::kClockGhz;
        suite.attrib =
            obs::attrib::build(obs::TraceRecorder::global().events(),
                               sim::attrib_jobs(suite.replay), aopts);
        obs::attrib::export_to_registry(suite.attrib,
                                        obs::MetricsRegistry::global());
        suite.attrib_json = obs::attrib::render_json(suite.attrib);
        // Feed the live /attrib endpoint (and obs::flush_all's
        // ZKSPEED_ATTRIB_OUT fallback) the freshest report.
        obs::set_latest_attrib_json(suite.attrib_json);
        const char *attrib_out = std::getenv("ZKSPEED_ATTRIB_OUT");
        if (attrib_out != nullptr && *attrib_out != '\0') {
            obs::write_file(attrib_out, suite.attrib_json);
        }
    }
    if (cfg_.capture_telemetry) {
        // Snapshot after shutdown so the drained batch window and every
        // worker's shard are in; render both expositions and the span
        // trace so callers can persist the artifacts directly.
        suite.telemetry = obs::MetricsRegistry::global().snapshot();
        suite.metrics_prom = obs::render_prometheus_text(suite.telemetry);
        suite.metrics_json = obs::render_json(suite.telemetry);
        suite.trace_json =
            obs::TraceRecorder::global().render_chrome_json();
    }
    predicted_.clear();
    return suite;
}

std::vector<loadgen::FramePool>
make_frame_pools(const std::vector<loadgen::MixEntry> &mix,
                 runtime::ProofService &service,
                 runtime::KeyCache &client_keys, size_t frames_per_pool)
{
    if (mix.empty()) {
        throw loadgen::PlanError("capacity: plan has no mix entries");
    }
    if (frames_per_pool == 0) {
        throw loadgen::PlanError("capacity: frames_per_pool must be >= 1");
    }
    const Registry &registry = Registry::global();
    std::vector<loadgen::FramePool> pools;
    pools.reserve(mix.size());
    for (size_t p = 0; p < mix.size(); ++p) {
        const auto &entry = mix[p];
        const Family *family = registry.find(entry.family);
        if (family == nullptr) {
            throw loadgen::PlanError("capacity: unknown scenario family '" +
                                     entry.family + "'");
        }
        if (family->adversarial()) {
            throw loadgen::PlanError(
                "capacity: family '" + entry.family +
                "' is adversarial; capacity plans replay honest traffic "
                "only");
        }
        loadgen::FramePool pool;
        pool.name = entry.family;
        pool.weight = entry.weight;
        for (size_t i = 0; i < frames_per_pool; ++i) {
            Spec spec;
            spec.name = entry.family;
            spec.log_size = entry.log_size;
            spec.seed = entry.seed + i;
            Instance inst = registry.build(spec);

            runtime::JobRequest prove_req;
            prove_req.request_id = (uint64_t(p) << 32) | i;
            prove_req.circuit = inst.circuit;
            prove_req.witness = inst.witness;
            pool.prove_frames.push_back(wire::encode_request(prove_req));

            // The matching VERIFY frame needs a real proof: prove once
            // through the service (also warms its key cache) and pair
            // the proof with the client-side vk.
            JobResponse proved = service.submit(prove_req).get();
            if (!proved.ok()) {
                throw loadgen::PlanError(
                    "capacity: pre-prove failed for " + spec.describe() +
                    ": " + proved.error);
            }
            auto keys = client_keys.get_or_create(inst.circuit).first;
            VerifyRequest vreq;
            vreq.request_id =
                (uint64_t(1) << 63) | (uint64_t(p) << 32) | i;
            vreq.vk = hyperplonk::serde::serialize_verifying_key(*keys.vk);
            vreq.public_inputs = inst.witness.public_inputs(inst.circuit);
            vreq.proof = proved.proof;
            pool.verify_frames.push_back(
                wire::encode_verify_request(vreq));
        }
        pools.push_back(std::move(pool));
    }
    return pools;
}

loadgen::Report
run_capacity(const CapacityConfig &cfg)
{
    runtime::ProofService service(cfg.service);
    runtime::KeyCache client_keys(cfg.service.key_cache_capacity,
                                  cfg.service.srs_seed);
    std::vector<loadgen::FramePool> pools = make_frame_pools(
        cfg.plan.mix, service, client_keys, cfg.frames_per_pool);
    loadgen::LoadGen generator(service, std::move(pools), cfg.plan);
    loadgen::Report report = generator.run(cfg.stream);
    service.shutdown();
    return report;
}

}  // namespace zkspeed::scenarios
