#include "scenarios/circuits.hpp"

#include "hash/keccak.hpp"
#include "keccak/merkle.hpp"

namespace zkspeed::scenarios::circuits {

namespace {

using hyperplonk::CircuitBuilder;
using hyperplonk::Var;
using ff::Fr;
namespace gadgets = hyperplonk::gadgets;

/** Allocate a variable pinned to a known constant value. */
Var
pinned(CircuitBuilder &cb, const Fr &value)
{
    Var v = cb.add_variable(value);
    cb.assert_constant(v, value);
    return v;
}

/** sum_i 3^i * balance_i as a chain of constant-weight gates. */
Var
ledger_checksum(CircuitBuilder &cb, const std::vector<Var> &accounts)
{
    Var acc = pinned(cb, Fr::zero());
    Fr w = Fr::one();
    for (Var a : accounts) {
        Var next = cb.add_variable(cb.value(acc) + w * cb.value(a));
        cb.add_custom_gate(Fr::one(), w, Fr::zero(), Fr::one(),
                           Fr::zero(), acc, a, next);
        acc = next;
        w *= Fr::from_uint(3);
    }
    return acc;
}

}  // namespace

std::pair<CircuitIndex, Witness>
rollup(const RollupParams &params, std::mt19937_64 &rng, size_t min_vars)
{
    CircuitBuilder cb;

    std::vector<Var> acct;
    acct.reserve(params.accounts);
    for (size_t i = 0; i < params.accounts; ++i) {
        acct.push_back(cb.add_variable(Fr::from_uint(rng() % 10000)));
    }
    Var pre = ledger_checksum(cb, acct);

    for (size_t t = 0; t < params.transfers; ++t) {
        size_t from = rng() % params.accounts;
        size_t to = rng() % params.accounts;
        Fr amount = Fr::from_uint(rng() % 2500);
        Var amt_out = pinned(cb, amount);
        acct[from] = cb.add_subtraction(acct[from], amt_out);
        Var amt_in = pinned(cb, amount);
        acct[to] = cb.add_addition(acct[to], amt_in);
    }
    Var post = ledger_checksum(cb, acct);

    Var pub_pre = cb.add_public_input(cb.value(pre));
    Var pub_post = cb.add_public_input(cb.value(post));
    cb.assert_equal(pub_pre, pre);
    cb.assert_equal(pub_post, post);
    return cb.build(min_vars);
}

std::pair<CircuitIndex, Witness>
private_transaction(const TransferParams &params, std::mt19937_64 &rng,
                    size_t min_vars)
{
    const uint64_t cap = uint64_t(1) << params.bits;
    uint64_t sender_before = rng() % cap;
    uint64_t receiver_before = rng() % cap;
    uint64_t amount;
    if (params.overdraft) {
        // Spend more than the balance: the subtraction wraps mod p and
        // the range gates on the post-balance become unsatisfiable.
        amount = sender_before + 1 + rng() % cap;
    } else {
        amount = sender_before == 0 ? 0 : rng() % (sender_before + 1);
    }

    CircuitBuilder cb;
    cb.add_public_input(Fr::from_uint(rng()));  // public transaction id

    Var s0 = cb.add_variable(Fr::from_uint(sender_before));
    Var r0 = cb.add_variable(Fr::from_uint(receiver_before));
    Var amt = cb.add_variable(Fr::from_uint(amount));

    Var s1 = cb.add_subtraction(s0, amt);
    Var r1 = cb.add_addition(r0, amt);
    (void)r1;

    gadgets::range_check(cb, amt, params.bits);
    gadgets::range_check(cb, s1, params.bits);
    return cb.build(min_vars);
}

std::pair<CircuitIndex, Witness>
rescue_chain(size_t links, bool custom_gates, std::mt19937_64 &rng,
             size_t min_vars)
{
    auto params = custom_gates ? gadgets::RescueParams::with_custom_gates()
                               : gadgets::RescueParams::standard();
    CircuitBuilder cb;
    Fr h_val = Fr::random(rng);
    Var h = cb.add_variable(h_val);
    for (size_t i = 0; i < links; ++i) {
        Fr x_val = Fr::random(rng);
        Var x = cb.add_variable(x_val);
        h = gadgets::rescue_hash2(cb, h, x, params);
        h_val = gadgets::rescue_hash2_value(h_val, x_val, params);
    }
    Var pub = cb.add_public_input(h_val);
    cb.assert_equal(pub, h);
    return cb.build(min_vars);
}

std::pair<CircuitIndex, Witness>
merkle_membership(size_t depth, std::mt19937_64 &rng, size_t min_vars)
{
    // Leaf identity from keccak: hash a seeded preimage and squeeze the
    // first eight digest bytes into a field element.
    uint64_t preimage = rng();
    hash::Digest d = hash::sha3_256(
        std::span<const uint8_t>(reinterpret_cast<uint8_t *>(&preimage),
                                 sizeof(preimage)));
    uint64_t leaf_word = 0;
    for (size_t i = 0; i < 8; ++i) {
        leaf_word |= uint64_t(d[i]) << (8 * i);
    }

    CircuitBuilder cb;
    Fr cur_val = Fr::from_uint(leaf_word);
    Var cur = cb.add_variable(cur_val);
    for (size_t level = 0; level < depth; ++level) {
        Fr sib_val = Fr::random(rng);
        bool right = (rng() & 1) != 0;  // current node is the right child
        Var sib = cb.add_variable(sib_val);
        Var dir = cb.add_variable(right ? Fr::one() : Fr::zero());
        cb.assert_boolean(dir);
        Var left = gadgets::mux(cb, dir, sib, cur);
        Var rite = gadgets::mux(cb, dir, cur, sib);
        cur = gadgets::rescue_hash2(cb, left, rite);
        cur_val = right ? gadgets::rescue_hash2_value(sib_val, cur_val)
                        : gadgets::rescue_hash2_value(cur_val, sib_val);
    }
    Var root = cb.add_public_input(cur_val);
    cb.assert_equal(root, cur);
    return cb.build(min_vars);
}

std::pair<CircuitIndex, Witness>
range_bank(size_t values, unsigned bits, std::mt19937_64 &rng,
           size_t min_vars)
{
    CircuitBuilder cb;
    Fr sum_val = Fr::zero();
    Var sum = pinned(cb, Fr::zero());
    for (size_t i = 0; i < values; ++i) {
        uint64_t v = rng() % (uint64_t(1) << bits);
        Var x = cb.add_variable(Fr::from_uint(v));
        gadgets::range_check(cb, x, bits);
        sum = cb.add_addition(sum, x);
        sum_val += Fr::from_uint(v);
    }
    Var pub = cb.add_public_input(sum_val);
    cb.assert_equal(pub, sum);
    return cb.build(min_vars);
}

std::pair<CircuitIndex, Witness>
range_bank_lookup(size_t values, unsigned bits, std::mt19937_64 &rng,
                  size_t min_vars)
{
    CircuitBuilder cb;
    cb.set_table(lookup::Table::range(bits));
    Fr sum_val = Fr::zero();
    Var sum = pinned(cb, Fr::zero());
    for (size_t i = 0; i < values; ++i) {
        uint64_t v = rng() % (uint64_t(1) << bits);
        Var x = cb.add_variable(Fr::from_uint(v));
        gadgets::range_via_lookup(cb, x);
        sum = cb.add_addition(sum, x);
        sum_val += Fr::from_uint(v);
    }
    Var pub = cb.add_public_input(sum_val);
    cb.assert_equal(pub, sum);
    return cb.build(min_vars);
}

std::pair<CircuitIndex, Witness>
xor_rescue_lookup(size_t mixes, unsigned bits, std::mt19937_64 &rng,
                  size_t min_vars)
{
    const uint64_t mask = (uint64_t(1) << bits) - 1;
    CircuitBuilder cb;
    cb.set_table(lookup::Table::xor_table(bits));
    uint64_t acc_val = rng() & mask;
    Var acc = cb.add_variable(Fr::from_uint(acc_val));
    for (size_t i = 0; i < mixes; ++i) {
        uint64_t x_val = rng() & mask;
        Var x = cb.add_variable(Fr::from_uint(x_val));
        // One gate per mix: range-checks both inputs and asserts the
        // XOR relation (the gate-based equivalent would decompose both
        // operands to bits and XOR bitwise).
        acc = gadgets::xor_via_lookup(cb, acc, x);
        acc_val ^= x_val;
    }
    Var pub_xor = cb.add_public_input(Fr::from_uint(acc_val));
    cb.assert_equal(pub_xor, acc);
    // The Rescue tail binds the XOR checksum into a sponge digest.
    Fr seed_val = Fr::random(rng);
    Var seed = cb.add_variable(seed_val);
    Var digest = gadgets::rescue_hash2(cb, acc, seed);
    Fr digest_val =
        gadgets::rescue_hash2_value(Fr::from_uint(acc_val), seed_val);
    Var pub_digest = cb.add_public_input(digest_val);
    cb.assert_equal(pub_digest, digest);
    return cb.build(min_vars);
}

std::pair<CircuitIndex, Witness>
keccak_merkle(const KeccakMerkleParams &params, std::mt19937_64 &rng,
              size_t min_vars)
{
    namespace kc = zkspeed::keccak;
    // Leaf identity from a real keccak digest of a seeded preimage.
    uint64_t preimage = rng();
    hash::Digest d = hash::sha3_256(
        std::span<const uint8_t>(reinterpret_cast<uint8_t *>(&preimage),
                                 sizeof(preimage)));
    kc::DigestWords leaf = kc::digest_to_words(d);

    std::vector<kc::MerkleStep> path(params.depth);
    for (auto &step : path) {
        for (auto &w : step.sibling) w = rng();
        step.right = (rng() & 1) != 0;
    }
    kc::DigestWords root =
        kc::native_path(leaf, path, params.rounds);
    if (params.wrong_sibling) {
        // The public root stays honest; the in-circuit path now folds a
        // different sibling, so the root-equality gates cannot hold.
        path[0].sibling[0] ^= 1;
    }

    CircuitBuilder cb;
    kc::KeccakGadget g(
        cb, kc::KeccakParams::lookup(params.rounds, params.limb_bits));
    std::array<Var, 4> leaf_pub, root_pub;
    for (int k = 0; k < 4; ++k) {
        leaf_pub[k] = cb.add_public_input(Fr::from_uint(leaf[k]));
        root_pub[k] = cb.add_public_input(Fr::from_uint(root[k]));
    }
    kc::DigestLanes leaf_lanes;
    for (int k = 0; k < 4; ++k) {
        leaf_lanes[k] = g.from_var(leaf_pub[k]);
    }
    kc::DigestLanes computed = kc::merkle_path(g, leaf_lanes, path);
    for (int k = 0; k < 4; ++k) {
        cb.assert_equal(g.to_var(computed[k]), root_pub[k]);
    }
    return cb.build(min_vars);
}

std::pair<CircuitIndex, Witness>
shuffle(size_t n, std::mt19937_64 &rng, size_t min_vars)
{
    std::vector<Fr> vals(n);
    for (auto &v : vals) v = Fr::random(rng);
    std::vector<size_t> perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = i;
    for (size_t i = n; i > 1; --i) {
        std::swap(perm[i - 1], perm[rng() % i]);
    }

    CircuitBuilder cb;
    std::vector<Var> xs(n), ys(n);
    for (size_t i = 0; i < n; ++i) xs[i] = cb.add_variable(vals[i]);
    // The shuffled copy: fresh variables tied to their sources slot by
    // slot, creating long copy-constraint cycles for PermCheck.
    for (size_t i = 0; i < n; ++i) {
        ys[i] = cb.add_variable(vals[perm[i]]);
        cb.assert_equal(ys[i], xs[perm[i]]);
    }
    // Both running sums agree (a multiset invariant the circuit checks
    // explicitly on top of the wiring).
    Var sx = xs[0], sy = ys[0];
    for (size_t i = 1; i < n; ++i) {
        sx = cb.add_addition(sx, xs[i]);
        sy = cb.add_addition(sy, ys[i]);
    }
    cb.assert_equal(sx, sy);
    Fr total = Fr::zero();
    for (const Fr &v : vals) total += v;
    Var pub = cb.add_public_input(total);
    cb.assert_equal(pub, sx);
    return cb.build(min_vars);
}

}  // namespace zkspeed::scenarios::circuits
