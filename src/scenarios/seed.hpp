/**
 * @file
 * Deterministic-seed plumbing for tests and soak sweeps.
 *
 * Every randomized suite derives its seeds from one base value so a red
 * run reproduces in a single command:
 *
 *   ZKSPEED_TEST_SEED=<printed seed> ctest -R <suite>
 *
 * The helpers are header-only and allocation-free so they are safe to
 * call during static initialisation (gtest parameter generators run
 * before main()).
 */
#pragma once

#include <cstdint>
#include <cstdlib>

namespace zkspeed::scenarios {

/** Read an unsigned environment override, falling back when unset or
 * unparsable. */
inline uint64_t
env_u64(const char *name, uint64_t fallback)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    char *end = nullptr;
    unsigned long long v = std::strtoull(raw, &end, 0);
    if (end == raw || *end != '\0') return fallback;
    return uint64_t(v);
}

/** The single test-seed override every randomized suite respects. */
inline uint64_t
test_seed(uint64_t fallback)
{
    return env_u64("ZKSPEED_TEST_SEED", fallback);
}

}  // namespace zkspeed::scenarios
