/**
 * @file
 * End-to-end conformance harness: drives one scenario Instance through
 * every layer of the system and cross-checks that the layers agree.
 *
 * Per scenario (run()):
 *   1. PROVE as a wire-encoded job through a live ProofService
 *      (adversarial witnesses must be refused at this front door);
 *   2. rebuild the client-side verifying key from the circuit (same
 *      simulated SRS ceremony as the service);
 *   3. apply the instance's adversarial transforms (tampered proof
 *      bytes / forged publics / corrupted frame);
 *   4. verify the presented proof three independent ways: direct
 *      (hyperplonk::verify, pairing mode), deferred (verify_deferred
 *      into the suite-wide BatchVerifier), and as a VERIFY job through
 *      the service's batch window;
 *   5. classify the observed Outcome and record per-path verdicts.
 *
 * Per suite (finish()): flush the accumulated BatchVerifier fold in one
 * go — adversarial pairing-side proofs must be isolated by bisection
 * without dragging honest batch-mates down — then shut the service down
 * and replay its trace through the zkSpeed chip model.
 */
#pragma once

#include "loadgen/loadgen.hpp"
#include "obs/attrib.hpp"
#include "obs/metrics.hpp"
#include "runtime/service.hpp"
#include "scenarios/scenario.hpp"
#include "sim/replay.hpp"
#include "verify/batch_verifier.hpp"

namespace zkspeed::scenarios {

struct HarnessConfig {
    runtime::ServiceConfig service;
    /** Replay the service trace through the chip model in finish(). */
    bool replay = true;
    /** Capture the telemetry artifacts (metrics exposition + Chrome
     * trace JSON) into the SuiteResult in finish(). */
    bool capture_telemetry = true;

    HarnessConfig()
    {
        // Scenarios are submitted one at a time, so a short batch
        // window keeps each VERIFY job from idling in the coalescer.
        service.num_workers = 1;
        service.total_parallelism = 1;
        service.verify_batch_size = 4;
        service.verify_batch_window_ms = 2.0;
    }
};

/** Everything observed while driving one scenario end to end. */
struct ScenarioResult {
    Spec spec;
    Outcome expected = Outcome::accept;
    Outcome observed = Outcome::accept;

    /** Proof-bearing scenarios: per-path verdicts on the presented
     * proof. All three must agree for the result to be conformant. */
    bool direct_verdict = false;    ///< hyperplonk::verify, pairing mode
    bool deferred_verdict = false;  ///< verify_deferred algebra + flush
    bool service_verdict = false;   ///< VERIFY job through the service

    /** Index within the suite-wide batch fold (SIZE_MAX when the proof
     * never reached the accumulator, e.g. algebra already rejected). */
    size_t batch_index = SIZE_MAX;

    /** Canonical proof bytes as presented to the verifiers. */
    std::vector<uint8_t> presented_proof;

    /** Cross-layer agreement: every path reached the same conclusion
     * and the observed outcome matches the family's declaration. */
    bool conformant = false;
    std::string detail;  ///< human-readable reason when not conformant
};

struct SuiteResult {
    /** The one folded flush over every accumulated proof. */
    verifier::BatchResult batch;
    /** Per batch index, the verdict the direct path predicted. */
    std::vector<bool> predicted_verdicts;
    /** Folded verdicts agree with the per-proof direct verdicts. */
    bool batch_matches_direct = false;
    /** Chip-model replay of the service trace (config.replay). */
    sim::ReplayReport replay;
    /** Kernel-level cost attribution joining this suite's prover spans
     * with the replayed chip model (config.replay; also exported as
     * zkspeed_model_drift_ratio gauges before the telemetry capture
     * below, and to $ZKSPEED_ATTRIB_OUT as ATTRIB_report.json). */
    obs::attrib::Report attrib;
    std::string attrib_json;  ///< rendered "zkspeed-attrib-v1" document
    runtime::ServiceMetrics service_metrics;

    /** Telemetry artifacts (config.capture_telemetry): a registry
     * snapshot taken after shutdown plus the rendered expositions and
     * the Chrome trace of the whole suite — callers write these
     * straight to metrics.prom / metrics.json / trace.json. */
    obs::Snapshot telemetry;
    std::string metrics_prom;
    std::string metrics_json;
    std::string trace_json;
};

class Harness
{
  public:
    explicit Harness(HarnessConfig cfg = HarnessConfig());

    /** Drive one scenario end to end. */
    ScenarioResult run(const Instance &inst);

    /** Flush the suite-wide batch, shut down, replay. Call once. */
    SuiteResult finish();

    size_t batched_proofs() const { return predicted_.size(); }

  private:
    HarnessConfig cfg_;
    runtime::ProofService service_;
    runtime::KeyCache client_keys_;
    verifier::BatchVerifier batch_;
    std::vector<bool> predicted_;
    /** Recorder timestamp at construction: scopes the attribution join
     * to this harness's spans (the global ring accumulates across every
     * suite the process runs). */
    double trace_min_ts_us_ = 0;
};

/**
 * Soak-lane capacity mode: drive a loadgen plan against a dedicated
 * service instance and report the windowed SLO series + knee estimate.
 */
struct CapacityConfig {
    loadgen::Plan plan;
    runtime::ServiceConfig service;
    /** Distinct pre-proved instances cycled per mix entry. */
    size_t frames_per_pool = 4;
    /** Per-window streaming output (nullptr = silent). */
    std::FILE *stream = nullptr;

    CapacityConfig()
    {
        // Capacity runs stress the queue on purpose: keep it short so
        // over-capacity offered load sheds instead of building an
        // unbounded latency backlog, and coalesce verify traffic on a
        // tight window like the conformance harness does.
        service.queue_capacity = 32;
        service.verify_batch_size = 4;
        service.verify_batch_window_ms = 2.0;
    }
};

/**
 * Expand a plan's mix into pre-encoded frame pools: per entry,
 * `frames_per_pool` honest instances (seeds entry.seed, entry.seed+1,
 * ...) encoded as PROVE frames, plus matching VERIFY frames built by
 * proving each instance through `service` and pairing the proof with
 * the client-side vk. Unknown and adversarial family names throw
 * loadgen::PlanError — capacity runs measure the honest-path knee,
 * not the rejection paths.
 */
std::vector<loadgen::FramePool> make_frame_pools(
    const std::vector<loadgen::MixEntry> &mix,
    runtime::ProofService &service, runtime::KeyCache &client_keys,
    size_t frames_per_pool);

/**
 * Run one capacity plan end to end: spin up a service from
 * `cfg.service`, pre-prove the frame pools, replay the plan through
 * `loadgen::LoadGen`, shut down, and return the report (callers render
 * SLO_report.json from it and enforce `slo_ok` via exit status).
 */
loadgen::Report run_capacity(const CapacityConfig &cfg);

}  // namespace zkspeed::scenarios
