#include "scenarios/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "curve/g1.hpp"
#include "hyperplonk/serialize.hpp"
#include "scenarios/circuits.hpp"
#include "scenarios/seed.hpp"
#include "sim/config.hpp"

namespace zkspeed::scenarios {

using ff::Fr;

const char *
to_string(Outcome o)
{
    switch (o) {
        case Outcome::accept: return "ACCEPT";
        case Outcome::reject_witness: return "REJECT_WITNESS";
        case Outcome::reject_proof: return "REJECT_PROOF";
        case Outcome::reject_frame: return "REJECT_FRAME";
    }
    return "unknown";
}

std::string
Spec::describe() const
{
    std::string s = name + "{log_size=" + std::to_string(log_size) +
                    ", seed=" + std::to_string(seed);
    for (const auto &[k, v] : knobs) {
        s += ", " + k + "=" + std::to_string(v);
    }
    return s + "}";
}

namespace {

/** Decorrelate family RNG streams drawn from one suite seed. */
std::mt19937_64
family_rng(const Spec &spec, uint64_t salt)
{
    return std::mt19937_64(spec.seed * 0x9e3779b97f4a7c15ULL + salt);
}

Instance
honest(const Spec &spec,
       std::pair<hyperplonk::CircuitIndex, hyperplonk::Witness> built)
{
    Instance inst;
    inst.spec = spec;
    inst.expected = Outcome::accept;
    inst.circuit = std::move(built.first);
    inst.witness = std::move(built.second);
    return inst;
}

/** Add a generator to the first opening quotient: the proof still
 * decodes and passes every algebraic check, but the pairing-side check
 * must reject — the mutation only the deferred/batched flush can see. */
std::vector<uint8_t>
corrupt_pairing_side(std::vector<uint8_t> proof_bytes)
{
    auto proof = hyperplonk::serde::deserialize_proof(proof_bytes);
    if (!proof.has_value() || proof->gprime_proof.quotients.empty()) {
        // Returning the honest bytes here would surface as a baffling
        // "expected REJECT_PROOF but observed ACCEPT" downstream; fail
        // at the actual fault instead.
        throw std::logic_error(
            "corrupt_pairing_side: proof bytes undecodable or without "
            "quotients — tamper helper out of sync with proof layout");
    }
    auto &q = proof->gprime_proof.quotients[0];
    q = (curve::G1::from_affine(q) + curve::g1_generator()).to_affine();
    return hyperplonk::serde::serialize_proof(*proof);
}

}  // namespace

Registry::Registry()
{
    using circuits::RollupParams;
    using circuits::TransferParams;

    families_.push_back(Family{
        "rollup", "transfer batch over a small ledger, public checksums",
        Outcome::accept, [](const Spec &s) {
            RollupParams p;
            p.accounts = s.knob("accounts", 4);
            p.transfers = s.knob("transfers", 6);
            auto rng = family_rng(s, 1);
            return honest(s, circuits::rollup(p, rng, s.log_size));
        }});

    families_.push_back(Family{
        "private-transaction",
        "balance transfer with 16-bit range checks on amount and balance",
        Outcome::accept, [](const Spec &s) {
            TransferParams p;
            p.bits = unsigned(s.knob("bits", 16));
            auto rng = family_rng(s, 2);
            return honest(s,
                          circuits::private_transaction(p, rng, s.log_size));
        }});

    families_.push_back(Family{
        "rescue-chain", "chained Rescue sponge hashes, digest public",
        Outcome::accept, [](const Spec &s) {
            auto rng = family_rng(s, 3);
            return honest(s, circuits::rescue_chain(s.knob("links", 1),
                                                    false, rng,
                                                    s.log_size));
        }});

    families_.push_back(Family{
        "rescue-custom-gates",
        "Rescue chain on q_H x^5 custom gates (23-claim proof shape)",
        Outcome::accept, [](const Spec &s) {
            auto rng = family_rng(s, 4);
            return honest(s, circuits::rescue_chain(s.knob("links", 1),
                                                    true, rng,
                                                    s.log_size));
        }});

    families_.push_back(Family{
        "merkle-membership",
        "keccak-derived leaf under a Rescue-hashed Merkle root",
        Outcome::accept, [](const Spec &s) {
            auto rng = family_rng(s, 5);
            return honest(s, circuits::merkle_membership(
                                 s.knob("depth", 2), rng, s.log_size));
        }});

    families_.push_back(Family{
        "range-bank", "bank of range decompositions, sum public",
        Outcome::accept, [](const Spec &s) {
            auto rng = family_rng(s, 6);
            return honest(s, circuits::range_bank(s.knob("values", 4),
                                                  unsigned(s.knob("bits", 8)),
                                                  rng, s.log_size));
        }});

    families_.push_back(Family{
        "shuffle", "copy-constraint-heavy shuffled vector (PermCheck)",
        Outcome::accept, [](const Spec &s) {
            auto rng = family_rng(s, 7);
            return honest(s, circuits::shuffle(s.knob("n", 12), rng,
                                               s.log_size));
        }});

    families_.push_back(Family{
        "dense-arithmetic",
        "random circuit with a dense witness scalar population",
        Outcome::accept, [](const Spec &s) {
            auto rng = family_rng(s, 8);
            double dense = double(s.knob("dense_pct", 80)) / 100.0;
            return honest(s, hyperplonk::random_circuit(s.log_size, rng,
                                                        dense));
        }});

    families_.push_back(Family{
        "sparse-arithmetic",
        "random circuit with the paper's 0/1-heavy witness statistics",
        Outcome::accept, [](const Spec &s) {
            auto rng = family_rng(s, 9);
            double dense = double(s.knob("dense_pct", 5)) / 100.0;
            return honest(s, hyperplonk::random_circuit(s.log_size, rng,
                                                        dense));
        }});

    // ------------------------------------------------------------------
    // Lookup-argument families (src/lookup, DESIGN.md Section 8). The
    // range family is the table-driven twin of range-bank above; the
    // XOR family exercises the 3-column relation form.
    // ------------------------------------------------------------------

    families_.push_back(Family{
        "range-via-lookup",
        "range bank proved through the LogUp table argument (one gate "
        "per value instead of a bit-decomposition bank)",
        Outcome::accept, [](const Spec &s) {
            auto rng = family_rng(s, 15);
            return honest(s, circuits::range_bank_lookup(
                                 s.knob("values", 5),
                                 unsigned(s.knob("bits", 6)), rng,
                                 s.log_size));
        }});

    families_.push_back(Family{
        "xor-rescue-lookup",
        "XOR-table mix chain feeding a Rescue digest; each lookup gate "
        "asserts the XOR relation and range-checks its inputs",
        Outcome::accept, [](const Spec &s) {
            auto rng = family_rng(s, 16);
            return honest(s, circuits::xor_rescue_lookup(
                                 s.knob("mixes", 6),
                                 unsigned(s.knob("bits", 3)), rng,
                                 s.log_size));
        }});

    // ------------------------------------------------------------------
    // In-circuit keccak-Merkle families (src/keccak, DESIGN.md
    // Section 9): the Merkle hash is a REAL round-parameterised
    // Keccak-f[1600] permutation proved on the fused multi-table
    // lookup argument. CI proves reduced-round permutations (the
    // keccak circuit grows ~3k gates/round); the deep-soak job raises
    // ZKSPEED_KECCAK_ROUNDS towards the full 24.
    // ------------------------------------------------------------------

    auto keccak_params = [](const Spec &s) {
        circuits::KeccakMerkleParams p;
        p.depth = s.knob("depth", 1);
        // Clamp the knob/env into the gadget's 1..24 domain so a typo'd
        // ZKSPEED_KECCAK_ROUNDS degrades to the nearest valid depth
        // instead of throwing out of the family builder.
        uint64_t rounds =
            s.knob("rounds", env_u64("ZKSPEED_KECCAK_ROUNDS", 1));
        p.rounds = unsigned(std::clamp<uint64_t>(rounds, 1, 24));
        // Same policy for the limb width: snap to the nearest valid
        // divisor of 64 within the gadget's table budget.
        uint64_t limb_bits = s.knob("limb_bits", 4);
        p.limb_bits = limb_bits >= 8 ? 8
                      : limb_bits >= 4 ? 4
                      : limb_bits >= 2 ? 2
                                       : 1;
        return p;
    };

    families_.push_back(Family{
        "keccak-merkle",
        "Merkle membership with the keccak permutation in-circuit "
        "(theta/chi via fused XOR+CHI tables, rho/pi copy wiring; "
        "rounds via ZKSPEED_KECCAK_ROUNDS)",
        Outcome::accept, [keccak_params](const Spec &s) {
            auto rng = family_rng(s, 30);
            return honest(s, circuits::keccak_merkle(keccak_params(s),
                                                     rng, s.log_size));
        }});

    families_.push_back(Family{
        "keccak-merkle-wrong-path",
        "keccak Merkle path folding a perturbed sibling against the "
        "honest public root: the in-circuit permutation output "
        "contradicts the root-equality gates",
        Outcome::reject_witness, [keccak_params](const Spec &s) {
            auto p = keccak_params(s);
            p.wrong_sibling = true;
            auto rng = family_rng(s, 31);
            return honest(s,
                          circuits::keccak_merkle(p, rng, s.log_size));
        }});

    families_.push_back(Family{
        "keccak-merkle-wrong-leaf",
        "valid keccak-Merkle proof presented against a forged public "
        "leaf word",
        Outcome::reject_proof, [keccak_params](const Spec &s) {
            auto rng = family_rng(s, 32);
            Instance inst = honest(
                s, circuits::keccak_merkle(keccak_params(s), rng,
                                           s.log_size));
            inst.tamper_publics = [](std::vector<Fr> &publics) {
                // Publics interleave (leaf, root) words; flip a leaf.
                if (!publics.empty()) publics.front() += Fr::one();
            };
            return inst;
        }});

    // ------------------------------------------------------------------
    // Paper Table-3 instances as registry families. The paper sizes
    // (2^17..2^23) only previously existed as sim::Workload profiles;
    // here they flow through the full conformance pipeline, with the
    // software-proved size capped by ZKSPEED_TABLE3_CAP (default 2^8)
    // so CI stays fast — the soak job raises the cap.
    // ------------------------------------------------------------------
    {
        static const char *kTable3Slugs[] = {
            "table3-zcash", "table3-auction", "table3-rescue-chain",
            "table3-zexe", "table3-rollup10"};
        auto workloads = sim::Workload::paper_workloads();
        for (size_t wi = 0; wi < workloads.size(); ++wi) {
            const sim::Workload wl = workloads[wi];
            families_.push_back(Family{
                kTable3Slugs[wi],
                "paper Table 3 \"" + wl.name + "\" (native 2^" +
                    std::to_string(wl.mu) +
                    " gates; software size capped by ZKSPEED_TABLE3_CAP)",
                Outcome::accept, [wl, wi](const Spec &s) {
                    auto rng = family_rng(s, 20 + wi);
                    size_t cap = env_u64("ZKSPEED_TABLE3_CAP", 8);
                    size_t mu = std::max<size_t>(
                        s.log_size, std::min<size_t>(wl.mu, cap));
                    return honest(s, hyperplonk::random_circuit(
                                         mu, rng, wl.dense_fraction));
                }});
        }
    }

    // ------------------------------------------------------------------
    // Adversarial families. Each declares the exact layer that must
    // reject it; the conformance harness asserts nothing else does.
    // ------------------------------------------------------------------

    families_.push_back(Family{
        "overdraft-transaction",
        "transfer amount exceeds the balance: witness violates its own "
        "range gates",
        Outcome::reject_witness, [](const Spec &s) {
            TransferParams p;
            p.bits = unsigned(s.knob("bits", 16));
            p.overdraft = true;
            auto rng = family_rng(s, 10);
            Instance inst = honest(
                s, circuits::private_transaction(p, rng, s.log_size));
            return inst;
        }});

    families_.push_back(Family{
        "tampered-witness",
        "honest circuit with one output wire flipped at an active gate",
        Outcome::reject_witness, [](const Spec &s) {
            auto rng = family_rng(s, 11);
            Instance inst = honest(
                s, circuits::rescue_chain(1, false, rng, s.log_size));
            for (size_t i = 0; i < inst.circuit.q_o.size(); ++i) {
                if (!inst.circuit.q_o[i].is_zero()) {
                    inst.witness.w[2][i] += Fr::one();
                    break;
                }
            }
            return inst;
        }});

    families_.push_back(Family{
        "tampered-proof",
        "valid proof with a pairing-side corruption only the deferred "
        "flush can catch",
        Outcome::reject_proof, [](const Spec &s) {
            auto rng = family_rng(s, 12);
            Instance inst = honest(
                s, circuits::range_bank(s.knob("values", 3),
                                        unsigned(s.knob("bits", 8)), rng,
                                        s.log_size));
            inst.tamper_proof = corrupt_pairing_side;
            return inst;
        }});

    families_.push_back(Family{
        "out-of-table-witness",
        "lookup witness escapes its table: a lookup gate's zero wire is "
        "perturbed, so no table row matches the presented triple",
        Outcome::reject_witness, [](const Spec &s) {
            auto rng = family_rng(s, 17);
            Instance inst = honest(
                s, circuits::range_bank_lookup(s.knob("values", 4),
                                               unsigned(s.knob("bits", 6)),
                                               rng, s.log_size));
            // The lookup gate's w2 slot is a fresh variable pinned to
            // the table's zero column only by the lookup itself (no
            // arithmetic gate, no copy cycle), so this perturbation
            // violates exactly the lookup check: the paths that ignore
            // lookups would happily prove it.
            for (size_t i = 0; i < inst.circuit.q_lookup.size(); ++i) {
                if (!inst.circuit.q_lookup[i].is_zero()) {
                    inst.witness.w[1][i] += Fr::one();
                    break;
                }
            }
            return inst;
        }});

    families_.push_back(Family{
        "tampered-lookup-proof",
        "valid lookup-circuit proof with a pairing-side corruption only "
        "the deferred flush can catch (bisection must finger it)",
        Outcome::reject_proof, [](const Spec &s) {
            auto rng = family_rng(s, 18);
            Instance inst = honest(
                s, circuits::range_bank_lookup(s.knob("values", 4),
                                               unsigned(s.knob("bits", 6)),
                                               rng, s.log_size));
            inst.tamper_proof = corrupt_pairing_side;
            return inst;
        }});

    families_.push_back(Family{
        "forged-publics",
        "valid proof presented against forged public inputs",
        Outcome::reject_proof, [](const Spec &s) {
            RollupParams p;
            p.accounts = s.knob("accounts", 4);
            p.transfers = s.knob("transfers", 4);
            auto rng = family_rng(s, 13);
            Instance inst =
                honest(s, circuits::rollup(p, rng, s.log_size));
            inst.tamper_publics = [](std::vector<Fr> &publics) {
                if (!publics.empty()) publics.back() += Fr::one();
            };
            return inst;
        }});

    families_.push_back(Family{
        "malformed-frame",
        "valid verify job inside a corrupted wire frame (truncation, "
        "bad magic, or an oversized blob length)",
        Outcome::reject_frame, [](const Spec &s) {
            auto rng = family_rng(s, 14);
            Instance inst = honest(
                s, circuits::shuffle(s.knob("n", 8), rng, s.log_size));
            // Corruption kind: overridable via the `variant` knob so a
            // sweep can deterministically cover all three paths.
            uint64_t variant = s.knob("variant", s.seed % 3);
            inst.tamper_frame =
                [variant](std::vector<uint8_t> frame) {
                    switch (variant) {
                        case 0:  // truncate mid-payload
                            frame.resize(frame.size() * 2 / 3);
                            break;
                        case 1:  // break the job-class magic
                            frame[0] ^= 0xff;
                            break;
                        default:  // oversize the vk length prefix
                            for (size_t i = 0; i < 8; ++i) {
                                frame[16 + i] = 0xff;
                            }
                            break;
                    }
                    return frame;
                };
            return inst;
        }});
}

const Registry &
Registry::global()
{
    static const Registry kRegistry;
    return kRegistry;
}

const Family *
Registry::find(const std::string &name) const
{
    for (const Family &f : families_) {
        if (f.name == name) return &f;
    }
    return nullptr;
}

Instance
Registry::build(const Spec &spec) const
{
    const Family *f = find(spec.name);
    if (f == nullptr) {
        throw std::out_of_range("unregistered scenario family: " +
                                spec.name);
    }
    Instance inst = f->build(spec);
    inst.expected = f->expected;
    return inst;
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(families_.size());
    for (const Family &f : families_) out.push_back(f.name);
    return out;
}

std::vector<Spec>
Registry::default_suite(uint64_t seed, size_t log_size) const
{
    std::vector<Spec> suite;
    suite.reserve(families_.size());
    for (size_t i = 0; i < families_.size(); ++i) {
        Spec spec;
        spec.name = families_[i].name;
        spec.log_size = log_size;
        spec.seed = seed + i;
        suite.push_back(std::move(spec));
    }
    return suite;
}

}  // namespace zkspeed::scenarios
