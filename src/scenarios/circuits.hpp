/**
 * @file
 * Parameterised circuit builders behind the scenario registry.
 *
 * These are the inline circuits that used to live in examples/rollup.cpp,
 * examples/private_transaction.cpp and ad-hoc tests, promoted to one
 * shared library so examples, benches and the conformance harness all
 * draw from the same workload source. Every builder is deterministic in
 * its (params, rng) inputs: equal inputs produce byte-identical
 * circuits and witnesses.
 */
#pragma once

#include <random>
#include <utility>

#include "hyperplonk/gadgets.hpp"

namespace zkspeed::scenarios::circuits {

using hyperplonk::CircuitIndex;
using hyperplonk::Witness;

/**
 * Rollup transfer batch (paper Table 3, "Rollup of N Pvt Tx"): a small
 * account ledger, a batch of in-circuit transfers, and public pre/post
 * weighted checksums binding the state transition.
 */
struct RollupParams {
    size_t accounts = 8;
    size_t transfers = 10;
};
std::pair<CircuitIndex, Witness> rollup(const RollupParams &params,
                                        std::mt19937_64 &rng,
                                        size_t min_vars = 2);

/**
 * Private transfer with 16-bit range checks on the amount and the
 * post-transfer sender balance (no negative balances, no wrap-around).
 * With `overdraft` the drawn amount exceeds the sender balance, so the
 * wrapped field value violates its own range-reconstruction gates: the
 * canonical corrupted-witness workload.
 */
struct TransferParams {
    unsigned bits = 16;
    bool overdraft = false;
};
std::pair<CircuitIndex, Witness> private_transaction(
    const TransferParams &params, std::mt19937_64 &rng,
    size_t min_vars = 2);

/**
 * Chain of Rescue-sponge hash invocations, final digest public (the
 * paper's hash-heavy Table 3 workload). With `custom_gates` the forward
 * S-boxes use the q_H x^5 gate (Jellyfish-style, 23-claim proofs).
 */
std::pair<CircuitIndex, Witness> rescue_chain(size_t links,
                                              bool custom_gates,
                                              std::mt19937_64 &rng,
                                              size_t min_vars = 2);

/**
 * Merkle membership proof of one keccak-derived leaf under a public
 * Rescue-hashed root: per level, boolean direction bits steer muxes
 * that order (current, sibling) into the sponge.
 */
std::pair<CircuitIndex, Witness> merkle_membership(size_t depth,
                                                   std::mt19937_64 &rng,
                                                   size_t min_vars = 2);

/**
 * A bank of independent range decompositions (boolean-gate dense):
 * `values` draws, each constrained to `bits` bits, their sum public.
 */
std::pair<CircuitIndex, Witness> range_bank(size_t values, unsigned bits,
                                            std::mt19937_64 &rng,
                                            size_t min_vars = 2);

/**
 * The same range-bank statement proved through the lookup argument:
 * one lookup gate per value against a lookup::Table::range(bits)
 * table, sum public. Head-to-head with range_bank this is the
 * constraint-count and prover-time win bench_lookup measures.
 */
std::pair<CircuitIndex, Witness> range_bank_lookup(size_t values,
                                                   unsigned bits,
                                                   std::mt19937_64 &rng,
                                                   size_t min_vars = 2);

/**
 * XOR-table Rescue variant: a chain of byte-wide XOR mixes proved via
 * a lookup::Table::xor_table(bits) (each gate also range-checks its
 * inputs for free), whose running state feeds one Rescue sponge hash;
 * XOR checksum and Rescue digest both public.
 */
std::pair<CircuitIndex, Witness> xor_rescue_lookup(size_t mixes,
                                                   unsigned bits,
                                                   std::mt19937_64 &rng,
                                                   size_t min_vars = 2);

/**
 * Permutation-heavy shuffle: a vector and a shuffled copy tied slot by
 * slot with copy constraints, plus both running sums asserted equal —
 * the wiring-identity (PermCheck) stress workload.
 */
std::pair<CircuitIndex, Witness> shuffle(size_t n, std::mt19937_64 &rng,
                                         size_t min_vars = 2);

/**
 * Merkle membership with the hash REALLY in-circuit: a keccak-derived
 * leaf digest folded up to the root through round-parameterised
 * in-circuit Keccak-f[1600] permutations on the fused multi-table
 * lookup argument (src/keccak). Leaf and root words are public.
 *
 * `rounds` scales the permutation depth (24 = the real hash; CI runs
 * reduced rounds, the soak job raises ZKSPEED_KECCAK_ROUNDS);
 * `wrong_sibling` perturbs one path sibling after the public root is
 * fixed, so the witness faithfully computes a root that contradicts
 * the circuit's own root-equality gates — the canonical wrong-path
 * attack, refused at the proving front door.
 */
struct KeccakMerkleParams {
    size_t depth = 1;
    unsigned rounds = 1;
    unsigned limb_bits = 4;
    bool wrong_sibling = false;
};
std::pair<CircuitIndex, Witness> keccak_merkle(
    const KeccakMerkleParams &params, std::mt19937_64 &rng,
    size_t min_vars = 2);

}  // namespace zkspeed::scenarios::circuits
