#include "pcs/mkzg.hpp"

#include <cassert>

#include "curve/fixed_base.hpp"
#include "ff/parallel.hpp"

namespace zkspeed::pcs {

Srs
Srs::generate(size_t num_vars, std::mt19937_64 &rng, bool keep_trapdoor)
{
    Srs srs;
    srs.num_vars = num_vars;
    std::vector<Fr> tau(num_vars);
    for (auto &t : tau) t = Fr::random(rng);

    srs.g = curve::g1_generator().to_affine();
    srs.h = curve::g2_generator().to_affine();

    // Level k basis: eq table over the last k entries of tau, scaled into
    // G1. Computed per level; batch-normalized with one inversion each.
    srs.lagrange.resize(num_vars + 1);
    curve::FixedBaseTable g_table(curve::g1_generator());
    for (size_t k = 0; k <= num_vars; ++k) {
        std::span<const Fr> suffix(tau.data() + (num_vars - k), k);
        Mle eq = Mle::eq_table(suffix);
        std::vector<G1> pts(eq.size());
        ff::parallel_for(eq.size(), [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                pts[i] = g_table.mul(eq[i]);
            }
        });
        srs.lagrange[k] = curve::batch_to_affine<curve::G1Params>(pts);
    }

    G2 h = curve::g2_generator();
    srs.tau_h.resize(num_vars);
    for (size_t i = 0; i < num_vars; ++i) {
        srs.tau_h[i] = h.mul(tau[i]).to_affine();
    }
    if (keep_trapdoor) srs.trapdoor = std::move(tau);
    return srs;
}

G1Affine
commit(const Srs &srs, const Mle &poly)
{
    assert(poly.num_vars() <= srs.num_vars);
    return curve::msm(srs.lagrange[poly.num_vars()], poly.evals())
        .to_affine();
}

G1Affine
commit_sparse(const Srs &srs, const Mle &poly, curve::MsmStats *stats)
{
    assert(poly.num_vars() <= srs.num_vars);
    return curve::msm_sparse(srs.lagrange[poly.num_vars()], poly.evals(),
                             stats)
        .to_affine();
}

std::pair<OpeningProof, Fr>
open(const Srs &srs, const Mle &poly, std::span<const Fr> point)
{
    assert(poly.num_vars() == point.size());
    const size_t mu = poly.num_vars();
    OpeningProof proof;
    proof.quotients.reserve(mu);
    Mle cur = poly;
    for (size_t j = 0; j < mu; ++j) {
        // Quotient for variable j: q_j[b] = f[b,1] - f[b,0] over the
        // remaining mu-j-1 variables.
        const size_t half = cur.size() / 2;
        std::vector<Fr> q(half);
        for (size_t b = 0; b < half; ++b) {
            q[b] = cur[2 * b + 1] - cur[2 * b];
        }
        // Halving MSM: 2^{mu-1-j} points at level mu-1-j.
        proof.quotients.push_back(
            curve::msm(srs.lagrange[mu - 1 - j], q).to_affine());
        cur.fix_first_variable(point[j]);
    }
    return {std::move(proof), cur[0]};
}

bool
accumulate(const Srs &srs, const G1Affine &comm, std::span<const Fr> point,
           const Fr &value, const OpeningProof &proof,
           zkspeed::verifier::PairingAccumulator &acc)
{
    const size_t mu = point.size();
    if (proof.quotients.size() != mu) return false;
    if (srs.num_vars < mu) return false;
    // Product form  e(C - v g, -h) * prod_k e(Pi_k, h^{tau_k} - z_k h) = 1
    // decomposed onto the fixed basis {h, h^{tau_k}}:
    //   slot h:        -(C - v g) - sum_k z_k Pi_k
    //   slot h^{tau_k}: Pi_k
    const Fr minus_one = -Fr::one();
    acc.add_term(minus_one, comm, srs.h);
    acc.add_term(value, srs.g, srs.h);
    // Polynomials smaller than the SRS are committed against the suffix
    // taus, so the matching tau_h entries start at this offset.
    const size_t off = srs.num_vars - mu;
    for (size_t k = 0; k < mu; ++k) {
        acc.add_term(-point[k], proof.quotients[k], srs.h);
        acc.add_pair(proof.quotients[k], srs.tau_h[off + k]);
    }
    return true;
}

bool
verify(const Srs &srs, const G1Affine &comm, std::span<const Fr> point,
       const Fr &value, const OpeningProof &proof)
{
    // Accumulate then flush: same equation, but the h-slot terms merge
    // into one small G1 MSM and no G2 scalar muls are performed.
    zkspeed::verifier::PairingAccumulator acc;
    if (!accumulate(srs, comm, point, value, proof, acc)) return false;
    return acc.check();
}

bool
verify_ideal(const Srs &srs, const G1Affine &comm,
             std::span<const Fr> point, const Fr &value,
             const OpeningProof &proof)
{
    const size_t mu = point.size();
    assert(srs.trapdoor.size() >= mu &&
           "ideal verification needs a test-mode SRS");
    if (proof.quotients.size() != mu) return false;
    // C - v g == sum_k (tau_k - z_k) Pi_k, checked with G1 scalar muls.
    G1 lhs = G1::from_affine(comm) + curve::g1_generator().mul(value).neg();
    G1 rhs = G1::identity();
    size_t off = srs.trapdoor.size() - mu;
    for (size_t k = 0; k < mu; ++k) {
        Fr s = srs.trapdoor[off + k] - point[k];
        rhs += G1::from_affine(proof.quotients[k]).mul(s);
    }
    return lhs == rhs;
}

}  // namespace zkspeed::pcs
