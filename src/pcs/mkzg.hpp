/**
 * @file
 * Multilinear KZG (PST13) polynomial commitment in the Lagrange (eq)
 * basis — the commitment scheme HyperPlonk is built on.
 *
 * Setup samples tau in Fr^mu and publishes, for every suffix length k,
 * the G1 points { eq((tau_{mu-k+1},...,tau_mu), b) * g : b in {0,1}^k }
 * plus { h, h^{tau_i} } in G2. Committing to an MLE is then a 2^mu-point
 * MSM of its evaluation table against the level-mu basis (paper Section
 * 2.4: scalars are the MLE table entries).
 *
 * Opening at z produces one quotient commitment per variable; quotient
 * k has 2^{mu-k} entries, so the opening performs MSMs of sizes
 * 2^{mu-1}, 2^{mu-2}, ..., 2^0 — exactly the halving MSM sequence of the
 * Polynomial Opening step (paper Section 3.3.5).
 *
 * Verification checks
 *   e(C - v g, h) == prod_k e(Pi_k, h^{tau_k - z_k})
 * either with real pairings or, in test mode, with the retained trapdoor
 * (the same equation pushed into G1 scalar arithmetic).
 */
#pragma once

#include <optional>
#include <random>
#include <vector>

#include "curve/msm.hpp"
#include "curve/pairing.hpp"
#include "mle/mle.hpp"
#include "verify/accumulator.hpp"

namespace zkspeed::pcs {

using curve::G1;
using curve::G1Affine;
using curve::G2;
using curve::G2Affine;
using ff::Fr;
using mle::Mle;

/** Universal structured reference string for a fixed variable count. */
struct Srs {
    size_t num_vars = 0;
    /**
     * lagrange[k][i] = eq(last k entries of tau, i) * g, for k = 0..mu.
     * lagrange[mu] is the commitment basis; smaller levels commit opening
     * quotients.
     */
    std::vector<std::vector<G1Affine>> lagrange;
    G1Affine g;
    G2Affine h;
    /** h^{tau_i}, i = 0..mu-1. */
    std::vector<G2Affine> tau_h;
    /** Retained only when generated in test mode; enables the fast
     * trapdoor verifier. Empty in production mode. */
    std::vector<Fr> trapdoor;

    /**
     * Run the (locally simulated) universal setup.
     * @param keep_trapdoor retain tau for the ideal verifier (tests).
     */
    static Srs generate(size_t num_vars, std::mt19937_64 &rng,
                        bool keep_trapdoor = true);
};

/** An opening proof: one quotient commitment per variable. */
struct OpeningProof {
    std::vector<G1Affine> quotients;
};

/** Commit to an MLE (Pippenger MSM against the Lagrange basis). */
G1Affine commit(const Srs &srs, const Mle &poly);

/** Sparse commit for 0/1-heavy tables (witness commitments). */
G1Affine commit_sparse(const Srs &srs, const Mle &poly,
                       curve::MsmStats *stats = nullptr);

/**
 * Open `poly` at `point`; returns the proof and the evaluation v.
 * Performs the halving MSM sequence described in the header comment.
 */
std::pair<OpeningProof, Fr> open(const Srs &srs, const Mle &poly,
                                 std::span<const Fr> point);

/**
 * Pairing-based verification of an opening: accumulate then flush
 * (one G1 MSM per distinct G2 point, one product-of-pairings check).
 */
bool verify(const Srs &srs, const G1Affine &comm, std::span<const Fr> point,
            const Fr &value, const OpeningProof &proof);

/**
 * Deferred verification: push the pairing terms this opening would
 * check into `acc` instead of pairing inline. The terms are decomposed
 * onto the SRS's fixed G2 basis {h, h^{tau_k}} —
 *   e(Pi_k, h^{tau_k - z_k}) = e(Pi_k, h^{tau_k}) * e(-z_k Pi_k, h)
 * — so no G2 scalar multiplication is ever performed, and openings
 * against the same SRS share their pairing slots when batch-flushed.
 *
 * @return false when the proof shape is wrong (nothing accumulated);
 *   true means "accumulated" — the opening is valid iff the flush
 *   accepts.
 */
bool accumulate(const Srs &srs, const G1Affine &comm,
                std::span<const Fr> point, const Fr &value,
                const OpeningProof &proof,
                zkspeed::verifier::PairingAccumulator &acc);

/**
 * Trapdoor ("ideal") verification: same equation checked in G1 using the
 * retained tau. Requires srs.trapdoor to be populated. Used to keep unit
 * tests fast; the pairing path is exercised by dedicated tests.
 */
bool verify_ideal(const Srs &srs, const G1Affine &comm,
                  std::span<const Fr> point, const Fr &value,
                  const OpeningProof &proof);

}  // namespace zkspeed::pcs
