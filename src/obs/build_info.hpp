/**
 * @file
 * Build identity shared by every artifact envelope: the same payload
 * the `zkspeed_build_info` info-gauge carries (DESIGN.md §10), plus the
 * toolchain facts CI archaeology needs to tell two builds apart — git
 * describe, compiler banner and the compile flags. SLO_report.json,
 * ATTRIB_report.json, BENCH_*.json / BENCH_summary.json and the flight
 * recorder's FLIGHT_report.json all embed `build_info_json()` under a
 * top-level `"build"` key, so any artifact can be traced back to the
 * exact binary that produced it.
 *
 * The git / flags strings are baked in at compile time through the
 * `ZKSPEED_GIT_DESCRIBE` / `ZKSPEED_BUILD_FLAGS` definitions CMake
 * passes to zkspeed_obs ("unknown" when absent, e.g. non-CMake builds).
 */
#pragma once

#include <string>

#include "obs/jsonv.hpp"

namespace zkspeed::obs {

struct BuildInfo {
    std::string git;       ///< `git describe --always --dirty` at configure
    std::string compiler;  ///< compiler banner (__VERSION__)
    std::string flags;     ///< CMAKE_CXX_FLAGS + build-type flags
    std::string format;    ///< wire/serialization format version
    std::string features;  ///< enabled feature list
};

/** The process-wide build identity (computed once). */
const BuildInfo &build_info();

/** Ordered `{git, compiler, flags, format, features}` object. */
jsonv::Value build_info_json();

/** `build_info_json().render(indent)` — for string-built documents
 * (pass -1 for a compact single-line splice). */
std::string build_info_json_text(int indent = -1);

}  // namespace zkspeed::obs
