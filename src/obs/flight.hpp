/**
 * @file
 * Flight recorder: a pre-serialized crash snapshot that survives fatal
 * signals (DESIGN.md §14).
 *
 * A process that dies mid-proof must leave a forensic record, but a
 * SIGSEGV handler may only call async-signal-safe functions — no
 * allocation, no locks, no snprintf. The resolution is to do all of
 * the expensive work *before* the crash: `refresh()` (called from
 * normal context — install(), the log-record flow via
 * `maybe_refresh()`, and `flush_all()`) serializes a complete
 * FLIGHT_report.json document — build identity, metrics summary, the
 * tail of the log ring, every open span — into one of two static
 * buffers and publishes (buffer index, length, signal-field offset) as
 * a single atomic word. The signal handler then only: loads that word,
 * patches the fixed-width `"signal"` digits in place, `write()`s the
 * buffer to a file descriptor opened at install time, `ftruncate()`s,
 * and re-raises with the default disposition. Every one of those is on
 * the async-signal-safe list.
 *
 * Worker-thread exceptions are not signals: `note_worker_exception()`
 * runs in normal context, so it serializes a fresh snapshot with
 * `reason = "worker_exception"` and the exception text, and writes it
 * immediately (runtime/service.cpp calls it from its catch-all sites).
 *
 * Document schema ("zkspeed-flight-v1"):
 *   {schema, signal, reason, detail, captured_ts_us, build{...},
 *    metrics{series,jobs_ok,jobs_rejected,jobs_failed},
 *    log{recorded,dropped,rate_limited,events:[...]},
 *    trace{live_spans,dropped,open:[...]}}
 * `signal` is -1 unless a handler patched the delivered signal number.
 */
#pragma once

#include <cstdint>
#include <string>

namespace zkspeed::obs::flight {

struct Options {
    /** Report path; empty = $ZKSPEED_FLIGHT_OUT or FLIGHT_report.json. */
    std::string path;
    size_t max_log_events = 64;
    size_t max_open_spans = 32;
    /** Debounce for maybe_refresh() (snapshot staleness bound). */
    double refresh_interval_ms = 250.0;
    /** Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers (off for
     * tests that only exercise the worker-exception path). */
    bool install_signal_handlers = true;
};

/**
 * Open the report fd, seed the first snapshot and (by default) install
 * the fatal-signal handlers. Idempotent: a second call re-points the
 * recorder at the new path. @return false if the path cannot be opened.
 */
bool install(const Options &opts = {});

bool installed();

/** Re-serialize and publish the snapshot now (normal context only). */
void refresh();

/** Debounced refresh(): no-op unless installed and the last snapshot
 * is older than Options::refresh_interval_ms. Hooked into the log
 * record flow so the snapshot tracks a live process. */
void maybe_refresh();

/**
 * A worker thread caught a would-have-been-fatal exception: write a
 * full snapshot (reason "worker_exception", `detail` = where + what)
 * to the report file immediately. @return false when not installed or
 * the write failed.
 */
bool note_worker_exception(const char *where, const char *what);

/** Build one snapshot document (exposed so tests can pin the schema
 * without crashing). `signal` < 0 renders as -1. */
std::string snapshot_json(const char *reason, const char *detail,
                          int signal, size_t max_log_events = 64,
                          size_t max_open_spans = 32);

}  // namespace zkspeed::obs::flight
