/**
 * @file
 * Minimal JSON document model shared by the observability artifacts:
 * an ordered value tree (`Value`), a strict recursive-descent parser
 * and a renderer whose output round-trips through the parser.
 *
 * Three consumers, one schema discipline:
 *   - obs/attrib renders ATTRIB_report.json and parses it back for the
 *     schema round-trip test;
 *   - bench/report.hpp wraps every bench's metrics in the unified
 *     `zkspeed-bench-v1` envelope;
 *   - bench_attrib re-reads BENCH_*.json artifacts to merge them into
 *     BENCH_summary.json and to diff bench/baselines.json.
 *
 * Design notes: objects preserve insertion order (artifact diffs stay
 * stable run to run); integers are kept distinct from doubles so exact
 * counters (modmul counts, constraint counts) survive a render/parse
 * round trip bit-exactly; doubles render with %.17g which round-trips
 * IEEE-754 exactly. Header-only; no dependencies beyond the standard
 * library.
 */
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace zkspeed::obs::jsonv {

class Value
{
  public:
    enum class Kind : uint8_t {
        null_v = 0,
        bool_v,
        int_v,
        double_v,
        string_v,
        array_v,
        object_v,
    };

    Kind kind = Kind::null_v;
    bool boolean = false;
    int64_t integer = 0;
    double number = 0;
    std::string str;
    std::vector<Value> items;                            ///< array_v
    std::vector<std::pair<std::string, Value>> fields;   ///< object_v

    static Value
    null()
    {
        return Value{};
    }

    static Value
    of(bool b)
    {
        Value v;
        v.kind = Kind::bool_v;
        v.boolean = b;
        return v;
    }

    static Value
    of(int64_t i)
    {
        Value v;
        v.kind = Kind::int_v;
        v.integer = i;
        return v;
    }

    // size_t / uint64_t / uint32_t funnel through here (on LP64 a
    // separate size_t overload would collide with uint64_t).
    static Value
    of(uint64_t u)
    {
        return of(int64_t(u));
    }

    static Value
    of(int i)
    {
        return of(int64_t(i));
    }

    static Value
    of(double d)
    {
        Value v;
        v.kind = Kind::double_v;
        v.number = d;
        return v;
    }

    static Value
    of(std::string s)
    {
        Value v;
        v.kind = Kind::string_v;
        v.str = std::move(s);
        return v;
    }

    static Value
    of(const char *s)
    {
        return of(std::string(s));
    }

    static Value
    array()
    {
        Value v;
        v.kind = Kind::array_v;
        return v;
    }

    static Value
    object()
    {
        Value v;
        v.kind = Kind::object_v;
        return v;
    }

    bool is_null() const { return kind == Kind::null_v; }
    bool is_bool() const { return kind == Kind::bool_v; }
    bool is_string() const { return kind == Kind::string_v; }
    bool is_array() const { return kind == Kind::array_v; }
    bool is_object() const { return kind == Kind::object_v; }

    bool
    is_number() const
    {
        return kind == Kind::int_v || kind == Kind::double_v;
    }

    /** Exact-integer check (doubles never count, even whole ones). */
    bool is_integer() const { return kind == Kind::int_v; }

    double
    as_double() const
    {
        return kind == Kind::int_v ? double(integer) : number;
    }

    int64_t
    as_int() const
    {
        return kind == Kind::int_v ? integer : int64_t(number);
    }

    uint64_t as_u64() const { return uint64_t(as_int()); }

    /** Object field append (builder style; keeps insertion order). */
    Value &
    set(std::string key, Value v)
    {
        fields.emplace_back(std::move(key), std::move(v));
        return *this;
    }

    /** Array element append (builder style). */
    Value &
    push(Value v)
    {
        items.push_back(std::move(v));
        return *this;
    }

    /** First field with this key, or nullptr (objects only). */
    const Value *
    find(std::string_view key) const
    {
        for (const auto &[k, v] : fields) {
            if (k == key) return &v;
        }
        return nullptr;
    }

    /**
     * Render as JSON text. `indent >= 0` pretty-prints with that many
     * leading spaces on the outermost level (children add 2); a
     * negative indent renders compact single-line JSON.
     */
    std::string
    render(int indent = 0) const
    {
        std::string out;
        render_to(out, indent);
        if (indent >= 0) out += "\n";
        return out;
    }

  private:
    static void
    escape_to(std::string &out, const std::string &s)
    {
        out += '"';
        for (char c : s) {
            switch (c) {
                case '"': out += "\\\""; break;
                case '\\': out += "\\\\"; break;
                case '\n': out += "\\n"; break;
                case '\r': out += "\\r"; break;
                case '\t': out += "\\t"; break;
                default:
                    if (static_cast<unsigned char>(c) < 0x20) {
                        char buf[8];
                        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                        out += buf;
                    } else {
                        out += c;
                    }
            }
        }
        out += '"';
    }

    void
    render_to(std::string &out, int indent) const
    {
        const bool pretty = indent >= 0;
        auto newline = [&](int level) {
            if (!pretty) return;
            out += '\n';
            out.append(size_t(level), ' ');
        };
        switch (kind) {
            case Kind::null_v: out += "null"; break;
            case Kind::bool_v: out += boolean ? "true" : "false"; break;
            case Kind::int_v: out += std::to_string(integer); break;
            case Kind::double_v: {
                char buf[40];
                std::snprintf(buf, sizeof(buf), "%.17g", number);
                out += buf;
                break;
            }
            case Kind::string_v: escape_to(out, str); break;
            case Kind::array_v: {
                out += '[';
                for (size_t i = 0; i < items.size(); ++i) {
                    if (i > 0) out += ',';
                    newline(indent + 2);
                    items[i].render_to(out,
                                       pretty ? indent + 2 : indent);
                }
                if (!items.empty()) newline(indent);
                out += ']';
                break;
            }
            case Kind::object_v: {
                out += '{';
                for (size_t i = 0; i < fields.size(); ++i) {
                    if (i > 0) out += ',';
                    newline(indent + 2);
                    escape_to(out, fields[i].first);
                    out += pretty ? ": " : ":";
                    fields[i].second.render_to(
                        out, pretty ? indent + 2 : indent);
                }
                if (!fields.empty()) newline(indent);
                out += '}';
                break;
            }
        }
    }
};

namespace detail {

struct Parser {
    const char *p;
    const char *end;
    bool ok = true;

    void
    skip_ws()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r')) {
            ++p;
        }
    }

    bool
    consume(char c)
    {
        skip_ws();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool
    literal(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (size_t(end - p) < n || std::memcmp(p, lit, n) != 0) {
            return false;
        }
        p += n;
        return true;
    }

    std::string
    parse_string()
    {
        std::string s;
        if (!consume('"')) {
            ok = false;
            return s;
        }
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end) break;
                switch (*p) {
                    case '"': s += '"'; break;
                    case '\\': s += '\\'; break;
                    case '/': s += '/'; break;
                    case 'b': s += '\b'; break;
                    case 'f': s += '\f'; break;
                    case 'n': s += '\n'; break;
                    case 'r': s += '\r'; break;
                    case 't': s += '\t'; break;
                    case 'u': {
                        if (end - p < 5) {
                            ok = false;
                            return s;
                        }
                        char hex[5] = {p[1], p[2], p[3], p[4], 0};
                        unsigned code =
                            unsigned(std::strtoul(hex, nullptr, 16));
                        // Encode the BMP code point as UTF-8.
                        if (code < 0x80) {
                            s += char(code);
                        } else if (code < 0x800) {
                            s += char(0xC0 | (code >> 6));
                            s += char(0x80 | (code & 0x3F));
                        } else {
                            s += char(0xE0 | (code >> 12));
                            s += char(0x80 | ((code >> 6) & 0x3F));
                            s += char(0x80 | (code & 0x3F));
                        }
                        p += 4;
                        break;
                    }
                    default: ok = false; return s;
                }
                ++p;
            } else {
                s += *p++;
            }
        }
        if (!consume('"')) ok = false;
        return s;
    }

    Value
    parse_number()
    {
        const char *start = p;
        if (p < end && *p == '-') ++p;
        bool is_int = true;
        while (p < end &&
               (std::isdigit(static_cast<unsigned char>(*p)) ||
                *p == '.' || *p == 'e' || *p == 'E' || *p == '+' ||
                *p == '-')) {
            if (*p == '.' || *p == 'e' || *p == 'E') is_int = false;
            ++p;
        }
        std::string tok(start, p);
        if (tok.empty() || tok == "-") {
            ok = false;
            return Value::null();
        }
        if (is_int) {
            errno = 0;
            long long v = std::strtoll(tok.c_str(), nullptr, 10);
            if (errno == 0) return Value::of(int64_t(v));
            // Out-of-range integer literal: fall back to double.
        }
        return Value::of(std::strtod(tok.c_str(), nullptr));
    }

    Value
    parse_value(int depth)
    {
        if (depth > 64) {
            ok = false;
            return Value::null();
        }
        skip_ws();
        if (p >= end) {
            ok = false;
            return Value::null();
        }
        switch (*p) {
            case '{': {
                ++p;
                Value v = Value::object();
                skip_ws();
                if (consume('}')) return v;
                while (ok) {
                    std::string key = parse_string();
                    if (!ok || !consume(':')) {
                        ok = false;
                        break;
                    }
                    v.set(std::move(key), parse_value(depth + 1));
                    if (consume(',')) continue;
                    if (consume('}')) return v;
                    ok = false;
                }
                return v;
            }
            case '[': {
                ++p;
                Value v = Value::array();
                skip_ws();
                if (consume(']')) return v;
                while (ok) {
                    v.push(parse_value(depth + 1));
                    if (consume(',')) continue;
                    if (consume(']')) return v;
                    ok = false;
                }
                return v;
            }
            case '"': return Value::of(parse_string());
            case 't':
                if (literal("true")) return Value::of(true);
                ok = false;
                return Value::null();
            case 'f':
                if (literal("false")) return Value::of(false);
                ok = false;
                return Value::null();
            case 'n':
                if (literal("null")) return Value::null();
                ok = false;
                return Value::null();
            default: return parse_number();
        }
    }
};

}  // namespace detail

/** Strict parse of a complete JSON document (trailing garbage fails). */
inline std::optional<Value>
parse(std::string_view text)
{
    detail::Parser parser{text.data(), text.data() + text.size()};
    Value v = parser.parse_value(0);
    parser.skip_ws();
    if (!parser.ok || parser.p != parser.end) return std::nullopt;
    return v;
}

}  // namespace zkspeed::obs::jsonv
