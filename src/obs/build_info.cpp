#include "obs/build_info.hpp"

namespace zkspeed::obs {

namespace {

#ifndef ZKSPEED_GIT_DESCRIBE
#define ZKSPEED_GIT_DESCRIBE "unknown"
#endif
#ifndef ZKSPEED_BUILD_FLAGS
#define ZKSPEED_BUILD_FLAGS "unknown"
#endif

#if defined(__VERSION__)
#if defined(__clang__)
#define ZKSPEED_COMPILER "clang " __VERSION__
#else
#define ZKSPEED_COMPILER "gcc " __VERSION__
#endif
#else
#define ZKSPEED_COMPILER "unknown"
#endif

}  // namespace

const BuildInfo &
build_info()
{
    static const BuildInfo info = [] {
        BuildInfo b;
        b.git = ZKSPEED_GIT_DESCRIBE;
        b.compiler = ZKSPEED_COMPILER;
        b.flags = ZKSPEED_BUILD_FLAGS;
        // Keep these two in lockstep with register_build_info(): the
        // gauge's label payload and the artifact envelopes must agree
        // on what the build is.
        b.format = "v3";
        b.features = "lookup,keccak,loadgen,attrib,http,log,flight";
        return b;
    }();
    return info;
}

jsonv::Value
build_info_json()
{
    const BuildInfo &b = build_info();
    jsonv::Value o = jsonv::Value::object();
    o.set("git", jsonv::Value::of(b.git));
    o.set("compiler", jsonv::Value::of(b.compiler));
    o.set("flags", jsonv::Value::of(b.flags));
    o.set("format", jsonv::Value::of(b.format));
    o.set("features", jsonv::Value::of(b.features));
    return o;
}

std::string
build_info_json_text(int indent)
{
    return build_info_json().render(indent);
}

}  // namespace zkspeed::obs
