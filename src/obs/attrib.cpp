#include "obs/attrib.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "obs/build_info.hpp"
#include "obs/jsonv.hpp"

namespace zkspeed::obs::attrib {

namespace {

/**
 * The attribution group table: the fixed many-to-many mapping between
 * the measured ProfileRegion vocabulary (paper Table-1 rows) and the
 * chip model's kernel_cycles vocabulary (Fig-10 units).
 *
 * Grouping notes:
 *  - "Commit Front" fuses the wiring and lookup commitment pipelines:
 *    on the measured side the lookup front reuses the "Fraction MLE" /
 *    "Wire Identity MSMs" region names, so the two modeled fronts
 *    ("Wiring MSMs" + "Lookup Front") must be joined as one group for
 *    the correspondence to stay exact.
 *  - Sumcheck groups join whole: both the measured "<X> Rounds" span
 *    and the modeled sumcheck kernel include the MLE-update work
 *    overlapped with the rounds.
 *  - "Linear Combine" joins the model's "Other" bucket (the y-MLE and
 *    g' combine passes); the model's Build-MLE cycles are broken out
 *    as their own kernel so the measured "Build MLE" regions have a
 *    modeled twin.
 */
struct GroupDef {
    const char *name;
    std::vector<const char *> measured;
    std::vector<const char *> modeled;
};

const std::vector<GroupDef> &
groups()
{
    static const std::vector<GroupDef> defs = {
        {"Witness MSMs", {"Witness MSMs"}, {"Witness MSMs"}},
        {"Build MLE", {"Build MLE"}, {"Build MLE"}},
        {"ZeroCheck", {"ZeroCheck Rounds"}, {"ZeroCheck"}},
        {"Commit Front",
         {"Construct N & D", "Fraction MLE", "Product MLE",
          "Wire Identity MSMs"},
         {"Wiring MSMs", "Lookup Front"}},
        {"PermCheck", {"PermCheck Rounds"}, {"PermCheck"}},
        {"LookupCheck", {"LookupCheck Rounds"}, {"LookupCheck"}},
        {"Batch Evaluations", {"Batch Evaluations"}, {"FinalEval"}},
        {"OpenCheck", {"OpenCheck Rounds"}, {"OpenCheck"}},
        {"Linear Combine", {"Linear Combine"}, {"Other"}},
        {"Poly Open MSMs", {"Poly Open MSMs"}, {"PolyOpen MSMs"}},
    };
    return defs;
}

const std::unordered_map<std::string, size_t> &
measured_index()
{
    static const std::unordered_map<std::string, size_t> idx = [] {
        std::unordered_map<std::string, size_t> m;
        for (size_t g = 0; g < groups().size(); ++g) {
            for (const char *name : groups()[g].measured) m[name] = g;
        }
        return m;
    }();
    return idx;
}

const std::unordered_map<std::string, size_t> &
modeled_index()
{
    static const std::unordered_map<std::string, size_t> idx = [] {
        std::unordered_map<std::string, size_t> m;
        for (size_t g = 0; g < groups().size(); ++g) {
            for (const char *name : groups()[g].modeled) m[name] = g;
        }
        return m;
    }();
    return idx;
}

struct MeasuredAgg {
    double seconds = 0;
    uint64_t modmuls = 0;
    uint64_t bytes = 0;
    uint64_t calls = 0;
};

struct ModeledAgg {
    uint32_t mu = 0;
    double sw_ms = 0;
    double chip_ms = 0;
    /** group index -> cycles; SIZE_MAX keys unmapped modeled names. */
    std::map<std::string, uint64_t> cycles;
};

double
span_arg(const SpanEvent &ev, const char *key)
{
    for (const auto &[k, v] : ev.args) {
        if (k == key) return v;
    }
    return 0;
}

void
finalize_rows(std::vector<KernelRow> &rows, double clock_ghz)
{
    double total_seconds = 0;
    uint64_t total_cycles = 0;
    for (const KernelRow &r : rows) {
        total_seconds += r.measured_seconds;
        total_cycles += r.modeled_cycles;
    }
    for (KernelRow &r : rows) {
        r.measured_share =
            total_seconds > 0 ? r.measured_seconds / total_seconds : 0;
        r.modeled_share =
            total_cycles > 0
                ? double(r.modeled_cycles) / double(total_cycles)
                : 0;
        r.drift_ratio = r.modeled_share > 0
                            ? r.measured_share / r.modeled_share
                            : 0;
        r.modmuls_per_byte =
            r.measured_bytes > 0
                ? double(r.measured_modmuls) / double(r.measured_bytes)
                : 0;
        double modeled_seconds =
            double(r.modeled_cycles) / (clock_ghz * 1e9);
        r.implied_speedup = modeled_seconds > 0
                                ? r.measured_seconds / modeled_seconds
                                : 0;
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const KernelRow &a, const KernelRow &b) {
                         return a.modeled_cycles > b.modeled_cycles;
                     });
}

std::vector<KernelRow>
make_rows(const std::map<std::string, MeasuredAgg> &measured,
          const std::map<std::string, uint64_t> &modeled,
          double clock_ghz)
{
    std::map<std::string, KernelRow> by_name;
    for (const auto &[name, agg] : measured) {
        KernelRow &r = by_name[name];
        r.kernel = name;
        r.measured_seconds = agg.seconds;
        r.measured_modmuls = agg.modmuls;
        r.measured_bytes = agg.bytes;
        r.calls = agg.calls;
    }
    for (const auto &[name, cycles] : modeled) {
        KernelRow &r = by_name[name];
        r.kernel = name;
        r.modeled_cycles += cycles;
    }
    std::vector<KernelRow> rows;
    rows.reserve(by_name.size());
    for (auto &[name, row] : by_name) rows.push_back(std::move(row));
    finalize_rows(rows, clock_ghz);
    return rows;
}

}  // namespace

std::vector<std::string>
known_measured_kernels()
{
    std::vector<std::string> out;
    for (const auto &g : groups()) {
        for (const char *name : g.measured) out.push_back(name);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

Report
build(const std::vector<SpanEvent> &events,
      const std::vector<ModeledJob> &jobs, const Options &opts)
{
    Report report;
    report.clock_ghz = opts.clock_ghz;

    // Parent links resolve over the whole dump: a prover span inside
    // the window may hang off a service span that started before it.
    std::unordered_map<uint64_t, const SpanEvent *> by_id;
    by_id.reserve(events.size());
    for (const SpanEvent &ev : events) by_id[ev.span_id] = &ev;

    auto resolve_job = [&](const SpanEvent &ev) -> uint64_t {
        const SpanEvent *cur = &ev;
        for (int hop = 0; hop < 64; ++hop) {
            if (cur->correlation_id != 0) return cur->correlation_id;
            if (cur->parent_id == 0) return 0;
            auto it = by_id.find(cur->parent_id);
            if (it == by_id.end()) return 0;
            cur = it->second;
        }
        return 0;
    };

    // Measured side: per job, per group.
    std::map<uint64_t, std::map<std::string, MeasuredAgg>> measured;
    std::set<std::string> unmapped;
    for (const SpanEvent &ev : events) {
        if (ev.category != "prover" || ev.ts_us < opts.min_ts_us) {
            continue;
        }
        ++report.spans_seen;
        auto git = measured_index().find(ev.name);
        if (git == measured_index().end()) {
            unmapped.insert(ev.name);
            continue;
        }
        uint64_t job_id = resolve_job(ev);
        if (job_id == 0) continue;
        MeasuredAgg &agg =
            measured[job_id][groups()[git->second].name];
        agg.seconds += ev.dur_us / 1e6;
        agg.modmuls += uint64_t(span_arg(ev, "modmul_fr") +
                                span_arg(ev, "modmul_fq"));
        agg.bytes += uint64_t(span_arg(ev, "bytes_in") +
                              span_arg(ev, "bytes_out"));
        ++agg.calls;
    }
    report.unmapped_kernels.assign(unmapped.begin(), unmapped.end());

    // Modeled side: per job id (repeat submissions of one id fold).
    std::map<uint64_t, ModeledAgg> modeled;
    for (const ModeledJob &job : jobs) {
        if (job.job_id == 0) continue;
        ModeledAgg &agg = modeled[job.job_id];
        agg.mu = job.mu;
        agg.sw_ms += job.sw_ms;
        agg.chip_ms += job.chip_ms;
        for (const auto &[name, cycles] : job.kernel_cycles) {
            auto git = modeled_index().find(name);
            // Unmapped modeled kernels keep their own name so their
            // cycles surface (as a row with no measured twin) instead
            // of silently vanishing from the shares.
            const std::string group =
                git != modeled_index().end()
                    ? std::string(groups()[git->second].name)
                    : "model:" + name;
            agg.cycles[group] += cycles;
        }
    }

    // Join per job id; aggregate over joined jobs only so both sides
    // of every share describe the same work.
    std::map<std::string, MeasuredAgg> measured_total;
    std::map<std::string, uint64_t> modeled_total;
    for (const auto &[job_id, mod] : modeled) {
        auto mit = measured.find(job_id);
        if (mit == measured.end()) {
            ++report.jobs_modeled_only;
            continue;
        }
        ++report.jobs_joined;
        JobRow row;
        row.job_id = job_id;
        row.mu = mod.mu;
        row.sw_ms = mod.sw_ms;
        row.chip_ms = mod.chip_ms;
        row.kernels =
            make_rows(mit->second, mod.cycles, opts.clock_ghz);
        for (const auto &[group, agg] : mit->second) {
            MeasuredAgg &total = measured_total[group];
            total.seconds += agg.seconds;
            total.modmuls += agg.modmuls;
            total.bytes += agg.bytes;
            total.calls += agg.calls;
            report.spans_joined += agg.calls;
        }
        for (const auto &[group, cycles] : mod.cycles) {
            modeled_total[group] += cycles;
        }
        report.jobs.push_back(std::move(row));
    }
    for (const auto &[job_id, agg] : measured) {
        if (modeled.find(job_id) == modeled.end()) {
            ++report.jobs_measured_only;
        }
    }

    report.kernels =
        make_rows(measured_total, modeled_total, opts.clock_ghz);
    for (const KernelRow &r : report.kernels) {
        report.measured_total_seconds += r.measured_seconds;
        report.modeled_total_cycles += r.modeled_cycles;
    }
    return report;
}

void
export_to_registry(const Report &report, MetricsRegistry &reg)
{
    for (const KernelRow &r : report.kernels) {
        MetricId drift = reg.gauge(
            "zkspeed_model_drift_ratio", {{"kernel", r.kernel}},
            "Measured share of prover runtime over the chip model's "
            "share for this kernel (1.0 = software and model agree)");
        reg.set(drift, r.drift_ratio);
        MetricId intensity = reg.gauge(
            "zkspeed_kernel_modmuls_per_byte", {{"kernel", r.kernel}},
            "Live Table-1 arithmetic intensity: measured modmuls per "
            "declared logical byte moved");
        reg.set(intensity, r.modmuls_per_byte);
    }
}

namespace {

jsonv::Value
kernel_row_json(const KernelRow &r)
{
    jsonv::Value o = jsonv::Value::object();
    o.set("kernel", jsonv::Value::of(r.kernel));
    o.set("measured_seconds", jsonv::Value::of(r.measured_seconds));
    o.set("measured_modmuls", jsonv::Value::of(r.measured_modmuls));
    o.set("measured_bytes", jsonv::Value::of(r.measured_bytes));
    o.set("calls", jsonv::Value::of(r.calls));
    o.set("modeled_cycles", jsonv::Value::of(r.modeled_cycles));
    o.set("measured_share", jsonv::Value::of(r.measured_share));
    o.set("modeled_share", jsonv::Value::of(r.modeled_share));
    o.set("drift_ratio", jsonv::Value::of(r.drift_ratio));
    o.set("modmuls_per_byte", jsonv::Value::of(r.modmuls_per_byte));
    o.set("implied_speedup", jsonv::Value::of(r.implied_speedup));
    return o;
}

const char *const kKernelRowKeys[] = {
    "kernel",          "measured_seconds", "measured_modmuls",
    "measured_bytes",  "calls",            "modeled_cycles",
    "measured_share",  "modeled_share",    "drift_ratio",
    "modmuls_per_byte", "implied_speedup",
};

const char *const kJobRowKeys[] = {"job", "mu", "sw_ms", "chip_ms",
                                   "kernels"};

const char *const kReportKeys[] = {
    "schema",           "build",
    "clock_ghz",
    "measured_total_seconds", "modeled_total_cycles",
    "jobs_joined",      "jobs_modeled_only",
    "jobs_measured_only", "spans_seen",
    "spans_joined",     "unmapped_kernels",
    "kernels",          "jobs",
};

/** Strict object shape check: every listed key present, none extra. */
template <size_t N>
bool
exact_keys(const jsonv::Value &obj, const char *const (&keys)[N])
{
    if (!obj.is_object() || obj.fields.size() != N) return false;
    for (const char *key : keys) {
        if (obj.find(key) == nullptr) return false;
    }
    return true;
}

std::optional<KernelRow>
parse_kernel_row(const jsonv::Value &o)
{
    if (!exact_keys(o, kKernelRowKeys)) return std::nullopt;
    for (const auto &[key, v] : o.fields) {
        bool want_string = std::string_view(key) == "kernel";
        if (want_string != v.is_string()) return std::nullopt;
        if (!want_string && !v.is_number()) return std::nullopt;
    }
    KernelRow r;
    r.kernel = o.find("kernel")->str;
    r.measured_seconds = o.find("measured_seconds")->as_double();
    r.measured_modmuls = o.find("measured_modmuls")->as_u64();
    r.measured_bytes = o.find("measured_bytes")->as_u64();
    r.calls = o.find("calls")->as_u64();
    r.modeled_cycles = o.find("modeled_cycles")->as_u64();
    r.measured_share = o.find("measured_share")->as_double();
    r.modeled_share = o.find("modeled_share")->as_double();
    r.drift_ratio = o.find("drift_ratio")->as_double();
    r.modmuls_per_byte = o.find("modmuls_per_byte")->as_double();
    r.implied_speedup = o.find("implied_speedup")->as_double();
    return r;
}

}  // namespace

std::string
render_json(const Report &report)
{
    jsonv::Value doc = jsonv::Value::object();
    doc.set("schema", jsonv::Value::of("zkspeed-attrib-v1"));
    doc.set("build", build_info_json());
    doc.set("clock_ghz", jsonv::Value::of(report.clock_ghz));
    doc.set("measured_total_seconds",
            jsonv::Value::of(report.measured_total_seconds));
    doc.set("modeled_total_cycles",
            jsonv::Value::of(report.modeled_total_cycles));
    doc.set("jobs_joined", jsonv::Value::of(report.jobs_joined));
    doc.set("jobs_modeled_only",
            jsonv::Value::of(report.jobs_modeled_only));
    doc.set("jobs_measured_only",
            jsonv::Value::of(report.jobs_measured_only));
    doc.set("spans_seen", jsonv::Value::of(report.spans_seen));
    doc.set("spans_joined", jsonv::Value::of(report.spans_joined));
    jsonv::Value unmapped = jsonv::Value::array();
    for (const std::string &k : report.unmapped_kernels) {
        unmapped.push(jsonv::Value::of(k));
    }
    doc.set("unmapped_kernels", std::move(unmapped));
    jsonv::Value kernels = jsonv::Value::array();
    for (const KernelRow &r : report.kernels) {
        kernels.push(kernel_row_json(r));
    }
    doc.set("kernels", std::move(kernels));
    jsonv::Value jobs = jsonv::Value::array();
    for (const JobRow &j : report.jobs) {
        jsonv::Value o = jsonv::Value::object();
        o.set("job", jsonv::Value::of(j.job_id));
        o.set("mu", jsonv::Value::of(uint64_t(j.mu)));
        o.set("sw_ms", jsonv::Value::of(j.sw_ms));
        o.set("chip_ms", jsonv::Value::of(j.chip_ms));
        jsonv::Value rows = jsonv::Value::array();
        for (const KernelRow &r : j.kernels) {
            rows.push(kernel_row_json(r));
        }
        o.set("kernels", std::move(rows));
        jobs.push(std::move(o));
    }
    doc.set("jobs", std::move(jobs));
    return doc.render();
}

std::optional<Report>
parse_json(const std::string &text)
{
    auto parsed = jsonv::parse(text);
    if (!parsed.has_value()) return std::nullopt;
    const jsonv::Value &doc = *parsed;
    if (!exact_keys(doc, kReportKeys)) return std::nullopt;
    const jsonv::Value *schema = doc.find("schema");
    if (!schema->is_string() || schema->str != "zkspeed-attrib-v1") {
        return std::nullopt;
    }
    if (!doc.find("build")->is_object()) return std::nullopt;
    Report report;
    auto number = [&](const char *key, double &out) {
        const jsonv::Value *v = doc.find(key);
        if (!v->is_number()) return false;
        out = v->as_double();
        return true;
    };
    auto count = [&](const char *key, size_t &out) {
        const jsonv::Value *v = doc.find(key);
        if (!v->is_integer()) return false;
        out = size_t(v->as_u64());
        return true;
    };
    uint64_t total_cycles = 0;
    const jsonv::Value *cycles = doc.find("modeled_total_cycles");
    if (!cycles->is_integer()) return std::nullopt;
    total_cycles = cycles->as_u64();
    if (!number("clock_ghz", report.clock_ghz) ||
        !number("measured_total_seconds",
                report.measured_total_seconds) ||
        !count("jobs_joined", report.jobs_joined) ||
        !count("jobs_modeled_only", report.jobs_modeled_only) ||
        !count("jobs_measured_only", report.jobs_measured_only) ||
        !count("spans_seen", report.spans_seen) ||
        !count("spans_joined", report.spans_joined)) {
        return std::nullopt;
    }
    report.modeled_total_cycles = total_cycles;
    const jsonv::Value *unmapped = doc.find("unmapped_kernels");
    if (!unmapped->is_array()) return std::nullopt;
    for (const jsonv::Value &v : unmapped->items) {
        if (!v.is_string()) return std::nullopt;
        report.unmapped_kernels.push_back(v.str);
    }
    const jsonv::Value *kernels = doc.find("kernels");
    if (!kernels->is_array()) return std::nullopt;
    for (const jsonv::Value &v : kernels->items) {
        auto row = parse_kernel_row(v);
        if (!row.has_value()) return std::nullopt;
        report.kernels.push_back(std::move(*row));
    }
    const jsonv::Value *jobs = doc.find("jobs");
    if (!jobs->is_array()) return std::nullopt;
    for (const jsonv::Value &v : jobs->items) {
        if (!exact_keys(v, kJobRowKeys)) return std::nullopt;
        JobRow job;
        const jsonv::Value *id = v.find("job");
        const jsonv::Value *mu = v.find("mu");
        const jsonv::Value *sw = v.find("sw_ms");
        const jsonv::Value *chip = v.find("chip_ms");
        const jsonv::Value *rows = v.find("kernels");
        if (!id->is_integer() || !mu->is_integer() ||
            !sw->is_number() || !chip->is_number() ||
            !rows->is_array()) {
            return std::nullopt;
        }
        job.job_id = id->as_u64();
        job.mu = uint32_t(mu->as_u64());
        job.sw_ms = sw->as_double();
        job.chip_ms = chip->as_double();
        for (const jsonv::Value &rv : rows->items) {
            auto row = parse_kernel_row(rv);
            if (!row.has_value()) return std::nullopt;
            job.kernels.push_back(std::move(*row));
        }
        report.jobs.push_back(std::move(job));
    }
    return report;
}

}  // namespace zkspeed::obs::attrib
