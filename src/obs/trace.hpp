/**
 * @file
 * Span-based tracing: a process-wide TraceRecorder with a bounded ring
 * buffer of completed spans, exportable as Chrome trace-event JSON
 * (loadable in Perfetto / chrome://tracing).
 *
 * Spans form per-job trees: the RAII `Span` keeps a thread-local stack
 * so same-thread nesting yields parent/child links automatically, and
 * `Span::record_complete` records retroactive windows (queue wait,
 * batch-window residency) that were measured on another thread —
 * those carry the job's correlation id so Perfetto can line them up
 * with the worker-side spans. Span taxonomy: DESIGN.md §10.
 *
 * Recording cost is one short mutex push per span *end* (spans are
 * orders of magnitude rarer than metric observations; the ring holds
 * the most recent `capacity` spans and counts what it dropped). The
 * process-wide `obs::set_enabled(false)` switch makes every span
 * inert. `ZKSPEED_TRACE_OUT=<path>` dumps the ring as Chrome JSON on
 * service shutdown (runtime/service.cpp honors it; `dump_to_env` is
 * the shared hook).
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace zkspeed::obs {

/** One completed span, timestamped in µs since the recorder epoch. */
struct SpanEvent {
    uint64_t span_id = 0;
    uint64_t parent_id = 0;       ///< 0 = root
    uint64_t correlation_id = 0;  ///< job/request id; 0 = none
    uint32_t tid = 0;             ///< compact per-thread index
    double ts_us = 0;
    double dur_us = 0;
    std::string name;
    std::string category;
    /** Numeric span attributes (per-span modmul deltas, byte counts).
     * Rendered into the Chrome-trace `args` object so Perfetto shows
     * them on span click; obs/attrib joins them to the chip model. */
    std::vector<std::pair<std::string, double>> args;
};

/** A span currently open somewhere in the process. The flight
 * recorder snapshots this table ("what was in flight when we died");
 * RAII `Span`s register on open and unregister on close. */
struct OpenSpan {
    uint64_t span_id = 0;
    uint64_t parent_id = 0;
    uint64_t correlation_id = 0;
    uint32_t tid = 0;
    double start_us = 0;
    std::string name;
    std::string category;
};

/** Every currently-open RAII span, in open order. */
std::vector<OpenSpan> open_spans();

class TraceRecorder
{
  public:
    explicit TraceRecorder(size_t capacity = 16384);

    /** The process-wide recorder every span lands in. Its capacity is
     * `env_capacity()` — override with ZKSPEED_TRACE_RING. */
    static TraceRecorder &global();

    /** Ring capacity requested by the environment: ZKSPEED_TRACE_RING
     * parsed as a positive span count, or the 16384 default when the
     * variable is unset or unparsable. The effective value is exported
     * as `zkspeed_trace_ring_spans{kind="capacity"}`. */
    static size_t env_capacity();

    /** Steady-clock zero point shared by every span in the process. */
    static std::chrono::steady_clock::time_point epoch();
    static double to_us(std::chrono::steady_clock::time_point tp);

    /** Compact id of the calling thread (stable for its lifetime). */
    static uint32_t current_tid();

    void set_capacity(size_t capacity);
    static uint64_t next_span_id();
    void record(SpanEvent ev);

    /** Retained spans in start-timestamp order. */
    std::vector<SpanEvent> events() const;
    size_t size() const;
    /** Spans evicted by the ring since the last clear(). The global
     * recorder also exports span loss as registry series
     * (`zkspeed_trace_spans_dropped_total`,
     * `zkspeed_trace_ring_spans{kind=live|capacity}`) so it shows up
     * in metrics.prom, not only through this API. */
    uint64_t dropped() const;
    void clear();

    /** Chrome trace-event JSON ({"traceEvents":[...]}; ph:"X"). */
    std::string render_chrome_json() const;

    /**
     * Write the ring to $ZKSPEED_TRACE_OUT if set. @return the path
     * written, or empty when unset / on write failure.
     */
    static std::string dump_to_env();

  private:
    mutable std::mutex mu_;
    std::vector<SpanEvent> ring_;
    size_t capacity_;
    size_t next_ = 0;       ///< ring write cursor
    uint64_t total_ = 0;    ///< spans ever recorded
};

/**
 * RAII span: opens on construction, records on destruction. Maintains
 * the thread-local parent stack, so spans nested on one thread link up.
 */
class Span
{
  public:
    explicit Span(std::string name, std::string category = "runtime",
                  uint64_t correlation_id = 0);
    ~Span();
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** 0 when tracing is disabled. */
    uint64_t id() const { return id_; }

    /** Attach a numeric attribute to this span (flushed with the event
     * at destruction; no-op while tracing is disabled). */
    void
    arg(std::string key, double value)
    {
        if (active_) args_.emplace_back(std::move(key), value);
    }

    /**
     * Record a retroactively-measured window. `parent_id` 0 means
     * "current top of this thread's span stack" (0 if none). `args`
     * are numeric span attributes (SpanEvent::args).
     */
    static void record_complete(
        std::string name, std::string category,
        std::chrono::steady_clock::time_point start,
        std::chrono::steady_clock::time_point end,
        uint64_t correlation_id = 0, uint64_t parent_id = 0,
        std::vector<std::pair<std::string, double>> args = {});

  private:
    std::string name_;
    std::string category_;
    uint64_t correlation_id_ = 0;
    uint64_t id_ = 0;
    uint64_t parent_id_ = 0;
    std::chrono::steady_clock::time_point start_;
    bool active_ = false;
    std::vector<std::pair<std::string, double>> args_;
};

}  // namespace zkspeed::obs
