/**
 * @file
 * Snapshot-delta engine and SLO evaluation over the metrics registry.
 *
 * Everything the registry exports is cumulative-since-process-start; a
 * production question ("is this instance inside its latency SLO *right
 * now*?") is about an interval. `WindowDelta::between` subtracts two
 * `obs::Snapshot`s series-by-series: counter deltas, bucket-wise
 * histogram subtraction (so interval p50/p90/p99/p99.9 come out of the
 * same 2^(1/8) bucket geometry with the same ±4.43% bound), and
 * windowed rates (delta / window seconds). Counter resets — a
 * `MetricsRegistry::reset()` between the two snapshots — are detected
 * per series (any cumulative value going backwards) and clamped to
 * restart semantics: the delta becomes everything recorded since the
 * reset, never a negative number. A brand-new thread shard appearing
 * mid-window only *adds* counts and needs no special casing.
 *
 * `SloEvaluator` turns declarative objectives ({series selector,
 * quantile-or-error-ratio, threshold}) into per-window verdicts with an
 * error-budget burn rate: for a `p99 <= T` objective at most 1% of the
 * window's requests may exceed T, so burn = (observed fraction over T)
 * / (1 - q) — burn 1.0 is exactly on budget, burn 3.0 means the window
 * spent its budget three times over. The load generator
 * (src/loadgen/) streams these verdicts per window and enforces them
 * via exit status; DESIGN.md §11 documents the semantics.
 */
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace zkspeed::obs {

/**
 * Counter delta with reset clamping: `now - prev` when monotone,
 * otherwise the series restarted and the delta is everything since the
 * restart (`now`), flagged via `*reset`.
 */
uint64_t counter_delta(uint64_t now, uint64_t prev, bool *reset = nullptr);

/**
 * Bucket-wise histogram subtraction. Quantiles of the result are
 * *interval* quantiles of only the in-window observations, within
 * `HistogramBuckets::kMaxRelativeError` of the exact in-window order
 * statistics. Interval min/max are exact when the window moved the
 * cumulative min/max, else bounded by the first/last delta bucket.
 * A count or bucket going backwards flags a reset and returns `now`.
 */
HistogramSnapshot histogram_delta(const HistogramSnapshot &now,
                                  const HistogramSnapshot &prev,
                                  bool *reset = nullptr);

/**
 * Fraction of a histogram's samples above `threshold`, resolved at
 * bucket granularity (a bucket counts as over when its geometric
 * midpoint exceeds the threshold; exact min/max short-circuit the
 * all-under / all-over cases). The SLO burn numerator.
 */
double fraction_over(const HistogramSnapshot &h, double threshold);

/**
 * Label-subset series match: name must equal, every selector label
 * must be present with the same value, extra labels on the series are
 * fine. `{service="svc0", status="ok"}` therefore matches both the
 * prove- and verify-class latency series of one instance.
 */
struct SeriesSelector {
    std::string name;
    LabelSet labels;

    bool matches(const MetricSnapshot &m) const;
    std::string describe() const;
};

/** One interval between two registry snapshots. */
struct WindowDelta {
    /** Wall seconds between the two snapshots (rate denominator). */
    double window_s = 0;
    /** Series whose cumulative values went backwards (reset-clamped). */
    uint64_t counter_resets = 0;
    /**
     * The delta'd series, same order as the newer snapshot: counters
     * and histograms carry in-window values, gauges carry the newer
     * snapshot's point-in-time value (a gauge has no delta semantics).
     */
    Snapshot series;

    /**
     * Subtract `prev` from `now`. Series are matched by (name, labels)
     * — index-aligned in the common case of two snapshots of one
     * registry, with a lookup fallback so a series registered
     * mid-window deltas against zero.
     */
    static WindowDelta between(const Snapshot &now, const Snapshot &prev,
                               double window_s);

    const MetricSnapshot *find(const std::string &name,
                               const LabelSet &labels = {}) const;

    /**
     * Windowed rate of one exactly-named series: counter delta (or
     * histogram count delta) per second; 0 when absent or the window
     * has no duration.
     */
    double rate(const std::string &name, const LabelSet &labels = {}) const;

    /** Sum of counter deltas + histogram count deltas over matches. */
    uint64_t total(const SeriesSelector &sel) const;

    /** Bucket-wise merge of every matching delta histogram. */
    HistogramSnapshot merged_histogram(const SeriesSelector &sel) const;
};

/**
 * One declarative objective. `kind == quantile`: the merged matching
 * interval histogram must satisfy `quantile(q) <= threshold` (threshold
 * in the series' native unit, ms for latency series). `kind ==
 * error_ratio`: `total(errors) / total(series) <= threshold`. Windows
 * with no samples pass vacuously — an idle service is not in breach.
 */
struct SloObjective {
    enum class Kind : uint8_t { quantile = 0, error_ratio = 1 };

    std::string name;      ///< report key, e.g. "prove-p99"
    Kind kind = Kind::quantile;
    SeriesSelector series; ///< quantile source / error-ratio denominator
    SeriesSelector errors; ///< error-ratio numerator (kind == error_ratio)
    double q = 0.99;       ///< quantile point (kind == quantile)
    double threshold = 0;  ///< ms (quantile) or ratio in [0,1]

    std::string describe() const;
};

/** One objective evaluated over one window. */
struct SloVerdict {
    std::string objective;
    bool pass = true;
    double value = 0;       ///< measured interval quantile or ratio
    double threshold = 0;
    /**
     * Error-budget burn this window: 1.0 = exactly on budget. For
     * quantile objectives, fraction-over-threshold / (1 - q); for
     * error ratios, observed / allowed.
     */
    double budget_burn = 0;
    uint64_t samples = 0;   ///< in-window observations backing the verdict
};

class SloEvaluator
{
  public:
    explicit SloEvaluator(std::vector<SloObjective> objectives);

    const std::vector<SloObjective> &objectives() const
    {
        return objectives_;
    }

    /** Evaluate every objective against one window. */
    std::vector<SloVerdict> evaluate(const WindowDelta &w) const;

    static bool all_pass(const std::vector<SloVerdict> &verdicts);

  private:
    std::vector<SloObjective> objectives_;
};

}  // namespace zkspeed::obs
