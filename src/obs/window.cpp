#include "obs/window.hpp"

#include <algorithm>
#include <cmath>

namespace zkspeed::obs {

namespace {

/** Lower edge of bucket `index` (buckets are (lo, hi] geometrically). */
double
bucket_lower(size_t index)
{
    return index == 0 ? 0.0 : HistogramBuckets::upper_bound(index - 1);
}

/** Merge `src` buckets into `dst` bucket-wise (both sparse ascending). */
void
merge_buckets(std::vector<HistogramSnapshot::Bucket> &dst,
              const std::vector<HistogramSnapshot::Bucket> &src)
{
    std::vector<HistogramSnapshot::Bucket> out;
    out.reserve(dst.size() + src.size());
    size_t i = 0, j = 0;
    while (i < dst.size() || j < src.size()) {
        if (j == src.size() ||
            (i < dst.size() && dst[i].index < src[j].index)) {
            out.push_back(dst[i++]);
        } else if (i == dst.size() || src[j].index < dst[i].index) {
            out.push_back(src[j++]);
        } else {
            auto b = dst[i++];
            b.count += src[j++].count;
            out.push_back(b);
        }
    }
    dst = std::move(out);
}

}  // namespace

uint64_t
counter_delta(uint64_t now, uint64_t prev, bool *reset)
{
    if (now >= prev) return now - prev;
    if (reset != nullptr) *reset = true;
    return now;  // restart semantics: everything since the reset
}

HistogramSnapshot
histogram_delta(const HistogramSnapshot &now, const HistogramSnapshot &prev,
                bool *reset)
{
    if (prev.count == 0) return now;
    if (now.count < prev.count) {
        if (reset != nullptr) *reset = true;
        return now;
    }

    HistogramSnapshot d;
    d.count = now.count - prev.count;
    d.sum = now.sum - prev.sum;
    if (d.count == 0) return d;  // min/max stay 0, no buckets

    // Bucket-wise subtraction over the two sparse ascending lists. Any
    // individual bucket going backwards means the series restarted
    // between the snapshots even though total count grew past the old
    // cumulative value — clamp to restart semantics like the count case.
    size_t i = 0, j = 0;
    while (i < now.buckets.size()) {
        const auto &nb = now.buckets[i];
        uint64_t sub = 0;
        while (j < prev.buckets.size() &&
               prev.buckets[j].index < nb.index) {
            // prev has counts in a bucket now lacks: reset.
            if (reset != nullptr) *reset = true;
            return now;
        }
        if (j < prev.buckets.size() && prev.buckets[j].index == nb.index) {
            sub = prev.buckets[j].count;
            ++j;
        }
        if (nb.count < sub) {
            if (reset != nullptr) *reset = true;
            return now;
        }
        if (nb.count > sub) {
            d.buckets.push_back({nb.index, nb.upper, nb.count - sub});
        }
        ++i;
    }
    if (j < prev.buckets.size()) {
        if (reset != nullptr) *reset = true;
        return now;
    }

    // Interval min/max: exact when the window moved the cumulative
    // extremum, else bounded by the edge buckets of the delta (keeps
    // quantile clamping inside the documented bucket error).
    d.min = now.min < prev.min ? now.min
                               : (d.buckets.empty()
                                      ? 0.0
                                      : bucket_lower(d.buckets.front().index));
    d.max = now.max > prev.max
                ? now.max
                : (d.buckets.empty()
                       ? 0.0
                       : HistogramBuckets::upper_bound(
                             d.buckets.back().index));
    return d;
}

double
fraction_over(const HistogramSnapshot &h, double threshold)
{
    if (h.count == 0) return 0.0;
    if (h.max <= threshold) return 0.0;
    if (h.min > threshold) return 1.0;
    uint64_t over = 0;
    for (const auto &b : h.buckets) {
        if (HistogramBuckets::midpoint(b.index) > threshold) {
            over += b.count;
        }
    }
    return double(over) / double(h.count);
}

bool
SeriesSelector::matches(const MetricSnapshot &m) const
{
    if (m.name != name) return false;
    for (const auto &[k, v] : labels) {
        bool found = false;
        for (const auto &[mk, mv] : m.labels) {
            if (mk == k) {
                found = mv == v;
                break;
            }
        }
        if (!found) return false;
    }
    return true;
}

std::string
SeriesSelector::describe() const
{
    return format_series(name, labels);
}

WindowDelta
WindowDelta::between(const Snapshot &now, const Snapshot &prev,
                     double window_s)
{
    WindowDelta w;
    w.window_s = window_s;
    w.series.metrics.reserve(now.metrics.size());
    for (size_t i = 0; i < now.metrics.size(); ++i) {
        const MetricSnapshot &n = now.metrics[i];
        // Index-aligned fast path (two snapshots of one registry:
        // registration order is stable, the newer one is a superset);
        // fall back to a lookup so re-ordered inputs still pair up.
        const MetricSnapshot *p = nullptr;
        if (i < prev.metrics.size() && prev.metrics[i].name == n.name &&
            prev.metrics[i].labels == n.labels) {
            p = &prev.metrics[i];
        } else {
            p = prev.find(n.name, n.labels);
        }

        MetricSnapshot d = n;  // name/labels/help/kind carried over
        bool reset = false;
        switch (n.kind) {
            case MetricKind::counter:
                d.counter =
                    counter_delta(n.counter, p ? p->counter : 0, &reset);
                break;
            case MetricKind::gauge:
                break;  // point-in-time value, no delta semantics
            case MetricKind::histogram:
                d.hist = histogram_delta(
                    n.hist, p ? p->hist : HistogramSnapshot{}, &reset);
                break;
        }
        if (reset) ++w.counter_resets;
        w.series.metrics.push_back(std::move(d));
    }
    return w;
}

const MetricSnapshot *
WindowDelta::find(const std::string &name, const LabelSet &labels) const
{
    return series.find(name, labels);
}

double
WindowDelta::rate(const std::string &name, const LabelSet &labels) const
{
    if (window_s <= 0) return 0.0;
    const MetricSnapshot *m = find(name, labels);
    if (m == nullptr) return 0.0;
    switch (m->kind) {
        case MetricKind::counter: return double(m->counter) / window_s;
        case MetricKind::histogram:
            return double(m->hist.count) / window_s;
        case MetricKind::gauge: return m->gauge;
    }
    return 0.0;
}

uint64_t
WindowDelta::total(const SeriesSelector &sel) const
{
    uint64_t sum = 0;
    for (const auto &m : series.metrics) {
        if (!sel.matches(m)) continue;
        if (m.kind == MetricKind::counter) sum += m.counter;
        if (m.kind == MetricKind::histogram) sum += m.hist.count;
    }
    return sum;
}

HistogramSnapshot
WindowDelta::merged_histogram(const SeriesSelector &sel) const
{
    HistogramSnapshot out;
    bool first = true;
    for (const auto &m : series.metrics) {
        if (m.kind != MetricKind::histogram || !sel.matches(m)) continue;
        if (m.hist.count == 0) continue;
        out.count += m.hist.count;
        out.sum += m.hist.sum;
        out.min = first ? m.hist.min : std::min(out.min, m.hist.min);
        out.max = first ? m.hist.max : std::max(out.max, m.hist.max);
        merge_buckets(out.buckets, m.hist.buckets);
        first = false;
    }
    return out;
}

std::string
SloObjective::describe() const
{
    char buf[128];
    if (kind == Kind::quantile) {
        std::snprintf(buf, sizeof(buf), " p%g <= %g", q * 100.0,
                      threshold);
        return name + ": " + series.describe() + buf;
    }
    std::snprintf(buf, sizeof(buf), " ratio <= %g", threshold);
    return name + ": " + errors.describe() + " / " + series.describe() +
           buf;
}

SloEvaluator::SloEvaluator(std::vector<SloObjective> objectives)
    : objectives_(std::move(objectives))
{
}

std::vector<SloVerdict>
SloEvaluator::evaluate(const WindowDelta &w) const
{
    std::vector<SloVerdict> out;
    out.reserve(objectives_.size());
    for (const SloObjective &o : objectives_) {
        SloVerdict v;
        v.objective = o.name;
        v.threshold = o.threshold;
        if (o.kind == SloObjective::Kind::quantile) {
            HistogramSnapshot h = w.merged_histogram(o.series);
            v.samples = h.count;
            if (h.count == 0) {
                v.pass = true;  // idle window: vacuous pass, zero burn
            } else {
                v.value = h.quantile(o.q);
                v.pass = v.value <= o.threshold;
                double allowed = std::max(1e-9, 1.0 - o.q);
                v.budget_burn = fraction_over(h, o.threshold) / allowed;
            }
        } else {
            uint64_t total = w.total(o.series);
            uint64_t errors = w.total(o.errors);
            v.samples = total;
            if (total == 0) {
                v.pass = true;
            } else {
                v.value = double(errors) / double(total);
                v.pass = v.value <= o.threshold;
                v.budget_burn =
                    o.threshold > 0 ? v.value / o.threshold
                                    : (errors != 0 ? 1e9 : 0.0);
            }
        }
        out.push_back(std::move(v));
    }
    return out;
}

bool
SloEvaluator::all_pass(const std::vector<SloVerdict> &verdicts)
{
    for (const auto &v : verdicts) {
        if (!v.pass) return false;
    }
    return true;
}

}  // namespace zkspeed::obs
