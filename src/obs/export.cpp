#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string_view>

#include "obs/flight.hpp"
#include "obs/http.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace zkspeed::obs {

namespace {

std::string
fmt_double(double v)
{
    char buf[64];
    // %.17g round-trips doubles; trim the common integral case.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
prom_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"') out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

std::string
prom_labels(const LabelSet &labels, const std::string &extra_key = "",
            const std::string &extra_val = "")
{
    if (labels.empty() && extra_key.empty()) return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first) out += ",";
        first = false;
        out += k + "=\"" + prom_escape(v) + "\"";
    }
    if (!extra_key.empty()) {
        if (!first) out += ",";
        out += extra_key + "=\"" + prom_escape(extra_val) + "\"";
    }
    out += "}";
    return out;
}

const char *
prom_type(MetricKind k)
{
    switch (k) {
        case MetricKind::counter: return "counter";
        case MetricKind::gauge: return "gauge";
        case MetricKind::histogram: return "histogram";
    }
    return "untyped";
}

}  // namespace

std::string
render_prometheus_text(const Snapshot &snap)
{
    // Group series of the same family (name) so HELP/TYPE render once,
    // in first-seen registration order.
    std::vector<size_t> order(snap.metrics.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return snap.metrics[a].name < snap.metrics[b].name;
    });

    std::string out;
    const std::string *prev_family = nullptr;
    for (size_t idx : order) {
        const MetricSnapshot &m = snap.metrics[idx];
        if (prev_family == nullptr || *prev_family != m.name) {
            if (!m.help.empty()) {
                out += "# HELP " + m.name + " " + prom_escape(m.help) +
                       "\n";
            }
            out += "# TYPE " + m.name + " " + prom_type(m.kind) + "\n";
            prev_family = &m.name;
        }
        switch (m.kind) {
            case MetricKind::counter:
                out += m.name + prom_labels(m.labels) + " " +
                       std::to_string(m.counter) + "\n";
                break;
            case MetricKind::gauge:
                out += m.name + prom_labels(m.labels) + " " +
                       fmt_double(m.gauge) + "\n";
                break;
            case MetricKind::histogram: {
                uint64_t cum = 0;
                for (const auto &b : m.hist.buckets) {
                    cum += b.count;
                    out += m.name + "_bucket" +
                           prom_labels(m.labels, "le",
                                       fmt_double(b.upper)) +
                           " " + std::to_string(cum) + "\n";
                }
                out += m.name + "_bucket" +
                       prom_labels(m.labels, "le", "+Inf") + " " +
                       std::to_string(m.hist.count) + "\n";
                out += m.name + "_sum" + prom_labels(m.labels) + " " +
                       fmt_double(m.hist.sum) + "\n";
                out += m.name + "_count" + prom_labels(m.labels) + " " +
                       std::to_string(m.hist.count) + "\n";
                break;
            }
        }
    }
    return out;
}

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += char(c);
                }
        }
    }
    return out;
}

std::string
render_json(const Snapshot &snap)
{
    std::string out = "{\"metrics\":[";
    bool first = true;
    for (const MetricSnapshot &m : snap.metrics) {
        if (!first) out += ",";
        first = false;
        out += "{\"name\":\"" + json_escape(m.name) + "\",\"labels\":{";
        bool lfirst = true;
        for (const auto &[k, v] : m.labels) {
            if (!lfirst) out += ",";
            lfirst = false;
            out += "\"" + json_escape(k) + "\":\"" + json_escape(v) +
                   "\"";
        }
        out += "},\"kind\":\"";
        out += to_string(m.kind);
        out += "\"";
        switch (m.kind) {
            case MetricKind::counter:
                out += ",\"value\":" + std::to_string(m.counter);
                break;
            case MetricKind::gauge:
                out += ",\"value\":" + fmt_double(m.gauge);
                break;
            case MetricKind::histogram: {
                const auto &h = m.hist;
                out += ",\"count\":" + std::to_string(h.count);
                out += ",\"sum\":" + fmt_double(h.sum);
                out += ",\"min\":" + fmt_double(h.min);
                out += ",\"max\":" + fmt_double(h.max);
                out += ",\"mean\":" + fmt_double(h.mean());
                out += ",\"p50\":" + fmt_double(h.quantile(0.50));
                out += ",\"p90\":" + fmt_double(h.quantile(0.90));
                out += ",\"p99\":" + fmt_double(h.quantile(0.99));
                out += ",\"p999\":" + fmt_double(h.quantile(0.999));
                out += ",\"buckets\":[";
                bool bfirst = true;
                for (const auto &b : h.buckets) {
                    if (!bfirst) out += ",";
                    bfirst = false;
                    out += "[" + fmt_double(b.upper) + "," +
                           std::to_string(b.count) + "]";
                }
                out += "]";
                break;
            }
        }
        out += "}";
    }
    out += "]}";
    return out;
}

bool
write_file(const std::string &path, const std::string &content)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
        return false;
    }
    bool ok =
        std::fwrite(content.data(), 1, content.size(), f) == content.size();
    std::fclose(f);
    if (!ok) std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
    return ok;
}

void
dump_artifacts_to_env()
{
    TraceRecorder::dump_to_env();
    const char *path = std::getenv("ZKSPEED_METRICS_OUT");
    if (path == nullptr || *path == '\0') return;
    auto snap = MetricsRegistry::global().snapshot();
    std::string_view p(path);
    bool json = p.size() >= 5 && p.substr(p.size() - 5) == ".json";
    write_file(path, json ? render_json(snap)
                          : render_prometheus_text(snap));
}

void
flush_all()
{
    dump_artifacts_to_env();
    LogRecorder::dump_to_env();
    const char *attrib_out = std::getenv("ZKSPEED_ATTRIB_OUT");
    if (attrib_out != nullptr && *attrib_out != '\0') {
        std::string attrib = latest_attrib_json();
        if (!attrib.empty()) write_file(attrib_out, attrib);
    }
    if (flight::installed()) flight::refresh();
}

}  // namespace zkspeed::obs
