/**
 * @file
 * Embedded telemetry HTTP server: the live scrape plane over the
 * process-wide registry / trace ring / attribution report, so a fleet
 * rollup can poll each instance instead of waiting for shutdown
 * artifacts (DESIGN.md §14).
 *
 * Plain POSIX sockets, HTTP/1.1, no third-party dependencies: one
 * acceptor thread feeding a bounded connection queue drained by a
 * small handler pool; every response closes the connection. Endpoints:
 *
 *   GET /metrics       Prometheus text (registry snapshot)
 *   GET /metrics.json  JSON exposition of the same snapshot
 *   GET /healthz       200 while the process is alive
 *   GET /readyz        readiness provider verdict (503 when not ready)
 *   GET /trace         Chrome trace JSON from the live span ring
 *   GET /attrib        latest attribution report (404 until one exists)
 *
 * `ZKSPEED_HTTP_PORT` enables the server in `proof_server` (port 0 =
 * ephemeral; the chosen port is exported as the `zkspeed_http_port`
 * gauge, printed on stdout and written to `$ZKSPEED_HTTP_PORT_FILE`
 * for CI). `obs::set_enabled(false)` turns every endpoint into
 * 503 telemetry disabled — the kill switch covers the scrape plane,
 * not just the record paths.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace zkspeed::obs {

/** /readyz verdict: `detail` is rendered into the response body. */
struct Readiness {
    bool ready = true;
    std::string detail;
};

/**
 * Install the process-wide readiness hook `/readyz` consults
 * (`proof_server` wires it to ProofService::readiness()). With no
 * provider the endpoint reports ready — the server alone has nothing
 * to be unready about. Thread-safe; pass nullptr to clear.
 */
using ReadinessProvider = std::function<Readiness()>;
void set_readiness_provider(ReadinessProvider provider);

/** Store/fetch the latest rendered attribution report for `/attrib`
 * (harness/proof_server set it right after building the report). */
void set_latest_attrib_json(std::string json);
std::string latest_attrib_json();

struct HttpServerConfig {
    /** 0 = ephemeral (read the chosen port back via port()). */
    uint16_t port = 0;
    /** Loopback only by default: this is a telemetry sidecar, not a
     * public listener. */
    std::string bind_addr = "127.0.0.1";
    size_t handler_threads = 2;
    /** Accepted connections parked for a handler; beyond this the
     * acceptor answers 503 immediately (bounded, never unbounded). */
    size_t max_pending = 16;
    size_t max_request_bytes = 8192;
};

class HttpServer
{
  public:
    /** Bind + listen + spawn threads; nullptr on bind/listen failure. */
    static std::unique_ptr<HttpServer> start(
        const HttpServerConfig &cfg = HttpServerConfig());

    /** Honor ZKSPEED_HTTP_PORT (unset/empty = nullptr, no server;
     * "0" = ephemeral port). */
    static std::unique_ptr<HttpServer> start_from_env();

    ~HttpServer();
    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** The bound port (the chosen one when config asked for 0). */
    uint16_t port() const { return port_; }

    /** Join the acceptor + handlers and close every socket. Idempotent;
     * the destructor calls it. */
    void stop();

  private:
    HttpServer() = default;
    struct Impl;
    std::unique_ptr<Impl> impl_;
    uint16_t port_ = 0;
};

}  // namespace zkspeed::obs
