/**
 * @file
 * Process-wide metrics registry: named counters, gauges and
 * log-bucketed histograms, accumulated in per-thread shards so the
 * prover hot path records without ever taking a global lock.
 *
 * Design (DESIGN.md §10):
 *   - Registration (cold) takes the registry mutex once per series and
 *     returns a stable MetricId; record paths (hot) resolve their
 *     thread's shard through a thread-local cache and update relaxed
 *     atomics in cells only that thread writes. Snapshots lock each
 *     shard briefly and merge — recording threads never wait on a
 *     snapshot or on each other.
 *   - Shards outlive their threads: a worker that exits leaves its
 *     cumulative cells in the registry, so totals survive pool
 *     shutdown (ProofService::metrics() after shutdown() still sees
 *     every job).
 *   - Gauges are registry-level single atomics (set semantics do not
 *     shard); counters and histograms shard and merge by summation.
 *   - `obs::set_enabled(false)` turns every record path into an early
 *     return — the instrumentation-overhead gate in
 *     bench_runtime_throughput measures against exactly this switch.
 *
 * Series identity is (name, sorted label set). Exposition (Prometheus
 * text / JSON) lives in obs/export.hpp.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace zkspeed::obs {

/** Process-wide instrumentation kill switch (metrics AND tracing). */
inline std::atomic<bool> g_obs_enabled{true};

inline bool
enabled()
{
    return g_obs_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

enum class MetricKind : uint8_t { counter = 0, gauge = 1, histogram = 2 };

const char *to_string(MetricKind k);

/** Stable handle returned by registration; indexes the snapshot. */
struct MetricId {
    uint32_t index = UINT32_MAX;
    bool valid() const { return index != UINT32_MAX; }
};

/** Sorted-by-key label pairs; part of the series identity. */
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/** One merged series in a Snapshot. */
struct MetricSnapshot {
    std::string name;
    LabelSet labels;
    std::string help;
    MetricKind kind = MetricKind::counter;
    uint64_t counter = 0;      ///< kind == counter
    double gauge = 0;          ///< kind == gauge
    HistogramSnapshot hist;    ///< kind == histogram

    /** Canonical `name{k="v",...}` (bare name when unlabelled). */
    std::string full_name() const;
};

/** A merged, point-in-time view of one registry. */
struct Snapshot {
    /** Indexed by MetricId::index (registration order). */
    std::vector<MetricSnapshot> metrics;

    const MetricSnapshot *find(const std::string &name,
                               const LabelSet &labels = {}) const;
    const MetricSnapshot *operator[](MetricId id) const;
};

class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry every subsystem folds into. */
    static MetricsRegistry &global();

    /**
     * Get-or-register a series (idempotent; the kind must match on
     * re-registration or the existing id is returned unchanged with the
     * original kind — series identity is name + labels).
     */
    MetricId counter(const std::string &name, const LabelSet &labels = {},
                     const std::string &help = "");
    MetricId gauge(const std::string &name, const LabelSet &labels = {},
                   const std::string &help = "");
    MetricId histogram(const std::string &name, const LabelSet &labels = {},
                       const std::string &help = "");

    /** Counter increment (hot path, shard-local, lock-free). */
    void add(MetricId id, uint64_t v = 1);
    /** Gauge set / delta (registry-level atomic). */
    void set(MetricId id, double v);
    void gauge_add(MetricId id, double delta);
    /** Histogram observation (hot path, shard-local, lock-free). */
    void observe(MetricId id, double v);

    /** Merge every shard into a point-in-time view. */
    Snapshot snapshot() const;

    /** Zero every cell and gauge (registrations survive). Benches and
     * tests only — this wipes every series in the registry. */
    void reset();

    size_t num_series() const;

  private:
    struct Shard;
    struct MetricDef {
        std::string name;
        LabelSet labels;
        std::string help;
        MetricKind kind = MetricKind::counter;
        uint32_t gauge_slot = UINT32_MAX;
    };

    MetricId get_or_register(MetricKind kind, const std::string &name,
                             const LabelSet &labels,
                             const std::string &help);
    Shard &local_shard();

    /** Unique per registry instance; keys the thread-local shard cache
     * (pointer identity alone could alias across create/destroy). */
    const uint64_t uid_;

    mutable std::mutex mu_;  ///< registration, shard list, defs
    std::vector<MetricDef> defs_;
    std::vector<std::shared_ptr<Shard>> shards_;

    /** Gauges: preallocated lock-free slots (set is not shardable). */
    static constexpr size_t kMaxGauges = 1024;
    std::unique_ptr<std::atomic<double>[]> gauge_slots_;
    uint32_t num_gauges_ = 0;
};

/** Canonical `name{k="v",...}` used by exposition and Snapshot::find. */
std::string format_series(const std::string &name, const LabelSet &labels);

/**
 * Register the static `zkspeed_build_info` info-style gauge on `reg`
 * and set it to 1. The label set carries the identity payload: wire
 * format version, enabled feature list and the soak/trace knobs read
 * from the environment at first use. MetricsRegistry::global() calls
 * this once on construction, so the series is present in every
 * exposition; like every gauge it is zeroed (not dropped) by reset().
 */
void register_build_info(MetricsRegistry &reg);

}  // namespace zkspeed::obs
