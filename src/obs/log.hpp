/**
 * @file
 * Structured logging: leveled, rate-limited JSON-lines events sharing
 * the trace subsystem's clock, thread ids and correlation ids, so a log
 * line and the spans of the job it talks about line up in Perfetto and
 * in the flight recorder (DESIGN.md §14).
 *
 * Discipline mirrors TraceRecorder: per-thread format shards (each
 * thread formats into its own reusable buffer, so the hot path never
 * allocates for the common short message), one short mutex push per
 * event into a bounded ring that counts what it dropped, and ring
 * health exported as registry series (`zkspeed_log_events_total{level}`,
 * `zkspeed_log_events_dropped_total{reason=ring|rate}`).
 *
 * Sinks: events at or above the stderr threshold (default `warn`) echo
 * as one human-readable line; `ZKSPEED_LOG_OUT=<path>` dumps the whole
 * ring as JSON lines on `flush_all()` / service shutdown. A token
 * bucket per level bounds sustained volume (`ZKSPEED_LOG_RATE` events
 * per second per level, default 200, 0 = unlimited) so a log-spamming
 * bug cannot starve the ring of the events around a crash.
 *
 * `obs::set_enabled(false)` makes the ring and every counter a no-op;
 * only warn/error events still echo to stderr (operators keep their
 * error lines when telemetry is off).
 */
#pragma once

#include <cstdarg>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace zkspeed::obs {

enum class LogLevel : uint8_t { debug = 0, info = 1, warn = 2, error = 3 };

const char *to_string(LogLevel level);

/** One recorded event, timestamped like SpanEvent (µs since the trace
 * recorder epoch). */
struct LogEvent {
    double ts_us = 0;
    LogLevel level = LogLevel::info;
    uint32_t tid = 0;             ///< TraceRecorder::current_tid()
    uint64_t correlation_id = 0;  ///< job/request id; 0 = none
    std::string component;        ///< subsystem tag ("runtime", "loadgen")
    std::string message;
};

class LogRecorder
{
  public:
    explicit LogRecorder(size_t capacity = 4096);

    /** The process-wide recorder `logf` / `log_event` append to. Its
     * capacity is `env_capacity()` (ZKSPEED_LOG_RING). */
    static LogRecorder &global();

    /** ZKSPEED_LOG_RING parsed as a positive event count, or the 4096
     * default when unset or unparsable. */
    static size_t env_capacity();

    /** Append one event (no-op while obs is disabled; may drop under
     * the per-level rate limit or ring bound, counted either way). */
    void record(LogLevel level, std::string component,
                std::string message, uint64_t correlation_id = 0);

    /** Retained events in arrival order. */
    std::vector<LogEvent> events() const;
    size_t size() const;
    /** Events evicted by the ring bound since the last clear(). */
    uint64_t dropped() const;
    /** Events refused by the per-level token bucket. */
    uint64_t rate_limited() const;
    void clear();

    /** Token bucket per level: sustained events/s and burst size.
     * `per_second` 0 disables rate limiting. */
    void set_rate_limit(double per_second, double burst);

    /** Minimum level echoed to stderr (default warn). */
    void set_stderr_level(LogLevel level);
    LogLevel stderr_level() const;

    /** The ring as JSON lines (one `render_event` document per line). */
    std::string render_jsonl() const;

    /** One event as a single-line JSON document:
     * {"ts_us":..,"level":"..","tid":..,"correlation_id":..,
     *  "component":"..","message":".."} */
    static std::string render_event(const LogEvent &ev);

    /**
     * Write the ring to $ZKSPEED_LOG_OUT if set. @return the path
     * written, or empty when unset / on write failure.
     */
    static std::string dump_to_env();

  private:
    bool admit(LogLevel level);  ///< token bucket; callers hold mu_

    mutable std::mutex mu_;
    std::vector<LogEvent> ring_;
    size_t capacity_;
    size_t next_ = 0;
    uint64_t total_ = 0;
    uint64_t rate_limited_ = 0;
    double rate_per_s_;
    double burst_;
    double tokens_[4];
    double last_refill_us_[4] = {0, 0, 0, 0};
    LogLevel stderr_level_ = LogLevel::warn;
};

/**
 * Format + record an event on the global recorder, echoing one
 * `[level component] message` line to stderr when `level` clears the
 * recorder's stderr threshold. With obs disabled the echo (warn and
 * above) still happens but nothing is recorded or counted.
 */
void logf(LogLevel level, const char *component, uint64_t correlation_id,
          const char *fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 4, 5)))
#endif
    ;

/** Record a pre-formatted message on the global recorder (ring only,
 * never echoes — for call sites that manage their own console line). */
void log_event(LogLevel level, const char *component, std::string message,
               uint64_t correlation_id = 0);

}  // namespace zkspeed::obs
