/**
 * @file
 * Exposition for metrics snapshots: Prometheus text format (v0.0.4)
 * and a self-describing JSON document carrying the derived percentiles
 * (p50/p90/p99/p99.9) next to the exact count/sum/min/max.
 *
 * Histograms render with cumulative `le` buckets (non-empty buckets
 * plus `+Inf`), `_sum` and `_count`, so standard Prometheus quantile
 * tooling works on the scrape; the JSON form is the artifact format
 * written by benches and CI (BENCH_runtime.json embeds one).
 */
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace zkspeed::obs {

/** Prometheus text exposition of a merged snapshot. */
std::string render_prometheus_text(const Snapshot &snap);

/** JSON exposition: {"metrics":[{name, labels, kind, ...}, ...]}. */
std::string render_json(const Snapshot &snap);

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string json_escape(const std::string &s);

/** Write a string to a file; @return false (with stderr note) on error. */
bool write_file(const std::string &path, const std::string &content);

/**
 * Flush both telemetry artifacts to the paths named by the environment:
 * `ZKSPEED_TRACE_OUT` gets the span ring as Chrome trace JSON and
 * `ZKSPEED_METRICS_OUT` a registry snapshot (JSON when the path ends in
 * `.json`, Prometheus text otherwise). Unset variables are skipped.
 * Shared by service shutdown and the examples' interrupt handlers so an
 * aborted run keeps its artifacts.
 */
void dump_artifacts_to_env();

/**
 * One shutdown hook for every telemetry artifact, so the set can never
 * silently diverge between exit paths again: metrics + trace
 * (`dump_artifacts_to_env`), the structured log ring
 * (`ZKSPEED_LOG_OUT` as JSON lines), the latest attribution report
 * (`ZKSPEED_ATTRIB_OUT`, when one was built this run), and a final
 * flight-recorder snapshot. Service shutdown and `proof_server`'s
 * SIGINT/SIGTERM handler both route through here.
 */
void flush_all();

}  // namespace zkspeed::obs
