#include "obs/metrics.hpp"

#include "obs/build_info.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <unordered_map>

namespace zkspeed::obs {

namespace {

/** CAS add for atomic<double> (relaxed; merged under the shard lock). */
void
atomic_add(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
}

void
atomic_min(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur && !a.compare_exchange_weak(cur, v,
                                               std::memory_order_relaxed)) {
    }
}

void
atomic_max(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur && !a.compare_exchange_weak(cur, v,
                                               std::memory_order_relaxed)) {
    }
}

std::atomic<uint64_t> g_next_registry_uid{1};

LabelSet
sorted(LabelSet labels)
{
    std::sort(labels.begin(), labels.end());
    return labels;
}

}  // namespace

void
set_enabled(bool on)
{
    g_obs_enabled.store(on, std::memory_order_relaxed);
}

const char *
to_string(MetricKind k)
{
    switch (k) {
        case MetricKind::counter: return "counter";
        case MetricKind::gauge: return "gauge";
        case MetricKind::histogram: return "histogram";
    }
    return "?";
}

std::string
format_series(const std::string &name, const LabelSet &labels)
{
    if (labels.empty()) return name;
    std::string out = name + "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first) out += ",";
        first = false;
        out += k;
        out += "=\"";
        out += v;
        out += "\"";
    }
    out += "}";
    return out;
}

std::string
MetricSnapshot::full_name() const
{
    return format_series(name, labels);
}

const MetricSnapshot *
Snapshot::find(const std::string &name, const LabelSet &labels) const
{
    LabelSet want = sorted(labels);
    for (const auto &m : metrics) {
        if (m.name == name && m.labels == want) return &m;
    }
    return nullptr;
}

const MetricSnapshot *
Snapshot::operator[](MetricId id) const
{
    if (!id.valid() || id.index >= metrics.size()) return nullptr;
    return &metrics[id.index];
}

// ---------------------------------------------------------------------------
// Shards: one per (registry, thread). Only the owning thread writes a
// cell; snapshots read under the shard lock. Cells are relaxed atomics
// so a concurrent snapshot never tears a read. The growth path (first
// touch of a metric by a thread) takes the shard lock; steady-state
// record paths touch `cells_[id]` directly — the owner is the only
// mutator of the vector, and `ready_` publishes grown slots.
// ---------------------------------------------------------------------------

struct MetricsRegistry::Shard {
    struct Cell {
        explicit Cell(MetricKind k)
            : kind(k),
              min(std::numeric_limits<double>::infinity()),
              max(-std::numeric_limits<double>::infinity())
        {
            if (kind == MetricKind::histogram) {
                buckets = std::make_unique<std::atomic<uint64_t>[]>(
                    HistogramBuckets::kNumBuckets);
                for (size_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
                    buckets[i].store(0, std::memory_order_relaxed);
                }
            }
        }
        MetricKind kind;
        std::atomic<uint64_t> count{0};  ///< counter value / hist count
        std::atomic<double> sum{0.0};
        std::atomic<double> min;
        std::atomic<double> max;
        std::unique_ptr<std::atomic<uint64_t>[]> buckets;

        void
        zero()
        {
            count.store(0, std::memory_order_relaxed);
            sum.store(0.0, std::memory_order_relaxed);
            min.store(std::numeric_limits<double>::infinity(),
                      std::memory_order_relaxed);
            max.store(-std::numeric_limits<double>::infinity(),
                      std::memory_order_relaxed);
            if (buckets) {
                for (size_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
                    buckets[i].store(0, std::memory_order_relaxed);
                }
            }
        }
    };

    /** Owner-thread access; creates the cell on first touch. */
    Cell &
    cell(uint32_t idx, MetricKind kind)
    {
        if (idx < ready_.load(std::memory_order_acquire) &&
            cells_[idx] != nullptr) {
            return *cells_[idx];
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (idx >= cells_.size()) cells_.resize(idx + 1);
        if (cells_[idx] == nullptr) {
            cells_[idx] = std::make_unique<Cell>(kind);
        }
        size_t r = ready_.load(std::memory_order_relaxed);
        if (idx + 1 > r) {
            ready_.store(idx + 1, std::memory_order_release);
        }
        return *cells_[idx];
    }

    std::mutex mu_;  ///< growth vs. snapshot/reset
    std::vector<std::unique_ptr<Cell>> cells_;
    std::atomic<size_t> ready_{0};
};

MetricsRegistry::MetricsRegistry()
    : uid_(g_next_registry_uid.fetch_add(1)),
      gauge_slots_(std::make_unique<std::atomic<double>[]>(kMaxGauges))
{
    for (size_t i = 0; i < kMaxGauges; ++i) {
        gauge_slots_[i].store(0.0, std::memory_order_relaxed);
    }
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry reg;
    static const bool info_init = [] {
        register_build_info(reg);
        return true;
    }();
    (void)info_init;
    return reg;
}

void
register_build_info(MetricsRegistry &reg)
{
    auto env_or = [](const char *name, const char *fallback) {
        const char *v = std::getenv(name);
        return std::string(v != nullptr && *v != '\0' ? v : fallback);
    };
    // Info-style gauge: the value is always 1; the payload is the label
    // set. `format` tracks the wire/serialization format version
    // (proof/vk/key-cache magics); the soak knobs and trace-ring size
    // make exported artifacts self-describing about the run that
    // produced them; git/compiler/flags come from obs/build_info.hpp —
    // the same payload every artifact JSON embeds under "build".
    const BuildInfo &build = build_info();
    MetricId id = reg.gauge(
        "zkspeed_build_info",
        {{"compiler", build.compiler},
         {"features", build.features},
         {"flags", build.flags},
         {"format", build.format},
         {"git", build.git},
         {"keccak_rounds", env_or("ZKSPEED_KECCAK_ROUNDS", "1")},
         {"soak_mu_bump", env_or("ZKSPEED_SOAK_MU_BUMP", "0")},
         {"soak_seeds", env_or("ZKSPEED_SOAK_SEEDS", "2")},
         {"trace_ring", env_or("ZKSPEED_TRACE_RING", "16384")}},
        "Static build/runtime identity (info-style gauge; value is "
        "always 1)");
    reg.set(id, 1.0);
}

MetricId
MetricsRegistry::get_or_register(MetricKind kind, const std::string &name,
                                 const LabelSet &labels,
                                 const std::string &help)
{
    LabelSet canon = sorted(labels);
    std::lock_guard<std::mutex> lock(mu_);
    for (uint32_t i = 0; i < defs_.size(); ++i) {
        if (defs_[i].name == name && defs_[i].labels == canon) {
            return MetricId{i};
        }
    }
    MetricDef def;
    def.name = name;
    def.labels = std::move(canon);
    def.help = help;
    def.kind = kind;
    if (kind == MetricKind::gauge && num_gauges_ < kMaxGauges) {
        def.gauge_slot = num_gauges_++;
    }
    defs_.push_back(std::move(def));
    return MetricId{uint32_t(defs_.size() - 1)};
}

MetricId
MetricsRegistry::counter(const std::string &name, const LabelSet &labels,
                         const std::string &help)
{
    return get_or_register(MetricKind::counter, name, labels, help);
}

MetricId
MetricsRegistry::gauge(const std::string &name, const LabelSet &labels,
                       const std::string &help)
{
    return get_or_register(MetricKind::gauge, name, labels, help);
}

MetricId
MetricsRegistry::histogram(const std::string &name, const LabelSet &labels,
                           const std::string &help)
{
    return get_or_register(MetricKind::histogram, name, labels, help);
}

MetricsRegistry::Shard &
MetricsRegistry::local_shard()
{
    // Keyed by registry uid, not pointer, so a recreated registry at a
    // reused address never inherits a stale shard. Entries for dead
    // registries linger until thread exit (they pin only the shard).
    thread_local std::unordered_map<uint64_t, std::shared_ptr<Shard>> tls;
    auto it = tls.find(uid_);
    if (it != tls.end()) return *it->second;
    auto shard = std::make_shared<Shard>();
    {
        std::lock_guard<std::mutex> lock(mu_);
        shards_.push_back(shard);
    }
    tls.emplace(uid_, shard);
    return *shard;
}

void
MetricsRegistry::add(MetricId id, uint64_t v)
{
    if (!enabled() || !id.valid()) return;
    auto &cell = local_shard().cell(id.index, MetricKind::counter);
    cell.count.fetch_add(v, std::memory_order_relaxed);
}

void
MetricsRegistry::set(MetricId id, double v)
{
    if (!enabled() || !id.valid()) return;
    uint32_t slot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (id.index >= defs_.size()) return;
        slot = defs_[id.index].gauge_slot;
    }
    if (slot < kMaxGauges) {
        gauge_slots_[slot].store(v, std::memory_order_relaxed);
    }
}

void
MetricsRegistry::gauge_add(MetricId id, double delta)
{
    if (!enabled() || !id.valid()) return;
    uint32_t slot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (id.index >= defs_.size()) return;
        slot = defs_[id.index].gauge_slot;
    }
    if (slot < kMaxGauges) atomic_add(gauge_slots_[slot], delta);
}

void
MetricsRegistry::observe(MetricId id, double v)
{
    if (!enabled() || !id.valid()) return;
    auto &cell = local_shard().cell(id.index, MetricKind::histogram);
    cell.buckets[HistogramBuckets::index_for(v)].fetch_add(
        1, std::memory_order_relaxed);
    cell.count.fetch_add(1, std::memory_order_relaxed);
    atomic_add(cell.sum, v);
    atomic_min(cell.min, v);
    atomic_max(cell.max, v);
}

Snapshot
MetricsRegistry::snapshot() const
{
    std::vector<MetricDef> defs;
    std::vector<std::shared_ptr<Shard>> shards;
    {
        std::lock_guard<std::mutex> lock(mu_);
        defs = defs_;
        shards = shards_;
    }

    Snapshot snap;
    snap.metrics.resize(defs.size());
    std::vector<std::vector<uint64_t>> bucket_acc(defs.size());
    for (size_t i = 0; i < defs.size(); ++i) {
        auto &m = snap.metrics[i];
        m.name = defs[i].name;
        m.labels = defs[i].labels;
        m.help = defs[i].help;
        m.kind = defs[i].kind;
        if (m.kind == MetricKind::gauge &&
            defs[i].gauge_slot < kMaxGauges) {
            m.gauge = gauge_slots_[defs[i].gauge_slot].load(
                std::memory_order_relaxed);
        }
        if (m.kind == MetricKind::histogram) {
            m.hist.min = std::numeric_limits<double>::infinity();
            m.hist.max = -std::numeric_limits<double>::infinity();
        }
    }

    // Merge shards in registration order of the shard list — counter
    // adds commute and per-shard sums are accumulated in a fixed order,
    // so identical recordings produce identical snapshots regardless of
    // thread interleaving (shard-merge determinism).
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mu_);
        size_t n = std::min(shard->cells_.size(), defs.size());
        for (size_t i = 0; i < n; ++i) {
            const auto *cell = shard->cells_[i].get();
            if (cell == nullptr || cell->kind != defs[i].kind) continue;
            auto &m = snap.metrics[i];
            if (m.kind == MetricKind::counter) {
                m.counter +=
                    cell->count.load(std::memory_order_relaxed);
            } else if (m.kind == MetricKind::histogram) {
                uint64_t c = cell->count.load(std::memory_order_relaxed);
                if (c == 0) continue;
                m.hist.count += c;
                m.hist.sum += cell->sum.load(std::memory_order_relaxed);
                m.hist.min = std::min(
                    m.hist.min,
                    cell->min.load(std::memory_order_relaxed));
                m.hist.max = std::max(
                    m.hist.max,
                    cell->max.load(std::memory_order_relaxed));
                auto &acc = bucket_acc[i];
                if (acc.empty()) {
                    acc.assign(HistogramBuckets::kNumBuckets, 0);
                }
                for (size_t b = 0; b < HistogramBuckets::kNumBuckets;
                     ++b) {
                    acc[b] += cell->buckets[b].load(
                        std::memory_order_relaxed);
                }
            }
        }
    }

    for (size_t i = 0; i < defs.size(); ++i) {
        auto &m = snap.metrics[i];
        if (m.kind != MetricKind::histogram) continue;
        if (m.hist.count == 0) {
            m.hist.min = m.hist.max = 0.0;
            continue;
        }
        const auto &acc = bucket_acc[i];
        for (size_t b = 0; b < acc.size(); ++b) {
            if (acc[b] == 0) continue;
            m.hist.buckets.push_back(
                {b, HistogramBuckets::upper_bound(b), acc[b]});
        }
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::vector<std::shared_ptr<Shard>> shards;
    {
        std::lock_guard<std::mutex> lock(mu_);
        shards = shards_;
        for (uint32_t i = 0; i < num_gauges_; ++i) {
            gauge_slots_[i].store(0.0, std::memory_order_relaxed);
        }
    }
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mu_);
        for (auto &cell : shard->cells_) {
            if (cell) cell->zero();
        }
    }
}

size_t
MetricsRegistry::num_series() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return defs_.size();
}

}  // namespace zkspeed::obs
