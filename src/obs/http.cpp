#include "obs/http.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zkspeed::obs {

namespace {

std::mutex g_hook_mu;
ReadinessProvider g_readiness;
std::string g_attrib_json;

/** Endpoint request counters + the port gauge (process-wide; every
 * server instance shares them — tests run servers back to back). */
struct HttpTelemetry {
    MetricId requests[7];
    MetricId dropped;
    MetricId port;
};

const char *const kEndpoints[7] = {"/metrics",  "/metrics.json",
                                   "/healthz",  "/readyz",
                                   "/trace",    "/attrib",
                                   "other"};

HttpTelemetry &
http_telemetry()
{
    static HttpTelemetry t = [] {
        HttpTelemetry h;
        auto &reg = MetricsRegistry::global();
        for (int i = 0; i < 7; ++i) {
            h.requests[i] = reg.counter(
                "zkspeed_http_requests_total",
                {{"endpoint", kEndpoints[i]}},
                "Telemetry HTTP requests served, by endpoint "
                "(\"other\" covers 404s and bad requests)");
        }
        h.dropped = reg.counter(
            "zkspeed_http_connections_dropped_total", {},
            "Connections answered 503 because the bounded handler "
            "queue was full");
        h.port = reg.gauge(
            "zkspeed_http_port", {},
            "Bound telemetry HTTP port (0 = server not running)");
        return h;
    }();
    return t;
}

int
endpoint_index(const std::string &path)
{
    for (int i = 0; i < 6; ++i) {
        if (path == kEndpoints[i]) return i;
    }
    return 6;
}

struct Response {
    int code = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

const char *
reason_phrase(int code)
{
    switch (code) {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 503: return "Service Unavailable";
    }
    return "OK";
}

void
send_all(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = send(fd, data.data() + off, data.size() - off,
                         MSG_NOSIGNAL);
        if (n <= 0) return;
        off += size_t(n);
    }
}

void
send_response(int fd, const Response &resp)
{
    std::string head = "HTTP/1.1 " + std::to_string(resp.code) + " " +
                       reason_phrase(resp.code) + "\r\n";
    head += "Content-Type: " + resp.content_type + "\r\n";
    head += "Content-Length: " + std::to_string(resp.body.size()) +
            "\r\n";
    head += "Connection: close\r\n\r\n";
    send_all(fd, head + resp.body);
}

Response
dispatch(const std::string &method, const std::string &path)
{
    Response resp;
    if (!enabled()) {
        // Kill switch covers the scrape plane: a disabled process
        // serves nothing, not stale expositions.
        resp.code = 503;
        resp.body = "telemetry disabled (obs::set_enabled(false))\n";
        return resp;
    }
    if (method != "GET") {
        resp.code = 405;
        resp.body = "only GET is supported\n";
        return resp;
    }
    if (path == "/metrics") {
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
        resp.body =
            render_prometheus_text(MetricsRegistry::global().snapshot());
    } else if (path == "/metrics.json") {
        resp.content_type = "application/json";
        resp.body = render_json(MetricsRegistry::global().snapshot());
    } else if (path == "/healthz") {
        resp.body = "ok\n";
    } else if (path == "/readyz") {
        ReadinessProvider provider;
        {
            std::lock_guard<std::mutex> lock(g_hook_mu);
            provider = g_readiness;
        }
        Readiness r;
        if (provider) r = provider();
        resp.code = r.ready ? 200 : 503;
        resp.body = (r.ready ? "ready" : "not ready");
        if (!r.detail.empty()) resp.body += ": " + r.detail;
        resp.body += "\n";
    } else if (path == "/trace") {
        resp.content_type = "application/json";
        resp.body = TraceRecorder::global().render_chrome_json();
    } else if (path == "/attrib") {
        std::string attrib = latest_attrib_json();
        if (attrib.empty()) {
            resp.code = 404;
            resp.body = "no attribution report built yet\n";
        } else {
            resp.content_type = "application/json";
            resp.body = std::move(attrib);
        }
    } else {
        resp.code = 404;
        resp.body = "unknown endpoint (try /metrics, /metrics.json, "
                    "/healthz, /readyz, /trace, /attrib)\n";
    }
    return resp;
}

}  // namespace

void
set_readiness_provider(ReadinessProvider provider)
{
    std::lock_guard<std::mutex> lock(g_hook_mu);
    g_readiness = std::move(provider);
}

void
set_latest_attrib_json(std::string json)
{
    std::lock_guard<std::mutex> lock(g_hook_mu);
    g_attrib_json = std::move(json);
}

std::string
latest_attrib_json()
{
    std::lock_guard<std::mutex> lock(g_hook_mu);
    return g_attrib_json;
}

struct HttpServer::Impl {
    HttpServerConfig cfg;
    int listen_fd = -1;
    std::atomic<bool> stopping{false};

    std::mutex mu;
    std::condition_variable cv;
    std::deque<int> pending;

    std::thread acceptor;
    std::vector<std::thread> handlers;

    void
    accept_loop()
    {
        for (;;) {
            int fd = accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
                if (stopping.load(std::memory_order_acquire)) return;
                continue;
            }
            bool queued = false;
            {
                std::lock_guard<std::mutex> lock(mu);
                if (pending.size() < cfg.max_pending) {
                    pending.push_back(fd);
                    queued = true;
                }
            }
            if (queued) {
                cv.notify_one();
            } else {
                Response busy;
                busy.code = 503;
                busy.body = "handler queue full\n";
                send_response(fd, busy);
                close(fd);
                if (enabled()) {
                    MetricsRegistry::global().add(
                        http_telemetry().dropped);
                }
            }
        }
    }

    /** Read until the blank line ending the request head (we never
     * accept bodies), bounded in bytes and wall time. */
    bool
    read_request_head(int fd, std::string &head)
    {
        char buf[2048];
        while (head.size() < cfg.max_request_bytes) {
            struct pollfd pfd = {fd, POLLIN, 0};
            int pr = poll(&pfd, 1, 2000);
            if (pr <= 0) return false;
            ssize_t n = recv(fd, buf, sizeof(buf), 0);
            if (n <= 0) return false;
            head.append(buf, size_t(n));
            if (head.find("\r\n\r\n") != std::string::npos ||
                head.find("\n\n") != std::string::npos) {
                return true;
            }
        }
        return false;
    }

    void
    handle_loop()
    {
        for (;;) {
            int fd = -1;
            {
                std::unique_lock<std::mutex> lock(mu);
                cv.wait(lock, [this] {
                    return stopping.load(std::memory_order_acquire) ||
                           !pending.empty();
                });
                if (pending.empty()) return;  // stopping
                fd = pending.front();
                pending.pop_front();
            }
            handle_one(fd);
            close(fd);
        }
    }

    void
    handle_one(int fd)
    {
        std::string head;
        if (!read_request_head(fd, head)) {
            Response bad;
            bad.code = 400;
            bad.body = "malformed or oversized request\n";
            send_response(fd, bad);
            return;
        }
        // Request line: METHOD SP PATH SP VERSION.
        size_t eol = head.find_first_of("\r\n");
        std::string line = head.substr(0, eol);
        size_t sp1 = line.find(' ');
        size_t sp2 = sp1 == std::string::npos
                         ? std::string::npos
                         : line.find(' ', sp1 + 1);
        if (sp1 == std::string::npos || sp2 == std::string::npos) {
            Response bad;
            bad.code = 400;
            bad.body = "malformed request line\n";
            send_response(fd, bad);
            return;
        }
        std::string method = line.substr(0, sp1);
        std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
        size_t query = path.find('?');
        if (query != std::string::npos) path.resize(query);
        if (enabled()) {
            MetricsRegistry::global().add(
                http_telemetry().requests[endpoint_index(path)]);
        }
        send_response(fd, dispatch(method, path));
        // Scrapes are another normal-context chance to keep the crash
        // snapshot fresh (debounced; no-op until flight::install()).
        flight::maybe_refresh();
    }
};

std::unique_ptr<HttpServer>
HttpServer::start(const HttpServerConfig &cfg)
{
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg.port);
    if (inet_pton(AF_INET, cfg.bind_addr.c_str(), &addr.sin_addr) != 1) {
        close(fd);
        return nullptr;
    }
    if (bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
            0 ||
        listen(fd, 16) != 0) {
        close(fd);
        return nullptr;
    }
    sockaddr_in bound = {};
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) !=
        0) {
        close(fd);
        return nullptr;
    }

    auto server = std::unique_ptr<HttpServer>(new HttpServer());
    server->impl_ = std::make_unique<Impl>();
    server->impl_->cfg = cfg;
    server->impl_->cfg.handler_threads =
        std::max<size_t>(1, cfg.handler_threads);
    server->impl_->listen_fd = fd;
    server->port_ = ntohs(bound.sin_port);

    MetricsRegistry::global().set(http_telemetry().port,
                                  double(server->port_));

    Impl *impl = server->impl_.get();
    impl->acceptor = std::thread([impl] { impl->accept_loop(); });
    for (size_t i = 0; i < impl->cfg.handler_threads; ++i) {
        impl->handlers.emplace_back([impl] { impl->handle_loop(); });
    }
    log_event(LogLevel::info, "http",
              "telemetry server listening on " + cfg.bind_addr + ":" +
                  std::to_string(server->port_));
    return server;
}

std::unique_ptr<HttpServer>
HttpServer::start_from_env()
{
    const char *v = std::getenv("ZKSPEED_HTTP_PORT");
    if (v == nullptr || *v == '\0') return nullptr;
    char *end = nullptr;
    long port = std::strtol(v, &end, 10);
    if (end == v || port < 0 || port > 65535) return nullptr;
    HttpServerConfig cfg;
    cfg.port = uint16_t(port);
    return start(cfg);
}

void
HttpServer::stop()
{
    if (!impl_) return;
    Impl *impl = impl_.get();
    if (impl->stopping.exchange(true, std::memory_order_acq_rel)) {
        return;
    }
    // Unblock accept() by tearing the listener down.
    shutdown(impl->listen_fd, SHUT_RDWR);
    close(impl->listen_fd);
    impl->cv.notify_all();
    if (impl->acceptor.joinable()) impl->acceptor.join();
    impl->cv.notify_all();
    for (auto &t : impl->handlers) {
        if (t.joinable()) t.join();
    }
    {
        std::lock_guard<std::mutex> lock(impl->mu);
        for (int fd : impl->pending) close(fd);
        impl->pending.clear();
    }
    MetricsRegistry::global().set(http_telemetry().port, 0.0);
}

HttpServer::~HttpServer() { stop(); }

}  // namespace zkspeed::obs
