#include "obs/log.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zkspeed::obs {

namespace {

/** Registry ids for ring health (registered once with the recorder). */
struct LogTelemetry {
    MetricId events[4];
    MetricId dropped_ring;
    MetricId dropped_rate;
    MetricId live;
    MetricId capacity;
};

LogTelemetry *g_log_tele = nullptr;

void
register_log_telemetry(size_t capacity)
{
    static LogTelemetry tele = [capacity] {
        LogTelemetry t;
        auto &reg = MetricsRegistry::global();
        for (int l = 0; l < 4; ++l) {
            t.events[l] = reg.counter(
                "zkspeed_log_events_total",
                {{"level", to_string(LogLevel(l))}},
                "Structured log events recorded, by level");
        }
        t.dropped_ring = reg.counter(
            "zkspeed_log_events_dropped_total", {{"reason", "ring"}},
            "Log events lost to the bounded ring or the per-level "
            "rate limit");
        t.dropped_rate = reg.counter(
            "zkspeed_log_events_dropped_total", {{"reason", "rate"}},
            "Log events lost to the bounded ring or the per-level "
            "rate limit");
        t.live = reg.gauge("zkspeed_log_ring_events", {{"kind", "live"}},
                           "Log ring occupancy and configured bound");
        t.capacity = reg.gauge(
            "zkspeed_log_ring_events", {{"kind", "capacity"}},
            "Log ring occupancy and configured bound");
        reg.set(t.capacity, double(capacity));
        return t;
    }();
    g_log_tele = &tele;
}

double
env_rate()
{
    const char *v = std::getenv("ZKSPEED_LOG_RATE");
    if (v == nullptr || *v == '\0') return 200.0;
    char *end = nullptr;
    double rate = std::strtod(v, &end);
    if (end == v || rate < 0) return 200.0;
    return rate;
}

}  // namespace

const char *
to_string(LogLevel level)
{
    switch (level) {
        case LogLevel::debug: return "debug";
        case LogLevel::info: return "info";
        case LogLevel::warn: return "warn";
        case LogLevel::error: return "error";
    }
    return "?";
}

LogRecorder::LogRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      rate_per_s_(env_rate()),
      burst_(64.0)
{
    ring_.reserve(capacity_);
    for (double &t : tokens_) t = burst_;
}

LogRecorder &
LogRecorder::global()
{
    static LogRecorder *rec = [] {
        auto *r = new LogRecorder(env_capacity());
        register_log_telemetry(r->capacity_);
        return r;
    }();
    return *rec;
}

size_t
LogRecorder::env_capacity()
{
    const char *v = std::getenv("ZKSPEED_LOG_RING");
    if (v == nullptr || *v == '\0') return 4096;
    char *end = nullptr;
    long n = std::strtol(v, &end, 10);
    if (end == v || n <= 0) return 4096;
    return size_t(n);
}

bool
LogRecorder::admit(LogLevel level)
{
    if (rate_per_s_ <= 0) return true;
    int l = int(level);
    double now_us = TraceRecorder::to_us(
        std::chrono::steady_clock::now());
    double elapsed_s = (now_us - last_refill_us_[l]) / 1e6;
    last_refill_us_[l] = now_us;
    tokens_[l] = std::min(burst_, tokens_[l] + elapsed_s * rate_per_s_);
    if (tokens_[l] < 1.0) return false;
    tokens_[l] -= 1.0;
    return true;
}

void
LogRecorder::record(LogLevel level, std::string component,
                    std::string message, uint64_t correlation_id)
{
    if (!enabled()) return;
    bool is_global = this == &LogRecorder::global();
    LogEvent ev;
    ev.ts_us = TraceRecorder::to_us(std::chrono::steady_clock::now());
    ev.level = level;
    ev.tid = TraceRecorder::current_tid();
    ev.correlation_id = correlation_id;
    ev.component = std::move(component);
    ev.message = std::move(message);
    size_t live = 0;
    bool admitted;
    bool evicted = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        admitted = admit(level);
        if (admitted) {
            if (ring_.size() < capacity_) {
                ring_.push_back(std::move(ev));
            } else {
                ring_[next_ % capacity_] = std::move(ev);
                evicted = true;
            }
            ++next_;
            ++total_;
        } else {
            ++rate_limited_;
        }
        live = ring_.size();
    }
    if (is_global && g_log_tele != nullptr) {
        auto &reg = MetricsRegistry::global();
        if (admitted) {
            reg.add(g_log_tele->events[int(level)]);
            if (evicted) reg.add(g_log_tele->dropped_ring);
        } else {
            reg.add(g_log_tele->dropped_rate);
        }
        reg.set(g_log_tele->live, double(live));
    }
    // The flight recorder's pre-serialized snapshot rides the log flow:
    // each recorded event is a chance to refresh it (internally
    // debounced, and a no-op until install()).
    if (is_global) flight::maybe_refresh();
}

std::vector<LogEvent>
LogRecorder::events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<LogEvent> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
        out = ring_;
    } else {
        size_t start = next_ % capacity_;
        for (size_t i = 0; i < ring_.size(); ++i) {
            out.push_back(ring_[(start + i) % capacity_]);
        }
    }
    return out;
}

size_t
LogRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

uint64_t
LogRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

uint64_t
LogRecorder::rate_limited() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rate_limited_;
}

void
LogRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    next_ = 0;
    total_ = 0;
    rate_limited_ = 0;
    for (double &t : tokens_) t = burst_;
}

void
LogRecorder::set_rate_limit(double per_second, double burst)
{
    std::lock_guard<std::mutex> lock(mu_);
    rate_per_s_ = per_second;
    burst_ = burst < 1.0 ? 1.0 : burst;
    for (double &t : tokens_) t = burst_;
}

void
LogRecorder::set_stderr_level(LogLevel level)
{
    std::lock_guard<std::mutex> lock(mu_);
    stderr_level_ = level;
}

LogLevel
LogRecorder::stderr_level() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stderr_level_;
}

std::string
LogRecorder::render_event(const LogEvent &ev)
{
    char head[96];
    std::snprintf(head, sizeof(head),
                  "{\"ts_us\":%.3f,\"level\":\"%s\",\"tid\":%u,"
                  "\"correlation_id\":%llu,",
                  ev.ts_us, to_string(ev.level), ev.tid,
                  (unsigned long long)ev.correlation_id);
    std::string out = head;
    out += "\"component\":\"" + json_escape(ev.component) + "\",";
    out += "\"message\":\"" + json_escape(ev.message) + "\"}";
    return out;
}

std::string
LogRecorder::render_jsonl() const
{
    std::string out;
    for (const LogEvent &ev : events()) {
        out += render_event(ev);
        out += '\n';
    }
    return out;
}

std::string
LogRecorder::dump_to_env()
{
    const char *path = std::getenv("ZKSPEED_LOG_OUT");
    if (path == nullptr || *path == '\0') return "";
    if (!write_file(path, global().render_jsonl())) return "";
    return path;
}

void
logf(LogLevel level, const char *component, uint64_t correlation_id,
     const char *fmt, ...)
{
    // Per-thread format shard: reused across calls so the common short
    // message never allocates on the way in.
    thread_local std::vector<char> shard(512);
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(shard.data(), shard.size(), fmt, args);
    va_end(args);
    if (n < 0) {
        va_end(copy);
        return;
    }
    if (size_t(n) >= shard.size()) {
        shard.resize(size_t(n) + 1);
        std::vsnprintf(shard.data(), shard.size(), fmt, copy);
    }
    va_end(copy);
    LogRecorder &rec = LogRecorder::global();
    if (level >= rec.stderr_level()) {
        std::fprintf(stderr, "[%s %s] %s\n", to_string(level), component,
                     shard.data());
    }
    rec.record(level, component, std::string(shard.data(), size_t(n)),
               correlation_id);
}

void
log_event(LogLevel level, const char *component, std::string message,
          uint64_t correlation_id)
{
    LogRecorder::global().record(level, component, std::move(message),
                                 correlation_id);
}

}  // namespace zkspeed::obs
