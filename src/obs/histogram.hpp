/**
 * @file
 * Log-bucketed histogram geometry shared by the live (sharded) metric
 * cells and their merged snapshots.
 *
 * Buckets grow geometrically at 2^(1/8) per bucket (8 buckets per
 * doubling), spanning 2^-20 .. 2^40 — in milliseconds that is ~1 ns up
 * to ~35 years, wide enough for every latency, size and per-kernel
 * duration the system records. A quantile is reported at the geometric
 * midpoint of its bucket, so the relative error of any reported
 * percentile against the exact order statistic is bounded by
 * 2^(1/16) - 1 (~4.4%, `kMaxRelativeError`); count, sum, min and max
 * are tracked exactly alongside the buckets and quantiles clamp to
 * [min, max]. test_obs checks the bound against exact quantiles on
 * synthetic distributions.
 */
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace zkspeed::obs {

struct HistogramBuckets {
    /** Geometric resolution: 8 buckets per doubling (growth 2^(1/8)). */
    static constexpr int kBucketsPerDoubling = 8;
    /** Smallest bucket exponent k (bound 2^(k/8)): 2^-20. */
    static constexpr int kMinExp = -20 * kBucketsPerDoubling;
    /** Largest bucket exponent: 2^40. */
    static constexpr int kMaxExp = 40 * kBucketsPerDoubling;
    /** Dense bucket count (inclusive exponent range). */
    static constexpr size_t kNumBuckets = size_t(kMaxExp - kMinExp) + 1;
    /**
     * Documented quantile error bound: a value in a bucket is reported
     * at the bucket's geometric midpoint, off by at most sqrt(growth),
     * i.e. 2^(1/16) - 1 ≈ 4.43% relative.
     */
    static constexpr double kMaxRelativeError = 0.044274;  // 2^(1/16)-1

    /** Inclusive upper bound of bucket i: 2^((kMinExp + i) / 8). */
    static double
    upper_bound(size_t i)
    {
        return std::exp2(double(kMinExp + int(i)) / kBucketsPerDoubling);
    }

    /** Geometric midpoint of bucket i (the reported quantile value). */
    static double
    midpoint(size_t i)
    {
        return upper_bound(i) *
               std::exp2(-0.5 / double(kBucketsPerDoubling));
    }

    /**
     * Bucket index for a value: the smallest i whose upper bound is
     * >= v. Non-positive values (and NaN) land in bucket 0; values
     * beyond the range clamp to the first/last bucket (min/max/sum stay
     * exact regardless).
     */
    static size_t
    index_for(double v)
    {
        if (!(v > 0)) return 0;
        int k = int(std::ceil(std::log2(v) * kBucketsPerDoubling));
        // FP guard: ceil(log2) can land one bucket low near a boundary.
        if (std::exp2(double(k) / kBucketsPerDoubling) < v) ++k;
        long i = long(k) - kMinExp;
        if (i < 0) return 0;
        if (i >= long(kNumBuckets)) return kNumBuckets - 1;
        return size_t(i);
    }
};

/** One merged histogram: exact count/sum/min/max + sparse buckets. */
struct HistogramSnapshot {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;  ///< exact; 0 when count == 0
    double max = 0;

    /** (bucket upper bound, count in bucket), ascending, non-zero only. */
    struct Bucket {
        size_t index = 0;
        double upper = 0;
        uint64_t count = 0;
    };
    std::vector<Bucket> buckets;

    double
    mean() const
    {
        return count == 0 ? 0.0 : sum / double(count);
    }

    /**
     * Quantile estimate at q in [0, 1]: the geometric midpoint of the
     * bucket holding the rank-ceil(q*count) order statistic, clamped to
     * the exact [min, max]. Within kMaxRelativeError of the exact order
     * statistic by construction.
     */
    double
    quantile(double q) const
    {
        if (count == 0) return 0.0;
        if (q <= 0.0) return min;
        if (q >= 1.0) return max;
        uint64_t rank = uint64_t(std::ceil(q * double(count)));
        rank = std::clamp<uint64_t>(rank, 1, count);
        uint64_t cum = 0;
        for (const Bucket &b : buckets) {
            cum += b.count;
            if (cum >= rank) {
                return std::clamp(HistogramBuckets::midpoint(b.index),
                                  min, max);
            }
        }
        return max;
    }
};

}  // namespace zkspeed::obs
