#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "obs/export.hpp"   // json_escape, write_file
#include "obs/metrics.hpp"  // obs::enabled()

namespace zkspeed::obs {

namespace {

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint32_t> g_next_tid{1};

/** Per-thread stack of open span ids (same-thread nesting links). */
std::vector<uint64_t> &
span_stack()
{
    thread_local std::vector<uint64_t> stack;
    return stack;
}

/** Process-wide open-span table (flight recorder input). Spans are
 * orders of magnitude rarer than metric observations, so one short
 * mutex-protected vector op per open/close is in budget; closes are
 * LIFO per thread, so the erase usually hits the tail. */
std::mutex g_open_mu;
std::vector<OpenSpan> g_open_spans;

void
open_span_register(OpenSpan span)
{
    std::lock_guard<std::mutex> lock(g_open_mu);
    g_open_spans.push_back(std::move(span));
}

void
open_span_unregister(uint64_t span_id)
{
    std::lock_guard<std::mutex> lock(g_open_mu);
    for (size_t i = g_open_spans.size(); i-- > 0;) {
        if (g_open_spans[i].span_id == span_id) {
            g_open_spans.erase(g_open_spans.begin() + long(i));
            return;
        }
    }
}

std::string
fmt_us(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/**
 * Registry series mirroring the global recorder's ring health, so span
 * loss is visible in metrics.prom rather than only via the C++ API:
 *   zkspeed_trace_spans_dropped_total  counter, evictions ever
 *   zkspeed_trace_ring_spans{kind=live|capacity}  gauges
 * Only the process-wide recorder exports (local recorders in tests
 * would fight over the shared series).
 */
struct RingTelemetry {
    MetricId dropped, live, capacity;
};

RingTelemetry &
ring_telemetry()
{
    static RingTelemetry t = [] {
        auto &reg = MetricsRegistry::global();
        RingTelemetry r;
        r.dropped = reg.counter(
            "zkspeed_trace_spans_dropped_total", {},
            "Spans evicted from the trace ring since process start");
        r.live =
            reg.gauge("zkspeed_trace_ring_spans", {{"kind", "live"}},
                      "Spans currently retained in the trace ring");
        r.capacity =
            reg.gauge("zkspeed_trace_ring_spans", {{"kind", "capacity"}},
                      "Trace ring capacity in spans");
        return r;
    }();
    return t;
}

}  // namespace

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity))
{
    ring_.reserve(capacity_);
}

size_t
TraceRecorder::env_capacity()
{
    const char *e = std::getenv("ZKSPEED_TRACE_RING");
    if (e == nullptr || *e == '\0') return 16384;
    char *end = nullptr;
    unsigned long long v = std::strtoull(e, &end, 10);
    if (end == e || *end != '\0' || v == 0) return 16384;
    return size_t(v);
}

TraceRecorder &
TraceRecorder::global()
{
    static TraceRecorder rec(env_capacity());
    static const bool telemetry_init = [] {
        MetricsRegistry::global().set(ring_telemetry().capacity,
                                      double(rec.capacity_));
        return true;
    }();
    (void)telemetry_init;
    return rec;
}

std::chrono::steady_clock::time_point
TraceRecorder::epoch()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

double
TraceRecorder::to_us(std::chrono::steady_clock::time_point tp)
{
    return std::chrono::duration<double, std::micro>(tp - epoch()).count();
}

uint32_t
TraceRecorder::current_tid()
{
    thread_local uint32_t tid = g_next_tid.fetch_add(1);
    return tid;
}

void
TraceRecorder::set_capacity(size_t capacity)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        capacity_ = std::max<size_t>(1, capacity);
        ring_.clear();
        ring_.reserve(capacity_);
        next_ = 0;
        total_ = 0;
    }
    if (this == &global()) {
        auto &reg = MetricsRegistry::global();
        reg.set(ring_telemetry().capacity, double(capacity_));
        reg.set(ring_telemetry().live, 0.0);
    }
}

uint64_t
TraceRecorder::next_span_id()
{
    return g_next_span_id.fetch_add(1);
}

void
TraceRecorder::record(SpanEvent ev)
{
    bool evicted = false;
    size_t live = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++total_;
        if (ring_.size() < capacity_) {
            ring_.push_back(std::move(ev));
        } else {
            ring_[next_] = std::move(ev);
            next_ = (next_ + 1) % capacity_;
            evicted = true;
        }
        live = ring_.size();
    }
    if (this == &global()) {
        auto &reg = MetricsRegistry::global();
        if (evicted) reg.add(ring_telemetry().dropped);
        reg.set(ring_telemetry().live, double(live));
    }
}

std::vector<SpanEvent>
TraceRecorder::events() const
{
    std::vector<SpanEvent> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        out = ring_;
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const SpanEvent &a, const SpanEvent &b) {
                         return a.ts_us < b.ts_us;
                     });
    return out;
}

size_t
TraceRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

uint64_t
TraceRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_ - ring_.size();
}

void
TraceRecorder::clear()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        ring_.clear();
        next_ = 0;
        total_ = 0;
    }
    if (this == &global()) {
        MetricsRegistry::global().set(ring_telemetry().live, 0.0);
    }
}

std::string
TraceRecorder::render_chrome_json() const
{
    auto evs = events();
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const SpanEvent &ev : evs) {
        if (!first) out += ",";
        first = false;
        out += "{\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"" +
               json_escape(ev.category) + "\",\"ph\":\"X\",\"pid\":1";
        out += ",\"tid\":" + std::to_string(ev.tid);
        out += ",\"ts\":" + fmt_us(ev.ts_us);
        out += ",\"dur\":" + fmt_us(ev.dur_us);
        out += ",\"args\":{\"span\":" + std::to_string(ev.span_id);
        out += ",\"parent\":" + std::to_string(ev.parent_id);
        out += ",\"job\":" + std::to_string(ev.correlation_id);
        for (const auto &[key, value] : ev.args) {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.17g", value);
            out += ",\"" + json_escape(key) + "\":" + buf;
        }
        out += "}}";
    }
    out += "]}";
    return out;
}

std::string
TraceRecorder::dump_to_env()
{
    const char *path = std::getenv("ZKSPEED_TRACE_OUT");
    if (path == nullptr || *path == '\0') return "";
    if (!write_file(path, global().render_chrome_json())) return "";
    return path;
}

std::vector<OpenSpan>
open_spans()
{
    std::lock_guard<std::mutex> lock(g_open_mu);
    return g_open_spans;
}

Span::Span(std::string name, std::string category, uint64_t correlation_id)
    : name_(std::move(name)),
      category_(std::move(category)),
      correlation_id_(correlation_id)
{
    if (!enabled()) return;
    auto &stack = span_stack();
    parent_id_ = stack.empty() ? 0 : stack.back();
    id_ = TraceRecorder::next_span_id();
    stack.push_back(id_);
    start_ = std::chrono::steady_clock::now();
    active_ = true;
    OpenSpan open;
    open.span_id = id_;
    open.parent_id = parent_id_;
    open.correlation_id = correlation_id_;
    open.tid = TraceRecorder::current_tid();
    open.start_us = TraceRecorder::to_us(start_);
    open.name = name_;
    open.category = category_;
    open_span_register(std::move(open));
}

Span::~Span()
{
    if (!active_) return;
    open_span_unregister(id_);
    auto end = std::chrono::steady_clock::now();
    auto &stack = span_stack();
    // Pop our own id; tolerate a disable() between open and close.
    if (!stack.empty() && stack.back() == id_) stack.pop_back();
    SpanEvent ev;
    ev.span_id = id_;
    ev.parent_id = parent_id_;
    ev.correlation_id = correlation_id_;
    ev.tid = TraceRecorder::current_tid();
    ev.ts_us = TraceRecorder::to_us(start_);
    ev.dur_us = TraceRecorder::to_us(end) - ev.ts_us;
    ev.name = std::move(name_);
    ev.category = std::move(category_);
    ev.args = std::move(args_);
    TraceRecorder::global().record(std::move(ev));
}

void
Span::record_complete(std::string name, std::string category,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end,
                      uint64_t correlation_id, uint64_t parent_id,
                      std::vector<std::pair<std::string, double>> args)
{
    if (!enabled()) return;
    if (parent_id == 0) {
        auto &stack = span_stack();
        parent_id = stack.empty() ? 0 : stack.back();
    }
    SpanEvent ev;
    ev.span_id = TraceRecorder::next_span_id();
    ev.parent_id = parent_id;
    ev.correlation_id = correlation_id;
    ev.tid = TraceRecorder::current_tid();
    ev.ts_us = TraceRecorder::to_us(start);
    ev.dur_us = TraceRecorder::to_us(end) - ev.ts_us;
    ev.name = std::move(name);
    ev.category = std::move(category);
    ev.args = std::move(args);
    TraceRecorder::global().record(std::move(ev));
}

}  // namespace zkspeed::obs
