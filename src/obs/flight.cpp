#include "obs/flight.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <unistd.h>

#include "obs/build_info.hpp"
#include "obs/jsonv.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zkspeed::obs::flight {

namespace {

/** Two static snapshot buffers; refresh() fills the inactive one and
 * publishes. 256 KiB comfortably holds 64 log events + 32 spans +
 * the summary; snapshot_json() halves its inputs until it fits. */
constexpr size_t kBufCap = 256 * 1024;
char g_bufs[2][kBufCap];

/** Published snapshot: [63] buffer index, [62:32] offset of the
 * 4-digit signal patch region, [31:0] length. 0 = nothing published.
 * One atomic word so the handler sees a consistent triple. */
std::atomic<uint64_t> g_published{0};

std::atomic<int> g_report_fd{-1};
std::atomic<bool> g_installed{false};
std::atomic<double> g_last_refresh_us{0};

/** Serializes refresh()/install()/note_worker_exception(); the signal
 * handler never touches it. */
std::mutex g_refresh_mu;
Options g_opts;

/** refresh() renders the signal field with this 4-digit placeholder
 * value; the handler patches the digits in place (right-aligned, space
 * padded — still a valid JSON number token). No real signal is 9999,
 * and the quoted-key pattern cannot occur inside any other value. */
constexpr const char *kSignalPattern = "\"signal\": 9999";
constexpr size_t kSignalPrefix = 10;  // strlen("\"signal\": ")

uint64_t
pack(uint64_t index, uint64_t patch_offset, uint64_t len)
{
    return (index << 63) | (patch_offset << 32) | len;
}

/** write() the published buffer to the report fd, patching the signal
 * digits first. Async-signal-safe: no locks, no allocation. */
void
dump_published(int sig)
{
    uint64_t word = g_published.load(std::memory_order_acquire);
    int fd = g_report_fd.load(std::memory_order_acquire);
    if (word == 0 || fd < 0) return;
    char *buf = g_bufs[word >> 63];
    size_t patch = (word >> 32) & 0x7fffffff;
    size_t len = word & 0xffffffff;
    // Right-align the signal number (or -1) into the 4-char region.
    char digits[4] = {' ', ' ', ' ', ' '};
    int v = sig;
    if (v < 0) {
        digits[2] = '-';
        digits[3] = '1';
    } else {
        int pos = 3;
        if (v == 0) digits[pos--] = '0';
        while (v > 0 && pos >= 0) {
            digits[pos--] = char('0' + v % 10);
            v /= 10;
        }
    }
    std::memcpy(buf + patch, digits, 4);
    (void)lseek(fd, 0, SEEK_SET);
    size_t off = 0;
    while (off < len) {
        ssize_t n = write(fd, buf + off, len - off);
        if (n <= 0) break;
        off += size_t(n);
    }
    (void)ftruncate(fd, off_t(off));
}

void
fatal_handler(int sig)
{
    dump_published(sig);
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

double
now_us()
{
    return TraceRecorder::to_us(std::chrono::steady_clock::now());
}

/** Render one snapshot into the inactive buffer and publish it.
 * Callers hold g_refresh_mu. */
void
publish(const std::string &doc)
{
    if (doc.size() >= kBufCap) return;  // keep the previous snapshot
    size_t key = doc.find(kSignalPattern);
    if (key == std::string::npos) return;
    size_t patch = key + kSignalPrefix;
    uint64_t prev = g_published.load(std::memory_order_relaxed);
    uint64_t index = prev == 0 ? 0 : ((prev >> 63) ^ 1);
    std::memcpy(g_bufs[index], doc.data(), doc.size());
    // Normalize the raw buffer's placeholder to "  -1" so the buffer
    // is valid even before any handler patch.
    std::memcpy(g_bufs[index] + patch, "  -1", 4);
    g_published.store(pack(index, patch, doc.size()),
                      std::memory_order_release);
    g_last_refresh_us.store(now_us(), std::memory_order_relaxed);
    // Persist immediately (normal context — write() is cheap and the
    // file then always holds a valid snapshot, not just after a crash;
    // the fatal handler re-dumps with the real signal number patched).
    dump_published(-1);
}

}  // namespace

std::string
snapshot_json(const char *reason, const char *detail, int signal,
              size_t max_log_events, size_t max_open_spans)
{
    using jsonv::Value;
    for (;;) {
        Value doc = Value::object();
        doc.set("schema", Value::of("zkspeed-flight-v1"));
        doc.set("signal", Value::of(signal < 0 ? -1 : signal));
        doc.set("reason", Value::of(reason));
        doc.set("detail", Value::of(detail));
        doc.set("captured_ts_us", Value::of(now_us()));
        doc.set("build", build_info_json());

        // Metrics summary: series count + terminal-job totals summed
        // across every service instance (the full exposition is the
        // HTTP plane's job; the crash record only needs the headline).
        auto snap = MetricsRegistry::global().snapshot();
        uint64_t ok = 0, rejected = 0, failed = 0;
        for (const auto &m : snap.metrics) {
            if (m.name != "zkspeed_job_latency_ms") continue;
            for (const auto &[k, v] : m.labels) {
                if (k != "status") continue;
                if (v == "ok") ok += m.hist.count;
                else if (v == "rejected") rejected += m.hist.count;
                else if (v == "failed") failed += m.hist.count;
            }
        }
        Value metrics = Value::object();
        metrics.set("series", Value::of(uint64_t(snap.metrics.size())));
        metrics.set("jobs_ok", Value::of(ok));
        metrics.set("jobs_rejected", Value::of(rejected));
        metrics.set("jobs_failed", Value::of(failed));
        doc.set("metrics", std::move(metrics));

        auto &rec = LogRecorder::global();
        auto log_events = rec.events();
        size_t log_start = log_events.size() > max_log_events
                               ? log_events.size() - max_log_events
                               : 0;
        Value log = Value::object();
        log.set("recorded", Value::of(uint64_t(rec.size())));
        log.set("dropped", Value::of(rec.dropped()));
        log.set("rate_limited", Value::of(rec.rate_limited()));
        Value levs = Value::array();
        for (size_t i = log_start; i < log_events.size(); ++i) {
            const LogEvent &ev = log_events[i];
            Value o = Value::object();
            o.set("ts_us", Value::of(ev.ts_us));
            o.set("level", Value::of(to_string(ev.level)));
            o.set("tid", Value::of(uint64_t(ev.tid)));
            o.set("correlation_id", Value::of(ev.correlation_id));
            o.set("component", Value::of(ev.component));
            o.set("message", Value::of(ev.message));
            levs.push(std::move(o));
        }
        log.set("events", std::move(levs));
        doc.set("log", std::move(log));

        auto open = open_spans();
        Value trace = Value::object();
        trace.set("live_spans",
                  Value::of(uint64_t(TraceRecorder::global().size())));
        trace.set("dropped", Value::of(TraceRecorder::global().dropped()));
        Value ospans = Value::array();
        size_t span_count = std::min(open.size(), max_open_spans);
        for (size_t i = 0; i < span_count; ++i) {
            const OpenSpan &s = open[i];
            Value o = Value::object();
            o.set("span", Value::of(s.span_id));
            o.set("parent", Value::of(s.parent_id));
            o.set("correlation_id", Value::of(s.correlation_id));
            o.set("tid", Value::of(uint64_t(s.tid)));
            o.set("start_us", Value::of(s.start_us));
            o.set("name", Value::of(s.name));
            o.set("category", Value::of(s.category));
            ospans.push(std::move(o));
        }
        trace.set("open", std::move(ospans));
        doc.set("trace", std::move(trace));

        std::string text = doc.render();
        if (text.size() < kBufCap ||
            (max_log_events == 0 && max_open_spans == 0)) {
            return text;
        }
        max_log_events /= 2;
        max_open_spans /= 2;
    }
}

bool
install(const Options &opts)
{
    std::lock_guard<std::mutex> lock(g_refresh_mu);
    g_opts = opts;
    if (g_opts.path.empty()) {
        const char *env = std::getenv("ZKSPEED_FLIGHT_OUT");
        g_opts.path = env != nullptr && *env != '\0'
                          ? env
                          : "FLIGHT_report.json";
    }
    int fd = open(g_opts.path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                  0644);
    if (fd < 0) return false;
    int prev = g_report_fd.exchange(fd, std::memory_order_release);
    if (prev >= 0) close(prev);
    if (g_opts.install_signal_handlers) {
        for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
            std::signal(sig, fatal_handler);
        }
    }
    g_installed.store(true, std::memory_order_release);
    publish(snapshot_json("snapshot", "", 9999, g_opts.max_log_events,
                          g_opts.max_open_spans));
    return true;
}

bool
installed()
{
    return g_installed.load(std::memory_order_acquire);
}

void
refresh()
{
    if (!installed()) return;
    std::lock_guard<std::mutex> lock(g_refresh_mu);
    publish(snapshot_json("snapshot", "", 9999, g_opts.max_log_events,
                          g_opts.max_open_spans));
}

void
maybe_refresh()
{
    if (!installed()) return;
    double last = g_last_refresh_us.load(std::memory_order_relaxed);
    if (now_us() - last < g_opts.refresh_interval_ms * 1000.0) return;
    refresh();
}

bool
note_worker_exception(const char *where, const char *what)
{
    if (!installed()) return false;
    std::lock_guard<std::mutex> lock(g_refresh_mu);
    std::string detail = std::string(where) + ": " +
                         (what != nullptr ? what : "unknown");
    std::string doc = snapshot_json("worker_exception", detail.c_str(),
                                    -1, g_opts.max_log_events,
                                    g_opts.max_open_spans);
    int fd = g_report_fd.load(std::memory_order_acquire);
    if (fd < 0) return false;
    if (lseek(fd, 0, SEEK_SET) != 0) return false;
    size_t off = 0;
    while (off < doc.size()) {
        ssize_t n = write(fd, doc.data() + off, doc.size() - off);
        if (n <= 0) return false;
        off += size_t(n);
    }
    if (ftruncate(fd, off_t(off)) != 0) return false;
    return true;
}

}  // namespace zkspeed::obs::flight
